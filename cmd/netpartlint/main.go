// netpartlint is the project's static-analysis gate: it runs the
// internal/analysis suite — determinism, hotpath, allocfree, msgproto,
// poollifetime, poolflow, concsafety, units, obsnil, errcheck — over the
// module and fails the build on any violation. The
// analyzers machine-check the invariants the partitioner's correctness
// rests on (see DESIGN.md §7 and the README's "Static analysis" section);
// CI runs `go run ./cmd/netpartlint ./...` as a hard gate.
//
// Usage:
//
//	netpartlint [-list] [-v] [-json] [-analyzers a,b] [patterns ...]
//
// Patterns are go-tool style ("./...", "./internal/core"); the default is
// "./..." from the enclosing module root. -analyzers restricts the run to
// a comma-separated subset of the suite (unknown names are a usage
// error). With -json the findings are emitted as NDJSON (one object per
// line: file, line, analyzer, message, suppressed) including suppressed
// ones, so tooling can audit what was waived; suppressed entries never
// affect the exit status. NDJSON output is globally sorted by (file,
// line, analyzer) across all checked packages, so it is byte-stable for
// golden tests and CI diffs. Exit status is 1 when any diagnostic
// survives suppression, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"netpart/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("netpartlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	verbose := fs.Bool("v", false, "report the packages checked")
	asJSON := fs.Bool("json", false, "emit findings as NDJSON, including suppressed ones")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = selectAnalyzers(analyzers, *only)
		if analyzers == nil {
			names := make([]string, len(analysis.Analyzers()))
			for i, a := range analysis.Analyzers() {
				names[i] = a.Name
			}
			fmt.Fprintf(os.Stderr, "netpartlint: -analyzers %q names an unknown analyzer; valid: %s\n",
				*only, strings.Join(names, ", "))
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartlint:", err)
		return 2
	}
	root, modPath, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartlint:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartlint:", err)
		return 2
	}
	bad := 0
	var jsonDiags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "netpartlint: %s: type error: %v\n", pkg.Path, e)
			bad++
		}
		check := analysis.Check
		if *asJSON {
			check = analysis.CheckAll
		}
		diags, err := check(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netpartlint:", err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "netpartlint: %s: %d findings\n", pkg.Path, len(diags))
		}
		if *asJSON {
			jsonDiags = append(jsonDiags, diags...)
			continue
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if *asJSON {
		n, err := writeNDJSON(os.Stdout, jsonDiags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netpartlint:", err)
			return 2
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "netpartlint: %d violations\n", bad)
		return 1
	}
	return 0
}

// selectAnalyzers resolves a comma-separated name list against the suite,
// preserving suite order; nil when any name is unknown.
func selectAnalyzers(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		want[name] = true
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 || len(out) == 0 {
		return nil
	}
	return out
}

// jsonDiag is the NDJSON wire form of one finding. Suppressed findings are
// included (that is the point of -json: auditing what was waived) but do
// not count toward the exit status.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// writeNDJSON emits one JSON object per diagnostic — globally sorted by
// (file, line, analyzer, column, message) so the stream is byte-stable
// regardless of package load order — and returns how many of them are
// live (unsuppressed) violations.
func writeNDJSON(w io.Writer, diags []analysis.Diagnostic) (int, error) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	enc := json.NewEncoder(w)
	live := 0
	for _, d := range diags {
		if !d.Suppressed {
			live++
		}
		jd := jsonDiag{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
		if err := enc.Encode(jd); err != nil {
			return live, err
		}
	}
	return live, nil
}
