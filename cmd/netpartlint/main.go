// netpartlint is the project's static-analysis gate: it runs the
// internal/analysis suite — determinism, hotpath, poollifetime, obsnil,
// errcheck — over the module and fails the build on any violation. The
// analyzers machine-check the invariants the partitioner's correctness
// rests on (see DESIGN.md §7 and the README's "Static analysis" section);
// CI runs `go run ./cmd/netpartlint ./...` as a hard gate.
//
// Usage:
//
//	netpartlint [-list] [-v] [patterns ...]
//
// Patterns are go-tool style ("./...", "./internal/core"); the default is
// "./..." from the enclosing module root. Exit status is 1 when any
// diagnostic survives suppression, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"netpart/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("netpartlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	verbose := fs.Bool("v", false, "report the packages checked")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartlint:", err)
		return 2
	}
	root, modPath, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartlint:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartlint:", err)
		return 2
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "netpartlint: %s: type error: %v\n", pkg.Path, e)
			bad++
		}
		diags, err := analysis.Check(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "netpartlint:", err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "netpartlint: %s: %d findings\n", pkg.Path, len(diags))
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "netpartlint: %d violations\n", bad)
		return 1
	}
	return 0
}
