package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"io"
	"os"
	"strings"
	"testing"

	"netpart/internal/analysis"
)

// TestWriteNDJSON pins the -json wire format: one object per line with
// exactly the file/line/analyzer/message/suppressed fields, suppressed
// findings present in the stream but excluded from the live count.
func TestWriteNDJSON(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Analyzer: "concsafety",
			Pos:      token.Position{Filename: "a/b.go", Line: 12, Column: 3},
			Message:  "c.mu acquired here may still be held when the function returns",
		},
		{
			Analyzer:   "units",
			Pos:        token.Position{Filename: "c/d.go", Line: 44, Column: 9},
			Message:    `dimension mismatch: pdus - 1`,
			Suppressed: true,
		},
	}
	var buf bytes.Buffer
	live, err := writeNDJSON(&buf, diags)
	if err != nil {
		t.Fatalf("writeNDJSON: %v", err)
	}
	if live != 1 {
		t.Errorf("live violations = %d, want 1 (suppressed findings must not count)", live)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("emitted %d lines, want %d:\n%s", len(lines), len(diags), buf.String())
	}
	var got []jsonDiag
	for i, line := range lines {
		var jd jsonDiag
		if err := json.Unmarshal([]byte(line), &jd); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		// Every line must be a flat object with exactly the five
		// documented keys — downstream tooling greps on them.
		var raw map[string]any
		if err := json.Unmarshal([]byte(line), &raw); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"file", "line", "analyzer", "message", "suppressed"} {
			if _, ok := raw[k]; !ok {
				t.Errorf("line %d missing key %q: %s", i, k, line)
			}
		}
		if len(raw) != 5 {
			t.Errorf("line %d has %d keys, want 5: %s", i, len(raw), line)
		}
		got = append(got, jd)
	}

	want := []jsonDiag{
		{File: "a/b.go", Line: 12, Analyzer: "concsafety", Message: diags[0].Message, Suppressed: false},
		{File: "c/d.go", Line: 44, Analyzer: "units", Message: diags[1].Message, Suppressed: true},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestWriteNDJSONSorted: the stream is globally ordered by
// (file, line, analyzer) regardless of the order packages were loaded
// and checked in, so -json output is byte-stable across runs.
func TestWriteNDJSONSorted(t *testing.T) {
	diags := []analysis.Diagnostic{
		{Analyzer: "units", Pos: token.Position{Filename: "z/late.go", Line: 3}, Message: "m3"},
		{Analyzer: "hotpath", Pos: token.Position{Filename: "a/early.go", Line: 90}, Message: "m2"},
		{Analyzer: "msgproto", Pos: token.Position{Filename: "a/early.go", Line: 7}, Message: "m1"},
		{Analyzer: "allocfree", Pos: token.Position{Filename: "a/early.go", Line: 7}, Message: "m0"},
	}
	var buf bytes.Buffer
	if _, err := writeNDJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var order []string
	for _, line := range lines {
		var jd jsonDiag
		if err := json.Unmarshal([]byte(line), &jd); err != nil {
			t.Fatal(err)
		}
		order = append(order, jd.Message)
	}
	want := []string{"m0", "m1", "m2", "m3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("emission order = %v, want %v", order, want)
		}
	}
}

// TestSelectAnalyzers pins the -analyzers flag semantics: subsetting keeps
// suite order, whitespace is tolerated, and any unknown name rejects the
// whole list (nil) rather than silently running a partial suite.
func TestSelectAnalyzers(t *testing.T) {
	all := analysis.Analyzers()
	got := selectAnalyzers(all, "msgproto, allocfree")
	if len(got) != 2 {
		t.Fatalf("selected %d analyzers, want 2", len(got))
	}
	// Suite order, not flag order: allocfree precedes msgproto in Analyzers().
	if got[0].Name != "allocfree" || got[1].Name != "msgproto" {
		t.Errorf("selection = [%s %s], want suite order [allocfree msgproto]", got[0].Name, got[1].Name)
	}
	if selectAnalyzers(all, "allocfree,nosuchanalyzer") != nil {
		t.Error("unknown analyzer name must reject the whole selection")
	}
	if selectAnalyzers(all, " , ") != nil {
		t.Error("a blank selection must be rejected, not run zero analyzers")
	}
}

// TestWriteNDJSONEmpty: a clean tree emits nothing, not an empty array or
// a trailing newline.
func TestWriteNDJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	live, err := writeNDJSON(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if live != 0 || buf.Len() != 0 {
		t.Errorf("empty input: live=%d output=%q, want 0 and empty", live, buf.String())
	}
}

// TestUnknownAnalyzerListsValidNames pins the -analyzers failure mode: an
// unknown name must fail fast (exit 2, nothing analyzed) and the error
// must list every valid analyzer name so the caller can fix the flag
// without hunting for -list.
func TestUnknownAnalyzerListsValidNames(t *testing.T) {
	oldStderr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	code := run([]string{"-analyzers", "nosuchanalyzer"})
	w.Close()
	os.Stderr = oldStderr
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2; stderr:\n%s", code, buf.String())
	}
	msg := buf.String()
	if !strings.Contains(msg, `"nosuchanalyzer"`) {
		t.Errorf("error does not quote the offending name: %s", msg)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error does not list valid analyzer %q: %s", a.Name, msg)
		}
	}
}
