// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate, plus the ablations listed in
// DESIGN.md.
//
// Usage:
//
//	experiments [-experiment all|table1|table2|fig1|fig2|fig3|costfit|overhead|gauss|ablations|faulttol]
//	            [-constants paper|fitted] [-n 600]
//
//netpart:deterministic
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"netpart/internal/experiments"
	"netpart/internal/obs"
	"netpart/internal/obs/serve"
	"netpart/internal/stencil"
)

func main() {
	which := flag.String("experiment", "all", "experiment to run: all, table1, table2, fig1, fig2, fig3, costfit, overhead, gauss, ablations, adaptive, metasystem, startup, implselect, particles, selectioncost, noise, faulttol")
	constants := flag.String("constants", "paper", "cost table for table1: 'paper' (published constants) or 'fitted' (benchmarked from the simulator)")
	n := flag.Int("n", 600, "problem size for fig3 and gauss")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker pool size for the parallel experiment engine (1 = serial); output is identical at any setting")
	showMetrics := flag.Bool("metrics", false, "print per-section wall-clock metrics at exit")
	serveAddr := flag.String("serve", "", `telemetry listen address (e.g. ":9090"): per-section metrics on /metrics, /metrics.json, /healthz, /debug/pprof/; keeps serving after the run until interrupted`)
	flag.Parse()

	if err := run(*which, *constants, *n, *jobs, *showMetrics, *serveAddr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(which, constants string, n, jobs int, showMetrics bool, serveAddr string) error {
	if jobs < 1 {
		return fmt.Errorf("invalid -j %d: the worker pool needs at least one worker (use -j 1 for a serial run)", jobs)
	}
	var metrics *obs.Registry
	if showMetrics || serveAddr != "" {
		metrics = obs.NewRegistry()
	}
	var srv *serve.Server
	if serveAddr != "" {
		var err error
		srv, err = serve.Start(serveAddr, metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: %s/metrics (also /metrics.json /healthz /debug/pprof/)\n", srv.URL())
	}
	runStart := time.Now() //nolint:netpart/determinism reason=section wall times feed the -metrics gauges, operator diagnostics outside the golden tables

	fmt.Println("Building environment (offline communication benchmarking)...")
	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	env.Jobs = jobs
	metrics.Gauge("experiments.env_ms").Set(msSince(runStart))
	tbl := env.Paper
	if constants == "fitted" {
		tbl = env.Fitted
	}

	all := which == "all"
	did := false
	// Each section's wall time lands in a gauge keyed by its label's first
	// token (e.g. "E2:" -> experiments.e2_ms).
	var curSlug string
	var curStart time.Time
	flush := func() {
		if curSlug != "" {
			metrics.Gauge("experiments." + curSlug + "_ms").Set(msSince(curStart))
			metrics.Counter("experiments.sections").Inc()
		}
		curSlug = ""
	}
	section := func(title string) {
		flush()
		curSlug = strings.ToLower(strings.TrimSuffix(strings.Fields(title)[0], ":"))
		curStart = time.Now() //nolint:netpart/determinism reason=section wall times feed the -metrics gauges, operator diagnostics outside the golden tables
		fmt.Printf("\n=== %s ===\n", title)
		did = true
	}

	if all || which == "costfit" {
		section("E4: fitted communication cost constants (paper §6)")
		rows, router, err := experiments.CostFit(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCostFit(rows, router))
	}
	if all || which == "table1" {
		section(fmt.Sprintf("E1: Table 1 — partitioning algorithm output (%s constants)", constants))
		rows, err := experiments.Table1(env, tbl)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
	}
	if all || which == "table2" {
		section("E2: Table 2 — measured elapsed times (ms, 10 iterations); * = measured min, p = predicted")
		rows, err := experiments.Table2(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable2(rows))
	}
	if all || which == "fig3" {
		section(fmt.Sprintf("E3: Fig. 3 — T_c vs processors (N=%d)", n))
		for _, v := range []stencil.Variant{stencil.STEN1, stencil.STEN2} {
			pts, err := experiments.Fig3(env, n, v)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig3(pts, n, v))
		}
	}
	if all || which == "fig2" {
		section("E5: Fig. 2 — partition vector example")
		out, err := experiments.Fig2(env)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	if all || which == "fig1" {
		section("E6: Fig. 1 — example heterogeneous network")
		out, err := experiments.Fig1()
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	if all || which == "overhead" {
		section("E7: partitioning overhead (Eq. 3/6 recomputations)")
		rows, err := experiments.Overhead(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderOverhead(rows))
	}
	if all || which == "gauss" {
		section(fmt.Sprintf("E8: Gaussian elimination with partial pivoting (N=%d)", n))
		g, err := experiments.Gauss(env, n)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderGauss(g))
	}
	if all || which == "ablations" {
		section("Ablations A1-A5")
		rows, err := experiments.Ablations(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAblations(rows))
		section("Ablations A6-A7 (composition and search extensions)")
		ext, err := experiments.ExtendedAblations(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAblations(ext))
	}
	if all || which == "adaptive" {
		section("E9: dynamic repartitioning with row migration (§7 future work)")
		r, err := experiments.Adaptive(env, 400, 80)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAdaptive(r))
	}
	if all || which == "metasystem" {
		section("E10: metasystem with a multicomputer (§7 future work)")
		r, err := experiments.Metasystem(1200)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderMetasystem(r))
	}
	if all || which == "implselect" {
		section("E12: implementation selection — 1-D rows vs 2-D blocks")
		rows, err := experiments.ImplSelect(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderImplSelect(rows))
	}
	if all || which == "particles" {
		section("E13: particle simulation — data-dependent PDU weights")
		r, err := experiments.Particles(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderParticles(r))
	}
	if all || which == "selectioncost" {
		section("E14: selection cost — runtime partitioning vs benchmarked selection [1]")
		r, err := experiments.SelectionCost(env, 600)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderSelectionCost(r))
	}
	if all || which == "noise" {
		section("E15: noise sensitivity — the 'average case' caveat of §3.0")
		rows, err := experiments.Noise(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderNoise(rows))
	}
	if all || which == "faulttol" {
		section("E16: fault tolerance — node loss mid-run, recovery on the live runtime")
		r, err := experiments.FaultTol(env, 96, 30)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFaultTol(r))
	}
	if all || which == "startup" {
		section("E11: initial-distribution cost (T_startup) and amortization")
		rows, err := experiments.Startup(env)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderStartup(rows))
	}
	if !did {
		return fmt.Errorf("unknown experiment %q", which)
	}
	flush()
	metrics.Gauge("experiments.total_ms").Set(msSince(runStart))
	if showMetrics {
		fmt.Println()
		fmt.Print(metrics.Render())
	}
	if srv != nil {
		fmt.Println("telemetry: run complete, still serving (interrupt to exit)")
		srv.Wait()
	}
	return nil
}

// msSince returns the wall time since start in milliseconds.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000 //nolint:netpart/determinism reason=section wall times feed the -metrics gauges, operator diagnostics outside the golden tables
}
