package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// The cheap experiments exercise the full dispatch path (each builds
	// the benchmarked environment).
	for _, which := range []string{"fig1", "fig2", "costfit", "overhead"} {
		if err := run(which, "paper", 60, 1, false, ""); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
}

func TestRunTable1Fitted(t *testing.T) {
	if err := run("table1", "fitted", 60, 2, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", "paper", 60, 1, false, ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunRejectsBadJobs: a worker pool below one worker is a usage error
// caught before any environment is built, with the flag named in the
// message so the operator knows what to fix.
func TestRunRejectsBadJobs(t *testing.T) {
	for _, jobs := range []int{0, -1, -8} {
		err := run("fig1", "paper", 60, jobs, false, "")
		if err == nil {
			t.Fatalf("jobs=%d accepted, want an error", jobs)
		}
		if !strings.Contains(err.Error(), "-j") {
			t.Errorf("jobs=%d error %q does not name the -j flag", jobs, err)
		}
	}
}
