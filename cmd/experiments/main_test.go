package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	// The cheap experiments exercise the full dispatch path (each builds
	// the benchmarked environment).
	for _, which := range []string{"fig1", "fig2", "costfit", "overhead"} {
		if err := run(which, "paper", 60, 0, false); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
}

func TestRunTable1Fitted(t *testing.T) {
	if err := run("table1", "fitted", 60, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", "paper", 60, 0, false); err == nil {
		t.Error("unknown experiment accepted")
	}
}
