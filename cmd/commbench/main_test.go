package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDefaultTestbed(t *testing.T) {
	out := filepath.Join(t.TempDir(), "table.json")
	if err := run("", "1-D", 3, out, true, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("table not written: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "starcube", 3, "", false, ""); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("missing.json", "1-D", 3, "", false, ""); err == nil {
		t.Error("missing spec accepted")
	}
}
