// Command commbench runs the paper's offline communication benchmarking
// step on the simulated network: topology-specific communication programs
// are executed over a grid of message sizes and processor counts, Eq. 1
// cost functions are fitted per (cluster, topology), and the resulting
// constants are printed next to the paper's published ones.
//
// Usage:
//
//	commbench [-spec network.json] [-topologies 1-D,broadcast] [-cycles 10]
//
//netpart:deterministic
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"netpart/internal/commbench"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/obs/serve"
	"netpart/internal/topo"
)

func main() {
	spec := flag.String("spec", "", "network spec JSON (default: the paper's Sparc2+IPC testbed)")
	topoList := flag.String("topologies", "1-D,ring,broadcast", "comma-separated topology names")
	cycles := flag.Int("cycles", 10, "communication cycles per measurement")
	out := flag.String("o", "", "write the fitted cost table as JSON to this file (readable by partition -costs)")
	showMetrics := flag.Bool("metrics", false, "print benchmarking metrics (fits, samples, R² distribution) at exit")
	serveAddr := flag.String("serve", "", `telemetry listen address (e.g. ":9090"): fit metrics on /metrics, /metrics.json, /healthz, /debug/pprof/; keeps serving after the benchmark until interrupted`)
	flag.Parse()

	if err := run(*spec, *topoList, *cycles, *out, *showMetrics, *serveAddr); err != nil {
		fmt.Fprintln(os.Stderr, "commbench:", err)
		os.Exit(1)
	}
}

func run(spec, topoList string, cycles int, out string, showMetrics bool, serveAddr string) error {
	var metrics *obs.Registry
	if showMetrics || serveAddr != "" {
		metrics = obs.NewRegistry()
	}
	var srv *serve.Server
	if serveAddr != "" {
		var err error
		srv, err = serve.Start(serveAddr, metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry: %s/metrics (also /metrics.json /healthz /debug/pprof/)\n", srv.URL())
	}

	net := model.PaperTestbed()
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err = model.ReadSpec(f)
		if err != nil {
			return err
		}
	}
	var tops []topo.Topology
	for _, name := range strings.Split(topoList, ",") {
		tp, err := topo.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		tops = append(tops, tp)
	}
	grid := commbench.DefaultGrid()
	grid.Cycles = cycles
	benchStart := time.Now() //nolint:netpart/determinism reason=feeds the -metrics wall-clock gauge, an operator diagnostic outside the golden output
	res, err := commbench.Run(net, tops, grid)
	if err != nil {
		return err
	}
	if metrics != nil {
		metrics.Gauge("commbench.elapsed_ms").Set(float64(time.Since(benchStart).Microseconds()) / 1000) //nolint:netpart/determinism reason=feeds the -metrics wall-clock gauge, an operator diagnostic outside the golden output
		for _, f := range res.Fits {
			metrics.Counter("commbench.fits").Inc()
			metrics.Counter("commbench.samples").Add(int64(f.Samples))
			metrics.Histogram("commbench.fit_r2").Observe(f.Quality.R2)
		}
	}

	fmt.Println("Fitted Eq. 1 constants: T = c1 + c2·p + b·(c3 + c4·p)  (ms, bytes)")
	fmt.Println()
	paper := cost.PaperTable()
	for _, f := range res.Fits {
		fmt.Printf("  T_comm[%s, %s](b,p) = %s   (R²=%.4f, %d samples)\n",
			f.Cluster, f.Topology, f.Params, f.Quality.R2, f.Samples)
		if p, err := paper.Comm(f.Cluster, f.Topology); err == nil {
			fmt.Printf("      paper §6:            %s\n", p)
		}
	}
	fmt.Println()
	for _, pair := range sortedPairs(res.Router) {
		fmt.Printf("  T_router[%s, %s](b) = %.6f·b ms   (paper §6: 0.0006·b)\n", pair[0], pair[1], res.Router[pair].Ms)
	}
	for _, pair := range sortedPairs(res.Coerce) {
		fmt.Printf("  T_coerce[%s, %s](b) = %.6f·b ms\n", pair[0], pair[1], res.Coerce[pair].Ms)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cost.WriteTable(f, res.Table); err != nil {
			return err
		}
		fmt.Printf("\nwrote fitted cost table to %s\n", out)
	}
	if showMetrics {
		fmt.Println()
		fmt.Print(metrics.Render())
	}
	if srv != nil {
		fmt.Println("telemetry: benchmark complete, still serving (interrupt to exit)")
		srv.Wait()
	}
	return nil
}

// sortedPairs returns the map's cluster pairs in lexicographic order so the
// fitted-constants listing is byte-identical across runs.
func sortedPairs(m map[[2]string]cost.PerByte) [][2]string {
	pairs := make([][2]string, 0, len(m))
	for p := range m {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	return pairs
}
