// Command stencil runs the paper's evaluation application end to end:
// partition (or take an explicit configuration), execute STEN-1/STEN-2 on
// the simulated network or over real UDP message passing, verify the
// result against the sequential reference, and report elapsed time.
//
// Usage:
//
//	stencil [-n 600] [-variant sten1|sten2] [-iters 10]
//	        [-p1 -1] [-p2 -1]            explicit configuration (-1 = auto-partition)
//	        [-runtime sim|live]          simulated network or real goroutines+UDP
//	        [-verify]                    check against the sequential solver
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/spmd"
	"netpart/internal/stencil"
	"netpart/internal/topo"
)

// spmdReport aliases the report type shared by the sim modes.
type spmdReport = spmd.Report

func main() {
	n := flag.Int("n", 600, "grid size N (N×N grid, N row PDUs)")
	variantName := flag.String("variant", "sten2", "sten1 (no overlap) or sten2 (overlapped)")
	iters := flag.Int("iters", 10, "Jacobi iterations")
	p1 := flag.Int("p1", -1, "Sparc2 processors (-1 = choose via the partitioning method)")
	p2 := flag.Int("p2", -1, "IPC processors (-1 = choose via the partitioning method)")
	runtime := flag.String("runtime", "sim", "sim (virtual time) or live (goroutines + UDP)")
	verify := flag.Bool("verify", true, "verify against the sequential reference")
	mode := flag.String("mode", "fixed", "sim modes: fixed iterations, converge (run to -tol), adaptive (dynamic repartitioning under -slowrank load)")
	tol := flag.Float64("tol", 0.01, "convergence tolerance for -mode converge")
	slowRank := flag.Int("slowrank", 1, "rank slowed in -mode adaptive")
	slowFactor := flag.Float64("slowfactor", 4, "slowdown factor in -mode adaptive")
	flag.Parse()

	if err := run(*n, *variantName, *iters, *p1, *p2, *runtime, *verify, *mode, *tol, *slowRank, *slowFactor); err != nil {
		fmt.Fprintln(os.Stderr, "stencil:", err)
		os.Exit(1)
	}
}

func run(n int, variantName string, iters, p1, p2 int, runtime string, verify bool, mode string, tol float64, slowRank int, slowFactor float64) error {
	var variant stencil.Variant
	switch variantName {
	case "sten1":
		variant = stencil.STEN1
	case "sten2":
		variant = stencil.STEN2
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}
	net := model.PaperTestbed()

	var vec core.Vector
	var chosen = struct{ p1, p2 int }{p1, p2}
	if p1 < 0 || p2 < 0 {
		fmt.Println("partitioning: benchmarking communication and searching configurations...")
		bench, err := commbench.Run(net, []topo.Topology{topo.OneD{}}, commbench.DefaultGrid())
		if err != nil {
			return err
		}
		est, err := core.NewEstimator(net, bench.Table, stencil.Annotations(n, variant, iters))
		if err != nil {
			return err
		}
		res, err := core.Partition(est)
		if err != nil {
			return err
		}
		chosen.p1, chosen.p2 = res.Config.Counts[0], res.Config.Counts[1]
		vec = res.Vector
		fmt.Printf("partitioning: chose %v, predicted T_c %.3f ms/cycle (%d evaluations)\n",
			res.Config, res.TcMs, res.Evaluations)
	}
	cfgCost := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{chosen.p1, chosen.p2},
	}
	if vec == nil {
		var err error
		vec, err = core.Decompose(net, cfgCost, n, model.OpFloat)
		if err != nil {
			return err
		}
	}
	fmt.Printf("configuration  : sparc2:%d ipc:%d\n", chosen.p1, chosen.p2)
	fmt.Printf("partition vec  : %v\n", vec)

	var grid [][]float64
	switch runtime {
	case "sim":
		var rep spmdReport
		switch mode {
		case "fixed":
			res, err := stencil.RunSim(net, cfgCost, vec, variant, n, iters)
			if err != nil {
				return err
			}
			grid = res.Grid
			rep = res.Report
			fmt.Printf("simulated time : %.1f ms (%d iterations, %s)\n", res.ElapsedMs, iters, variant)
		case "converge":
			res, err := stencil.RunSimUntil(net, cfgCost, vec, variant, n, tol, iters*100)
			if err != nil {
				return err
			}
			grid = res.Grid
			rep = res.Report
			verify = false // iteration count is tolerance driven
			fmt.Printf("simulated time : %.1f ms (converged to Δ≤%g in %d iterations, %s)\n",
				res.ElapsedMs, tol, res.Iterations, variant)
			wantGrid, wantIters, _ := stencil.SequentialUntil(stencil.NewGrid(n), tol, iters*100)
			if res.Iterations != wantIters {
				return fmt.Errorf("converged in %d iterations, sequential needs %d", res.Iterations, wantIters)
			}
			for i := range wantGrid {
				for j := range wantGrid[i] {
					if grid[i][j] != wantGrid[i][j] {
						return fmt.Errorf("verification FAILED at (%d,%d)", i, j)
					}
				}
			}
			fmt.Println("verification   : converged grid matches the sequential reference exactly")
		case "adaptive":
			slow := func(rank, iter int) float64 {
				if rank == slowRank && iter >= iters/8 {
					return slowFactor
				}
				return 1
			}
			static, err := stencil.RunSimAdaptive(net, cfgCost, vec, variant, n, iters,
				stencil.AdaptiveOptions{Slowdown: slow})
			if err != nil {
				return err
			}
			res, err := stencil.RunSimAdaptive(net, cfgCost, vec, variant, n, iters,
				stencil.AdaptiveOptions{Slowdown: slow, RebalanceEvery: iters / 8})
			if err != nil {
				return err
			}
			grid = res.Grid
			rep = res.Report
			fmt.Printf("simulated time : static %.1f ms vs adaptive %.1f ms (%.2fx; %d rebalances, %d rows migrated)\n",
				static.ElapsedMs, res.ElapsedMs, static.ElapsedMs/res.ElapsedMs, res.Rebalances, res.MigratedRows)
			fmt.Printf("final vector   : %v\n", res.FinalVector)
		default:
			return fmt.Errorf("unknown mode %q", mode)
		}
		for _, s := range rep.Segments {
			fmt.Printf("  segment %-8s %6d msgs  %8d bytes  busy %.1f ms\n", s.Name, s.Messages, s.Bytes, s.BusyMs)
		}
	case "live":
		tasks := chosen.p1 + chosen.p2
		eps, err := mmps.NewUDPWorld(tasks, mmps.WithRecvTimeout(60*time.Second))
		if err != nil {
			return err
		}
		world := make([]mmps.Transport, tasks)
		for i, ep := range eps {
			world[i] = ep
		}
		defer func() {
			for _, ep := range eps {
				ep.Close()
			}
		}()
		// Emulate the 2x slower IPCs by doubling their row work.
		factors := make([]int, tasks)
		for i := range factors {
			factors[i] = 1
			if i >= chosen.p1 {
				factors[i] = 2
			}
		}
		res, err := stencil.RunLive(world, vec, variant, n, iters, factors)
		if err != nil {
			return err
		}
		grid = res.Grid
		fmt.Printf("wall-clock time: %v (%d iterations, %s, %d tasks over UDP)\n",
			res.Elapsed, iters, variant, tasks)
	default:
		return fmt.Errorf("unknown runtime %q", runtime)
	}

	if verify {
		want := stencil.Sequential(stencil.NewGrid(n), iters)
		for i := range want {
			for j := range want[i] {
				if grid[i][j] != want[i][j] {
					return fmt.Errorf("verification FAILED at (%d,%d): %v != %v", i, j, grid[i][j], want[i][j])
				}
			}
		}
		fmt.Println("verification   : distributed grid matches the sequential reference exactly")
	}
	return nil
}
