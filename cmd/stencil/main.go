// Command stencil runs the paper's evaluation application end to end:
// partition (or take an explicit configuration), execute STEN-1/STEN-2 on
// the simulated network or over real UDP message passing, verify the
// result against the sequential reference, and report elapsed time.
//
// Usage:
//
//	stencil [-n 600] [-variant sten1|sten2] [-iters 10]
//	        [-p1 -1] [-p2 -1]            explicit configuration (-1 = auto-partition)
//	        [-runtime sim|live]          simulated network or real goroutines+UDP
//	        [-verify]                    check against the sequential solver
//	        [-metrics] [-trace out.jsonl] [-chrome out.json]
//	        [-faults "crash:3@12;drop:0.05"] [-faultseed 1] [-ckpt 8]
//	        [-repart] [-repart-every 4] [-repart-horizon 32]
//
// With -faults, the sim runtime injects packet faults below the simulated
// reliability layer (RunSimFaulty), and the live runtime switches to the
// fault-tolerant protocol (RunLiveFT): buddy checkpointing every -ckpt
// cycles, failure detection, and recovery by re-running the paper's
// partitioning algorithm over the survivors.
//
// With -repart, the live runtime repartitions continuously: the drift
// monitor's events (sustained deviation from the predicted T_c) trigger an
// incremental re-plan through internal/repart — migration cost is an
// explicit objective term, amortized over -repart-horizon cycles — and the
// chosen rows migrate between cycles. Without a drift monitor (no -metrics
// or explicit -p1/-p2), the -repart-every interval fallback drives the
// rounds instead.
//
//netpart:deterministic
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/obs/drift"
	"netpart/internal/obs/serve"
	"netpart/internal/repart"
	"netpart/internal/spmd"
	"netpart/internal/stencil"
	"netpart/internal/topo"
	"netpart/internal/trace"
)

// spmdReport aliases the report type shared by the sim modes.
type spmdReport = spmd.Report

// runOptions collects the command's flags.
type runOptions struct {
	N             int
	Variant       string // sten1 or sten2
	Iters         int
	P1, P2        int    // explicit configuration (-1 = auto-partition)
	Runtime       string // sim or live
	Verify        bool
	Mode          string // fixed, converge, or adaptive
	Tol           float64
	SlowRank      int
	SlowFactor    float64
	Metrics       bool   // print the runtime metrics table at exit
	TraceFile     string // per-cycle span events as JSONL ("" = off)
	ChromeFile    string // chrome://tracing export of the same spans ("" = off)
	Faults        string // fault schedule ("" = none)
	FaultSeed     uint64 // deterministic injector seed
	Ckpt          int    // checkpoint period for the fault-tolerant live runtime
	Serve         string // telemetry listen address ("" = off)
	DriftPct      float64
	Repart        bool // drift-triggered continuous repartitioning (live runtime)
	RepartEvery   int  // interval-fallback rebalance period (cycles)
	RepartHorizon int  // cycles over which a migration must amortize
}

func main() {
	var o runOptions
	flag.IntVar(&o.N, "n", 600, "grid size N (N×N grid, N row PDUs)")
	flag.StringVar(&o.Variant, "variant", "sten2", "sten1 (no overlap) or sten2 (overlapped)")
	flag.IntVar(&o.Iters, "iters", 10, "Jacobi iterations")
	flag.IntVar(&o.P1, "p1", -1, "Sparc2 processors (-1 = choose via the partitioning method)")
	flag.IntVar(&o.P2, "p2", -1, "IPC processors (-1 = choose via the partitioning method)")
	flag.StringVar(&o.Runtime, "runtime", "sim", "sim (virtual time) or live (goroutines + UDP)")
	flag.BoolVar(&o.Verify, "verify", true, "verify against the sequential reference")
	flag.StringVar(&o.Mode, "mode", "fixed", "sim modes: fixed iterations, converge (run to -tol), adaptive (dynamic repartitioning under -slowrank load)")
	flag.Float64Var(&o.Tol, "tol", 0.01, "convergence tolerance for -mode converge")
	flag.IntVar(&o.SlowRank, "slowrank", 1, "rank slowed in -mode adaptive")
	flag.Float64Var(&o.SlowFactor, "slowfactor", 4, "slowdown factor in -mode adaptive")
	flag.BoolVar(&o.Metrics, "metrics", false, "print per-cycle runtime metrics (cycle/exchange timings, messages, bytes)")
	flag.StringVar(&o.TraceFile, "trace", "", "write per-cycle span events (one JSON object per line) to this file")
	flag.StringVar(&o.ChromeFile, "chrome", "", "write a chrome://tracing trace-event file of the run's cycles")
	flag.StringVar(&o.Faults, "faults", "", `fault schedule, e.g. "crash:3@12;drop:0.05;delay:0.1,2;part:6@100-200"`)
	flag.Uint64Var(&o.FaultSeed, "faultseed", 1, "seed for the deterministic fault injector")
	flag.IntVar(&o.Ckpt, "ckpt", 8, "checkpoint period (cycles) for the fault-tolerant live runtime")
	flag.StringVar(&o.Serve, "serve", "", `telemetry listen address (e.g. ":9090", ":0" picks a port): /metrics, /metrics.json, /healthz, /debug/pprof/; the process keeps serving after the run until interrupted`)
	flag.Float64Var(&o.DriftPct, "driftpct", drift.DefaultThresholdPct, "drift-event threshold: |EWMA deviation| of measured vs predicted per-cycle time, percent")
	flag.BoolVar(&o.Repart, "repart", false, "live runtime: continuous repartitioning — drift events (or the -repart-every fallback) trigger an incremental re-plan and row migration")
	flag.IntVar(&o.RepartEvery, "repart-every", 4, "interval fallback: re-plan every this many cycles even without a drift event (0 = drift-only)")
	flag.IntVar(&o.RepartHorizon, "repart-horizon", repart.DefaultHorizonCycles, "cycles a migration must amortize over in the planner's T_mig objective term")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "stencil:", err)
		os.Exit(1)
	}
}

func run(o runOptions) error {
	var variant stencil.Variant
	switch o.Variant {
	case "sten1":
		variant = stencil.STEN1
	case "sten2":
		variant = stencil.STEN2
	default:
		return fmt.Errorf("unknown variant %q", o.Variant)
	}
	if o.Repart && o.Runtime != "live" {
		return fmt.Errorf("-repart needs -runtime live (the sim runtime has -mode adaptive)")
	}
	if o.Repart && o.Faults != "" {
		return fmt.Errorf("-repart and -faults are exclusive: the fault-tolerant runtime repartitions on recovery")
	}
	net := model.PaperTestbed()

	// Observability: a registry collects runtime counters/histograms for
	// -metrics; a recorder collects per-cycle spans for -trace / -chrome.
	var metrics *obs.Registry
	var rec *obs.Recorder
	if o.Metrics || o.Serve != "" {
		metrics = obs.NewRegistry()
	}
	var traceOut *os.File
	if o.TraceFile != "" {
		f, err := os.Create(o.TraceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		traceOut = f
		rec = obs.NewRecorder(f)
	} else if o.ChromeFile != "" {
		rec = obs.NewRecorder(nil) // memory-only, exported at exit
	}

	// The telemetry endpoint starts before the workload so the run is
	// scrapeable while it executes, and Wait() keeps it up afterwards.
	var srv *serve.Server
	if o.Serve != "" {
		var err error
		srv, err = serve.Start(o.Serve, metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry      : %s/metrics (also /metrics.json /healthz /debug/pprof/)\n", srv.URL())
	}

	n, iters := o.N, o.Iters
	var vec core.Vector
	var predictedTcMs, predictedTcommMs float64
	chosen := struct{ p1, p2 int }{o.P1, o.P2}
	if chosen.p1 < 0 || chosen.p2 < 0 {
		fmt.Println("partitioning: benchmarking communication and searching configurations...")
		bench, err := commbench.Run(net, []topo.Topology{topo.OneD{}}, commbench.DefaultGrid())
		if err != nil {
			return err
		}
		est, err := core.NewEstimator(net, bench.Table, stencil.Annotations(n, variant, iters))
		if err != nil {
			return err
		}
		res, err := core.Partition(est)
		if err != nil {
			return err
		}
		chosen.p1, chosen.p2 = res.Config.Counts[0], res.Config.Counts[1]
		vec = res.Vector
		predictedTcMs = res.TcMs
		predictedTcommMs = res.TcommMs
		fmt.Printf("partitioning: chose %v, predicted T_c %.3f ms/cycle (%d evaluations)\n",
			res.Config, res.TcMs, res.Evaluations)
	}
	cfgCost := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{chosen.p1, chosen.p2},
	}
	if vec == nil {
		var err error
		vec, err = core.Decompose(net, cfgCost, n, model.OpFloat)
		if err != nil {
			return err
		}
	}
	fmt.Printf("configuration  : sparc2:%d ipc:%d\n", chosen.p1, chosen.p2)
	fmt.Printf("partition vec  : %v\n", vec)

	// Drift monitor: with estimator predictions in hand, subscribe to the
	// runtimes' per-cycle measurements and flag sustained deviation from
	// the predicted T_c (gauges drift.pct{task=...}, events on -trace).
	// With -repart, each drift event also latches the repartitioning
	// trigger consumed by the live adaptive runtime's next round.
	var repartTrig *repart.DriftTrigger
	var cycleSink obs.CycleSink
	if metrics != nil && predictedTcMs > 0 {
		driftCfg := drift.Config{
			PredCycleMs:  predictedTcMs,
			PredCommMs:   predictedTcommMs,
			ThresholdPct: o.DriftPct,
		}
		if o.Repart {
			repartTrig = &repart.DriftTrigger{}
			driftCfg.Notify = func(drift.Event) { repartTrig.Fire() }
		}
		cycleSink = drift.New(driftCfg, metrics, rec)
	}

	verify := o.Verify
	var grid [][]float64
	switch o.Runtime {
	case "sim":
		var rep spmdReport
		switch o.Mode {
		case "fixed":
			var grid2 [][]float64
			var elapsedMs float64
			if o.Faults != "" {
				sched, err := faults.Parse(o.Faults)
				if err != nil {
					return err
				}
				sched = sched.Sanitize(chosen.p1+chosen.p2, iters)
				if len(sched.Crashes) > 0 {
					return fmt.Errorf("crash faults need the fault-tolerant live runtime (-runtime live)")
				}
				eng := faults.NewEngine(sched, o.FaultSeed, metrics)
				fmt.Printf("fault schedule : %s (seed %d)\n", sched.String(), o.FaultSeed)
				res, err := stencil.RunSimFaulty(net, cfgCost, vec, variant, n, iters, eng, 10,
					stencil.AdaptiveOptions{Metrics: metrics, Trace: rec})
				if err != nil {
					return err
				}
				grid2, elapsedMs, rep = res.Grid, res.ElapsedMs, res.Report
			} else {
				res, err := stencil.RunSimMonitored(net, cfgCost, vec, variant, n, iters, metrics, rec, cycleSink)
				if err != nil {
					return err
				}
				grid2, elapsedMs, rep = res.Grid, res.ElapsedMs, res.Report
			}
			grid = grid2
			fmt.Printf("simulated time : %.1f ms (%d iterations, %s)\n", elapsedMs, iters, variant)
			if predictedTcMs > 0 && iters > 0 {
				// Estimate-vs-measured drift: predicted per-cycle cost
				// against the simulated per-cycle average.
				measured := elapsedMs / float64(iters)
				drift := trace.DeviationPct(measured, predictedTcMs)
				metrics.Gauge("stencil.drift_pct").Set(drift)
				fmt.Printf("estimate drift : predicted %.3f vs measured %.3f ms/cycle (%+.1f%%)\n",
					predictedTcMs, measured, drift)
			}
		case "converge":
			res, err := stencil.RunSimUntil(net, cfgCost, vec, variant, n, o.Tol, iters*100)
			if err != nil {
				return err
			}
			grid = res.Grid
			rep = res.Report
			verify = false // iteration count is tolerance driven
			fmt.Printf("simulated time : %.1f ms (converged to Δ≤%g in %d iterations, %s)\n",
				res.ElapsedMs, o.Tol, res.Iterations, variant)
			wantGrid, wantIters, _ := stencil.SequentialUntil(stencil.NewGrid(n), o.Tol, iters*100)
			if res.Iterations != wantIters {
				return fmt.Errorf("converged in %d iterations, sequential needs %d", res.Iterations, wantIters)
			}
			for i := range wantGrid {
				for j := range wantGrid[i] {
					if grid[i][j] != wantGrid[i][j] {
						return fmt.Errorf("verification FAILED at (%d,%d)", i, j)
					}
				}
			}
			fmt.Println("verification   : converged grid matches the sequential reference exactly")
		case "adaptive":
			slow := func(rank, iter int) float64 {
				if rank == o.SlowRank && iter >= iters/8 {
					return o.SlowFactor
				}
				return 1
			}
			static, err := stencil.RunSimAdaptive(net, cfgCost, vec, variant, n, iters,
				stencil.AdaptiveOptions{Slowdown: slow})
			if err != nil {
				return err
			}
			res, err := stencil.RunSimAdaptive(net, cfgCost, vec, variant, n, iters,
				stencil.AdaptiveOptions{Slowdown: slow, RebalanceEvery: iters / 8,
					Metrics: metrics, Trace: rec})
			if err != nil {
				return err
			}
			grid = res.Grid
			rep = res.Report
			fmt.Printf("simulated time : static %.1f ms vs adaptive %.1f ms (%.2fx; %d rebalances, %d rows migrated)\n",
				static.ElapsedMs, res.ElapsedMs, static.ElapsedMs/res.ElapsedMs, res.Rebalances, res.MigratedRows)
			fmt.Printf("final vector   : %v\n", res.FinalVector)
		default:
			return fmt.Errorf("unknown mode %q", o.Mode)
		}
		for _, s := range rep.Segments {
			fmt.Printf("  segment %-8s %6d msgs  %8d bytes  busy %.1f ms\n", s.Name, s.Messages, s.Bytes, s.BusyMs)
		}
	case "live":
		tasks := chosen.p1 + chosen.p2
		worldOpts := []mmps.Option{mmps.WithRecvTimeout(60 * time.Second), mmps.WithMetrics(metrics)}
		var eng *faults.Engine
		if o.Faults != "" {
			sched, err := faults.Parse(o.Faults)
			if err != nil {
				return err
			}
			sched = sched.Sanitize(tasks, iters)
			eng = faults.NewEngine(sched, o.FaultSeed, metrics)
			worldOpts = append(worldOpts, mmps.WithInjector(eng))
			fmt.Printf("fault schedule : %s (seed %d)\n", sched.String(), o.FaultSeed)
		}
		eps, err := mmps.NewUDPWorld(tasks, worldOpts...)
		if err != nil {
			return err
		}
		world := make([]mmps.Transport, tasks)
		for i, ep := range eps {
			world[i] = ep
		}
		defer func() {
			for _, ep := range eps {
				_ = ep.Close() // best-effort teardown; the run's result is already in hand
			}
		}()
		// Emulate the 2x slower IPCs by doubling their row work.
		factors := make([]int, tasks)
		for i := range factors {
			factors[i] = 1
			if i >= chosen.p1 {
				factors[i] = 2
			}
		}
		if eng != nil {
			// Fault-tolerant runtime: buddy checkpoints, detection, and
			// recovery by re-partitioning over the survivors.
			placement := make([]string, 0, tasks)
			for i := 0; i < chosen.p1; i++ {
				placement = append(placement, model.Sparc2Cluster)
			}
			for i := 0; i < chosen.p2; i++ {
				placement = append(placement, model.IPCCluster)
			}
			res, err := stencil.RunLiveFT(world, vec, variant, n, iters, stencil.FTOptions{
				Injector:        eng,
				Repartition:     stencil.Repartitioner(net, cost.PaperTable(), variant, n, iters, placement),
				CheckpointEvery: o.Ckpt,
				WorkFactor:      factors,
				Metrics:         metrics,
				Trace:           rec,
				Cycles:          cycleSink,
			})
			if err != nil {
				return err
			}
			grid = res.Grid
			fmt.Printf("wall-clock time: %v (%d iterations, %s, %d tasks over UDP, fault-tolerant)\n",
				res.Elapsed, iters, variant, tasks)
			fmt.Printf("fault tolerance: %d recoveries, failed ranks %v\n", res.Recoveries, res.Failed)
			for _, ev := range res.Events {
				fmt.Printf("  epoch %d: dead %v, rolled back to cycle %d, recovery latency %.1f ms, vector %v\n",
					ev.Epoch, ev.Dead, ev.RollbackCycle, ev.LatencyMs, ev.Vector)
			}
		} else if o.Repart {
			// Continuous repartitioning: drift events (when the monitor is
			// on) or the interval fallback trigger an incremental re-plan
			// whose objective prices row migration with the paper's Eq. 1
			// constants, followed by a real row migration between cycles.
			migParams, err := cost.PaperTable().Comm(model.Sparc2Cluster, "1-D")
			if err != nil {
				return err
			}
			lopts := stencil.LiveAdaptiveOptions{
				RebalanceEvery: o.RepartEvery,
				Planner: repart.PlannerConfig{
					Mig:           cost.MigrationFromParams(migParams, float64(stencil.BytesPerPoint*n)),
					HorizonCycles: o.RepartHorizon,
				},
				WorkFactor: factors,
				Metrics:    metrics,
				Trace:      rec,
				Cycles:     cycleSink,
			}
			if repartTrig != nil {
				lopts.Trigger = repartTrig
			}
			res, err := stencil.RunLiveAdaptive(world, vec, variant, n, iters, lopts)
			if err != nil {
				return err
			}
			grid = res.Grid
			fmt.Printf("wall-clock time: %v (%d iterations, %s, %d tasks over UDP, continuous repartitioning)\n",
				res.Elapsed, iters, variant, tasks)
			fmt.Printf("repartitioning : %d rounds, %d plans applied, %d rows migrated, final vector %v\n",
				len(res.Plans), res.Rebalances, res.MigratedRows, res.FinalVector)
			for _, p := range res.Plans {
				if p.Changed() {
					fmt.Printf("  %s\n", p)
				}
			}
		} else {
			res, err := stencil.RunLiveMonitored(world, vec, variant, n, iters, factors, metrics, rec, cycleSink)
			if err != nil {
				return err
			}
			grid = res.Grid
			fmt.Printf("wall-clock time: %v (%d iterations, %s, %d tasks over UDP)\n",
				res.Elapsed, iters, variant, tasks)
		}
	default:
		return fmt.Errorf("unknown runtime %q", o.Runtime)
	}

	if verify {
		want := stencil.Sequential(stencil.NewGrid(n), iters)
		for i := range want {
			for j := range want[i] {
				if grid[i][j] != want[i][j] {
					return fmt.Errorf("verification FAILED at (%d,%d): %v != %v", i, j, grid[i][j], want[i][j])
				}
			}
		}
		fmt.Println("verification   : distributed grid matches the sequential reference exactly")
	}

	if o.Metrics {
		fmt.Println()
		fmt.Print(metrics.Render())
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
		if traceOut != nil {
			fmt.Printf("cycle trace    : %s (%d events)\n", o.TraceFile, rec.Len())
		}
		if o.ChromeFile != "" {
			f, err := os.Create(o.ChromeFile)
			if err != nil {
				return err
			}
			if err := obs.WriteChromeTrace(f, rec.Events()); err != nil {
				_ = f.Close() // the write error is the one worth reporting
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("chrome trace   : %s (open in chrome://tracing)\n", o.ChromeFile)
		}
	}
	if srv != nil {
		fmt.Println("telemetry      : run complete, still serving (interrupt to exit)")
		srv.Wait()
	}
	return nil
}
