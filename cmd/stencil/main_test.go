package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSimFixed(t *testing.T) {
	if err := run(runOptions{N: 48, Variant: "sten1", Iters: 3, P1: 2, P2: 1, Runtime: "sim", Verify: true, Mode: "fixed", SlowFactor: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimConverge(t *testing.T) {
	if err := run(runOptions{N: 32, Variant: "sten2", Iters: 10, P1: 2, P2: 0, Runtime: "sim", Verify: true, Mode: "converge", Tol: 0.05, SlowFactor: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimAdaptive(t *testing.T) {
	if err := run(runOptions{N: 64, Variant: "sten1", Iters: 16, P1: 3, P2: 0, Runtime: "sim", Mode: "adaptive", SlowRank: 1, SlowFactor: 4}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLiveSmall(t *testing.T) {
	if err := run(runOptions{N: 24, Variant: "sten2", Iters: 2, P1: 2, P2: 1, Runtime: "live", Verify: true, Mode: "fixed", SlowFactor: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimObservability(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "cycles.jsonl")
	chromePath := filepath.Join(dir, "cycles.json")
	err := run(runOptions{
		N: 48, Variant: "sten1", Iters: 3, P1: 2, P2: 1,
		Runtime: "sim", Verify: true, Mode: "fixed", SlowFactor: 1,
		Metrics: true, TraceFile: tracePath, ChromeFile: chromePath,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One span event per task per cycle, each a valid JSON line.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line is not valid JSON: %v\n%s", err, sc.Text())
		}
		if ev["type"] == "span" {
			spans++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	const tasks, iters = 3, 3
	if spans != tasks*iters {
		t.Errorf("spans = %d, want %d", spans, tasks*iters)
	}

	// The Chrome export must be a JSON array with the same event count.
	raw, err := os.ReadFile(chromePath)
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(out) != spans {
		t.Errorf("chrome trace has %d events, want %d", len(out), spans)
	}
}

func TestRunErrors(t *testing.T) {
	base := runOptions{N: 24, Variant: "sten1", Iters: 2, P1: 1, P2: 0, Runtime: "sim", Mode: "fixed", SlowFactor: 1}
	o := base
	o.Variant = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown variant accepted")
	}
	o = base
	o.Runtime = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown runtime accepted")
	}
	o = base
	o.Mode = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown mode accepted")
	}
}
