package main

import "testing"

func TestRunSimFixed(t *testing.T) {
	if err := run(48, "sten1", 3, 2, 1, "sim", true, "fixed", 0, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimConverge(t *testing.T) {
	if err := run(32, "sten2", 10, 2, 0, "sim", true, "converge", 0.05, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimAdaptive(t *testing.T) {
	if err := run(64, "sten1", 16, 3, 0, "sim", false, "adaptive", 0, 1, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunLiveSmall(t *testing.T) {
	if err := run(24, "sten2", 2, 2, 1, "live", true, "fixed", 0, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(24, "bogus", 2, 1, 0, "sim", false, "fixed", 0, 0, 1); err == nil {
		t.Error("unknown variant accepted")
	}
	if err := run(24, "sten1", 2, 1, 0, "bogus", false, "fixed", 0, 0, 1); err == nil {
		t.Error("unknown runtime accepted")
	}
	if err := run(24, "sten1", 2, 1, 0, "sim", false, "bogus", 0, 0, 1); err == nil {
		t.Error("unknown mode accepted")
	}
}
