package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: netpart
cpu: some shared runner
BenchmarkPartitionOverhead-8   	  142608	      8109 ns/op	     818 B/op	      29 allocs/op
BenchmarkTable2Elapsed-8       	       2	 512345678 ns/op	 1234567 B/op	    4321 allocs/op
PASS
ok  	netpart	3.456s
pkg: netpart/internal/core
BenchmarkEstimateObserver/disabled-8 	 2745732	       434.4 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	netpart/internal/core	1.234s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(snap), snap)
	}
	po, ok := snap["netpart/BenchmarkPartitionOverhead"]
	if !ok {
		t.Fatalf("missing package-qualified PartitionOverhead key in %v", snap)
	}
	if po.NsPerOp != 8109 || po.BytesPerOp != 818 || po.AllocsPerOp != 29 || !po.HaveMem {
		t.Fatalf("PartitionOverhead metrics = %+v", po)
	}
	eo, ok := snap["netpart/internal/core/BenchmarkEstimateObserver/disabled"]
	if !ok {
		t.Fatalf("missing sub-benchmark key in %v", snap)
	}
	if eo.NsPerOp != 434.4 || eo.AllocsPerOp != 0 || !eo.HaveMem {
		t.Fatalf("EstimateObserver metrics = %+v", eo)
	}
}

func TestParseBenchWithThroughputColumn(t *testing.T) {
	// b.SetBytes adds an MB/s column between ns/op and the -benchmem
	// columns; the parser must skip it.
	snap, err := parseBench(strings.NewReader(
		"pkg: netpart/internal/stencil\nBenchmarkStencilKernel-8   200   45997 ns/op   10017.50 MB/s   0 B/op   0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := snap["netpart/internal/stencil/BenchmarkStencilKernel"]
	if !ok {
		t.Fatalf("missing key in %v", snap)
	}
	if m.NsPerOp != 45997 || m.AllocsPerOp != 0 || !m.HaveMem {
		t.Fatalf("metrics = %+v, want ns=45997 allocs=0 HaveMem", m)
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	snap, err := parseBench(strings.NewReader("pkg: p\nBenchmarkX-4   100   250 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := snap["p/BenchmarkX"]
	if m.NsPerOp != 250 || m.HaveMem {
		t.Fatalf("metrics = %+v, want ns only", m)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := Snapshot{
		"p/BenchmarkSlow":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
		"p/BenchmarkAlloc": {NsPerOp: 1000, AllocsPerOp: 0, HaveMem: true},
		"p/BenchmarkFine":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
		"p/BenchmarkFast":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
		"p/BenchmarkGone":  {NsPerOp: 1000, HaveMem: false},
	}
	cur := Snapshot{
		"p/BenchmarkSlow":  {NsPerOp: 1500, AllocsPerOp: 10, HaveMem: true}, // +50% time
		"p/BenchmarkAlloc": {NsPerOp: 1000, AllocsPerOp: 1, HaveMem: true},  // zero-alloc guarantee broken
		"p/BenchmarkFine":  {NsPerOp: 1100, AllocsPerOp: 11, HaveMem: true}, // within threshold
		"p/BenchmarkFast":  {NsPerOp: 400, AllocsPerOp: 2, HaveMem: true},   // improvement
		"p/BenchmarkNew":   {NsPerOp: 5, HaveMem: false},                    // only in current: ignored
	}
	findings := compare(base, cur, 0.30)
	regressed := map[string]bool{}
	improved := 0
	for _, f := range findings {
		if f.Regressed {
			regressed[f.Name+" "+f.Metric] = true
		} else {
			improved++
		}
	}
	if !regressed["p/BenchmarkSlow ns/op"] {
		t.Errorf("missing ns/op regression for BenchmarkSlow: %v", findings)
	}
	if !regressed["p/BenchmarkAlloc allocs/op"] {
		t.Errorf("zero-alloc baseline growing to 1 alloc must regress: %v", findings)
	}
	if len(regressed) != 2 {
		t.Errorf("got regressions %v, want exactly 2", regressed)
	}
	if improved != 2 { // BenchmarkFast improves on both metrics
		t.Errorf("got %d improvements, want 2: %v", improved, findings)
	}
}

// TestCompareExitCode is the acceptance check: a synthetic injected
// regression must make `benchdiff compare` exit non-zero, and -soft must
// downgrade the same regression to a warning (exit 0).
func TestCompareExitCode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s Snapshot) string {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", Snapshot{"p/BenchmarkX": {NsPerOp: 100, AllocsPerOp: 5, HaveMem: true}})
	bad := write("bad.json", Snapshot{"p/BenchmarkX": {NsPerOp: 300, AllocsPerOp: 5, HaveMem: true}})
	good := write("good.json", Snapshot{"p/BenchmarkX": {NsPerOp: 101, AllocsPerOp: 5, HaveMem: true}})

	var out strings.Builder
	code, err := runCompare([]string{base, bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatalf("synthetic regression exited 0; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}

	out.Reset()
	code, err = runCompare([]string{"-soft", base, bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("-soft exited %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("-soft must still report the regression:\n%s", out.String())
	}

	out.Reset()
	code, err = runCompare([]string{base, good}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean comparison exited %d, want 0; output:\n%s", code, out.String())
	}
}

func TestRunParseRoundTrip(t *testing.T) {
	var out strings.Builder
	if err := runParse(nil, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("parse output is not valid JSON: %v\n%s", err, out.String())
	}
	if snap["netpart/BenchmarkPartitionOverhead"].AllocsPerOp != 29 {
		t.Fatalf("round-trip lost metrics: %v", snap)
	}
}

func TestRunParseEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := runParse(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("empty input must error")
	}
}

func f64(v float64) *float64 { return &v }

func TestGateVerdicts(t *testing.T) {
	policy := Policy{
		"p/BenchmarkZeroAlloc": {MaxAllocsPerOp: f64(0)},
		"p/BenchmarkLatency":   {MaxNsPerOp: f64(1e6)},
		"p/BenchmarkMissing":   {MaxNsPerOp: f64(1)},
		"p/BenchmarkNoMem":     {MaxAllocsPerOp: f64(0)},
	}
	snap := Snapshot{
		"p/BenchmarkZeroAlloc": {NsPerOp: 500, AllocsPerOp: 0, HaveMem: true},
		"p/BenchmarkLatency":   {NsPerOp: 2e6},
		"p/BenchmarkNoMem":     {NsPerOp: 100},
	}
	lines, violations := gate(policy, snap, nil)
	joined := strings.Join(lines, "\n")
	if violations != 3 {
		t.Fatalf("gate found %d violations, want 3:\n%s", violations, joined)
	}
	for _, want := range []string{
		"ok   p/BenchmarkZeroAlloc",
		"FAIL p/BenchmarkLatency",
		"FAIL p/BenchmarkMissing: missing from snapshot",
		"FAIL p/BenchmarkNoMem",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("gate output lacks %q:\n%s", want, joined)
		}
	}
}

func TestGateAllocRegression(t *testing.T) {
	policy := Policy{"p/BenchmarkZeroAlloc": {MaxAllocsPerOp: f64(0)}}
	snap := Snapshot{"p/BenchmarkZeroAlloc": {NsPerOp: 500, AllocsPerOp: 2, HaveMem: true}}
	if _, violations := gate(policy, snap, nil); violations != 1 {
		t.Fatalf("broken zero-alloc guarantee found %d violations, want 1", violations)
	}
}

func TestRunGateExitCode(t *testing.T) {
	dir := t.TempDir()
	writeJSON := func(name string, v any) string {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	policy := writeJSON("policy.json", Policy{"p/BenchmarkX": {MaxNsPerOp: f64(1000), MaxAllocsPerOp: f64(0)}})
	good := writeJSON("good.json", Snapshot{"p/BenchmarkX": {NsPerOp: 900, AllocsPerOp: 0, HaveMem: true}})
	bad := writeJSON("bad.json", Snapshot{"p/BenchmarkX": {NsPerOp: 900, AllocsPerOp: 1, HaveMem: true}})

	var out strings.Builder
	code, err := runGate([]string{"-policy", policy, good}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean gate: code %d err %v; output:\n%s", code, err, out.String())
	}
	out.Reset()
	code, err = runGate([]string{"-policy", policy, bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("violating gate exited %d, want 1; output:\n%s", code, out.String())
	}
}

// TestCommittedPolicyGatesCurrentBenchmarks keeps BENCH_policy.json and
// BENCH_baseline.json coherent: every policy entry must exist in the
// committed baseline and the baseline itself must satisfy every budget, so
// a benchmark rename or a budget-breaking baseline refresh fails here
// before it confuses CI.
func TestCommittedPolicyGatesCurrentBenchmarks(t *testing.T) {
	policy, err := loadPolicy(filepath.Join("..", "..", "BENCH_policy.json"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := loadSnapshot(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	annotated, err := hotpathAnnotated(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	lines, violations := gate(policy, snap, annotated)
	if violations != 0 {
		t.Fatalf("committed baseline violates committed policy:\n%s", strings.Join(lines, "\n"))
	}
}

// TestGateHotpathAnchors pins the -hotpath-src cross-check: a zero-alloc
// budget must name annotated functions, and an anchor that lost its
// //netpart:hotpath annotation (rename, move, or de-annotation) is a
// violation.
func TestGateHotpathAnchors(t *testing.T) {
	policy := Policy{
		"p/BenchmarkAnchored":   {MaxAllocsPerOp: f64(0), Hotpath: []string{"internal/x.Fast", "internal/x.(T).fill"}},
		"p/BenchmarkUnanchored": {MaxAllocsPerOp: f64(0)},
		"p/BenchmarkStale":      {MaxAllocsPerOp: f64(0), Hotpath: []string{"internal/x.Gone"}},
		"p/BenchmarkLatency":    {MaxNsPerOp: f64(1e9)}, // no zero-alloc ceiling: anchors optional
	}
	snap := Snapshot{
		"p/BenchmarkAnchored":   {NsPerOp: 10, AllocsPerOp: 0, HaveMem: true},
		"p/BenchmarkUnanchored": {NsPerOp: 10, AllocsPerOp: 0, HaveMem: true},
		"p/BenchmarkStale":      {NsPerOp: 10, AllocsPerOp: 0, HaveMem: true},
		"p/BenchmarkLatency":    {NsPerOp: 10},
	}
	annotated := map[string]bool{"internal/x.Fast": true, "internal/x.(T).fill": true}
	lines, violations := gate(policy, snap, annotated)
	joined := strings.Join(lines, "\n")
	if violations != 2 {
		t.Fatalf("gate found %d violations, want 2 (unanchored + stale):\n%s", violations, joined)
	}
	for _, want := range []string{
		"ok   p/BenchmarkAnchored: anchor internal/x.Fast",
		"FAIL p/BenchmarkUnanchored: zero-alloc budget lists no hotpath anchors",
		"FAIL p/BenchmarkStale: anchor internal/x.Gone has no //netpart:hotpath annotation",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("gate output lacks %q:\n%s", want, joined)
		}
	}
	// Without -hotpath-src (nil set) the anchor checks are skipped.
	if _, v := gate(policy, snap, nil); v != 0 {
		t.Errorf("anchor checks must be skipped without a source scan, got %d violations", v)
	}
}

// TestHotpathAnnotatedScan exercises the parser-only source scan on a
// synthetic tree: functions and methods are keyed by relative package
// directory, testdata and _test.go files are skipped.
func TestHotpathAnnotatedScan(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("internal/x/x.go", `package x

//netpart:hotpath
func Fast() {}

type T struct{}

// fill is hot.
//
//netpart:hotpath
func (t *T) fill() {}

func cold() {}
`)
	write("root.go", `package root

//netpart:hotpath
func Top() {}
`)
	write("internal/x/x_test.go", `package x

//netpart:hotpath
func testOnly() {}
`)
	write("internal/x/testdata/fix.go", `package fix

//netpart:hotpath
func fixture() {}
`)
	got, err := hotpathAnnotated(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"internal/x.Fast", "internal/x.(T).fill", "Top"} {
		if !got[want] {
			t.Errorf("scan missed %s; got %v", want, got)
		}
	}
	for _, bad := range []string{"internal/x.cold", "internal/x.testOnly", "internal/x/testdata.fixture"} {
		if got[bad] {
			t.Errorf("scan must not include %s", bad)
		}
	}
}

// TestCompareJSON pins the machine-readable form of `compare -json`
// against the same synthetic regression the exit-code test injects: one
// JSON document whose findings carry the regression verdicts, with the
// exit-code contract unchanged.
func TestCompareJSON(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s Snapshot) string {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", Snapshot{
		"p/BenchmarkSlow":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
		"p/BenchmarkAlloc": {NsPerOp: 1000, AllocsPerOp: 0, HaveMem: true},
		"p/BenchmarkFine":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
	})
	cur := write("cur.json", Snapshot{
		"p/BenchmarkSlow":  {NsPerOp: 1500, AllocsPerOp: 10, HaveMem: true}, // +50% time
		"p/BenchmarkAlloc": {NsPerOp: 1000, AllocsPerOp: 1, HaveMem: true},  // zero-alloc broken
		"p/BenchmarkFine":  {NsPerOp: 1100, AllocsPerOp: 11, HaveMem: true}, // within threshold
	})

	var out strings.Builder
	code, err := runCompare([]string{"-json", base, cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
	}
	var rep CompareReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not one JSON document: %v\n%s", err, out.String())
	}
	if rep.Compared != 3 || rep.Regressions != 2 || rep.Threshold != 0.30 {
		t.Errorf("summary = %+v, want compared=3 regressions=2 threshold=0.3", rep)
	}
	want := map[string]bool{
		"p/BenchmarkSlow ns/op":      true,
		"p/BenchmarkAlloc allocs/op": true,
	}
	for _, f := range rep.Findings {
		if f.Regressed != want[f.Name+" "+f.Metric] {
			t.Errorf("finding %+v has wrong verdict", f)
		}
		if f.Cur <= 0 {
			t.Errorf("finding %+v lost its measurements", f)
		}
	}
	if len(rep.Findings) != 2 {
		t.Errorf("got %d findings, want 2: %+v", len(rep.Findings), rep.Findings)
	}

	// A clean comparison still emits a well-formed document with an empty
	// findings array, not null.
	out.Reset()
	code, err = runCompare([]string{"-json", base, base}, &out)
	if err != nil || code != 0 {
		t.Fatalf("clean compare: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), `"findings": []`) {
		t.Errorf("empty findings must serialize as [], got:\n%s", out.String())
	}
}
