package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: netpart
cpu: some shared runner
BenchmarkPartitionOverhead-8   	  142608	      8109 ns/op	     818 B/op	      29 allocs/op
BenchmarkTable2Elapsed-8       	       2	 512345678 ns/op	 1234567 B/op	    4321 allocs/op
PASS
ok  	netpart	3.456s
pkg: netpart/internal/core
BenchmarkEstimateObserver/disabled-8 	 2745732	       434.4 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	netpart/internal/core	1.234s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(snap), snap)
	}
	po, ok := snap["netpart/BenchmarkPartitionOverhead"]
	if !ok {
		t.Fatalf("missing package-qualified PartitionOverhead key in %v", snap)
	}
	if po.NsPerOp != 8109 || po.BytesPerOp != 818 || po.AllocsPerOp != 29 || !po.HaveMem {
		t.Fatalf("PartitionOverhead metrics = %+v", po)
	}
	eo, ok := snap["netpart/internal/core/BenchmarkEstimateObserver/disabled"]
	if !ok {
		t.Fatalf("missing sub-benchmark key in %v", snap)
	}
	if eo.NsPerOp != 434.4 || eo.AllocsPerOp != 0 || !eo.HaveMem {
		t.Fatalf("EstimateObserver metrics = %+v", eo)
	}
}

func TestParseBenchWithoutBenchmem(t *testing.T) {
	snap, err := parseBench(strings.NewReader("pkg: p\nBenchmarkX-4   100   250 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	m := snap["p/BenchmarkX"]
	if m.NsPerOp != 250 || m.HaveMem {
		t.Fatalf("metrics = %+v, want ns only", m)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := Snapshot{
		"p/BenchmarkSlow":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
		"p/BenchmarkAlloc": {NsPerOp: 1000, AllocsPerOp: 0, HaveMem: true},
		"p/BenchmarkFine":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
		"p/BenchmarkFast":  {NsPerOp: 1000, AllocsPerOp: 10, HaveMem: true},
		"p/BenchmarkGone":  {NsPerOp: 1000, HaveMem: false},
	}
	cur := Snapshot{
		"p/BenchmarkSlow":  {NsPerOp: 1500, AllocsPerOp: 10, HaveMem: true}, // +50% time
		"p/BenchmarkAlloc": {NsPerOp: 1000, AllocsPerOp: 1, HaveMem: true},  // zero-alloc guarantee broken
		"p/BenchmarkFine":  {NsPerOp: 1100, AllocsPerOp: 11, HaveMem: true}, // within threshold
		"p/BenchmarkFast":  {NsPerOp: 400, AllocsPerOp: 2, HaveMem: true},   // improvement
		"p/BenchmarkNew":   {NsPerOp: 5, HaveMem: false},                    // only in current: ignored
	}
	findings := compare(base, cur, 0.30)
	regressed := map[string]bool{}
	improved := 0
	for _, f := range findings {
		if f.Regressed {
			regressed[f.Name+" "+f.Metric] = true
		} else {
			improved++
		}
	}
	if !regressed["p/BenchmarkSlow ns/op"] {
		t.Errorf("missing ns/op regression for BenchmarkSlow: %v", findings)
	}
	if !regressed["p/BenchmarkAlloc allocs/op"] {
		t.Errorf("zero-alloc baseline growing to 1 alloc must regress: %v", findings)
	}
	if len(regressed) != 2 {
		t.Errorf("got regressions %v, want exactly 2", regressed)
	}
	if improved != 2 { // BenchmarkFast improves on both metrics
		t.Errorf("got %d improvements, want 2: %v", improved, findings)
	}
}

// TestCompareExitCode is the acceptance check: a synthetic injected
// regression must make `benchdiff compare` exit non-zero, and -soft must
// downgrade the same regression to a warning (exit 0).
func TestCompareExitCode(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s Snapshot) string {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", Snapshot{"p/BenchmarkX": {NsPerOp: 100, AllocsPerOp: 5, HaveMem: true}})
	bad := write("bad.json", Snapshot{"p/BenchmarkX": {NsPerOp: 300, AllocsPerOp: 5, HaveMem: true}})
	good := write("good.json", Snapshot{"p/BenchmarkX": {NsPerOp: 101, AllocsPerOp: 5, HaveMem: true}})

	var out strings.Builder
	code, err := runCompare([]string{base, bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code == 0 {
		t.Fatalf("synthetic regression exited 0; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("regression not reported:\n%s", out.String())
	}

	out.Reset()
	code, err = runCompare([]string{"-soft", base, bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("-soft exited %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("-soft must still report the regression:\n%s", out.String())
	}

	out.Reset()
	code, err = runCompare([]string{base, good}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean comparison exited %d, want 0; output:\n%s", code, out.String())
	}
}

func TestRunParseRoundTrip(t *testing.T) {
	var out strings.Builder
	if err := runParse(nil, strings.NewReader(sampleOutput), &out); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("parse output is not valid JSON: %v\n%s", err, out.String())
	}
	if snap["netpart/BenchmarkPartitionOverhead"].AllocsPerOp != 29 {
		t.Fatalf("round-trip lost metrics: %v", snap)
	}
}

func TestRunParseEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := runParse(nil, strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Fatal("empty input must error")
	}
}
