// Command benchdiff turns `go test -bench -benchmem` output into a JSON
// snapshot and compares two snapshots for regressions. It is the guard rail
// behind BENCH_baseline.json: CI (and developers) regenerate a snapshot and
// diff it against the committed baseline.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchdiff parse > BENCH_pr.json
//	benchdiff compare [-threshold 0.30] [-soft] [-json] BENCH_baseline.json BENCH_pr.json
//	benchdiff gate [-policy BENCH_policy.json] [-hotpath-src .] BENCH_pr.json
//
// compare exits 1 when any benchmark present in both snapshots regressed
// beyond the threshold in time (ns/op) or allocations (allocs/op); -soft
// downgrades regressions to warnings (exit 0), the mode CI uses on shared
// noisy runners. -json replaces the text report with one JSON document
// (compared, regressions, threshold, findings) so tooling can consume the
// verdict without scraping; the exit-code contract is unchanged.
//
// gate enforces absolute per-benchmark budgets from a committed policy
// file instead of diffing against a baseline: each entry names a hard
// ns/op and/or allocs/op ceiling, and a policy benchmark missing from the
// snapshot is itself a failure. Unlike compare, gate has no soft mode —
// the budgets are chosen loose enough (latency) or exact (zero-alloc
// guarantees, which shared-runner noise cannot perturb) to hard-fail CI.
//
// With -hotpath-src, gate additionally ties the dynamic zero-alloc
// budgets to the static allocfree proof: each policy entry may list the
// functions its benchmark exercises under "hotpath" (anchor form
// "internal/core.(Estimator).Estimate" — package directory relative to
// the source root, then the receiver-qualified name), every listed
// function must carry a //netpart:hotpath annotation in the tree (so
// netpartlint's interprocedural allocfree analyzer proves it), and every
// zero-alloc budget must list at least one anchor. De-annotating,
// renaming, or moving a hot function then fails the gate instead of
// silently orphaning its budget.
//
//netpart:deterministic
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's measurement.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// HaveMem records whether -benchmem columns were present (a zero
	// allocs/op is meaningful only when they were).
	HaveMem bool `json:"have_mem,omitempty"`
}

// Snapshot maps "package/BenchmarkName" to its metrics.
type Snapshot map[string]Metrics

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		if err := runParse(os.Args[2:], os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
	case "compare":
		code, err := runCompare(os.Args[2:], os.Stdout)
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	case "gate":
		code, err := runGate(os.Args[2:], os.Stdout)
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff parse [bench-output-file] | benchdiff compare [-threshold 0.30] [-soft] baseline.json current.json | benchdiff gate [-policy policy.json] current.json")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}

func runParse(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	snap, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(snap) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// benchLine matches e.g.
//
//	BenchmarkPartitionOverhead-8   200   8109 ns/op   818 B/op   29 allocs/op
//	BenchmarkStencilKernel-8       200   45997 ns/op  10017.50 MB/s  0 B/op  0 allocs/op
//
// The optional MB/s column appears when a benchmark calls b.SetBytes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+[\d.]+ MB/s)?(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

// parseBench extracts benchmark results from `go test -bench` output,
// keying each by the enclosing package (the "pkg:" header lines) plus the
// benchmark name with the GOMAXPROCS suffix stripped.
func parseBench(r io.Reader) (Snapshot, error) {
	snap := Snapshot{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var met Metrics
		met.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			met.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			met.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
			met.HaveMem = true
		}
		key := m[1]
		if pkg != "" {
			key = pkg + "/" + key
		}
		snap[key] = met
	}
	return snap, sc.Err()
}

// Finding is one comparison outcome worth reporting. The JSON field names
// are the machine-readable contract of `compare -json`.
type Finding struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"` // "ns/op" or "allocs/op"
	Base   float64 `json:"base"`
	Cur    float64 `json:"current"`
	// Regressed marks findings beyond the threshold in the bad direction.
	Regressed bool `json:"regressed"`
}

func (f Finding) String() string {
	ratio := "∞"
	if f.Base > 0 {
		ratio = fmt.Sprintf("%+.1f%%", 100*(f.Cur-f.Base)/f.Base)
	}
	verdict := "improved"
	if f.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%s %s: %s %.4g -> %.4g (%s)", verdict, f.Name, f.Metric, f.Base, f.Cur, ratio)
}

// compare diffs two snapshots. Only benchmarks present in both are
// considered. A regression is a ns/op or allocs/op increase beyond
// threshold (fractional, e.g. 0.30 = 30%); allocs/op growing from a zero
// baseline is always a regression (the zero-allocation guarantees are
// absolute). Improvements beyond the threshold are reported informationally.
func compare(base, cur Snapshot, threshold float64) []Finding {
	var findings []Finding
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		b, c := base[name], cur[name]
		if b.NsPerOp > 0 {
			switch {
			case c.NsPerOp > b.NsPerOp*(1+threshold):
				findings = append(findings, Finding{name, "ns/op", b.NsPerOp, c.NsPerOp, true})
			case c.NsPerOp < b.NsPerOp*(1-threshold):
				findings = append(findings, Finding{name, "ns/op", b.NsPerOp, c.NsPerOp, false})
			}
		}
		if !b.HaveMem || !c.HaveMem {
			continue
		}
		switch {
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			findings = append(findings, Finding{name, "allocs/op", 0, c.AllocsPerOp, true})
		case c.AllocsPerOp > b.AllocsPerOp*(1+threshold):
			findings = append(findings, Finding{name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, true})
		case b.AllocsPerOp > 0 && c.AllocsPerOp < b.AllocsPerOp*(1-threshold):
			findings = append(findings, Finding{name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp, false})
		}
	}
	return findings
}

// CompareReport is the whole-run result `compare -json` emits: the
// verdict CI scripts parse instead of grepping the text report.
type CompareReport struct {
	Compared    int       `json:"compared"`
	Regressions int       `json:"regressions"`
	Threshold   float64   `json:"threshold"`
	Findings    []Finding `json:"findings"`
}

func runCompare(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.30, "fractional regression threshold (0.30 = 30%)")
	soft := fs.Bool("soft", false, "report regressions but exit 0 (for noisy shared runners)")
	asJSON := fs.Bool("json", false, "emit the comparison as one JSON document instead of text")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("compare needs exactly two snapshot files, got %d", fs.NArg())
	}
	base, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	cur, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	findings := compare(base, cur, *threshold)
	regressions := 0
	for _, f := range findings {
		if f.Regressed {
			regressions++
		}
	}
	shared := 0
	for name := range base {
		if _, ok := cur[name]; ok {
			shared++
		}
	}
	if *asJSON {
		rep := CompareReport{Compared: shared, Regressions: regressions, Threshold: *threshold, Findings: findings}
		if rep.Findings == nil {
			rep.Findings = []Finding{}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		fmt.Fprintf(out, "benchdiff: %d benchmarks compared, %d regressions (threshold %.0f%%)\n",
			shared, regressions, *threshold*100)
	}
	if regressions > 0 && !*soft {
		return 1, nil
	}
	return 0, nil
}

// Limit is one benchmark's absolute budget in a gate policy. Nil fields are
// unconstrained; MaxAllocsPerOp additionally requires -benchmem columns in
// the gated snapshot (a zero without them is meaningless).
type Limit struct {
	MaxNsPerOp     *float64 `json:"max_ns_per_op,omitempty"`
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op,omitempty"`
	// Hotpath names the //netpart:hotpath functions this benchmark's
	// zero-alloc ceiling dynamically verifies (anchor form
	// "internal/core.(Estimator).Estimate"). Checked with -hotpath-src:
	// every anchor must be annotated in the source tree, and a
	// zero-alloc budget without anchors is a violation.
	Hotpath []string `json:"hotpath,omitempty"`
}

// Policy maps "package/BenchmarkName" to its budget. Every entry is
// required: a policy benchmark absent from the snapshot fails the gate, so
// renaming a benchmark cannot silently retire its budget.
type Policy map[string]Limit

// gate checks snap against policy and returns human-readable verdict lines
// plus the number of violations. annotated is the //netpart:hotpath anchor
// set from hotpathAnnotated; nil skips the anchor cross-check (no
// -hotpath-src given).
func gate(policy Policy, snap Snapshot, annotated map[string]bool) (lines []string, violations int) {
	names := make([]string, 0, len(policy))
	for name := range policy {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lim := policy[name]
		m, ok := snap[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("FAIL %s: missing from snapshot", name))
			violations++
			continue
		}
		if lim.MaxNsPerOp != nil {
			if m.NsPerOp > *lim.MaxNsPerOp {
				lines = append(lines, fmt.Sprintf("FAIL %s: %.4g ns/op exceeds budget %.4g", name, m.NsPerOp, *lim.MaxNsPerOp))
				violations++
			} else {
				lines = append(lines, fmt.Sprintf("ok   %s: %.4g ns/op within budget %.4g", name, m.NsPerOp, *lim.MaxNsPerOp))
			}
		}
		if lim.MaxAllocsPerOp != nil {
			switch {
			case !m.HaveMem:
				lines = append(lines, fmt.Sprintf("FAIL %s: allocs/op budget set but snapshot lacks -benchmem columns", name))
				violations++
			case m.AllocsPerOp > *lim.MaxAllocsPerOp:
				lines = append(lines, fmt.Sprintf("FAIL %s: %.4g allocs/op exceeds budget %.4g", name, m.AllocsPerOp, *lim.MaxAllocsPerOp))
				violations++
			default:
				lines = append(lines, fmt.Sprintf("ok   %s: %.4g allocs/op within budget %.4g", name, m.AllocsPerOp, *lim.MaxAllocsPerOp))
			}
		}
		if annotated == nil {
			continue
		}
		if lim.MaxAllocsPerOp != nil && *lim.MaxAllocsPerOp == 0 && len(lim.Hotpath) == 0 {
			lines = append(lines, fmt.Sprintf("FAIL %s: zero-alloc budget lists no hotpath anchors; name the //netpart:hotpath functions it verifies", name))
			violations++
		}
		for _, fn := range lim.Hotpath {
			if annotated[fn] {
				lines = append(lines, fmt.Sprintf("ok   %s: anchor %s carries //netpart:hotpath", name, fn))
			} else {
				lines = append(lines, fmt.Sprintf("FAIL %s: anchor %s has no //netpart:hotpath annotation in the source tree", name, fn))
				violations++
			}
		}
	}
	return lines, violations
}

// hotpathAnnotated scans the Go source tree under root (skipping testdata,
// vendor, hidden directories, and _test.go files) for function
// declarations annotated //netpart:hotpath, returning their anchor keys:
// "<dir>.<Func>" for functions and "<dir>.(<Recv>).<Func>" for methods,
// with <dir> the package directory relative to root ("" for the root
// package itself). Parser-only — no type checking — so the scan stays
// cheap enough for every CI gate run.
func hotpathAnnotated(root string) (map[string]bool, error) {
	out := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			hot := false
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, "//netpart:hotpath") {
					hot = true
				}
			}
			if !hot {
				continue
			}
			key := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				key = "(" + recvTypeName(fd.Recv.List[0].Type) + ")." + key
			}
			if rel != "." {
				key = filepath.ToSlash(rel) + "." + key
			}
			out[key] = true
		}
		return nil
	})
	return out, err
}

// recvTypeName extracts the base type name of a method receiver,
// unwrapping pointers and type parameters.
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return "?"
}

func runGate(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	policyPath := fs.String("policy", "BENCH_policy.json", "policy file of absolute per-benchmark budgets")
	hotpathSrc := fs.String("hotpath-src", "", "source root: cross-check the policy's hotpath anchors against //netpart:hotpath annotations")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("gate needs exactly one snapshot file, got %d", fs.NArg())
	}
	policy, err := loadPolicy(*policyPath)
	if err != nil {
		return 2, err
	}
	snap, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	var annotated map[string]bool
	if *hotpathSrc != "" {
		annotated, err = hotpathAnnotated(*hotpathSrc)
		if err != nil {
			return 2, err
		}
	}
	lines, violations := gate(policy, snap, annotated)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	fmt.Fprintf(out, "benchdiff: %d budgets gated, %d violations\n", len(policy), violations)
	if violations > 0 {
		return 1, nil
	}
	return 0, nil
}

func loadPolicy(path string) (Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("%s: empty policy", path)
	}
	return p, nil
}

func loadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
