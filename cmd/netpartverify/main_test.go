package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netpart/internal/analysis"
	"netpart/internal/analysis/protomc"
)

// jsonRecord mirrors record's wire form for decoding NDJSON output.
type jsonRecord struct {
	Protocol  string                `json:"protocol"`
	P         int                   `json:"p"`
	Sem       string                `json:"semantics"`
	Capacity  int                   `json:"capacity"`
	States    int                   `json:"states"`
	MaxQ      int                   `json:"max_in_flight"`
	Assign    string                `json:"assign"`
	Fn        string                `json:"fn"`
	Violation *protomc.Violation    `json:"violation"`
	Replay    *protomc.ReplayReport `json:"replay"`
	ReplayErr string                `json:"replay_error"`
}

// runJSON invokes the command with -json and decodes every record.
func runJSON(t *testing.T, args ...string) (int, []jsonRecord) {
	t.Helper()
	var buf bytes.Buffer
	code := run(append([]string{"-json"}, args...), &buf)
	var recs []jsonRecord
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var r jsonRecord
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("decoding NDJSON: %v", err)
		}
		recs = append(recs, r)
	}
	return code, recs
}

// TestRealProtocolsProved is the acceptance run: every lockstep protocol
// in the module — the halo exchange, the repartitioning decision round,
// the migration plans, and the FT recovery round — must be deadlock-free
// and message-conserving at every P in 2..5 under both rendezvous and
// bounded-buffer semantics.
func TestRealProtocolsProved(t *testing.T) {
	if testing.Short() {
		t.Skip("explores the full module state space")
	}
	code, recs := runJSON(t, "-p", "5")
	if code != 0 {
		for _, r := range recs {
			if r.Violation != nil {
				t.Errorf("%s P=%d %s [%s]: %s", r.Protocol, r.P, r.Sem, r.Assign, r.Violation)
			}
		}
		t.Fatalf("exit code = %d, want 0", code)
	}
	wantProtos := map[string]bool{
		"stencil.runLiveTask":     false,
		"repart.Engine.Round":     false,
		"repart.Migrator.Migrate": false,
		"stencil.ftTask.recover":  false,
	}
	perP := map[string]map[int]map[string]bool{}
	for _, r := range recs {
		name := strings.NewReplacer("(", "", ")", "", "*", "").Replace(r.Fn)
		if _, ok := wantProtos[name]; ok {
			wantProtos[name] = true
			if perP[name] == nil {
				perP[name] = map[int]map[string]bool{}
			}
			if perP[name][r.P] == nil {
				perP[name][r.P] = map[string]bool{}
			}
			perP[name][r.P][r.Sem] = true
		}
	}
	for name, seen := range wantProtos {
		if !seen {
			t.Errorf("protocol %s was not verified", name)
			continue
		}
		for p := 2; p <= 5; p++ {
			for _, sem := range []string{"rendezvous", "buffered"} {
				if !perP[name][p][sem] {
					t.Errorf("%s missing a check at P=%d under %s", name, p, sem)
				}
			}
		}
	}
}

// fixturePattern addresses the seeded-bug package relative to the module
// root, which the loader resolves from any working directory.
const fixturePattern = "./cmd/netpartverify/testdata/protofix"

// TestSeededUnmatchedSend finds the conditional-send bug at the smallest
// world: a deadlock whose schedule is the single branch step that skips
// the send, confirmed by simnet replay.
func TestSeededUnmatchedSend(t *testing.T) {
	code, recs := runJSON(t, "-p", "2", fixturePattern)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	found := false
	for _, r := range recs {
		if !strings.Contains(r.Protocol, "UnmatchedSend") || r.Violation == nil {
			continue
		}
		found = true
		v := r.Violation
		if v.Kind != "deadlock" {
			t.Errorf("kind = %s, want deadlock", v.Kind)
		}
		if len(v.Steps) != 1 || v.Steps[0].Action != "branch" {
			t.Errorf("schedule not minimal: %v", v.Steps)
		}
		if r.Replay == nil || !r.Replay.Confirmed {
			t.Errorf("replay did not confirm: %+v (err %q)", r.Replay, r.ReplayErr)
		}
	}
	if !found {
		t.Fatal("UnmatchedSend produced no violation")
	}
}

// TestSeededRecvCycle requires the cycle to be invisible at P=2 and a
// confirmed deadlock at P=3: a checker that stops at the smallest world
// would pass this protocol.
func TestSeededRecvCycle(t *testing.T) {
	code, recs := runJSON(t, "-p", "3", fixturePattern)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	at := map[int]bool{}
	for _, r := range recs {
		if !strings.Contains(r.Protocol, "RecvCycle") {
			continue
		}
		if r.Violation != nil {
			at[r.P] = true
			if r.Violation.Kind != "deadlock" {
				t.Errorf("P=%d kind = %s, want deadlock", r.P, r.Violation.Kind)
			}
			if r.Replay == nil || !r.Replay.Confirmed {
				t.Errorf("P=%d replay did not confirm: %+v", r.P, r.Replay)
			}
			for _, b := range r.Violation.Blocked {
				if !strings.Contains(b, "receiving") {
					t.Errorf("blocked rank is not receive-blocked: %s", b)
				}
			}
		}
	}
	if at[2] {
		t.Error("RecvCycle violated at P=2; the cycle must need three ranks")
	}
	if !at[3] {
		t.Error("RecvCycle produced no violation at P=3")
	}
}

// TestSeededDoubleSend requires the buffer-exhaustion deadlock at
// capacity 1 under both semantics, and a clean buffered pass at capacity
// 2 whose max-in-flight report shows why 2 suffices.
func TestSeededDoubleSend(t *testing.T) {
	code, recs := runJSON(t, "-p", "2", fixturePattern)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	bySem := map[string]*jsonRecord{}
	for i, r := range recs {
		if strings.Contains(r.Protocol, "DoubleSend") && r.P == 2 {
			bySem[r.Sem] = &recs[i]
		}
	}
	for _, sem := range []string{"rendezvous", "buffered"} {
		r := bySem[sem]
		if r == nil || r.Violation == nil {
			t.Errorf("no violation under %s", sem)
			continue
		}
		if r.Violation.Kind != "deadlock" {
			t.Errorf("%s kind = %s, want deadlock", sem, r.Violation.Kind)
		}
		if r.Replay == nil || !r.Replay.Confirmed {
			t.Errorf("%s replay did not confirm: %+v", sem, r.Replay)
		}
		if sem == "buffered" && len(r.Replay.BlockedSends) != 2 {
			t.Errorf("blocked sends = %v, want both ranks", r.Replay.BlockedSends)
		}
	}

	// Capacity 2 is sufficient: the buffered check passes and reports the
	// occupancy bound that proves it tight.
	code, recs = runJSON(t, "-p", "2", "-sem", "buffered", "-cap", "2", fixturePattern)
	for _, r := range recs {
		if strings.Contains(r.Protocol, "DoubleSend") {
			if r.Violation != nil {
				t.Errorf("capacity 2 still violates: %s", r.Violation)
			}
			if r.MaxQ != 2 {
				t.Errorf("max_in_flight = %d, want 2", r.MaxQ)
			}
		}
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (the other fixtures still fail)", code)
	}
}

// TestTraceDir writes counterexample trace files for artifact upload: one
// JSON file per violation, each holding the schedule and replay report.
func TestTraceDir(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	code := run([]string{"-p", "2", "-trace-dir", dir, fixturePattern}, &buf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no trace files written")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var r jsonRecord
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if r.Violation == nil {
			t.Errorf("%s: trace has no violation", e.Name())
		}
	}
}

// TestUsageErrors exercises the exit-2 paths.
func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"-sem", "psychic"}, &buf); code != 2 {
		t.Errorf("bad -sem: exit %d, want 2", code)
	}
	if code := run([]string{"-p", "1"}, &buf); code != 2 {
		t.Errorf("bad -p: exit %d, want 2", code)
	}
}

// TestUnknownBuiltinModel rejects a directive naming a model the command
// does not implement, instead of verifying nothing vacuously.
func TestUnknownBuiltinModel(t *testing.T) {
	if _, err := builtinSystems("no-such-model", 3); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// BenchmarkProtoVerify measures the exhaustive check of every builtin and
// extracted protocol instance at P=4 under both semantics — the unit CI's
// latency ceiling in BENCH_policy.json guards. Extraction runs once
// outside the loop: the checker, not the loader, is the hot path.
func BenchmarkProtoVerify(b *testing.B) {
	cwd, err := os.Getwd()
	if err != nil {
		b.Fatal(err)
	}
	root, modPath, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		b.Fatal(err)
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.Load("./...")
	if err != nil {
		b.Fatal(err)
	}
	protos, diags := analysis.ExtractProtos(pkgs, loader.Interproc())
	if len(diags) > 0 {
		b.Fatalf("extraction diagnostics: %v", diags)
	}
	var systems []*protomc.System
	for _, lp := range protos {
		var batch []*protomc.System
		if lp.Model != "" {
			batch, err = builtinSystems(lp.Model, 4)
		} else {
			batch, err = protomc.InstantiateAll(lp.Proto, 4)
		}
		if err != nil {
			b.Fatal(err)
		}
		systems = append(systems, batch...)
	}
	if len(systems) == 0 {
		b.Fatal("no systems to check")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sys := range systems {
			for _, sem := range []protomc.Semantics{protomc.Rendezvous, protomc.Buffered} {
				res, err := protomc.Check(sys, protomc.Config{Sem: sem})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatalf("%s: %s", sys.Name, res.Violation)
				}
			}
		}
	}
}
