// Builtin protocol models for the //netpart:lockstep model=<name>
// functions, whose traffic is computed at runtime rather than fixed by
// control flow: the Migrator's set-difference row spans and the FT
// recovery barrier. The models are built per instance (per migration plan,
// per dead set) by the same exported runtime functions that compute the
// real traffic — repart.NewOwners, repart.ForEachSpan, repart.Overlap —
// so who-sends-what-to-whom is the implementation's answer, not a
// transcription of it.
//
// Where the runtime is free to reorder (mmps sends are asynchronous and
// the FT absorb loop is pump-driven, applying rows tagged with their
// global position in any arrival order), the models serialize operations
// in a canonical order — ascending global row spans, lexicographic pair
// order for the sync flood, parity order for the ward ring — so that a
// single program per rank covers the protocol under both semantics. This
// is the same arrival-order reduction protomc's UniformRecv makes, applied
// at model construction.
package main

import (
	"fmt"

	"netpart/internal/analysis/protomc"
	"netpart/internal/core"
	"netpart/internal/repart"
)

// builtinSystems builds every instance of a named builtin model at world
// size p. Unknown names are an error (a directive typo must not verify
// vacuously).
func builtinSystems(model string, p int) ([]*protomc.System, error) {
	switch model {
	case "migration":
		return migrationSystems(p), nil
	case "ft-recovery":
		return ftRecoverySystems(p), nil
	}
	return nil, fmt.Errorf("unknown builtin protocol model %q", model)
}

// migrationPlans returns representative (old, new) vector pairs at world
// size p: the revector shapes the adaptive engine actually produces
// (boundary shifts, concentration onto rank 0, growth from rank 0,
// retiring a middle rank).
func migrationPlans(p int) []struct {
	label    string
	old, new core.Vector
} {
	n := 4 * p // rows: enough that every rank owns a span under every plan
	balanced := make(core.Vector, p)
	for r := range balanced {
		balanced[r] = n / p
	}
	shift := append(core.Vector{}, balanced...)
	shift[0] += 2
	shift[p-1] -= 2
	concentrate := make(core.Vector, p)
	concentrate[0] = n
	retire := append(core.Vector{}, balanced...)
	mid := p / 2
	moved := retire[mid]
	retire[mid] = 0
	retire[0] += moved - moved/2
	retire[p-1] += moved / 2
	return []struct {
		label    string
		old, new core.Vector
	}{
		{"shift", balanced, shift},
		{"concentrate", balanced, concentrate},
		{"grow", concentrate, balanced},
		{"retire-mid", balanced, retire},
	}
}

// migrationSystems models Migrator.Migrate for each representative plan:
// every rank sends its span overlaps ascending (the ForEachSpan order of
// the implementation), then receives from every lower-to-higher source
// with a nonzero overlap (the implementation's ascending receive loop).
func migrationSystems(p int) []*protomc.System {
	var out []*protomc.System
	for _, plan := range migrationPlans(p) {
		oldOwn, newOwn := repart.NewOwners(plan.old), repart.NewOwners(plan.new)
		b := protomc.NewSystem("repart.Migrator.Migrate", p)
		for r := 0; r < p; r++ {
			rp := b.Rank(r)
			// ForEachSpan with skip=r is exactly Migrate's send loop.
			_ = repart.ForEachSpan(oldOwn.First(r), oldOwn.Count(r), newOwn, r,
				func(dst, spanFirst, spanCount int) error {
					rp.Send(dst, "rows", fmt.Sprintf("model:migrate[%s] rows %d+%d", plan.label, spanFirst, spanCount))
					return nil
				})
			for src := 0; src < p; src++ {
				if src == r || repart.Overlap(oldOwn, src, newOwn, r) == 0 {
					continue
				}
				rp.Recv(src, "rows", fmt.Sprintf("model:migrate[%s] from %d", plan.label, src))
			}
		}
		sys := b.System()
		sys.Assign = "plan=" + plan.label
		out = append(out, sys)
	}
	return out
}

// ftDeadSets returns the failure scenarios modeled at world size p: each
// single-rank failure position that is distinct (first, middle, last) and
// one double failure when the quorum rule (dead*2 <= P) admits it.
func ftDeadSets(p int) [][]int {
	sets := [][]int{{0}}
	if p >= 3 {
		sets = append(sets, []int{p / 2}, []int{p - 1})
	}
	if p >= 4 {
		sets = append(sets, []int{1, 2})
	}
	return sets
}

// ftRecoverySystems models one recovery round of the FT runtime per dead
// set: (1) the failure-agreement sync flood among survivors, all-to-all in
// lexicographic pair order; (2) row redistribution from each row's holder
// (its owner if alive, else the lowest survivor, which holds every dead
// rank's checkpoint replica in the model) to its new owner under the
// survivors' rebalanced vector, in ascending span order; (3) checkpoint
// re-replication around the survivor ward ring in parity order.
func ftRecoverySystems(p int) []*protomc.System {
	var out []*protomc.System
	for _, dead := range ftDeadSets(p) {
		isDead := make([]bool, p)
		for _, d := range dead {
			isDead[d] = true
		}
		var survivors []int
		for r := 0; r < p; r++ {
			if !isDead[r] {
				survivors = append(survivors, r)
			}
		}
		if len(survivors) == 0 || len(dead)*2 > p {
			continue
		}
		label := fmt.Sprintf("dead=%v", dead)
		b := protomc.NewSystem("stencil.ftTask.recover", p)
		rank := make(map[int]*protomc.RankProg, len(survivors))
		for _, s := range survivors {
			rank[s] = b.Rank(s)
		}

		// Phase 1: sync flood, lexicographic pair order. Each pair (i, j)
		// with i < j exchanges both directions; the lower rank initiates.
		// Processing pairs in a single global order keeps the all-to-all
		// rendezvous-safe: the smallest incomplete pair always has both
		// endpoints available.
		for a := 0; a < len(survivors); a++ {
			for bidx := a + 1; bidx < len(survivors); bidx++ {
				i, j := survivors[a], survivors[bidx]
				src := fmt.Sprintf("model:recover[%s] sync %d<->%d", label, i, j)
				rank[i].Send(j, "ftsync", src)
				rank[j].Recv(i, "ftsync", src)
				rank[j].Send(i, "ftsync", src)
				rank[i].Recv(j, "ftsync", src)
			}
		}

		// Phase 2: row redistribution. Old ownership spans the full world
		// (dead ranks owned rows); the new vector rebalances over the
		// survivors. Each row's holder is its old owner when alive, else
		// the lowest survivor. Spans stream in ascending global-row order
		// on both sides, so every send meets a receiver whose program has
		// already disposed of all earlier spans.
		n := 4 * p
		oldVec := make(core.Vector, p)
		for r := 0; r < p; r++ {
			oldVec[r] = n / p
		}
		newVec := make(core.Vector, p) // dead ranks get 0
		for i, s := range survivors {
			newVec[s] = n / len(survivors)
			if i < n%len(survivors) {
				newVec[s]++
			}
		}
		oldOwn, newOwn := repart.NewOwners(oldVec), repart.NewOwners(newVec)
		holder := func(g int) int {
			o := oldOwn.OwnerOf(g)
			if isDead[o] {
				return survivors[0]
			}
			return o
		}
		for g := 0; g < n; {
			h, s := holder(g), newOwn.OwnerOf(g)
			end := g + 1
			for end < n && holder(end) == h && newOwn.OwnerOf(end) == s {
				end++
			}
			if h != s {
				src := fmt.Sprintf("model:recover[%s] rows %d..%d", label, g, end-1)
				rank[h].Send(s, "ftrows", src)
				rank[s].Recv(h, "ftrows", src)
			}
			g = end
		}

		// Phase 3: checkpoint re-replication around the survivor ring in
		// parity order: even positions send to their ward first, odd
		// positions receive from their warder first.
		if m := len(survivors); m >= 2 {
			for i, s := range survivors {
				ward := survivors[(i+1)%m]
				warder := survivors[(i-1+m)%m]
				src := fmt.Sprintf("model:recover[%s] ward %d->%d", label, s, ward)
				if i%2 == 0 {
					rank[s].Send(ward, "ftckpt", src)
					rank[s].Recv(warder, "ftckpt", src)
				} else {
					rank[s].Recv(warder, "ftckpt", src)
					rank[s].Send(ward, "ftckpt", src)
				}
			}
		}

		sys := b.System()
		sys.Assign = label
		out = append(out, sys)
	}
	return out
}
