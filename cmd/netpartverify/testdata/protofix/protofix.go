// Package protofix holds seeded-bug lockstep protocols for
// netpartverify's counterexample tests. Each function is a minimal
// protocol with one deliberate defect; the tests assert the checker finds
// it, that the counterexample schedule is minimal, and that the simnet
// replay confirms it. The package lives under testdata so the module's
// recursive build, test, and lint sweeps never see it — only netpartverify
// runs pointed directly at this directory do.
package protofix

// conn is transport-shaped: the extractor matches Send/Recv/RecvAny by
// selector name and arity, so a local stand-in exercises the whole
// pipeline without importing the runtime transport.
type conn struct{ rank, size int }

func (c *conn) Rank() int { return c.rank }

func (c *conn) Size() int { return c.size }

func (c *conn) Send(dst int, payload []byte) error { return nil }

func (c *conn) Recv(src int) ([]byte, error) { return nil, nil }

// UnmatchedSend seeds the classic conditional-send bug: rank 0 sends only
// when a data-dependent predicate holds, but rank 1 receives
// unconditionally. On the branch where the predicate is false, rank 1
// blocks forever.
//
//netpart:lockstep
func UnmatchedSend(c *conn, ready bool) {
	if c.Rank() == 0 {
		if ready {
			c.Send(1, nil)
		}
	}
	if c.Rank() == 1 {
		c.Recv(0)
	}
}

// RecvCycle seeds a receive-receive cycle that is reachable only at
// P >= 3: ranks 1 and 2 each wait for the other's message before sending
// their own. At P = 2 the guard disables the cycle, so a checker that only
// tries the smallest world proves nothing.
//
//netpart:lockstep
func RecvCycle(c *conn) {
	if c.Size() >= 3 {
		if c.Rank() == 1 {
			c.Recv(2)
			c.Send(2, nil)
		}
		if c.Rank() == 2 {
			c.Recv(1)
			c.Send(1, nil)
		}
	}
}

// DoubleSend seeds a buffer-exhaustion deadlock: both ranks of a pair
// send two messages before receiving any. With per-channel capacity 1
// (and under rendezvous) both block on the second send; capacity 2 is
// sufficient, which the checker's max-in-flight report makes precise.
//
//netpart:lockstep
func DoubleSend(c *conn) {
	if c.Size() == 2 {
		peer := 1 - c.Rank()
		c.Send(peer, nil)
		c.Send(peer, nil)
		c.Recv(peer)
		c.Recv(peer)
	}
}
