// netpartverify is the protocol model checker: it extracts the per-rank
// communication state machine from every //netpart:lockstep function in
// the module (or builds the builtin model a model=<name> directive
// requests), instantiates it at each concrete world size P, and
// exhaustively explores every interleaving under both rendezvous and
// bounded-buffer message semantics. Checked properties: deadlock freedom,
// message conservation (no unconsumed sends), wire-group agreement on
// every channel, termination, and buffer-bound sufficiency (the reported
// max in-flight occupancy is the capacity a backpressuring transport
// needs). Counterexamples are minimal concrete schedules, validated by
// replaying them through the simnet discrete-event simulator (see
// DESIGN.md §11).
//
// Usage:
//
//	netpartverify [-p 5] [-sem both] [-cap 1] [-json] [-trace-dir d] [-v] [patterns ...]
//
// Patterns are go-tool style; the default is "./..." from the enclosing
// module root. -p sets the largest world size (every P in 2..p is
// checked). -sem selects rendezvous, buffered, or both. -cap is the
// per-channel capacity under buffered semantics. With -json one NDJSON
// record is emitted per (system, semantics) check; with -trace-dir every
// violation's full counterexample (schedule plus simnet replay report) is
// written as a JSON trace file for artifact upload. Exit status is 1 when
// any protocol is unextractable or any check finds a violation, 2 on
// usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"netpart/internal/analysis"
	"netpart/internal/analysis/protomc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// record is the NDJSON / trace-file form of one check: the checker's
// Result plus the shared-parameter assignment, wall time, and (on
// violation) the simnet replay report.
type record struct {
	*protomc.Result
	Assign    string                `json:"assign,omitempty"`
	Fn        string                `json:"fn,omitempty"`
	ElapsedMs float64               `json:"elapsed_ms"`
	Replay    *protomc.ReplayReport `json:"replay,omitempty"`
	ReplayErr string                `json:"replay_error,omitempty"`
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("netpartverify", flag.ExitOnError)
	maxP := fs.Int("p", 5, "largest world size; every P in 2..p is checked")
	sem := fs.String("sem", "both", "message semantics: rendezvous, buffered, or both")
	capacity := fs.Int("cap", 1, "per-channel buffer capacity under buffered semantics")
	asJSON := fs.Bool("json", false, "emit one NDJSON record per check")
	traceDir := fs.String("trace-dir", "", "write violation counterexample traces into this directory")
	verbose := fs.Bool("v", false, "report every system checked, not per-protocol summaries")
	maxStates := fs.Int("max-states", 0, "state-count cap per check (0: checker default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var sems []protomc.Semantics
	switch *sem {
	case "both":
		sems = []protomc.Semantics{protomc.Rendezvous, protomc.Buffered}
	case "rendezvous":
		sems = []protomc.Semantics{protomc.Rendezvous}
	case "buffered":
		sems = []protomc.Semantics{protomc.Buffered}
	default:
		fmt.Fprintf(os.Stderr, "netpartverify: -sem %q is not rendezvous, buffered, or both\n", *sem)
		return 2
	}
	if *maxP < 2 {
		fmt.Fprintln(os.Stderr, "netpartverify: -p must be at least 2")
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartverify:", err)
		return 2
	}
	root, modPath, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartverify:", err)
		return 2
	}
	loader := analysis.NewLoader(root, modPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "netpartverify:", err)
		return 2
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "netpartverify: %s: type error: %v\n", pkg.Path, e)
		}
		if len(pkg.TypeErrors) > 0 {
			return 2
		}
	}
	protos, diags := analysis.ExtractProtos(pkgs, loader.Interproc())
	bad := 0
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
		bad++
	}
	sort.Slice(protos, func(i, j int) bool { return protos[i].Fn < protos[j].Fn })

	v := &verifier{
		stdout: stdout, sems: sems, maxP: *maxP, capacity: *capacity,
		maxStates: *maxStates, asJSON: *asJSON, traceDir: *traceDir, verbose: *verbose,
	}
	for _, lp := range protos {
		if err := v.verifyProto(lp); err != nil {
			fmt.Fprintln(os.Stderr, "netpartverify:", err)
			return 2
		}
	}
	bad += v.violations
	if !*asJSON {
		fmt.Fprintf(stdout, "netpartverify: %d protocols, %d checks, %d violations\n",
			len(protos), v.checks, bad)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// verifier drives the instantiate/check/replay loop and owns the output.
type verifier struct {
	stdout     io.Writer
	sems       []protomc.Semantics
	maxP       int
	capacity   int
	maxStates  int
	asJSON     bool
	traceDir   string
	verbose    bool
	checks     int
	violations int
	traceSeq   int
}

// verifyProto checks one lockstep protocol at every P and semantics.
func (v *verifier) verifyProto(lp *analysis.LockstepProto) error {
	for p := 2; p <= v.maxP; p++ {
		systems, err := v.systemsAt(lp, p)
		if err != nil {
			return err
		}
		for _, sem := range v.sems {
			agg := struct {
				states, transitions, depth, maxq, bad int
				elapsed                               time.Duration
			}{}
			for _, sys := range systems {
				cfg := protomc.Config{Sem: sem, Capacity: v.capacity, MaxStates: v.maxStates}
				start := time.Now()
				res, err := protomc.Check(sys, cfg)
				elapsed := time.Since(start)
				if err != nil {
					return fmt.Errorf("%s P=%d: %w", sys.Name, p, err)
				}
				v.checks++
				rec := &record{
					Result: res, Assign: sys.Assign, Fn: lp.Fn,
					ElapsedMs: float64(elapsed.Microseconds()) / 1000,
				}
				if res.Violation != nil {
					v.violations++
					agg.bad++
					rep, rerr := protomc.Replay(sys, res.Violation)
					if rerr != nil {
						rec.ReplayErr = rerr.Error()
					} else {
						rec.Replay = rep
					}
					if err := v.emitViolation(sys, rec); err != nil {
						return err
					}
				}
				agg.states += res.States
				agg.transitions += res.Transitions
				agg.elapsed += elapsed
				if res.Depth > agg.depth {
					agg.depth = res.Depth
				}
				if res.MaxInFlight > agg.maxq {
					agg.maxq = res.MaxInFlight
				}
				if v.asJSON {
					if err := json.NewEncoder(v.stdout).Encode(rec); err != nil {
						return err
					}
				} else if v.verbose {
					v.printCheck(rec)
				}
			}
			if !v.asJSON && !v.verbose {
				status := "ok  "
				if agg.bad > 0 {
					status = "FAIL"
				}
				fmt.Fprintf(v.stdout, "%s %-28s P=%d %-10s systems=%d states=%d depth=%d maxq=%d %s\n",
					status, lp.Fn, p, sem, len(systems),
					agg.states, agg.depth, agg.maxq, agg.elapsed.Round(time.Millisecond))
			}
		}
	}
	return nil
}

// systemsAt instantiates lp at world size p: the extracted symbolic
// protocol over every shared-parameter assignment, or every instance of
// the builtin model the directive named.
func (v *verifier) systemsAt(lp *analysis.LockstepProto, p int) ([]*protomc.System, error) {
	if lp.Model != "" {
		return builtinSystems(lp.Model, p)
	}
	return protomc.InstantiateAll(lp.Proto, p)
}

// printCheck writes the -v per-system line.
func (v *verifier) printCheck(rec *record) {
	status := "ok  "
	if rec.Violation != nil {
		status = "FAIL"
	}
	assign := rec.Assign
	if assign != "" {
		assign = " [" + assign + "]"
	}
	fmt.Fprintf(v.stdout, "%s %-28s P=%d %-10s%s states=%d depth=%d maxq=%d %.1fms\n",
		status, rec.Protocol, rec.P, rec.Sem, assign,
		rec.States, rec.Depth, rec.MaxInFlight, rec.ElapsedMs)
}

// emitViolation prints the counterexample and, with -trace-dir, writes the
// full record as a JSON trace file for artifact upload.
func (v *verifier) emitViolation(sys *protomc.System, rec *record) error {
	if !v.asJSON {
		fmt.Fprintf(v.stdout, "FAIL %s P=%d %s", sys.Name, sys.P, rec.Sem)
		if sys.Assign != "" {
			fmt.Fprintf(v.stdout, " [%s]", sys.Assign)
		}
		fmt.Fprintf(v.stdout, "\n%s", indent(rec.Violation.String()))
		if rec.Replay != nil {
			fmt.Fprintf(v.stdout, "  replay: confirmed=%v %s\n", rec.Replay.Confirmed, rec.Replay.Detail)
		} else if rec.ReplayErr != "" {
			fmt.Fprintf(v.stdout, "  replay error: %s\n", rec.ReplayErr)
		}
	}
	if v.traceDir == "" {
		return nil
	}
	if err := os.MkdirAll(v.traceDir, 0o755); err != nil {
		return err
	}
	v.traceSeq++
	name := fmt.Sprintf("%s-P%d-%s-%03d.json", sanitize(sys.Name), sys.P, rec.Sem, v.traceSeq)
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(v.traceDir, name), append(data, '\n'), 0o644)
}

// sanitize maps a protocol name to a filesystem-safe trace-file stem.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		}
		return '_'
	}, name)
}

// indent prefixes every line of s with two spaces.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
