// Command partition runs the runtime partitioning method: given a network
// model (the built-in paper testbed or a JSON spec) and an application's
// annotations, it prints the chosen processor configuration, the partition
// vector, and the cost estimate.
//
// Usage:
//
//	partition [-spec network.json] [-app sten1|sten2|gauss] [-n 600]
//	          [-constants paper|fitted] [-search bisect|scan|exhaustive]
//	          [-available sparc2=4,ipc=6]
//	          [-explain] [-trace out.jsonl] [-metrics]
//
//netpart:deterministic
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netpart/internal/annspec"
	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/gauss"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/obs/serve"
	"netpart/internal/stencil"
	"netpart/internal/topo"
)

// runOptions collects the command's flags.
type runOptions struct {
	Spec      string // network spec JSON path ("" = paper testbed)
	App       string // sten1, sten2, or gauss
	AnnFile   string // annotation spec JSON path (overrides App)
	N         int
	Iters     int
	Constants string // paper or fitted
	Search    string // bisect, scan, or exhaustive
	Available string // availability overrides, e.g. "sparc2=4,ipc=6"
	CostFile  string // fitted cost table JSON (overrides Constants)
	Explain   bool   // print the per-cluster T_c(p) curves and decision path
	TraceFile string // JSONL search-trace output path ("" = off)
	Metrics   bool   // print the search metrics summary
	Serve     string // telemetry listen address ("" = off)
}

func main() {
	var o runOptions
	flag.StringVar(&o.Spec, "spec", "", "network spec JSON (default: the paper's Sparc2+IPC testbed)")
	flag.StringVar(&o.App, "app", "sten1", "application: sten1, sten2, or gauss")
	flag.StringVar(&o.AnnFile, "annspec", "", "compile annotations from a JSON spec file instead of -app (see specs/)")
	flag.IntVar(&o.N, "n", 600, "problem size N")
	flag.IntVar(&o.Iters, "iters", 10, "iteration count (stencil)")
	flag.StringVar(&o.Constants, "constants", "fitted", "cost table: 'fitted' (benchmark the simulated network) or 'paper' (published constants; paper testbed only)")
	flag.StringVar(&o.CostFile, "costs", "", "load a fitted cost table from JSON (written by commbench -o) instead of -constants")
	flag.StringVar(&o.Search, "search", "bisect", "search strategy: bisect, scan, or exhaustive")
	flag.StringVar(&o.Available, "available", "", "override availability, e.g. sparc2=4,ipc=6")
	flag.BoolVar(&o.Explain, "explain", false, "explain the decision: per-cluster T_c(p) curves, search path, winner breakdown")
	flag.StringVar(&o.TraceFile, "trace", "", "write the search trace (one JSON event per line) to this file")
	flag.BoolVar(&o.Metrics, "metrics", false, "print search metrics (candidates, memo hits, T_c distribution)")
	flag.StringVar(&o.Serve, "serve", "", `telemetry listen address (e.g. ":9090"): search metrics on /metrics, /metrics.json, /healthz, /debug/pprof/; keeps serving after the search until interrupted`)
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
}

func run(o runOptions) error {
	// With -serve the search metrics registry is exposed over HTTP; start
	// before the search so /debug/pprof/ can profile it.
	var metrics *obs.Registry
	var srv *serve.Server
	if o.Metrics || o.Serve != "" {
		metrics = obs.NewRegistry()
	}
	if o.Serve != "" {
		var err error
		srv, err = serve.Start(o.Serve, metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry          : %s/metrics (also /metrics.json /healthz /debug/pprof/)\n", srv.URL())
	}

	net := model.PaperTestbed()
	if o.Spec != "" {
		f, err := os.Open(o.Spec)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err = model.ReadSpec(f)
		if err != nil {
			return err
		}
	}
	if o.Available != "" {
		for _, kv := range strings.Split(o.Available, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -available entry %q", kv)
			}
			c := net.Cluster(parts[0])
			if c == nil {
				return fmt.Errorf("unknown cluster %q", parts[0])
			}
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return err
			}
			c.Available = v
		}
		if err := net.Validate(); err != nil {
			return err
		}
	}

	var ann *core.Annotations
	n := o.N
	if o.AnnFile != "" {
		f, err := os.Open(o.AnnFile)
		if err != nil {
			return err
		}
		compiled, err := annspec.CompileReader(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		ann = compiled
		n = ann.NumPDUs()
	}
	switch {
	case ann != nil:
		// compiled from -annspec
	default:
		switch o.App {
		case "sten1":
			ann = stencil.Annotations(n, stencil.STEN1, o.Iters)
		case "sten2":
			ann = stencil.Annotations(n, stencil.STEN2, o.Iters)
		case "gauss":
			ann = gauss.Annotations(n)
		default:
			return fmt.Errorf("unknown app %q", o.App)
		}
	}

	var tbl *cost.Table
	constants := o.Constants
	if o.CostFile != "" {
		f, err := os.Open(o.CostFile)
		if err != nil {
			return err
		}
		loaded, err := cost.ReadTable(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		tbl = loaded
		constants = "file"
	}
	switch constants {
	case "file":
		// loaded above
	case "paper":
		tbl = cost.PaperTable()
	case "fitted":
		fmt.Println("benchmarking communication on the simulated network...")
		res, err := commbench.Run(net, []topo.Topology{topo.OneD{}, topo.Broadcast{}}, commbench.DefaultGrid())
		if err != nil {
			return err
		}
		tbl = res.Table
	default:
		return fmt.Errorf("unknown constants %q", constants)
	}

	est, err := core.NewEstimator(net, tbl, ann)
	if err != nil {
		return err
	}

	// Observability: an in-memory trace backs -explain and -metrics; a sink
	// observer streams the same decision record to -trace as JSONL.
	var observers core.MultiObserver
	var searchTrace *core.SearchTrace
	if o.Explain || metrics != nil {
		searchTrace = &core.SearchTrace{}
		observers = append(observers, searchTrace)
	}
	var rec *obs.Recorder
	if o.TraceFile != "" {
		f, err := os.Create(o.TraceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		rec = obs.NewRecorder(f)
		observers = append(observers, core.SinkObserver{Sink: rec})
	}
	if len(observers) > 0 {
		est.Observer = observers
	}

	var res core.Result
	switch o.Search {
	case "bisect":
		res, err = core.Partition(est)
	case "scan":
		res, err = core.PartitionLinear(est)
	case "exhaustive":
		res, err = core.PartitionExhaustive(est)
	default:
		return fmt.Errorf("unknown search %q", o.Search)
	}
	if err != nil {
		return err
	}

	fmt.Printf("application        : %s (N=%d, %d PDUs)\n", ann.Name, n, ann.NumPDUs())
	fmt.Printf("configuration      : %v  (%d processors)\n", res.Config, res.Config.Total())
	fmt.Printf("partition vector   : %v\n", res.Vector)
	fmt.Printf("estimated T_c      : %.3f ms/cycle\n", res.TcMs)
	fmt.Printf("  T_comp %.3f + T_comm %.3f - T_overlap %.3f\n", res.TcompMs, res.TcommMs, res.ToverlapMs)
	if ann.Cycles > 0 {
		fmt.Printf("estimated elapsed  : %.1f ms (%d cycles)\n", res.ElapsedMs(ann.Cycles), ann.Cycles)
	}
	fmt.Printf("search evaluations : %d (Eq. 3/6 recomputations)\n", res.Evaluations)

	if o.Explain {
		fmt.Println()
		fmt.Print(searchTrace.Explain())
	}
	if metrics != nil {
		searchMetrics(searchTrace, metrics)
	}
	if o.Metrics {
		fmt.Println()
		fmt.Print(metrics.Render())
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return err
		}
		fmt.Printf("\nsearch trace       : %s (%d events)\n", o.TraceFile, rec.Len())
	}
	if srv != nil {
		fmt.Println("telemetry          : search complete, still serving (interrupt to exit)")
		srv.Wait()
	}
	return nil
}

// searchMetrics folds a recorded search trace into the given metrics
// registry: candidate counts, memo hits, bisection probes, and the T_c
// distribution over evaluated candidates. Filling a caller-provided
// registry lets -serve expose the same instruments it scrapes.
func searchMetrics(t *core.SearchTrace, m *obs.Registry) {
	for _, c := range t.Candidates {
		if c.Cached {
			m.Counter("search.memo_hits").Inc()
			continue
		}
		m.Counter("search.candidates").Inc()
		m.Histogram("search.tc_ms").Observe(c.TcMs)
	}
	for _, ev := range t.Events {
		switch ev.Kind {
		case core.EvBisectStep:
			m.Counter("search.bisect_probes").Inc()
		case core.EvClusterOpen:
			m.Counter("search.clusters_opened").Inc()
		}
	}
	if w, ok := t.Winner(); ok {
		m.Gauge("search.winner_tc_ms").Set(w.TcMs)
	}
}
