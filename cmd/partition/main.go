// Command partition runs the runtime partitioning method: given a network
// model (the built-in paper testbed or a JSON spec) and an application's
// annotations, it prints the chosen processor configuration, the partition
// vector, and the cost estimate.
//
// Usage:
//
//	partition [-spec network.json] [-app sten1|sten2|gauss] [-n 600]
//	          [-constants paper|fitted] [-search bisect|scan|exhaustive]
//	          [-available sparc2=4,ipc=6]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netpart/internal/annspec"
	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/gauss"
	"netpart/internal/model"
	"netpart/internal/stencil"
	"netpart/internal/topo"
)

func main() {
	spec := flag.String("spec", "", "network spec JSON (default: the paper's Sparc2+IPC testbed)")
	app := flag.String("app", "sten1", "application: sten1, sten2, or gauss")
	annFile := flag.String("annspec", "", "compile annotations from a JSON spec file instead of -app (see specs/)")
	n := flag.Int("n", 600, "problem size N")
	iters := flag.Int("iters", 10, "iteration count (stencil)")
	constants := flag.String("constants", "fitted", "cost table: 'fitted' (benchmark the simulated network) or 'paper' (published constants; paper testbed only)")
	costFile := flag.String("costs", "", "load a fitted cost table from JSON (written by commbench -o) instead of -constants")
	search := flag.String("search", "bisect", "search strategy: bisect, scan, or exhaustive")
	available := flag.String("available", "", "override availability, e.g. sparc2=4,ipc=6")
	flag.Parse()

	if err := run(*spec, *app, *annFile, *n, *iters, *constants, *search, *available, *costFile); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
}

func run(spec, app, annFile string, n, iters int, constants, search, available, costFile string) error {
	net := model.PaperTestbed()
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err = model.ReadSpec(f)
		if err != nil {
			return err
		}
	}
	if available != "" {
		for _, kv := range strings.Split(available, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("bad -available entry %q", kv)
			}
			c := net.Cluster(parts[0])
			if c == nil {
				return fmt.Errorf("unknown cluster %q", parts[0])
			}
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return err
			}
			c.Available = v
		}
		if err := net.Validate(); err != nil {
			return err
		}
	}

	var ann *core.Annotations
	if annFile != "" {
		f, err := os.Open(annFile)
		if err != nil {
			return err
		}
		compiled, err := annspec.CompileReader(f)
		f.Close()
		if err != nil {
			return err
		}
		ann = compiled
		n = ann.NumPDUs()
	}
	switch {
	case ann != nil:
		// compiled from -annspec
	default:
		switch app {
		case "sten1":
			ann = stencil.Annotations(n, stencil.STEN1, iters)
		case "sten2":
			ann = stencil.Annotations(n, stencil.STEN2, iters)
		case "gauss":
			ann = gauss.Annotations(n)
		default:
			return fmt.Errorf("unknown app %q", app)
		}
	}

	var tbl *cost.Table
	if costFile != "" {
		f, err := os.Open(costFile)
		if err != nil {
			return err
		}
		loaded, err := cost.ReadTable(f)
		f.Close()
		if err != nil {
			return err
		}
		tbl = loaded
		constants = "file"
	}
	switch constants {
	case "file":
		// loaded above
	case "paper":
		tbl = cost.PaperTable()
	case "fitted":
		fmt.Println("benchmarking communication on the simulated network...")
		res, err := commbench.Run(net, []topo.Topology{topo.OneD{}, topo.Broadcast{}}, commbench.DefaultGrid())
		if err != nil {
			return err
		}
		tbl = res.Table
	default:
		return fmt.Errorf("unknown constants %q", constants)
	}

	est, err := core.NewEstimator(net, tbl, ann)
	if err != nil {
		return err
	}
	var res core.Result
	switch search {
	case "bisect":
		res, err = core.Partition(est)
	case "scan":
		res, err = core.PartitionLinear(est)
	case "exhaustive":
		res, err = core.PartitionExhaustive(est)
	default:
		return fmt.Errorf("unknown search %q", search)
	}
	if err != nil {
		return err
	}

	fmt.Printf("application        : %s (N=%d, %d PDUs)\n", ann.Name, n, ann.NumPDUs())
	fmt.Printf("configuration      : %v  (%d processors)\n", res.Config, res.Config.Total())
	fmt.Printf("partition vector   : %v\n", res.Vector)
	fmt.Printf("estimated T_c      : %.3f ms/cycle\n", res.TcMs)
	fmt.Printf("  T_comp %.3f + T_comm %.3f - T_overlap %.3f\n", res.TcompMs, res.TcommMs, res.ToverlapMs)
	if ann.Cycles > 0 {
		fmt.Printf("estimated elapsed  : %.1f ms (%d cycles)\n", res.ElapsedMs(ann.Cycles), ann.Cycles)
	}
	fmt.Printf("search evaluations : %d (Eq. 3/6 recomputations)\n", res.Evaluations)
	return nil
}
