package main

import "testing"

func TestRunPaperConstants(t *testing.T) {
	if err := run("", "sten2", "", 300, 10, "paper", "bisect", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFittedGauss(t *testing.T) {
	if err := run("", "gauss", "", 100, 10, "fitted", "scan", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunExhaustiveWithAvailability(t *testing.T) {
	if err := run("", "sten1", "", 300, 10, "paper", "exhaustive", "sparc2=3,ipc=2", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnnspecFile(t *testing.T) {
	if err := run("", "", "../../specs/sten2.json", 0, 10, "paper", "bisect", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunCostFile(t *testing.T) {
	if err := run("", "sten1", "", 100, 10, "fitted", "bisect", "", "missing.json"); err == nil {
		t.Error("missing cost file accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "bogus", "", 100, 10, "paper", "bisect", "", ""); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("", "sten1", "", 100, 10, "bogus", "bisect", "", ""); err == nil {
		t.Error("unknown constants accepted")
	}
	if err := run("", "sten1", "", 100, 10, "paper", "bogus", "", ""); err == nil {
		t.Error("unknown search accepted")
	}
	if err := run("", "sten1", "", 100, 10, "paper", "bisect", "nope=1", ""); err == nil {
		t.Error("unknown cluster accepted")
	}
	if err := run("", "sten1", "", 100, 10, "paper", "bisect", "garbage", ""); err == nil {
		t.Error("malformed availability accepted")
	}
	if err := run("nonexistent.json", "sten1", "", 100, 10, "paper", "bisect", "", ""); err == nil {
		t.Error("missing spec file accepted")
	}
}
