package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunPaperConstants(t *testing.T) {
	if err := run(runOptions{App: "sten2", N: 300, Iters: 10, Constants: "paper", Search: "bisect"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFittedGauss(t *testing.T) {
	if err := run(runOptions{App: "gauss", N: 100, Iters: 10, Constants: "fitted", Search: "scan"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExhaustiveWithAvailability(t *testing.T) {
	if err := run(runOptions{App: "sten1", N: 300, Iters: 10, Constants: "paper", Search: "exhaustive", Available: "sparc2=3,ipc=2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAnnspecFile(t *testing.T) {
	if err := run(runOptions{AnnFile: "../../specs/sten2.json", Iters: 10, Constants: "paper", Search: "bisect"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCostFile(t *testing.T) {
	if err := run(runOptions{App: "sten1", N: 100, Iters: 10, Constants: "fitted", Search: "bisect", CostFile: "missing.json"}); err == nil {
		t.Error("missing cost file accepted")
	}
}

func TestRunExplainAndTrace(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	err := run(runOptions{
		App: "sten1", N: 600, Iters: 10, Constants: "paper", Search: "bisect",
		Explain: true, Metrics: true, TraceFile: tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The trace must be valid JSONL: one JSON object per line, with at
	// least one candidate evaluation and a search winner.
	candidates, winners := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line is not valid JSON: %v\n%s", err, sc.Text())
		}
		switch ev["type"] {
		case "candidate":
			candidates++
		case "search":
			if ev["kind"] == "winner" {
				winners++
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if candidates == 0 || winners != 1 {
		t.Errorf("trace had %d candidates and %d winners", candidates, winners)
	}
}

func TestRunErrors(t *testing.T) {
	base := runOptions{App: "sten1", N: 100, Iters: 10, Constants: "paper", Search: "bisect"}
	o := base
	o.App = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown app accepted")
	}
	o = base
	o.Constants = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown constants accepted")
	}
	o = base
	o.Search = "bogus"
	if err := run(o); err == nil {
		t.Error("unknown search accepted")
	}
	o = base
	o.Available = "nope=1"
	if err := run(o); err == nil {
		t.Error("unknown cluster accepted")
	}
	o = base
	o.Available = "garbage"
	if err := run(o); err == nil {
		t.Error("malformed availability accepted")
	}
	o = base
	o.Spec = "nonexistent.json"
	if err := run(o); err == nil {
		t.Error("missing spec file accepted")
	}
}
