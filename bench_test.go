// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index) plus micro-benchmarks of the
// substrates and the ablation comparisons. Run:
//
//	go test -bench=. -benchmem
package netpart_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"netpart"
	"netpart/internal/analysis"
	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/experiments"
	"netpart/internal/gauss"
	"netpart/internal/model"
	"netpart/internal/repart"
	"netpart/internal/stencil"
	"netpart/internal/stencil2d"
	"netpart/internal/topo"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// BenchmarkTable1Partition regenerates Table 1 (E1): the partitioning
// algorithm's choices for all problem sizes and both variants.
func BenchmarkTable1Partition(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(e, e.Paper); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Elapsed regenerates Table 2 (E2): 56 full simulated
// stencil executions plus the partitioner's predictions.
func BenchmarkTable2Elapsed(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Jobs pins the parallel experiment engine at explicit
// worker counts — the speedup curve reported in EXPERIMENTS.md E17. The
// output is byte-identical at every count (TestParallelDeterminism); only
// the wall clock changes, and only on a multi-core runner.
func BenchmarkTable2Jobs(b *testing.B) {
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			e := benchEnv(b).Clone()
			e.Jobs = j
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Table2(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Curve regenerates Fig. 3 (E3): the T_c-vs-processors curve
// at N=600 (estimates plus simulated executions at every point).
func BenchmarkFig3Curve(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(e, 600, stencil.STEN1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostFit regenerates the Section 6.0 cost-constant table (E4):
// the full offline benchmarking sweep plus least-squares fits.
func BenchmarkCostFit(b *testing.B) {
	net := model.PaperTestbed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := commbench.Run(net, []topo.Topology{topo.OneD{}}, commbench.DefaultGrid()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Decompose regenerates the Fig. 2 example (E5): the Eq. 3
// partition vector of a 20×20 matrix over four processors.
func BenchmarkFig2Decompose(b *testing.B) {
	net := model.PaperTestbed()
	cfg := experiments.PaperConfig(4, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompose(net, cfg, 20, model.OpFloat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Validate regenerates the Fig. 1 network (E6): model
// construction and validation of the three-cluster example.
func BenchmarkFig1Validate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := model.Figure1Network()
		if err := net.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionOverhead measures the claimed O(K·log2 P) runtime
// overhead of one partitioning decision (E7) — the cost the paper argues
// is easily amortized.
func BenchmarkPartitionOverhead(b *testing.B) {
	e := benchEnv(b)
	ann := stencil.Annotations(1200, stencil.STEN1, 10)
	est, err := core.NewEstimator(e.Net, e.Fitted, ann)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Partition(est); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGaussSolve regenerates E8: partitioning plus distributed
// Gaussian elimination with partial pivoting at N=64.
func BenchmarkGaussSolve(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Gauss(e, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the A1-A5 design-choice studies of DESIGN.md.
func BenchmarkAblations(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSearch compares the three search strategies (ablations
// A1/A2) on the N=1200 STEN-1 instance.
func BenchmarkAblationSearch(b *testing.B) {
	e := benchEnv(b)
	ann := stencil.Annotations(1200, stencil.STEN1, 10)
	for _, tc := range []struct {
		name string
		run  func(*core.Estimator) (core.Result, error)
	}{
		{"bisect", core.Partition},
		{"scan", core.PartitionLinear},
		{"exhaustive", core.PartitionExhaustive},
	} {
		b.Run(tc.name, func(b *testing.B) {
			est, err := core.NewEstimator(e.Net, e.Fitted, ann)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tc.run(est); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStencilSim measures one full simulated STEN-2 execution at
// N=600 on the partitioner-chosen configuration.
func BenchmarkStencilSim(b *testing.B) {
	e := benchEnv(b)
	ann := stencil.Annotations(600, stencil.STEN2, 10)
	est, err := core.NewEstimator(e.Net, e.Fitted, ann)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Partition(est)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stencil.RunSim(e.Net, res.Config, res.Vector, stencil.STEN2, 600, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStencilLiveLocal measures a real concurrent execution (6
// goroutine tasks over the in-memory transport) at N=240.
func BenchmarkStencilLiveLocal(b *testing.B) {
	net := model.PaperTestbed()
	cfg := experiments.PaperConfig(4, 2)
	vec, err := core.Decompose(net, cfg, 240, model.OpFloat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world, err := netpart.NewLocalWorld(6)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stencil.RunLive(world, vec, stencil.STEN2, 240, 10, nil); err != nil {
			b.Fatal(err)
		}
		for _, tr := range world {
			tr.Close()
		}
	}
}

// BenchmarkMMPSRoundTripUDP measures the reliable-UDP substrate's
// request/response latency.
func BenchmarkMMPSRoundTripUDP(b *testing.B) {
	world, err := netpart.NewUDPWorld(2)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, tr := range world {
			tr.Close()
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			buf, err := world[1].Recv(0)
			if err != nil {
				return
			}
			if err := world[1].Send(0, buf); err != nil {
				return
			}
		}
	}()
	payload := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := world[0].Send(1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := world[0].Recv(1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	world[1].Close()
	select {
	case <-done:
	case <-time.After(time.Second):
	}
}

// BenchmarkSequentialStencil is the single-processor reference kernel.
func BenchmarkSequentialStencil(b *testing.B) {
	grid := stencil.NewGrid(600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stencil.Sequential(grid, 1)
	}
}

// BenchmarkSequentialGauss is the reference elimination kernel.
func BenchmarkSequentialGauss(b *testing.B) {
	s := gauss.NewSystem(128, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gauss.Sequential(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveRepartition regenerates E9: dynamic repartitioning with
// real row migration under injected load.
func BenchmarkAdaptiveRepartition(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Adaptive(e, 200, 40); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateDelta measures one warm delta-evaluated probe — the unit
// of work the Partition search and the Fig. 3 curve now spend per candidate
// instead of a full Estimate. CI hard-gates this at zero allocations per op
// (BENCH_policy.json).
func BenchmarkEstimateDelta(b *testing.B) {
	est, err := core.NewEstimator(model.PaperTestbed(), cost.PaperTable(),
		stencil.Annotations(600, stencil.STEN2, 100))
	if err != nil {
		b.Fatal(err)
	}
	cfg := cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 0},
	}
	d, err := est.BeginDelta(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := d.Probe(1, 3); err != nil { // warm the lazy memos
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := d.Probe(1, 1+i%6)
		if err != nil {
			b.Fatal(err)
		}
		if e.TcMs <= 0 {
			b.Fatal("non-positive estimate")
		}
	}
}

// BenchmarkRepartPlan measures one incremental-repartitioning planner
// invocation at P=16 — the latency rank 0 pays inside a drift-triggered
// round before broadcasting the decision. CI asserts this stays
// sub-millisecond (the benchdiff gate, BENCH_policy.json).
func BenchmarkRepartPlan(b *testing.B) {
	p := repart.NewPlanner(repart.PlannerConfig{
		Mig: cost.Migration{PerMoveMs: 0.05, PerByteMs: 1e-6, RowBytes: 8 * 1024},
	})
	cur := make(core.Vector, 16)
	measured := make([]float64, 16)
	for i := range cur {
		cur[i] = 64
		measured[i] = float64(64 + 13*i%37)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := p.Plan(i, "drift", cur, measured)
		if plan.New.Sum() != cur.Sum() {
			b.Fatal("row total changed")
		}
	}
}

// BenchmarkStencilLiveAdaptiveCycle measures a full live adaptive run — 6
// goroutine ranks over the in-memory transport with a loaded rank, interval
// rebalancing every 2 cycles, and real row migration between cycles.
func BenchmarkStencilLiveAdaptiveCycle(b *testing.B) {
	const n, iters = 96, 8
	vec := core.Vector{16, 16, 16, 16, 16, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world, err := netpart.NewLocalWorld(6)
		if err != nil {
			b.Fatal(err)
		}
		res, err := stencil.RunLiveAdaptive(world, vec, stencil.STEN1, n, iters, stencil.LiveAdaptiveOptions{
			RebalanceEvery: 2,
			WorkFactor:     []int{1, 1, 4, 1, 1, 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalVector.Sum() != n {
			b.Fatal("row total changed")
		}
		for _, tr := range world {
			tr.Close()
		}
	}
}

// BenchmarkMetasystem regenerates E10: partitioning on the metasystem
// testbed (includes its own commbench run).
func BenchmarkMetasystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Metasystem(1200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStartup regenerates E11: measured and estimated initial
// distribution costs.
func BenchmarkStartup(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Startup(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartitionGlobal measures the general-case search (ablation A7).
func BenchmarkPartitionGlobal(b *testing.B) {
	e := benchEnv(b)
	ann := stencil.Annotations(300, stencil.STEN2, 10)
	est, err := core.NewEstimator(e.Net, e.Paper, ann)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PartitionGlobal(est); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnotationCompile measures the annotation-spec compiler.
func BenchmarkAnnotationCompile(b *testing.B) {
	spec := `{
	  "name": "STEN-2", "params": {"N": 600}, "num_pdus": "N", "cycles": 10,
	  "compute": [{"name": "grid-update", "complexity_per_pdu": "5*N"}],
	  "comm": [{"name": "border", "topology": "1-D",
	            "bytes_per_message": "4*N", "overlap": "grid-update"}]
	}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netpart.CompileAnnotations(strings.NewReader(spec)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImplSelect regenerates E12: implementation selection between
// the 1-D and 2-D decompositions across all problem sizes.
func BenchmarkImplSelect(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ImplSelect(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStencil2DSim measures one simulated 2-D execution at N=600 on
// the full 3×4 mesh.
func BenchmarkStencil2DSim(b *testing.B) {
	net := model.PaperTestbed()
	cfg := experiments.PaperConfig(6, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stencil2d.RunSim(net, cfg, 600, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParticles regenerates E13: the particle simulation with uniform
// versus density-weighted decomposition.
func BenchmarkParticles(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Particles(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectionCost regenerates E14: runtime partitioning versus
// Reeves-style benchmarked selection.
func BenchmarkSelectionCost(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SelectionCost(e, 300); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGaussCyclic measures the block-cyclic elimination against the
// contiguous assignment at a compute-bound size.
func BenchmarkGaussCyclic(b *testing.B) {
	net := model.PaperTestbed()
	cfg := experiments.PaperConfig(2, 0)
	s := gauss.NewSystem(128, 7)
	vec, err := core.Decompose(net, cfg, 128, model.OpFloat)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		blocks int
	}{{"contiguous", 1}, {"cyclic8", 8}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gauss.RunSimCyclic(net, cfg, vec, tc.blocks, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateObserver guards the observer hook's hot-path cost: the
// disabled case (nil Observer) must match the pre-observability baseline —
// in particular, zero allocations attributable to the hook — while the
// enabled case shows the price of full candidate recording.
func BenchmarkEstimateObserver(b *testing.B) {
	net := model.PaperTestbed()
	costs := netpart.PaperCostTable()
	ann := stencil.Annotations(600, stencil.STEN1, 10)
	cfg := experiments.PaperConfig(4, 2)
	for _, tc := range []struct {
		name     string
		observer func() core.Observer
	}{
		{"disabled", func() core.Observer { return nil }},
		{"enabled", func() core.Observer { return &core.SearchTrace{} }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			est, err := core.NewEstimator(net, costs, ann)
			if err != nil {
				b.Fatal(err)
			}
			est.Observer = tc.observer()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLintWholeTree measures one full netpartlint analyzer pass —
// including the CFG/dataflow engine (concsafety, poolflow) and the
// cross-package units propagation — over every package of the module. The
// module is loaded and typechecked once outside the timer: the regression
// target is analyzer cost, which the flow-sensitive passes dominate.
func BenchmarkLintWholeTree(b *testing.B) {
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := analysis.NewLoader(root, modPath).Load("./...")
	if err != nil {
		b.Fatal(err)
	}
	analyzers := analysis.Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range pkgs {
			diags, err := analysis.Check(pkg, analyzers)
			if err != nil {
				b.Fatal(err)
			}
			if len(diags) != 0 {
				b.Fatalf("tree not lint-clean: %s", diags[0])
			}
		}
	}
}

// BenchmarkCallGraphWholeTree measures the interprocedural layer alone:
// building the whole-module call graph (interface type-set resolution
// included) and solving every function summary bottom-up in SCC order —
// the fixed cost the allocfree/msgproto/determinism analyzers add to a
// lint run. Loading and typechecking stay outside the timer, mirroring
// BenchmarkLintWholeTree.
func BenchmarkCallGraphWholeTree(b *testing.B) {
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	loader := analysis.NewLoader(root, modPath)
	if _, err := loader.Load("./..."); err != nil {
		b.Fatal(err)
	}
	pkgs := loader.Packages()
	if len(pkgs) == 0 {
		b.Fatal("no packages loaded")
	}
	fset := pkgs[0].Fset
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := analysis.BuildInterproc(fset, pkgs)
		if ip == nil {
			b.Fatal("BuildInterproc returned nil")
		}
	}
}

// BenchmarkNoise regenerates E15: cost-model fitting and partitioning
// across channel-jitter levels.
func BenchmarkNoise(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Noise(e); err != nil {
			b.Fatal(err)
		}
	}
}
