package netpart_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"netpart"
)

// TestGoldenSearchTraceSten1 is the golden observability case: STEN-1 at
// N=600 on the paper testbed with the published cost constants. The
// recorded T_c(p) sequence must be unimodal per cluster (the Fig. 3 shape
// the bisection relies on), and the traced winner must match what
// Partition reports.
func TestGoldenSearchTraceSten1(t *testing.T) {
	const n, iters = 600, 10
	net := netpart.PaperTestbed()
	costs := netpart.PaperCostTable()
	ann := netpart.StencilAnnotations(n, netpart.STEN1, iters)

	est, err := netpart.NewEstimator(net, costs, ann)
	if err != nil {
		t.Fatal(err)
	}
	st := &netpart.SearchTrace{}
	est.Observer = st
	res, err := netpart.PartitionWith(est)
	if err != nil {
		t.Fatal(err)
	}

	// The plain facade entry point must agree with the observed search.
	plain, err := netpart.Partition(net, costs, ann)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Config.String() != res.Config.String() || plain.TcMs != res.TcMs {
		t.Errorf("observed search chose %v (%.3f ms), plain chose %v (%.3f ms)",
			res.Config, res.TcMs, plain.Config, plain.TcMs)
	}

	clusters := st.Clusters()
	if len(clusters) == 0 {
		t.Fatal("trace recorded no clusters")
	}
	for _, c := range clusters {
		curve := st.ClusterCurve(c)
		if len(curve) == 0 {
			t.Errorf("cluster %s: empty T_c(p) curve", c)
			continue
		}
		if !netpart.Unimodal(curve) {
			t.Errorf("cluster %s: T_c(p) curve not unimodal: %+v", c, curve)
		}
	}

	w, ok := st.Winner()
	if !ok {
		t.Fatal("trace recorded no winner")
	}
	if w.Config.String() != res.Config.String() {
		t.Errorf("traced winner %v != result %v", w.Config, res.Config)
	}
	if w.TcMs != res.TcMs {
		t.Errorf("traced winner T_c %.3f != result %.3f", w.TcMs, res.TcMs)
	}

	if expl := st.Explain(); !strings.Contains(expl, "winner") || !strings.Contains(expl, "T_comp") {
		t.Errorf("explain output missing winner breakdown:\n%s", expl)
	}
}

// TestFacadeTraceRecorderJSONL drives the JSONL pipeline through the
// facade: every observation streams as one JSON object per line.
func TestFacadeTraceRecorderJSONL(t *testing.T) {
	net := netpart.PaperTestbed()
	costs := netpart.PaperCostTable()
	ann := netpart.StencilAnnotations(300, netpart.STEN2, 10)

	est, err := netpart.NewEstimator(net, costs, ann)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := netpart.NewTraceRecorder(&buf)
	est.Observer = netpart.SinkObserver(rec)
	if _, err := netpart.PartitionWith(est); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured no events")
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		lines++
	}
	if lines != rec.Len() {
		t.Errorf("stream has %d lines, recorder retained %d events", lines, rec.Len())
	}
}

// TestFacadeObservedStencilRun exercises the instrumented execution path
// through the facade and the Chrome trace export.
func TestFacadeObservedStencilRun(t *testing.T) {
	const n, iters = 48, 3
	net := netpart.PaperTestbed()
	cfg := netpart.Config{
		Clusters: []string{"sparc2", "ipc"},
		Counts:   []int{2, 1},
	}
	vec, err := netpart.Decompose(net, cfg, n, netpart.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	m := netpart.NewMetrics()
	rec := netpart.NewTraceRecorder(nil)
	res, err := netpart.RunStencilSimObserved(net, cfg, vec, netpart.STEN1, n, iters, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	want := netpart.SequentialStencil(netpart.NewStencilGrid(n), iters)
	for i := range want {
		for j := range want[i] {
			if res.Grid[i][j] != want[i][j] {
				t.Fatalf("grid mismatch at (%d,%d)", i, j)
			}
		}
	}
	snap := m.Snapshot()
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Errorf("metrics snapshot empty: %+v", snap)
	}
	if rec.Len() != 3*iters {
		t.Errorf("spans = %d, want %d", rec.Len(), 3*iters)
	}
	var buf bytes.Buffer
	if err := netpart.WriteChromeTrace(&buf, rec.Events()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(out) != rec.Len() {
		t.Errorf("chrome trace has %d events, want %d", len(out), rec.Len())
	}
}
