package netpart_test

import (
	"bytes"
	"strings"
	"testing"

	"netpart"
)

// TestFacadeEndToEnd drives the whole public API the way the README's
// quick start does: model → benchmark → partition → execute → verify.
func TestFacadeEndToEnd(t *testing.T) {
	net := netpart.PaperTestbed()
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	costs, err := netpart.BenchmarkCosts(net)
	if err != nil {
		t.Fatal(err)
	}
	const n, iters = 300, 10
	ann := netpart.StencilAnnotations(n, netpart.STEN2, iters)
	res, err := netpart.Partition(net, costs, ann)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Total() < 1 || res.Vector.Sum() != n {
		t.Fatalf("partition result %v / %v", res.Config, res.Vector)
	}
	run, err := netpart.RunStencilSim(net, res.Config, res.Vector, netpart.STEN2, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	want := netpart.SequentialStencil(netpart.NewStencilGrid(n), iters)
	for i := range want {
		for j := range want[i] {
			if run.Grid[i][j] != want[i][j] {
				t.Fatalf("grid mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFacadeGlobalSearchAndMetasystem(t *testing.T) {
	net := netpart.PaperTestbed()
	costs := netpart.PaperCostTable()
	ann := netpart.StencilAnnotations(300, netpart.STEN2, 10)
	heur, err := netpart.Partition(net, costs, ann)
	if err != nil {
		t.Fatal(err)
	}
	global, err := netpart.PartitionGlobal(net, costs, ann)
	if err != nil {
		t.Fatal(err)
	}
	if global.TcMs > heur.TcMs {
		t.Errorf("global %v worse than heuristic %v", global.TcMs, heur.TcMs)
	}
	meta := netpart.MetasystemTestbed()
	if err := meta.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCostTablePersistence(t *testing.T) {
	orig := netpart.PaperCostTable()
	var buf bytes.Buffer
	if err := netpart.SaveCostTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := netpart.LoadCostTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err1 := orig.Comm("sparc2", "1-D")
	b, err2 := loaded.Comm("sparc2", "1-D")
	if err1 != nil || err2 != nil || a != b {
		t.Errorf("table did not round trip: %+v vs %+v", a, b)
	}
}

func TestFacadeCompileAnnotations(t *testing.T) {
	spec := `{
	  "name": "demo", "params": {"N": 64}, "num_pdus": "N", "cycles": 5,
	  "compute": [{"name": "work", "complexity_per_pdu": "5*N"}],
	  "comm": [{"name": "xchg", "topology": "1-D", "bytes_per_message": "4*N"}]
	}`
	ann, err := netpart.CompileAnnotations(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := netpart.Partition(netpart.PaperTestbed(), netpart.PaperCostTable(), ann)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Total() < 1 {
		t.Errorf("no processors chosen: %v", res.Config)
	}
}

func TestFacadeAdaptiveStencil(t *testing.T) {
	net := netpart.PaperTestbed()
	cfg := netpart.Config{Clusters: []string{"sparc2", "ipc"}, Counts: []int{3, 0}}
	vec, err := netpart.Decompose(net, cfg, 60, netpart.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := netpart.RunStencilAdaptive(net, cfg, vec, netpart.STEN1, 60, 12,
		netpart.StencilAdaptiveOptions{
			RebalanceEvery: 4,
			Slowdown: func(rank, iter int) float64 {
				if rank == 0 && iter > 2 {
					return 3
				}
				return 1
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	want := netpart.SequentialStencil(netpart.NewStencilGrid(60), 12)
	for i := range want {
		for j := range want[i] {
			if res.Grid[i][j] != want[i][j] {
				t.Fatalf("adaptive grid mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFacadeTransports(t *testing.T) {
	for _, mk := range []func(int) ([]netpart.Transport, error){
		func(n int) ([]netpart.Transport, error) { return netpart.NewLocalWorld(n) },
		func(n int) ([]netpart.Transport, error) { return netpart.NewUDPWorld(n) },
	} {
		world, err := mk(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := world[0].Send(1, []byte("ping")); err != nil {
			t.Fatal(err)
		}
		got, err := world[1].Recv(0)
		if err != nil || string(got) != "ping" {
			t.Errorf("round trip: %q, %v", got, err)
		}
		for _, tr := range world {
			tr.Close()
		}
	}
}

func TestFacadeClusterManager(t *testing.T) {
	net := netpart.PaperTestbed()
	m := netpart.NewClusterManager(net.Cluster("sparc2"))
	if err := m.SetLoad(0, 5); err != nil {
		t.Fatal(err)
	}
	if got := m.Refresh(); got != 5 {
		t.Errorf("available = %d, want 5", got)
	}
	if net.Cluster("sparc2").Available != 5 {
		t.Error("cluster not updated")
	}
}

// TestFacadeFaultTolerance drives the fault-injection and recovery surface:
// parse a schedule, build the deterministic engine, run the fault-tolerant
// live stencil through a crash, and verify the recovered result.
func TestFacadeFaultTolerance(t *testing.T) {
	sched, err := netpart.ParseFaultSchedule("crash:1@5;dup:0.1")
	if err != nil {
		t.Fatal(err)
	}
	eng := netpart.NewFaultEngine(sched.Sanitize(4, 12), 1, netpart.NewMetrics())
	world, err := netpart.NewLocalWorld(4, netpart.WithFaultInjector(eng))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tr := range world {
			tr.Close()
		}
	}()
	const n, iters = 24, 12
	res, err := netpart.RunStencilLiveFT(world, netpart.Vector{6, 6, 6, 6}, netpart.STEN1, n, iters,
		netpart.FTOptions{Injector: eng, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 || len(res.Failed) != 1 {
		t.Fatalf("recoveries = %d, failed = %v, want one crash survived", res.Recoveries, res.Failed)
	}
	want := netpart.SequentialStencil(netpart.NewStencilGrid(n), iters)
	for i := range want {
		for j := range want[i] {
			if res.Grid[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %v, want %v", i, j, res.Grid[i][j], want[i][j])
			}
		}
	}

	// Simulated counterpart: packet faults stretch time, not results.
	net := netpart.PaperTestbed()
	cfg := netpart.Config{Clusters: []string{"sparc2"}, Counts: []int{4}}
	vec, err := netpart.Decompose(net, cfg, n, netpart.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	lossy := netpart.NewFaultEngine(netpart.FaultSchedule{
		Drops: []netpart.FaultDrop{{Prob: 0.1, ToMs: 1e18}},
	}, 7, nil)
	sim, err := netpart.RunStencilSimFaulty(net, cfg, vec, netpart.STEN1, n, iters, lossy, 10,
		netpart.StencilAdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := netpart.RunStencilSim(net, cfg, vec, netpart.STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	if sim.ElapsedMs <= clean.ElapsedMs {
		t.Errorf("lossy sim %.1f ms not slower than clean %.1f ms", sim.ElapsedMs, clean.ElapsedMs)
	}
	for i := range clean.Grid {
		for j := range clean.Grid[i] {
			if sim.Grid[i][j] != clean.Grid[i][j] {
				t.Fatalf("faulty sim diverged at (%d,%d)", i, j)
			}
		}
	}
}

func TestFacadeRepartPlanner(t *testing.T) {
	mig := netpart.MigrationCostFromParams(netpart.CostParams{C1: 0, C3: -0.0055}, 8*64)
	if mig.PerByteMs <= 0 {
		t.Fatalf("negative fit not rectified: %+v", mig)
	}
	p := netpart.NewRepartPlanner(netpart.RepartPlannerConfig{Mig: mig, HorizonCycles: 8})
	plan := p.Plan(3, "drift", netpart.Vector{32, 32}, []float64{10, 40})
	if !plan.Changed() {
		t.Fatal("planner kept a 4x-imbalanced vector")
	}
	if plan.New.Sum() != 64 {
		t.Fatalf("row total changed: %v", plan.New)
	}
	var trig netpart.RepartDriftTrigger
	trig.Fire()
	if !trig.Take() || trig.Take() {
		t.Fatal("drift trigger latch misbehaved")
	}
}
