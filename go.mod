module netpart

go 1.22
