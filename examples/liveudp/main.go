// Live UDP execution: run the distributed stencil as real concurrent
// tasks — one goroutine per processor — exchanging borders through the
// MMPS-style reliable UDP message-passing library, with processor
// heterogeneity emulated by per-task work factors.
//
// This is the "no MPI" path: the border exchange, acknowledgment,
// retransmission, and byte-order coercion are all hand-rolled over UDP
// datagrams, as the paper's MMPS library did.
//
// Run with: go run ./examples/liveudp
package main

import (
	"fmt"
	"log"
	"time"

	"netpart"
)

func main() {
	const n, iters = 1024, 20

	// Choose a heterogeneous configuration: 4 "Sparc2" tasks and 2 "IPC"
	// tasks that do their row updates twice (half speed).
	net := netpart.PaperTestbed()
	cfg := netpart.Config{Clusters: []string{"sparc2", "ipc"}, Counts: []int{4, 2}}
	vec, err := netpart.Decompose(net, cfg, n, netpart.OpFloat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition vector (speed-proportional): %v\n", vec)

	equal, err := netpart.EqualDecompose(n, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition vector (equal baseline):     %v\n", equal)

	workFactors := []int{1, 1, 1, 1, 2, 2} // ranks 4,5 are 2x slower

	for _, tc := range []struct {
		name string
		vec  netpart.Vector
	}{
		{"Eq. 3 heterogeneous", vec},
		{"equal decomposition", equal},
	} {
		// Best of three runs (wall-clock timings jitter), fresh UDP world
		// each time.
		var best time.Duration
		var grid [][]float64
		for rep := 0; rep < 3; rep++ {
			world, err := netpart.NewUDPWorld(6)
			if err != nil {
				log.Fatal(err)
			}
			res, err := netpart.RunStencilLive(world, tc.vec, netpart.STEN2, n, iters, workFactors)
			for _, tr := range world {
				_ = tr.Close() // best-effort teardown between repetitions
			}
			if err != nil {
				log.Fatal(err)
			}
			if best == 0 || res.Elapsed < best {
				best = res.Elapsed
			}
			grid = res.Grid
		}
		fmt.Printf("%-22s wall-clock %v (best of 3)\n", tc.name+":", best.Round(10*time.Microsecond))

		want := netpart.SequentialStencil(netpart.NewStencilGrid(n), iters)
		for i := range want {
			for j := range want[i] {
				if grid[i][j] != want[i][j] {
					log.Fatalf("%s: verification failed at (%d,%d)", tc.name, i, j)
				}
			}
		}
	}
	fmt.Println("both runs verified against the sequential solver")
	fmt.Println("(the Eq. 3 vector gives the slow tasks half the rows, so all six tasks finish together)")
}
