// Gaussian elimination: the paper's non-uniform application. The
// broadcast topology is bandwidth limited, so the partitioning method
// selects far fewer processors than it does for a same-size stencil —
// and that restraint wins on the simulated network.
//
// Run with: go run ./examples/gauss
package main

import (
	"fmt"
	"log"

	"netpart"
	"netpart/internal/core"
	"netpart/internal/gauss"
	"netpart/internal/topo"
)

func main() {
	const n = 200
	net := netpart.PaperTestbed()

	// Benchmark both topologies this example needs.
	bcast, err := netpart.TopoByName("broadcast")
	if err != nil {
		log.Fatal(err)
	}
	costs, err := netpart.BenchmarkCosts(net, netpart.Topo1D(), bcast)
	if err != nil {
		log.Fatal(err)
	}

	// Partition the elimination (broadcast) and, for contrast, a stencil
	// (1-D) of the same size.
	gRes, err := netpart.Partition(net, costs, netpart.GaussAnnotations(n))
	if err != nil {
		log.Fatal(err)
	}
	sRes, err := netpart.Partition(net, costs, netpart.StencilAnnotations(n, netpart.STEN1, 10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gauss (broadcast, bandwidth-limited) chooses: %v\n", gRes.Config)
	fmt.Printf("stencil (1-D, locality-friendly) chooses:     %v\n", sRes.Config)

	// Solve a system on the chosen configuration and check it.
	sys := gauss.NewSystem(n, 2026)
	want, err := gauss.Sequential(sys)
	if err != nil {
		log.Fatal(err)
	}
	run, err := gauss.RunSim(net, gRes.Config, gRes.Vector, sys)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if run.X[i] != want[i] {
			log.Fatalf("x[%d] differs from the sequential solver", i)
		}
	}
	fmt.Printf("distributed solve verified; max residual %.2e\n", gauss.Residual(sys, run.X))
	fmt.Printf("elapsed on chosen config: %.1f ms\n", run.ElapsedMs)

	// Show why restraint wins: force the full network.
	full := netpart.Config{Clusters: []string{"sparc2", "ipc"}, Counts: []int{6, 6}}
	vec, err := core.Decompose(net, full, n, netpart.OpFloat)
	if err != nil {
		log.Fatal(err)
	}
	fullRun, err := gauss.RunSim(net, full, vec, sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elapsed on all 12 procs:  %.1f ms — broadcast contention erases the parallelism\n", fullRun.ElapsedMs)

	// The 1-D placement keeps router crossings at one per boundary; the
	// broadcast root talks to everyone.
	pl, _ := topo.Contiguous([]string{"sparc2", "ipc"}, []int{6, 6})
	fmt.Printf("router crossings per cycle: 1-D %d vs broadcast %d\n",
		topo.CrossClusterMessages(topo.OneD{}, pl),
		topo.CrossClusterMessages(topo.Broadcast{}, pl))
}
