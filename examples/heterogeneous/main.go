// Heterogeneous network walkthrough: build the three-cluster network of
// Fig. 1 (Sun4, HP, RS-6000 on three segments with data-format coercion),
// run the cluster managers' cooperative availability protocol over the
// message-passing layer, and watch the partitioner adapt as processors
// become busy.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"sync"

	"netpart"
	"netpart/internal/manager"
)

func main() {
	net := netpart.Figure1Network()
	fmt.Println("Fig. 1 network: sun4, hp, rs6000 clusters joined by one router")
	fmt.Printf("coercion needed sun4↔rs6000: %v (different data formats)\n\n",
		net.NeedsCoercion("sun4", "rs6000"))

	costs, err := netpart.BenchmarkCosts(net, netpart.Topo1D())
	if err != nil {
		log.Fatal(err)
	}
	ann := netpart.StencilAnnotations(900, netpart.STEN2, 10)

	partition := func(label string) {
		res, err := netpart.Partition(net, costs, ann)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s -> %v  (Tc %.2f ms)\n", label, res.Config, res.TcMs)
	}

	// All processors idle.
	partition("all 12 processors idle")

	// Cluster managers monitor load and exchange availability over the
	// message-passing layer (one manager per cluster).
	mgrs := make([]*manager.Manager, len(net.Clusters))
	for i, c := range net.Clusters {
		mgrs[i] = netpart.NewClusterManager(c)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// Users log into three of the four RS-6000s and one HP.
	must(mgrs[2].SetLoad(0, 2.0))
	must(mgrs[2].SetLoad(1, 1.5))
	must(mgrs[2].SetLoad(2, 0.8))
	must(mgrs[1].SetLoad(3, 1.2))

	// Cooperative exchange: every manager learns every cluster's state.
	world, err := netpart.NewLocalWorld(len(mgrs))
	if err != nil {
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	reports := make([][]manager.Report, len(mgrs))
	for i := range mgrs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := manager.Exchange(world[i], mgrs[i].Report())
			if err != nil {
				log.Fatal(err)
			}
			reports[i] = r
		}()
	}
	wg.Wait()
	fmt.Println("\navailability after the cooperative exchange:")
	for _, r := range reports[0] {
		fmt.Printf("  %-8s %d available (mean load over all procs %.2f)\n", r.Cluster, r.Available, r.MeanLoadAll)
	}
	manager.Apply(net, reports[0])

	// The partitioner now sees the reduced availability.
	partition("\nafter load appears")

	// The paper's "general case": keep the busy processors but stretch
	// their effective instruction times by the observed load.
	adjusted := manager.AdjustSpeeds(net, reports[0])
	for _, c := range adjusted.Clusters {
		c.Available = c.Procs
	}
	res, err := netpart.Partition(adjusted, costs, ann)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s -> %v  (Tc %.2f ms)\n", "general case (speeds adjusted)", res.Config, res.TcMs)
}
