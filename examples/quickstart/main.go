// Quickstart: partition a stencil computation across the paper's
// heterogeneous testbed and execute it on the simulated network.
//
// This walks the full pipeline in four steps:
//  1. describe the network (two clusters of workstations and a router),
//  2. benchmark its communication costs offline (Eq. 1 fitting),
//  3. let the runtime partitioning method choose processors and the
//     partition vector from the program's callback annotations,
//  4. execute the chosen configuration and verify the numerics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"netpart"
)

func main() {
	// 1. The network: 6 Sparc2s and 6 IPCs on two ethernet segments.
	net := netpart.PaperTestbed()
	fmt.Printf("network: %d processors in %d clusters\n", net.TotalProcs(), len(net.Clusters))

	// 2. Offline benchmarking of the 1-D communication topology.
	costs, err := netpart.BenchmarkCosts(net, netpart.Topo1D())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Partition a 600×600 overlapped stencil (STEN-2, 10 iterations).
	const n, iters = 600, 10
	ann := netpart.StencilAnnotations(n, netpart.STEN2, iters)
	res, err := netpart.Partition(net, costs, ann)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen configuration: %v\n", res.Config)
	fmt.Printf("partition vector:     %v\n", res.Vector)
	fmt.Printf("predicted T_c:        %.2f ms/cycle (T_comp %.2f, T_comm %.2f, overlap %.2f)\n",
		res.TcMs, res.TcompMs, res.TcommMs, res.ToverlapMs)
	fmt.Printf("search cost:          %d cost-model evaluations\n", res.Evaluations)

	// 4. Execute on the simulated network and verify.
	run, err := netpart.RunStencilSim(net, res.Config, res.Vector, netpart.STEN2, n, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated elapsed:    %.1f ms (predicted %.1f ms)\n",
		run.ElapsedMs, res.ElapsedMs(iters))

	want := netpart.SequentialStencil(netpart.NewStencilGrid(n), iters)
	for i := range want {
		for j := range want[i] {
			if run.Grid[i][j] != want[i][j] {
				log.Fatalf("verification failed at (%d,%d)", i, j)
			}
		}
	}
	fmt.Println("verification:         distributed result matches the sequential solver exactly")
}
