// Particle simulation: the third PDU type the paper names ("a collection
// of particles"). Work per cell depends on the local density squared, so
// when particles clump, the density-blind Eq. 3 decomposition piles the
// whole clump onto one processor; the density-weighted decomposition
// rebalances — and both produce bit-identical physics.
//
// Run with: go run ./examples/particles
package main

import (
	"fmt"
	"log"
	"strings"

	"netpart"
)

func main() {
	const cells, n, steps = 48, 1200, 10
	net := netpart.PaperTestbed()
	cfg := netpart.Config{Clusters: []string{"sparc2", "ipc"}, Counts: []int{4, 0}}

	// 80% of the particles start in the first tenth of the domain.
	sys := netpart.NewParticleSystem(cells, n, 2026, 0.8)
	hist := sys.Histogram()
	fmt.Println("density histogram (particles per cell):")
	fmt.Printf("  %s\n", sparkline(hist))

	uniform, err := netpart.Decompose(net, cfg, cells, netpart.OpFloat)
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := netpart.WeightedDecompose(net, cfg, hist, netpart.OpFloat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform vector   (cells/task): %v\n", uniform)
	fmt.Printf("weighted vector  (cells/task): %v  — tasks near the clump own fewer cells\n", weighted)

	want := netpart.SequentialParticles(sys, steps)
	for name, vec := range map[string]netpart.Vector{"uniform": uniform, "weighted": weighted} {
		res, err := netpart.RunParticlesSim(net, cfg, vec, sys, steps)
		if err != nil {
			log.Fatal(err)
		}
		for i := range want.Particles {
			if res.Final.Particles[i] != want.Particles[i] {
				log.Fatalf("%s: particle %d diverged", name, i)
			}
		}
		fmt.Printf("%-9s simulated elapsed: %8.1f ms (verified bit-exact)\n", name, res.ElapsedMs)
	}
	fmt.Println("\nthe partitioning method itself still chooses the processor count:")
	costs, err := netpart.BenchmarkCosts(net)
	if err != nil {
		log.Fatal(err)
	}
	res, err := netpart.Partition(net, costs, netpart.ParticleAnnotations(cells, n, steps))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  chosen configuration: %v (predicted Tc %.2f ms)\n", res.Config, res.TcMs)
}

// sparkline renders counts as a rough bar string.
func sparkline(counts []int) string {
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, c := range counts {
		b.WriteRune(levels[c*(len(levels)-1)/max])
	}
	return b.String()
}
