// Package netpart is a runtime partitioning library for data parallel
// computations on heterogeneous workstation networks, reproducing
// Weissman & Grimshaw, "Network Partitioning of Data Parallel
// Computations" (HPDC 1994).
//
// Given a network model (homogeneous clusters on private-bandwidth
// segments joined by a router), a table of benchmarked topology-specific
// communication cost functions, and program annotations supplied as
// callback functions, the library chooses the number and type of
// processors to apply to a computation and a load-balanced decomposition
// of the data domain (the partition vector) that minimizes estimated
// per-cycle elapsed time.
//
// The package is a facade over the implementation packages:
//
//   - the network model and the paper's testbeds (internal/model)
//   - communication topologies (internal/topo)
//   - Eq. 1 cost functions and least-squares fitting (internal/cost)
//   - a deterministic discrete-event network simulator (internal/simnet)
//   - offline communication benchmarking (internal/commbench)
//   - the partitioning method itself (internal/core)
//   - an SPMD runtime over the simulator (internal/spmd)
//   - reliable UDP message passing in the style of MMPS (internal/mmps)
//   - cluster managers and the availability protocol (internal/manager)
//   - the evaluation applications (internal/stencil, internal/gauss)
//   - decomposition baselines (internal/balance)
//   - metrics and structured trace recording (internal/obs), HTTP
//     telemetry exposition (internal/obs/serve), and estimate-drift
//     monitoring (internal/obs/drift)
//
// Quick start:
//
//	net := netpart.PaperTestbed()
//	costs, _ := netpart.BenchmarkCosts(net, netpart.Topo1D())
//	ann := netpart.StencilAnnotations(600, netpart.STEN2, 10)
//	res, _ := netpart.Partition(net, costs, ann)
//	fmt.Println(res.Config, res.Vector, res.TcMs)
package netpart

import (
	"io"

	"netpart/internal/annspec"
	"netpart/internal/balance"
	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/gauss"
	"netpart/internal/manager"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/obs/drift"
	"netpart/internal/obs/serve"
	"netpart/internal/particles"
	"netpart/internal/repart"
	"netpart/internal/stencil"
	"netpart/internal/stencil2d"
	"netpart/internal/topo"
)

// Network model types.
type (
	// Network is the heterogeneous network: clusters, segments, router.
	Network = model.Network
	// Cluster is a homogeneous processor group on one segment.
	Cluster = model.Cluster
	// Segment is a private-bandwidth network segment.
	Segment = model.Segment
	// Router joins segments with a per-byte transit delay.
	Router = model.Router
	// ProcID names one processor.
	ProcID = model.ProcID
	// OpClass selects integer or floating-point instruction speed.
	OpClass = model.OpClass
)

// Operation classes.
const (
	OpFloat = model.OpFloat
	OpInt   = model.OpInt
)

// Cost model types.
type (
	// CostTable holds benchmarked Eq. 1 models per (cluster, topology)
	// plus router/coercion penalties per cluster pair.
	CostTable = cost.Table
	// CostParams are the four Eq. 1 constants.
	CostParams = cost.Params
	// Config is a processor configuration (P_i per cluster).
	Config = cost.Config
	// Observation is one communication benchmark measurement.
	Observation = cost.Observation
)

// Partitioning types.
type (
	// Annotations carries the program description as callbacks.
	Annotations = core.Annotations
	// ComputationPhase annotates one computation phase.
	ComputationPhase = core.ComputationPhase
	// CommunicationPhase annotates one communication phase.
	CommunicationPhase = core.CommunicationPhase
	// Estimator computes T_c estimates for candidate configurations.
	Estimator = core.Estimator
	// Estimate is one configuration's cost breakdown.
	Estimate = core.Estimate
	// Result is the partitioning output: configuration, vector, estimate.
	Result = core.Result
	// Vector is the partition vector (PDUs per task rank).
	Vector = core.Vector
)

// Topology is one synchronous communication pattern.
type Topology = topo.Topology

// Stencil types.
type (
	// StencilVariant selects STEN-1 or STEN-2.
	StencilVariant = stencil.Variant
)

// Stencil variants.
const (
	STEN1 = stencil.STEN1
	STEN2 = stencil.STEN2
)

// Transport is a reliable message-passing endpoint (UDP or in-memory).
type Transport = mmps.Transport

// PaperTestbed returns the paper's Section 6.0 evaluation network:
// 6 Sun4 Sparc2s and 6 Sun4 IPCs on two ethernet segments joined by a
// router.
func PaperTestbed() *Network { return model.PaperTestbed() }

// Figure1Network returns the three-cluster example network of Fig. 1.
func Figure1Network() *Network { return model.Figure1Network() }

// PaperCostTable returns the cost constants published in Section 6.0.
func PaperCostTable() *CostTable { return cost.PaperTable() }

// Topo1D returns the 1-D (line) topology; see also TopoByName for "ring",
// "2-D", "tree", "broadcast", and "all-to-all".
func Topo1D() Topology { return topo.OneD{} }

// TopoByName resolves a canonical topology name.
func TopoByName(name string) (Topology, error) { return topo.ByName(name) }

// BenchmarkCosts runs the offline benchmarking step of Section 3.0 on the
// simulated network for the given topologies (Topo1D() if none are given)
// and returns the fitted cost table.
func BenchmarkCosts(net *Network, topologies ...Topology) (*CostTable, error) {
	if len(topologies) == 0 {
		topologies = []Topology{topo.OneD{}}
	}
	res, err := commbench.Run(net, topologies, commbench.DefaultGrid())
	if err != nil {
		return nil, err
	}
	return res.Table, nil
}

// NewEstimator builds a T_c estimator from a network, cost table, and
// annotations.
func NewEstimator(net *Network, costs *CostTable, ann *Annotations) (*Estimator, error) {
	return core.NewEstimator(net, costs, ann)
}

// Partition runs the Section 5.0 heuristic: fastest clusters first,
// bisection over the unimodal T_c curve within each, opening a slower
// cluster only when the faster one is exhausted.
func Partition(net *Network, costs *CostTable, ann *Annotations) (Result, error) {
	est, err := core.NewEstimator(net, costs, ann)
	if err != nil {
		return Result{}, err
	}
	return core.Partition(est)
}

// Decompose computes the Eq. 3 load-balanced integer partition vector for
// an explicit configuration.
func Decompose(net *Network, cfg Config, numPDUs int, class OpClass) (Vector, error) {
	return core.Decompose(net, cfg, numPDUs, class)
}

// EqualDecompose is the heterogeneity-blind baseline: an equal split.
func EqualDecompose(numPDUs, tasks int) (Vector, error) {
	return balance.EqualVector(numPDUs, tasks)
}

// StencilAnnotations returns the Section 4.0 callbacks for the N×N
// five-point stencil.
func StencilAnnotations(n int, v StencilVariant, iters int) *Annotations {
	return stencil.Annotations(n, v, iters)
}

// GaussAnnotations returns the callbacks for Gaussian elimination with
// partial pivoting (broadcast topology, non-uniform complexity).
func GaussAnnotations(n int) *Annotations { return gauss.Annotations(n) }

// RunStencilSim executes the distributed stencil on the simulated network
// and returns the virtual elapsed time and final grid.
func RunStencilSim(net *Network, cfg Config, vec Vector, v StencilVariant, n, iters int) (stencil.SimResult, error) {
	return stencil.RunSim(net, cfg, vec, v, n, iters)
}

// RunStencilLive executes the distributed stencil over real concurrent
// tasks communicating through mmps transports.
func RunStencilLive(world []Transport, vec Vector, v StencilVariant, n, iters int, workFactor []int) (stencil.LiveResult, error) {
	return stencil.RunLive(world, vec, v, n, iters, workFactor)
}

// SequentialStencil is the single-processor reference solver.
func SequentialStencil(grid [][]float64, iters int) [][]float64 {
	return stencil.Sequential(grid, iters)
}

// NewStencilGrid returns the deterministic initial condition used by the
// experiments (hot north edge).
func NewStencilGrid(n int) [][]float64 { return stencil.NewGrid(n) }

// NewUDPWorld creates n reliable message-passing endpoints over loopback
// UDP sockets (the MMPS substrate).
func NewUDPWorld(n int, opts ...mmps.Option) ([]Transport, error) {
	conns, err := mmps.NewUDPWorld(n, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]Transport, n)
	for i, c := range conns {
		out[i] = c
	}
	return out, nil
}

// NewLocalWorld creates n in-memory endpoints with the same interface.
func NewLocalWorld(n int, opts ...mmps.Option) ([]Transport, error) {
	locals, err := mmps.NewLocalWorld(n, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]Transport, n)
	for i, l := range locals {
		out[i] = l
	}
	return out, nil
}

// NewClusterManager creates a cluster manager with the default threshold
// policy.
func NewClusterManager(c *Cluster) *manager.Manager {
	return manager.New(c, manager.DefaultPolicy)
}

// PartitionGlobal runs the general-case search (the paper's §5.0 future
// work): multi-start pairwise-coordinate descent over the full
// configuration lattice, robust to the multimodal T_c surfaces that trap
// the locality-first heuristic.
func PartitionGlobal(net *Network, costs *CostTable, ann *Annotations) (Result, error) {
	est, err := core.NewEstimator(net, costs, ann)
	if err != nil {
		return Result{}, err
	}
	return core.PartitionGlobal(est)
}

// MetasystemTestbed returns the §7 metasystem: the paper's workstation
// testbed plus an 8-node multicomputer on a fast private segment.
func MetasystemTestbed() *Network { return model.MetasystemTestbed() }

// StencilAdaptiveOptions configures adaptive (dynamically repartitioned)
// stencil execution.
type StencilAdaptiveOptions = stencil.AdaptiveOptions

// RunStencilAdaptive executes the stencil with periodic dynamic
// repartitioning and real row migration (the §7 future-work strategy for
// load imbalance from processor sharing).
func RunStencilAdaptive(net *Network, cfg Config, vec Vector, v StencilVariant, n, iters int, opts StencilAdaptiveOptions) (stencil.AdaptiveResult, error) {
	return stencil.RunSimAdaptive(net, cfg, vec, v, n, iters, opts)
}

// CompileAnnotations compiles a declarative JSON annotation specification
// (see specs/) into callbacks — the §7 "compiler-generated callbacks"
// direction.
func CompileAnnotations(r io.Reader) (*Annotations, error) {
	return annspec.CompileReader(r)
}

// SaveCostTable writes a fitted cost table as JSON.
func SaveCostTable(w io.Writer, t *CostTable) error { return cost.WriteTable(w, t) }

// LoadCostTable reads a cost table written by SaveCostTable.
func LoadCostTable(r io.Reader) (*CostTable, error) { return cost.ReadTable(r) }

// ParticleSystem is the particle-simulation application state (the third
// PDU type of §4.0: a PDU is a cell of particles).
type ParticleSystem = particles.System

// NewParticleSystem creates a deterministic particle system; clump > 0
// concentrates that fraction of the particles in the first tenth of the
// domain.
func NewParticleSystem(cells, n int, seed uint64, clump float64) ParticleSystem {
	return particles.NewSystem(cells, n, seed, clump)
}

// ParticleAnnotations returns the partitioning callbacks for the particle
// simulation.
func ParticleAnnotations(cells, n, steps int) *Annotations {
	return particles.Annotations(cells, n, steps)
}

// RunParticlesSim executes the distributed particle simulation on the
// simulated network (bit-exact with SequentialParticles).
func RunParticlesSim(net *Network, cfg Config, vec Vector, s ParticleSystem, steps int) (particles.SimResult, error) {
	return particles.RunSim(net, cfg, vec, s, steps)
}

// SequentialParticles is the single-processor reference.
func SequentialParticles(s ParticleSystem, steps int) ParticleSystem {
	return particles.Sequential(s, steps)
}

// WeightedDecompose computes a density-aware partition vector for PDUs of
// unequal weight (the general decomposition specialized to per-PDU
// weights).
func WeightedDecompose(net *Network, cfg Config, weights []int, class OpClass) (Vector, error) {
	return particles.WeightedVector(net, cfg, weights, class)
}

// Stencil2DAnnotations returns the callbacks for the 2-D block
// implementation of the stencil (mesh topology, √A-sized borders).
func Stencil2DAnnotations(n, iters int) *Annotations {
	return stencil2d.Annotations(n, iters)
}

// RunStencil2DSim executes the 2-D block-decomposed stencil on the
// simulated network.
func RunStencil2DSim(net *Network, cfg Config, n, iters int) (stencil2d.SimResult, error) {
	return stencil2d.RunSim(net, cfg, n, iters)
}

// RunGaussSim solves a linear system by distributed Gaussian elimination
// with partial pivoting (contiguous row blocks).
func RunGaussSim(net *Network, cfg Config, vec Vector, s gauss.System) (gauss.SimResult, error) {
	return gauss.RunSim(net, cfg, vec, s)
}

// RunGaussSimCyclic solves with the block-cyclic row assignment, which
// balances elimination's shrinking active window.
func RunGaussSimCyclic(net *Network, cfg Config, vec Vector, blocks int, s gauss.System) (gauss.SimResult, error) {
	return gauss.RunSimCyclic(net, cfg, vec, blocks, s)
}

// Collective operations over transports (each rank calls with its own
// endpoint; rank 0 is the root where one applies).
var (
	// Bcast distributes the root's payload to every rank.
	Bcast = mmps.Bcast
	// Gather collects every rank's payload at the root.
	Gather = mmps.Gather
	// AllGather gives every rank all payloads.
	AllGather = mmps.AllGather
	// Barrier blocks until every rank has entered.
	Barrier = mmps.Barrier
)

// StencilLiveAdaptiveOptions configures live adaptive execution.
type StencilLiveAdaptiveOptions = stencil.LiveAdaptiveOptions

// RunStencilLiveAdaptive runs the dynamic-repartitioning strategy on real
// concurrent tasks over mmps transports, migrating actual grid rows.
func RunStencilLiveAdaptive(world []Transport, vec Vector, v StencilVariant, n, iters int, opts StencilLiveAdaptiveOptions) (stencil.LiveAdaptiveResult, error) {
	return stencil.RunLiveAdaptive(world, vec, v, n, iters, opts)
}

// RunStencilSimUntil executes the stencil until the global maximum point
// change falls to tol (run-to-convergence with a per-iteration reduction).
func RunStencilSimUntil(net *Network, cfg Config, vec Vector, v StencilVariant, n int, tol float64, maxIters int) (stencil.ConvergeResult, error) {
	return stencil.RunSimUntil(net, cfg, vec, v, n, tol, maxIters)
}

// Observability types: search tracing for the partitioner and runtime
// metrics for the SPMD executions.
type (
	// Observer receives every candidate evaluation and search step of a
	// partitioning run (set it on an Estimator before searching).
	Observer = core.Observer
	// PartitionCandidate is one evaluated (configuration, cluster, p) point
	// with its full cost breakdown.
	PartitionCandidate = core.Candidate
	// PartitionSearchEvent is one search transition: cluster opened,
	// bisection step, settle/exhaust, winner.
	PartitionSearchEvent = core.SearchEvent
	// SearchTrace is an in-memory Observer: it records candidates and
	// events and can explain the decision or dump per-cluster T_c curves.
	SearchTrace = core.SearchTrace
	// MultiObserver fans observations out to several observers.
	MultiObserver = core.MultiObserver
	// Metrics is a registry of named counters, gauges, and latency
	// histograms (nil-safe: a nil registry records nothing).
	Metrics = obs.Registry
	// TraceRecorder streams structured events as JSONL and retains them in
	// memory for later export.
	TraceRecorder = obs.Recorder
	// TraceEvent is one recorded event.
	TraceEvent = obs.Event
	// CurvePoint is one point of a recorded per-cluster T_c(p) curve.
	CurvePoint = core.CurvePoint
)

// Unimodal reports whether a recorded T_c(p) curve weakly decreases to a
// single minimum and then weakly increases — the Fig. 3 shape the
// bisection search depends on.
func Unimodal(points []CurvePoint) bool { return core.Unimodal(points) }

// PartitionWith runs the Section 5.0 heuristic on a caller-built estimator;
// use this instead of Partition to attach an Observer (or tune the
// estimator) before searching.
func PartitionWith(est *Estimator) (Result, error) { return core.Partition(est) }

// SinkObserver adapts a TraceRecorder into an Observer that streams every
// candidate evaluation and search step as structured events.
func SinkObserver(rec *TraceRecorder) Observer { return core.SinkObserver{Sink: rec} }

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewTraceRecorder creates an event recorder; w may be nil for memory-only
// recording, otherwise each event is also written as one JSON line.
func NewTraceRecorder(w io.Writer) *TraceRecorder { return obs.NewRecorder(w) }

// WriteChromeTrace converts recorded span events to the Chrome trace-event
// JSON format (open the output in chrome://tracing or Perfetto).
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// RunStencilSimObserved is RunStencilSim with instrumentation: per-cycle
// timings, message/byte counters, and delivery latencies land in m, and a
// per-task-cycle span stream lands in rec (either may be nil).
func RunStencilSimObserved(net *Network, cfg Config, vec Vector, v StencilVariant, n, iters int, m *Metrics, rec *TraceRecorder) (stencil.SimResult, error) {
	return stencil.RunSimObserved(net, cfg, vec, v, n, iters, m, rec)
}

// RunStencilLiveObserved is RunStencilLive with wall-clock cycle/exchange
// instrumentation.
func RunStencilLiveObserved(world []Transport, vec Vector, v StencilVariant, n, iters int, workFactor []int, m *Metrics, rec *TraceRecorder) (stencil.LiveResult, error) {
	return stencil.RunLiveObserved(world, vec, v, n, iters, workFactor, m, rec)
}

// WithTransportMetrics counts messages, bytes, packets, and retransmissions
// of an mmps world into a metrics registry.
func WithTransportMetrics(m *Metrics) mmps.Option { return mmps.WithMetrics(m) }

// Fault injection and tolerance types.
type (
	// FaultSchedule is a parsed fault scenario: crashes, packet drops,
	// delays, duplications, compute slowdowns, and network partitions.
	FaultSchedule = faults.Schedule
	// FaultInjector decides packet fates and rank fault schedules;
	// FaultEngine is its deterministic seedable implementation.
	FaultInjector = faults.Injector
	// FaultEngine is the deterministic injector over a FaultSchedule.
	FaultEngine = faults.Engine
	// FTOptions configures the fault-tolerant live stencil runtime.
	FTOptions = stencil.FTOptions
	// FTResult is its outcome, including recovery events.
	FTResult = stencil.FTResult
	// RecoveryEvent records one completed failure recovery.
	RecoveryEvent = stencil.RecoveryEvent
	// Fault clause types, for building schedules programmatically instead
	// of via ParseFaultSchedule.
	FaultCrash = faults.Crash
	FaultDrop  = faults.Drop
	FaultDelay = faults.Delay
	FaultDup   = faults.Dup
	FaultSlow  = faults.Slow
	FaultPart  = faults.Part
)

// ParseFaultSchedule parses the schedule grammar, e.g.
// "crash:3@12; drop:0.05; delay:0.1,2; dup:0.1; slow:2,4@5-15; part:6@100-200".
func ParseFaultSchedule(s string) (FaultSchedule, error) { return faults.Parse(s) }

// NewFaultEngine builds the deterministic injector for a schedule: the same
// seed always yields the same fault sequence. m may be nil.
func NewFaultEngine(sched FaultSchedule, seed uint64, m *Metrics) *FaultEngine {
	return faults.NewEngine(sched, seed, m)
}

// WithFaultInjector routes every packet of an mmps world (UDP or local)
// through a fault injector, below the reliability layer: results are
// unchanged, only timing and retransmissions shift — except for crash
// faults, which the fault-tolerant runtime turns into recoveries.
func WithFaultInjector(inj FaultInjector) mmps.Option { return mmps.WithInjector(inj) }

// RunStencilLiveFT executes the live stencil with failure detection and
// recovery: buddy checkpointing, bounded-silence verdicts, a recovery
// barrier, re-partitioning over the survivors, and rollback to the last
// complete checkpoint. The result is bit-for-bit identical to a fault-free
// run.
func RunStencilLiveFT(world []Transport, vec Vector, v StencilVariant, n, iters int, opts FTOptions) (FTResult, error) {
	return stencil.RunLiveFT(world, vec, v, n, iters, opts)
}

// StencilRepartitioner builds the FTOptions.Repartition policy that re-runs
// the paper's partitioning method over the surviving processors (placement
// maps each rank to its cluster name).
func StencilRepartitioner(net *Network, costs *CostTable, v StencilVariant, n, iters int, placement []string) func(alive []int) (Vector, error) {
	return stencil.Repartitioner(net, costs, v, n, iters, placement)
}

// RunStencilSimFaulty is RunStencilSim under packet and slowdown faults:
// drops cost retransmission round-trips (retransmitMs each), delays stretch
// delivery, slowdowns stretch compute. Crashes are rejected here — failure
// recovery belongs to the live runtime (RunStencilLiveFT).
func RunStencilSimFaulty(net *Network, cfg Config, vec Vector, v StencilVariant, n, iters int, inj FaultInjector, retransmitMs float64, opts StencilAdaptiveOptions) (stencil.AdaptiveResult, error) {
	return stencil.RunSimFaulty(net, cfg, vec, v, n, iters, inj, retransmitMs, opts)
}

// Live telemetry and drift monitoring types. TelemetryServer exposes a
// Metrics registry over HTTP (Prometheus text on /metrics, JSON on
// /metrics.json, /healthz, /debug/pprof/); DriftMonitor subscribes to a
// runtime's per-cycle measurements (as a CycleSink) and flags sustained
// deviation from the estimator's T_comp/T_comm predictions.
type (
	// TelemetryServer is a running HTTP telemetry endpoint.
	TelemetryServer = serve.Server
	// CycleSink receives per-task per-cycle runtime observations.
	CycleSink = obs.CycleSink
	// DriftMonitor is a CycleSink comparing measured cycle times against
	// estimator predictions (EWMA + windowed quantiles, threshold events).
	DriftMonitor = drift.Monitor
	// DriftConfig parameterizes a DriftMonitor.
	DriftConfig = drift.Config
	// MetricsExport is a stable, name-sorted exposition snapshot of a
	// Metrics registry.
	MetricsExport = obs.Export
)

// ServeTelemetry starts serving m's metrics on addr (":0" picks a free
// port; the resolved address is Server.Addr). Close the returned server
// when done, or Wait on it to block until SIGINT/SIGTERM.
func ServeTelemetry(addr string, m *Metrics) (*TelemetryServer, error) {
	return serve.Start(addr, m)
}

// WritePrometheus writes a registry snapshot in the Prometheus text
// exposition format (the same bytes /metrics serves).
func WritePrometheus(w io.Writer, m *Metrics) error {
	return serve.WriteProm(w, m.Export())
}

// NewDriftMonitor builds a drift monitor writing gauges and counters to m
// and structured "drift" events to rec (either may be nil). Wire it into
// a runtime via RunStencilSimMonitored, RunStencilLiveMonitored, or
// FTOptions.Cycles.
func NewDriftMonitor(cfg DriftConfig, m *Metrics, rec *TraceRecorder) *DriftMonitor {
	return drift.New(cfg, m, rec)
}

// RunStencilSimMonitored is RunStencilSimObserved plus a per-cycle
// subscription (the drift-monitor hookup).
func RunStencilSimMonitored(net *Network, cfg Config, vec Vector, v StencilVariant, n, iters int, m *Metrics, rec *TraceRecorder, sink CycleSink) (stencil.SimResult, error) {
	return stencil.RunSimMonitored(net, cfg, vec, v, n, iters, m, rec, sink)
}

// RunStencilLiveMonitored is RunStencilLiveObserved plus a per-cycle
// subscription (the drift-monitor hookup).
func RunStencilLiveMonitored(world []Transport, vec Vector, v StencilVariant, n, iters int, workFactor []int, m *Metrics, rec *TraceRecorder, sink CycleSink) (stencil.LiveResult, error) {
	return stencil.RunLiveMonitored(world, vec, v, n, iters, workFactor, m, rec, sink)
}

// Continuous repartitioning (internal/repart): the drift-triggered
// trigger → plan → migrate pipeline shared by the adaptive runtimes and
// fault recovery. A RepartPlanner runs the incremental restreaming search
// with migration cost (MigrationCost) as an explicit objective term; a
// RepartEngine adds the rank-0-decides/broadcast exchange plus metrics,
// trace, and observer export; a RepartDriftTrigger latches drift events
// (DriftConfig.Notify) for the next repartitioning round.
type (
	// RepartPlan records one repartitioning decision.
	RepartPlan = repart.Plan
	// RepartPlanner is the incremental migration-cost-aware planner.
	RepartPlanner = repart.Planner
	// RepartPlannerConfig tunes the planner's objective and search.
	RepartPlannerConfig = repart.PlannerConfig
	// RepartEngine couples a planner with the decision protocol and
	// observability export.
	RepartEngine = repart.Engine
	// RepartTrigger gates drift-triggered repartitioning rounds.
	RepartTrigger = repart.Trigger
	// RepartDriftTrigger is the edge-triggered latch fed by drift events.
	RepartDriftTrigger = repart.DriftTrigger
	// MigrationCost is the T_mig objective term (see MigrationFromParams
	// for deriving it from a cluster's Eq. 1 fit).
	MigrationCost = cost.Migration
)

// NewRepartPlanner builds the incremental repartitioning planner.
func NewRepartPlanner(cfg RepartPlannerConfig) *RepartPlanner { return repart.NewPlanner(cfg) }

// MigrationCostFromParams derives T_mig constants from a cluster's Eq. 1
// fit: |C1| prices the migration round, |C3| the payload per byte.
func MigrationCostFromParams(p CostParams, rowBytes float64) MigrationCost {
	return cost.MigrationFromParams(p, rowBytes)
}
