package stencil2d

import (
	"testing"

	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/stencil"
	"netpart/internal/topo"
)

func paperConfig(p1, p2 int) cost.Config {
	return cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{p1, p2},
	}
}

func gridsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestRunSimMatchesSequential(t *testing.T) {
	net := model.PaperTestbed()
	const n, iters = 24, 6
	want := stencil.Sequential(stencil.NewGrid(n), iters)
	for _, tc := range []struct {
		name   string
		cfg    cost.Config
		pr, pc int
	}{
		{"single", paperConfig(1, 0), 1, 1},
		{"line", paperConfig(2, 0), 1, 2},
		{"square", paperConfig(4, 0), 2, 2},
		{"rect", paperConfig(6, 0), 2, 3},
		{"full mesh", paperConfig(6, 6), 3, 4},
		{"prime", paperConfig(5, 0), 1, 5},
	} {
		res, err := RunSim(net, tc.cfg, n, iters)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Rows != tc.pr || res.Cols != tc.pc {
			t.Errorf("%s: mesh %dx%d, want %dx%d", tc.name, res.Rows, res.Cols, tc.pr, tc.pc)
		}
		if !gridsEqual(res.Grid, want) {
			t.Errorf("%s: 2-D grid differs from sequential", tc.name)
		}
		if res.ElapsedMs <= 0 {
			t.Errorf("%s: elapsed %v", tc.name, res.ElapsedMs)
		}
	}
}

func TestRunSimValidates(t *testing.T) {
	net := model.PaperTestbed()
	if _, err := RunSim(net, paperConfig(0, 0), 10, 2); err == nil {
		t.Error("empty configuration accepted")
	}
	if _, err := RunSim(net, paperConfig(6, 6), 3, 2); err == nil {
		t.Error("grid smaller than mesh accepted")
	}
}

func TestAnnotationsSquareRootMessages(t *testing.T) {
	a := Annotations(600, 10)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumPDUs() != 360000 {
		t.Errorf("NumPDUs = %d, want N²", a.NumPDUs())
	}
	// A task holding a 100×100 block sends ≈ 400-byte borders.
	if got := a.Comm[0].BytesPerMessage(10000); got != 400 {
		t.Errorf("BytesPerMessage(10000) = %v, want 400", got)
	}
	// Message size genuinely shrinks with more processors (smaller A).
	if a.Comm[0].BytesPerMessage(2500) >= a.Comm[0].BytesPerMessage(10000) {
		t.Error("message size should shrink with the assignment")
	}
}

func TestBorderBytesBelowOneD(t *testing.T) {
	// The motivation for the 2-D decomposition: on a 3×4 mesh each border
	// is ≈ n/3 or n/4 points versus the full n of the row decomposition.
	net := model.PaperTestbed()
	const n, iters = 48, 4
	res2d, err := RunSim(net, paperConfig(6, 6), n, iters)
	if err != nil {
		t.Fatal(err)
	}
	vec, err := core.Decompose(net, paperConfig(6, 6), n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	res1d, err := stencil.RunSim(net, paperConfig(6, 6), vec, stencil.STEN1, n, iters)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 int64
	for _, s := range res1d.Report.Segments {
		b1 += s.Bytes
	}
	for _, s := range res2d.Report.Segments {
		b2 += s.Bytes
	}
	if b2 >= b1 {
		t.Errorf("2-D moved %d bytes, 1-D %d; expected fewer", b2, b1)
	}
}

func TestCompareImplementations(t *testing.T) {
	net := model.PaperTestbed()
	bench, err := commbench.Run(net,
		[]topo.Topology{topo.OneD{}, topo.Mesh2D{}}, commbench.DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	oneD, twoD, err := CompareImplementations(net, bench.Table, 600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if oneD.Config.Total() < 1 || twoD.Config.Total() < 1 {
		t.Fatalf("degenerate choices: %v / %v", oneD.Config, twoD.Config)
	}
	if oneD.TcMs <= 0 || twoD.TcMs <= 0 {
		t.Fatalf("Tc: %v / %v", oneD.TcMs, twoD.TcMs)
	}
	t.Logf("implementation selection at N=600: 1-D %v Tc=%.2f; 2-D %v Tc=%.2f",
		oneD.Config, oneD.TcMs, twoD.Config, twoD.TcMs)
}
