// Package stencil2d implements the five-point stencil with a 2-D block
// decomposition over the "2-D" mesh topology — the alternative
// implementation the paper's topology list anticipates. Where the 1-D
// row decomposition of package stencil exchanges two full-width borders,
// the 2-D blocks exchange four borders of length ≈ n/√p, trading more
// messages for fewer bytes. Annotating both implementations and letting
// the estimator compare them is the paper's implementation-selection story
// (STEN-1 vs STEN-2) extended to decomposition shape.
//
// The PDU here is a single grid point (num_PDUs = N²), so the
// communication complexity genuinely depends on the assignment: a task
// holding A points in a square block sends borders of about √A points —
// exercising the BytesPerMessage(pdus) callback path that the constant-
// size 1-D stencil does not.
//
// The block decomposition is homogeneous (equal blocks): heterogeneous 2-D
// rectilinear partitioning is outside the paper's partition-vector
// abstraction. Correctness holds for any configuration; load balance is
// only achieved on same-speed processors.
//
//netpart:deterministic
package stencil2d

import (
	"errors"
	"fmt"
	"math"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/spmd"
	"netpart/internal/stencil"
	"netpart/internal/topo"
)

// BytesPerPoint matches the 1-D implementation (4-byte grid points).
const BytesPerPoint = 4

// OpsPerPoint is the five-point update cost.
const OpsPerPoint = 5

// Annotations returns the callback annotations for the 2-D implementation:
// PDU = grid point, mesh topology, border messages of ≈ 4·√A bytes.
func Annotations(n, iters int) *core.Annotations {
	return &core.Annotations{
		Name:    "STEN-2D",
		NumPDUs: func() int { return n * n },
		Compute: []core.ComputationPhase{{
			Name:             "grid-update",
			ComplexityPerPDU: func() float64 { return OpsPerPoint },
			Class:            model.OpFloat,
		}},
		Comm: []core.CommunicationPhase{{
			Name:            "border-exchange",
			Topology:        "2-D",
			BytesPerMessage: func(pdus float64) float64 { return BytesPerPoint * math.Ceil(math.Sqrt(pdus)) },
		}},
		Cycles:             iters,
		StartupBytesPerPDU: BytesPerPoint,
	}
}

// SimResult is the outcome of one simulated 2-D execution.
type SimResult struct {
	ElapsedMs float64
	Grid      [][]float64
	Rows      int // processor-grid rows
	Cols      int // processor-grid columns
	Report    spmd.Report
}

// split divides n cells into k near-equal spans, returning the k+1 span
// boundaries.
func split(n, k int) []int {
	bounds := make([]int, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = i * n / k
	}
	return bounds
}

// RunSim executes the 2-D block-decomposed stencil on the simulated
// network: the configuration's p tasks form the Mesh2D processor grid
// (Dims(p)), each owning an equal block. The final grid is assembled and
// is bit-exact with stencil.Sequential.
func RunSim(net *model.Network, cfg cost.Config, n, iters int) (SimResult, error) {
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return SimResult{}, err
	}
	p := pl.NumTasks()
	if p == 0 {
		return SimResult{}, errors.New("stencil2d: empty configuration")
	}
	var mesh topo.Mesh2D
	pr, pc := mesh.Dims(p)
	if n < pr || n < pc {
		return SimResult{}, fmt.Errorf("stencil2d: %d×%d grid too small for a %d×%d mesh", n, n, pr, pc)
	}
	rowB := split(n, pr)
	colB := split(n, pc)
	// The spmd vector carries the per-task point counts (PDU = point).
	vec := make(core.Vector, p)
	for rank := 0; rank < p; rank++ {
		bi, bj := rank/pc, rank%pc
		vec[rank] = (rowB[bi+1] - rowB[bi]) * (colB[bj+1] - colB[bj])
	}
	initial := stencil.NewGrid(n)
	result := make([][]float64, n)
	for i := range result {
		result[i] = make([]float64, n)
	}
	job := spmd.Job{
		Net:       net,
		Placement: pl,
		Vector:    vec,
		Topology:  mesh,
		Body: func(t *spmd.Task) {
			runTask(t, initial, result, n, iters, pr, pc, rowB, colB)
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return SimResult{}, err
	}
	return SimResult{ElapsedMs: rep.ElapsedMs, Grid: result, Rows: pr, Cols: pc, Report: rep}, nil
}

// runTask is the per-rank body: a padded (h+2)×(w+2) block with ghost
// borders exchanged over the mesh each iteration.
func runTask(t *spmd.Task, initial, result [][]float64, n, iters, pr, pc int, rowB, colB []int) {
	rank := t.Rank()
	bi, bj := rank/pc, rank%pc
	r0, r1 := rowB[bi], rowB[bi+1]
	c0, c1 := colB[bj], colB[bj+1]
	h, w := r1-r0, c1-c0

	pad := func() [][]float64 {
		m := make([][]float64, h+2)
		for i := range m {
			m[i] = make([]float64, w+2)
		}
		return m
	}
	cur, next := pad(), pad()
	for i := 0; i < h; i++ {
		copy(cur[i+1][1:w+1], initial[r0+i][c0:c1])
		copy(next[i+1][1:w+1], initial[r0+i][c0:c1])
	}

	up, down := rank-pc, rank+pc
	left, right := rank-1, rank+1
	hasUp, hasDown := bi > 0, bi < pr-1
	hasLeft, hasRight := bj > 0, bj < pc-1

	col := func(m [][]float64, j int) []float64 {
		out := make([]float64, h)
		for i := 0; i < h; i++ {
			out[i] = m[i+1][j]
		}
		return out
	}

	for iter := 0; iter < iters; iter++ {
		// Asynchronous sends to all mesh neighbors, then blocking receives
		// (the paper's synchronous communication cycle).
		if hasUp {
			t.Send(up, BytesPerPoint*w, append([]float64(nil), cur[1][1:w+1]...))
		}
		if hasDown {
			t.Send(down, BytesPerPoint*w, append([]float64(nil), cur[h][1:w+1]...))
		}
		if hasLeft {
			t.Send(left, BytesPerPoint*h, col(cur, 1))
		}
		if hasRight {
			t.Send(right, BytesPerPoint*h, col(cur, w))
		}
		if hasUp {
			copy(cur[0][1:w+1], t.Recv(up).([]float64))
		}
		if hasDown {
			copy(cur[h+1][1:w+1], t.Recv(down).([]float64))
		}
		if hasLeft {
			g := t.Recv(left).([]float64)
			for i := 0; i < h; i++ {
				cur[i+1][0] = g[i]
			}
		}
		if hasRight {
			g := t.Recv(right).([]float64)
			for i := 0; i < h; i++ {
				cur[i+1][w+1] = g[i]
			}
		}
		// Update. Same operand order as the 1-D kernel (up + down + left +
		// right) for bit-exact agreement with stencil.Sequential.
		ops := 0.0
		for i := 1; i <= h; i++ {
			gRow := r0 + i - 1
			for j := 1; j <= w; j++ {
				gCol := c0 + j - 1
				if gRow == 0 || gRow == n-1 || gCol == 0 || gCol == n-1 {
					next[i][j] = cur[i][j]
					ops++
					continue
				}
				next[i][j] = (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1]) * 0.25
				ops += OpsPerPoint
			}
		}
		t.Compute(ops, model.OpFloat)
		cur, next = next, cur
	}
	for i := 0; i < h; i++ {
		copy(result[r0+i][c0:c1], cur[i+1][1:w+1])
	}
}

// CompareImplementations estimates T_c for the 1-D (row) and 2-D (block)
// implementations of the same N×N problem on the same network and cost
// table, returning both estimates — the estimator-driven implementation
// selection the paper applies to STEN-1 vs STEN-2.
func CompareImplementations(net *model.Network, costs *cost.Table, n, iters int) (oneD, twoD core.Result, err error) {
	e1, err := core.NewEstimator(net, costs, stencil.Annotations(n, stencil.STEN1, iters))
	if err != nil {
		return
	}
	oneD, err = core.Partition(e1)
	if err != nil {
		return
	}
	e2, err := core.NewEstimator(net, costs, Annotations(n, iters))
	if err != nil {
		return
	}
	twoD, err = core.Partition(e2)
	return
}
