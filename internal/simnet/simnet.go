// Package simnet is a deterministic discrete-event simulator of the
// paper's heterogeneous network substrate: shared-channel ethernet segments
// that serialize frame transmissions (so contention grows linearly with the
// number of stations, as the paper observes), a store-and-forward router
// joining segments with a per-byte delay, per-byte data coercion between
// clusters of different formats, and host send/receive processing costs.
//
// Simulated tasks are goroutines coordinated by a cooperative scheduler:
// exactly one task runs at a time, and tasks advance the virtual clock by
// blocking in Advance, Send, and Recv. Runs are fully deterministic — the
// event queue is ordered by (virtual time, sequence number) and the
// simulation uses no wall-clock time or randomness.
//
// Why this produces Eq. 1 costs: a message of b bytes from a cluster with
// per-message channel occupancy σ (model.Cluster.MsgOverheadMs) and host
// per-byte processing h (HostPerByteMs) on a segment of rate R
// (BytesPerMs) holds the shared channel for σ + b·(1/R + h). A synchronous
// 1-D exchange among p stations serializes 2(p-1) such holds, giving a
// cycle time with latency slope 2σ per processor and bandwidth slope
// 2·(1/R + h) per byte per processor — exactly the c2·p and c4·p·b terms
// the paper fits.
//
//netpart:deterministic
package simnet

import (
	"container/heap"
	"fmt"
	"sort"

	"netpart/internal/faults"
	"netpart/internal/model"
)

// CPU costs of initiating an asynchronous send and of consuming a received
// message, in milliseconds. These are deliberately small: the dominant
// per-message cost is the channel occupancy σ, which is what the paper's
// latency constants capture.
const (
	SendCPUMs = 0.05
	RecvCPUMs = 0.05
)

// event is one scheduled action: either a closure (fn) or a bare task
// wake-up (wake). The wake fast path exists because the overwhelming
// majority of events — every Advance, every post-delivery resume — only
// step a parked task; representing them without a closure lets the
// scheduler recycle event structs through a free list instead of
// allocating one struct plus one closure per scheduled event.
type event struct {
	at   float64
	seq  int64
	fn   func()
	wake *Proc
}

// maxFreeEvents bounds the event free list. The live set of events is
// proportional to tasks plus in-flight messages, so the pool's high-water
// mark is small; the cap only guards against a pathological burst pinning
// memory forever.
const maxFreeEvents = 4096

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// segment tracks the shared channel of one network segment as a FIFO
// resource: transmissions are served in arrival order, each holding the
// channel for its full occupancy.
type segment struct {
	spec   *model.Segment
	freeAt float64
	// Stats.
	busyMs   float64
	messages int64
	bytes    int64
}

// Message is a delivered payload. Bytes is the message size; Payload is an
// optional application value carried through the simulation (e.g. border
// rows), not charged against the network.
type Message struct {
	From    *Proc
	Bytes   int
	Payload interface{}
	// SentAt and DeliveredAt are virtual times in milliseconds.
	SentAt      float64
	DeliveredAt float64
}

// Sim is one simulation instance bound to a network model.
type Sim struct {
	net      *model.Network
	segments map[string]*segment
	now      float64
	seq      int64
	events   eventHeap
	free     []*event // recycled event structs (see event)
	procs    []*Proc
	parked   chan parkReason
	running  bool

	// jitterFrac > 0 scales every channel hold by a deterministic
	// pseudo-random factor in [1-f, 1+f], modeling the paper's observation
	// that UDP communication costs are nondeterministic and the fitted
	// functions are averages. Zero disables (fully deterministic).
	jitterFrac float64
	rngState   uint64

	// onDeliver, when non-nil, observes every message at delivery time.
	onDeliver func(Delivery)

	// inj, when non-nil, decides per-message fates (drop → retransmit
	// after injRtoMs, delay → later transmission); see WithFaultInjector.
	inj        faults.Injector
	injRtoMs   float64
	injStreams map[[2]int]*injStream
}

// injStream serializes fault-injected transmissions per (src, dst) pair,
// emulating a reliable in-order transport: at most one message is in its
// loss/retry phase at a time, and successors wait behind it. A dropped
// head therefore delays everything after it (head-of-line blocking), so
// injected loss costs latency without ever reordering delivery.
type injStream struct {
	queue []*injPending
	busy  bool
}

type injPending struct {
	msg  *Message
	from *model.Cluster
	dst  *Proc
}

// Delivery describes one delivered message for observers: who sent it,
// who received it, its size, and its full virtual-time transit interval
// (send initiation to mailbox arrival, including channel and router
// queueing).
type Delivery struct {
	From, To      *Proc
	Bytes         int
	SentAtMs      float64
	DeliveredAtMs float64
}

// Option configures a simulation.
type Option func(*Sim)

// WithJitter makes channel occupancy times vary by up to ±frac around
// their nominal values, driven by a seeded xorshift generator — still
// fully reproducible for a given seed, but no longer exactly linear, so
// least-squares fits become genuine averages (Section 3.0's "average
// case" caveat).
func WithJitter(frac float64, seed uint64) Option {
	return func(s *Sim) {
		s.jitterFrac = frac
		s.rngState = seed | 1
	}
}

// WithMessageObserver registers fn to be called at every message delivery
// with the message's transit record. Observers let higher layers (spmd)
// build latency histograms without the simulator depending on them; fn
// runs on the scheduler goroutine and must not block.
func WithMessageObserver(fn func(Delivery)) Option {
	return func(s *Sim) { s.onDeliver = fn }
}

// simMaxRetries bounds injected-drop retransmissions per message; a
// message dropped more often is lost, and the blocked receiver shows up
// in Run's deadlock report instead of the run hanging.
const simMaxRetries = 200

// WithFaultInjector routes every simulated message through a fault
// injector, emulating a reliable transport over a faulty network in
// virtual time: a dropped message is retransmitted retransmitMs later
// (re-consulting the injector, so healed partitions resume delivery), a
// delayed message transits late, and duplicates are suppressed. Runs stay
// fully deterministic for a deterministic injector.
func WithFaultInjector(inj faults.Injector, retransmitMs float64) Option {
	return func(s *Sim) {
		s.inj = inj
		s.injRtoMs = retransmitMs
		if s.injRtoMs <= 0 {
			s.injRtoMs = 1
		}
	}
}

// jitterMul returns the next hold-time multiplier.
func (s *Sim) jitterMul() float64 {
	if s.jitterFrac <= 0 {
		return 1
	}
	// xorshift64
	x := s.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rngState = x
	u := float64(x>>11) / float64(1<<53) // [0,1)
	return 1 + s.jitterFrac*(2*u-1)
}

type parkReason int

const (
	parkBlocked parkReason = iota
	parkDone
)

// New creates a simulation over the given validated network.
func New(net *model.Network, opts ...Option) (*Sim, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		net:        net,
		segments:   make(map[string]*segment, len(net.Segments)),
		parked:     make(chan parkReason),
		injStreams: make(map[[2]int]*injStream),
	}
	for _, seg := range net.Segments {
		s.segments[seg.Name] = &segment{spec: seg}
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Now returns the current virtual time in milliseconds.
func (s *Sim) Now() float64 { return s.now }

// alloc takes an event struct off the free list (or allocates one),
// stamped with the clamped time and the next sequence number.
//
//netpart:hotpath
func (s *Sim) alloc(at float64) *event {
	if at < s.now {
		at = s.now
	}
	s.seq++
	if len(s.free) == 0 {
		return &event{at: at, seq: s.seq}
	}
	n := len(s.free)
	ev := s.free[n-1]
	s.free[n-1] = nil
	s.free = s.free[:n-1]
	ev.at = at
	ev.seq = s.seq
	return ev
}

// schedule queues fn at virtual time at (clamped to now).
func (s *Sim) schedule(at float64, fn func()) {
	ev := s.alloc(at)
	ev.fn = fn
	heap.Push(&s.events, ev)
}

// scheduleWake queues a bare resume of p at virtual time at (clamped to
// now) — the closure-free fast path for Advance and delivery wake-ups.
//
//netpart:hotpath
func (s *Sim) scheduleWake(at float64, p *Proc) {
	ev := s.alloc(at)
	ev.wake = p
	heap.Push(&s.events, ev)
}

// Proc is one simulated task: a goroutine that advances only in virtual
// time. All Proc methods must be called from within the task body.
type Proc struct {
	sim      *Sim
	name     string
	cluster  *model.Cluster
	rank     int
	resume   chan struct{}
	done     bool
	panicked error

	// mailboxes holds queued messages per sender rank (indexed by rank;
	// sized once in Run, when the rank count is final).
	mailboxes [][]*Message
	// waitingOn is the sender rank a blocked Recv is waiting for, or -1.
	waitingOn int
	// waitGen increments at every blocking wait, so a RecvWithin deadline
	// event can tell whether the wait it armed for is still the current
	// one (and not a later wait on the same sender).
	waitGen uint64

	// Stats.
	computeMs     float64
	sent          int64
	received      int64
	bytesSent     int64
	bytesReceived int64
}

// Rank returns the task's rank (spawn order).
func (p *Proc) Rank() int { return p.rank }

// Name returns the task's name.
func (p *Proc) Name() string { return p.name }

// Cluster returns the cluster hosting the task.
func (p *Proc) Cluster() *model.Cluster { return p.cluster }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.sim.now }

// Spawn creates a task on the named cluster. The body runs when Run is
// called. Spawn panics on an unknown cluster (a programming error).
func (s *Sim) Spawn(name, cluster string, body func(*Proc)) *Proc {
	if s.running {
		panic("simnet: Spawn during Run")
	}
	c := s.net.Cluster(cluster)
	if c == nil {
		panic(fmt.Sprintf("simnet: unknown cluster %q", cluster))
	}
	p := &Proc{
		sim:       s,
		name:      name,
		cluster:   c,
		rank:      len(s.procs),
		resume:    make(chan struct{}),
		waitingOn: -1,
	}
	s.procs = append(s.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.panicked = fmt.Errorf("simnet: task %s panicked: %v", p.name, r)
			}
			p.done = true
			s.parked <- parkDone
		}()
		body(p)
	}()
	s.scheduleWake(0, p)
	return p
}

// step resumes a parked task and waits for it to park again (or finish).
func (s *Sim) step(p *Proc) {
	p.resume <- struct{}{}
	<-s.parked
}

// park suspends the calling task and hands control back to the scheduler.
func (p *Proc) park() {
	p.sim.parked <- parkBlocked
	<-p.resume
}

// Run executes the simulation until no events remain. It returns an error
// if any task is still blocked (deadlock) when the event queue drains.
func (s *Sim) Run() error {
	if s.running {
		return fmt.Errorf("simnet: Run reentered")
	}
	s.running = true
	defer func() { s.running = false }()
	// Size every task's per-sender mailbox table once: Spawn is forbidden
	// during Run, so the rank count is final here and delivery indexes the
	// slice directly with no map hashing and no growth.
	for _, p := range s.procs {
		if len(p.mailboxes) < len(s.procs) {
			grown := make([][]*Message, len(s.procs))
			copy(grown, p.mailboxes)
			p.mailboxes = grown
		}
	}
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		// Recycle before dispatch: the action's fields are copied out, so
		// anything the action schedules may reuse this struct immediately.
		fn, wake := ev.fn, ev.wake
		ev.fn, ev.wake = nil, nil
		if len(s.free) < maxFreeEvents {
			s.free = append(s.free, ev)
		}
		if wake != nil {
			s.step(wake)
		} else {
			fn()
		}
	}
	var stuck []string
	for _, p := range s.procs {
		if p.panicked != nil {
			return p.panicked
		}
		if !p.done {
			stuck = append(stuck, fmt.Sprintf("%s (recv from rank %d)", p.name, p.waitingOn))
		}
	}
	if len(stuck) > 0 {
		sort.Strings(stuck)
		return fmt.Errorf("simnet: deadlock, %d tasks blocked: %v", len(stuck), stuck)
	}
	return nil
}

// Advance spends ms milliseconds of virtual time computing.
//
//netpart:hotpath
func (p *Proc) Advance(ms float64) {
	if ms < 0 {
		panic("simnet: negative advance")
	}
	p.computeMs += ms
	s := p.sim
	s.scheduleWake(s.now+ms, p)
	p.park()
}

// AdvanceOps spends the virtual time of executing n operations of the given
// class at this task's cluster speed.
func (p *Proc) AdvanceOps(n float64, class model.OpClass) {
	p.Advance(n * p.cluster.OpTime(class))
}

// Send asynchronously transmits a message of the given size to dst. The
// sender is charged a small CPU initiation cost (plus per-byte coercion if
// the destination cluster uses a different data format); the transmission
// itself then serializes through the shared channel(s) and router without
// blocking the sender.
func (p *Proc) Send(dst *Proc, bytes int, payload interface{}) {
	if bytes < 0 {
		panic(fmt.Sprintf("simnet: negative message size %d", bytes))
	}
	s := p.sim
	cpu := SendCPUMs
	if p.cluster.Format != dst.cluster.Format {
		cpu += s.net.Coerce.PerByteMs * float64(bytes)
	}
	p.sent++
	p.bytesSent += int64(bytes)
	msg := &Message{From: p, Bytes: bytes, Payload: payload, SentAt: s.now + cpu}
	// CPU initiation happens inline; the transmission is scheduled at its
	// completion.
	p.Advance(cpu)
	s.transmit(msg, p.cluster, dst)
}

// transmit routes one message: straight through the substrate, or through
// the fault injector's reliable-stream emulation when one is configured.
func (s *Sim) transmit(msg *Message, from *model.Cluster, dst *Proc) {
	if s.inj == nil {
		s.transmitClean(msg, from, dst)
		return
	}
	key := [2]int{msg.From.rank, dst.rank}
	st := s.injStreams[key]
	if st == nil {
		st = &injStream{}
		s.injStreams[key] = st
	}
	st.queue = append(st.queue, &injPending{msg: msg, from: from, dst: dst})
	if !st.busy {
		s.injPump(st)
	}
}

// injPump starts the loss/retry phase for the stream head. Only one
// message per (src, dst) pair is in this phase at a time: that is what
// makes injected drops cost wall time — every retransmission RTO pushes
// back the head's entry into the channel and, transitively, every
// successor's.
func (s *Sim) injPump(st *injStream) {
	if len(st.queue) == 0 {
		st.busy = false
		return
	}
	st.busy = true
	p := st.queue[0]
	st.queue = st.queue[1:]
	s.injAttempt(st, p, 0)
}

// injAttempt consults the injector for one transmission attempt of the
// stream head. Injected drops model a lost datagram: the reliability
// layer retries one RTO later, so the drop costs latency, never data.
// Injected delays add transit time; duplicates are suppressed (reliable
// delivery semantics). A message dropped past simMaxRetries is lost and
// stalls its stream, surfacing as a blocked receiver in Run's deadlock
// report — the behavior of a reliable transport over a dead link.
func (s *Sim) injAttempt(st *injStream, p *injPending, attempt int) {
	fate := s.inj.Packet(p.msg.From.rank, p.dst.rank, s.now)
	switch {
	case fate.Drop:
		if attempt >= simMaxRetries {
			return // lost: stream stalls, Run reports the blocked receiver
		}
		s.schedule(s.now+s.injRtoMs, func() { s.injAttempt(st, p, attempt+1) })
	case fate.DelayMs > 0:
		s.schedule(s.now+fate.DelayMs, func() {
			s.transmitClean(p.msg, p.from, p.dst)
			s.injPump(st)
		})
	default:
		s.transmitClean(p.msg, p.from, p.dst)
		s.injPump(st)
	}
}

// transmitClean pushes msg through the sender's segment, then (if needed)
// the router and the destination segment, and finally delivers it.
func (s *Sim) transmitClean(msg *Message, from *model.Cluster, dst *Proc) {
	b := float64(msg.Bytes)
	src := s.segments[from.Segment]
	hold := (from.MsgOverheadMs + b*(1/src.spec.BytesPerMs+from.HostPerByteMs)) * s.jitterMul()
	doneSrc := src.acquire(s.now, hold)
	src.messages++
	src.bytes += int64(msg.Bytes)

	if from.Segment == dst.cluster.Segment {
		s.schedule(doneSrc, func() { s.deliver(msg, dst) })
		return
	}
	// Store-and-forward through the router, then the destination segment.
	routed := doneSrc + s.net.Router.PerMessageMs + s.net.Router.PerByteMs*b
	s.schedule(routed, func() {
		dseg := s.segments[dst.cluster.Segment]
		dhold := (dst.cluster.MsgOverheadMs + b*(1/dseg.spec.BytesPerMs+dst.cluster.HostPerByteMs)) * s.jitterMul()
		doneDst := dseg.acquire(s.now, dhold)
		dseg.messages++
		dseg.bytes += int64(msg.Bytes)
		s.schedule(doneDst, func() { s.deliver(msg, dst) })
	})
}

// acquire reserves the channel FIFO for hold ms starting no earlier than
// now, returning the completion time.
func (seg *segment) acquire(now, hold float64) float64 {
	start := now
	if seg.freeAt > start {
		start = seg.freeAt
	}
	seg.freeAt = start + hold
	seg.busyMs += hold
	return seg.freeAt
}

// deliver places msg in dst's mailbox and wakes dst if it is blocked on a
// matching Recv.
func (s *Sim) deliver(msg *Message, dst *Proc) {
	msg.DeliveredAt = s.now
	dst.bytesReceived += int64(msg.Bytes)
	if s.onDeliver != nil {
		s.onDeliver(Delivery{
			From: msg.From, To: dst, Bytes: msg.Bytes,
			SentAtMs: msg.SentAt, DeliveredAtMs: msg.DeliveredAt,
		})
	}
	from := msg.From.rank
	dst.mailboxes[from] = append(dst.mailboxes[from], msg)
	if dst.waitingOn == from {
		dst.waitingOn = -1
		s.scheduleWake(s.now, dst)
	}
}

// Recv blocks until a message from src is available, consumes it (charging
// the receive CPU cost), and returns it. Messages from the same sender are
// received in transmission order.
func (p *Proc) Recv(src *Proc) *Message {
	for len(p.mailboxes[src.rank]) == 0 {
		p.waitingOn = src.rank
		p.waitGen++
		p.park()
	}
	q := p.mailboxes[src.rank]
	msg := q[0]
	p.mailboxes[src.rank] = q[1:]
	p.received++
	p.Advance(RecvCPUMs)
	return msg
}

// RecvWithin is Recv bounded by a virtual-time deadline: it blocks until
// a message from src is available or ms milliseconds of virtual time
// elapse, returning (nil, false) on timeout. Failure detectors build on
// it: unlike Recv, a dead sender costs bounded virtual time instead of a
// deadlock.
func (p *Proc) RecvWithin(src *Proc, ms float64) (*Message, bool) {
	if len(p.mailboxes[src.rank]) > 0 {
		return p.Recv(src), true
	}
	s := p.sim
	p.waitingOn = src.rank
	p.waitGen++
	gen := p.waitGen
	s.schedule(s.now+ms, func() {
		// Wake the task only if it is still in this exact wait.
		if !p.done && p.waitGen == gen && p.waitingOn == src.rank {
			p.waitingOn = -1
			s.step(p)
		}
	})
	p.park()
	if len(p.mailboxes[src.rank]) == 0 {
		return nil, false
	}
	return p.Recv(src), true
}

// TryRecv consumes a pending message from src without blocking, returning
// nil if none is queued.
func (p *Proc) TryRecv(src *Proc) *Message {
	q := p.mailboxes[src.rank]
	if len(q) == 0 {
		return nil
	}
	msg := q[0]
	p.mailboxes[src.rank] = q[1:]
	p.received++
	p.Advance(RecvCPUMs)
	return msg
}

// SegmentStats reports channel usage for one segment.
type SegmentStats struct {
	Name     string
	BusyMs   float64
	Messages int64
	Bytes    int64
}

// Stats returns per-segment channel usage, sorted by segment name.
func (s *Sim) Stats() []SegmentStats {
	out := make([]SegmentStats, 0, len(s.segments))
	for name, seg := range s.segments {
		out = append(out, SegmentStats{
			Name: name, BusyMs: seg.busyMs, Messages: seg.messages, Bytes: seg.bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProcStats reports one task's activity.
type ProcStats struct {
	Name          string
	Cluster       string
	ComputeMs     float64
	Sent          int64
	Received      int64
	BytesSent     int64
	BytesReceived int64
}

// ProcStats returns per-task activity in rank order.
func (s *Sim) ProcStats() []ProcStats {
	out := make([]ProcStats, 0, len(s.procs))
	for _, p := range s.procs {
		out = append(out, ProcStats{
			Name: p.name, Cluster: p.cluster.Name,
			ComputeMs: p.computeMs, Sent: p.sent, Received: p.received,
			BytesSent: p.bytesSent, BytesReceived: p.bytesReceived,
		})
	}
	return out
}
