package simnet

import (
	"testing"

	"netpart/internal/faults"
	"netpart/internal/model"
)

// TestRecvWithinTimesOut checks the bounded receive returns after the
// virtual-time deadline when the sender stays silent, and that the run
// still terminates cleanly.
func TestRecvWithinTimesOut(t *testing.T) {
	s, err := New(model.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Proc, 2)
	var got *Message
	var ok bool
	procs[0] = s.Spawn("silent", model.Sparc2Cluster, func(p *Proc) {
		p.Advance(100) // never sends
	})
	procs[1] = s.Spawn("detector", model.Sparc2Cluster, func(p *Proc) {
		got, ok = p.RecvWithin(procs[0], 25)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ok || got != nil {
		t.Fatalf("RecvWithin = (%v, %v), want timeout", got, ok)
	}
}

// TestRecvWithinDelivers checks a message beats a later deadline and a
// stale deadline does not disturb subsequent receives.
func TestRecvWithinDelivers(t *testing.T) {
	s, err := New(model.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Proc, 2)
	var first, second interface{}
	var ok1, ok2 bool
	procs[0] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
		p.Send(procs[1], 100, "early")
		p.Advance(50)
		p.Send(procs[1], 100, "late")
	})
	procs[1] = s.Spawn("receiver", model.Sparc2Cluster, func(p *Proc) {
		var m *Message
		m, ok1 = p.RecvWithin(procs[0], 1000)
		if ok1 {
			first = m.Payload
		}
		m, ok2 = p.RecvWithin(procs[0], 1000)
		if ok2 {
			second = m.Payload
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ok1 || first != "early" || !ok2 || second != "late" {
		t.Fatalf("RecvWithin saw (%v,%v) then (%v,%v)", first, ok1, second, ok2)
	}
}

// TestFaultInjectorDropDelaysDelivery verifies injected drops cost
// retransmission latency but never lose the message, and the run is
// deterministic for a fixed seed.
func TestFaultInjectorDropDelaysDelivery(t *testing.T) {
	elapsed := func(sched string, seed uint64) float64 {
		inj := faults.NewEngine(faults.MustParse(sched), seed, nil)
		s, err := New(model.PaperTestbed(), WithFaultInjector(inj, 5))
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*Proc, 2)
		procs[0] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Send(procs[1], 500, i)
			}
		})
		procs[1] = s.Spawn("receiver", model.IPCCluster, func(p *Proc) {
			for i := 0; i < 20; i++ {
				msg := p.Recv(procs[0])
				if msg.Payload.(int) != i {
					t.Errorf("message %d arrived out of order: %v", i, msg.Payload)
				}
			}
		})
		if err := s.Run(); err != nil {
			t.Fatalf("Run under %q: %v", sched, err)
		}
		return s.Now()
	}
	clean := elapsed("", 1)
	faulty := elapsed("drop:0.4", 1)
	if faulty <= clean {
		t.Fatalf("drops should cost virtual time: clean %.3f, faulty %.3f", clean, faulty)
	}
	if a, b := elapsed("drop:0.4;delay:0.3,2", 9), elapsed("drop:0.4;delay:0.3,2", 9); a != b {
		t.Fatalf("same seed, different elapsed: %.6f vs %.6f", a, b)
	}
}

// TestFaultInjectorLostMessageIsDeadlockNotHang drops everything forever:
// the receiver must surface in Run's deadlock report once retries are
// exhausted, not hang the test.
func TestFaultInjectorLostMessageIsDeadlockNotHang(t *testing.T) {
	inj := faults.NewEngine(faults.MustParse("drop:1"), 3, nil)
	s, err := New(model.PaperTestbed(), WithFaultInjector(inj, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Proc, 2)
	procs[0] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
		p.Send(procs[1], 100, "doomed")
	})
	procs[1] = s.Spawn("receiver", model.Sparc2Cluster, func(p *Proc) {
		p.Recv(procs[0])
	})
	if err := s.Run(); err == nil {
		t.Fatal("Run = nil, want deadlock error for the lost message")
	}
}
