package simnet

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"netpart/internal/model"
)

func TestAdvanceAccumulatesTime(t *testing.T) {
	s, err := New(model.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	var end float64
	s.Spawn("t0", model.Sparc2Cluster, func(p *Proc) {
		p.Advance(5)
		p.Advance(2.5)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 7.5 {
		t.Errorf("end time = %v, want 7.5", end)
	}
	if s.Now() != 7.5 {
		t.Errorf("sim time = %v, want 7.5", s.Now())
	}
}

func TestAdvanceOpsUsesClusterSpeed(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	var sparcEnd, ipcEnd float64
	s.Spawn("fast", model.Sparc2Cluster, func(p *Proc) {
		p.AdvanceOps(1000, model.OpFloat)
		sparcEnd = p.Now()
	})
	s.Spawn("slow", model.IPCCluster, func(p *Proc) {
		p.AdvanceOps(1000, model.OpFloat)
		ipcEnd = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sparcEnd-0.3) > 1e-9 { // 1000 flops at 0.3 µs
		t.Errorf("sparc2 1000 flops = %v ms, want 0.3", sparcEnd)
	}
	if math.Abs(ipcEnd-0.6) > 1e-9 {
		t.Errorf("ipc 1000 flops = %v ms, want 0.6", ipcEnd)
	}
}

func TestSendRecvSameSegment(t *testing.T) {
	net := model.PaperTestbed()
	s, _ := New(net)
	var procs [2]*Proc
	var delivered *Message
	procs[0] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
		p.Send(procs[1], 1000, "hello")
	})
	procs[1] = s.Spawn("receiver", model.Sparc2Cluster, func(p *Proc) {
		delivered = p.Recv(procs[0])
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered == nil || delivered.Payload != "hello" {
		t.Fatalf("message not delivered: %+v", delivered)
	}
	// Expected delivery time: send CPU + channel hold.
	c := net.Cluster(model.Sparc2Cluster)
	want := SendCPUMs + c.MsgOverheadMs + 1000*(1/1250.0+c.HostPerByteMs)
	if math.Abs(delivered.DeliveredAt-want) > 1e-9 {
		t.Errorf("DeliveredAt = %v, want %v", delivered.DeliveredAt, want)
	}
	if delivered.SentAt != SendCPUMs {
		t.Errorf("SentAt = %v, want %v", delivered.SentAt, SendCPUMs)
	}
}

func TestSendRecvCrossSegment(t *testing.T) {
	net := model.PaperTestbed()
	s, _ := New(net)
	var procs [2]*Proc
	var delivered *Message
	procs[0] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
		p.Send(procs[1], 1000, nil)
	})
	procs[1] = s.Spawn("receiver", model.IPCCluster, func(p *Proc) {
		delivered = p.Recv(procs[0])
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	c1 := net.Cluster(model.Sparc2Cluster)
	c2 := net.Cluster(model.IPCCluster)
	want := SendCPUMs +
		c1.MsgOverheadMs + 1000*(1/1250.0+c1.HostPerByteMs) + // source channel
		net.Router.PerByteMs*1000 + // router
		c2.MsgOverheadMs + 1000*(1/1250.0+c2.HostPerByteMs) // destination channel
	if math.Abs(delivered.DeliveredAt-want) > 1e-9 {
		t.Errorf("DeliveredAt = %v, want %v", delivered.DeliveredAt, want)
	}
}

func TestCoercionChargesSender(t *testing.T) {
	net := model.Figure1Network()
	s, _ := New(net)
	var procs [2]*Proc
	var sentAt float64
	procs[0] = s.Spawn("sender", "sun4", func(p *Proc) { // big-endian
		p.Send(procs[1], 1000, nil)
		sentAt = p.Now()
	})
	procs[1] = s.Spawn("receiver", "rs6000", func(p *Proc) { // little-endian
		p.Recv(procs[0])
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := SendCPUMs + net.Coerce.PerByteMs*1000
	if math.Abs(sentAt-want) > 1e-9 {
		t.Errorf("coerced send CPU = %v, want %v", sentAt, want)
	}
}

func TestChannelSerializesConcurrentSenders(t *testing.T) {
	net := model.PaperTestbed()
	s, _ := New(net)
	const nSenders = 4
	procs := make([]*Proc, nSenders+1)
	for i := 0; i < nSenders; i++ {
		i := i
		procs[i] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
			p.Send(procs[nSenders], 1000, nil)
		})
	}
	var lastDelivery float64
	procs[nSenders] = s.Spawn("sink", model.Sparc2Cluster, func(p *Proc) {
		for i := 0; i < nSenders; i++ {
			m := p.Recv(procs[i])
			if m.DeliveredAt > lastDelivery {
				lastDelivery = m.DeliveredAt
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	c := net.Cluster(model.Sparc2Cluster)
	hold := c.MsgOverheadMs + 1000*(1/1250.0+c.HostPerByteMs)
	// All four transmissions serialize: the last completes after 4 holds.
	want := SendCPUMs + nSenders*hold
	if math.Abs(lastDelivery-want) > 1e-9 {
		t.Errorf("last delivery = %v, want %v (serialized)", lastDelivery, want)
	}
}

// oneDCycle runs one synchronous 1-D border exchange of b-byte messages
// among p tasks on one cluster and returns the cycle elapsed time.
func oneDCycle(t *testing.T, cluster string, p int, b int) float64 {
	t.Helper()
	net := model.PaperTestbed()
	s, err := New(net)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]*Proc, p)
	var cycleEnd float64
	for i := 0; i < p; i++ {
		i := i
		procs[i] = s.Spawn("task", cluster, func(pr *Proc) {
			if i > 0 {
				pr.Send(procs[i-1], b, nil)
			}
			if i < p-1 {
				pr.Send(procs[i+1], b, nil)
			}
			if i > 0 {
				pr.Recv(procs[i-1])
			}
			if i < p-1 {
				pr.Recv(procs[i+1])
			}
			if end := pr.Now(); end > cycleEnd {
				cycleEnd = end
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return cycleEnd
}

func TestOneDCycleMatchesClosedForm(t *testing.T) {
	net := model.PaperTestbed()
	c := net.Cluster(model.Sparc2Cluster)
	for _, p := range []int{2, 4, 6} {
		for _, b := range []int{240, 2400} {
			got := oneDCycle(t, model.Sparc2Cluster, p, b)
			hold := c.MsgOverheadMs + float64(b)*(1/1250.0+c.HostPerByteMs)
			// 2(p-1) transmissions serialize; send/recv CPU adds a small tail.
			serial := 2 * float64(p-1) * hold
			if got < serial {
				t.Errorf("p=%d b=%d: cycle %v < serialized channel time %v", p, b, got, serial)
			}
			if got > serial+1.0 { // CPU costs are ≤ 4·0.05 + slack
				t.Errorf("p=%d b=%d: cycle %v far above channel time %v", p, b, got, serial)
			}
		}
	}
}

func TestOneDCycleContentionLinearInP(t *testing.T) {
	// The per-processor cost slope should be roughly constant (linear
	// contention), the property Eq. 1 captures.
	b := 2400
	c4 := func(p1, p2 int) float64 {
		return (oneDCycle(t, model.Sparc2Cluster, p2, b) - oneDCycle(t, model.Sparc2Cluster, p1, b)) / float64(p2-p1)
	}
	s1, s2 := c4(2, 4), c4(4, 6)
	if math.Abs(s1-s2) > 0.05*math.Abs(s1) {
		t.Errorf("contention not linear: slopes %v vs %v", s1, s2)
	}
}

func TestIPCCyclesSlowerThanSparc2(t *testing.T) {
	// Same segments, slower hosts: the IPC cluster's comm cycle must cost
	// more (the paper's per-cluster cost functions).
	sp := oneDCycle(t, model.Sparc2Cluster, 4, 2400)
	ipc := oneDCycle(t, model.IPCCluster, 4, 2400)
	if ipc <= sp {
		t.Errorf("ipc cycle %v should exceed sparc2 cycle %v", ipc, sp)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (float64, []SegmentStats) {
		net := model.PaperTestbed()
		s, _ := New(net)
		procs := make([]*Proc, 6)
		for i := 0; i < 6; i++ {
			i := i
			cl := model.Sparc2Cluster
			if i >= 3 {
				cl = model.IPCCluster
			}
			procs[i] = s.Spawn("t", cl, func(p *Proc) {
				for iter := 0; iter < 3; iter++ {
					p.AdvanceOps(5000, model.OpFloat)
					if i > 0 {
						p.Send(procs[i-1], 1200, nil)
					}
					if i < 5 {
						p.Send(procs[i+1], 1200, nil)
					}
					if i > 0 {
						p.Recv(procs[i-1])
					}
					if i < 5 {
						p.Recv(procs[i+1])
					}
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now(), s.Stats()
	}
	t1, st1 := run()
	t2, st2 := run()
	if t1 != t2 {
		t.Errorf("nondeterministic end time: %v vs %v", t1, t2)
	}
	for i := range st1 {
		if st1[i] != st2[i] {
			t.Errorf("nondeterministic stats: %+v vs %+v", st1[i], st2[i])
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	var procs [2]*Proc
	procs[0] = s.Spawn("a", model.Sparc2Cluster, func(p *Proc) {
		p.Recv(procs[1]) // waits forever
	})
	procs[1] = s.Spawn("b", model.Sparc2Cluster, func(p *Proc) {
		p.Advance(1)
	})
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("Run() = %v, want deadlock error", err)
	}
}

func TestTryRecv(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	var procs [2]*Proc
	var first, second *Message
	procs[0] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
		p.Send(procs[1], 100, 1)
	})
	procs[1] = s.Spawn("receiver", model.Sparc2Cluster, func(p *Proc) {
		first = p.TryRecv(procs[0]) // nothing delivered yet at t=0
		p.Advance(100)              // by now the message has arrived
		second = p.TryRecv(procs[0])
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if first != nil {
		t.Error("TryRecv before delivery should return nil")
	}
	if second == nil || second.Payload != 1 {
		t.Errorf("TryRecv after delivery = %+v", second)
	}
}

func TestRecvPreservesPerSenderOrder(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	var procs [2]*Proc
	var got []int
	procs[0] = s.Spawn("sender", model.Sparc2Cluster, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Send(procs[1], 100, i)
		}
	})
	procs[1] = s.Spawn("receiver", model.Sparc2Cluster, func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, p.Recv(procs[0]).Payload.(int))
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("messages reordered: %v", got)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	var procs [2]*Proc
	procs[0] = s.Spawn("a", model.Sparc2Cluster, func(p *Proc) {
		p.Advance(3)
		p.Send(procs[1], 500, nil)
	})
	procs[1] = s.Spawn("b", model.IPCCluster, func(p *Proc) {
		p.Recv(procs[0])
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// Cross-segment: both segments carry the message once.
	for _, st := range stats {
		if st.Messages != 1 || st.Bytes != 500 {
			t.Errorf("segment %s: %+v, want 1 message of 500 bytes", st.Name, st)
		}
		if st.BusyMs <= 0 {
			t.Errorf("segment %s: zero busy time", st.Name)
		}
	}
	ps := s.ProcStats()
	if ps[0].Sent != 1 || ps[1].Received != 1 {
		t.Errorf("proc stats = %+v", ps)
	}
	if ps[0].ComputeMs < 3 {
		t.Errorf("proc a compute = %v, want ≥ 3", ps[0].ComputeMs)
	}
}

func TestSpawnUnknownClusterPanics(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Spawn("x", "nonexistent", func(*Proc) {})
}

func TestNegativeAdvancePanics(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	var panicked bool
	s.Spawn("x", model.Sparc2Cluster, func(p *Proc) {
		defer func() { panicked = recover() != nil }()
		p.Advance(-1)
	})
	_ = s.Run()
	if !panicked {
		t.Error("negative Advance should panic")
	}
}

func TestBodyPanicSurfacesFromRun(t *testing.T) {
	s, _ := New(model.PaperTestbed())
	s.Spawn("boomer", model.Sparc2Cluster, func(p *Proc) { panic("boom") })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("Run() = %v, want panic error", err)
	}
}

func TestNewRejectsInvalidNetwork(t *testing.T) {
	if _, err := New(&model.Network{}); err == nil {
		t.Error("New should validate the network")
	}
}

// Property: the 1-D communication cycle cost is monotone non-decreasing in
// both the processor count and the message size (the premise behind the
// Eq. 1 cost model's positive slopes).
func TestCycleMonotoneProperty(t *testing.T) {
	memo := map[[2]int]float64{}
	cycle := func(p, b int) float64 {
		key := [2]int{p, b}
		if v, ok := memo[key]; ok {
			return v
		}
		v := oneDCycle(t, model.Sparc2Cluster, p, b)
		memo[key] = v
		return v
	}
	f := func(pRaw, bRaw uint8) bool {
		p := int(pRaw%4) + 2 // 2..5
		b := (int(bRaw%16) + 1) * 256
		base := cycle(p, b)
		return cycle(p+1, b) >= base && cycle(p, b+256) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJitterReproducibleAndBounded(t *testing.T) {
	run := func(seed uint64) float64 {
		net := model.PaperTestbed()
		s, err := New(net, WithJitter(0.3, seed))
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]*Proc, 4)
		for i := 0; i < 4; i++ {
			i := i
			procs[i] = s.Spawn("t", model.Sparc2Cluster, func(p *Proc) {
				if i > 0 {
					p.Send(procs[i-1], 1200, nil)
					p.Recv(procs[i-1])
				}
				if i < 3 {
					p.Send(procs[i+1], 1200, nil)
					p.Recv(procs[i+1])
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	a1, a2, b := run(7), run(7), run(8)
	if a1 != a2 {
		t.Errorf("same seed, different elapsed: %v vs %v", a1, a2)
	}
	if a1 == b {
		t.Errorf("different seeds produced identical elapsed %v", a1)
	}
	// Bounded around the deterministic value.
	net := model.PaperTestbed()
	clean := func() float64 {
		s, _ := New(net)
		procs := make([]*Proc, 4)
		for i := 0; i < 4; i++ {
			i := i
			procs[i] = s.Spawn("t", model.Sparc2Cluster, func(p *Proc) {
				if i > 0 {
					p.Send(procs[i-1], 1200, nil)
					p.Recv(procs[i-1])
				}
				if i < 3 {
					p.Send(procs[i+1], 1200, nil)
					p.Recv(procs[i+1])
				}
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}()
	if a1 < clean*0.5 || a1 > clean*1.5 {
		t.Errorf("jittered elapsed %v far from nominal %v", a1, clean)
	}
}
