package simnet

import "netpart/internal/model"

// Batch accumulates consecutive compute charges into a single scheduler
// round-trip. The per-row Advance pattern costs two channel handoffs and
// one scheduled event per charge; a task that charges many rows back to
// back (the stencil's computeRows loop) pays that per cycle instead of per
// row by accumulating the charges here and parking once in Flush.
//
// Determinism: the batch accumulates exactly the float additions the
// unbatched path performs, in the same order — at_k = at_{k-1} + ms_k with
// one rounding per charge, which is precisely the virtual-time sequence of
// back-to-back Advance calls (each wake-up sets now to the scheduled at).
// Wall-clock behavior changes; virtual time is bit-for-bit identical.
//
// A batch must be flushed before the task communicates or reads the
// virtual clock: sends and receives between Advance and Flush would be
// stamped with the pre-batch time.
type Batch struct {
	p     *Proc
	at    float64
	dirty bool
}

// BeginBatch starts a compute batch at the current virtual time.
func (p *Proc) BeginBatch() Batch {
	return Batch{p: p, at: p.sim.now}
}

// Advance accrues ms milliseconds of virtual compute time to the batch.
//
//netpart:hotpath
func (b *Batch) Advance(ms float64) {
	if ms < 0 {
		panic("simnet: negative advance in batch")
	}
	b.p.computeMs += ms
	b.at += ms
	b.dirty = true
}

// AdvanceOps accrues the virtual time of n operations of the given class
// at the task's cluster speed.
//
//netpart:hotpath
func (b *Batch) AdvanceOps(n float64, class model.OpClass) {
	b.Advance(n * b.p.cluster.OpTime(class))
}

// Flush schedules one wake-up at the accumulated time and parks the task
// until the clock reaches it. A clean batch (no charges) is free: no
// event, no park. The batch is reusable afterwards, rebased to the
// post-flush virtual time.
func (b *Batch) Flush() {
	if !b.dirty {
		b.at = b.p.sim.now
		return
	}
	p := b.p
	p.sim.scheduleWake(b.at, p)
	p.park()
	b.at = p.sim.now
	b.dirty = false
}
