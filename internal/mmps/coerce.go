package mmps

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Coercion helpers: MMPS exchanges typed data between clusters of different
// native formats by coercing to network byte order (big-endian) on the
// wire. These helpers are the per-byte conversion the cost model's T_coerce
// accounts for.

// EncodeFloat64s serializes values big-endian.
func EncodeFloat64s(values []float64) []byte {
	return AppendFloat64s(nil, values)
}

// AppendFloat64s serializes values big-endian onto dst and returns the
// extended slice — the allocation-free variant for hot loops that reuse a
// scratch buffer (Transport.Send copies, so the buffer may be reused as
// soon as Send returns).
//
//netpart:hotpath
func AppendFloat64s(dst []byte, values []float64) []byte {
	off := len(dst)
	if need := off + 8*len(values); cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+8*len(values)]
	for i, v := range values {
		binary.BigEndian.PutUint64(dst[off+8*i:], math.Float64bits(v))
	}
	return dst
}

// DecodeFloat64s parses a big-endian float64 slice.
func DecodeFloat64s(buf []byte) ([]float64, error) {
	return DecodeFloat64sInto(nil, buf)
}

// DecodeFloat64sInto parses a big-endian float64 slice into dst's capacity
// (appending from dst's length), returning the extended slice. Pass a
// reused scratch as dst[:0] for an allocation-free decode.
//
//netpart:hotpath
func DecodeFloat64sInto(dst []float64, buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mmps: float64 payload of %d bytes", len(buf))
	}
	off := len(dst)
	if need := off + len(buf)/8; cap(dst) < need {
		grown := make([]float64, off, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+len(buf)/8]
	for i := 0; i < len(buf)/8; i++ {
		dst[off+i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return dst, nil
}

// EncodeFloat32s serializes values big-endian (the paper's 4-byte grid
// points).
func EncodeFloat32s(values []float32) []byte {
	buf := make([]byte, 4*len(values))
	for i, v := range values {
		binary.BigEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeFloat32s parses a big-endian float32 slice.
func DecodeFloat32s(buf []byte) ([]float32, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("mmps: float32 payload of %d bytes", len(buf))
	}
	out := make([]float32, len(buf)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.BigEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// EncodeInt32s serializes values big-endian.
func EncodeInt32s(values []int32) []byte {
	buf := make([]byte, 4*len(values))
	for i, v := range values {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

// DecodeInt32s parses a big-endian int32 slice.
func DecodeInt32s(buf []byte) ([]int32, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("mmps: int32 payload of %d bytes", len(buf))
	}
	out := make([]int32, len(buf)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}
