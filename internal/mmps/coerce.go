package mmps

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Coercion helpers: MMPS exchanges typed data between clusters of different
// native formats by coercing to network byte order (big-endian) on the
// wire. These helpers are the per-byte conversion the cost model's T_coerce
// accounts for.

// EncodeFloat64s serializes values big-endian.
func EncodeFloat64s(values []float64) []byte {
	buf := make([]byte, 8*len(values))
	for i, v := range values {
		binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// DecodeFloat64s parses a big-endian float64 slice.
func DecodeFloat64s(buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("mmps: float64 payload of %d bytes", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}

// EncodeFloat32s serializes values big-endian (the paper's 4-byte grid
// points).
func EncodeFloat32s(values []float32) []byte {
	buf := make([]byte, 4*len(values))
	for i, v := range values {
		binary.BigEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeFloat32s parses a big-endian float32 slice.
func DecodeFloat32s(buf []byte) ([]float32, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("mmps: float32 payload of %d bytes", len(buf))
	}
	out := make([]float32, len(buf)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.BigEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// EncodeInt32s serializes values big-endian.
func EncodeInt32s(values []int32) []byte {
	buf := make([]byte, 4*len(values))
	for i, v := range values {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return buf
}

// DecodeInt32s parses a big-endian int32 slice.
func DecodeInt32s(buf []byte) ([]int32, error) {
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("mmps: int32 payload of %d bytes", len(buf))
	}
	out := make([]int32, len(buf)/4)
	for i := range out {
		out[i] = int32(binary.BigEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}
