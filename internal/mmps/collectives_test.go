package mmps

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// runCollective starts one goroutine per rank, collects results/errors.
func runCollective(t *testing.T, eps []Transport, body func(tr Transport) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(eps))
	for i := range eps {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = body(eps[i])
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestBcast(t *testing.T) {
	for name, eps := range worlds(t, 4, WithRecvTimeout(10*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			runCollective(t, eps, func(tr Transport) error {
				var in []byte
				if tr.Rank() == 0 {
					in = []byte("announcement")
				}
				got, err := Bcast(tr, in)
				if err != nil {
					return err
				}
				if string(got) != "announcement" {
					return fmt.Errorf("got %q", got)
				}
				return nil
			})
		})
	}
}

func TestGather(t *testing.T) {
	for name, eps := range worlds(t, 4, WithRecvTimeout(10*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			runCollective(t, eps, func(tr Transport) error {
				got, err := Gather(tr, []byte{byte(tr.Rank() * 10)})
				if err != nil {
					return err
				}
				if tr.Rank() != 0 {
					if got != nil {
						return fmt.Errorf("non-root got %v", got)
					}
					return nil
				}
				for r, part := range got {
					if len(part) != 1 || part[0] != byte(r*10) {
						return fmt.Errorf("root slot %d = %v", r, part)
					}
				}
				return nil
			})
		})
	}
}

func TestAllGather(t *testing.T) {
	for name, eps := range worlds(t, 5, WithRecvTimeout(10*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			runCollective(t, eps, func(tr Transport) error {
				payload := []byte(fmt.Sprintf("rank-%d", tr.Rank()))
				got, err := AllGather(tr, payload)
				if err != nil {
					return err
				}
				if len(got) != 5 {
					return fmt.Errorf("got %d parts", len(got))
				}
				for r, part := range got {
					if string(part) != fmt.Sprintf("rank-%d", r) {
						return fmt.Errorf("slot %d = %q", r, part)
					}
				}
				return nil
			})
		})
	}
}

func TestAllGatherEmptyPayloads(t *testing.T) {
	eps := worlds(t, 3, WithRecvTimeout(10*time.Second))["local"]
	defer closeAll(eps)
	runCollective(t, eps, func(tr Transport) error {
		got, err := AllGather(tr, nil)
		if err != nil {
			return err
		}
		for r, part := range got {
			if len(part) != 0 {
				return fmt.Errorf("slot %d = %v", r, part)
			}
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	for name, eps := range worlds(t, 4, WithRecvTimeout(10*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			var before, after sync.WaitGroup
			before.Add(len(eps))
			after.Add(len(eps))
			entered := make([]bool, len(eps))
			var mu sync.Mutex
			for i := range eps {
				i := i
				go func() {
					mu.Lock()
					entered[i] = true
					mu.Unlock()
					before.Done()
					if err := Barrier(eps[i]); err != nil {
						t.Errorf("rank %d: %v", i, err)
					}
					// After the barrier every rank must have entered.
					mu.Lock()
					for r, e := range entered {
						if !e {
							t.Errorf("rank %d passed barrier before rank %d entered", i, r)
						}
					}
					mu.Unlock()
					after.Done()
				}()
			}
			after.Wait()
		})
	}
}
