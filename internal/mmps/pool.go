package mmps

import "sync"

// bufPool recycles the transport's short-lived byte buffers: encoded
// datagrams (alive only until the socket write completes — or, under an
// injected delay, until the deferred write fires) and per-fragment
// reassembly copies (alive until their message is assembled). Buffers whose
// lifetime extends into the application — delivered messages — must NOT come
// from this pool: Recv hands them to the caller and never sees them again.
//
// The pool stores and hands out *[]byte boxes so that neither Get nor Put
// allocates once the pool is warm; callers keep the box and return it with
// putBuf when the buffer dies.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// getBuf returns a boxed buffer of length n (reusing pooled capacity).
//
//netpart:hotpath
func getBuf(n int) *[]byte {
	p := bufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putBuf recycles a boxed buffer obtained from getBuf. The caller must not
// touch the buffer afterward: the next getBuf may hand the same memory to
// another goroutine.
//
//netpart:hotpath
func putBuf(p *[]byte) { bufPool.Put(p) }
