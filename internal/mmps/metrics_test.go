package mmps

import (
	"bytes"
	"testing"
	"time"

	"netpart/internal/obs"
)

func TestLocalWorldMetrics(t *testing.T) {
	m := obs.NewRegistry()
	world, err := NewLocalWorld(2, WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("abcdefgh")
	if err := world[0].Send(1, payload); err != nil {
		t.Fatal(err)
	}
	got, err := world[1].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("recv = %q", got)
	}
	if n := m.Counter(MetricMsgsSent).Value(); n != 1 {
		t.Errorf("msgs_sent = %d", n)
	}
	if n := m.Counter(MetricBytesRecv).Value(); n != int64(len(payload)) {
		t.Errorf("bytes_received = %d", n)
	}
}

func TestUDPWorldMetricsCountRetransmits(t *testing.T) {
	m := obs.NewRegistry()
	world, err := NewUDPWorld(2,
		WithMetrics(m),
		WithLossEveryNth(2), // drop every other data packet
		WithRTO(5*time.Millisecond),
		WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range world {
			c.Close()
		}
	}()
	for i := 0; i < 4; i++ {
		if err := world[0].Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := world[1].Recv(0); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.Counter(MetricMsgsRecv).Value(); n != 4 {
		t.Errorf("msgs_received = %d", n)
	}
	if n := m.Counter(MetricPacketsSent).Value(); n != 4 {
		t.Errorf("packets_sent = %d", n)
	}
	// Half the first transmissions were dropped, so retransmissions must
	// have occurred for delivery to succeed.
	if n := m.Counter(MetricRetransmits).Value(); n == 0 {
		t.Error("expected retransmissions under 50% loss")
	}
}
