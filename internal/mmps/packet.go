package mmps

import (
	"encoding/binary"
	"fmt"
)

// Wire format (all integers big-endian, the network byte order MMPS coerces
// to):
//
//	0:4   magic "MMPS"
//	4     version (1)
//	5     kind (0 = data, 1 = ack)
//	6:8   source rank
//	8:10  destination rank
//	10:14 message sequence number (per source→destination stream)
//	14:18 fragment index
//	18:22 fragment count (data) / 0 (ack)
//	22:26 payload length (data) / 0 (ack)
//	26:   payload
const (
	headerSize    = 26
	packetVersion = 1

	kindData = 0
	kindAck  = 1
)

var magic = [4]byte{'M', 'M', 'P', 'S'}

// packet is one decoded datagram.
type packet struct {
	kind      byte
	src, dst  int
	seq       uint32
	fragIdx   uint32
	fragCount uint32
	payload   []byte
}

// encode serializes the packet into a fresh buffer.
func (p *packet) encode() []byte {
	buf := make([]byte, headerSize+len(p.payload))
	p.encodeTo(buf)
	return buf
}

// encodeTo serializes the packet into buf, which must be exactly
// headerSize+len(p.payload) long (the transmit path sizes it from the pool).
func (p *packet) encodeTo(buf []byte) {
	copy(buf[0:4], magic[:])
	buf[4] = packetVersion
	buf[5] = p.kind
	binary.BigEndian.PutUint16(buf[6:8], uint16(p.src))
	binary.BigEndian.PutUint16(buf[8:10], uint16(p.dst))
	binary.BigEndian.PutUint32(buf[10:14], p.seq)
	binary.BigEndian.PutUint32(buf[14:18], p.fragIdx)
	binary.BigEndian.PutUint32(buf[18:22], p.fragCount)
	binary.BigEndian.PutUint32(buf[22:26], uint32(len(p.payload)))
	copy(buf[headerSize:], p.payload)
}

// decodePacket parses a datagram. The returned payload aliases buf.
func decodePacket(buf []byte) (*packet, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes", errBadPacket, len(buf))
	}
	if [4]byte(buf[0:4]) != magic {
		return nil, errWrongWorld
	}
	if buf[4] != packetVersion {
		return nil, fmt.Errorf("%w: version %d", errBadPacket, buf[4])
	}
	p := &packet{
		kind:      buf[5],
		src:       int(binary.BigEndian.Uint16(buf[6:8])),
		dst:       int(binary.BigEndian.Uint16(buf[8:10])),
		seq:       binary.BigEndian.Uint32(buf[10:14]),
		fragIdx:   binary.BigEndian.Uint32(buf[14:18]),
		fragCount: binary.BigEndian.Uint32(buf[18:22]),
	}
	if p.kind != kindData && p.kind != kindAck {
		return nil, fmt.Errorf("%w: kind %d", errBadPacket, p.kind)
	}
	n := binary.BigEndian.Uint32(buf[22:26])
	if int(n) != len(buf)-headerSize {
		return nil, fmt.Errorf("%w: payload length %d of %d", errBadPacket, n, len(buf)-headerSize)
	}
	p.payload = buf[headerSize:]
	return p, nil
}
