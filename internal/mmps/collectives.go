package mmps

import "fmt"

// Collective operations built from the point-to-point verbs, following the
// synchronous patterns of the paper's topology set: every participant
// calls the same collective with its own transport; rank 0 is the root
// where one is needed. They work over both the UDP and in-memory
// transports.

// Bcast distributes the root's data to every rank: the root passes the
// payload and every call returns it.
func Bcast(tr Transport, data []byte) ([]byte, error) {
	if tr.Rank() == 0 {
		for dst := 1; dst < tr.Size(); dst++ {
			if err := tr.Send(dst, data); err != nil {
				return nil, fmt.Errorf("mmps: bcast to %d: %w", dst, err)
			}
		}
		return data, nil
	}
	out, err := tr.Recv(0)
	if err != nil {
		return nil, fmt.Errorf("mmps: bcast recv: %w", err)
	}
	return out, nil
}

// Gather collects each rank's data at the root. The root receives the
// slice indexed by rank (its own entry included); other ranks receive nil.
func Gather(tr Transport, data []byte) ([][]byte, error) {
	if tr.Rank() != 0 {
		if err := tr.Send(0, data); err != nil {
			return nil, fmt.Errorf("mmps: gather send: %w", err)
		}
		return nil, nil
	}
	out := make([][]byte, tr.Size())
	out[0] = append([]byte(nil), data...)
	for src := 1; src < tr.Size(); src++ {
		buf, err := tr.Recv(src)
		if err != nil {
			return nil, fmt.Errorf("mmps: gather from %d: %w", src, err)
		}
		out[src] = buf
	}
	return out, nil
}

// AllGather gives every rank the slice of all ranks' data (gather at the
// root, then a broadcast of the concatenation).
func AllGather(tr Transport, data []byte) ([][]byte, error) {
	size := tr.Size()
	gathered, err := Gather(tr, data)
	if err != nil {
		return nil, err
	}
	if tr.Rank() == 0 {
		// Frame: per rank, a 4-byte length then the payload.
		var flat []byte
		for _, part := range gathered {
			flat = append(flat, byte(len(part)>>24), byte(len(part)>>16), byte(len(part)>>8), byte(len(part)))
			flat = append(flat, part...)
		}
		if _, err := Bcast(tr, flat); err != nil {
			return nil, err
		}
		return gathered, nil
	}
	flat, err := Bcast(tr, nil)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, size)
	for i := 0; i < size; i++ {
		if len(flat) < 4 {
			return nil, fmt.Errorf("mmps: allgather frame truncated at rank %d", i)
		}
		n := int(flat[0])<<24 | int(flat[1])<<16 | int(flat[2])<<8 | int(flat[3])
		flat = flat[4:]
		if n < 0 || n > len(flat) {
			return nil, fmt.Errorf("mmps: allgather length %d exceeds frame", n)
		}
		out = append(out, flat[:n:n])
		flat = flat[n:]
	}
	return out, nil
}

// Barrier blocks until every rank has entered it (gather of empty tokens,
// then an empty broadcast).
func Barrier(tr Transport) error {
	if _, err := Gather(tr, nil); err != nil {
		return err
	}
	_, err := Bcast(tr, nil)
	return err
}
