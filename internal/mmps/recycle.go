package mmps

// Recycler is optionally implemented by transports whose delivered message
// buffers can be returned for reuse once the receiver has copied out what
// it keeps. Recv transfers buffer ownership to the caller and the
// transport never sees the buffer again, so only the caller knows when it
// dies; handing it back lets the transport serve a later Send from a free
// list instead of the heap. (The internal bufPool cannot back delivered
// messages for exactly this reason — see pool.go.)
type Recycler interface {
	// Recycle returns a buffer previously obtained from Recv or RecvAny.
	// The caller must not touch the buffer afterwards.
	Recycle(buf []byte)
}

// Recycle hands buf back to tr when the transport supports reuse and is a
// no-op otherwise, so receive loops can recycle unconditionally.
func Recycle(tr Transport, buf []byte) {
	if r, ok := tr.(Recycler); ok {
		r.Recycle(buf)
	}
}
