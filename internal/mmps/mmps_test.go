package mmps

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// worlds returns both transport implementations under a common constructor
// so every behavioral test runs against each.
func worlds(t *testing.T, n int, opts ...Option) map[string][]Transport {
	t.Helper()
	out := make(map[string][]Transport)
	locals, err := NewLocalWorld(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ls := make([]Transport, n)
	for i, l := range locals {
		ls[i] = l
	}
	out["local"] = ls
	conns, err := NewUDPWorld(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	us := make([]Transport, n)
	for i, c := range conns {
		us[i] = c
	}
	out["udp"] = us
	return out
}

func closeAll(eps []Transport) {
	for _, ep := range eps {
		ep.Close()
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(5*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			want := []byte("hello, network partitioning")
			if err := eps[0].Send(1, want); err != nil {
				t.Fatal(err)
			}
			got, err := eps[1].Recv(0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("got %q, want %q", got, want)
			}
		})
	}
}

func TestPerSenderOrdering(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(5*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			const msgs = 50
			for i := 0; i < msgs; i++ {
				if err := eps[0].Send(1, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < msgs; i++ {
				got, err := eps[1].Recv(0)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 1 || got[0] != byte(i) {
					t.Fatalf("message %d: got %v", i, got)
				}
			}
		})
	}
}

func TestSenderIdentityPreserved(t *testing.T) {
	for name, eps := range worlds(t, 3, WithRecvTimeout(5*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			if err := eps[0].Send(2, []byte("from-0")); err != nil {
				t.Fatal(err)
			}
			if err := eps[1].Send(2, []byte("from-1")); err != nil {
				t.Fatal(err)
			}
			got1, err := eps[2].Recv(1)
			if err != nil {
				t.Fatal(err)
			}
			got0, err := eps[2].Recv(0)
			if err != nil {
				t.Fatal(err)
			}
			if string(got0) != "from-0" || string(got1) != "from-1" {
				t.Errorf("got %q / %q", got0, got1)
			}
		})
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(10*time.Second), WithMTU(512)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			want := make([]byte, 100_000) // ~196 fragments at MTU 512
			for i := range want {
				want[i] = byte(i * 31)
			}
			if err := eps[0].Send(1, want); err != nil {
				t.Fatal(err)
			}
			got, err := eps[1].Recv(0)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Error("large message corrupted in flight")
			}
		})
	}
}

func TestEmptyMessage(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(5*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			if err := eps[0].Send(1, nil); err != nil {
				t.Fatal(err)
			}
			got, err := eps[1].Recv(0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Errorf("got %v, want empty", got)
			}
		})
	}
}

func TestRecvTimeout(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(50*time.Millisecond)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			start := time.Now()
			_, err := eps[0].Recv(1)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("Recv = %v, want ErrTimeout", err)
			}
			if time.Since(start) > 5*time.Second {
				t.Error("timeout took far too long")
			}
		})
	}
}

func TestRankValidation(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			if err := eps[0].Send(7, []byte("x")); !errors.Is(err, ErrBadRank) {
				t.Errorf("Send to bad rank = %v", err)
			}
			if _, err := eps[0].Recv(-1); !errors.Is(err, ErrBadRank) {
				t.Errorf("Recv from bad rank = %v", err)
			}
		})
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(30*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			errc := make(chan error, 1)
			go func() {
				_, err := eps[0].Recv(1)
				errc <- err
			}()
			time.Sleep(20 * time.Millisecond)
			eps[0].Close()
			select {
			case err := <-errc:
				if !errors.Is(err, ErrClosed) {
					t.Errorf("Recv after close = %v, want ErrClosed", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Close did not unblock Recv")
			}
		})
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	for name, eps := range worlds(t, 2, WithRecvTimeout(time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			eps[0].Close()
			if err := eps[0].Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
				t.Errorf("Send after close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	// Drop every 3rd data packet: reliability must still deliver everything
	// in order.
	conns, err := NewUDPWorld(2,
		WithRecvTimeout(20*time.Second),
		WithRTO(5*time.Millisecond),
		WithLossEveryNth(3),
		WithMTU(256),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	const msgs = 20
	go func() {
		for i := 0; i < msgs; i++ {
			payload := bytes.Repeat([]byte{byte(i)}, 700) // 3 fragments each
			conns[0].Send(1, payload)
		}
	}()
	for i := 0; i < msgs; i++ {
		got, err := conns[1].Recv(0)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if len(got) != 700 || got[0] != byte(i) || got[699] != byte(i) {
			t.Fatalf("message %d corrupted: len=%d first=%d", i, len(got), got[0])
		}
	}
}

func TestFlushWaitsForAcks(t *testing.T) {
	conns, err := NewUDPWorld(2, WithRecvTimeout(10*time.Second), WithRTO(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 10; i++ {
		if err := conns[0].Send(1, bytes.Repeat([]byte{1}, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := conns[0].Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := conns[1].Recv(0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSendFailureSurfacesWhenPeerGone(t *testing.T) {
	conns, err := NewUDPWorld(2,
		WithRecvTimeout(time.Second),
		WithRTO(2*time.Millisecond),
		WithMaxRetries(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer conns[0].Close()
	conns[1].Close() // peer vanishes; acks will never come
	if err := conns[0].Send(1, []byte("into the void")); err != nil {
		t.Fatalf("async send should enqueue: %v", err)
	}
	if err := conns[0].Flush(); !errors.Is(err, ErrSendFailed) {
		t.Errorf("Flush = %v, want ErrSendFailed", err)
	}
}

func TestConcurrentAllToAll(t *testing.T) {
	const n = 4
	const msgsPerPair = 10
	for name, eps := range worlds(t, n, WithRecvTimeout(20*time.Second)) {
		t.Run(name, func(t *testing.T) {
			defer closeAll(eps)
			var wg sync.WaitGroup
			errc := make(chan error, n)
			for r := 0; r < n; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					for dst := 0; dst < n; dst++ {
						if dst == r {
							continue
						}
						for i := 0; i < msgsPerPair; i++ {
							msg := fmt.Sprintf("%d->%d #%d", r, dst, i)
							if err := eps[r].Send(dst, []byte(msg)); err != nil {
								errc <- err
								return
							}
						}
					}
					for src := 0; src < n; src++ {
						if src == r {
							continue
						}
						for i := 0; i < msgsPerPair; i++ {
							got, err := eps[r].Recv(src)
							if err != nil {
								errc <- err
								return
							}
							want := fmt.Sprintf("%d->%d #%d", src, r, i)
							if string(got) != want {
								errc <- fmt.Errorf("got %q, want %q", got, want)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
		})
	}
}

func TestMaxMessageSize(t *testing.T) {
	conns, err := NewUDPWorld(2, WithRecvTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	huge := make([]byte, 65<<20)
	if err := conns[0].Send(1, huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized send = %v, want ErrTooLarge", err)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &packet{
		kind: kindData, src: 3, dst: 9, seq: 42,
		fragIdx: 7, fragCount: 12, payload: []byte("payload bytes"),
	}
	got, err := decodePacket(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != p.kind || got.src != p.src || got.dst != p.dst ||
		got.seq != p.seq || got.fragIdx != p.fragIdx || got.fragCount != p.fragCount ||
		!bytes.Equal(got.payload, p.payload) {
		t.Errorf("round trip: %+v vs %+v", got, p)
	}
}

func TestDecodePacketRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0}, headerSize), // bad magic
		append(magic[:], bytes.Repeat([]byte{9}, 40)...), // bad version
	}
	for i, in := range cases {
		if _, err := decodePacket(in); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truthful header with a lying payload length.
	p := &packet{kind: kindData, src: 0, dst: 1, fragCount: 1, payload: []byte("xx")}
	enc := p.encode()
	enc[25] = 99 // payload length corrupted
	if _, err := decodePacket(enc); err == nil {
		t.Error("lying payload length accepted")
	}
}

// Property: packet encoding round-trips arbitrary field values.
func TestPacketRoundTripProperty(t *testing.T) {
	f := func(kindRaw bool, src, dst uint16, seq, fragIdx, fragCount uint32, payload []byte) bool {
		kind := byte(kindData)
		if kindRaw {
			kind = kindAck
		}
		p := &packet{
			kind: kind, src: int(src), dst: int(dst), seq: seq,
			fragIdx: fragIdx, fragCount: fragCount, payload: payload,
		}
		got, err := decodePacket(p.encode())
		if err != nil {
			return false
		}
		return got.kind == p.kind && got.src == p.src && got.dst == p.dst &&
			got.seq == p.seq && got.fragIdx == p.fragIdx &&
			got.fragCount == p.fragCount && bytes.Equal(got.payload, p.payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoerceRoundTrips(t *testing.T) {
	f64 := []float64{0, 1.5, -2.25, 1e300, -1e-300}
	got64, err := DecodeFloat64s(EncodeFloat64s(f64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f64 {
		if got64[i] != f64[i] {
			t.Errorf("float64[%d]: %v != %v", i, got64[i], f64[i])
		}
	}
	f32 := []float32{0, 1.5, -3.75, 100}
	got32, err := DecodeFloat32s(EncodeFloat32s(f32))
	if err != nil {
		t.Fatal(err)
	}
	for i := range f32 {
		if got32[i] != f32[i] {
			t.Errorf("float32[%d]: %v != %v", i, got32[i], f32[i])
		}
	}
	i32 := []int32{0, -1, 1 << 30, -(1 << 30)}
	gotI, err := DecodeInt32s(EncodeInt32s(i32))
	if err != nil {
		t.Fatal(err)
	}
	for i := range i32 {
		if gotI[i] != i32[i] {
			t.Errorf("int32[%d]: %v != %v", i, gotI[i], i32[i])
		}
	}
}

func TestCoerceRejectsMisalignedBuffers(t *testing.T) {
	if _, err := DecodeFloat64s(make([]byte, 7)); err == nil {
		t.Error("misaligned float64 buffer accepted")
	}
	if _, err := DecodeFloat32s(make([]byte, 5)); err == nil {
		t.Error("misaligned float32 buffer accepted")
	}
	if _, err := DecodeInt32s(make([]byte, 3)); err == nil {
		t.Error("misaligned int32 buffer accepted")
	}
}

// Property: float64 coercion round-trips arbitrary values (including the
// bit patterns of NaNs).
func TestCoerceFloat64Property(t *testing.T) {
	f := func(vals []float64) bool {
		got, err := DecodeFloat64s(EncodeFloat64s(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// Compare bit patterns so NaN round-trips count as equal.
			if EncodeFloat64s(vals[i : i+1])[0] != EncodeFloat64s(got[i : i+1])[0] {
				return false
			}
			if vals[i] == vals[i] && got[i] != vals[i] { // non-NaN exact
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewLocalWorld(0); err == nil {
		t.Error("zero-size local world accepted")
	}
	if _, err := NewUDPWorld(0); err == nil {
		t.Error("zero-size udp world accepted")
	}
}
