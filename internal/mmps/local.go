package mmps

import (
	"fmt"
	"sync"
	"time"
)

// Local is the in-memory transport: reliable and ordered by construction,
// sharing the Transport interface with the UDP implementation so higher
// layers can be tested deterministically.
type Local struct {
	rank  int
	world *localWorld
}

type localWorld struct {
	size        int
	recvTimeout time.Duration
	metrics     transportMetrics
	mu          sync.Mutex
	closed      []bool
	// queues[dst][src] holds pending messages with a condition variable
	// per destination for blocking receives.
	queues []map[int][][]byte
	conds  []*sync.Cond
}

// NewLocalWorld creates n connected in-memory endpoints.
func NewLocalWorld(n int, opts ...Option) ([]*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mmps: world size %d", n)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	w := &localWorld{
		size:        n,
		recvTimeout: o.recvTimeout,
		metrics:     o.metrics,
		closed:      make([]bool, n),
		queues:      make([]map[int][][]byte, n),
		conds:       make([]*sync.Cond, n),
	}
	eps := make([]*Local, n)
	for i := 0; i < n; i++ {
		w.queues[i] = make(map[int][][]byte)
		w.conds[i] = sync.NewCond(&w.mu)
		eps[i] = &Local{rank: i, world: w}
	}
	return eps, nil
}

// Rank returns the endpoint's rank.
func (l *Local) Rank() int { return l.rank }

// Size returns the world size.
func (l *Local) Size() int { return l.world.size }

// Send copies data into dst's queue.
func (l *Local) Send(dst int, data []byte) error {
	if err := rankCheck(dst, l.world.size); err != nil {
		return err
	}
	w := l.world
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed[l.rank] || w.closed[dst] {
		return ErrClosed
	}
	cp := append([]byte(nil), data...)
	w.queues[dst][l.rank] = append(w.queues[dst][l.rank], cp)
	w.metrics.msgsSent.Inc()
	w.metrics.bytesSent.Add(int64(len(data)))
	w.conds[dst].Broadcast()
	return nil
}

// Recv blocks for the next message from src.
func (l *Local) Recv(src int) ([]byte, error) {
	if err := rankCheck(src, l.world.size); err != nil {
		return nil, err
	}
	w := l.world
	deadline := time.Now().Add(w.recvTimeout)
	// A watchdog wakes the condition variable at the deadline so a blocked
	// receiver can observe the timeout.
	timer := time.AfterFunc(w.recvTimeout, func() {
		w.mu.Lock()
		w.conds[l.rank].Broadcast()
		w.mu.Unlock()
	})
	defer timer.Stop()

	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed[l.rank] {
			return nil, ErrClosed
		}
		q := w.queues[l.rank][src]
		if len(q) > 0 {
			msg := q[0]
			w.queues[l.rank][src] = q[1:]
			w.metrics.msgsRecv.Inc()
			w.metrics.bytesRecv.Add(int64(len(msg)))
			return msg, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: from rank %d", ErrTimeout, src)
		}
		w.conds[l.rank].Wait()
	}
}

// Close marks the endpoint closed and wakes blocked receivers.
func (l *Local) Close() error {
	w := l.world
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed[l.rank] = true
	w.conds[l.rank].Broadcast()
	return nil
}
