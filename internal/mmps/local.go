package mmps

import (
	"fmt"
	"sync"
	"time"

	"netpart/internal/faults"
)

// Local is the in-memory transport: reliable and ordered by construction,
// sharing the Transport interface with the UDP implementation so higher
// layers can be tested deterministically. With WithInjector it emulates
// the UDP transport's behavior under packet faults — a dropped packet is
// retried every RTO until the injector lets it through (so an unhealed
// partition stalls the stream, and a healed one resumes it), a delayed
// packet arrives late, and a duplicated packet is suppressed — while still
// guaranteeing reliable in-order per-sender delivery.
type Local struct {
	rank  int
	world *localWorld
}

// maxFreeBufs bounds the world's recycled-buffer list; beyond it, returned
// buffers fall to the garbage collector.
const maxFreeBufs = 256

type localWorld struct {
	size        int
	recvTimeout time.Duration
	rto         time.Duration
	inj         faults.Injector
	epoch       time.Time
	metrics     transportMetrics
	mu          sync.Mutex
	closed      []bool
	// free holds delivered buffers handed back through Recycle, reused by
	// Send for its delivery copies. Never handed out twice concurrently:
	// Send pops under mu and the popped buffer's ownership then follows the
	// message (queue -> Recv caller -> Recycle).
	free [][]byte
	// queues[dst][src] holds pending messages with a condition variable
	// per destination for blocking receives.
	queues []map[int][][]byte
	conds  []*sync.Cond
	// streams[src][dst] sequences faulted deliveries so per-sender order
	// survives drops and delays. Nil without an injector.
	streams [][]*localStream
}

// localStream orders one (src,dst) message stream under injected faults.
type localStream struct {
	nextSeq     uint64
	nextDeliver uint64
	held        map[uint64][]byte // out-of-order arrivals; nil = tombstone
}

// NewLocalWorld creates n connected in-memory endpoints.
func NewLocalWorld(n int, opts ...Option) ([]*Local, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mmps: world size %d", n)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	w := &localWorld{
		size:        n,
		recvTimeout: o.recvTimeout,
		rto:         o.rto,
		inj:         o.injector,
		epoch:       time.Now(),
		metrics:     o.metrics,
		closed:      make([]bool, n),
		queues:      make([]map[int][][]byte, n),
		conds:       make([]*sync.Cond, n),
	}
	eps := make([]*Local, n)
	for i := 0; i < n; i++ {
		w.queues[i] = make(map[int][][]byte)
		w.conds[i] = sync.NewCond(&w.mu)
		eps[i] = &Local{rank: i, world: w}
	}
	if w.inj != nil {
		w.streams = make([][]*localStream, n)
		for i := 0; i < n; i++ {
			w.streams[i] = make([]*localStream, n)
			for j := 0; j < n; j++ {
				w.streams[i][j] = &localStream{held: make(map[uint64][]byte)}
			}
		}
	}
	return eps, nil
}

// Rank returns the endpoint's rank.
func (l *Local) Rank() int { return l.rank }

// Size returns the world size.
func (l *Local) Size() int { return l.world.size }

// Send copies data into dst's queue (immediately, or through the fault
// injector's emulated network when the world has one).
func (l *Local) Send(dst int, data []byte) error {
	if err := rankCheck(dst, l.world.size); err != nil {
		return err
	}
	w := l.world
	w.mu.Lock()
	if w.closed[l.rank] || w.closed[dst] {
		w.mu.Unlock()
		return ErrClosed
	}
	cp := w.takeBuf(len(data))
	copy(cp, data)
	w.metrics.msgsSent.Inc()
	w.metrics.bytesSent.Add(int64(len(data)))
	if w.inj == nil {
		w.queues[dst][l.rank] = append(w.queues[dst][l.rank], cp)
		w.conds[dst].Broadcast()
		w.mu.Unlock()
		return nil
	}
	st := w.streams[l.rank][dst]
	seq := st.nextSeq
	st.nextSeq++
	w.mu.Unlock()
	w.route(l.rank, dst, seq, cp) //nolint:netpart/allocfree reason=fault-injection path only; the steady state returns through the inj==nil fast path above, and chaos-mode retry timers may allocate
	return nil
}

// route consults the injector for one message and schedules its delivery:
// drops retry after an RTO (re-consulting the injector, so a healed
// partition lets the retry through), delays deliver late, duplicates are
// suppressed (this transport is reliable; the engine still counts them).
func (w *localWorld) route(src, dst int, seq uint64, data []byte) {
	nowMs := float64(time.Since(w.epoch)) / float64(time.Millisecond)
	fate := w.inj.Packet(src, dst, nowMs)
	switch {
	case fate.Drop:
		time.AfterFunc(w.rto, func() {
			w.mu.Lock()
			dead := w.closed[src] || w.closed[dst]
			w.mu.Unlock()
			if dead {
				w.deliverSeq(src, dst, seq, nil) // tombstone: unblock the stream
				return
			}
			w.route(src, dst, seq, data)
		})
	case fate.DelayMs > 0:
		time.AfterFunc(time.Duration(fate.DelayMs*float64(time.Millisecond)), func() {
			w.deliverSeq(src, dst, seq, data)
		})
	default:
		w.deliverSeq(src, dst, seq, data)
	}
}

// deliverSeq hands one sequenced message to the (src,dst) stream and
// drains every in-order message into dst's queue. A nil data tombstones
// the sequence number (abandoned delivery) so later messages still flow.
func (w *localWorld) deliverSeq(src, dst int, seq uint64, data []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.streams[src][dst]
	if seq < st.nextDeliver {
		return
	}
	st.held[seq] = data
	delivered := false
	for {
		d, ok := st.held[st.nextDeliver]
		if !ok {
			break
		}
		delete(st.held, st.nextDeliver)
		st.nextDeliver++
		if d != nil && !w.closed[dst] {
			w.queues[dst][src] = append(w.queues[dst][src], d)
			delivered = true
		}
	}
	if delivered {
		w.conds[dst].Broadcast()
	}
}

// popLocked removes and returns the head of dst's queue from src, which
// must be non-empty. When the pop empties the queue, the slice is reset to
// its backing array's start so the window stops sliding and steady-state
// appends stay allocation-free. The caller must hold w.mu.
//
//netpart:hotpath
func (w *localWorld) popLocked(dst, src int) []byte {
	q := w.queues[dst][src]
	msg := q[0]
	if len(q) == 1 {
		w.queues[dst][src] = q[:0]
	} else {
		w.queues[dst][src] = q[1:]
	}
	w.metrics.msgsRecv.Inc()
	w.metrics.bytesRecv.Add(int64(len(msg)))
	return msg
}

// Recv blocks for the next message from src.
func (l *Local) Recv(src int) ([]byte, error) {
	if err := rankCheck(src, l.world.size); err != nil {
		return nil, err
	}
	w := l.world
	// Fast path: a queued message returns without arming the timeout
	// watchdog (a timer allocation per call on the exchange hot path).
	w.mu.Lock()
	if w.closed[l.rank] {
		w.mu.Unlock()
		return nil, ErrClosed
	}
	if len(w.queues[l.rank][src]) > 0 {
		msg := w.popLocked(l.rank, src)
		w.mu.Unlock()
		return msg, nil
	}
	w.mu.Unlock()
	deadline := time.Now().Add(w.recvTimeout)
	// A watchdog wakes the condition variable at the deadline so a blocked
	// receiver can observe the timeout.
	timer := time.AfterFunc(w.recvTimeout, func() {
		w.mu.Lock()
		w.conds[l.rank].Broadcast()
		w.mu.Unlock()
	})
	defer timer.Stop()

	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed[l.rank] {
			return nil, ErrClosed
		}
		if len(w.queues[l.rank][src]) > 0 {
			return w.popLocked(l.rank, src), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%w: from rank %d", ErrTimeout, src)
		}
		w.conds[l.rank].Wait()
	}
}

// RecvAny blocks for the next message from any peer, scanning queues in
// ascending rank order. d <= 0 means the world's receive timeout.
func (l *Local) RecvAny(d time.Duration) (int, []byte, error) {
	if d <= 0 {
		d = l.world.recvTimeout
	}
	w := l.world
	w.mu.Lock()
	if w.closed[l.rank] {
		w.mu.Unlock()
		return -1, nil, ErrClosed
	}
	for src := 0; src < w.size; src++ {
		if len(w.queues[l.rank][src]) > 0 {
			msg := w.popLocked(l.rank, src)
			w.mu.Unlock()
			return src, msg, nil
		}
	}
	w.mu.Unlock()
	deadline := time.Now().Add(d)
	timer := time.AfterFunc(d, func() {
		w.mu.Lock()
		w.conds[l.rank].Broadcast()
		w.mu.Unlock()
	})
	defer timer.Stop()

	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed[l.rank] {
			return -1, nil, ErrClosed
		}
		for src := 0; src < w.size; src++ {
			if len(w.queues[l.rank][src]) > 0 {
				return src, w.popLocked(l.rank, src), nil
			}
		}
		if time.Now().After(deadline) {
			return -1, nil, ErrTimeout
		}
		w.conds[l.rank].Wait()
	}
}

// takeBuf returns a buffer of length n, reusing recycled capacity when any
// is available. The caller must hold w.mu.
//
//netpart:hotpath
func (w *localWorld) takeBuf(n int) []byte {
	if len(w.free) == 0 {
		return make([]byte, n)
	}
	b := w.free[len(w.free)-1]
	w.free = w.free[:len(w.free)-1]
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// Recycle implements Recycler: a delivered buffer rejoins the world's free
// list for a later Send to reuse. The caller must not touch buf afterwards.
func (l *Local) Recycle(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	w := l.world
	w.mu.Lock()
	if len(w.free) < maxFreeBufs {
		w.free = append(w.free, buf)
	}
	w.mu.Unlock()
}

// Close marks the endpoint closed and wakes blocked receivers.
func (l *Local) Close() error {
	w := l.world
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed[l.rank] = true
	w.conds[l.rank].Broadcast()
	return nil
}
