package mmps

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is the UDP transport: a real socket per endpoint, with per-stream
// sequencing, per-fragment acknowledgment, retransmission, and
// fragmentation/reassembly providing reliable in-order delivery over lossy
// datagrams.
type Conn struct {
	rank  int
	size  int
	opts  options
	sock  *net.UDPConn
	peers []*net.UDPAddr
	done  chan struct{} // closed by Close

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on delivery, ack, error, close
	closed bool
	err    error // first asynchronous send failure

	nextSeq  []uint32            // per destination: next message sequence
	expected []uint32            // per source: next message to deliver
	reasm    []map[uint32]*reasm // per source: partial/out-of-order messages
	inbox    []([][]byte)        // per source: delivered messages
	pending  map[fragKey]bool    // fragments transmitted but not yet acked
	inflight int                 // messages handed to senders, not finished

	sendq   []chan []byte // per destination: queued outbound messages
	sending sync.WaitGroup
	dataPkt int // outgoing data packet counter (loss injection)
}

type fragKey struct {
	dst     int
	seq     uint32
	fragIdx uint32
}

type reasm struct {
	fragCount uint32
	got       uint32
	frags     [][]byte
}

// NewUDPWorld creates n endpoints on loopback UDP sockets, fully meshed.
func NewUDPWorld(n int, opts ...Option) ([]*Conn, error) {
	if n <= 0 || n > 65535 {
		return nil, fmt.Errorf("mmps: world size %d", n)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	conns := make([]*Conn, n)
	addrs := make([]*net.UDPAddr, n)
	for i := 0; i < n; i++ {
		sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for j := 0; j < i; j++ {
				conns[j].sock.Close()
			}
			return nil, fmt.Errorf("mmps: binding endpoint %d: %w", i, err)
		}
		conns[i] = &Conn{rank: i, size: n, opts: o, sock: sock, done: make(chan struct{})}
		addrs[i] = sock.LocalAddr().(*net.UDPAddr)
	}
	for _, c := range conns {
		c.peers = addrs
		c.cond = sync.NewCond(&c.mu)
		c.nextSeq = make([]uint32, n)
		c.expected = make([]uint32, n)
		c.reasm = make([]map[uint32]*reasm, n)
		c.inbox = make([][][]byte, n)
		c.pending = make(map[fragKey]bool)
		c.sendq = make([]chan []byte, n)
		for d := 0; d < n; d++ {
			c.reasm[d] = make(map[uint32]*reasm)
			c.sendq[d] = make(chan []byte, 64)
			c.sending.Add(1)
			go c.sender(d)
		}
		go c.reader()
	}
	return conns, nil
}

// Rank returns the endpoint's rank.
func (c *Conn) Rank() int { return c.rank }

// Size returns the world size.
func (c *Conn) Size() int { return c.size }

// LocalAddr returns the endpoint's UDP address.
func (c *Conn) LocalAddr() *net.UDPAddr { return c.sock.LocalAddr().(*net.UDPAddr) }

// Send queues data for reliable in-order delivery to dst and returns
// immediately (the paper's asynchronous send). Delivery failures surface on
// a later Send, Recv, Flush, or Close.
func (c *Conn) Send(dst int, data []byte) error {
	if err := rankCheck(dst, c.size); err != nil {
		return err
	}
	if len(data) > c.opts.maxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.inflight++
	c.mu.Unlock()

	cp := append([]byte(nil), data...)
	select {
	case c.sendq[dst] <- cp:
		c.opts.metrics.msgsSent.Inc()
		c.opts.metrics.bytesSent.Add(int64(len(data)))
		return nil
	case <-c.done:
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
		return ErrClosed
	}
}

// sender performs reliable delivery of queued messages to one destination,
// preserving stream order.
func (c *Conn) sender(dst int) {
	defer c.sending.Done()
	for {
		select {
		case data := <-c.sendq[dst]:
			err := c.deliverReliably(dst, data)
			c.mu.Lock()
			c.inflight--
			if err != nil && c.err == nil && !c.closed {
				c.err = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-c.done:
			return
		}
	}
}

// deliverReliably fragments one message, transmits, and retransmits unacked
// fragments every RTO until all are acknowledged or retries run out.
func (c *Conn) deliverReliably(dst int, data []byte) error {
	mtu := c.opts.mtu
	fragCount := (len(data) + mtu - 1) / mtu
	if fragCount == 0 {
		fragCount = 1
	}

	c.mu.Lock()
	seq := c.nextSeq[dst]
	c.nextSeq[dst]++
	keys := make([]fragKey, fragCount)
	for i := range keys {
		keys[i] = fragKey{dst, seq, uint32(i)}
		c.pending[keys[i]] = true
	}
	c.mu.Unlock()

	frags := make([]*packet, fragCount)
	for i := 0; i < fragCount; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(data) {
			hi = len(data)
		}
		frags[i] = &packet{
			kind: kindData, src: c.rank, dst: dst, seq: seq,
			fragIdx: uint32(i), fragCount: uint32(fragCount),
			payload: data[lo:hi],
		}
	}

	cleanup := func() {
		for _, k := range keys {
			delete(c.pending, k)
		}
	}
	for attempt := 0; attempt <= c.opts.maxRetries; attempt++ {
		// Transmit every still-pending fragment.
		for i, f := range frags {
			c.mu.Lock()
			needed := c.pending[keys[i]] && !c.closed
			c.mu.Unlock()
			if needed {
				if attempt == 0 {
					c.opts.metrics.packetsSent.Inc()
				} else {
					c.opts.metrics.retransmits.Inc()
				}
				c.transmit(f, dst)
			}
		}
		// Wait up to one RTO for the acks.
		deadline := time.Now().Add(c.opts.rto)
		c.mu.Lock()
		for !c.closed && c.anyPending(keys) && time.Now().Before(deadline) {
			c.waitWithDeadline(deadline)
		}
		if c.closed {
			cleanup()
			c.mu.Unlock()
			return ErrClosed
		}
		if !c.anyPending(keys) {
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	cleanup()
	c.mu.Unlock()
	return fmt.Errorf("%w: to rank %d after %d attempts", ErrSendFailed, dst, c.opts.maxRetries)
}

// anyPending reports whether any key is still unacked. Caller holds mu.
func (c *Conn) anyPending(keys []fragKey) bool {
	for _, k := range keys {
		if c.pending[k] {
			return true
		}
	}
	return false
}

// waitWithDeadline waits on the condition variable, waking itself at the
// deadline. Caller holds mu.
func (c *Conn) waitWithDeadline(deadline time.Time) {
	d := time.Until(deadline)
	if d <= 0 {
		return
	}
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.cond.Wait()
	timer.Stop()
}

// transmit writes one packet, honoring the loss-injection test hook for
// data packets.
func (c *Conn) transmit(p *packet, dst int) {
	if p.kind == kindData && c.opts.lossEveryNth >= 2 {
		c.mu.Lock()
		c.dataPkt++
		drop := c.dataPkt%c.opts.lossEveryNth == 0
		c.mu.Unlock()
		if drop {
			return
		}
	}
	c.sock.WriteToUDP(p.encode(), c.peers[dst])
}

// reader receives datagrams and dispatches data and ack packets until the
// socket closes.
func (c *Conn) reader() {
	buf := make([]byte, 65536)
	for {
		n, _, err := c.sock.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		p, err := decodePacket(buf[:n])
		if err != nil {
			continue // ignore malformed datagrams
		}
		if p.dst != c.rank || p.src < 0 || p.src >= c.size {
			continue
		}
		switch p.kind {
		case kindAck:
			c.mu.Lock()
			k := fragKey{p.src, p.seq, p.fragIdx}
			if c.pending[k] {
				delete(c.pending, k)
				c.cond.Broadcast()
			}
			c.mu.Unlock()
		case kindData:
			c.handleData(p)
		}
	}
}

// handleData acknowledges and reassembles a data fragment, delivering
// complete messages in per-sender order.
func (c *Conn) handleData(p *packet) {
	// Always acknowledge, even duplicates (the original ack may be lost).
	ack := &packet{kind: kindAck, src: c.rank, dst: p.src, seq: p.seq, fragIdx: p.fragIdx}
	c.sock.WriteToUDP(ack.encode(), c.peers[p.src])

	c.mu.Lock()
	defer c.mu.Unlock()
	if p.seq < c.expected[p.src] {
		return // already delivered
	}
	r, ok := c.reasm[p.src][p.seq]
	if !ok {
		if p.fragCount == 0 || p.fragCount > 1<<20 {
			return
		}
		r = &reasm{fragCount: p.fragCount, frags: make([][]byte, p.fragCount)}
		c.reasm[p.src][p.seq] = r
	}
	if p.fragIdx >= r.fragCount || r.frags[p.fragIdx] != nil {
		return // duplicate or inconsistent fragment
	}
	r.frags[p.fragIdx] = append([]byte(nil), p.payload...)
	r.got++
	// Deliver in-order complete messages.
	for {
		next, ok := c.reasm[p.src][c.expected[p.src]]
		if !ok || next.got != next.fragCount {
			break
		}
		total := 0
		for _, f := range next.frags {
			total += len(f)
		}
		msg := make([]byte, 0, total)
		for _, f := range next.frags {
			msg = append(msg, f...)
		}
		delete(c.reasm[p.src], c.expected[p.src])
		c.expected[p.src]++
		c.inbox[p.src] = append(c.inbox[p.src], msg)
	}
	c.cond.Broadcast()
}

// Recv blocks for the next message from src, up to the receive timeout.
func (c *Conn) Recv(src int) ([]byte, error) {
	if err := rankCheck(src, c.size); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.opts.recvTimeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, ErrClosed
		}
		if q := c.inbox[src]; len(q) > 0 {
			msg := q[0]
			c.inbox[src] = q[1:]
			c.opts.metrics.msgsRecv.Inc()
			c.opts.metrics.bytesRecv.Add(int64(len(msg)))
			return msg, nil
		}
		if c.err != nil {
			return nil, c.err
		}
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("%w: from rank %d", ErrTimeout, src)
		}
		c.waitWithDeadline(deadline)
	}
}

// Flush blocks until every send queued so far has been acknowledged (or a
// delivery has failed).
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.err != nil {
			return c.err
		}
		if c.closed {
			return ErrClosed
		}
		if c.inflight == 0 {
			return nil
		}
		c.waitWithDeadline(time.Now().Add(10 * time.Millisecond))
	}
}

// Close shuts the endpoint down: pending sends are abandoned and blocked
// receivers return ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.cond.Broadcast()
	c.mu.Unlock()
	err := c.sock.Close()
	c.sending.Wait()
	return err
}
