package mmps

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is the UDP transport: a real socket per endpoint, with per-stream
// sequencing, per-fragment acknowledgment, retransmission, and
// fragmentation/reassembly providing reliable in-order delivery over lossy
// datagrams.
type Conn struct {
	rank  int
	size  int
	opts  options
	sock  *net.UDPConn
	peers []*net.UDPAddr
	done  chan struct{} // closed by Close

	epoch time.Time // world creation, the injector's time origin

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on delivery, ack, error, close
	closed bool
	// sendErr[dst] is the latest unreported delivery failure to dst. It is
	// scoped per destination so one dead peer cannot poison traffic with
	// the survivors, and it is one-shot: Send(dst) and Flush report it and
	// clear it, after which the stream to dst may be retried.
	sendErr []error

	nextSeq  []uint32            // per destination: next message sequence
	expected []uint32            // per source: next message to deliver
	reasm    []map[uint32]*reasm // per source: partial/out-of-order messages
	inbox    []([][]byte)        // per source: delivered messages
	pending  map[fragKey]bool    // fragments transmitted but not yet acked
	inflight int                 // messages handed to senders, not finished

	sendq   []chan *[]byte // per destination: queued outbound messages (pooled copies)
	sending sync.WaitGroup
	dataPkt int // outgoing data packet counter (loss injection)
}

type fragKey struct {
	dst     int
	seq     uint32
	fragIdx uint32
}

type reasm struct {
	fragCount uint32
	got       uint32
	// frags holds pooled per-fragment copies (see bufPool); each box is
	// recycled when the message is assembled or the entry is abandoned.
	frags    []*[]byte
	lastFrag time.Time // arrival time of the most recent fragment
}

// assembleLocked concatenates a complete reasm's fragments into a fresh
// message buffer (delivered to the application, so never pooled) and
// recycles the fragment boxes. Caller holds mu.
func (r *reasm) assembleLocked() []byte {
	total := 0
	for _, f := range r.frags {
		total += len(*f)
	}
	msg := make([]byte, 0, total)
	for _, f := range r.frags {
		msg = append(msg, *f...)
	}
	for i, f := range r.frags {
		putBuf(f)
		r.frags[i] = nil
	}
	return msg
}

// discardLocked recycles whatever fragments an abandoned reasm collected.
// Caller holds mu.
func (r *reasm) discardLocked() {
	for i, f := range r.frags {
		if f != nil {
			putBuf(f)
			r.frags[i] = nil
		}
	}
}

// NewUDPWorld creates n endpoints on loopback UDP sockets, fully meshed.
func NewUDPWorld(n int, opts ...Option) ([]*Conn, error) {
	if n <= 0 || n > 65535 {
		return nil, fmt.Errorf("mmps: world size %d", n)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	conns := make([]*Conn, n)
	addrs := make([]*net.UDPAddr, n)
	epoch := time.Now()
	for i := 0; i < n; i++ {
		sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for j := 0; j < i; j++ {
				conns[j].sock.Close()
			}
			return nil, fmt.Errorf("mmps: binding endpoint %d: %w", i, err)
		}
		conns[i] = &Conn{rank: i, size: n, opts: o, sock: sock, done: make(chan struct{}), epoch: epoch}
		addrs[i] = sock.LocalAddr().(*net.UDPAddr)
	}
	for _, c := range conns {
		c.peers = addrs
		c.cond = sync.NewCond(&c.mu)
		c.sendErr = make([]error, n)
		c.nextSeq = make([]uint32, n)
		c.expected = make([]uint32, n)
		c.reasm = make([]map[uint32]*reasm, n)
		c.inbox = make([][][]byte, n)
		c.pending = make(map[fragKey]bool)
		c.sendq = make([]chan *[]byte, n)
		for d := 0; d < n; d++ {
			c.reasm[d] = make(map[uint32]*reasm)
			c.sendq[d] = make(chan *[]byte, 64)
			c.sending.Add(1)
			go c.sender(d)
		}
		go c.reader()
	}
	return conns, nil
}

// Rank returns the endpoint's rank.
func (c *Conn) Rank() int { return c.rank }

// Size returns the world size.
func (c *Conn) Size() int { return c.size }

// LocalAddr returns the endpoint's UDP address.
func (c *Conn) LocalAddr() *net.UDPAddr { return c.sock.LocalAddr().(*net.UDPAddr) }

// Send queues data for reliable in-order delivery to dst and returns
// immediately (the paper's asynchronous send). Delivery failures surface on
// a later Send, Recv, Flush, or Close.
func (c *Conn) Send(dst int, data []byte) error {
	if err := rankCheck(dst, c.size); err != nil {
		return err
	}
	if len(data) > c.opts.maxMessage {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(data))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	if err := c.sendErr[dst]; err != nil {
		c.sendErr[dst] = nil
		c.mu.Unlock()
		return err
	}
	c.inflight++
	c.mu.Unlock()

	// Pooled copy: Send's contract is that the caller keeps ownership of
	// data, and the copy dies inside deliverReliably (encodeTo copies the
	// payload again into the datagram buffer), so the sender recycles it.
	cp := getBuf(len(data))
	copy(*cp, data)
	select {
	case c.sendq[dst] <- cp:
		c.opts.metrics.msgsSent.Inc()
		c.opts.metrics.bytesSent.Add(int64(len(data)))
		return nil
	case <-c.done:
		putBuf(cp)
		c.mu.Lock()
		c.inflight--
		c.mu.Unlock()
		return ErrClosed
	}
}

// sender performs reliable delivery of queued messages to one destination,
// preserving stream order.
func (c *Conn) sender(dst int) {
	defer c.sending.Done()
	for {
		select {
		case bp := <-c.sendq[dst]:
			err := c.deliverReliably(dst, *bp)
			putBuf(bp)
			c.mu.Lock()
			c.inflight--
			if err != nil && c.sendErr[dst] == nil && !c.closed {
				c.sendErr[dst] = err
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		case <-c.done:
			return
		}
	}
}

// deliverReliably fragments one message, transmits, and retransmits unacked
// fragments every RTO until all are acknowledged or retries run out.
func (c *Conn) deliverReliably(dst int, data []byte) error {
	mtu := c.opts.mtu
	fragCount := (len(data) + mtu - 1) / mtu
	if fragCount == 0 {
		fragCount = 1
	}

	c.mu.Lock()
	seq := c.nextSeq[dst]
	c.nextSeq[dst]++
	keys := make([]fragKey, fragCount)
	for i := range keys {
		keys[i] = fragKey{dst, seq, uint32(i)}
		c.pending[keys[i]] = true
	}
	c.mu.Unlock()

	frags := make([]*packet, fragCount)
	for i := 0; i < fragCount; i++ {
		lo := i * mtu
		hi := lo + mtu
		if hi > len(data) {
			hi = len(data)
		}
		frags[i] = &packet{
			kind: kindData, src: c.rank, dst: dst, seq: seq,
			fragIdx: uint32(i), fragCount: uint32(fragCount),
			payload: data[lo:hi],
		}
	}

	cleanup := func() {
		for _, k := range keys {
			delete(c.pending, k)
		}
	}
	for attempt := 0; attempt <= c.opts.maxRetries; attempt++ {
		// Transmit every still-pending fragment.
		for i, f := range frags {
			c.mu.Lock()
			needed := c.pending[keys[i]] && !c.closed
			c.mu.Unlock()
			if needed {
				if attempt == 0 {
					c.opts.metrics.packetsSent.Inc()
				} else {
					c.opts.metrics.retransmits.Inc()
				}
				c.transmit(f, dst)
			}
		}
		// Wait up to one RTO for the acks.
		deadline := time.Now().Add(c.opts.rto)
		c.mu.Lock()
		for !c.closed && c.anyPending(keys) && time.Now().Before(deadline) {
			c.waitWithDeadline(deadline)
		}
		if c.closed {
			cleanup()
			c.mu.Unlock()
			return ErrClosed
		}
		if !c.anyPending(keys) {
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
	}
	c.mu.Lock()
	cleanup()
	c.mu.Unlock()
	return fmt.Errorf("%w: to rank %d after %d attempts", ErrSendFailed, dst, c.opts.maxRetries)
}

// anyPending reports whether any key is still unacked. Caller holds mu.
func (c *Conn) anyPending(keys []fragKey) bool {
	for _, k := range keys {
		if c.pending[k] {
			return true
		}
	}
	return false
}

// waitWithDeadline waits on the condition variable, waking itself at the
// deadline. Caller holds mu.
func (c *Conn) waitWithDeadline(deadline time.Time) {
	d := time.Until(deadline)
	if d <= 0 {
		return
	}
	timer := time.AfterFunc(d, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	c.cond.Wait()
	timer.Stop()
}

// transmit writes one packet, honoring the loss-injection test hook for
// data packets and, when the world has a fault injector, the injected
// per-packet fate (drop, delay, duplicate). Faults apply below the
// reliability layer — acks included — so they surface only as
// retransmissions and latency.
func (c *Conn) transmit(p *packet, dst int) {
	if p.kind == kindData && c.opts.lossEveryNth >= 2 {
		c.mu.Lock()
		c.dataPkt++
		drop := c.dataPkt%c.opts.lossEveryNth == 0
		c.mu.Unlock()
		if drop {
			return
		}
	}
	bp := getBuf(headerSize + len(p.payload))
	buf := *bp
	p.encodeTo(buf)
	if inj := c.opts.injector; inj != nil {
		nowMs := float64(time.Since(c.epoch)) / float64(time.Millisecond)
		fate := inj.Packet(c.rank, dst, nowMs)
		if fate.Drop {
			putBuf(bp)
			return
		}
		write := func() { c.sock.WriteToUDP(buf, c.peers[dst]) }
		if fate.Duplicate {
			write()
		}
		if fate.DelayMs > 0 {
			// The deferred closure still aliases the pooled buffer: recycle
			// it only after the delayed write fires, or the pool could hand
			// the memory to another packet and corrupt this one mid-flight.
			time.AfterFunc(time.Duration(fate.DelayMs*float64(time.Millisecond)), func() {
				write()
				putBuf(bp)
			})
			return
		}
		write()
		putBuf(bp)
		return
	}
	c.sock.WriteToUDP(buf, c.peers[dst])
	putBuf(bp)
}

// reader receives datagrams and dispatches data and ack packets until the
// socket closes.
func (c *Conn) reader() {
	buf := make([]byte, 65536)
	for {
		n, _, err := c.sock.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		p, err := decodePacket(buf[:n])
		if err != nil {
			continue // ignore malformed datagrams
		}
		if p.dst != c.rank || p.src < 0 || p.src >= c.size {
			continue
		}
		switch p.kind {
		case kindAck:
			c.mu.Lock()
			k := fragKey{p.src, p.seq, p.fragIdx}
			if c.pending[k] {
				delete(c.pending, k)
				c.cond.Broadcast()
			}
			c.mu.Unlock()
		case kindData:
			c.handleData(p)
		}
	}
}

// handleData acknowledges and reassembles a data fragment, delivering
// complete messages in per-sender order.
func (c *Conn) handleData(p *packet) {
	// Always acknowledge, even duplicates (the original ack may be lost).
	// Acks route through transmit so injected faults apply to them too.
	ack := &packet{kind: kindAck, src: c.rank, dst: p.src, seq: p.seq, fragIdx: p.fragIdx}
	c.transmit(ack, p.src)

	c.mu.Lock()
	defer c.mu.Unlock()
	if p.seq < c.expected[p.src] {
		return // already delivered
	}
	r, ok := c.reasm[p.src][p.seq]
	if !ok {
		if p.fragCount == 0 || p.fragCount > 1<<20 {
			return
		}
		r = &reasm{fragCount: p.fragCount, frags: make([]*[]byte, p.fragCount)}
		c.reasm[p.src][p.seq] = r
	}
	if p.fragIdx >= r.fragCount || r.frags[p.fragIdx] != nil {
		return // duplicate or inconsistent fragment
	}
	fb := getBuf(len(p.payload))
	copy(*fb, p.payload)
	r.frags[p.fragIdx] = fb
	r.got++
	r.lastFrag = time.Now()
	// Deliver in-order complete messages.
	for {
		next, ok := c.reasm[p.src][c.expected[p.src]]
		if !ok || next.got != next.fragCount {
			break
		}
		msg := next.assembleLocked()
		delete(c.reasm[p.src], c.expected[p.src])
		c.expected[p.src]++
		c.inbox[p.src] = append(c.inbox[p.src], msg)
	}
	c.cond.Broadcast()
}

// Recv blocks for the next message from src, up to the receive timeout.
// When the timeout expires, reassembly state from src that made no
// progress during the whole wait is discarded before ErrTimeout is
// returned, so a retried Recv starts from a clean stream instead of
// splicing stale fragments of an abandoned message with fresh ones.
func (c *Conn) Recv(src int) ([]byte, error) {
	if err := rankCheck(src, c.size); err != nil {
		return nil, err
	}
	start := time.Now()
	deadline := start.Add(c.opts.recvTimeout)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, ErrClosed
		}
		if q := c.inbox[src]; len(q) > 0 {
			msg := q[0]
			c.inbox[src] = q[1:]
			c.opts.metrics.msgsRecv.Inc()
			c.opts.metrics.bytesRecv.Add(int64(len(msg)))
			return msg, nil
		}
		if !time.Now().Before(deadline) {
			if c.resetStaleLocked(src, start) && len(c.inbox[src]) > 0 {
				continue // the reset unblocked a complete later message
			}
			return nil, fmt.Errorf("%w: from rank %d", ErrTimeout, src)
		}
		c.waitWithDeadline(deadline)
	}
}

// resetStaleLocked discards partial reassembly state from src that
// received no fragment since the given instant (the sender abandoned the
// message, e.g. after exhausting retries) and, when the head of the
// stream was among the casualties, advances delivery past the gap so
// complete later messages become receivable. It reports whether anything
// changed. Safe only because abandoned fragments are never retransmitted:
// the receive timeout (seconds) dwarfs the RTO (milliseconds), so a
// message whose fragments are all older than a full receive window is
// dead. Caller holds mu.
func (c *Conn) resetStaleLocked(src int, since time.Time) bool {
	m := c.reasm[src]
	changed := false
	for seq, r := range m {
		if r.got < r.fragCount && r.lastFrag.Before(since) {
			r.discardLocked()
			delete(m, seq)
			changed = true
		}
	}
	if len(m) == 0 {
		return changed
	}
	// Skip the expected counter forward to the oldest surviving message;
	// anything before it is a gap no sender will fill.
	min := uint32(0)
	first := true
	for seq := range m {
		if first || seq < min {
			min, first = seq, false
		}
	}
	if min > c.expected[src] {
		c.expected[src] = min
		changed = true
	}
	// Drain in-order complete messages now receivable.
	for {
		next, ok := m[c.expected[src]]
		if !ok || next.got != next.fragCount {
			break
		}
		msg := next.assembleLocked()
		delete(m, c.expected[src])
		c.expected[src]++
		c.inbox[src] = append(c.inbox[src], msg)
		changed = true
	}
	if changed {
		c.cond.Broadcast()
	}
	return changed
}

// RecvAny blocks for the next message from any peer, scanning inboxes in
// ascending rank order. d <= 0 means the world's receive timeout.
func (c *Conn) RecvAny(d time.Duration) (int, []byte, error) {
	if d <= 0 {
		d = c.opts.recvTimeout
	}
	start := time.Now()
	deadline := start.Add(d)
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return -1, nil, ErrClosed
		}
		for src := 0; src < c.size; src++ {
			if q := c.inbox[src]; len(q) > 0 {
				msg := q[0]
				c.inbox[src] = q[1:]
				c.opts.metrics.msgsRecv.Inc()
				c.opts.metrics.bytesRecv.Add(int64(len(msg)))
				return src, msg, nil
			}
		}
		if !time.Now().Before(deadline) {
			delivered := false
			for src := 0; src < c.size; src++ {
				if c.resetStaleLocked(src, start) && len(c.inbox[src]) > 0 {
					delivered = true
				}
			}
			if delivered {
				continue
			}
			return -1, nil, ErrTimeout
		}
		c.waitWithDeadline(deadline)
	}
}

// Flush blocks until every send queued so far has been acknowledged or
// failed, then reports (and clears) the first pending per-destination
// delivery failure, if any.
func (c *Conn) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return ErrClosed
		}
		if c.inflight == 0 {
			for dst, err := range c.sendErr {
				if err != nil {
					c.sendErr[dst] = nil
					return err
				}
			}
			return nil
		}
		c.waitWithDeadline(time.Now().Add(10 * time.Millisecond))
	}
}

// Close shuts the endpoint down: pending sends are abandoned and blocked
// receivers return ErrClosed.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.cond.Broadcast()
	c.mu.Unlock()
	err := c.sock.Close()
	c.sending.Wait()
	return err
}
