package mmps

import (
	"bytes"
	"testing"
)

// FuzzDecodePacket hardens the wire decoder: arbitrary datagrams must
// never panic, and valid packets must round-trip.
func FuzzDecodePacket(f *testing.F) {
	good := &packet{kind: kindData, src: 1, dst: 2, seq: 3, fragIdx: 0, fragCount: 1, payload: []byte("hi")}
	f.Add(good.encode())
	f.Add([]byte{})
	f.Add([]byte("MMPS garbage that is long enough to look like a header....."))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodePacket(data)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to the identical bytes.
		if !bytes.Equal(p.encode(), data) {
			t.Fatalf("decode/encode not idempotent for %x", data)
		}
	})
}
