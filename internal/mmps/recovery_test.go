package mmps

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"netpart/internal/faults"
)

// TestRecvTimeoutResetsStaleReassembly is the regression test for the
// partial-reassembly bug: a message abandoned mid-flight (its second
// fragment lost with retries exhausted) used to wedge the stream, so a
// retried Recv would wait forever on the gap — and if the sender later
// reused the buffer, stale fragments could splice with fresh ones. After
// the timeout the receiver must discard the stale partial and deliver the
// next complete message.
func TestRecvTimeoutResetsStaleReassembly(t *testing.T) {
	conns, err := NewUDPWorld(2,
		WithRecvTimeout(200*time.Millisecond),
		WithRTO(10*time.Millisecond),
		WithMaxRetries(0), // one shot per fragment: a lost fragment is abandoned
		WithMTU(8),
		WithLossEveryNth(2), // drops data packets 2, 4, ...
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	a, b := conns[0], conns[1]

	// Message 1 fragments into packets 1 and 2; packet 2 is dropped and
	// never retransmitted, so message 1 is abandoned.
	msg1 := bytes.Repeat([]byte{0xAA}, 16)
	if err := a.Send(1, msg1); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); !errors.Is(err, ErrSendFailed) {
		t.Fatalf("Flush after abandoned message = %v, want ErrSendFailed", err)
	}
	// Message 2 is a single fragment (packet 3) and arrives intact.
	msg2 := []byte("freshmsg")
	if err := a.Send(1, msg2); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush after message 2: %v", err)
	}

	// The receive must not return msg1's stale fragments in any form; once
	// the stream head times out, the stale state is discarded and msg2 is
	// delivered.
	got, err := b.Recv(0)
	if err != nil {
		t.Fatalf("Recv after reassembly reset: %v", err)
	}
	if !bytes.Equal(got, msg2) {
		t.Fatalf("Recv = %q, want %q (stale fragments spliced?)", got, msg2)
	}
	// The stream is clean afterwards: nothing further is pending.
	if _, err := b.Recv(0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv on drained stream = %v, want ErrTimeout", err)
	}
}

// TestSendErrorScopedToPeer verifies a delivery failure to one dead peer
// does not poison communication with the survivors (the old behavior kept
// one sticky world-level error).
func TestSendErrorScopedToPeer(t *testing.T) {
	conns, err := NewUDPWorld(3,
		WithRecvTimeout(2*time.Second),
		WithRTO(5*time.Millisecond),
		WithMaxRetries(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	conns[2].Close() // rank 2 dies

	if err := conns[0].Send(2, []byte("into the void")); err != nil {
		t.Fatalf("Send enqueue: %v", err)
	}
	if err := conns[0].Flush(); !errors.Is(err, ErrSendFailed) {
		t.Fatalf("Flush = %v, want ErrSendFailed", err)
	}
	// The error was consumed; rank 0 and rank 1 still talk both ways.
	if err := conns[0].Send(1, []byte("hello")); err != nil {
		t.Fatalf("Send to survivor after peer death: %v", err)
	}
	got, err := conns[1].Recv(0)
	if err != nil || string(got) != "hello" {
		t.Fatalf("Recv from survivor = %q, %v", got, err)
	}
	if err := conns[0].Flush(); err != nil {
		t.Fatalf("second Flush = %v, want nil (error is one-shot)", err)
	}
}

// TestRecvAny exercises the any-source receive on both transports.
func TestRecvAny(t *testing.T) {
	build := map[string]func(t *testing.T) []Transport{
		"local": func(t *testing.T) []Transport {
			eps, err := NewLocalWorld(3, WithRecvTimeout(time.Second))
			if err != nil {
				t.Fatal(err)
			}
			return []Transport{eps[0], eps[1], eps[2]}
		},
		"udp": func(t *testing.T) []Transport {
			eps, err := NewUDPWorld(3, WithRecvTimeout(time.Second))
			if err != nil {
				t.Fatal(err)
			}
			return []Transport{eps[0], eps[1], eps[2]}
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			world := mk(t)
			defer func() {
				for _, ep := range world {
					ep.Close()
				}
			}()
			if err := world[1].Send(0, []byte("from-1")); err != nil {
				t.Fatal(err)
			}
			if err := world[2].Send(0, []byte("from-2")); err != nil {
				t.Fatal(err)
			}
			seen := map[int]string{}
			for i := 0; i < 2; i++ {
				src, msg, err := world[0].RecvAny(time.Second)
				if err != nil {
					t.Fatal(err)
				}
				seen[src] = string(msg)
			}
			if seen[1] != "from-1" || seen[2] != "from-2" {
				t.Fatalf("RecvAny saw %v", seen)
			}
			if _, _, err := world[0].RecvAny(20 * time.Millisecond); !errors.Is(err, ErrTimeout) {
				t.Fatalf("RecvAny on empty inbox = %v, want ErrTimeout", err)
			}
		})
	}
}

// TestInjectorDropsAreMasked checks that probabilistic packet drops below
// the reliability layer never change delivered content or order, on both
// transports.
func TestInjectorDropsAreMasked(t *testing.T) {
	sched := faults.MustParse("drop:0.3;dup:0.2")
	for name, mk := range map[string]func(inj faults.Injector) ([]Transport, error){
		"local": func(inj faults.Injector) ([]Transport, error) {
			eps, err := NewLocalWorld(2, WithRecvTimeout(5*time.Second), WithRTO(2*time.Millisecond), WithInjector(inj))
			if err != nil {
				return nil, err
			}
			return []Transport{eps[0], eps[1]}, nil
		},
		"udp": func(inj faults.Injector) ([]Transport, error) {
			eps, err := NewUDPWorld(2, WithRecvTimeout(5*time.Second), WithRTO(2*time.Millisecond), WithInjector(inj))
			if err != nil {
				return nil, err
			}
			return []Transport{eps[0], eps[1]}, nil
		},
	} {
		t.Run(name, func(t *testing.T) {
			world, err := mk(faults.NewEngine(sched, 42, nil))
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				for _, ep := range world {
					ep.Close()
				}
			}()
			const msgs = 40
			go func() {
				for i := 0; i < msgs; i++ {
					world[0].Send(1, []byte{byte(i), byte(i ^ 0x5A)})
				}
			}()
			for i := 0; i < msgs; i++ {
				got, err := world[1].Recv(0)
				if err != nil {
					t.Fatalf("message %d: %v", i, err)
				}
				if len(got) != 2 || got[0] != byte(i) || got[1] != byte(i^0x5A) {
					t.Fatalf("message %d corrupted or reordered: %v", i, got)
				}
			}
		})
	}
}

// TestLocalInjectorPreservesOrderUnderDelay delays most packets and checks
// per-sender ordering survives.
func TestLocalInjectorPreservesOrderUnderDelay(t *testing.T) {
	inj := faults.NewEngine(faults.MustParse("delay:0.8,4"), 7, nil)
	eps, err := NewLocalWorld(2, WithRecvTimeout(5*time.Second), WithInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	const msgs = 30
	for i := 0; i < msgs; i++ {
		if err := eps[0].Send(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		got, err := eps[1].Recv(0)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, got[0])
		}
	}
}

// TestPartitionHeals drives a link partition window: messages across the
// cut stall during the window and flow after it heals.
func TestPartitionHeals(t *testing.T) {
	inj := faults.NewEngine(faults.MustParse("part:1@0-120"), 1, nil)
	eps, err := NewLocalWorld(2, WithRecvTimeout(5*time.Second), WithRTO(5*time.Millisecond), WithInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	if err := eps[0].Send(1, []byte("cross-cut")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := eps[1].Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "cross-cut" {
		t.Fatalf("got %q", got)
	}
	if waited := time.Since(start); waited < 80*time.Millisecond {
		t.Fatalf("message crossed an open partition after %v", waited)
	}
}

// TestPooledBuffersSurviveDupDelay is the aliasing guard for the pooled
// packet buffers (pool.go): duplicated and delayed packet fates keep
// encoded datagrams alive after transmit returns, and a recycled buffer
// overwritten by a later packet would corrupt them mid-flight. Large
// multi-fragment messages with distinctive per-message contents stream in
// both directions over a small MTU while the pool churns; every delivered
// payload must arrive intact, in order, on both ranks.
func TestPooledBuffersSurviveDupDelay(t *testing.T) {
	sched := faults.MustParse("dup:0.4;delay:0.4,3")
	inj := faults.NewEngine(sched, 42, nil)
	eps, err := NewUDPWorld(2,
		WithRecvTimeout(5*time.Second), WithRTO(3*time.Millisecond),
		WithMTU(64), WithInjector(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()

	const msgs = 30
	const msgLen = 300 // 5 fragments at MTU 64
	payload := func(sender, i int) []byte {
		b := make([]byte, msgLen)
		for j := range b {
			b[j] = byte(sender*131 + i*7 + j)
		}
		return b
	}
	errc := make(chan error, 2)
	for _, sender := range []int{0, 1} {
		sender := sender
		go func() {
			for i := 0; i < msgs; i++ {
				if err := eps[sender].Send(1-sender, payload(sender, i)); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
	}
	for _, receiver := range []int{0, 1} {
		for i := 0; i < msgs; i++ {
			got, err := eps[receiver].Recv(1 - receiver)
			if err != nil {
				t.Fatalf("rank %d message %d: %v", receiver, i, err)
			}
			want := payload(1-receiver, i)
			if !bytes.Equal(got, want) {
				t.Fatalf("rank %d message %d corrupted: got %x... want %x...",
					receiver, i, got[:8], want[:8])
			}
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
