// Package mmps is a reliable heterogeneous message-passing library over UDP
// datagrams, modeled on the MMPS system the paper's implementation uses
// [Grimshaw, Mack, Strayer 1990]. It provides the communication verbs the
// paper's SPMD cycles need — asynchronous sends and blocking, sender-
// addressed receives — with reliability (acknowledgment and retransmission),
// fragmentation/reassembly for messages larger than one datagram, in-order
// per-sender delivery, and network-byte-order coercion helpers for
// exchanging typed data between hosts of different formats.
//
// Two interchangeable transports implement the same interface: a real UDP
// transport (NewUDPWorld) and an in-memory channel transport (NewLocalWorld)
// for deterministic tests of higher layers.
//
// As a transport, mmps measures real time by design (retransmission timers,
// fault-injection timestamps, latency benchmarks); the //netpart:wallclock
// directive below declares that boundary so interprocedural determinism
// analysis treats its timing results as data rather than as hidden
// nondeterminism leaking into deterministic callers.
//
//netpart:wallclock
package mmps

import (
	"errors"
	"fmt"
	"time"

	"netpart/internal/faults"
	"netpart/internal/obs"
)

// Transport is the communication endpoint handed to each SPMD task.
// Implementations must allow Send and Recv to be called concurrently from
// the owning task's goroutine; Send is asynchronous (it returns once the
// message is queued for reliable delivery).
type Transport interface {
	// Rank returns this endpoint's task rank.
	Rank() int
	// Size returns the number of endpoints in the world.
	Size() int
	// Send queues data for reliable, in-order delivery to dst. The buffer
	// is copied; the caller may reuse it immediately.
	Send(dst int, data []byte) error
	// Recv blocks until the next message from src arrives, honoring the
	// world's receive timeout.
	Recv(src int) ([]byte, error)
	// RecvAny blocks until a message from any peer arrives, returning the
	// sender's rank with the message. d bounds the wait; d <= 0 means the
	// world's receive timeout. Fault-tolerant runtimes use it to service
	// control traffic from non-neighbors.
	RecvAny(d time.Duration) (int, []byte, error)
	// Close releases the endpoint. Further operations fail.
	Close() error
}

// Common transport errors.
var (
	ErrClosed      = errors.New("mmps: endpoint closed")
	ErrTimeout     = errors.New("mmps: receive timed out")
	ErrBadRank     = errors.New("mmps: rank out of range")
	ErrSendFailed  = errors.New("mmps: send not acknowledged")
	ErrTooLarge    = errors.New("mmps: message exceeds maximum size")
	errBadPacket   = errors.New("mmps: malformed packet")
	errWrongWorld  = errors.New("mmps: packet for a different world")
	errStaleSender = errors.New("mmps: packet from unknown rank")
)

// Option configures a world.
type Option func(*options)

type options struct {
	recvTimeout  time.Duration
	rto          time.Duration
	maxRetries   int
	mtu          int
	maxMessage   int
	lossEveryNth int // test hook: drop every Nth outgoing data packet
	injector     faults.Injector
	metrics      transportMetrics
}

// Metric names WithMetrics records. The world's endpoints share one
// registry, so counts are whole-world totals.
const (
	MetricMsgsSent    = "mmps.msgs_sent"
	MetricMsgsRecv    = "mmps.msgs_received"
	MetricBytesSent   = "mmps.bytes_sent"
	MetricBytesRecv   = "mmps.bytes_received"
	MetricPacketsSent = "mmps.packets_sent" // UDP data packets, first transmissions
	MetricRetransmits = "mmps.retransmits"  // UDP data packets re-sent after an RTO
)

// transportMetrics holds pre-resolved instruments; the zero value (all nil
// instruments) records nothing, so un-instrumented worlds pay only nil
// checks.
type transportMetrics struct {
	msgsSent    *obs.Counter
	msgsRecv    *obs.Counter
	bytesSent   *obs.Counter
	bytesRecv   *obs.Counter
	packetsSent *obs.Counter
	retransmits *obs.Counter
}

func defaultOptions() options {
	return options{
		recvTimeout: 30 * time.Second,
		rto:         20 * time.Millisecond,
		maxRetries:  200,
		mtu:         1400,
		maxMessage:  64 << 20,
	}
}

// WithRecvTimeout bounds how long Recv blocks before returning ErrTimeout.
func WithRecvTimeout(d time.Duration) Option {
	return func(o *options) { o.recvTimeout = d }
}

// WithRTO sets the retransmission timeout.
func WithRTO(d time.Duration) Option {
	return func(o *options) { o.rto = d }
}

// WithMaxRetries bounds retransmissions per fragment before Send reports
// failure.
func WithMaxRetries(n int) Option {
	return func(o *options) { o.maxRetries = n }
}

// WithMTU sets the maximum datagram payload; larger messages fragment.
func WithMTU(n int) Option {
	return func(o *options) { o.mtu = n }
}

// WithLossEveryNth makes the UDP transport deliberately drop every nth
// outgoing data packet (n ≥ 2), exercising the retransmission path. Test
// hook; zero disables.
func WithLossEveryNth(n int) Option {
	return func(o *options) { o.lossEveryNth = n }
}

// WithInjector routes every packet through a fault injector. Faults are
// applied below the reliability layer: dropped packets are retransmitted,
// delayed packets arrive late, duplicated packets are deduplicated — so
// application results are unchanged, only timing and retransmission
// behavior shift. Nil disables.
func WithInjector(inj faults.Injector) Option {
	return func(o *options) { o.injector = inj }
}

// WithMetrics records transport activity (the Metric* names) into r: message
// and byte counts on both transports, plus packet and retransmission counts
// on the UDP transport. Nil r disables.
func WithMetrics(r *obs.Registry) Option {
	return func(o *options) {
		o.metrics = transportMetrics{
			msgsSent:    r.Counter(MetricMsgsSent),
			msgsRecv:    r.Counter(MetricMsgsRecv),
			bytesSent:   r.Counter(MetricBytesSent),
			bytesRecv:   r.Counter(MetricBytesRecv),
			packetsSent: r.Counter(MetricPacketsSent),
			retransmits: r.Counter(MetricRetransmits),
		}
	}
}

// rankCheck validates a peer rank.
func rankCheck(rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("%w: %d of %d", ErrBadRank, rank, size)
	}
	return nil
}
