package experiments

import (
	"fmt"
	"strings"

	"netpart/internal/core"
	"netpart/internal/model"
	"netpart/internal/stencil"
	"netpart/internal/trace"
)

// Fig3Point is one point of the Fig. 3 curve: estimated and simulated
// per-cycle time as processors are added along the heuristic's path
// (Sparc2s first, then IPCs).
type Fig3Point struct {
	Procs          int
	P1, P2         int
	EstimatedTcMs  float64
	SimulatedTcMs  float64
	Region         string // "A" (too coarse), "B" (too fine), or "min"
	EstimateErrPct float64
}

// Fig3 sweeps p = 1..12 for the given problem size and variant, producing
// the canonical T_c-versus-processors curve with its single minimum
// (region A to the left, region B to the right).
func Fig3(e *Env, n int, v stencil.Variant) ([]Fig3Point, error) {
	est, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, v, Iterations))
	if err != nil {
		return nil, err
	}
	// The curve varies one cluster count per point (p1 up to 6, then p2), so
	// all estimates come from a single delta evaluator up front — the
	// parallel fan-out below only runs the simulations.
	pts := make([]Fig3Point, e.Net.TotalProcs())
	ests := make([]core.Estimate, len(pts))
	delta, err := est.BeginDelta(PaperConfig(6, 0))
	if err != nil {
		return nil, err
	}
	for i := range pts {
		p := i + 1
		var pe core.Estimate
		if p <= 6 {
			pe, err = delta.Probe(0, p)
		} else {
			pe, err = delta.Probe(1, p-6)
		}
		if err != nil {
			return nil, err
		}
		ests[i] = pe.Detach()
	}
	err = ParallelFor(e.workers(), len(pts), func(i int) error {
		env := e.Clone()
		p := i + 1
		p1, p2 := p, 0
		if p1 > 6 {
			p1, p2 = 6, p-6
		}
		cfg := PaperConfig(p1, p2)
		pe := ests[i]
		vec, err := core.Decompose(env.Net, cfg, n, model.OpFloat)
		if err != nil {
			return err
		}
		res, err := stencil.RunSim(env.Net, cfg, vec, v, n, Iterations)
		if err != nil {
			return err
		}
		simTc := res.ElapsedMs / Iterations
		pts[i] = Fig3Point{
			Procs: p, P1: p1, P2: p2,
			EstimatedTcMs:  pe.TcMs,
			SimulatedTcMs:  simTc,
			EstimateErrPct: trace.DeviationPct(pe.TcMs, simTc),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Mark regions around the simulated minimum.
	var min trace.MinTracker
	for i, pt := range pts {
		min.Observe(i, pt.SimulatedTcMs)
	}
	for i := range pts {
		switch {
		case i < min.Index():
			pts[i].Region = "A"
		case i == min.Index():
			pts[i].Region = "min"
		default:
			pts[i].Region = "B"
		}
	}
	return pts, nil
}

// RenderFig3 prints the curve with an ASCII bar per point.
func RenderFig3(pts []Fig3Point, n int, v stencil.Variant) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — T_c vs processors (N=%d, %s); region A left of the minimum, B right\n", n, v)
	t := NewTextTable("p", "config", "Tc_est(ms)", "Tc_sim(ms)", "err%", "region", "curve")
	maxTc := 0.0
	for _, p := range pts {
		if p.SimulatedTcMs > maxTc {
			maxTc = p.SimulatedTcMs
		}
	}
	for _, p := range pts {
		bar := strings.Repeat("#", 1+int(40*p.SimulatedTcMs/maxTc))
		t.Add(fmt.Sprint(p.Procs), fmt.Sprintf("%d+%d", p.P1, p.P2),
			fmt.Sprintf("%.2f", p.EstimatedTcMs), fmt.Sprintf("%.2f", p.SimulatedTcMs),
			fmt.Sprintf("%+.1f", p.EstimateErrPct), p.Region, bar)
	}
	b.WriteString(t.String())
	return b.String()
}

// Fig2 reproduces the partition-vector example of Fig. 2: a 20×20 matrix
// decomposed 1-D across four processors, with the partition vector and the
// block-row ranges each processor receives.
func Fig2(e *Env) (string, error) {
	cfg := PaperConfig(4, 0)
	vec, err := core.Decompose(e.Net, cfg, 20, model.OpFloat)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 2 — partition vector for a 20x20 matrix, 1-D over 4 processors\n")
	b.WriteString(fmt.Sprintf("partition vector A = %v (sum %d)\n", vec, vec.Sum()))
	off := 0
	for rank, a := range vec {
		b.WriteString(fmt.Sprintf("  p%d: rows %2d..%2d  %s\n", rank+1, off, off+a-1, strings.Repeat("▤", a)))
		off += a
	}
	return b.String(), nil
}

// Fig1 renders the example heterogeneous network of Fig. 1: three clusters
// on three ethernet segments joined by one router.
func Fig1() (string, error) {
	net := model.Figure1Network()
	if err := net.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 1 — heterogeneous network: clusters on private-bandwidth segments joined by a router\n\n")
	for _, seg := range net.Segments {
		var host *model.Cluster
		for _, c := range net.Clusters {
			if c.Segment == seg.Name {
				host = c
			}
		}
		nodes := strings.TrimSuffix(strings.Repeat("[]-", host.Procs), "-")
		b.WriteString(fmt.Sprintf("  %-8s ═══ %s  (%s ×%d, %.1f µs/flop, %s, manager: %s/0)\n",
			seg.Name, nodes, host.Arch, host.Procs, host.FloatOpTime*1000, host.Format, host.Name))
		b.WriteString("      ║\n")
	}
	b.WriteString(fmt.Sprintf("   [%s]  joins %v, %.4f ms/byte transit\n",
		net.Router.Name, net.Router.Segments, net.Router.PerByteMs))
	return b.String(), nil
}
