package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel experiment engine. Experiments decompose into
// independent units (one simulator run, one search, one jitter level), and
// ParallelFor fans those units out over a bounded worker pool while keeping
// the output deterministic: every unit writes only to its own index-addressed
// slot, and the caller assembles results in serial order afterward. With
// Jobs=1 the engine degenerates to the plain serial loop, and because the
// simulator runs in virtual time and the estimators are deterministic, the
// rendered output is byte-identical at every worker count.
//
// Workers never share estimator state: each unit builds its own estimator or
// clones one with (*core.Estimator).Clone, and Env itself is read-only for
// the duration of an experiment (Clone documents that contract).

// Jobs returns the worker count a zero value selects: GOMAXPROCS.
func defaultJobs() int { return runtime.GOMAXPROCS(0) }

// workers resolves the Env's Jobs setting to a concrete worker count.
func (e *Env) workers() int {
	if e.Jobs > 0 {
		return e.Jobs
	}
	return defaultJobs()
}

// Clone returns a copy of the Env for a worker goroutine. The copy is
// shallow: Net, Paper, Fitted, and Fits are shared, which is safe because
// experiments treat them as read-only (nothing in this package or in the
// estimator mutates a Network or a cost.Table after NewEnv returns).
func (e *Env) Clone() *Env {
	cp := *e
	return &cp
}

// ParallelFor runs fn(i) for every i in [0, n) on at most `workers`
// goroutines. Results must be written by index into caller-owned slots, so
// the outcome does not depend on scheduling. If any fn returns an error,
// ParallelFor returns the one with the lowest index — the same error a
// serial loop would have hit first — after all started units finish (unlike
// a serial loop it does not cancel the remaining units; experiment units
// are short and side-effect-free, so draining them is simpler than
// plumbing cancellation through the simulator).
//
// workers <= 1 (or n <= 1) runs the plain serial loop on the calling
// goroutine, including its early-exit-on-error behavior.
func ParallelFor(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
