package experiments

import (
	"strings"
	"testing"

	"netpart/internal/stencil"
)

// sharedEnv caches the benchmarked environment across tests in this
// package (commbench runs once).
var sharedEnv *Env

func env(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		e, err := NewEnv()
		if err != nil {
			t.Fatal(err)
		}
		sharedEnv = e
	}
	return sharedEnv
}

func TestTable1WithPaperConstants(t *testing.T) {
	e := env(t)
	rows, err := Table1(e, e.Paper)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	matches := 0
	for _, r := range rows {
		if r.P1 == r.PaperP1 && r.P2 == r.PaperP2 {
			matches++
		}
		if r.P2 > 0 && r.P1 != 6 {
			t.Errorf("N=%d %s: IPCs used before Sparc2s exhausted: (%d,%d)", r.N, r.Variant, r.P1, r.P2)
		}
		if r.PredictedTcMs <= 0 {
			t.Errorf("N=%d %s: Tc = %v", r.N, r.Variant, r.PredictedTcMs)
		}
	}
	// The paper's own constants reproduce most rows; the known
	// disagreements (N=60 STEN-1, N=300 rows, N=1200 STEN-1) stem from the
	// paper's internal inconsistencies documented in EXPERIMENTS.md.
	if matches < 4 {
		t.Errorf("only %d/8 rows match the published Table 1", matches)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "STEN-1") || !strings.Contains(out, "match") {
		t.Error("render output malformed")
	}
}

func TestTable1WithFittedConstants(t *testing.T) {
	e := env(t)
	rows, err := Table1(e, e.Fitted)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.P1 < 1 {
			t.Errorf("N=%d %s: no processors chosen", r.N, r.Variant)
		}
		// The paper's qualitative claim: IPCs are used only once the
		// problem is large enough.
		if r.N == 60 && r.P2 > 0 {
			t.Errorf("N=60 should not use IPCs; got (%d,%d)", r.P1, r.P2)
		}
		if r.N == 1200 && r.P2 == 0 {
			t.Errorf("N=1200 should use IPCs; got (%d,%d)", r.P1, r.P2)
		}
	}
}

func TestTable2PredictionsNearMinimum(t *testing.T) {
	e := env(t)
	rows, err := Table2(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The reproduced headline claim: the algorithm's choice is within
		// a few percent of the measured minimum for every problem size.
		// (N=300 STEN-1 sits on a nearly flat region — the paper's own
		// measured gap there was 337 vs 338 ms — so allow up to 10%.)
		if r.PredictedGapPct > 10 {
			t.Errorf("N=%d %s: prediction %.1f%% above measured minimum", r.N, r.Variant, r.PredictedGapPct)
		}
		// STEN-2 must beat STEN-1 at the measured minimum (Table 2).
		if r.EqualDecompMs > 0 {
			var min66 float64
			for _, c := range r.Cells {
				if c.P1 == 6 && c.P2 == 6 {
					min66 = c.ElapsedMs
				}
			}
			if r.EqualDecompMs <= min66 {
				t.Errorf("N=%d %s: equal decomposition (%v) not worse than Eq. 3 (%v)",
					r.N, r.Variant, r.EqualDecompMs, min66)
			}
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "*") || !strings.Contains(out, "p") {
		t.Error("render lacks min/prediction markers")
	}
}

func TestTable2STEN2Faster(t *testing.T) {
	e := env(t)
	rows, err := Table2(e)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[int]map[stencil.Variant]Table2Row{}
	for _, r := range rows {
		if byKey[r.N] == nil {
			byKey[r.N] = map[stencil.Variant]Table2Row{}
		}
		byKey[r.N][r.Variant] = r
	}
	for _, n := range ProblemSizes {
		s1, s2 := byKey[n][stencil.STEN1], byKey[n][stencil.STEN2]
		for i := range s1.Cells {
			if s1.Cells[i].P1+s1.Cells[i].P2 < 2 {
				continue // no communication to overlap
			}
			if s2.Cells[i].ElapsedMs > s1.Cells[i].ElapsedMs*1.001 {
				t.Errorf("N=%d config %d+%d: STEN-2 (%v) slower than STEN-1 (%v)",
					n, s1.Cells[i].P1, s1.Cells[i].P2, s2.Cells[i].ElapsedMs, s1.Cells[i].ElapsedMs)
			}
		}
	}
}

func TestFig3CurveShape(t *testing.T) {
	e := env(t)
	pts, err := Fig3(e, 600, stencil.STEN1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("points = %d", len(pts))
	}
	// Region A exists (adding processors helps at first)...
	if pts[0].SimulatedTcMs <= pts[len(pts)-1].SimulatedTcMs && pts[0].Region != "A" {
		t.Error("no region A found")
	}
	var minSeen bool
	for _, p := range pts {
		if p.Region == "min" {
			minSeen = true
		}
		if p.EstimatedTcMs <= 0 || p.SimulatedTcMs <= 0 {
			t.Errorf("p=%d: nonpositive Tc", p.Procs)
		}
	}
	if !minSeen {
		t.Error("no minimum marked")
	}
	// The model should track the simulator reasonably well overall.
	for _, p := range pts {
		if p.EstimateErrPct > 60 || p.EstimateErrPct < -60 {
			t.Errorf("p=%d: estimate off by %.1f%%", p.Procs, p.EstimateErrPct)
		}
	}
	out := RenderFig3(pts, 600, stencil.STEN1)
	if !strings.Contains(out, "#") {
		t.Error("render lacks curve bars")
	}
}

func TestCostFitComparison(t *testing.T) {
	e := env(t)
	rows, router, err := CostFit(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no fits")
	}
	for _, r := range rows {
		if r.R2 < 0.99 {
			t.Errorf("%s/%s: poor fit R²=%v", r.Cluster, r.Topology, r.R2)
		}
	}
	if router.Ms <= 0 {
		t.Error("no router cost fitted")
	}
	out := RenderCostFit(rows, router)
	if !strings.Contains(out, "router") {
		t.Error("render lacks router line")
	}
}

func TestOverheadWithinBound(t *testing.T) {
	e := env(t)
	rows, err := Overhead(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Slope bisection pays ≤ 2 evaluations per halving: allow 3x the
		// K·log2(P) guide plus a constant.
		if float64(r.Evaluations) > 3*r.Bound+6 {
			t.Errorf("N=%d %s: %d evaluations vs bound %.1f", r.N, r.Variant, r.Evaluations, r.Bound)
		}
	}
	if out := RenderOverhead(rows); !strings.Contains(out, "evaluations") {
		t.Error("render malformed")
	}
}

func TestGaussExperiment(t *testing.T) {
	e := env(t)
	g, err := Gauss(e, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !g.MatchesSeq {
		t.Error("distributed elimination diverged from sequential")
	}
	if g.ResidualMax > 1e-9 {
		t.Errorf("residual %v", g.ResidualMax)
	}
	if g.Chosen.Total() >= 12 {
		t.Errorf("broadcast app should choose a small configuration, got %v", g.Chosen)
	}
	if !g.ChosenBeatsAll {
		t.Errorf("chosen %v (%.1f ms) lost to the full network (%.1f ms)", g.Chosen, g.ElapsedMs, g.FullNetworkMs)
	}
	if out := RenderGauss(g); !strings.Contains(out, "broadcast") {
		t.Error("render malformed")
	}
}

func TestAblations(t *testing.T) {
	e := env(t)
	rows, err := Ablations(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("ablations = %d, want 5", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["A1 heuristic-vs-oracle"]; r.Speedup < 1-1e-9 {
		t.Errorf("oracle worse than heuristic: %+v", r)
	}
	if r := byName["A2 bisect-vs-scan"]; r.Speedup < 1 {
		t.Errorf("bisection should use fewer evaluations: %+v", r)
	}
	if r := byName["A3 eq3-vs-equal"]; r.Speedup <= 1 {
		t.Errorf("Eq. 3 should beat equal decomposition: %+v", r)
	}
	if r := byName["A4 overlap"]; r.Speedup <= 1 {
		t.Errorf("STEN-2 should beat STEN-1: %+v", r)
	}
	if r := byName["A5 static-vs-dynamic"]; r.Speedup <= 1 {
		t.Errorf("dynamic should win under fluctuation: %+v", r)
	}
	if out := RenderAblations(rows); !strings.Contains(out, "A3") {
		t.Error("render malformed")
	}
}

func TestFigures(t *testing.T) {
	e := env(t)
	f2, err := Fig2(e)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f2, "partition vector") || !strings.Contains(f2, "p4") {
		t.Errorf("Fig2 output:\n%s", f2)
	}
	f1, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1, "router") || !strings.Contains(f1, "RS-6000") {
		t.Errorf("Fig1 output:\n%s", f1)
	}
}

func TestTextTable(t *testing.T) {
	tt := NewTextTable("a", "bb")
	tt.Add("xxx")
	tt.Addf("%d %d", 1, 2)
	out := tt.String()
	if !strings.Contains(out, "xxx") || !strings.Contains(out, "bb") {
		t.Errorf("table output:\n%s", out)
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	e := env(t)
	r, err := Adaptive(e, 200, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact {
		t.Error("adaptive run not bit-exact")
	}
	if r.AdaptiveMs >= r.StaticMs {
		t.Errorf("adaptive %v not better than static %v", r.AdaptiveMs, r.StaticMs)
	}
	if r.Rebalances == 0 || r.MigratedRows == 0 {
		t.Errorf("no rebalancing recorded: %+v", r)
	}
	if out := RenderAdaptive(r); !strings.Contains(out, "bit-exact") {
		t.Error("render malformed")
	}
}

func TestMetasystemExperiment(t *testing.T) {
	r, err := Metasystem(1200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chosen.Clusters[0] != "paragon" || r.Chosen.Counts[0] == 0 {
		t.Errorf("multicomputer unused: %v", r.Chosen)
	}
	if r.PredictedTcMs >= r.WorkstationTc {
		t.Errorf("metasystem Tc %v not better than workstations %v", r.PredictedTcMs, r.WorkstationTc)
	}
	if out := RenderMetasystem(r); !strings.Contains(out, "multicomputer") {
		t.Error("render malformed")
	}
}

func TestStartupExperiment(t *testing.T) {
	e := env(t)
	rows, err := Startup(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeasStartupMs <= 0 || r.EstStartupMs <= 0 {
			t.Errorf("N=%d: startup est %v meas %v", r.N, r.EstStartupMs, r.MeasStartupMs)
		}
		ratio := r.MeasStartupMs / r.EstStartupMs
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("N=%d: estimate off by %vx", r.N, ratio)
		}
		if r.BreakEvenCycles <= 0 {
			t.Errorf("N=%d: break-even %d", r.N, r.BreakEvenCycles)
		}
	}
	if out := RenderStartup(rows); !strings.Contains(out, "amortize") {
		t.Error("render malformed")
	}
}

func TestExtendedAblations(t *testing.T) {
	e := env(t)
	rows, err := ExtendedAblations(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A7: the global search must be at least as good as the heuristic.
	last := rows[len(rows)-1]
	if last.Speedup < 1-1e-9 {
		t.Errorf("global search worse than heuristic: %+v", last)
	}
}

func TestImplSelectExperiment(t *testing.T) {
	e := env(t)
	rows, err := ImplSelect(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.OneDTcMs <= 0 || r.TwoDTcMs <= 0 || r.OneDSimMs <= 0 || r.TwoDSimMs <= 0 {
			t.Errorf("N=%d: degenerate row %+v", r.N, r)
		}
		if r.Winner != "1-D" && r.Winner != "2-D" {
			t.Errorf("N=%d: winner %q", r.N, r.Winner)
		}
	}
	if out := RenderImplSelect(rows); !strings.Contains(out, "sim winner") {
		t.Error("render malformed")
	}
}

func TestParticlesExperiment(t *testing.T) {
	e := env(t)
	r, err := Particles(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact {
		t.Error("particle runs not bit-exact")
	}
	if r.WeightedMs >= r.UniformMs {
		t.Errorf("weighted %v not better than uniform %v on clumped density", r.WeightedMs, r.UniformMs)
	}
	if out := RenderParticles(r); !strings.Contains(out, "density-weighted") {
		t.Error("render malformed")
	}
}

func TestSelectionCostExperiment(t *testing.T) {
	e := env(t)
	r, err := SelectionCost(e, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Both strategies must land on near-minimal configurations...
	if r.PartitionPickMs > r.BenchmarkPickMs*1.1 {
		t.Errorf("partitioner's pick (%v ms) much worse than benchmarked pick (%v ms)",
			r.PartitionPickMs, r.BenchmarkPickMs)
	}
	// ...but the benchmarked strategy pays orders of magnitude more.
	if r.BenchmarkProbeMs < 3*r.BenchmarkPickMs {
		t.Errorf("probe cost %v should dwarf one run %v", r.BenchmarkProbeMs, r.BenchmarkPickMs)
	}
	if r.PartitionEvals > 20 {
		t.Errorf("partitioner used %d evaluations", r.PartitionEvals)
	}
	if out := RenderSelectionCost(r); !strings.Contains(out, "probing") {
		t.Error("render malformed")
	}
}

func TestNoiseExperiment(t *testing.T) {
	e := env(t)
	rows, err := Noise(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Jitter != 0 || rows[0].FitR2 < 0.999999 {
		t.Errorf("noiseless fit should be exact: %+v", rows[0])
	}
	for _, r := range rows {
		if r.FitR2 < 0.99 {
			t.Errorf("jitter %v: fit collapsed to R²=%v", r.Jitter, r.FitR2)
		}
		if r.GapPct > 10 {
			t.Errorf("jitter %v: choice %v sits %.1f%% above the minimum", r.Jitter, r.Chosen, r.GapPct)
		}
	}
	if out := RenderNoise(rows); !strings.Contains(out, "jitter") {
		t.Error("render malformed")
	}
}

func TestFaultTolExperiment(t *testing.T) {
	e := env(t)
	r, err := FaultTol(e, 96, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exact {
		t.Fatal("recovered grid does not match the sequential reference")
	}
	if r.VectorAfter[r.CrashRank] != 0 {
		t.Fatalf("crashed rank still owns rows after recovery: %v", r.VectorAfter)
	}
	if r.VectorAfter.Sum() != r.N {
		t.Fatalf("post-recovery vector sums to %d, want %d", r.VectorAfter.Sum(), r.N)
	}
	if r.RecoveryLatencyMs <= 0 {
		t.Fatalf("recovery latency = %v ms", r.RecoveryLatencyMs)
	}
	if r.RollbackCycle >= r.CrashCycle {
		t.Fatalf("rollback cycle %d not before crash cycle %d", r.RollbackCycle, r.CrashCycle)
	}
	if out := RenderFaultTol(r); !strings.Contains(out, "recovery latency") {
		t.Error("render malformed")
	}
}
