package experiments

import (
	"strings"
	"testing"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/repart"
	"netpart/internal/stencil"
)

// TestAdaptivePlanGolden is the repartitioning engine's determinism
// guarantee: RunSimAdaptive under a fixed slowdown schedule produces a
// byte-identical sequence of repart plans — rendered through Plan.String,
// which excludes wall-clock fields — across repeated runs and at any
// worker-pool width, and every run's grid stays bit-exact with the
// sequential kernel. The simulator runs in virtual time, the planner is a
// pure function, and rank 0 alone decides, so scheduling cannot leak into
// the decision stream.
func TestAdaptivePlanGolden(t *testing.T) {
	e := env(t)
	const n, iters = 256, 24
	cfg := PaperConfig(4, 0)
	vec, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	// A shifting hotspot: the loaded processor changes every 6 iterations,
	// so successive plans move rows in both directions.
	slowdown := func(rank, iter int) float64 {
		if rank == (iter/6)%4 {
			return 3
		}
		return 1
	}
	want := stencil.Sequential(stencil.NewGrid(n), iters)
	run := func() string {
		res, err := stencil.RunSimAdaptive(e.Net, cfg, vec, stencil.STEN1, n, iters,
			stencil.AdaptiveOptions{
				RebalanceEvery: 4,
				Slowdown:       slowdown,
				Planner: repart.PlannerConfig{
					Mig:           cost.Migration{PerMoveMs: 0.05, PerByteMs: 1e-6, RowBytes: float64(stencil.BytesPerPoint * n)},
					HorizonCycles: 8,
				},
			})
		if err != nil {
			t.Error(err)
			return ""
		}
		if !gridsMatch(res.Grid, want) {
			t.Error("adaptive grid diverged from the sequential kernel")
		}
		lines := make([]string, len(res.Plans))
		for i, p := range res.Plans {
			lines[i] = p.String()
		}
		return strings.Join(lines, "\n")
	}

	golden := run()
	if golden == "" {
		t.Fatal("no plan transcript")
	}
	if !strings.Contains(golden, "moved=") || strings.Count(golden, "\n") < 3 {
		t.Fatalf("suspiciously small transcript:\n%s", golden)
	}
	changed := false
	for _, line := range strings.Split(golden, "\n") {
		if !strings.Contains(line, "moved=0") {
			changed = true
		}
	}
	if !changed {
		t.Fatalf("schedule produced no actual migration:\n%s", golden)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		const replicas = 4
		outs := make([]string, replicas)
		if err := ParallelFor(workers, replicas, func(i int) error {
			outs[i] = run()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, got := range outs {
			if got != golden {
				t.Fatalf("workers=%d replica %d diverged:\n--- golden ---\n%s\n--- got ---\n%s",
					workers, i, golden, got)
			}
		}
	}
}
