package experiments

import (
	"fmt"
	"math"

	"netpart/internal/balance"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/gauss"
	"netpart/internal/model"
	"netpart/internal/stencil"
)

// CostFitRow compares one fitted constant set against the paper's.
type CostFitRow struct {
	Cluster        string
	Topology       string
	Fitted         cost.Params
	Paper          cost.Params
	R2             float64
	HavePaperModel bool
}

// CostFit reproduces the Section 6.0 cost-constant table: the fitted Eq. 1
// models from benchmarking the simulator, next to the paper's published
// constants where they exist (1-D only).
func CostFit(e *Env) ([]CostFitRow, cost.PerByte, error) {
	var rows []CostFitRow
	for _, f := range e.Fits {
		row := CostFitRow{
			Cluster: f.Cluster, Topology: f.Topology,
			Fitted: f.Params, R2: f.Quality.R2,
		}
		if p, err := e.Paper.Comm(f.Cluster, f.Topology); err == nil {
			row.Paper = p
			row.HavePaperModel = true
		}
		rows = append(rows, row)
	}
	router := e.Fitted.Router(model.Sparc2Cluster, model.IPCCluster)
	return rows, router, nil
}

// RenderCostFit prints the comparison.
func RenderCostFit(rows []CostFitRow, router cost.PerByte) string {
	t := NewTextTable("cluster", "topology", "c1", "c2", "c3", "c4", "R2", "paper:c2", "paper:c4")
	for _, r := range rows {
		pc2, pc4 := "-", "-"
		if r.HavePaperModel {
			pc2 = fmt.Sprintf("%.4g", r.Paper.C2)
			pc4 = fmt.Sprintf("%.4g", r.Paper.C4)
		}
		t.Add(r.Cluster, r.Topology,
			fmt.Sprintf("%.4g", r.Fitted.C1), fmt.Sprintf("%.4g", r.Fitted.C2),
			fmt.Sprintf("%.4g", r.Fitted.C3), fmt.Sprintf("%.4g", r.Fitted.C4),
			fmt.Sprintf("%.4f", r.R2), pc2, pc4)
	}
	return t.String() +
		fmt.Sprintf("router: fitted %.6f ms/byte (paper 0.0006)\n", router.Ms)
}

// OverheadRow records the search cost for one problem instance.
type OverheadRow struct {
	N           int
	Variant     stencil.Variant
	Evaluations int
	// Bound is the paper's K·log2(P) guide value.
	Bound float64
}

// Overhead verifies the O(K·log2 P) claim of Section 6.0 by counting
// Eq. 3/6 recomputations for each problem size.
func Overhead(e *Env) ([]OverheadRow, error) {
	k := float64(len(e.Net.Clusters))
	p := float64(e.Net.TotalProcs())
	var rows []OverheadRow
	for _, n := range ProblemSizes {
		for _, v := range []stencil.Variant{stencil.STEN1, stencil.STEN2} {
			est, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, v, Iterations))
			if err != nil {
				return nil, err
			}
			res, err := core.Partition(est)
			if err != nil {
				return nil, err
			}
			rows = append(rows, OverheadRow{
				N: n, Variant: v,
				Evaluations: res.Evaluations,
				Bound:       k * math.Log2(p),
			})
		}
	}
	return rows, nil
}

// RenderOverhead prints the overhead table.
func RenderOverhead(rows []OverheadRow) string {
	t := NewTextTable("N", "variant", "evaluations", "K·log2(P)")
	for _, r := range rows {
		t.Add(fmt.Sprint(r.N), r.Variant.String(),
			fmt.Sprint(r.Evaluations), fmt.Sprintf("%.1f", r.Bound))
	}
	return t.String()
}

// GaussResult is the E8 experiment: partitioning and executing the
// non-uniform Gaussian elimination application.
type GaussResult struct {
	N              int
	Chosen         cost.Config
	PredictedTcMs  float64
	ElapsedMs      float64
	ResidualMax    float64
	MatchesSeq     bool
	StencilChoice  cost.Config // same-N stencil choice, for contrast
	FullNetworkMs  float64     // elapsed when forced onto all 12 processors
	ChosenBeatsAll bool
}

// Gauss runs the partitioning method on the elimination annotations, then
// executes the chosen configuration and (for contrast) the full network.
func Gauss(e *Env, n int) (*GaussResult, error) {
	est, err := core.NewEstimator(e.Net, e.Fitted, gauss.Annotations(n))
	if err != nil {
		return nil, err
	}
	res, err := core.Partition(est)
	if err != nil {
		return nil, err
	}
	s := gauss.NewSystem(n, 1994)
	want, err := gauss.Sequential(s)
	if err != nil {
		return nil, err
	}
	run, err := gauss.RunSim(e.Net, res.Config, res.Vector, s)
	if err != nil {
		return nil, err
	}
	matches := true
	for i := range want {
		if run.X[i] != want[i] {
			matches = false
			break
		}
	}
	out := &GaussResult{
		N: n, Chosen: res.Config,
		PredictedTcMs: res.TcMs,
		ElapsedMs:     run.ElapsedMs,
		ResidualMax:   gauss.Residual(s, run.X),
		MatchesSeq:    matches,
	}
	// Contrast: the stencil of the same size uses more of the network.
	sEst, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, stencil.STEN1, Iterations))
	if err != nil {
		return nil, err
	}
	sRes, err := core.Partition(sEst)
	if err != nil {
		return nil, err
	}
	out.StencilChoice = sRes.Config
	// Force the full network.
	full := PaperConfig(6, 6)
	vec, err := core.Decompose(e.Net, full, n, model.OpFloat)
	if err != nil {
		return nil, err
	}
	fullRun, err := gauss.RunSim(e.Net, full, vec, s)
	if err != nil {
		return nil, err
	}
	out.FullNetworkMs = fullRun.ElapsedMs
	out.ChosenBeatsAll = out.ElapsedMs <= fullRun.ElapsedMs
	return out, nil
}

// RenderGauss prints the E8 summary.
func RenderGauss(g *GaussResult) string {
	return fmt.Sprintf(`Gaussian elimination with partial pivoting (N=%d, broadcast topology)
  chosen configuration : %v  (predicted Tc %.2f ms)
  simulated elapsed    : %.1f ms   (all 12 processors: %.1f ms; chosen wins: %v)
  matches sequential   : %v  (max residual %.2e)
  stencil contrast     : same-size stencil chooses %v — the bandwidth-limited
                         broadcast topology admits far less parallelism
`, g.N, g.Chosen, g.PredictedTcMs, g.ElapsedMs, g.FullNetworkMs, g.ChosenBeatsAll,
		g.MatchesSeq, g.ResidualMax, g.StencilChoice)
}

// AblationRow is one ablation comparison.
type AblationRow struct {
	Name    string
	Detail  string
	BaseMs  float64
	AltMs   float64
	Speedup float64 // BaseMs / AltMs
}

// Ablations runs the design-choice studies of DESIGN.md (A1-A5) at N=600.
// The five studies are independent, so the engine runs them as five units
// writing fixed row slots. A2 recomputes the bisection search A1 also runs
// (both are deterministic microsecond-scale cost-model walks), which keeps
// the units self-contained without changing any reported number.
func Ablations(e *Env) ([]AblationRow, error) {
	const n = 600
	units := []func(*Env) (AblationRow, error){
		ablationOracle, ablationScan, ablationDecomp, ablationOverlap, ablationDynamic,
	}
	rows := make([]AblationRow, len(units))
	err := ParallelFor(e.workers(), len(units), func(i int) error {
		row, err := units[i](e.Clone())
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ablationHeuristic runs the baseline locality-first search A1 and A2 share.
func ablationHeuristic(e *Env, n int) (core.Result, error) {
	est, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, stencil.STEN1, Iterations))
	if err != nil {
		return core.Result{}, err
	}
	return core.Partition(est)
}

// ablationOracle is A1: locality-first heuristic vs exhaustive oracle
// (estimated Tc).
func ablationOracle(e *Env) (AblationRow, error) {
	const n = 600
	heur, err := ablationHeuristic(e, n)
	if err != nil {
		return AblationRow{}, err
	}
	est2, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, stencil.STEN1, Iterations))
	if err != nil {
		return AblationRow{}, err
	}
	oracle, err := core.PartitionExhaustive(est2)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:   "A1 heuristic-vs-oracle",
		Detail: fmt.Sprintf("heuristic %v (%d evals) vs oracle %v (%d evals)", heur.Config, heur.Evaluations, oracle.Config, oracle.Evaluations),
		BaseMs: heur.TcMs, AltMs: oracle.TcMs, Speedup: heur.TcMs / oracle.TcMs,
	}, nil
}

// ablationScan is A2: bisection vs linear scan (search cost in evaluations).
func ablationScan(e *Env) (AblationRow, error) {
	const n = 600
	heur, err := ablationHeuristic(e, n)
	if err != nil {
		return AblationRow{}, err
	}
	est3, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, stencil.STEN1, Iterations))
	if err != nil {
		return AblationRow{}, err
	}
	lin, err := core.PartitionLinear(est3)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:   "A2 bisect-vs-scan",
		Detail: fmt.Sprintf("same choice %v; evaluations %d vs %d", lin.Config, heur.Evaluations, lin.Evaluations),
		BaseMs: float64(heur.Evaluations), AltMs: float64(lin.Evaluations),
		Speedup: float64(lin.Evaluations) / float64(heur.Evaluations),
	}, nil
}

// ablationDecomp is A3: Eq. 3 heterogeneous decomposition vs equal split
// on 6+6.
func ablationDecomp(e *Env) (AblationRow, error) {
	const n = 600
	cfg := PaperConfig(6, 6)
	bal, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
	if err != nil {
		return AblationRow{}, err
	}
	eq, err := balance.EqualVector(n, 12)
	if err != nil {
		return AblationRow{}, err
	}
	rBal, err := stencil.RunSim(e.Net, cfg, bal, stencil.STEN1, n, Iterations)
	if err != nil {
		return AblationRow{}, err
	}
	rEq, err := stencil.RunSim(e.Net, cfg, eq, stencil.STEN1, n, Iterations)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:   "A3 eq3-vs-equal",
		Detail: "STEN-1 on 6+6: Eq. 3 decomposition vs equal rows",
		BaseMs: rEq.ElapsedMs, AltMs: rBal.ElapsedMs, Speedup: rEq.ElapsedMs / rBal.ElapsedMs,
	}, nil
}

// ablationOverlap is A4: STEN-2 overlap vs STEN-1 at the STEN-2-chosen
// configuration.
func ablationOverlap(e *Env) (AblationRow, error) {
	const n = 600
	cfg := PaperConfig(6, 6)
	bal, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
	if err != nil {
		return AblationRow{}, err
	}
	r1, err := stencil.RunSim(e.Net, cfg, bal, stencil.STEN1, n, Iterations)
	if err != nil {
		return AblationRow{}, err
	}
	r2, err := stencil.RunSim(e.Net, cfg, bal, stencil.STEN2, n, Iterations)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:   "A4 overlap",
		Detail: "6+6: STEN-1 vs STEN-2 (border sends overlapped)",
		BaseMs: r1.ElapsedMs, AltMs: r2.ElapsedMs, Speedup: r1.ElapsedMs / r2.ElapsedMs,
	}, nil
}

// ablationDynamic is A5: static vs dynamic decomposition under load
// fluctuation.
func ablationDynamic(e *Env) (AblationRow, error) {
	init, err := balance.EqualVector(200, 4)
	if err != nil {
		return AblationRow{}, err
	}
	spec := balance.WorkloadSpec{
		Net: e.Net, Cfg: PaperConfig(4, 0), NumPDUs: 200,
		OpsPerPDU: 6000, Class: model.OpFloat,
		BorderBytes: 1200, BytesPerPDU: 2400, Cycles: 60,
		Slowdown: func(rank, cycle int) float64 {
			if rank == 2 && cycle >= 5 {
				return 4
			}
			return 1
		},
		Initial: init,
	}
	static, err := balance.Simulate(spec)
	if err != nil {
		return AblationRow{}, err
	}
	spec.RebalanceEvery = 5
	dynamic, err := balance.Simulate(spec)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:   "A5 static-vs-dynamic",
		Detail: fmt.Sprintf("rank 2 slowed 4x at cycle 5; dynamic rebalanced %dx, migrated %d PDUs", dynamic.Rebalances, dynamic.MigratedPDUs),
		BaseMs: static.ElapsedMs, AltMs: dynamic.ElapsedMs, Speedup: static.ElapsedMs / dynamic.ElapsedMs,
	}, nil
}

// RenderAblations prints the ablation table.
func RenderAblations(rows []AblationRow) string {
	t := NewTextTable("ablation", "base", "alternative", "ratio", "detail")
	for _, r := range rows {
		t.Add(r.Name, fmt.Sprintf("%.1f", r.BaseMs), fmt.Sprintf("%.1f", r.AltMs),
			fmt.Sprintf("%.2f", r.Speedup), r.Detail)
	}
	return t.String()
}
