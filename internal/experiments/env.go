// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6.0) on the simulated substrate, plus the ablations
// DESIGN.md calls out. Each experiment returns structured data and has a
// Render function producing the text table printed by cmd/experiments;
// bench_test.go at the repository root wraps each in a testing.B benchmark.
//
//netpart:deterministic
package experiments

import (
	"fmt"
	"strings"

	"netpart/internal/commbench"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/topo"
)

// Env is the shared experimental setup: the paper's testbed, the paper's
// published cost table, and a table fitted by benchmarking the simulator
// (the honest pipeline — the partitioner consults only fitted constants).
type Env struct {
	Net    *model.Network
	Paper  *cost.Table
	Fitted *cost.Table
	// Fits carries the commbench diagnostics behind Fitted.
	Fits []commbench.ClusterFit
	// Jobs bounds the worker pool the parallel experiment engine uses when
	// fanning out independent simulator runs (see runner.go). Zero means
	// GOMAXPROCS; 1 forces the serial path. Output is byte-identical at any
	// setting.
	Jobs int
}

// NewEnv builds the environment, running the offline benchmarking step.
func NewEnv() (*Env, error) {
	net := model.PaperTestbed()
	res, err := commbench.Run(net, []topo.Topology{topo.OneD{}, topo.Broadcast{}}, commbench.DefaultGrid())
	if err != nil {
		return nil, err
	}
	return &Env{
		Net:    net,
		Paper:  cost.PaperTable(),
		Fitted: res.Table,
		Fits:   res.Fits,
	}, nil
}

// PaperConfig builds a Sparc2/IPC configuration.
func PaperConfig(p1, p2 int) cost.Config {
	return cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{p1, p2},
	}
}

// Table2Configs are the seven measured configurations of Table 2.
var Table2Configs = []struct{ P1, P2 int }{
	{1, 0}, {2, 0}, {4, 0}, {6, 0}, {6, 2}, {6, 4}, {6, 6},
}

// ProblemSizes are the paper's four problem sizes.
var ProblemSizes = []int{60, 300, 600, 1200}

// Iterations matches the paper's Table 2 (10 iterations).
const Iterations = 10

// TextTable renders aligned columns for experiment output.
type TextTable struct {
	headers []string
	rows    [][]string
}

// NewTextTable creates a table with the given column headers.
func NewTextTable(headers ...string) *TextTable {
	return &TextTable{headers: headers}
}

// Add appends a row (cells beyond the header count are dropped; missing
// cells render empty).
func (t *TextTable) Add(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Addf appends a row of formatted cells.
func (t *TextTable) Addf(format string, args ...interface{}) {
	t.Add(strings.Fields(fmt.Sprintf(format, args...))...)
}

// String renders the table with right-padded columns.
func (t *TextTable) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
