package experiments

import (
	"fmt"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/stencil"
)

// Table1Row is one row of the reproduced Table 1: the partitioning
// algorithm's chosen configuration and partition vector for one problem
// size and variant, alongside the paper's published values.
type Table1Row struct {
	N       int
	Variant stencil.Variant
	// Chosen configuration and per-processor PDU counts.
	P1, P2, A1, A2 int
	// PredictedTcMs is the estimator's per-cycle time for the choice.
	PredictedTcMs float64
	// Evaluations is the number of Eq. 3/6 recomputations the search used.
	Evaluations int
	// Paper columns (Table 1 as published).
	PaperP1, PaperP2, PaperA1, PaperA2 int
}

// paperTable1 is Table 1 as published. Note two internal inconsistencies
// recorded in EXPERIMENTS.md: the N=60 row conflicts with Table 2's
// predicted-minimum asterisks, and the N=1200 A-columns do not satisfy
// Eq. 3 for the stated configuration.
var paperTable1 = map[int]map[stencil.Variant][4]int{
	60:   {stencil.STEN1: {1, 0, 60, 0}, stencil.STEN2: {2, 0, 30, 0}},
	300:  {stencil.STEN1: {6, 0, 50, 0}, stencil.STEN2: {6, 2, 43, 21}},
	600:  {stencil.STEN1: {6, 4, 75, 38}, stencil.STEN2: {6, 6, 67, 33}},
	1200: {stencil.STEN1: {6, 6, 171, 86}, stencil.STEN2: {6, 6, 171, 86}},
}

// Table1 runs the partitioning algorithm for every problem size and
// variant against the given cost table (e.Paper reproduces the paper's own
// model; e.Fitted uses the constants benchmarked from the simulator).
func Table1(e *Env, tbl *cost.Table) ([]Table1Row, error) {
	var rows []Table1Row
	for _, n := range ProblemSizes {
		for _, v := range []stencil.Variant{stencil.STEN1, stencil.STEN2} {
			est, err := core.NewEstimator(e.Net, tbl, stencil.Annotations(n, v, Iterations))
			if err != nil {
				return nil, err
			}
			res, err := core.Partition(est)
			if err != nil {
				return nil, fmt.Errorf("experiments: partition N=%d %s: %w", n, v, err)
			}
			row := Table1Row{
				N: n, Variant: v,
				P1: res.Config.Counts[0], P2: res.Config.Counts[1],
				PredictedTcMs: res.TcMs,
				Evaluations:   res.Evaluations,
			}
			if row.P1 > 0 {
				row.A1 = res.Vector[0]
			}
			if row.P2 > 0 {
				row.A2 = res.Vector[row.P1]
			}
			p := paperTable1[n][v]
			row.PaperP1, row.PaperP2, row.PaperA1, row.PaperA2 = p[0], p[1], p[2], p[3]
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable1 prints the reproduction next to the paper's values.
func RenderTable1(rows []Table1Row) string {
	t := NewTextTable("N", "variant", "P1", "P2", "A1", "A2", "Tc(ms)", "evals",
		"paper:P1", "P2", "A1", "A2", "match")
	for _, r := range rows {
		match := "yes"
		if r.P1 != r.PaperP1 || r.P2 != r.PaperP2 {
			match = "no"
		}
		t.Add(
			fmt.Sprint(r.N), r.Variant.String(),
			fmt.Sprint(r.P1), fmt.Sprint(r.P2), fmt.Sprint(r.A1), fmt.Sprint(r.A2),
			fmt.Sprintf("%.2f", r.PredictedTcMs), fmt.Sprint(r.Evaluations),
			fmt.Sprint(r.PaperP1), fmt.Sprint(r.PaperP2),
			fmt.Sprint(r.PaperA1), fmt.Sprint(r.PaperA2), match,
		)
	}
	return t.String()
}
