package experiments

import (
	"fmt"
	"strings"
	"time"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/faults"
	"netpart/internal/mmps"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/stencil"
)

// FaultTolResult measures the cost of surviving a node loss: the same
// STEN-2 run on the 12-rank paper testbed executed fault-free and with one
// node crashed mid-run, both over the live (goroutines + in-process
// transport) runtime with buddy checkpointing enabled.
type FaultTolResult struct {
	N, Iters   int
	CrashRank  int
	CrashCycle int
	// FaultFreeMs is the wall time of the run with no faults injected
	// (checkpointing still on, so its overhead is included).
	FaultFreeMs float64
	// RecoveredMs is the wall time of the run that lost a node and
	// recovered.
	RecoveredMs float64
	// RecoveryLatencyMs is the verdict-to-resume time of the recovery.
	RecoveryLatencyMs float64
	// RollbackCycle is the checkpoint cycle the survivors resumed from.
	RollbackCycle int
	// ReplayedCycles counts cycles recomputed because of the rollback.
	ReplayedCycles int64
	// DetectBudgetMs is the configured silence budget before a verdict.
	DetectBudgetMs float64
	// VectorBefore and VectorAfter are the partition vectors around the
	// recovery (After re-partitioned over the surviving 11 ranks).
	VectorBefore, VectorAfter core.Vector
	// Exact reports both grids bit-for-bit matching the sequential
	// reference.
	Exact bool
}

// FaultTol runs the fault-tolerance experiment. The crash strikes rank 3
// (a Sparc2) at the given cycle; survivors re-run the paper's partitioning
// algorithm over the reduced network and roll back to the last buddy
// checkpoint.
func FaultTol(e *Env, n, iters int) (*FaultTolResult, error) {
	const ranks, crashRank, ckptEvery = 12, 3, 8
	crashCycle := iters / 2
	detectTimeout := 100 * time.Millisecond
	const detectRetries = 2

	cfg := PaperConfig(6, 6)
	vec, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
	if err != nil {
		return nil, err
	}
	placement := make([]string, 0, ranks)
	for i := 0; i < 6; i++ {
		placement = append(placement, model.Sparc2Cluster)
	}
	for i := 0; i < 6; i++ {
		placement = append(placement, model.IPCCluster)
	}
	want := stencil.Sequential(stencil.NewGrid(n), iters)

	run := func(inj faults.Injector) (stencil.FTResult, *obs.Registry, error) {
		locals, err := mmps.NewLocalWorld(ranks)
		if err != nil {
			return stencil.FTResult{}, nil, err
		}
		defer func() {
			for _, l := range locals {
				l.Close()
			}
		}()
		world := make([]mmps.Transport, ranks)
		for i, l := range locals {
			world[i] = l
		}
		reg := obs.NewRegistry()
		res, err := stencil.RunLiveFT(world, vec, stencil.STEN2, n, iters, stencil.FTOptions{
			Injector:        inj,
			Repartition:     stencil.Repartitioner(e.Net, cost.PaperTable(), stencil.STEN2, n, iters, placement),
			CheckpointEvery: ckptEvery,
			DetectTimeout:   detectTimeout,
			DetectRetries:   detectRetries,
			Metrics:         reg,
		})
		return res, reg, err
	}

	clean, _, err := run(nil)
	if err != nil {
		return nil, fmt.Errorf("fault-free run: %w", err)
	}
	eng := faults.NewEngine(faults.Schedule{
		Crashes: []faults.Crash{{Rank: crashRank, Cycle: crashCycle}},
	}, 1, nil)
	crashed, reg, err := run(eng)
	if err != nil {
		return nil, fmt.Errorf("crashed run: %w", err)
	}
	if len(crashed.Events) == 0 {
		return nil, fmt.Errorf("crashed run recorded no recovery")
	}
	ev := crashed.Events[0]
	return &FaultTolResult{
		N: n, Iters: iters,
		CrashRank:         crashRank,
		CrashCycle:        crashCycle,
		FaultFreeMs:       float64(clean.Elapsed) / float64(time.Millisecond),
		RecoveredMs:       float64(crashed.Elapsed) / float64(time.Millisecond),
		RecoveryLatencyMs: ev.LatencyMs,
		RollbackCycle:     ev.RollbackCycle,
		ReplayedCycles:    reg.Counter(stencil.MetricFTReplayedC).Value(),
		DetectBudgetMs:    float64(detectTimeout) / float64(time.Millisecond) * float64(detectRetries+1),
		VectorBefore:      append(core.Vector(nil), vec...),
		VectorAfter:       ev.Vector,
		Exact:             gridsMatch(clean.Grid, want) && gridsMatch(crashed.Grid, want),
	}, nil
}

// RenderFaultTol formats the experiment for the CLI.
func RenderFaultTol(r *FaultTolResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "STEN-2, N=%d, %d iterations, 12 ranks (6 Sparc2 + 6 IPC), checkpoint every 8 cycles\n", r.N, r.Iters)
	fmt.Fprintf(&b, "crash injected  : rank %d at cycle %d (detect budget %.0f ms of silence)\n",
		r.CrashRank, r.CrashCycle, r.DetectBudgetMs)
	fmt.Fprintf(&b, "fault-free run  : %8.1f ms\n", r.FaultFreeMs)
	fmt.Fprintf(&b, "recovered run   : %8.1f ms (%.2fx fault-free)\n", r.RecoveredMs, r.RecoveredMs/r.FaultFreeMs)
	fmt.Fprintf(&b, "recovery latency: %8.1f ms verdict-to-resume\n", r.RecoveryLatencyMs)
	fmt.Fprintf(&b, "rollback        : resumed from cycle %d, %d rank-cycles replayed\n", r.RollbackCycle, r.ReplayedCycles)
	fmt.Fprintf(&b, "vector before   : %v\n", r.VectorBefore)
	fmt.Fprintf(&b, "vector after    : %v (rank %d retired)\n", r.VectorAfter, r.CrashRank)
	if r.Exact {
		fmt.Fprintf(&b, "verification    : both grids match the sequential reference bit-for-bit\n")
	} else {
		fmt.Fprintf(&b, "verification    : FAILED — grids diverge from the sequential reference\n")
	}
	return b.String()
}
