package experiments

import (
	"fmt"
	"math"

	"netpart/internal/balance"
	"netpart/internal/core"
	"netpart/internal/model"
	"netpart/internal/stencil"
	"netpart/internal/trace"
)

// Table2Cell is one measured configuration for one (N, variant).
type Table2Cell struct {
	P1, P2 int
	// ElapsedMs is the simulated elapsed time for 10 iterations.
	ElapsedMs float64
	// MeasuredMin marks the fastest of the measured configurations.
	MeasuredMin bool
	// Predicted marks the configuration the partitioning algorithm chose
	// (the asterisk of Table 2).
	Predicted bool
}

// Table2Row reproduces one row of Table 2.
type Table2Row struct {
	N       int
	Variant stencil.Variant
	Cells   []Table2Cell
	// EqualDecompMs is the 6+6 equal-decomposition comparison the paper
	// reports for N=1200 (parenthesized values); zero when not measured.
	EqualDecompMs float64
	// PredictedGapPct is how far the predicted configuration's measured
	// time is above the measured minimum (0 = the prediction was the
	// minimum).
	PredictedGapPct float64
	// PaperMinConfig is the configuration the paper's Table 2 marks with
	// an asterisk.
	PaperMinP1, PaperMinP2 int
}

// paperTable2Min records the asterisked (predicted-minimum) configuration
// of Table 2 as published.
var paperTable2Min = map[int]map[stencil.Variant][2]int{
	60:   {stencil.STEN1: {2, 0}, stencil.STEN2: {1, 0}},
	300:  {stencil.STEN1: {6, 0}, stencil.STEN2: {6, 2}},
	600:  {stencil.STEN1: {6, 4}, stencil.STEN2: {6, 6}},
	1200: {stencil.STEN1: {6, 6}, stencil.STEN2: {6, 6}},
}

// Table2 measures every configuration of Table 2 on the simulator and
// overlays the partitioning algorithm's prediction (computed from the
// fitted cost table — the full honest pipeline).
func Table2(e *Env) ([]Table2Row, error) {
	type rowSpec struct {
		n int
		v stencil.Variant
	}
	var specs []rowSpec
	for _, n := range ProblemSizes {
		for _, v := range []stencil.Variant{stencil.STEN1, stencil.STEN2} {
			specs = append(specs, rowSpec{n, v})
		}
	}

	// Stage 1 — predictions. Cheap cost-model searches (microseconds each),
	// run serially; they decide which extra simulator runs stage 2 needs.
	preds := make([]core.Result, len(specs))
	for i, s := range specs {
		est, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(s.n, s.v, Iterations))
		if err != nil {
			return nil, err
		}
		preds[i], err = core.Partition(est)
		if err != nil {
			return nil, err
		}
	}
	inMeasuredSet := func(pred core.Result) bool {
		for _, c := range Table2Configs {
			if c.P1 == pred.Config.Counts[0] && c.P2 == pred.Config.Counts[1] {
				return true
			}
		}
		return false
	}

	// Stage 2 — fan the independent simulator runs (the expensive part: 56
	// measured cells, the N=1200 equal-decomposition runs, and any
	// predicted-outside-the-set runs) out over the worker pool. Each unit
	// writes one index-addressed slot; nothing is shared between units.
	const (
		unitEqualDecomp = -1
		unitPredRun     = -2
	)
	type unit struct {
		row  int
		cell int // index into Table2Configs, or a unit* sentinel
	}
	var units []unit
	for r, s := range specs {
		for c := range Table2Configs {
			units = append(units, unit{r, c})
		}
		if s.n == 1200 {
			units = append(units, unit{r, unitEqualDecomp})
		}
		if !inMeasuredSet(preds[r]) {
			units = append(units, unit{r, unitPredRun})
		}
	}
	cellMs := make([][]float64, len(specs))
	for r := range specs {
		cellMs[r] = make([]float64, len(Table2Configs))
	}
	eqMs := make([]float64, len(specs))
	predRunMs := make([]float64, len(specs))
	err := ParallelFor(e.workers(), len(units), func(i int) error {
		u := units[i]
		env := e.Clone()
		s := specs[u.row]
		switch u.cell {
		case unitEqualDecomp:
			cfg := PaperConfig(6, 6)
			eq, err := balance.EqualVector(s.n, 12)
			if err != nil {
				return err
			}
			res, err := stencil.RunSim(env.Net, cfg, eq, s.v, s.n, Iterations)
			if err != nil {
				return err
			}
			eqMs[u.row] = res.ElapsedMs
		case unitPredRun:
			cfg := preds[u.row].Config
			vec, err := core.Decompose(env.Net, cfg, s.n, model.OpFloat)
			if err != nil {
				return err
			}
			res, err := stencil.RunSim(env.Net, cfg, vec, s.v, s.n, Iterations)
			if err != nil {
				return err
			}
			predRunMs[u.row] = res.ElapsedMs
		default:
			c := Table2Configs[u.cell]
			cfg := PaperConfig(c.P1, c.P2)
			vec, err := core.Decompose(env.Net, cfg, s.n, model.OpFloat)
			if err != nil {
				return err
			}
			res, err := stencil.RunSim(env.Net, cfg, vec, s.v, s.n, Iterations)
			if err != nil {
				return fmt.Errorf("experiments: N=%d %s (%d,%d): %w", s.n, s.v, c.P1, c.P2, err)
			}
			cellMs[u.row][u.cell] = res.ElapsedMs
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Stage 3 — serial assembly in the original order, replicating the
	// serial code's MinTracker observation sequence exactly.
	var rows []Table2Row
	for r, s := range specs {
		row := Table2Row{N: s.n, Variant: s.v}
		pred := preds[r]
		var min trace.MinTracker
		for ci, c := range Table2Configs {
			cell := Table2Cell{P1: c.P1, P2: c.P2, ElapsedMs: cellMs[r][ci]}
			cell.Predicted = c.P1 == pred.Config.Counts[0] && c.P2 == pred.Config.Counts[1]
			min.Observe(len(row.Cells), cell.ElapsedMs)
			row.Cells = append(row.Cells, cell)
		}
		row.Cells[min.Index()].MeasuredMin = true
		// Gap between the predicted configuration and the measured
		// minimum. When the prediction is outside the measured set
		// (possible: the heuristic can choose e.g. 6+5), stage 2 measured it.
		predMs := math.Inf(1)
		for _, c := range row.Cells {
			if c.Predicted {
				predMs = c.ElapsedMs
			}
		}
		if math.IsInf(predMs, 1) {
			predMs = predRunMs[r]
			min.Observe(len(row.Cells), predMs)
		}
		row.PredictedGapPct = trace.DeviationPct(predMs, min.Min())
		// Equal-decomposition comparison at N=1200 on the full network.
		if s.n == 1200 {
			row.EqualDecompMs = eqMs[r]
		}
		pm := paperTable2Min[s.n][s.v]
		row.PaperMinP1, row.PaperMinP2 = pm[0], pm[1]
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable2 prints the measured grid with the paper's column layout:
// the measured minimum is suffixed with '*', the algorithm's prediction
// with 'p' (both on the same cell reproduces the paper's claim).
func RenderTable2(rows []Table2Row) string {
	headers := []string{"N", "variant"}
	for _, c := range Table2Configs {
		headers = append(headers, fmt.Sprintf("%d+%d", c.P1, c.P2))
	}
	headers = append(headers, "equal(6+6)", "gap%")
	t := NewTextTable(headers...)
	for _, r := range rows {
		cells := []string{fmt.Sprint(r.N), r.Variant.String()}
		for _, c := range r.Cells {
			s := fmt.Sprintf("%.0f", c.ElapsedMs)
			if c.MeasuredMin {
				s += "*"
			}
			if c.Predicted {
				s += "p"
			}
			cells = append(cells, s)
		}
		eq := "-"
		if r.EqualDecompMs > 0 {
			eq = fmt.Sprintf("%.0f", r.EqualDecompMs)
		}
		cells = append(cells, eq, fmt.Sprintf("%.1f", r.PredictedGapPct))
		t.Add(cells...)
	}
	return t.String()
}
