package experiments

import (
	"fmt"
	"math"

	"netpart/internal/balance"
	"netpart/internal/core"
	"netpart/internal/model"
	"netpart/internal/stencil"
	"netpart/internal/trace"
)

// Table2Cell is one measured configuration for one (N, variant).
type Table2Cell struct {
	P1, P2 int
	// ElapsedMs is the simulated elapsed time for 10 iterations.
	ElapsedMs float64
	// MeasuredMin marks the fastest of the measured configurations.
	MeasuredMin bool
	// Predicted marks the configuration the partitioning algorithm chose
	// (the asterisk of Table 2).
	Predicted bool
}

// Table2Row reproduces one row of Table 2.
type Table2Row struct {
	N       int
	Variant stencil.Variant
	Cells   []Table2Cell
	// EqualDecompMs is the 6+6 equal-decomposition comparison the paper
	// reports for N=1200 (parenthesized values); zero when not measured.
	EqualDecompMs float64
	// PredictedGapPct is how far the predicted configuration's measured
	// time is above the measured minimum (0 = the prediction was the
	// minimum).
	PredictedGapPct float64
	// PaperMinConfig is the configuration the paper's Table 2 marks with
	// an asterisk.
	PaperMinP1, PaperMinP2 int
}

// paperTable2Min records the asterisked (predicted-minimum) configuration
// of Table 2 as published.
var paperTable2Min = map[int]map[stencil.Variant][2]int{
	60:   {stencil.STEN1: {2, 0}, stencil.STEN2: {1, 0}},
	300:  {stencil.STEN1: {6, 0}, stencil.STEN2: {6, 2}},
	600:  {stencil.STEN1: {6, 4}, stencil.STEN2: {6, 6}},
	1200: {stencil.STEN1: {6, 6}, stencil.STEN2: {6, 6}},
}

// Table2 measures every configuration of Table 2 on the simulator and
// overlays the partitioning algorithm's prediction (computed from the
// fitted cost table — the full honest pipeline).
func Table2(e *Env) ([]Table2Row, error) {
	var rows []Table2Row
	for _, n := range ProblemSizes {
		for _, v := range []stencil.Variant{stencil.STEN1, stencil.STEN2} {
			row := Table2Row{N: n, Variant: v}
			est, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, v, Iterations))
			if err != nil {
				return nil, err
			}
			pred, err := core.Partition(est)
			if err != nil {
				return nil, err
			}
			var min trace.MinTracker
			for _, c := range Table2Configs {
				cfg := PaperConfig(c.P1, c.P2)
				cell := Table2Cell{P1: c.P1, P2: c.P2}
				vec, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
				if err != nil {
					return nil, err
				}
				res, err := stencil.RunSim(e.Net, cfg, vec, v, n, Iterations)
				if err != nil {
					return nil, fmt.Errorf("experiments: N=%d %s (%d,%d): %w", n, v, c.P1, c.P2, err)
				}
				cell.ElapsedMs = res.ElapsedMs
				cell.Predicted = c.P1 == pred.Config.Counts[0] && c.P2 == pred.Config.Counts[1]
				min.Observe(len(row.Cells), cell.ElapsedMs)
				row.Cells = append(row.Cells, cell)
			}
			row.Cells[min.Index()].MeasuredMin = true
			// Gap between the predicted configuration and the measured
			// minimum. When the prediction is outside the measured set
			// (possible: the heuristic can choose e.g. 6+5), measure it.
			predMs := math.Inf(1)
			for _, c := range row.Cells {
				if c.Predicted {
					predMs = c.ElapsedMs
				}
			}
			if math.IsInf(predMs, 1) {
				vec, err := core.Decompose(e.Net, pred.Config, n, model.OpFloat)
				if err != nil {
					return nil, err
				}
				res, err := stencil.RunSim(e.Net, pred.Config, vec, v, n, Iterations)
				if err != nil {
					return nil, err
				}
				predMs = res.ElapsedMs
				min.Observe(len(row.Cells), predMs)
			}
			row.PredictedGapPct = trace.DeviationPct(predMs, min.Min())
			// Equal-decomposition comparison at N=1200 on the full network.
			if n == 1200 {
				cfg := PaperConfig(6, 6)
				eq, err := balance.EqualVector(n, 12)
				if err != nil {
					return nil, err
				}
				res, err := stencil.RunSim(e.Net, cfg, eq, v, n, Iterations)
				if err != nil {
					return nil, err
				}
				row.EqualDecompMs = res.ElapsedMs
			}
			pm := paperTable2Min[n][v]
			row.PaperMinP1, row.PaperMinP2 = pm[0], pm[1]
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderTable2 prints the measured grid with the paper's column layout:
// the measured minimum is suffixed with '*', the algorithm's prediction
// with 'p' (both on the same cell reproduces the paper's claim).
func RenderTable2(rows []Table2Row) string {
	headers := []string{"N", "variant"}
	for _, c := range Table2Configs {
		headers = append(headers, fmt.Sprintf("%d+%d", c.P1, c.P2))
	}
	headers = append(headers, "equal(6+6)", "gap%")
	t := NewTextTable(headers...)
	for _, r := range rows {
		cells := []string{fmt.Sprint(r.N), r.Variant.String()}
		for _, c := range r.Cells {
			s := fmt.Sprintf("%.0f", c.ElapsedMs)
			if c.MeasuredMin {
				s += "*"
			}
			if c.Predicted {
				s += "p"
			}
			cells = append(cells, s)
		}
		eq := "-"
		if r.EqualDecompMs > 0 {
			eq = fmt.Sprintf("%.0f", r.EqualDecompMs)
		}
		cells = append(cells, eq, fmt.Sprintf("%.1f", r.PredictedGapPct))
		t.Add(cells...)
	}
	return t.String()
}
