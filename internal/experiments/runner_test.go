package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"netpart/internal/stencil"
)

func TestParallelForCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 37
		var hits [n]int32
		if err := ParallelFor(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ParallelFor(4, 10, func(i int) error {
		switch i {
		case 3:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errB {
		t.Errorf("got %v, want the lowest-index error %v", err, errB)
	}
	// Serial path stops at the first error, like a plain loop.
	ran := 0
	err = ParallelFor(1, 10, func(i int) error {
		ran++
		if i == 2 {
			return errA
		}
		return nil
	})
	if err != errA || ran != 3 {
		t.Errorf("serial path: err=%v after %d calls, want %v after 3", err, ran, errA)
	}
}

func TestParallelForEmpty(t *testing.T) {
	if err := ParallelFor(4, 0, func(int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDeterminism is the engine's core guarantee: the rendered
// output of the parallelized experiments is byte-identical whether the
// worker pool is serial or wide. (The simulator runs in virtual time and
// every unit writes its own index-addressed slot, so scheduling cannot
// leak into the results.)
func TestParallelDeterminism(t *testing.T) {
	serial := env(t).Clone()
	serial.Jobs = 1
	wide := env(t).Clone()
	wide.Jobs = 8

	render := func(e *Env) string {
		var b strings.Builder
		t2, err := Table2(e)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderTable2(t2))
		f3, err := Fig3(e, 600, stencil.STEN2)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderFig3(f3, 600, stencil.STEN2))
		ab, err := Ablations(e)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderAblations(ab))
		ext, err := ExtendedAblations(e)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(RenderAblations(ext))
		return b.String()
	}
	want := render(serial)
	got := render(wide)
	if got != want {
		t.Errorf("parallel output diverges from serial:\n--- serial ---\n%s\n--- jobs=8 ---\n%s", want, got)
	}
}
