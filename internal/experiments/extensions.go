package experiments

import (
	"fmt"

	"netpart/internal/balance"
	"netpart/internal/commbench"
	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/particles"
	"netpart/internal/simnet"
	"netpart/internal/stencil"
	"netpart/internal/stencil2d"
	"netpart/internal/topo"
	"netpart/internal/trace"
)

// AdaptiveResult is E9: the §7 future-work dynamic repartitioning,
// executed with real row migration on the simulator.
type AdaptiveResult struct {
	N, Iters     int
	StaticMs     float64
	AdaptiveMs   float64
	Rebalances   int
	MigratedRows int
	FinalVector  core.Vector
	Exact        bool // both runs bit-exact with the sequential kernel
}

// Adaptive compares a static Eq. 3 partition against periodic dynamic
// repartitioning when one processor picks up external load mid-run.
func Adaptive(e *Env, n, iters int) (*AdaptiveResult, error) {
	cfg := PaperConfig(4, 0)
	vec, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
	if err != nil {
		return nil, err
	}
	slowdown := func(rank, iter int) float64 {
		if rank == 2 && iter >= iters/8 {
			return 4 // a user logs into processor 2 early in the run
		}
		return 1
	}
	static, err := stencil.RunSimAdaptive(e.Net, cfg, vec, stencil.STEN1, n, iters,
		stencil.AdaptiveOptions{Slowdown: slowdown})
	if err != nil {
		return nil, err
	}
	adaptive, err := stencil.RunSimAdaptive(e.Net, cfg, vec, stencil.STEN1, n, iters,
		stencil.AdaptiveOptions{Slowdown: slowdown, RebalanceEvery: iters / 8})
	if err != nil {
		return nil, err
	}
	want := stencil.Sequential(stencil.NewGrid(n), iters)
	exact := gridsMatch(static.Grid, want) && gridsMatch(adaptive.Grid, want)
	return &AdaptiveResult{
		N: n, Iters: iters,
		StaticMs:     static.ElapsedMs,
		AdaptiveMs:   adaptive.ElapsedMs,
		Rebalances:   adaptive.Rebalances,
		MigratedRows: adaptive.MigratedRows,
		FinalVector:  adaptive.FinalVector,
		Exact:        exact,
	}, nil
}

func gridsMatch(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// RenderAdaptive prints the E9 summary.
func RenderAdaptive(r *AdaptiveResult) string {
	return fmt.Sprintf(`Dynamic repartitioning under load (N=%d, %d iterations, rank 2 slowed 4x)
  static partition : %.1f ms
  adaptive         : %.1f ms  (%.2fx; %d rebalances, %d rows migrated)
  final vector     : %v  (the loaded rank sheds rows)
  numerics         : bit-exact with the sequential kernel: %v
`, r.N, r.Iters, r.StaticMs, r.AdaptiveMs, r.StaticMs/r.AdaptiveMs,
		r.Rebalances, r.MigratedRows, r.FinalVector, r.Exact)
}

// MetasystemResult is E10: the method applied unchanged to a metasystem
// with a multicomputer beside the workstation clusters.
type MetasystemResult struct {
	N             int
	Chosen        cost.Config
	PredictedTcMs float64
	WorkstationTc float64 // best Tc achievable without the multicomputer
	Evaluations   int
}

// Metasystem benchmarks the §7 metasystem testbed (unequal segment
// bandwidths) and partitions a stencil on it.
func Metasystem(n int) (*MetasystemResult, error) {
	net := model.MetasystemTestbed()
	bench, err := commbench.Run(net, []topo.Topology{topo.OneD{}}, commbench.DefaultGrid())
	if err != nil {
		return nil, err
	}
	est, err := core.NewEstimator(net, bench.Table, stencil.Annotations(n, stencil.STEN2, 10))
	if err != nil {
		return nil, err
	}
	res, err := core.Partition(est)
	if err != nil {
		return nil, err
	}
	// For contrast: the best the workstations alone can do.
	wsNet := model.PaperTestbed()
	wsBench, err := commbench.Run(wsNet, []topo.Topology{topo.OneD{}}, commbench.DefaultGrid())
	if err != nil {
		return nil, err
	}
	wsEst, err := core.NewEstimator(wsNet, wsBench.Table, stencil.Annotations(n, stencil.STEN2, 10))
	if err != nil {
		return nil, err
	}
	wsRes, err := core.Partition(wsEst)
	if err != nil {
		return nil, err
	}
	return &MetasystemResult{
		N: n, Chosen: res.Config, PredictedTcMs: res.TcMs,
		WorkstationTc: wsRes.TcMs, Evaluations: res.Evaluations,
	}, nil
}

// RenderMetasystem prints the E10 summary.
func RenderMetasystem(r *MetasystemResult) string {
	return fmt.Sprintf(`Metasystem (§7): Sparc2+IPC workstations plus an 8-node multicomputer
  N=%d STEN-2 chooses  : %v  (Tc %.2f ms, %d evaluations)
  workstations alone   : Tc %.2f ms — the multicomputer improves T_c %.1fx
  (segment bandwidths are unequal; the per-cluster benchmarked cost
   functions absorb the difference, so the method runs unchanged)
`, r.N, r.Chosen, r.PredictedTcMs, r.Evaluations,
		r.WorkstationTc, r.WorkstationTc/r.PredictedTcMs)
}

// StartupRow is E11: the initial-distribution cost next to per-cycle time.
type StartupRow struct {
	N             int
	EstStartupMs  float64
	MeasStartupMs float64
	TcMs          float64
	// BreakEvenCycles is how many iterations amortize the scatter to 10%
	// of the run.
	BreakEvenCycles int
}

// Startup quantifies the paper's T_startup exclusion across problem sizes
// on the full 6+6 configuration.
func Startup(e *Env) ([]StartupRow, error) {
	var rows []StartupRow
	for _, n := range ProblemSizes {
		cfg := PaperConfig(6, 6)
		if n < 12 {
			continue
		}
		vec, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
		if err != nil {
			return nil, err
		}
		measured, err := stencil.ScatterSim(e.Net, cfg, vec, n)
		if err != nil {
			return nil, err
		}
		est, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, stencil.STEN1, Iterations))
		if err != nil {
			return nil, err
		}
		pe, err := est.Estimate(cfg)
		if err != nil {
			return nil, err
		}
		breakEven := 0
		if pe.TcMs > 0 {
			breakEven = int(measured/(0.1*pe.TcMs)) + 1
		}
		rows = append(rows, StartupRow{
			N: n, EstStartupMs: pe.StartupMs, MeasStartupMs: measured,
			TcMs: pe.TcMs, BreakEvenCycles: breakEven,
		})
	}
	return rows, nil
}

// RenderStartup prints the E11 table.
func RenderStartup(rows []StartupRow) string {
	t := NewTextTable("N", "T_startup_est(ms)", "T_startup_sim(ms)", "T_c(ms)", "cycles_to_amortize")
	for _, r := range rows {
		t.Add(fmt.Sprint(r.N), fmt.Sprintf("%.1f", r.EstStartupMs),
			fmt.Sprintf("%.1f", r.MeasStartupMs), fmt.Sprintf("%.2f", r.TcMs),
			fmt.Sprint(r.BreakEvenCycles))
	}
	return t.String() + "(amortize = startup ≤ 10% of I·T_c; the paper's I=10 does not amortize large N)\n"
}

// ExtendedAblations runs A6 (router-station composition, at two problem
// sizes) and A7 (global search vs locality-first heuristic) as three
// independent units on the worker pool.
func ExtendedAblations(e *Env) ([]AblationRow, error) {
	units := []func(*Env) (AblationRow, error){
		func(e *Env) (AblationRow, error) { return ablationRouterStation(e, 300) },
		func(e *Env) (AblationRow, error) { return ablationRouterStation(e, 1200) },
		ablationGlobal,
	}
	rows := make([]AblationRow, len(units))
	err := ParallelFor(e.workers(), len(units), func(i int) error {
		row, err := units[i](e.Clone())
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ablationRouterStation is A6: §3.0 composition (router as extra station)
// vs §6.0 composition.
func ablationRouterStation(e *Env, n int) (AblationRow, error) {
	est, err := core.NewEstimator(e.Net, e.Paper, stencil.Annotations(n, stencil.STEN1, Iterations))
	if err != nil {
		return AblationRow{}, err
	}
	with, err := core.Partition(est)
	if err != nil {
		return AblationRow{}, err
	}
	est.RouterStation = false
	est.ResetEvaluations()
	without, err := core.Partition(est)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name: fmt.Sprintf("A6 router-station N=%d", n),
		Detail: fmt.Sprintf("§3.0 (+1 station) chooses %v Tc=%.2f; §6.0 (no station) chooses %v Tc=%.2f",
			with.Config, with.TcMs, without.Config, without.TcMs),
		BaseMs: with.TcMs, AltMs: without.TcMs,
		Speedup: with.TcMs / without.TcMs,
	}, nil
}

// ablationGlobal is A7: locality-first heuristic vs the general (global)
// search on the multimodal N=300 instance.
func ablationGlobal(e *Env) (AblationRow, error) {
	est, err := core.NewEstimator(e.Net, e.Paper, stencil.Annotations(300, stencil.STEN2, Iterations))
	if err != nil {
		return AblationRow{}, err
	}
	heur, err := core.Partition(est)
	if err != nil {
		return AblationRow{}, err
	}
	est2, err := core.NewEstimator(e.Net, e.Paper, stencil.Annotations(300, stencil.STEN2, Iterations))
	if err != nil {
		return AblationRow{}, err
	}
	global, err := core.PartitionGlobal(est2)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name: "A7 heuristic-vs-global",
		Detail: fmt.Sprintf("N=300 STEN-2: heuristic %v (%d evals) vs global %v (%d evals)",
			heur.Config, heur.Evaluations, global.Config, global.Evaluations),
		BaseMs: heur.TcMs, AltMs: global.TcMs,
		Speedup: heur.TcMs / global.TcMs,
	}, nil
}

// ImplSelectRow is E12: estimator-driven implementation selection between
// the 1-D row and 2-D block decompositions.
type ImplSelectRow struct {
	N          int
	OneDConfig cost.Config
	OneDTcMs   float64
	TwoDConfig cost.Config
	TwoDTcMs   float64
	// TwoDSimMs and OneDSimMs are simulated full-run times at the chosen
	// configurations, confirming the estimator's ranking.
	OneDSimMs float64
	TwoDSimMs float64
	Winner    string
}

// ImplSelect compares the two stencil implementations across problem
// sizes, the way the paper's method chose between STEN-1 and STEN-2.
func ImplSelect(e *Env) ([]ImplSelectRow, error) {
	bench, err := commbench.Run(e.Net,
		[]topo.Topology{topo.OneD{}, topo.Mesh2D{}}, commbench.DefaultGrid())
	if err != nil {
		return nil, err
	}
	// The shared 2-D benchmark above runs once; the per-size comparisons
	// (two searches plus two simulator runs each) are independent units.
	rows := make([]ImplSelectRow, len(ProblemSizes))
	err = ParallelFor(e.workers(), len(ProblemSizes), func(i int) error {
		env := e.Clone()
		n := ProblemSizes[i]
		oneD, twoD, err := stencil2d.CompareImplementations(env.Net, bench.Table, n, Iterations)
		if err != nil {
			return err
		}
		row := ImplSelectRow{
			N:          n,
			OneDConfig: oneD.Config, OneDTcMs: oneD.TcMs,
			TwoDConfig: twoD.Config, TwoDTcMs: twoD.TcMs,
		}
		vec, err := core.Decompose(env.Net, oneD.Config, n, model.OpFloat)
		if err != nil {
			return err
		}
		r1, err := stencil.RunSim(env.Net, oneD.Config, vec, stencil.STEN1, n, Iterations)
		if err != nil {
			return err
		}
		r2, err := stencil2d.RunSim(env.Net, twoD.Config, n, Iterations)
		if err != nil {
			return err
		}
		row.OneDSimMs, row.TwoDSimMs = r1.ElapsedMs, r2.ElapsedMs
		row.Winner = "1-D"
		if row.TwoDTcMs < row.OneDTcMs {
			row.Winner = "2-D"
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderImplSelect prints the E12 table.
func RenderImplSelect(rows []ImplSelectRow) string {
	t := NewTextTable("N", "1-D config", "Tc", "sim(ms)", "2-D config", "Tc", "sim(ms)", "est picks", "sim winner")
	for _, r := range rows {
		simWinner := "1-D"
		if r.TwoDSimMs < r.OneDSimMs {
			simWinner = "2-D"
		}
		t.Add(fmt.Sprint(r.N),
			r.OneDConfig.String(), fmt.Sprintf("%.2f", r.OneDTcMs), fmt.Sprintf("%.0f", r.OneDSimMs),
			r.TwoDConfig.String(), fmt.Sprintf("%.2f", r.TwoDTcMs), fmt.Sprintf("%.0f", r.TwoDSimMs),
			r.Winner, simWinner)
	}
	return t.String() + `(Where the estimator and simulator disagree, the Eq. 1 model is the cause:
 its single per-cycle message size cannot express the 2-D blocks' mixed
 row/column borders and heavier router traffic — the model-fidelity limit
 of the paper's restricted-topology approach.)
`
}

// ParticlesResult is E13: the particle-simulation PDU type with
// data-dependent work, comparing the uniform Eq. 3 decomposition against
// the density-weighted one on a clumped distribution.
type ParticlesResult struct {
	Cells, N, Steps int
	UniformMs       float64
	WeightedMs      float64
	UniformVector   core.Vector
	WeightedVector  core.Vector
	Exact           bool
}

// Particles runs E13 on the 4-Sparc2 configuration with 80% of the
// particles clumped into the first tenth of the domain.
func Particles(e *Env) (*ParticlesResult, error) {
	const cells, n, steps = 48, 1200, 10
	s := particles.NewSystem(cells, n, 1994, 0.8)
	cfg := PaperConfig(4, 0)
	uniform, err := core.Decompose(e.Net, cfg, cells, model.OpFloat)
	if err != nil {
		return nil, err
	}
	weighted, err := particles.WeightedVector(e.Net, cfg, s.Histogram(), model.OpFloat)
	if err != nil {
		return nil, err
	}
	rU, err := particles.RunSim(e.Net, cfg, uniform, s, steps)
	if err != nil {
		return nil, err
	}
	rW, err := particles.RunSim(e.Net, cfg, weighted, s, steps)
	if err != nil {
		return nil, err
	}
	want := particles.Sequential(s, steps)
	exact := len(want.Particles) == len(rU.Final.Particles)
	for i := range want.Particles {
		if want.Particles[i] != rU.Final.Particles[i] || want.Particles[i] != rW.Final.Particles[i] {
			exact = false
			break
		}
	}
	return &ParticlesResult{
		Cells: cells, N: n, Steps: steps,
		UniformMs: rU.ElapsedMs, WeightedMs: rW.ElapsedMs,
		UniformVector: uniform, WeightedVector: weighted,
		Exact: exact,
	}, nil
}

// RenderParticles prints the E13 summary.
func RenderParticles(r *ParticlesResult) string {
	return fmt.Sprintf(`Particle simulation (PDU = cell of particles; 80%% clumped into the first tenth)
  %d cells, %d particles, %d steps on 4 Sparc2s
  uniform Eq. 3 vector  : %v  -> %.1f ms (density blind: the first task owns the clump)
  density-weighted      : %v  -> %.1f ms (%.2fx)
  numerics              : bit-exact with the sequential reference: %v
`, r.Cells, r.N, r.Steps,
		r.UniformVector, r.UniformMs,
		r.WeightedVector, r.WeightedMs, r.UniformMs/r.WeightedMs, r.Exact)
}

// SelectionCostResult is E14: the §2.0 related-work comparison made
// quantitative — the runtime partitioning method's selection overhead
// (cost-model evaluations, microseconds) against the Reeves-style
// benchmarking strategy (actually running the application on every
// candidate configuration).
type SelectionCostResult struct {
	N int
	// Partitioner: choice, predicted Tc, evaluations, and the measured
	// elapsed of its choice.
	PartitionConfig cost.Config
	PartitionEvals  int
	PartitionPickMs float64
	// Benchmarked: choice, total probing cost (the sum of all candidate
	// runs), and the measured elapsed of its choice.
	BenchmarkConfig  cost.Config
	BenchmarkProbeMs float64
	BenchmarkPickMs  float64
}

// SelectionCost runs E14 on one problem size with the Table 2 candidate
// set as the Reeves configuration menu.
func SelectionCost(e *Env, n int) (*SelectionCostResult, error) {
	iters := Iterations
	est, err := core.NewEstimator(e.Net, e.Fitted, stencil.Annotations(n, stencil.STEN2, iters))
	if err != nil {
		return nil, err
	}
	part, err := core.Partition(est)
	if err != nil {
		return nil, err
	}
	out := &SelectionCostResult{
		N:               n,
		PartitionConfig: part.Config,
		PartitionEvals:  part.Evaluations,
	}
	run := func(env *Env, cfg cost.Config) (float64, error) {
		vec, err := core.Decompose(env.Net, cfg, n, model.OpFloat)
		if err != nil {
			return 0, err
		}
		res, err := stencil.RunSim(env.Net, cfg, vec, stencil.STEN2, n, iters)
		if err != nil {
			return 0, err
		}
		return res.ElapsedMs, nil
	}
	var candidates []cost.Config
	for _, c := range Table2Configs {
		candidates = append(candidates, PaperConfig(c.P1, c.P2))
	}
	// Fan out the partitioner's pick plus every candidate probe — each is
	// one full simulator run. Benchmarked then replays the probes from the
	// precomputed times in candidate order, so its selection logic (and the
	// reported probe total) is exactly the serial strategy's.
	runs := append(append([]cost.Config(nil), candidates...), part.Config)
	times := make([]float64, len(runs))
	err = ParallelFor(e.workers(), len(runs), func(i int) error {
		ms, err := run(e.Clone(), runs[i])
		if err != nil {
			return err
		}
		times[i] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.PartitionPickMs = times[len(candidates)]

	replay := 0
	best, _, probeMs, err := balance.Benchmarked(candidates, func(cost.Config) (float64, error) {
		ms := times[replay]
		replay++
		return ms, nil
	})
	if err != nil {
		return nil, err
	}
	out.BenchmarkConfig = best
	out.BenchmarkProbeMs = probeMs
	// The winner's measured elapsed: the simulator is deterministic, so the
	// probe already holds the value re-running it would produce.
	for i, c := range candidates {
		if c.String() == best.String() {
			out.BenchmarkPickMs = times[i]
		}
	}
	return out, nil
}

// RenderSelectionCost prints the E14 summary.
func RenderSelectionCost(r *SelectionCostResult) string {
	return fmt.Sprintf(`Selection cost at N=%d (STEN-2, 10 iterations): runtime partitioning vs
Reeves-style benchmarked selection over the 7 Table-2 configurations
  runtime partitioning : picks %v (measured %.0f ms) after %d cost-model
                         evaluations — microseconds of overhead
  benchmarked selection: picks %v (measured %.0f ms) after %.0f ms of
                         probing — %.0fx the chosen run itself
  (the probe cost recurs for every problem size and network state; the
   runtime method re-decides from the fitted model for free)
`, r.N, r.PartitionConfig, r.PartitionPickMs, r.PartitionEvals,
		r.BenchmarkConfig, r.BenchmarkPickMs, r.BenchmarkProbeMs,
		r.BenchmarkProbeMs/r.BenchmarkPickMs)
}

// NoiseRow is E15: how the method degrades as the communication substrate
// becomes nondeterministic (the paper's "average case" caveat about
// UDP-based communication).
type NoiseRow struct {
	Jitter float64
	// R2 of the Sparc2 1-D fit under this noise level.
	FitR2 float64
	// Chosen is the partitioner's configuration from the noisy fit.
	Chosen cost.Config
	// GapPct is how far the choice's measured elapsed (on an equally noisy
	// simulator) sits above the measured minimum over the Table 2 set.
	GapPct float64
}

// Noise runs E15 at N=600 STEN-2 across jitter levels. Each level is a
// self-contained unit (its own offline benchmark, fit, search, and eight
// noisy measurement runs), so the levels fan out over the worker pool.
func Noise(e *Env) ([]NoiseRow, error) {
	jitters := []float64{0, 0.1, 0.3, 0.5}
	rows := make([]NoiseRow, len(jitters))
	err := ParallelFor(e.workers(), len(jitters), func(i int) error {
		row, err := noiseLevel(e.Clone(), jitters[i])
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// noiseLevel runs one jitter level of E15.
func noiseLevel(e *Env, jitter float64) (NoiseRow, error) {
	const n = 600
	grid := commbench.DefaultGrid()
	grid.Jitter = jitter
	grid.Seed = 0x9e3779b97f4a7c15
	bench, err := commbench.Run(e.Net, []topo.Topology{topo.OneD{}}, grid)
	if err != nil {
		return NoiseRow{}, err
	}
	row := NoiseRow{Jitter: jitter}
	for _, f := range bench.Fits {
		if f.Cluster == model.Sparc2Cluster && f.Topology == "1-D" {
			row.FitR2 = f.Quality.R2
		}
	}
	est, err := core.NewEstimator(e.Net, bench.Table, stencil.Annotations(n, stencil.STEN2, Iterations))
	if err != nil {
		return NoiseRow{}, err
	}
	res, err := core.Partition(est)
	if err != nil {
		return NoiseRow{}, err
	}
	row.Chosen = res.Config
	// Measure every Table 2 configuration and the chosen one on an
	// equally noisy simulator (different seed: a different day on the
	// same flaky network).
	measure := func(cfg cost.Config, seed uint64) (float64, error) {
		vec, err := core.Decompose(e.Net, cfg, n, model.OpFloat)
		if err != nil {
			return 0, err
		}
		names, counts := cfg.Active()
		pl, err := topo.Contiguous(names, counts)
		if err != nil {
			return 0, err
		}
		rep, err := runStencilNoisy(e.Net, pl, vec, n, jitter, seed)
		if err != nil {
			return 0, err
		}
		return rep, nil
	}
	var min trace.MinTracker
	for i, c := range Table2Configs {
		ms, err := measure(PaperConfig(c.P1, c.P2), 42)
		if err != nil {
			return NoiseRow{}, err
		}
		min.Observe(i, ms)
	}
	chosenMs, err := measure(res.Config, 42)
	if err != nil {
		return NoiseRow{}, err
	}
	min.Observe(len(Table2Configs), chosenMs)
	row.GapPct = trace.DeviationPct(chosenMs, min.Min())
	return row, nil
}

// runStencilNoisy executes STEN-2 with jittered channel holds.
func runStencilNoisy(net *model.Network, pl topo.Placement, vec core.Vector, n int, jitter float64, seed uint64) (float64, error) {
	var opts []simnet.Option
	if jitter > 0 {
		opts = append(opts, simnet.WithJitter(jitter, seed))
	}
	return stencil.RunSimNoisy(net, pl, vec, stencil.STEN2, n, Iterations, opts...)
}

// RenderNoise prints the E15 table.
func RenderNoise(rows []NoiseRow) string {
	t := NewTextTable("jitter", "fit_R2", "chosen", "gap_vs_min%")
	for _, r := range rows {
		t.Add(fmt.Sprintf("±%.0f%%", r.Jitter*100), fmt.Sprintf("%.4f", r.FitR2),
			r.Chosen.String(), fmt.Sprintf("%.1f", r.GapPct))
	}
	return t.String() + "(the fits stay near-perfect averages and the choices stay near-minimal —\n the paper's claim that average-case cost functions suffice)\n"
}
