package manager

import (
	"math"
	"sync"
	"testing"
	"time"

	"netpart/internal/mmps"
	"netpart/internal/model"
)

func TestPolicyAvailable(t *testing.T) {
	p := Policy{Threshold: 0.25}
	got := p.Available([]float64{0, 0.1, 0.25, 0.3, 1.5})
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("Available = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Available = %v, want %v", got, want)
		}
	}
}

func TestManagerRefreshUpdatesCluster(t *testing.T) {
	net := model.PaperTestbed()
	c := net.Cluster(model.Sparc2Cluster)
	m := New(c, DefaultPolicy)
	if got := m.Refresh(); got != 6 {
		t.Errorf("all idle: available = %d, want 6", got)
	}
	if err := m.SetLoad(0, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := m.SetLoad(3, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := m.Refresh(); got != 4 {
		t.Errorf("two busy: available = %d, want 4", got)
	}
	if c.Available != 4 {
		t.Errorf("cluster not updated: %d", c.Available)
	}
}

func TestSetLoadValidation(t *testing.T) {
	m := New(model.PaperTestbed().Cluster(model.Sparc2Cluster), DefaultPolicy)
	if err := m.SetLoad(99, 0.1); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := m.SetLoad(0, -1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestLoadsReturnsCopy(t *testing.T) {
	m := New(model.PaperTestbed().Cluster(model.Sparc2Cluster), DefaultPolicy)
	m.SetLoad(0, 0.5)
	loads := m.Loads()
	loads[0] = 99
	if m.Loads()[0] != 0.5 {
		t.Error("Loads exposed internal state")
	}
}

func TestMeanLoadOnlyCountsAvailable(t *testing.T) {
	m := New(model.PaperTestbed().Cluster(model.Sparc2Cluster), Policy{Threshold: 0.25})
	m.SetLoad(0, 0.1)
	m.SetLoad(1, 0.2)
	m.SetLoad(2, 5.0) // unavailable; excluded from the mean
	got := m.MeanLoad()
	want := (0.1 + 0.2 + 0 + 0 + 0) / 5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanLoad = %v, want %v", got, want)
	}
}

func TestMeanLoadAll(t *testing.T) {
	m := New(model.PaperTestbed().Cluster(model.Sparc2Cluster), DefaultPolicy)
	m.SetLoad(0, 3.0)
	m.SetLoad(1, 3.0)
	want := 6.0 / 6
	if got := m.MeanLoadAll(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanLoadAll = %v, want %v", got, want)
	}
}

func TestAdjustedOpTime(t *testing.T) {
	if got := AdjustedOpTime(0.0003, 1.0); math.Abs(got-0.0006) > 1e-12 {
		t.Errorf("load 1.0 should double op time: %v", got)
	}
	if got := AdjustedOpTime(0.0003, 0); got != 0.0003 {
		t.Errorf("idle should not change op time: %v", got)
	}
	if got := AdjustedOpTime(0.0003, -5); got != 0.0003 {
		t.Errorf("negative load clamped: %v", got)
	}
}

func TestExchangeAllGather(t *testing.T) {
	net := model.PaperTestbed()
	eps, err := mmps.NewLocalWorld(2, mmps.WithRecvTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	mgrs := []*Manager{
		New(net.Cluster(model.Sparc2Cluster), DefaultPolicy),
		New(net.Cluster(model.IPCCluster), DefaultPolicy),
	}
	mgrs[1].SetLoad(0, 3.0) // one IPC busy

	results := make([][]Report, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := Exchange(eps[i], mgrs[i].Report())
			if err != nil {
				t.Errorf("manager %d: %v", i, err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	for i, rs := range results {
		if len(rs) != 2 {
			t.Fatalf("manager %d got %d reports", i, len(rs))
		}
		if rs[0].Cluster != model.Sparc2Cluster || rs[0].Available != 6 {
			t.Errorf("manager %d: sparc2 report %+v", i, rs[0])
		}
		if rs[1].Cluster != model.IPCCluster || rs[1].Available != 5 {
			t.Errorf("manager %d: ipc report %+v", i, rs[1])
		}
	}
}

func TestExchangeOverUDP(t *testing.T) {
	net := model.PaperTestbed()
	eps, err := mmps.NewUDPWorld(2, mmps.WithRecvTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, ep := range eps {
			ep.Close()
		}
	}()
	mgrs := []*Manager{
		New(net.Cluster(model.Sparc2Cluster), DefaultPolicy),
		New(net.Cluster(model.IPCCluster), DefaultPolicy),
	}
	var wg sync.WaitGroup
	results := make([][]Report, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := Exchange(eps[i], mgrs[i].Report())
			if err != nil {
				t.Errorf("manager %d: %v", i, err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	if results[0] == nil || results[1] == nil {
		t.Fatal("exchange failed")
	}
	if results[0][1].Cluster != model.IPCCluster {
		t.Errorf("report routing wrong: %+v", results[0])
	}
}

func TestApplyUpdatesAvailability(t *testing.T) {
	net := model.PaperTestbed()
	Apply(net, []Report{
		{Cluster: model.Sparc2Cluster, Available: 2},
		{Cluster: "unknown", Available: 1},
		{Cluster: model.IPCCluster, Available: 99}, // out of range: ignored
	})
	if got := net.Cluster(model.Sparc2Cluster).Available; got != 2 {
		t.Errorf("sparc2 available = %d, want 2", got)
	}
	if got := net.Cluster(model.IPCCluster).Available; got != 6 {
		t.Errorf("ipc available = %d, want unchanged 6", got)
	}
}

func TestAdjustSpeedsIsNonDestructive(t *testing.T) {
	net := model.PaperTestbed()
	adjusted := AdjustSpeeds(net, []Report{
		{Cluster: model.Sparc2Cluster, MeanLoadAll: 1.0},
	})
	if got := adjusted.Cluster(model.Sparc2Cluster).FloatOpTime; math.Abs(got-0.0006) > 1e-12 {
		t.Errorf("adjusted op time = %v, want 0.0006", got)
	}
	if got := net.Cluster(model.Sparc2Cluster).FloatOpTime; got != 0.0003 {
		t.Errorf("original mutated: %v", got)
	}
	if got := adjusted.Cluster(model.IPCCluster).FloatOpTime; got != 0.0006 {
		t.Errorf("unreported cluster changed: %v", got)
	}
	if err := adjusted.Validate(); err != nil {
		t.Errorf("adjusted network invalid: %v", err)
	}
}
