// Package manager implements the cluster managers of Section 3.0: one
// processor per cluster monitors the load of its peers, applies a threshold
// policy to decide which processors are available, and cooperatively
// exchanges availability with the other cluster managers so that
// partitioning can run against a current global snapshot (the protocol
// referenced as [11] in the paper).
//
// It also implements the paper's "general case": instead of the binary
// available/unavailable decision, instruction speeds can be adjusted to
// reflect current load.
package manager

import (
	"encoding/json"
	"fmt"
	"sync"

	"netpart/internal/mmps"
	"netpart/internal/model"
)

// Policy is the availability threshold policy: a processor whose load is
// at or below Threshold is available, and all available processors are
// treated as equal in computational power (the threshold is small enough
// for that to hold).
type Policy struct {
	// Threshold is the maximum load average of an available processor.
	Threshold float64
}

// DefaultPolicy matches the paper's assumption of a small threshold.
var DefaultPolicy = Policy{Threshold: 0.25}

// Available returns the indices of processors whose load is within the
// threshold.
func (p Policy) Available(loads []float64) []int {
	var idx []int
	for i, l := range loads {
		if l <= p.Threshold {
			idx = append(idx, i)
		}
	}
	return idx
}

// Manager monitors one cluster. It is safe for concurrent use.
type Manager struct {
	cluster *model.Cluster
	policy  Policy

	mu    sync.Mutex
	loads []float64
}

// New creates a manager for the cluster with all processors initially idle.
func New(c *model.Cluster, p Policy) *Manager {
	return &Manager{
		cluster: c,
		policy:  p,
		loads:   make([]float64, c.Procs),
	}
}

// SetLoad records the observed load average of one processor.
func (m *Manager) SetLoad(index int, load float64) error {
	if index < 0 || index >= m.cluster.Procs {
		return fmt.Errorf("manager: processor %d of %d", index, m.cluster.Procs)
	}
	if load < 0 {
		return fmt.Errorf("manager: negative load %v", load)
	}
	m.mu.Lock()
	m.loads[index] = load
	m.mu.Unlock()
	return nil
}

// Loads returns a copy of the current load vector.
func (m *Manager) Loads() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]float64(nil), m.loads...)
}

// Refresh applies the threshold policy, updates the cluster's Available
// count, and returns it.
func (m *Manager) Refresh() int {
	m.mu.Lock()
	avail := len(m.policy.Available(m.loads))
	m.mu.Unlock()
	m.cluster.Available = avail
	return avail
}

// AdjustedOpTime implements the general case of Section 3.0: a processor
// carrying load L delivers only 1/(1+L) of its cycles to the task, so its
// effective per-operation time stretches to base·(1+L).
func AdjustedOpTime(base, load float64) float64 {
	if load < 0 {
		load = 0
	}
	return base * (1 + load)
}

// MeanLoad returns the average load of the currently available processors
// (zero when none are available).
func (m *Manager) MeanLoad() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := m.policy.Available(m.loads)
	if len(idx) == 0 {
		return 0
	}
	sum := 0.0
	for _, i := range idx {
		sum += m.loads[i]
	}
	return sum / float64(len(idx))
}

// MeanLoadAll returns the average load across every processor in the
// cluster, the quantity the general case's speed adjustment uses.
func (m *Manager) MeanLoadAll() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.loads) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range m.loads {
		sum += l
	}
	return sum / float64(len(m.loads))
}

// Report is the availability summary one cluster manager shares with the
// others during the cooperative exchange.
type Report struct {
	Cluster   string `json:"cluster"`
	Available int    `json:"available"`
	// MeanLoad averages the available processors (≈ 0 under the threshold
	// policy); MeanLoadAll averages every processor and drives the general
	// case's instruction-speed adjustment.
	MeanLoad    float64 `json:"mean_load"`
	MeanLoadAll float64 `json:"mean_load_all"`
	FloatOpTime float64 `json:"float_op_ms"`
	IntOpTime   float64 `json:"int_op_ms"`
}

// Report builds this manager's current report (refreshing availability).
func (m *Manager) Report() Report {
	avail := m.Refresh()
	return Report{
		Cluster:     m.cluster.Name,
		Available:   avail,
		MeanLoad:    m.MeanLoad(),
		MeanLoadAll: m.MeanLoadAll(),
		FloatOpTime: m.cluster.FloatOpTime,
		IntOpTime:   m.cluster.IntOpTime,
	}
}

// Exchange runs one round of the cooperative availability protocol over an
// mmps transport world in which every rank is a cluster manager: an
// all-gather of JSON-encoded reports. The returned slice is indexed by
// rank (the local report included).
func Exchange(tr mmps.Transport, local Report) ([]Report, error) {
	payload, err := json.Marshal(local)
	if err != nil {
		return nil, fmt.Errorf("manager: encoding report: %w", err)
	}
	parts, err := mmps.AllGather(tr, payload)
	if err != nil {
		return nil, fmt.Errorf("manager: exchanging reports: %w", err)
	}
	reports := make([]Report, len(parts))
	for src, buf := range parts {
		if err := json.Unmarshal(buf, &reports[src]); err != nil {
			return nil, fmt.Errorf("manager: decoding report from %d: %w", src, err)
		}
	}
	return reports, nil
}

// Apply updates the network model's availability from a set of exchanged
// reports. Unknown clusters are ignored.
func Apply(net *model.Network, reports []Report) {
	for _, r := range reports {
		if c := net.Cluster(r.Cluster); c != nil {
			if r.Available >= 0 && r.Available <= c.Procs {
				c.Available = r.Available
			}
		}
	}
}

// AdjustSpeeds applies the general-case load adjustment to the network
// model: each cluster's op times are stretched by its reported mean load.
// It returns a deep copy, leaving the input model untouched.
func AdjustSpeeds(net *model.Network, reports []Report) *model.Network {
	out := &model.Network{
		Segments: net.Segments,
		Router:   net.Router,
		Coerce:   net.Coerce,
	}
	byName := make(map[string]Report, len(reports))
	for _, r := range reports {
		byName[r.Cluster] = r
	}
	for _, c := range net.Clusters {
		cc := *c
		if r, ok := byName[c.Name]; ok {
			cc.FloatOpTime = AdjustedOpTime(c.FloatOpTime, r.MeanLoadAll)
			cc.IntOpTime = AdjustedOpTime(c.IntOpTime, r.MeanLoadAll)
		}
		out.Clusters = append(out.Clusters, &cc)
	}
	return out
}
