// Package spmd executes SPMD data parallel computations (Section 4.0's
// model: identical tasks, one per processor, each computing on its region
// of the data domain) over the simulated network substrate. It wires tasks
// to their topology neighbors, applies a partition vector, and runs the
// per-task body to completion, reporting the elapsed virtual time.
//
// Application packages (stencil, gauss) provide the task body; this package
// owns placement, spawning, neighbor exchange helpers, and synchronization.
//
//netpart:deterministic
package spmd

import (
	"errors"
	"fmt"

	"netpart/internal/core"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/simnet"
	"netpart/internal/topo"
)

// Metric names this package records into Job.Metrics. Counters count
// whole-job totals; histograms aggregate over every task and cycle.
const (
	MetricMsgsSent   = "spmd.msgs_sent"
	MetricMsgsRecv   = "spmd.msgs_received"
	MetricBytesSent  = "spmd.bytes_sent"
	MetricBytesRecv  = "spmd.bytes_received"
	MetricCycles     = "spmd.cycles"
	MetricCycleMs    = "spmd.cycle_ms"    // per-task per-cycle virtual time
	MetricExchangeMs = "spmd.exchange_ms" // border-exchange latency per task per cycle
	MetricDeliveryMs = "spmd.delivery_ms" // per-message transit time (send to mailbox)
	MetricElapsedMs  = "spmd.elapsed_ms"  // gauge: job elapsed virtual time

	MetricRecvTimeouts = "spmd.recv_timeouts" // bounded receives that timed out
	MetricNodeVerdicts = "spmd.node_verdicts" // RecvDetect escalations to NodeFailed
)

// jobMetrics holds the pre-resolved instruments one job records into.
// With a nil registry every instrument is nil, and obs instruments are
// nil-safe, so instrumented paths cost only nil checks when disabled.
type jobMetrics struct {
	msgsSent     *obs.Counter
	msgsRecv     *obs.Counter
	bytesSent    *obs.Counter
	bytesRecv    *obs.Counter
	cycles       *obs.Counter
	cycleMs      *obs.Histogram
	exchangeMs   *obs.Histogram
	deliveryMs   *obs.Histogram
	recvTimeouts *obs.Counter
	nodeVerdicts *obs.Counter
}

func resolveMetrics(r *obs.Registry) jobMetrics {
	return jobMetrics{
		msgsSent:     r.Counter(MetricMsgsSent),
		msgsRecv:     r.Counter(MetricMsgsRecv),
		bytesSent:    r.Counter(MetricBytesSent),
		bytesRecv:    r.Counter(MetricBytesRecv),
		cycles:       r.Counter(MetricCycles),
		cycleMs:      r.Histogram(MetricCycleMs),
		exchangeMs:   r.Histogram(MetricExchangeMs),
		deliveryMs:   r.Histogram(MetricDeliveryMs),
		recvTimeouts: r.Counter(MetricRecvTimeouts),
		nodeVerdicts: r.Counter(MetricNodeVerdicts),
	}
}

// NodeFailedError is the verdict a bounded receive escalates to when a
// peer stays silent through every retry: the runtime should treat the
// rank as dead and recover rather than hang.
type NodeFailedError struct {
	Rank int
}

func (e NodeFailedError) Error() string {
	return fmt.Sprintf("spmd: node %d failed (no response within retry budget)", e.Rank)
}

// Task is the per-rank context handed to the program body. It wraps the
// simulated processor and exposes rank-addressed communication over the
// program's topology.
type Task struct {
	rank   int
	n      int
	pdus   int
	offset int // first PDU index owned by this task
	proc   *simnet.Proc
	peers  []*Task
	tp     topo.Topology

	m            jobMetrics
	rec          *obs.Recorder
	sink         obs.CycleSink
	cycle        int
	cycleStartMs float64
}

// Rank returns this task's rank (0-based, contiguous placement order).
func (t *Task) Rank() int { return t.rank }

// NumTasks returns the total number of tasks.
func (t *Task) NumTasks() int { return t.n }

// PDUs returns the number of PDUs assigned to this task by the partition
// vector.
func (t *Task) PDUs() int { return t.pdus }

// PDUOffset returns the index of the first PDU this task owns: partition
// vectors assign contiguous PDU ranges in rank order (Fig. 2).
func (t *Task) PDUOffset() int { return t.offset }

// Cluster returns the hosting cluster.
func (t *Task) Cluster() *model.Cluster { return t.proc.Cluster() }

// NowMs returns the current virtual time.
func (t *Task) NowMs() float64 { return t.proc.Now() }

// Compute advances virtual time by n operations at the host cluster's
// speed for the given class.
func (t *Task) Compute(ops float64, class model.OpClass) {
	t.proc.AdvanceOps(ops, class)
}

// ComputeBatch accumulates consecutive Compute charges into one scheduler
// round-trip (see simnet.Batch). Virtual time is bit-for-bit identical to
// per-charge Compute calls; only the scheduling overhead changes. The
// batch must be flushed (Done) before the task communicates.
type ComputeBatch struct {
	b simnet.Batch
}

// BeginCompute starts a compute batch at the current virtual time.
func (t *Task) BeginCompute() ComputeBatch {
	return ComputeBatch{b: t.proc.BeginBatch()}
}

// Ops accrues n operations of the given class to the batch.
//
//netpart:hotpath
func (c *ComputeBatch) Ops(n float64, class model.OpClass) {
	c.b.AdvanceOps(n, class)
}

// Done flushes the batch: the task sleeps until the accumulated virtual
// time and may then communicate.
func (c *ComputeBatch) Done() {
	c.b.Flush()
}

// Neighbors returns this task's neighbor ranks under the program topology.
func (t *Task) Neighbors() []int {
	return t.tp.Neighbors(t.rank, t.n)
}

// Send asynchronously sends bytes (with an optional payload carried for
// application correctness, not charged to the network) to the given rank.
func (t *Task) Send(dst int, bytes int, payload interface{}) {
	t.m.msgsSent.Inc()
	t.m.bytesSent.Add(int64(bytes))
	t.proc.Send(t.peers[dst].proc, bytes, payload)
}

// Recv blocks for the next message from the given rank and returns its
// payload.
func (t *Task) Recv(src int) interface{} {
	msg := t.proc.Recv(t.peers[src].proc)
	t.m.msgsRecv.Inc()
	t.m.bytesRecv.Add(int64(msg.Bytes))
	return msg.Payload
}

// RecvWithin blocks for the next message from src for at most ms
// milliseconds of virtual time, returning (payload, true) on delivery or
// (nil, false) on timeout.
func (t *Task) RecvWithin(src int, ms float64) (interface{}, bool) {
	msg, ok := t.proc.RecvWithin(t.peers[src].proc, ms)
	if !ok {
		t.m.recvTimeouts.Inc()
		return nil, false
	}
	t.m.msgsRecv.Inc()
	t.m.bytesRecv.Add(int64(msg.Bytes))
	return msg.Payload, true
}

// RecvDetect receives from src under a failure detector: bounded waits
// with exponential backoff (timeoutMs, 2·timeoutMs, ...), escalating to a
// NodeFailedError verdict after retries+1 silent windows instead of
// blocking forever. This is the paper runtime's answer to a processor
// disappearing mid-computation.
func (t *Task) RecvDetect(src int, timeoutMs float64, retries int) (interface{}, error) {
	wait := timeoutMs
	for attempt := 0; attempt <= retries; attempt++ {
		if v, ok := t.RecvWithin(src, wait); ok {
			return v, nil
		}
		wait *= 2
	}
	t.m.nodeVerdicts.Inc()
	return nil, NodeFailedError{Rank: src}
}

// EndCycle marks the end of one SPMD cycle for this task: it folds the
// cycle's virtual duration into the cycle histogram and, when the job has
// a trace recorder, emits a span (one per task per cycle) for Chrome trace
// export. Task bodies call it once per iteration; without a Metrics
// registry or Trace recorder it only advances the task's cycle counter.
func (t *Task) EndCycle() {
	now := t.NowMs()
	t.m.cycles.Inc()
	t.m.cycleMs.Observe(now - t.cycleStartMs)
	if t.sink != nil {
		t.sink.OnCycle(t.rank, t.cycle, now-t.cycleStartMs)
	}
	if t.rec != nil {
		t.rec.Span("cycle", t.rank, t.cycleStartMs, now-t.cycleStartMs, map[string]any{
			"iter":    t.cycle,
			"cluster": t.Cluster().Name,
		})
	}
	t.cycle++
	t.cycleStartMs = now
}

// ExchangeBorders performs one synchronous communication cycle in the
// paper's canonical form — an asynchronous send to every neighbor followed
// by a blocking receive from every neighbor — and returns the received
// payloads keyed by neighbor rank. payload(nb) supplies the data sent to
// each neighbor.
func (t *Task) ExchangeBorders(bytes int, payload func(nb int) interface{}) map[int]interface{} {
	start := t.NowMs()
	ns := t.Neighbors()
	for _, nb := range ns {
		var p interface{}
		if payload != nil {
			p = payload(nb)
		}
		t.Send(nb, bytes, p)
	}
	got := make(map[int]interface{}, len(ns))
	for _, nb := range ns {
		got[nb] = t.Recv(nb)
	}
	t.m.exchangeMs.Observe(t.NowMs() - start)
	if t.sink != nil {
		t.sink.OnExchange(t.rank, t.cycle, t.NowMs()-start)
	}
	return got
}

// Job describes one SPMD execution: the network, the processor
// configuration with its contiguous placement, the partition vector, the
// communication topology, and the per-task body.
type Job struct {
	Net *model.Network
	// Placement maps ranks to processors (use topo.Contiguous over the
	// chosen configuration).
	Placement topo.Placement
	// Vector assigns PDUs per rank; len(Vector) must equal the task count.
	Vector core.Vector
	// Topology is the communication pattern used by ExchangeBorders.
	Topology topo.Topology
	// Body is the task program, run once per rank.
	Body func(*Task)
	// SimOptions configure the underlying simulator (e.g. jitter).
	SimOptions []simnet.Option
	// Metrics, when non-nil, receives runtime counters and histograms (the
	// Metric* names). Nil disables metric recording at no cost.
	Metrics *obs.Registry
	// Trace, when non-nil, receives per-cycle span events (via
	// Task.EndCycle) suitable for obs.WriteChromeTrace.
	Trace *obs.Recorder
	// Cycles, when non-nil, receives each task's per-cycle and
	// per-exchange durations as they complete (virtual-time
	// milliseconds) — the subscription point for the drift monitor.
	Cycles obs.CycleSink
}

// Execution errors.
var (
	ErrVectorMismatch = errors.New("spmd: partition vector length differs from task count")
	ErrNoTasks        = errors.New("spmd: job has no tasks")
)

// Report summarizes one execution.
type Report struct {
	// ElapsedMs is the virtual time at which the last task finished.
	ElapsedMs float64
	// Segments and Procs carry substrate statistics.
	Segments []simnet.SegmentStats
	Procs    []simnet.ProcStats
}

// Run executes the job to completion and reports elapsed virtual time.
func Run(job Job) (Report, error) {
	n := job.Placement.NumTasks()
	if n == 0 {
		return Report{}, ErrNoTasks
	}
	if len(job.Vector) != n {
		return Report{}, fmt.Errorf("%w: %d vs %d", ErrVectorMismatch, len(job.Vector), n)
	}
	if job.Body == nil {
		return Report{}, errors.New("spmd: job has no body")
	}
	m := resolveMetrics(job.Metrics)
	opts := job.SimOptions
	if job.Metrics != nil {
		opts = append(append([]simnet.Option(nil), opts...),
			simnet.WithMessageObserver(func(d simnet.Delivery) {
				m.deliveryMs.Observe(d.DeliveredAtMs - d.SentAtMs)
			}))
	}
	sim, err := simnet.New(job.Net, opts...)
	if err != nil {
		return Report{}, err
	}
	tasks := make([]*Task, n)
	offset := 0
	for rank := 0; rank < n; rank++ {
		tasks[rank] = &Task{
			rank:   rank,
			n:      n,
			pdus:   job.Vector[rank],
			offset: offset,
			peers:  tasks,
			tp:     job.Topology,
			m:      m,
			rec:    job.Trace,
			sink:   job.Cycles,
		}
		offset += job.Vector[rank]
	}
	for rank := 0; rank < n; rank++ {
		t := tasks[rank]
		t.proc = sim.Spawn(fmt.Sprintf("task-%d", rank), job.Placement.ClusterOf(rank),
			func(*simnet.Proc) { job.Body(t) })
	}
	if err := sim.Run(); err != nil {
		return Report{}, err
	}
	job.Metrics.Gauge(MetricElapsedMs).Set(sim.Now())
	return Report{
		ElapsedMs: sim.Now(),
		Segments:  sim.Stats(),
		Procs:     sim.ProcStats(),
	}, nil
}
