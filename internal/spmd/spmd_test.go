package spmd

import (
	"errors"
	"math"
	"testing"

	"netpart/internal/core"
	"netpart/internal/model"
	"netpart/internal/topo"
)

func job(t *testing.T, p1, p2 int, vec core.Vector, body func(*Task)) Job {
	t.Helper()
	pl, err := topo.Contiguous([]string{model.Sparc2Cluster, model.IPCCluster}, []int{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Net:       model.PaperTestbed(),
		Placement: pl,
		Vector:    vec,
		Topology:  topo.OneD{},
		Body:      body,
	}
}

func TestRunAssignsRanksAndPDUs(t *testing.T) {
	var ranks, pdus, offsets []int
	_, err := Run(job(t, 2, 1, core.Vector{5, 3, 2}, func(task *Task) {
		ranks = append(ranks, task.Rank())
		pdus = append(pdus, task.PDUs())
		offsets = append(offsets, task.PDUOffset())
		if task.NumTasks() != 3 {
			t.Errorf("NumTasks = %d", task.NumTasks())
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 3 {
		t.Fatalf("bodies run = %d", len(ranks))
	}
	wantPDUs := map[int]int{0: 5, 1: 3, 2: 2}
	wantOff := map[int]int{0: 0, 1: 5, 2: 8}
	for i, r := range ranks {
		if pdus[i] != wantPDUs[r] || offsets[i] != wantOff[r] {
			t.Errorf("rank %d: pdus=%d off=%d", r, pdus[i], offsets[i])
		}
	}
}

func TestRunPlacesTasksOnClusters(t *testing.T) {
	clusters := make(map[int]string)
	_, err := Run(job(t, 2, 2, core.Vector{1, 1, 1, 1}, func(task *Task) {
		clusters[task.Rank()] = task.Cluster().Name
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{0: "sparc2", 1: "sparc2", 2: "ipc", 3: "ipc"}
	for r, c := range want {
		if clusters[r] != c {
			t.Errorf("rank %d on %q, want %q", r, clusters[r], c)
		}
	}
}

func TestComputeAdvancesClusterTime(t *testing.T) {
	times := make(map[int]float64)
	_, err := Run(job(t, 1, 1, core.Vector{1, 1}, func(task *Task) {
		task.Compute(10000, model.OpFloat)
		times[task.Rank()] = task.NowMs()
	}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(times[0]-3.0) > 1e-9 { // 10000 flops at 0.3 µs
		t.Errorf("sparc2 time = %v, want 3.0", times[0])
	}
	if math.Abs(times[1]-6.0) > 1e-9 {
		t.Errorf("ipc time = %v, want 6.0", times[1])
	}
}

func TestExchangeBordersSynchronous(t *testing.T) {
	// Each task sends its rank to its neighbors and receives theirs.
	got := make([]map[int]interface{}, 4)
	_, err := Run(job(t, 4, 0, core.Vector{1, 1, 1, 1}, func(task *Task) {
		got[task.Rank()] = task.ExchangeBorders(100, func(int) interface{} { return task.Rank() })
	}))
	if err != nil {
		t.Fatal(err)
	}
	for rank, m := range got {
		ns := topo.OneD{}.Neighbors(rank, 4)
		if len(m) != len(ns) {
			t.Errorf("rank %d received %d payloads, want %d", rank, len(m), len(ns))
		}
		for _, nb := range ns {
			if m[nb] != nb {
				t.Errorf("rank %d got %v from %d", rank, m[nb], nb)
			}
		}
	}
}

func TestExchangeBordersNilPayload(t *testing.T) {
	_, err := Run(job(t, 2, 0, core.Vector{1, 1}, func(task *Task) {
		m := task.ExchangeBorders(10, nil)
		if len(m) != 1 {
			t.Errorf("rank %d exchange = %v", task.Rank(), m)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsFollowTopology(t *testing.T) {
	var n3 []int
	pl, _ := topo.Contiguous([]string{model.Sparc2Cluster}, []int{6})
	_, err := Run(Job{
		Net:       model.PaperTestbed(),
		Placement: pl,
		Vector:    core.Vector{1, 1, 1, 1, 1, 1},
		Topology:  topo.Ring{},
		Body: func(task *Task) {
			if task.Rank() == 0 {
				n3 = task.Neighbors()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(n3) != 2 || n3[0] != 1 || n3[1] != 5 {
		t.Errorf("ring neighbors of 0 = %v", n3)
	}
}

func TestRunReportsStats(t *testing.T) {
	rep, err := Run(job(t, 2, 0, core.Vector{1, 1}, func(task *Task) {
		task.Compute(1000, model.OpFloat)
		task.ExchangeBorders(500, nil)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ElapsedMs <= 0 {
		t.Error("no elapsed time")
	}
	if len(rep.Procs) != 2 {
		t.Fatalf("proc stats = %+v", rep.Procs)
	}
	for _, p := range rep.Procs {
		if p.Sent != 1 || p.Received != 1 {
			t.Errorf("task %s sent/recv = %d/%d", p.Name, p.Sent, p.Received)
		}
	}
	var bytes int64
	for _, s := range rep.Segments {
		bytes += s.Bytes
	}
	if bytes != 1000 { // two 500-byte messages, both on ether-1
		t.Errorf("segment bytes = %d", bytes)
	}
}

func TestRunValidation(t *testing.T) {
	pl, _ := topo.Contiguous([]string{model.Sparc2Cluster}, []int{2})
	base := Job{
		Net:       model.PaperTestbed(),
		Placement: pl,
		Vector:    core.Vector{1, 1},
		Topology:  topo.OneD{},
		Body:      func(*Task) {},
	}
	j := base
	j.Vector = core.Vector{1}
	if _, err := Run(j); !errors.Is(err, ErrVectorMismatch) {
		t.Errorf("vector mismatch: %v", err)
	}
	j = base
	j.Placement = topo.Placement{}
	j.Vector = nil
	if _, err := Run(j); !errors.Is(err, ErrNoTasks) {
		t.Errorf("no tasks: %v", err)
	}
	j = base
	j.Body = nil
	if _, err := Run(j); err == nil {
		t.Error("nil body accepted")
	}
}

func TestRunPropagatesDeadlock(t *testing.T) {
	_, err := Run(job(t, 2, 0, core.Vector{1, 1}, func(task *Task) {
		if task.Rank() == 0 {
			task.Recv(1) // rank 1 never sends
		}
	}))
	if err == nil {
		t.Error("deadlock not reported")
	}
}
