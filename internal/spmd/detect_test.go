package spmd

import (
	"errors"
	"testing"

	"netpart/internal/core"
	"netpart/internal/model"
	"netpart/internal/obs"
	"netpart/internal/topo"
)

// TestRecvDetectVerdict: a crashed peer (body returns without sending)
// must produce a NodeFailedError verdict within the retry budget instead
// of deadlocking the run.
func TestRecvDetectVerdict(t *testing.T) {
	reg := obs.NewRegistry()
	var verdict error
	var payload interface{}
	job := Job{
		Net:       model.PaperTestbed(),
		Placement: mustPlacement(t, []string{model.Sparc2Cluster}, []int{2}),
		Vector:    core.Vector{1, 1},
		Topology:  topo.OneD{},
		Metrics:   reg,
		Body: func(task *Task) {
			switch task.Rank() {
			case 0:
				payload, verdict = task.RecvDetect(1, 10, 3)
			case 1:
				// Crash: return immediately without ever sending.
			}
		},
	}
	if _, err := Run(job); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var nf NodeFailedError
	if !errors.As(verdict, &nf) || nf.Rank != 1 {
		t.Fatalf("RecvDetect = (%v, %v), want NodeFailedError{1}", payload, verdict)
	}
	if got := reg.Counter(MetricNodeVerdicts).Value(); got != 1 {
		t.Fatalf("node verdicts = %d, want 1", got)
	}
	if got := reg.Counter(MetricRecvTimeouts).Value(); got != 4 {
		t.Fatalf("recv timeouts = %d, want 4 (initial wait + 3 retries)", got)
	}
}

// TestRecvDetectDeliveredLate: a slow but alive peer beats the backoff
// budget and no verdict is issued.
func TestRecvDetectDeliveredLate(t *testing.T) {
	var got interface{}
	var err error
	job := Job{
		Net:       model.PaperTestbed(),
		Placement: mustPlacement(t, []string{model.Sparc2Cluster}, []int{2}),
		Vector:    core.Vector{1, 1},
		Topology:  topo.OneD{},
		Body: func(task *Task) {
			switch task.Rank() {
			case 0:
				got, err = task.RecvDetect(1, 10, 4)
			case 1:
				task.Compute(100000, model.OpFloat) // ~30 ms on a Sparc2
				task.Send(0, 100, "alive after all")
			}
		},
	}
	if _, runErr := Run(job); runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	if err != nil || got != "alive after all" {
		t.Fatalf("RecvDetect = (%v, %v), want late delivery", got, err)
	}
}

func mustPlacement(t *testing.T, names []string, counts []int) topo.Placement {
	t.Helper()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}
