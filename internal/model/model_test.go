package model

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperTestbedValidates(t *testing.T) {
	n := PaperTestbed()
	if err := n.Validate(); err != nil {
		t.Fatalf("PaperTestbed does not validate: %v", err)
	}
	if got := n.TotalProcs(); got != 12 {
		t.Errorf("TotalProcs = %d, want 12", got)
	}
	if got := n.TotalAvailable(); got != 12 {
		t.Errorf("TotalAvailable = %d, want 12", got)
	}
}

func TestFigure1NetworkValidates(t *testing.T) {
	n := Figure1Network()
	if err := n.Validate(); err != nil {
		t.Fatalf("Figure1Network does not validate: %v", err)
	}
	if len(n.Segments) != 3 || len(n.Clusters) != 3 {
		t.Fatalf("want 3 clusters on 3 segments, got %d/%d", len(n.Clusters), len(n.Segments))
	}
}

func TestValidateRejectsEmptyNetwork(t *testing.T) {
	var n Network
	if err := n.Validate(); !errors.Is(err, ErrNoClusters) {
		t.Errorf("Validate() = %v, want ErrNoClusters", err)
	}
}

func TestValidateRejectsUnequalBandwidth(t *testing.T) {
	n := PaperTestbed()
	n.Segments[1].BytesPerMs = 999
	if err := n.Validate(); !errors.Is(err, ErrUnequalBandwidth) {
		t.Errorf("Validate() = %v, want ErrUnequalBandwidth", err)
	}
}

func TestValidateRejectsSharedSegment(t *testing.T) {
	n := PaperTestbed()
	n.Clusters[1].Segment = n.Clusters[0].Segment
	if err := n.Validate(); !errors.Is(err, ErrSharedSegment) {
		t.Errorf("Validate() = %v, want ErrSharedSegment", err)
	}
}

func TestValidateRejectsUnknownSegment(t *testing.T) {
	n := PaperTestbed()
	n.Clusters[0].Segment = "nonexistent"
	if err := n.Validate(); !errors.Is(err, ErrUnknownSegment) {
		t.Errorf("Validate() = %v, want ErrUnknownSegment", err)
	}
}

func TestValidateRejectsUnroutedSegment(t *testing.T) {
	n := PaperTestbed()
	n.Router.Segments = []string{"ether-1"}
	if err := n.Validate(); !errors.Is(err, ErrUnknownSegment) {
		t.Errorf("Validate() = %v, want ErrUnknownSegment for unrouted segment", err)
	}
}

func TestValidateRejectsDuplicateClusterName(t *testing.T) {
	n := PaperTestbed()
	n.Clusters[1].Name = n.Clusters[0].Name
	n.Clusters[1].Segment = "ether-2" // keep segment rule satisfied
	if err := n.Validate(); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("Validate() = %v, want ErrDuplicateName", err)
	}
}

func TestValidateRejectsBadParameters(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Network)
	}{
		{"zero procs", func(n *Network) { n.Clusters[0].Procs = 0 }},
		{"negative available", func(n *Network) { n.Clusters[0].Available = -1 }},
		{"available exceeds procs", func(n *Network) { n.Clusters[0].Available = 99 }},
		{"zero float op time", func(n *Network) { n.Clusters[0].FloatOpTime = 0 }},
		{"zero int op time", func(n *Network) { n.Clusters[0].IntOpTime = 0 }},
		{"negative msg overhead", func(n *Network) { n.Clusters[0].MsgOverheadMs = -1 }},
		{"negative host per byte", func(n *Network) { n.Clusters[0].HostPerByteMs = -1 }},
		{"zero bandwidth", func(n *Network) { n.Segments[0].BytesPerMs = 0; n.Segments[1].BytesPerMs = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := PaperTestbed()
			tc.mutate(n)
			if err := n.Validate(); !errors.Is(err, ErrBadParameter) {
				t.Errorf("Validate() = %v, want ErrBadParameter", err)
			}
		})
	}
}

func TestBySpeedOrdersFastestFirst(t *testing.T) {
	n := PaperTestbed()
	order := n.BySpeed(OpFloat)
	if order[0].Name != Sparc2Cluster || order[1].Name != IPCCluster {
		t.Errorf("BySpeed(OpFloat) order = [%s %s], want [sparc2 ipc]", order[0].Name, order[1].Name)
	}
	// Ordering must not mutate the original slice.
	if n.Clusters[0].Name != Sparc2Cluster {
		t.Error("BySpeed mutated Network.Clusters")
	}
}

func TestBySpeedTieBreaksByName(t *testing.T) {
	n := &Network{
		Clusters: []*Cluster{
			{Name: "zeta", Procs: 1, Available: 1, FloatOpTime: 1, IntOpTime: 1, Segment: "s1"},
			{Name: "alpha", Procs: 1, Available: 1, FloatOpTime: 1, IntOpTime: 1, Segment: "s2"},
		},
		Segments: []*Segment{{Name: "s1", BytesPerMs: 1}, {Name: "s2", BytesPerMs: 1}},
		Router:   Router{Segments: []string{"s1", "s2"}},
	}
	order := n.BySpeed(OpFloat)
	if order[0].Name != "alpha" {
		t.Errorf("tie-break order[0] = %q, want alpha", order[0].Name)
	}
}

func TestSameSegmentAndCoercion(t *testing.T) {
	n := Figure1Network()
	if n.SameSegment("sun4", "hp") {
		t.Error("sun4 and hp are on different segments")
	}
	if !n.SameSegment("sun4", "sun4") {
		t.Error("a cluster shares a segment with itself")
	}
	if n.NeedsCoercion("sun4", "hp") {
		t.Error("sun4↔hp are both big-endian; no coercion")
	}
	if !n.NeedsCoercion("sun4", "rs6000") {
		t.Error("sun4↔rs6000 differ in format; coercion required")
	}
	if n.SameSegment("sun4", "nope") || n.NeedsCoercion("nope", "sun4") {
		t.Error("unknown cluster names should report false")
	}
}

func TestLookupHelpers(t *testing.T) {
	n := PaperTestbed()
	if c := n.Cluster(Sparc2Cluster); c == nil || c.Arch != "Sun4 Sparc2" {
		t.Errorf("Cluster(sparc2) = %+v", c)
	}
	if n.Cluster("nope") != nil {
		t.Error("Cluster(nope) should be nil")
	}
	if s := n.SegmentOf(IPCCluster); s == nil || s.Name != "ether-2" {
		t.Errorf("SegmentOf(ipc) = %+v", s)
	}
	if n.SegmentOf("nope") != nil {
		t.Error("SegmentOf(nope) should be nil")
	}
	if n.Segment("nope") != nil {
		t.Error("Segment(nope) should be nil")
	}
}

func TestEffectivePerByteMs(t *testing.T) {
	n := PaperTestbed()
	got := n.EffectivePerByteMs(Sparc2Cluster)
	want := 1.0/1250 + 0.000615
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("EffectivePerByteMs(sparc2) = %v, want %v", got, want)
	}
	if n.EffectivePerByteMs("nope") != 0 {
		t.Error("unknown cluster should report 0")
	}
}

func TestOpClassAndOpTime(t *testing.T) {
	c := &Cluster{FloatOpTime: 2, IntOpTime: 1}
	if c.OpTime(OpFloat) != 2 || c.OpTime(OpInt) != 1 {
		t.Errorf("OpTime = (%v, %v), want (2, 1)", c.OpTime(OpFloat), c.OpTime(OpInt))
	}
	if OpFloat.String() != "float" || OpInt.String() != "int" {
		t.Errorf("OpClass strings = %q, %q", OpFloat, OpInt)
	}
}

func TestProcIDString(t *testing.T) {
	p := ProcID{Cluster: "sparc2", Index: 3}
	if got := p.String(); got != "sparc2/3" {
		t.Errorf("ProcID.String() = %q, want sparc2/3", got)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, build := range []func() *Network{PaperTestbed, Figure1Network} {
		orig := build()
		var buf bytes.Buffer
		if err := WriteSpec(&buf, orig); err != nil {
			t.Fatalf("WriteSpec: %v", err)
		}
		got, err := ReadSpec(&buf)
		if err != nil {
			t.Fatalf("ReadSpec: %v", err)
		}
		if len(got.Clusters) != len(orig.Clusters) {
			t.Fatalf("round trip lost clusters: %d vs %d", len(got.Clusters), len(orig.Clusters))
		}
		for i := range orig.Clusters {
			a, b := orig.Clusters[i], got.Clusters[i]
			if *a != *b {
				t.Errorf("cluster %d round trip: %+v vs %+v", i, a, b)
			}
		}
		if got.Router.PerByteMs != orig.Router.PerByteMs {
			t.Errorf("router per-byte: %v vs %v", got.Router.PerByteMs, orig.Router.PerByteMs)
		}
		if got.Coerce != orig.Coerce {
			t.Errorf("coerce policy: %+v vs %+v", got.Coerce, orig.Coerce)
		}
	}
}

func TestReadSpecDefaults(t *testing.T) {
	in := `{
	  "clusters": [{"name":"c1","procs":4,"float_op_ms":0.001,"int_op_ms":0.001,"segment":"s1"}],
	  "segments": [{"name":"s1","bytes_per_ms":1250}],
	  "router": {}
	}`
	n, err := ReadSpec(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadSpec: %v", err)
	}
	if n.Clusters[0].Available != 4 {
		t.Errorf("omitted available should default to procs; got %d", n.Clusters[0].Available)
	}
	if n.Clusters[0].Format != FormatBigEndian {
		t.Errorf("omitted format should default to big-endian; got %q", n.Clusters[0].Format)
	}
}

func TestReadSpecRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":        `not json`,
		"unknown field":  `{"clusters":[],"segments":[],"router":{},"bogus":1}`,
		"no clusters":    `{"clusters":[],"segments":[],"router":{}}`,
		"fails validate": `{"clusters":[{"name":"c","procs":0,"float_op_ms":1,"int_op_ms":1,"segment":"s"}],"segments":[{"name":"s","bytes_per_ms":1}],"router":{}}`,
	}
	for name, in := range cases {
		if _, err := ReadSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadSpec accepted invalid input", name)
		}
	}
}

// Property: any network built from positive parameters with distinct names
// and a router joining all segments validates, and BySpeed returns a
// permutation sorted by op time.
func TestBySpeedSortedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 || len(times) > 20 {
			return true // skip degenerate/huge inputs
		}
		n := &Network{}
		segs := make([]string, 0, len(times))
		for i, raw := range times {
			opMs := float64(raw%1000+1) / 1000
			name := string(rune('a'+i%26)) + string(rune('0'+i/26))
			seg := "seg-" + name
			n.Clusters = append(n.Clusters, &Cluster{
				Name: name, Procs: 1, Available: 1,
				FloatOpTime: opMs, IntOpTime: opMs, Segment: seg,
			})
			n.Segments = append(n.Segments, &Segment{Name: seg, BytesPerMs: 1250})
			segs = append(segs, seg)
		}
		n.Router.Segments = segs
		if err := n.Validate(); err != nil {
			return false
		}
		order := n.BySpeed(OpFloat)
		if len(order) != len(n.Clusters) {
			return false
		}
		seen := map[string]bool{}
		for i, c := range order {
			if seen[c.Name] {
				return false
			}
			seen[c.Name] = true
			if i > 0 && order[i-1].FloatOpTime > c.FloatOpTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetasystemTestbedValidates(t *testing.T) {
	n := MetasystemTestbed()
	if err := n.Validate(); err != nil {
		t.Fatalf("MetasystemTestbed does not validate: %v", err)
	}
	if n.TotalProcs() != 20 {
		t.Errorf("TotalProcs = %d, want 20", n.TotalProcs())
	}
	// The multicomputer must order first by speed.
	if order := n.BySpeed(OpFloat); order[0].Name != "paragon" {
		t.Errorf("fastest cluster = %q, want paragon", order[0].Name)
	}
	if !n.NeedsCoercion("paragon", Sparc2Cluster) {
		t.Error("paragon is little-endian; coercion to Sun4s expected")
	}
}

func TestMetasystemFlagRelaxesBandwidth(t *testing.T) {
	n := PaperTestbed()
	n.Segments[1].BytesPerMs = 99999
	if err := n.Validate(); !errors.Is(err, ErrUnequalBandwidth) {
		t.Fatalf("unequal bandwidth accepted without the flag: %v", err)
	}
	n.Metasystem = true
	if err := n.Validate(); err != nil {
		t.Errorf("metasystem flag should relax the check: %v", err)
	}
}

func TestSpecRoundTripMetasystem(t *testing.T) {
	orig := MetasystemTestbed()
	var buf bytes.Buffer
	if err := WriteSpec(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Metasystem {
		t.Error("metasystem flag lost in round trip")
	}
	if got.Cluster("paragon") == nil {
		t.Error("paragon cluster lost")
	}
}

func TestValidateClustersWithoutSegments(t *testing.T) {
	// Fuzz-found: a spec with clusters but no segments must error, not
	// panic (JSON field matching is case insensitive, so "Clusters"
	// decodes into the lowercase-tagged field).
	if _, err := ReadSpec(strings.NewReader(`{"Clusters":[{}]}`)); err == nil {
		t.Error("segmentless cluster accepted")
	}
	n := &Network{Clusters: []*Cluster{{Name: "a", Procs: 1, Available: 1,
		FloatOpTime: 1, IntOpTime: 1, Segment: "s"}}}
	if err := n.Validate(); err == nil {
		t.Error("network without segments accepted")
	}
}
