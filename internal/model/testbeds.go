package model

// This file constructs the canonical networks from the paper: the
// Sparc2+IPC evaluation testbed of Section 6.0, and the three-cluster
// example of Fig. 1. The communication parameters of the testbed are
// calibrated so that benchmarking the simulated network and fitting Eq. 1
// recovers constants close to the paper's published ones (see DESIGN.md §5):
//
//	T_comm[C1,1-D] ≈ (-0.0055 + 0.00283·P1)·b + 1.1·P1     (Sparc2)
//	T_comm[C2,1-D] ≈ (-0.0123 + 0.00457·P2)·b + 1.9·P2     (IPC)
//	T_router[C1,C2] ≈ 0.0006·b
//
// In a 1-D cycle of p processors, 2(p-1) messages serialize on the shared
// channel; each occupies it for MsgOverheadMs + b·(1/BytesPerMs +
// HostPerByteMs). Matching coefficients: 2·(1/1250 + host) = c4 and
// 2·overhead = c2.

// Names of the clusters in the paper's evaluation testbed.
const (
	Sparc2Cluster = "sparc2"
	IPCCluster    = "ipc"
)

// PaperTestbed returns the Section 6.0 evaluation network: 6 Sun4 Sparc2s
// and 6 Sun4 IPCs on two ethernet segments joined by a router. All machines
// are big-endian Sun4s, so no coercion occurs (as in the paper).
func PaperTestbed() *Network {
	return &Network{
		Clusters: []*Cluster{
			{
				Name: Sparc2Cluster, Arch: "Sun4 Sparc2",
				Procs: 6, Available: 6,
				FloatOpTime: 0.0003, // 0.3 µs per flop (paper §6)
				IntOpTime:   0.0002,
				Format:      FormatBigEndian,
				Segment:     "ether-1",
				// 2·(1/1250 + host) = 0.00283 → host = 0.000615 ms/byte
				MsgOverheadMs: 0.55, // 2·0.55 = 1.1 ms/proc latency slope
				HostPerByteMs: 0.000615,
			},
			{
				Name: IPCCluster, Arch: "Sun4 IPC",
				Procs: 6, Available: 6,
				FloatOpTime: 0.0006, // 0.6 µs per flop (paper §6)
				IntOpTime:   0.0004,
				Format:      FormatBigEndian,
				Segment:     "ether-2",
				// 2·(1/1250 + host) = 0.00457 → host = 0.001485 ms/byte
				MsgOverheadMs: 0.95, // 2·0.95 = 1.9 ms/proc latency slope
				HostPerByteMs: 0.001485,
			},
		},
		Segments: []*Segment{
			{Name: "ether-1", BytesPerMs: 1250}, // 10 Mb/s ethernet
			{Name: "ether-2", BytesPerMs: 1250},
		},
		Router: Router{
			Name:      "router-1",
			PerByteMs: 0.0006, // paper's fitted T_router slope
			Segments:  []string{"ether-1", "ether-2"},
		},
	}
}

// MetasystemTestbed returns a metasystem (§7 future work): the paper's
// workstation testbed extended with an 8-node multicomputer whose mesh
// interconnect appears as one very fast private segment. Segment
// bandwidths are unequal, so Metasystem is set; everything else — the
// per-cluster benchmarked cost functions, the partitioning method — works
// unchanged.
func MetasystemTestbed() *Network {
	net := PaperTestbed()
	net.Metasystem = true
	net.Clusters = append(net.Clusters, &Cluster{
		Name: "paragon", Arch: "Intel Paragon (8-node partition)",
		Procs: 8, Available: 8,
		FloatOpTime: 0.0001, // 0.1 µs per flop
		IntOpTime:   0.00008,
		Format:      FormatLittleEndian,
		Segment:     "mesh-1",
		// Mesh interconnect: microsecond-scale per-hop cost, fast DMA.
		MsgOverheadMs: 0.03,
		HostPerByteMs: 0.00001,
	})
	net.Segments = append(net.Segments, &Segment{
		Name:       "mesh-1",
		BytesPerMs: 200000, // 200 MB/s backplane
	})
	net.Router.Segments = append(net.Router.Segments, "mesh-1")
	net.Coerce = CoercePolicy{PerByteMs: 0.0004}
	return net
}

// Figure1Network returns the illustrative network of Fig. 1: Sun4, HP, and
// RS-6000 clusters on three ethernet segments joined by one router. The
// speeds are representative early-90s values; the HP and RS-6000 rows use
// little-endian vs big-endian formats purely to exercise the coercion path
// (the real machines were big-endian — the simulator treats format as an
// abstract tag).
func Figure1Network() *Network {
	return &Network{
		Clusters: []*Cluster{
			{
				Name: "sun4", Arch: "Sun4", Procs: 4, Available: 4,
				FloatOpTime: 0.0004, IntOpTime: 0.0003,
				Format: FormatBigEndian, Segment: "seg-1",
				MsgOverheadMs: 0.6, HostPerByteMs: 0.0008,
			},
			{
				Name: "hp", Arch: "HP 9000", Procs: 4, Available: 4,
				FloatOpTime: 0.00025, IntOpTime: 0.0002,
				Format: FormatBigEndian, Segment: "seg-2",
				MsgOverheadMs: 0.5, HostPerByteMs: 0.0006,
			},
			{
				Name: "rs6000", Arch: "IBM RS-6000", Procs: 4, Available: 4,
				FloatOpTime: 0.0002, IntOpTime: 0.00018,
				Format: FormatLittleEndian, Segment: "seg-3",
				MsgOverheadMs: 0.45, HostPerByteMs: 0.0005,
			},
		},
		Segments: []*Segment{
			{Name: "seg-1", BytesPerMs: 1250},
			{Name: "seg-2", BytesPerMs: 1250},
			{Name: "seg-3", BytesPerMs: 1250},
		},
		Router: Router{
			Name:      "router-1",
			PerByteMs: 0.0006,
			Segments:  []string{"seg-1", "seg-2", "seg-3"},
		},
		Coerce: CoercePolicy{PerByteMs: 0.0004},
	}
}
