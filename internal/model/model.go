// Package model defines the heterogeneous network model of Section 3.0 of
// the paper: processors grouped into homogeneous clusters, one cluster per
// private-bandwidth network segment, segments joined pairwise by a single
// router. The model carries exactly the information each cluster manager
// stores — bandwidth, processor counts, and instruction speeds — plus the
// data format needed to decide when cross-cluster messages require coercion.
//
// All times in this package (and throughout the repository) are expressed in
// milliseconds, matching the units of the paper's published cost constants.
//
//netpart:deterministic
package model

import (
	"errors"
	"fmt"
	"sort"
)

// Format identifies a machine data format. Messages between clusters with
// different formats incur a per-byte coercion cost (Section 3.0).
type Format string

// Common data formats. The 1994 testbed was all big-endian Sun hardware;
// the simulator supports mixed formats to exercise the coercion path.
const (
	FormatBigEndian    Format = "big-endian"
	FormatLittleEndian Format = "little-endian"
)

// Cluster is a homogeneous group of processors on one network segment,
// described by the information its cluster manager stores: node counts,
// instruction speeds, and (via the segment) bandwidth.
type Cluster struct {
	// Name identifies the cluster, e.g. "sparc2".
	Name string
	// Arch names the processor type, e.g. "Sun4 Sparc2". Informational.
	Arch string
	// Procs is the total number of processors in the cluster.
	Procs int
	// Available is the number of processors currently below the cluster
	// manager's load threshold. It is maintained by package manager and
	// defaults to Procs.
	Available int
	// FloatOpTime is the average time per floating-point operation in
	// milliseconds (the paper's S_i; 0.3 µs = 3.0e-4 ms for the Sparc2).
	//netpart:unit ms/ops
	FloatOpTime float64
	// IntOpTime is the average time per integer operation in milliseconds.
	//netpart:unit ms/ops
	IntOpTime float64
	// Format is the cluster's data format, used to decide coercion.
	Format Format
	// Segment names the network segment the cluster sits on.
	Segment string
	// MsgOverheadMs is the per-message host cost (protocol stack, system
	// call, NIC programming) in milliseconds. Slower processors have larger
	// overheads, which is why the paper's fitted cost functions differ
	// between clusters even though segment bandwidth is equal.
	//netpart:unit ms
	MsgOverheadMs float64
	// HostPerByteMs is the per-byte host protocol-processing cost in
	// milliseconds per byte (checksumming, copying). It adds to the wire
	// time 1/Segment.BytesPerMs to give the effective per-byte rate the
	// paper's constants capture.
	//netpart:unit ms/bytes
	HostPerByteMs float64
}

// OpTime returns the per-operation time in milliseconds for the given
// operation class.
//
//netpart:unit return ms/ops
func (c *Cluster) OpTime(class OpClass) float64 {
	if class == OpInt {
		return c.IntOpTime
	}
	return c.FloatOpTime
}

// OpClass distinguishes the two instruction-speed entries a cluster manager
// stores (integer and floating point).
type OpClass int

// Operation classes.
const (
	OpFloat OpClass = iota
	OpInt
)

// String returns "float" or "int".
func (c OpClass) String() string {
	if c == OpInt {
		return "int"
	}
	return "float"
}

// Segment is a physical network segment with private bandwidth. The paper
// assumes all segments have equal communication bandwidth; Validate enforces
// this.
type Segment struct {
	// Name identifies the segment, e.g. "ether-1".
	Name string
	// BytesPerMs is the raw channel rate in bytes per millisecond.
	// 10 Mb/s ethernet is 1250 bytes/ms. The paper assumes all segments
	// have equal bandwidth; Validate enforces this.
	//netpart:unit bytes/ms
	BytesPerMs float64
}

// Router joins every pair of segments (the paper's third assumption: a
// single router, so every message crosses at most one hop). Router transit
// adds a per-byte delay and contends for the channel like one more station.
type Router struct {
	// Name identifies the router.
	Name string
	// PerByteMs is the internal router delay per byte in milliseconds
	// (the paper fits T_router[C1,C2](b) ≈ 0.0006·b ms).
	//netpart:unit ms/bytes
	PerByteMs float64
	// PerMessageMs is a fixed per-message forwarding cost in milliseconds.
	//netpart:unit ms
	PerMessageMs float64
	// Segments lists the segments the router joins.
	Segments []string
}

// CoercePerByteMs is the per-byte cost of converting between two data
// formats. The model charges it only when formats differ.
type CoercePolicy struct {
	// PerByteMs is the conversion cost per byte in milliseconds.
	//netpart:unit ms/bytes
	PerByteMs float64
}

// Network is the full heterogeneous network: clusters, segments, and the
// router joining them.
type Network struct {
	Clusters []*Cluster
	Segments []*Segment
	Router   Router
	Coerce   CoercePolicy
	// Metasystem relaxes the paper's equal-segment-bandwidth assumption
	// (the §7 future-work direction of mixing machine classes, e.g. a
	// multicomputer's fast interconnect beside ethernet segments). The
	// per-cluster benchmarked cost functions already capture unequal
	// bandwidth, so only validation changes.
	Metasystem bool
}

// Validation errors.
var (
	ErrNoClusters       = errors.New("model: network has no clusters")
	ErrUnequalBandwidth = errors.New("model: segments have unequal bandwidth")
	ErrSharedSegment    = errors.New("model: segment hosts more than one cluster")
	ErrUnknownSegment   = errors.New("model: cluster references unknown segment")
	ErrDuplicateName    = errors.New("model: duplicate name")
	ErrBadParameter     = errors.New("model: parameter out of range")
)

// Validate checks the model against the paper's three structural
// assumptions: equal segment bandwidth, one cluster per segment, and a
// single router joining every pair of segments. It also checks basic
// parameter sanity (positive speeds and counts).
func (n *Network) Validate() error {
	if len(n.Clusters) == 0 {
		return ErrNoClusters
	}
	segByName := make(map[string]*Segment, len(n.Segments))
	for _, s := range n.Segments {
		if s.Name == "" {
			return fmt.Errorf("%w: empty segment name", ErrDuplicateName)
		}
		if _, dup := segByName[s.Name]; dup {
			return fmt.Errorf("%w: segment %q", ErrDuplicateName, s.Name)
		}
		if s.BytesPerMs <= 0 {
			return fmt.Errorf("%w: segment %q bandwidth %v", ErrBadParameter, s.Name, s.BytesPerMs)
		}
		segByName[s.Name] = s
	}
	// Equal-bandwidth assumption (relaxed for metasystems, §7).
	if !n.Metasystem && len(n.Segments) > 1 {
		for _, s := range n.Segments[1:] {
			if s.BytesPerMs != n.Segments[0].BytesPerMs {
				return fmt.Errorf("%w: %q=%v vs %q=%v bytes/ms (set Metasystem to relax)",
					ErrUnequalBandwidth, n.Segments[0].Name, n.Segments[0].BytesPerMs, s.Name, s.BytesPerMs)
			}
		}
	}
	seenCluster := make(map[string]bool, len(n.Clusters))
	segUsed := make(map[string]string, len(n.Segments))
	for _, c := range n.Clusters {
		if c.Name == "" {
			return fmt.Errorf("%w: empty cluster name", ErrDuplicateName)
		}
		if seenCluster[c.Name] {
			return fmt.Errorf("%w: cluster %q", ErrDuplicateName, c.Name)
		}
		seenCluster[c.Name] = true
		if _, ok := segByName[c.Segment]; !ok {
			return fmt.Errorf("%w: cluster %q on segment %q", ErrUnknownSegment, c.Name, c.Segment)
		}
		if prev, used := segUsed[c.Segment]; used {
			return fmt.Errorf("%w: segment %q hosts %q and %q", ErrSharedSegment, c.Segment, prev, c.Name)
		}
		segUsed[c.Segment] = c.Name
		if c.Procs <= 0 {
			return fmt.Errorf("%w: cluster %q has %d processors", ErrBadParameter, c.Name, c.Procs)
		}
		if c.Available < 0 || c.Available > c.Procs {
			return fmt.Errorf("%w: cluster %q available=%d of %d", ErrBadParameter, c.Name, c.Available, c.Procs)
		}
		if c.FloatOpTime <= 0 || c.IntOpTime <= 0 {
			return fmt.Errorf("%w: cluster %q op times (%v, %v)", ErrBadParameter, c.Name, c.FloatOpTime, c.IntOpTime)
		}
		if c.MsgOverheadMs < 0 || c.HostPerByteMs < 0 {
			return fmt.Errorf("%w: cluster %q comm costs (%v, %v)", ErrBadParameter, c.Name, c.MsgOverheadMs, c.HostPerByteMs)
		}
	}
	if len(n.Segments) > 1 {
		joined := make(map[string]bool, len(n.Router.Segments))
		for _, s := range n.Router.Segments {
			if _, ok := segByName[s]; !ok {
				return fmt.Errorf("%w: router joins unknown segment %q", ErrUnknownSegment, s)
			}
			joined[s] = true
		}
		for _, s := range n.Segments {
			if !joined[s.Name] {
				return fmt.Errorf("%w: segment %q not joined by router", ErrUnknownSegment, s.Name)
			}
		}
	}
	return nil
}

// Cluster returns the named cluster, or nil if absent.
func (n *Network) Cluster(name string) *Cluster {
	for _, c := range n.Clusters {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Segment returns the named segment, or nil if absent.
func (n *Network) Segment(name string) *Segment {
	for _, s := range n.Segments {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SegmentOf returns the segment hosting the named cluster, or nil.
func (n *Network) SegmentOf(cluster string) *Segment {
	c := n.Cluster(cluster)
	if c == nil {
		return nil
	}
	return n.Segment(c.Segment)
}

// SameSegment reports whether two clusters share a segment (and therefore
// communicate without crossing the router).
func (n *Network) SameSegment(a, b string) bool {
	ca, cb := n.Cluster(a), n.Cluster(b)
	return ca != nil && cb != nil && ca.Segment == cb.Segment
}

// NeedsCoercion reports whether messages between the two clusters require
// data-format conversion.
func (n *Network) NeedsCoercion(a, b string) bool {
	ca, cb := n.Cluster(a), n.Cluster(b)
	return ca != nil && cb != nil && ca.Format != cb.Format
}

// TotalProcs reports the total number of processors in the network.
func (n *Network) TotalProcs() int {
	sum := 0
	for _, c := range n.Clusters {
		sum += c.Procs
	}
	return sum
}

// TotalAvailable reports the total number of available processors.
func (n *Network) TotalAvailable() int {
	sum := 0
	for _, c := range n.Clusters {
		sum += c.Available
	}
	return sum
}

// BySpeed returns the clusters ordered fastest-first by the instruction
// rate for the given operation class (the ordering the partitioning
// heuristic of Section 5.0 uses). Ties break by name for determinism.
func (n *Network) BySpeed(class OpClass) []*Cluster {
	out := make([]*Cluster, len(n.Clusters))
	copy(out, n.Clusters)
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := out[i].OpTime(class), out[j].OpTime(class)
		if ti != tj {
			return ti < tj // smaller op time = faster
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// EffectivePerByteMs is the per-byte time a message from the named cluster
// occupies its segment: wire time plus host protocol processing. This is the
// quantity the fitted Eq. 1 bandwidth constants capture.
//
//netpart:unit return ms/bytes
func (n *Network) EffectivePerByteMs(cluster string) float64 {
	c := n.Cluster(cluster)
	if c == nil {
		return 0
	}
	s := n.Segment(c.Segment)
	if s == nil {
		return c.HostPerByteMs
	}
	return 1/s.BytesPerMs + c.HostPerByteMs
}

// ProcID names one processor: a cluster and an index within it.
type ProcID struct {
	Cluster string
	Index   int
}

// String returns "cluster/index".
func (p ProcID) String() string { return fmt.Sprintf("%s/%d", p.Cluster, p.Index) }
