package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// spec mirrors Network for JSON encoding. It exists so that the wire format
// is explicit and stable even if the in-memory types grow fields.
type spec struct {
	Clusters   []clusterSpec `json:"clusters"`
	Segments   []segmentSpec `json:"segments"`
	Router     routerSpec    `json:"router"`
	Coerce     coerceSpec    `json:"coerce,omitempty"`
	Metasystem bool          `json:"metasystem,omitempty"`
}

type clusterSpec struct {
	Name          string  `json:"name"`
	Arch          string  `json:"arch,omitempty"`
	Procs         int     `json:"procs"`
	Available     int     `json:"available,omitempty"`
	FloatOpTime   float64 `json:"float_op_ms"`
	IntOpTime     float64 `json:"int_op_ms"`
	Format        Format  `json:"format,omitempty"`
	Segment       string  `json:"segment"`
	MsgOverheadMs float64 `json:"msg_overhead_ms,omitempty"`
	HostPerByteMs float64 `json:"host_per_byte_ms,omitempty"`
}

type segmentSpec struct {
	Name       string  `json:"name"`
	BytesPerMs float64 `json:"bytes_per_ms"`
}

type routerSpec struct {
	Name         string   `json:"name,omitempty"`
	PerByteMs    float64  `json:"per_byte_ms,omitempty"`
	PerMessageMs float64  `json:"per_message_ms,omitempty"`
	Segments     []string `json:"segments,omitempty"`
}

type coerceSpec struct {
	PerByteMs float64 `json:"per_byte_ms,omitempty"`
}

// WriteSpec encodes the network as indented JSON.
func WriteSpec(w io.Writer, n *Network) error {
	s := spec{
		Router: routerSpec{
			Name:         n.Router.Name,
			PerByteMs:    n.Router.PerByteMs,
			PerMessageMs: n.Router.PerMessageMs,
			Segments:     n.Router.Segments,
		},
		Coerce:     coerceSpec{PerByteMs: n.Coerce.PerByteMs},
		Metasystem: n.Metasystem,
	}
	for _, c := range n.Clusters {
		s.Clusters = append(s.Clusters, clusterSpec{
			Name: c.Name, Arch: c.Arch, Procs: c.Procs, Available: c.Available,
			FloatOpTime: c.FloatOpTime, IntOpTime: c.IntOpTime,
			Format: c.Format, Segment: c.Segment,
			MsgOverheadMs: c.MsgOverheadMs, HostPerByteMs: c.HostPerByteMs,
		})
	}
	for _, seg := range n.Segments {
		s.Segments = append(s.Segments, segmentSpec{Name: seg.Name, BytesPerMs: seg.BytesPerMs})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSpec decodes a network from JSON and validates it. Clusters with a
// zero (omitted) "available" count default to fully available.
func ReadSpec(r io.Reader) (*Network, error) {
	var s spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decoding network spec: %w", err)
	}
	n := &Network{
		Router: Router{
			Name:         s.Router.Name,
			PerByteMs:    s.Router.PerByteMs,
			PerMessageMs: s.Router.PerMessageMs,
			Segments:     s.Router.Segments,
		},
		Coerce:     CoercePolicy{PerByteMs: s.Coerce.PerByteMs},
		Metasystem: s.Metasystem,
	}
	for _, c := range s.Clusters {
		avail := c.Available
		if avail == 0 {
			avail = c.Procs
		}
		format := c.Format
		if format == "" {
			format = FormatBigEndian
		}
		n.Clusters = append(n.Clusters, &Cluster{
			Name: c.Name, Arch: c.Arch, Procs: c.Procs, Available: avail,
			FloatOpTime: c.FloatOpTime, IntOpTime: c.IntOpTime,
			Format: format, Segment: c.Segment,
			MsgOverheadMs: c.MsgOverheadMs, HostPerByteMs: c.HostPerByteMs,
		})
	}
	for _, seg := range s.Segments {
		n.Segments = append(n.Segments, &Segment{Name: seg.Name, BytesPerMs: seg.BytesPerMs})
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
