package model

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSpec hardens the network-spec decoder: arbitrary JSON must never
// panic, and everything it accepts must validate and round-trip.
func FuzzReadSpec(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteSpec(&buf, PaperTestbed())
	f.Add(buf.String())
	f.Add(`{"clusters":[],"segments":[],"router":{}}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, src string) {
		n, err := ReadSpec(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("ReadSpec accepted a network that fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := WriteSpec(&out, n); err != nil {
			t.Fatalf("accepted network does not re-encode: %v", err)
		}
	})
}
