// Package annspec compiles declarative annotation specifications into the
// callback functions the partitioning method consumes — the paper's §7
// future-work item of replacing programmer-written callbacks with
// compiler-generated ones. A specification names the program's phases and
// gives their complexities as arithmetic expressions over problem
// parameters (e.g. "5*N"); the compiler parses the expressions once and
// emits closures evaluating them at partitioning time.
//
//netpart:deterministic
package annspec

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a compiled arithmetic expression over named variables.
type Expr struct {
	root node
	src  string
}

// node is one AST node.
type node interface {
	eval(vars map[string]float64) (float64, error)
}

// Parsing and evaluation errors.
var (
	ErrParse   = errors.New("annspec: parse error")
	ErrUnbound = errors.New("annspec: unbound variable")
	ErrBadCall = errors.New("annspec: bad function call")
)

// Parse compiles an expression. The grammar:
//
//	expr   := term (('+'|'-') term)*
//	term   := unary (('*'|'/'|'%') unary)*
//	unary  := '-' unary | power
//	power  := atom ('^' unary)?          (right associative)
//	atom   := number | ident | ident '(' expr (',' expr)* ')' | '(' expr ')'
//
// Functions: sqrt, log2, ln, ceil, floor, abs, min, max, pow.
func Parse(src string) (*Expr, error) {
	p := &parser{src: src, toks: nil}
	if err := p.lex(); err != nil {
		return nil, err
	}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("%w: trailing input %q in %q", ErrParse, p.toks[p.pos].text, src)
	}
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse for expressions known valid at compile time.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates the expression with the given variable bindings.
func (e *Expr) Eval(vars map[string]float64) (float64, error) {
	return e.root.eval(vars)
}

// String returns the original source.
func (e *Expr) String() string { return e.src }

// Vars returns the free variables of the expression, sorted and deduped.
func (e *Expr) Vars() []string {
	seen := map[string]bool{}
	var walk func(n node)
	walk = func(n node) {
		switch v := n.(type) {
		case varNode:
			seen[string(v)] = true
		case binNode:
			walk(v.l)
			walk(v.r)
		case negNode:
			walk(v.n)
		case callNode:
			for _, a := range v.args {
				walk(a)
			}
		}
	}
	walk(e.root)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// AST nodes.

type numNode float64

func (n numNode) eval(map[string]float64) (float64, error) { return float64(n), nil }

type varNode string

func (n varNode) eval(vars map[string]float64) (float64, error) {
	v, ok := vars[string(n)]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnbound, string(n))
	}
	return v, nil
}

type negNode struct{ n node }

func (n negNode) eval(vars map[string]float64) (float64, error) {
	v, err := n.n.eval(vars)
	return -v, err
}

type binNode struct {
	op   byte
	l, r node
}

func (n binNode) eval(vars map[string]float64) (float64, error) {
	l, err := n.l.eval(vars)
	if err != nil {
		return 0, err
	}
	r, err := n.r.eval(vars)
	if err != nil {
		return 0, err
	}
	switch n.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("annspec: division by zero")
		}
		return l / r, nil
	case '%':
		if r == 0 {
			return 0, fmt.Errorf("annspec: modulo by zero")
		}
		return math.Mod(l, r), nil
	case '^':
		return math.Pow(l, r), nil
	}
	return 0, fmt.Errorf("%w: operator %q", ErrParse, n.op)
}

type callNode struct {
	name string
	args []node
}

func (n callNode) eval(vars map[string]float64) (float64, error) {
	args := make([]float64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(vars)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	need := func(k int) error {
		if len(args) != k {
			return fmt.Errorf("%w: %s takes %d argument(s), got %d", ErrBadCall, n.name, k, len(args))
		}
		return nil
	}
	switch n.name {
	case "sqrt":
		return math.Sqrt(args[0]), need(1)
	case "log2":
		return math.Log2(args[0]), need(1)
	case "ln":
		return math.Log(args[0]), need(1)
	case "ceil":
		return math.Ceil(args[0]), need(1)
	case "floor":
		return math.Floor(args[0]), need(1)
	case "abs":
		return math.Abs(args[0]), need(1)
	case "min":
		if err := need(2); err != nil {
			return 0, err
		}
		return math.Min(args[0], args[1]), nil
	case "max":
		if err := need(2); err != nil {
			return 0, err
		}
		return math.Max(args[0], args[1]), nil
	case "pow":
		if err := need(2); err != nil {
			return 0, err
		}
		return math.Pow(args[0], args[1]), nil
	}
	return 0, fmt.Errorf("%w: unknown function %q", ErrBadCall, n.name)
}

// Lexer and parser.

type tokKind int

const (
	tokNum tokKind = iota
	tokIdent
	tokOp // + - * / % ^
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokKind
	text string
	num  float64
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) lex() error {
	s := p.src
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' ||
				((s[j] == '+' || s[j] == '-') && j > i && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			v, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return fmt.Errorf("%w: bad number %q", ErrParse, s[i:j])
			}
			p.toks = append(p.toks, token{kind: tokNum, text: s[i:j], num: v})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			p.toks = append(p.toks, token{kind: tokIdent, text: s[i:j]})
			i = j
		case strings.ContainsRune("+-*/%^", c):
			p.toks = append(p.toks, token{kind: tokOp, text: string(c)})
			i++
		case c == '(':
			p.toks = append(p.toks, token{kind: tokLParen, text: "("})
			i++
		case c == ')':
			p.toks = append(p.toks, token{kind: tokRParen, text: ")"})
			i++
		case c == ',':
			p.toks = append(p.toks, token{kind: tokComma, text: ","})
			i++
		default:
			return fmt.Errorf("%w: unexpected character %q in %q", ErrParse, c, p.src)
		}
	}
	return nil
}

func (p *parser) peek() *token {
	if p.pos < len(p.toks) {
		return &p.toks[p.pos]
	}
	return nil
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t == nil || t.kind != kind || (text != "" && t.text != text) {
		return false
	}
	p.pos++
	return true
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t == nil || t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = binNode{op: t.text[0], l: left, r: right}
	}
}

func (p *parser) parseTerm() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t == nil || t.kind != tokOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binNode{op: t.text[0], l: left, r: right}
	}
}

func (p *parser) parseUnary() (node, error) {
	if p.accept(tokOp, "-") {
		n, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negNode{n: n}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (node, error) {
	base, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.accept(tokOp, "^") {
		exp, err := p.parseUnary() // right associative
		if err != nil {
			return nil, err
		}
		return binNode{op: '^', l: base, r: exp}, nil
	}
	return base, nil
}

func (p *parser) parseAtom() (node, error) {
	t := p.peek()
	if t == nil {
		return nil, fmt.Errorf("%w: unexpected end of %q", ErrParse, p.src)
	}
	switch t.kind {
	case tokNum:
		p.pos++
		return numNode(t.num), nil
	case tokIdent:
		p.pos++
		if !p.accept(tokLParen, "") {
			return varNode(t.text), nil
		}
		var args []node
		if !p.accept(tokRParen, "") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.accept(tokComma, "") {
					continue
				}
				if p.accept(tokRParen, "") {
					break
				}
				return nil, fmt.Errorf("%w: expected ',' or ')' in call to %s", ErrParse, t.text)
			}
		}
		return callNode{name: t.text, args: args}, nil
	case tokLParen:
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tokRParen, "") {
			return nil, fmt.Errorf("%w: missing ')' in %q", ErrParse, p.src)
		}
		return inner, nil
	}
	return nil, fmt.Errorf("%w: unexpected token %q in %q", ErrParse, t.text, p.src)
}
