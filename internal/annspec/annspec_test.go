package annspec

import (
	"errors"
	"math"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/particles"
	"netpart/internal/stencil"
)

func evalOK(t *testing.T, src string, vars map[string]float64) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(vars)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		vars map[string]float64
		want float64
	}{
		{"1+2*3", nil, 7},
		{"(1+2)*3", nil, 9},
		{"10-4-3", nil, 3},  // left associative
		{"2^3^2", nil, 512}, // right associative
		{"-2^2", nil, -4},   // unary binds outside power
		{"7%4", nil, 3},
		{"8/4/2", nil, 1},
		{"5*N", map[string]float64{"N": 600}, 3000},
		{"4*N", map[string]float64{"N": 1200}, 4800},
		{"8*(N+2)", map[string]float64{"N": 100}, 816},
		{"sqrt(16)+log2(8)", nil, 7},
		{"min(3, 5) + max(3, 5)", nil, 8},
		{"ceil(1.2)+floor(1.8)+abs(-2)", nil, 5},
		{"pow(2, 10)", nil, 1024},
		{"ln(1)", nil, 0},
		{"2e3 + 1.5e-1", nil, 2000.15},
		{"A*N", map[string]float64{"A": 2, "N": 3}, 6},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, c.vars); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestExprErrors(t *testing.T) {
	parseErrs := []string{"", "1+", "(1", "1 2", "foo(", "@", "min(1,)", "1..2"}
	for _, src := range parseErrs {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
	e := MustParse("N+M")
	if _, err := e.Eval(map[string]float64{"N": 1}); !errors.Is(err, ErrUnbound) {
		t.Errorf("unbound: %v", err)
	}
	if _, err := MustParse("1/0").Eval(nil); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := MustParse("1%0").Eval(nil); err == nil {
		t.Error("modulo by zero accepted")
	}
	if _, err := MustParse("frob(1)").Eval(nil); !errors.Is(err, ErrBadCall) {
		t.Error("unknown function accepted")
	}
	if _, err := MustParse("sqrt(1,2)").Eval(nil); !errors.Is(err, ErrBadCall) {
		t.Error("wrong arity accepted")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("((")
}

func TestVars(t *testing.T) {
	e := MustParse("5*N + A*min(N, M) - sqrt(N)")
	got := e.Vars()
	want := []string{"A", "M", "N"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if e.String() != "5*N + A*min(N, M) - sqrt(N)" {
		t.Errorf("String = %q", e.String())
	}
}

// Property: integer arithmetic expressions built from + - * evaluate the
// same as direct computation.
func TestExprMatchesGoProperty(t *testing.T) {
	f := func(a, b, c int16) bool {
		vars := map[string]float64{"a": float64(a), "b": float64(b), "c": float64(c)}
		got := evalT(t, "a*b + c - a", vars)
		want := float64(a)*float64(b) + float64(c) - float64(a)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func evalT(t *testing.T, src string, vars map[string]float64) float64 {
	e, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(vars)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

const stenSpec = `{
  "name": "STEN-2",
  "params": {"N": 600},
  "num_pdus": "N",
  "cycles": 10,
  "compute": [
    {"name": "grid-update", "complexity_per_pdu": "5*N", "class": "float"}
  ],
  "comm": [
    {"name": "border-exchange", "topology": "1-D",
     "bytes_per_message": "4*N", "overlap": "grid-update"}
  ]
}`

func TestCompileStencilSpecMatchesHandWritten(t *testing.T) {
	ann, err := CompileReader(strings.NewReader(stenSpec))
	if err != nil {
		t.Fatal(err)
	}
	hand := stencil.Annotations(600, stencil.STEN2, 10)
	if ann.NumPDUs() != hand.NumPDUs() {
		t.Errorf("NumPDUs %d vs %d", ann.NumPDUs(), hand.NumPDUs())
	}
	if got, want := ann.Compute[0].ComplexityPerPDU(), hand.Compute[0].ComplexityPerPDU(); got != want {
		t.Errorf("complexity %v vs %v", got, want)
	}
	if got, want := ann.Comm[0].BytesPerMessage(50), hand.Comm[0].BytesPerMessage(50); got != want {
		t.Errorf("bytes %v vs %v", got, want)
	}
	if ann.Comm[0].Overlap != "grid-update" {
		t.Errorf("overlap %q", ann.Comm[0].Overlap)
	}

	// The compiled annotations must drive the partitioner to the same
	// decision as the hand-written ones.
	net := model.PaperTestbed()
	tbl := cost.PaperTable()
	e1, err := core.NewEstimator(net, tbl, ann)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.Partition(e1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := core.NewEstimator(net, tbl, hand)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Partition(e2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Config.String() != r2.Config.String() || r1.TcMs != r2.TcMs {
		t.Errorf("compiled spec partitioned differently: %v (%v) vs %v (%v)",
			r1.Config, r1.TcMs, r2.Config, r2.TcMs)
	}
}

func TestCompileNonLinearTotalOps(t *testing.T) {
	spec := `{
	  "name": "quad",
	  "params": {"N": 100},
	  "num_pdus": "N",
	  "compute": [
	    {"name": "work", "complexity_per_pdu": "N",
	     "total_ops": "A^2 * 2"}
	  ],
	  "comm": []
	}`
	ann, err := CompileReader(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if ann.Compute[0].TotalOps == nil {
		t.Fatal("TotalOps not compiled")
	}
	if got := ann.Compute[0].TotalOps(5); got != 50 {
		t.Errorf("TotalOps(5) = %v, want 50", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"bogus": 1}`,
		"no num_pdus":      `{"name":"x","compute":[{"name":"c","complexity_per_pdu":"1"}]}`,
		"bad num expr":     `{"name":"x","num_pdus":"(","compute":[{"name":"c","complexity_per_pdu":"1"}]}`,
		"unbound param":    `{"name":"x","num_pdus":"Q","compute":[{"name":"c","complexity_per_pdu":"1"}]}`,
		"A in num_pdus":    `{"name":"x","num_pdus":"A","compute":[{"name":"c","complexity_per_pdu":"1"}]}`,
		"bad class":        `{"name":"x","num_pdus":"10","compute":[{"name":"c","complexity_per_pdu":"1","class":"quantum"}]}`,
		"no complexity":    `{"name":"x","num_pdus":"10","compute":[{"name":"c"}]}`,
		"bad topology":     `{"name":"x","num_pdus":"10","compute":[{"name":"c","complexity_per_pdu":"1"}],"comm":[{"name":"m","topology":"starcube","bytes_per_message":"1"}]}`,
		"no bytes":         `{"name":"x","num_pdus":"10","compute":[{"name":"c","complexity_per_pdu":"1"}],"comm":[{"name":"m","topology":"1-D"}]}`,
		"dangling overlap": `{"name":"x","num_pdus":"10","compute":[{"name":"c","complexity_per_pdu":"1"}],"comm":[{"name":"m","topology":"1-D","bytes_per_message":"1","overlap":"zzz"}]}`,
	}
	for name, in := range cases {
		if _, err := CompileReader(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGaussLikeSpec(t *testing.T) {
	// Non-uniform app over broadcast, message size depending on N.
	spec := `{
	  "name": "gauss",
	  "params": {"N": 200},
	  "num_pdus": "N",
	  "cycles": 200,
	  "compute": [{"name": "eliminate", "complexity_per_pdu": "N"}],
	  "comm": [{"name": "pivot", "topology": "broadcast",
	            "bytes_per_message": "8*(N+2)"}]
	}`
	ann, err := CompileReader(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if got := ann.Comm[0].BytesPerMessage(0); got != 8*202 {
		t.Errorf("bytes = %v", got)
	}
	if ann.Cycles != 200 {
		t.Errorf("cycles = %d", ann.Cycles)
	}
}

func TestParticlesSpecMatchesHandWritten(t *testing.T) {
	f, err := os.Open("../../specs/particles.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ann, err := CompileReader(f)
	if err != nil {
		t.Fatal(err)
	}
	hand := particles.Annotations(48, 1200, 10)
	if ann.NumPDUs() != hand.NumPDUs() {
		t.Errorf("NumPDUs %d vs %d", ann.NumPDUs(), hand.NumPDUs())
	}
	if got, want := ann.Compute[0].ComplexityPerPDU(), hand.Compute[0].ComplexityPerPDU(); math.Abs(got-want) > 1e-9 {
		t.Errorf("complexity %v vs %v", got, want)
	}
	if got, want := ann.Comm[0].BytesPerMessage(1), hand.Comm[0].BytesPerMessage(1); math.Abs(got-want) > 1e-9 {
		t.Errorf("bytes %v vs %v", got, want)
	}
}

func TestShippedSpecsCompile(t *testing.T) {
	for _, name := range []string{"sten1.json", "sten2.json", "gauss.json", "particles.json"} {
		f, err := os.Open("../../specs/" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ann, err := CompileReader(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := ann.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
