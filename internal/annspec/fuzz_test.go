package annspec

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse hardens the expression parser: arbitrary input must never
// panic, and anything that parses must evaluate (or return an error)
// without panicking for any variable binding.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"5*N", "4*(N+2)", "sqrt(A)*4", "a*b+c-a", "min(1,2)^max(3,4)",
		"((((", "1//2", "-", "N%M", "1e309", "pow(2,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		vars := map[string]float64{}
		for _, v := range e.Vars() {
			vars[v] = 3
		}
		got, err := e.Eval(vars)
		if err != nil {
			return
		}
		_ = math.IsNaN(got) // any float is acceptable; only panics are bugs
	})
}

// FuzzCompile hardens the spec compiler against malformed JSON.
func FuzzCompile(f *testing.F) {
	f.Add(`{"name":"x","num_pdus":"10","compute":[{"name":"c","complexity_per_pdu":"1"}]}`)
	f.Add(`{`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, src string) {
		ann, err := CompileReader(strings.NewReader(src))
		if err != nil {
			return
		}
		// A compiled spec must have working callbacks.
		_ = ann.NumPDUs()
		for i := range ann.Compute {
			_ = ann.Compute[i].ComplexityPerPDU()
		}
	})
}
