package annspec

import (
	"encoding/json"
	"fmt"
	"io"

	"netpart/internal/core"
	"netpart/internal/model"
)

// Spec is the declarative annotation format. Expressions may reference the
// problem parameters declared in Params; inside "bytes_per_message" and
// "total_ops" the variable A additionally binds to the task's PDU count.
//
// Example (the paper's STEN-2 annotations for an N×N stencil):
//
//	{
//	  "name": "STEN-2",
//	  "params": {"N": 600},
//	  "num_pdus": "N",
//	  "cycles": 10,
//	  "compute": [
//	    {"name": "grid-update", "complexity_per_pdu": "5*N", "class": "float"}
//	  ],
//	  "comm": [
//	    {"name": "border-exchange", "topology": "1-D",
//	     "bytes_per_message": "4*N", "overlap": "grid-update"}
//	  ]
//	}
type Spec struct {
	Name    string             `json:"name"`
	Params  map[string]float64 `json:"params"`
	NumPDUs string             `json:"num_pdus"`
	Cycles  int                `json:"cycles,omitempty"`
	Compute []ComputeSpec      `json:"compute"`
	Comm    []CommSpec         `json:"comm"`
}

// ComputeSpec declares one computation phase.
type ComputeSpec struct {
	Name             string `json:"name"`
	ComplexityPerPDU string `json:"complexity_per_pdu"`
	// TotalOps optionally declares a non-linear per-task cost as an
	// expression over A (the task's PDU count) and the parameters.
	TotalOps string `json:"total_ops,omitempty"`
	// Class is "float" (default) or "int".
	Class string `json:"class,omitempty"`
}

// CommSpec declares one communication phase.
type CommSpec struct {
	Name            string `json:"name"`
	Topology        string `json:"topology"`
	BytesPerMessage string `json:"bytes_per_message"`
	Overlap         string `json:"overlap,omitempty"`
}

// Read parses a JSON specification.
func Read(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("annspec: decoding spec: %w", err)
	}
	return &s, nil
}

// Compile turns the specification into the callback annotations the
// partitioning method consumes. All expressions are parsed and checked
// eagerly: unknown variables (other than A where permitted), bad topology
// names, and dangling overlap references are reported here, not at
// partitioning time.
func (s *Spec) Compile() (*core.Annotations, error) {
	params := make(map[string]float64, len(s.Params)+1)
	for k, v := range s.Params {
		params[k] = v
	}
	checkVars := func(e *Expr, allowA bool, where string) error {
		for _, v := range e.Vars() {
			if v == "A" && allowA {
				continue
			}
			if _, ok := params[v]; !ok {
				return fmt.Errorf("%w: %q in %s expression %q", ErrUnbound, v, where, e)
			}
		}
		return nil
	}

	if s.NumPDUs == "" {
		return nil, fmt.Errorf("annspec: spec %q has no num_pdus", s.Name)
	}
	numExpr, err := Parse(s.NumPDUs)
	if err != nil {
		return nil, err
	}
	if err := checkVars(numExpr, false, "num_pdus"); err != nil {
		return nil, err
	}

	ann := &core.Annotations{
		Name:   s.Name,
		Cycles: s.Cycles,
		NumPDUs: func() int {
			v, err := numExpr.Eval(params)
			if err != nil {
				return 0
			}
			return int(v)
		},
	}

	for _, c := range s.Compute {
		c := c
		var class model.OpClass
		switch c.Class {
		case "", "float":
			class = model.OpFloat
		case "int":
			class = model.OpInt
		default:
			return nil, fmt.Errorf("annspec: phase %q: unknown class %q", c.Name, c.Class)
		}
		if c.ComplexityPerPDU == "" {
			return nil, fmt.Errorf("annspec: compute phase %q has no complexity_per_pdu", c.Name)
		}
		cplx, err := Parse(c.ComplexityPerPDU)
		if err != nil {
			return nil, err
		}
		if err := checkVars(cplx, false, "complexity_per_pdu"); err != nil {
			return nil, err
		}
		phase := core.ComputationPhase{
			Name:  c.Name,
			Class: class,
			ComplexityPerPDU: func() float64 {
				v, err := cplx.Eval(params)
				if err != nil {
					return 0
				}
				return v
			},
		}
		if c.TotalOps != "" {
			tot, err := Parse(c.TotalOps)
			if err != nil {
				return nil, err
			}
			if err := checkVars(tot, true, "total_ops"); err != nil {
				return nil, err
			}
			phase.TotalOps = func(pdus float64) float64 {
				vars := withA(params, pdus)
				v, err := tot.Eval(vars)
				if err != nil {
					return 0
				}
				return v
			}
		}
		ann.Compute = append(ann.Compute, phase)
	}

	for _, c := range s.Comm {
		c := c
		if c.BytesPerMessage == "" {
			return nil, fmt.Errorf("annspec: comm phase %q has no bytes_per_message", c.Name)
		}
		bytes, err := Parse(c.BytesPerMessage)
		if err != nil {
			return nil, err
		}
		if err := checkVars(bytes, true, "bytes_per_message"); err != nil {
			return nil, err
		}
		ann.Comm = append(ann.Comm, core.CommunicationPhase{
			Name:     c.Name,
			Topology: c.Topology,
			Overlap:  c.Overlap,
			BytesPerMessage: func(pdus float64) float64 {
				vars := withA(params, pdus)
				v, err := bytes.Eval(vars)
				if err != nil {
					return 0
				}
				return v
			},
		})
	}

	if err := ann.Validate(); err != nil {
		return nil, err
	}
	return ann, nil
}

// withA extends the parameter bindings with A = pdus.
func withA(params map[string]float64, pdus float64) map[string]float64 {
	vars := make(map[string]float64, len(params)+1)
	for k, v := range params {
		vars[k] = v
	}
	vars["A"] = pdus
	return vars
}

// CompileReader reads and compiles a specification in one step.
func CompileReader(r io.Reader) (*core.Annotations, error) {
	s, err := Read(r)
	if err != nil {
		return nil, err
	}
	return s.Compile()
}
