package gauss

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
)

func paperConfig(p1, p2 int) cost.Config {
	return cost.Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{p1, p2},
	}
}

func TestSequentialSolvesKnownSystem(t *testing.T) {
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	s := System{
		A: [][]float64{{2, 1}, {1, 3}},
		B: []float64{5, 10},
	}
	x, err := Sequential(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSequentialRequiresPivoting(t *testing.T) {
	// A[0][0] = 0 forces a row swap.
	s := System{
		A: [][]float64{{0, 1}, {1, 0}},
		B: []float64{2, 3},
	}
	x, err := Sequential(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSequentialDetectsSingular(t *testing.T) {
	s := System{
		A: [][]float64{{1, 2}, {2, 4}},
		B: []float64{1, 2},
	}
	if _, err := Sequential(s); !errors.Is(err, ErrSingular) {
		t.Errorf("singular matrix: %v", err)
	}
}

func TestSequentialResidualSmall(t *testing.T) {
	s := NewSystem(50, 7)
	x, err := Sequential(s)
	if err != nil {
		t.Fatal(err)
	}
	if r := Residual(s, x); r > 1e-9 {
		t.Errorf("residual %v too large", r)
	}
}

func TestNewSystemDeterministic(t *testing.T) {
	a := NewSystem(10, 42)
	b := NewSystem(10, 42)
	for i := range a.A {
		for j := range a.A[i] {
			if a.A[i][j] != b.A[i][j] {
				t.Fatal("NewSystem not deterministic")
			}
		}
	}
	c := NewSystem(10, 43)
	if a.A[0][0] == c.A[0][0] && a.A[0][1] == c.A[0][1] {
		t.Error("different seeds produced identical matrices")
	}
}

func TestDistributedMatchesSequential(t *testing.T) {
	net := model.PaperTestbed()
	for _, tc := range []struct {
		name string
		cfg  cost.Config
		n    int
	}{
		{"single task", paperConfig(1, 0), 20},
		{"homogeneous", paperConfig(4, 0), 20},
		{"heterogeneous", paperConfig(6, 6), 36},
		{"uneven", paperConfig(3, 2), 17},
	} {
		s := NewSystem(tc.n, 11)
		want, err := Sequential(s)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := core.Decompose(net, tc.cfg, tc.n, model.OpFloat)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := RunSim(net, tc.cfg, vec, s)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range want {
			if res.X[i] != want[i] {
				t.Errorf("%s: x[%d] = %v, want %v (distributed must match sequential exactly)",
					tc.name, i, res.X[i], want[i])
				break
			}
		}
		if r := Residual(s, res.X); r > 1e-9 {
			t.Errorf("%s: residual %v", tc.name, r)
		}
		if res.ElapsedMs <= 0 {
			t.Errorf("%s: elapsed %v", tc.name, res.ElapsedMs)
		}
	}
}

func TestDistributedDetectsSingular(t *testing.T) {
	net := model.PaperTestbed()
	s := System{
		A: [][]float64{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}},
		B: []float64{1, 2, 3},
	}
	cfg := paperConfig(3, 0)
	vec := core.Vector{1, 1, 1}
	if _, err := RunSim(net, cfg, vec, s); !errors.Is(err, ErrSingular) {
		t.Errorf("distributed singular detection: %v", err)
	}
}

func TestRunSimValidatesInputs(t *testing.T) {
	net := model.PaperTestbed()
	s := NewSystem(10, 1)
	if _, err := RunSim(net, paperConfig(2, 0), core.Vector{3, 3}, s); err == nil {
		t.Error("vector/N mismatch should error")
	}
	if _, err := RunSim(net, paperConfig(2, 0), core.Vector{3, 3, 4}, s); err == nil {
		t.Error("vector/config mismatch should error")
	}
}

func TestAnnotationsUseBroadcast(t *testing.T) {
	a := Annotations(100)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Comm[0].Topology != "broadcast" {
		t.Errorf("topology = %q", a.Comm[0].Topology)
	}
	if got := a.Comm[0].BytesPerMessage(0); got != 8*102 {
		t.Errorf("bytes = %v", got)
	}
	if a.Cycles != 100 {
		t.Errorf("cycles = %d", a.Cycles)
	}
}

func TestPartitionerPicksFewerProcsForBroadcast(t *testing.T) {
	// The bandwidth-limited broadcast topology cannot exploit extra
	// segments, so the partitioner should choose fewer processors for
	// elimination than for an equally sized stencil.
	net := model.PaperTestbed()
	tbl := cost.PaperTable()
	// Give the table broadcast models derived from the 1-D constants with
	// the root's fan-out (p-1 messages serialized through one channel).
	tbl.SetComm(model.Sparc2Cluster, "broadcast", cost.Params{C2: 1.1, C4: 0.00283})
	tbl.SetComm(model.IPCCluster, "broadcast", cost.Params{C2: 1.9, C4: 0.00457})
	e, err := core.NewEstimator(net, tbl, Annotations(300))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Partition(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Total() >= 12 {
		t.Errorf("broadcast app should not use the whole network: %v", res.Config)
	}
	if res.Config.Counts[0] < 1 {
		t.Errorf("no processors chosen: %v", res.Config)
	}
}

// Property: the distributed solver matches the sequential one for random
// diagonally dominant systems across decompositions.
func TestDistributedCorrectProperty(t *testing.T) {
	net := model.PaperTestbed()
	f := func(seed uint16, p1Raw, p2Raw uint8) bool {
		n := 12
		p1 := int(p1Raw%4) + 1
		p2 := int(p2Raw % 3)
		if p1+p2 > n {
			return true
		}
		s := NewSystem(n, uint64(seed)+1)
		want, err := Sequential(s)
		if err != nil {
			return false
		}
		cfg := paperConfig(p1, p2)
		vec, err := core.Decompose(net, cfg, n, model.OpFloat)
		if err != nil {
			return false
		}
		res, err := RunSim(net, cfg, vec, s)
		if err != nil {
			return false
		}
		for i := range want {
			if res.X[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCyclicAssignmentProperties(t *testing.T) {
	vec := core.Vector{5, 3, 2}
	for _, blocks := range []int{1, 2, 3, 5} {
		a := CyclicAssignment(vec, blocks)
		seen := make(map[int]bool)
		for r, owned := range a {
			if len(owned) != vec[r] {
				t.Fatalf("blocks=%d rank %d owns %d rows, want %d", blocks, r, len(owned), vec[r])
			}
			for i, g := range owned {
				if seen[g] {
					t.Fatalf("row %d assigned twice", g)
				}
				seen[g] = true
				if i > 0 && owned[i-1] >= g {
					t.Fatalf("rank %d rows not ascending: %v", r, owned)
				}
			}
		}
		if len(seen) != 10 {
			t.Fatalf("blocks=%d covered %d rows", blocks, len(seen))
		}
	}
	// blocks=1 equals the contiguous assignment.
	c1 := CyclicAssignment(vec, 1)
	cont := ContiguousAssignment(vec)
	for r := range cont {
		for i := range cont[r] {
			if c1[r][i] != cont[r][i] {
				t.Fatal("blocks=1 differs from contiguous")
			}
		}
	}
	// With blocks > 1 every task owns at least one late row.
	c3 := CyclicAssignment(core.Vector{4, 4, 4}, 4)
	for r, owned := range c3 {
		if owned[len(owned)-1] < 8 {
			t.Errorf("rank %d owns no late rows: %v", r, owned)
		}
	}
}

func TestCyclicMatchesSequentialExactly(t *testing.T) {
	net := model.PaperTestbed()
	const n = 32
	s := NewSystem(n, 77)
	want, err := Sequential(s)
	if err != nil {
		t.Fatal(err)
	}
	cfg := paperConfig(4, 0)
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	for _, blocks := range []int{2, 4, 8} {
		res, err := RunSimCyclic(net, cfg, vec, blocks, s)
		if err != nil {
			t.Fatalf("blocks=%d: %v", blocks, err)
		}
		for i := range want {
			if res.X[i] != want[i] {
				t.Fatalf("blocks=%d: x[%d] differs (must be bit-identical)", blocks, i)
			}
		}
	}
}

func TestCyclicFasterThanContiguous(t *testing.T) {
	// The shrinking active window starves early-row owners under the
	// contiguous assignment; the cyclic assignment keeps everyone busy.
	// The instance must be compute bound for the difference to surface
	// (small-N elimination is entirely pivot-broadcast bound — the reason
	// E8's partitioner picks so few processors), so use a larger matrix on
	// two processors.
	net := model.PaperTestbed()
	const n = 192
	s := NewSystem(n, 13)
	cfg := paperConfig(2, 0)
	vec, err := core.Decompose(net, cfg, n, model.OpFloat)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := RunSim(net, cfg, vec, s)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err := RunSimCyclic(net, cfg, vec, 16, s)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.ElapsedMs >= cont.ElapsedMs*0.95 {
		t.Errorf("cyclic %v ms not clearly faster than contiguous %v ms", cyc.ElapsedMs, cont.ElapsedMs)
	}
	// And identical answers.
	want, err := Sequential(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if cyc.X[i] != want[i] || cont.X[i] != want[i] {
			t.Fatal("assignment changed the solution")
		}
	}
}

func TestRunSimAssignedValidation(t *testing.T) {
	net := model.PaperTestbed()
	s := NewSystem(6, 1)
	cfg := paperConfig(2, 0)
	vec := core.Vector{3, 3}
	bad := [][]int{{0, 1, 2}, {3, 4}} // wrong count
	if _, err := RunSimAssigned(net, cfg, vec, bad, s); err == nil {
		t.Error("short assignment accepted")
	}
	dup := [][]int{{0, 1, 2}, {2, 4, 5}} // row 2 twice
	if _, err := RunSimAssigned(net, cfg, vec, dup, s); err == nil {
		t.Error("duplicate row accepted")
	}
	unsorted := [][]int{{2, 1, 0}, {3, 4, 5}}
	if _, err := RunSimAssigned(net, cfg, vec, unsorted, s); err == nil {
		t.Error("unsorted assignment accepted")
	}
}
