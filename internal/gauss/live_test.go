package gauss

import (
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/mmps"
)

func transports(t *testing.T, kind string, n int) []mmps.Transport {
	t.Helper()
	var out []mmps.Transport
	switch kind {
	case "local":
		eps, err := mmps.NewLocalWorld(n, mmps.WithRecvTimeout(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			out = append(out, ep)
		}
	case "udp":
		eps, err := mmps.NewUDPWorld(n, mmps.WithRecvTimeout(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			out = append(out, ep)
		}
	}
	return out
}

func TestLiveMatchesSequential(t *testing.T) {
	for _, kind := range []string{"local", "udp"} {
		t.Run(kind, func(t *testing.T) {
			const n = 24
			s := NewSystem(n, 99)
			want, err := Sequential(s)
			if err != nil {
				t.Fatal(err)
			}
			world := transports(t, kind, 3)
			defer func() {
				for _, tr := range world {
					tr.Close()
				}
			}()
			res, err := RunLive(world, core.Vector{10, 8, 6}, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if res.X[i] != want[i] {
					t.Fatalf("x[%d] = %v, want %v (must be bit-identical)", i, res.X[i], want[i])
				}
			}
			if res.Elapsed <= 0 {
				t.Error("no elapsed time")
			}
		})
	}
}

func TestLiveSingleTask(t *testing.T) {
	const n = 12
	s := NewSystem(n, 5)
	want, err := Sequential(s)
	if err != nil {
		t.Fatal(err)
	}
	world := transports(t, "local", 1)
	defer world[0].Close()
	res, err := RunLive(world, core.Vector{n}, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.X[i] != want[i] {
			t.Fatalf("x[%d] differs", i)
		}
	}
}

func TestLivePivotSwapAcrossTasks(t *testing.T) {
	// Force a pivot owned by a different task than row k.
	s := System{
		A: [][]float64{
			{0.001, 1, 0},
			{1, 0.5, 2},
			{10, 3, 1}, // clear pivot for k=0 owned by rank 1
		},
		B: []float64{1, 2, 3},
	}
	want, err := Sequential(s)
	if err != nil {
		t.Fatal(err)
	}
	world := transports(t, "local", 2)
	defer func() {
		for _, tr := range world {
			tr.Close()
		}
	}()
	res, err := RunLive(world, core.Vector{2, 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.X[i] != want[i] {
			t.Fatalf("x = %v, want %v", res.X, want)
		}
	}
}

func TestLiveDetectsSingular(t *testing.T) {
	s := System{
		A: [][]float64{{1, 2}, {2, 4}},
		B: []float64{1, 2},
	}
	world := transports(t, "local", 2)
	defer func() {
		for _, tr := range world {
			tr.Close()
		}
	}()
	if _, err := RunLive(world, core.Vector{1, 1}, s); err == nil {
		t.Error("singular system accepted")
	}
}

func TestLiveValidatesInputs(t *testing.T) {
	s := NewSystem(10, 1)
	world := transports(t, "local", 2)
	defer func() {
		for _, tr := range world {
			tr.Close()
		}
	}()
	if _, err := RunLive(world, core.Vector{5}, s); err == nil {
		t.Error("world/vector mismatch accepted")
	}
	if _, err := RunLive(world, core.Vector{5, 4}, s); err == nil {
		t.Error("vector/N mismatch accepted")
	}
}

func TestCandidateCodecRoundTrip(t *testing.T) {
	n := 5
	row := []float64{1, 2, 3, 4, 5, 6}
	rowK := []float64{9, 8, 7, 6, 5, 4}
	buf := encodeCandidate(3.5, 2, row, rowK, n)
	absVal, idx, gotRow, gotRowK, err := decodeCandidate(buf, n)
	if err != nil {
		t.Fatal(err)
	}
	if absVal != 3.5 || idx != 2 {
		t.Errorf("header %v %d", absVal, idx)
	}
	for i := range row {
		if gotRow[i] != row[i] || gotRowK[i] != rowK[i] {
			t.Fatal("rows corrupted")
		}
	}
	// Without rowK.
	buf = encodeCandidate(1, -1, nil, nil, n)
	_, idx, gotRow, gotRowK, err = decodeCandidate(buf, n)
	if err != nil || idx != -1 || gotRow != nil || gotRowK != nil {
		t.Errorf("empty candidate: %d %v %v %v", idx, gotRow, gotRowK, err)
	}
	if _, _, _, _, err := decodeCandidate([]byte{1, 2, 3}, n); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPivotCodecRoundTrip(t *testing.T) {
	n := 3
	pivot := []float64{1, 2, 3, 4}
	oldK := []float64{5, 6, 7, 8}
	row, gotPivot, gotOldK, err := decodePivot(encodePivot(7, pivot, oldK, n), n)
	if err != nil || row != 7 {
		t.Fatalf("pivot row %d, %v", row, err)
	}
	for i := range pivot {
		if gotPivot[i] != pivot[i] || gotOldK[i] != oldK[i] {
			t.Fatal("pivot rows corrupted")
		}
	}
	row, _, _, err = decodePivot(encodePivot(-1, nil, nil, n), n)
	if err != nil || row != -1 {
		t.Errorf("singular marker: %d %v", row, err)
	}
}

func TestGatherCodecRoundTrip(t *testing.T) {
	n := 3
	local := [][]float64{{1, 2, 3, 10}, {4, 5, 6, 11}}
	got, err := decodeGather(encodeGather(local, 1, n), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][0] != 1 || got[2][3] != 11 {
		t.Errorf("gather = %v", got)
	}
	if _, err := decodeGather([]byte{0}, n); err == nil {
		t.Error("garbage accepted")
	}
	// Out-of-range index.
	bad := encodeGather([][]float64{{1, 2, 3, 4}}, 99, n)
	if _, err := decodeGather(bad, n); err == nil {
		t.Error("bad index accepted")
	}
}
