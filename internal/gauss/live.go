package gauss

import (
	"fmt"
	"math"
	"sync"
	"time"

	"netpart/internal/core"
	"netpart/internal/mmps"
)

// LiveResult is the outcome of a real concurrent distributed solve over an
// mmps transport world.
type LiveResult struct {
	Elapsed time.Duration
	X       []float64
}

// Wire format for the live protocol (network byte order, as MMPS coerces):
//
//	candidate: [absVal, rowIdx, hasRowK] ++ row(n+1) ++ rowK(n+1 if hasRowK)
//	pivot:     [pivotRow] ++ pivot(n+1) ++ oldK(n+1); pivotRow = -1 → singular
//	gathered:  per owned row: [globalIdx] ++ row(n+1)

// RunLive solves the system over real concurrent tasks — one goroutine per
// rank — communicating through mmps transports. Rank 0 coordinates pivot
// selection and back substitution, exactly like the simulated protocol in
// RunSim, so the result is bit-identical to Sequential.
func RunLive(world []mmps.Transport, vec core.Vector, s System) (LiveResult, error) {
	n := len(s.A)
	if len(world) == 0 || len(world) != len(vec) {
		return LiveResult{}, fmt.Errorf("gauss: %d transports for %d vector entries", len(world), len(vec))
	}
	if vec.Sum() != n {
		return LiveResult{}, fmt.Errorf("gauss: vector sums to %d, want %d", vec.Sum(), n)
	}
	offsets := make([]int, len(vec))
	off := 0
	for r, a := range vec {
		offsets[r] = off
		off += a
	}
	var x []float64
	errs := make([]error, len(world))
	var wg sync.WaitGroup
	start := time.Now()
	for rank := range world {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := runLiveTask(world[rank], vec[rank], offsets[rank], s)
			errs[rank] = err
			if rank == 0 {
				x = sol
			}
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return LiveResult{}, fmt.Errorf("gauss: rank %d: %w", rank, err)
		}
	}
	return LiveResult{Elapsed: time.Since(start), X: x}, nil
}

func runLiveTask(tr mmps.Transport, rows, off int, s System) ([]float64, error) {
	n := len(s.A)
	rank, size := tr.Rank(), tr.Size()
	local := make([][]float64, rows)
	for i := range local {
		local[i] = make([]float64, n+1)
		copy(local[i], s.A[off+i])
		local[i][n] = s.B[off+i]
	}
	owns := func(g int) bool { return g >= off && g < off+rows }

	for k := 0; k < n; k++ {
		// Local candidate.
		bestIdx, bestAbs := -1, 0.0
		for i := range local {
			g := off + i
			if g < k {
				continue
			}
			if v := math.Abs(local[i][k]); bestIdx < 0 || v > bestAbs {
				bestAbs, bestIdx = v, g
			}
		}
		var candRow, rowK []float64
		if bestIdx >= 0 {
			candRow = local[bestIdx-off]
		}
		if owns(k) {
			rowK = local[k-off]
		}

		var pivotRow int
		var pivot, oldK []float64
		if rank == 0 {
			gAbs, gIdx, gRow, gRowK := bestAbs, bestIdx, candRow, rowK
			for src := 1; src < size; src++ {
				buf, err := tr.Recv(src)
				if err != nil {
					return nil, err
				}
				cAbs, cIdx, cRow, cRowK, err := decodeCandidate(buf, n)
				if err != nil {
					return nil, err
				}
				if cIdx >= 0 && (gIdx < 0 || cAbs > gAbs) {
					gAbs, gIdx, gRow = cAbs, cIdx, cRow
				}
				if cRowK != nil {
					gRowK = cRowK
				}
			}
			if gIdx < 0 || gAbs < 1e-12 {
				pivotRow = -1
			} else {
				pivotRow, pivot, oldK = gIdx, gRow, gRowK
			}
			msg := encodePivot(pivotRow, pivot, oldK, n)
			for dst := 1; dst < size; dst++ {
				if err := tr.Send(dst, msg); err != nil {
					return nil, err
				}
			}
		} else {
			if err := tr.Send(0, encodeCandidate(bestAbs, bestIdx, candRow, rowK, n)); err != nil {
				return nil, err
			}
			buf, err := tr.Recv(0)
			if err != nil {
				return nil, err
			}
			pivotRow, pivot, oldK, err = decodePivot(buf, n)
			if err != nil {
				return nil, err
			}
		}
		if pivotRow < 0 {
			if rank == 0 {
				return nil, ErrSingular
			}
			return nil, nil
		}
		if owns(k) {
			copy(local[k-off], pivot)
		}
		if owns(pivotRow) && pivotRow != k {
			copy(local[pivotRow-off], oldK)
		}
		for i := range local {
			g := off + i
			if g <= k {
				continue
			}
			f := local[i][k] / pivot[k]
			local[i][k] = 0
			if f != 0 {
				for j := k + 1; j <= n; j++ {
					local[i][j] -= f * pivot[j]
				}
			}
		}
	}

	// Gather the factored rows at the root.
	if rank == 0 {
		a := make([][]float64, n)
		b := make([]float64, n)
		place := func(g int, row []float64) {
			a[g] = row[:n]
			b[g] = row[n]
		}
		for i := range local {
			place(off+i, local[i])
		}
		for src := 1; src < size; src++ {
			buf, err := tr.Recv(src)
			if err != nil {
				return nil, err
			}
			rowsIn, err := decodeGather(buf, n)
			if err != nil {
				return nil, err
			}
			for g, row := range rowsIn {
				place(g, row)
			}
		}
		return backSubstitute(a, b), nil
	}
	if err := tr.Send(0, encodeGather(local, off, n)); err != nil {
		return nil, err
	}
	return nil, nil
}

// Encoding helpers (big-endian float64s via the mmps coercion format).

func encodeCandidate(absVal float64, rowIdx int, row, rowK []float64, n int) []byte {
	hasK := 0.0
	if rowK != nil {
		hasK = 1
	}
	vals := make([]float64, 0, 3+2*(n+1))
	vals = append(vals, absVal, float64(rowIdx), hasK)
	if row == nil {
		row = make([]float64, n+1)
	}
	vals = append(vals, row...)
	if rowK != nil {
		vals = append(vals, rowK...)
	}
	return mmps.EncodeFloat64s(vals)
}

func decodeCandidate(buf []byte, n int) (absVal float64, rowIdx int, row, rowK []float64, err error) {
	vals, err := mmps.DecodeFloat64s(buf)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	if len(vals) < 3+(n+1) {
		return 0, 0, nil, nil, fmt.Errorf("gauss: short candidate (%d values)", len(vals))
	}
	absVal = vals[0]
	rowIdx = int(vals[1])
	hasK := vals[2] != 0
	row = vals[3 : 3+(n+1)]
	if hasK {
		if len(vals) != 3+2*(n+1) {
			return 0, 0, nil, nil, fmt.Errorf("gauss: bad candidate length %d", len(vals))
		}
		rowK = vals[3+(n+1):]
	}
	if rowIdx < 0 {
		row = nil
	}
	return absVal, rowIdx, row, rowK, nil
}

func encodePivot(pivotRow int, pivot, oldK []float64, n int) []byte {
	vals := make([]float64, 0, 1+2*(n+1))
	vals = append(vals, float64(pivotRow))
	if pivotRow >= 0 {
		vals = append(vals, pivot...)
		vals = append(vals, oldK...)
	}
	return mmps.EncodeFloat64s(vals)
}

func decodePivot(buf []byte, n int) (pivotRow int, pivot, oldK []float64, err error) {
	vals, err := mmps.DecodeFloat64s(buf)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(vals) < 1 {
		return 0, nil, nil, fmt.Errorf("gauss: empty pivot message")
	}
	pivotRow = int(vals[0])
	if pivotRow < 0 {
		return pivotRow, nil, nil, nil
	}
	if len(vals) != 1+2*(n+1) {
		return 0, nil, nil, fmt.Errorf("gauss: bad pivot length %d", len(vals))
	}
	return pivotRow, vals[1 : 1+(n+1)], vals[1+(n+1):], nil
}

func encodeGather(local [][]float64, off, n int) []byte {
	vals := make([]float64, 0, len(local)*(n+2))
	for i, row := range local {
		vals = append(vals, float64(off+i))
		vals = append(vals, row...)
	}
	return mmps.EncodeFloat64s(vals)
}

func decodeGather(buf []byte, n int) (map[int][]float64, error) {
	vals, err := mmps.DecodeFloat64s(buf)
	if err != nil {
		return nil, err
	}
	stride := n + 2
	if len(vals)%stride != 0 {
		return nil, fmt.Errorf("gauss: bad gather length %d", len(vals))
	}
	out := make(map[int][]float64, len(vals)/stride)
	for i := 0; i < len(vals); i += stride {
		g := int(vals[i])
		if g < 0 || g >= n {
			return nil, fmt.Errorf("gauss: gathered row index %d", g)
		}
		out[g] = vals[i+1 : i+stride]
	}
	return out, nil
}
