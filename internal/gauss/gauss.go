// Package gauss implements distributed Gaussian elimination with partial
// pivoting, the application Section 6.0 cites as having non-uniform
// computational and communication complexity. The matrix is row-decomposed
// (the PDU is a row, assigned contiguously by the partition vector); each
// elimination step runs a root-coordinated broadcast cycle: tasks send
// their local pivot candidates to the root, the root selects the global
// pivot and broadcasts the pivot row (and the displaced row k) to everyone,
// and all tasks eliminate their still-active rows.
//
// The per-cycle work shrinks as elimination proceeds — the non-uniformity
// the paper contrasts with the stencil — and the communication pattern is
// the bandwidth-limited broadcast topology, so the partitioning method
// chooses far fewer processors for this application than for the stencil.
package gauss

import (
	"errors"
	"fmt"
	"math"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/spmd"
	"netpart/internal/topo"
)

// Annotations returns the callback annotations for an n×n elimination.
// The dominant computation phase charges the average per-row elimination
// work of one step (≈ n flops per owned row, since about half the rows are
// active with ~2n flops each); the dominant communication phase is the
// broadcast of candidate and pivot rows, ≈ 8·(n+2) bytes per message.
func Annotations(n int) *core.Annotations {
	return &core.Annotations{
		Name:    "gauss",
		NumPDUs: func() int { return n },
		Compute: []core.ComputationPhase{{
			Name:             "eliminate",
			ComplexityPerPDU: func() float64 { return float64(n) },
			Class:            model.OpFloat,
		}},
		Comm: []core.CommunicationPhase{{
			Name:            "pivot-broadcast",
			Topology:        "broadcast",
			BytesPerMessage: func(float64) float64 { return 8 * float64(n+2) },
		}},
		Cycles: n,
	}
}

// System is a dense linear system Ax = b.
type System struct {
	A [][]float64
	B []float64
}

// NewSystem generates a deterministic, well-conditioned (diagonally
// dominant) n×n system using a simple linear congruential generator seeded
// by seed.
func NewSystem(n int, seed uint64) System {
	lcg := seed*2862933555777941757 + 3037000493
	next := func() float64 {
		lcg = lcg*2862933555777941757 + 3037000493
		return float64(lcg>>11) / float64(1<<53) // [0,1)
	}
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		rowSum := 0.0
		for j := range a[i] {
			a[i][j] = next()*2 - 1
			rowSum += math.Abs(a[i][j])
		}
		a[i][i] += rowSum + 1 // diagonal dominance
		b[i] = next()*2 - 1
	}
	return System{A: a, B: b}
}

// clone deep-copies the system.
func (s System) clone() System {
	a := make([][]float64, len(s.A))
	for i := range s.A {
		a[i] = append([]float64(nil), s.A[i]...)
	}
	return System{A: a, B: append([]float64(nil), s.B...)}
}

// ErrSingular reports a (numerically) singular matrix.
var ErrSingular = errors.New("gauss: singular matrix")

// Sequential solves Ax = b by Gaussian elimination with partial pivoting.
// It is the correctness reference for the distributed implementation.
func Sequential(s System) ([]float64, error) {
	w := s.clone()
	n := len(w.A)
	for k := 0; k < n; k++ {
		// Partial pivoting: the largest |A[i][k]| for i ≥ k.
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(w.A[i][k]) > math.Abs(w.A[p][k]) {
				p = i
			}
		}
		if math.Abs(w.A[p][k]) < 1e-12 {
			return nil, ErrSingular
		}
		w.A[k], w.A[p] = w.A[p], w.A[k]
		w.B[k], w.B[p] = w.B[p], w.B[k]
		for i := k + 1; i < n; i++ {
			f := w.A[i][k] / w.A[k][k]
			if f == 0 {
				continue
			}
			w.A[i][k] = 0
			for j := k + 1; j < n; j++ {
				w.A[i][j] -= f * w.A[k][j]
			}
			w.B[i] -= f * w.B[k]
		}
	}
	return backSubstitute(w.A, w.B), nil
}

// backSubstitute solves the upper-triangular system in place.
func backSubstitute(a [][]float64, b []float64) []float64 {
	n := len(a)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x
}

// Residual returns max_i |A·x - b|_i for the original system.
func Residual(s System, x []float64) float64 {
	worst := 0.0
	for i := range s.A {
		sum := -s.B[i]
		for j := range s.A[i] {
			sum += s.A[i][j] * x[j]
		}
		if r := math.Abs(sum); r > worst {
			worst = r
		}
	}
	return worst
}

// candidate is a local pivot candidate: the absolute value and global index
// of the best pivot row a task owns at step k, plus the row contents (and
// the task's copy of global row k, if it owns it, for the swap).
type candidate struct {
	absVal float64
	row    int       // global index, -1 if the task has no active rows
	data   []float64 // the candidate row (n values + rhs)
	rowK   []float64 // contents of global row k if owned, else nil
}

// pivotMsg is the root's broadcast: the chosen pivot row and the displaced
// row k contents.
type pivotMsg struct {
	pivotRow int
	pivot    []float64 // n values + rhs (already swapped into position k)
	oldK     []float64 // previous contents of row k (n values + rhs)
}

// SimResult is the outcome of a simulated distributed solve.
type SimResult struct {
	ElapsedMs float64
	X         []float64
	Report    spmd.Report
}

// candidateBytes is the charged wire size of one candidate or pivot row
// message (8-byte values, row + rhs + indices).
func candidateBytes(n int) int { return 8 * (n + 2) }

// ContiguousAssignment maps the partition vector to block ownership:
// rank r owns the vec[r] consecutive rows after rank r-1's.
func ContiguousAssignment(vec core.Vector) [][]int {
	out := make([][]int, len(vec))
	g := 0
	for r, a := range vec {
		for i := 0; i < a; i++ {
			out[r] = append(out[r], g)
			g++
		}
	}
	return out
}

// CyclicAssignment interleaves each task's quota across the matrix in
// `blocks` chunks — the classic remedy for elimination's shrinking active
// window, which starves early-row owners under a contiguous assignment.
// The paper's Section 4.0 anticipates exactly this freedom: "the
// implementation is responsible for using the partition vector in a manner
// appropriate to the implementation." blocks=1 degenerates to the
// contiguous assignment; each task still receives exactly vec[r] rows.
func CyclicAssignment(vec core.Vector, blocks int) [][]int {
	if blocks < 1 {
		blocks = 1
	}
	out := make([][]int, len(vec))
	g := 0
	for b := 0; b < blocks; b++ {
		for r, a := range vec {
			// Chunk b of rank r: its share of the quota.
			chunk := a/blocks + boolToInt(b < a%blocks)
			for i := 0; i < chunk; i++ {
				out[r] = append(out[r], g)
				g++
			}
		}
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// RunSim solves the system on the simulated network with the given
// configuration and partition vector, using the contiguous block
// assignment. Rank 0 acts as the broadcast root (the paper's task
// placement puts it on the fastest cluster).
func RunSim(net *model.Network, cfg cost.Config, vec core.Vector, s System) (SimResult, error) {
	return RunSimAssigned(net, cfg, vec, ContiguousAssignment(vec), s)
}

// RunSimCyclic solves with the block-cyclic row assignment, which keeps
// every task busy through the late elimination stages.
func RunSimCyclic(net *model.Network, cfg cost.Config, vec core.Vector, blocks int, s System) (SimResult, error) {
	return RunSimAssigned(net, cfg, vec, CyclicAssignment(vec, blocks), s)
}

// RunSimAssigned solves with an explicit row-ownership assignment:
// assignment[rank] lists the global rows rank owns, ascending. Any
// assignment covering each row exactly once yields a result bit-identical
// to Sequential.
func RunSimAssigned(net *model.Network, cfg cost.Config, vec core.Vector, assignment [][]int, s System) (SimResult, error) {
	n := len(s.A)
	if vec.Sum() != n {
		return SimResult{}, fmt.Errorf("gauss: vector sums to %d, want %d rows", vec.Sum(), n)
	}
	names, counts := cfg.Active()
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return SimResult{}, err
	}
	if pl.NumTasks() != len(vec) || len(assignment) != len(vec) {
		return SimResult{}, errors.New("gauss: configuration, vector, and assignment disagree on task count")
	}
	seen := make([]bool, n)
	for r, owned := range assignment {
		if len(owned) != vec[r] {
			return SimResult{}, fmt.Errorf("gauss: rank %d assigned %d rows, vector says %d", r, len(owned), vec[r])
		}
		for i, g := range owned {
			if g < 0 || g >= n || seen[g] {
				return SimResult{}, fmt.Errorf("gauss: row %d misassigned", g)
			}
			if i > 0 && owned[i-1] >= g {
				return SimResult{}, fmt.Errorf("gauss: rank %d assignment not ascending", r)
			}
			seen[g] = true
		}
	}
	var x []float64
	var solveErr error
	job := spmd.Job{
		Net:       net,
		Placement: pl,
		Vector:    vec,
		Topology:  topo.Broadcast{},
		Body: func(t *spmd.Task) {
			sol, err := runTask(t, s, assignment[t.Rank()])
			if t.Rank() == 0 {
				x, solveErr = sol, err
			}
		},
	}
	rep, err := spmd.Run(job)
	if err != nil {
		return SimResult{}, err
	}
	if solveErr != nil {
		return SimResult{}, solveErr
	}
	return SimResult{ElapsedMs: rep.ElapsedMs, X: x, Report: rep}, nil
}

// runTask is the per-rank distributed elimination. owned lists the global
// rows this rank holds (ascending); local storage appends the rhs to each
// row.
func runTask(t *spmd.Task, s System, owned []int) ([]float64, error) {
	n := len(s.A)
	local := make([][]float64, len(owned))
	localIdx := make(map[int]int, len(owned))
	for i, g := range owned {
		local[i] = make([]float64, n+1)
		copy(local[i], s.A[g])
		local[i][n] = s.B[g]
		localIdx[g] = i
	}
	owns := func(g int) bool { _, ok := localIdx[g]; return ok }
	msgBytes := candidateBytes(n)

	for k := 0; k < n; k++ {
		// Local pivot candidate among owned active rows (global ≥ k).
		// owned is ascending and selection is strict, so the candidate is
		// the lowest-index maximum — matching Sequential's tie-breaking.
		cand := candidate{row: -1}
		for i := range local {
			g := owned[i]
			if g < k {
				continue
			}
			if v := math.Abs(local[i][k]); cand.row < 0 || v > cand.absVal {
				cand.absVal = v
				cand.row = g
				cand.data = local[i]
			}
		}
		if cand.data != nil {
			cand.data = append([]float64(nil), cand.data...)
		}
		if owns(k) {
			cand.rowK = append([]float64(nil), local[localIdx[k]]...)
		}

		var msg pivotMsg
		if t.Rank() == 0 {
			// Gather candidates; select; broadcast.
			best := cand
			var rowK []float64 = cand.rowK
			for src := 1; src < t.NumTasks(); src++ {
				c := t.Recv(src).(candidate)
				// Prefer strictly larger |pivot|; on exact ties, the
				// lowest row index (Sequential's first-maximum rule, kept
				// assignment independent).
				if c.row >= 0 && (best.row < 0 || c.absVal > best.absVal ||
					(c.absVal == best.absVal && c.row < best.row)) {
					best = c
				}
				if c.rowK != nil {
					rowK = c.rowK
				}
			}
			if best.row < 0 || best.absVal < 1e-12 {
				msg = pivotMsg{pivotRow: -1}
			} else {
				msg = pivotMsg{pivotRow: best.row, pivot: best.data, oldK: rowK}
			}
			for dst := 1; dst < t.NumTasks(); dst++ {
				t.Send(dst, 2*msgBytes, msg)
			}
		} else {
			t.Send(0, msgBytes, cand)
			msg = t.Recv(0).(pivotMsg)
		}
		if msg.pivotRow < 0 {
			if t.Rank() == 0 {
				return nil, ErrSingular
			}
			return nil, nil
		}
		// Swap: row k takes the pivot contents; the pivot's old slot takes
		// the previous row k.
		if owns(k) {
			copy(local[localIdx[k]], msg.pivot)
		}
		if owns(msg.pivotRow) && msg.pivotRow != k {
			copy(local[localIdx[msg.pivotRow]], msg.oldK)
		}
		// Eliminate owned active rows below k; charge ~2(n-k) flops each.
		pivot := msg.pivot
		elimOps := 0.0
		for i := range local {
			g := owned[i]
			if g <= k {
				continue
			}
			f := local[i][k] / pivot[k]
			local[i][k] = 0
			if f != 0 {
				for j := k + 1; j <= n; j++ {
					local[i][j] -= f * pivot[j]
				}
			}
			elimOps += 2 * float64(n-k+1)
		}
		t.Compute(elimOps, model.OpFloat)
	}

	// Gather the upper-triangular system at the root for back substitution.
	if t.Rank() == 0 {
		a := make([][]float64, n)
		b := make([]float64, n)
		fill := func(g int, row []float64) {
			a[g] = row[:n]
			b[g] = row[n]
		}
		for i := range local {
			fill(owned[i], local[i])
		}
		for src := 1; src < t.NumTasks(); src++ {
			part := t.Recv(src).(map[int][]float64)
			for g, row := range part {
				fill(g, row)
			}
		}
		t.Compute(float64(n*n), model.OpFloat) // back substitution cost
		return backSubstitute(a, b), nil
	}
	part := make(map[int][]float64, len(owned))
	for i := range local {
		part[owned[i]] = local[i]
	}
	t.Send(0, len(owned)*candidateBytes(n), part)
	return nil, nil
}
