// Package cost implements the topology-specific communication cost
// functions of Section 3.0: per-(cluster, topology) Eq. 1 models
//
//	T_comm[C,τ](b, p) = c1 + c2·p + b·(c3 + c4·p)
//
// per-byte router and coercion penalties, the Eq. 2 max-composition across
// clusters, and the least-squares fitting used to construct the models from
// offline benchmark measurements. All times are in milliseconds and message
// sizes in bytes.
//
//netpart:deterministic
package cost

import (
	"fmt"
	"math"
	"sort"

	"netpart/internal/model"
	"netpart/internal/topo"
)

// Params are the four constants of Eq. 1: latency constants C1 (fixed) and
// C2 (per processor) and bandwidth constants C3 (per byte) and C4 (per byte
// per processor).
type Params struct {
	// C1 is the fixed latency, C2 the added latency per station.
	//netpart:unit ms
	C1, C2 float64
	// C3 is the per-byte cost, C4 the added per-byte cost per station.
	//netpart:unit ms/bytes
	C3, C4 float64
}

// Eval computes Eq. 1 for a b-byte message among p processors. Following
// Section 6.0, the absolute value is taken: the linear fit may go negative
// for small p, and the paper observes |T| is a very good approximation to
// the actual cost there.
//
//netpart:unit b bytes
//netpart:unit p 1
//netpart:unit return ms
func (c Params) Eval(b float64, p int) float64 {
	v := c.C1 + c.C2*float64(p) + b*(c.C3+c.C4*float64(p))
	return math.Abs(v)
}

// String renders the constants in the paper's form.
func (c Params) String() string {
	return fmt.Sprintf("%.4g + %.4g·p + b·(%.4g + %.4g·p)", c.C1, c.C2, c.C3, c.C4)
}

// PerByte is a cost that is linear in message size, used for the router
// (T_router) and coercion (T_coerce) penalties.
type PerByte struct {
	// Ms is the per-byte cost in milliseconds.
	//netpart:unit ms/bytes
	Ms float64
	// FixedMs is a per-message constant (zero in the paper's fits).
	//netpart:unit ms
	FixedMs float64
}

// Eval returns the cost of one b-byte message.
//
//netpart:unit b bytes
//netpart:unit return ms
func (p PerByte) Eval(b float64) float64 { return p.FixedMs + p.Ms*b }

// Migration extends the Eq. 4–6 cost model with the price of *changing* a
// partition: moving rows_moved PDUs to their new owners costs
//
//	T_mig(rows_moved) = PerMoveMs + PerByteMs · RowBytes · rows_moved
//
// — one fixed protocol round (the gather/broadcast of the decision plus
// per-batch framing, folded into PerMoveMs) and a bandwidth term for the
// payload itself. The incremental repartitioner (internal/repart) charges
// T_mig, amortized over the expected cycles until the next repartition,
// against the per-cycle gain a candidate vector promises; without it the
// planner would chase every transient measurement. The constants come from
// the same Eq. 1 fits as T_comm: PerMoveMs from C1 and PerByteMs from C3.
type Migration struct {
	// PerMoveMs is the fixed cost of one migration round.
	//netpart:unit ms
	PerMoveMs float64
	// PerByteMs is the wire cost per payload byte moved.
	//netpart:unit ms/bytes
	PerByteMs float64
	// RowBytes is the payload size of one migrated PDU (row).
	//netpart:unit bytes/pdus
	RowBytes float64
}

// MigrationFromParams derives T_mig constants from a cluster's Eq. 1 fit:
// the fixed latency C1 prices the migration round, the per-byte constant
// C3 prices the payload. As in Eval, absolute values are taken — the
// Section 6.0 linear fits may go negative (the paper's C3 for both
// clusters does), and a negative T_mig would reward churn.
//
//netpart:unit rowBytes bytes/pdus
func MigrationFromParams(p Params, rowBytes float64) Migration {
	return Migration{PerMoveMs: math.Abs(p.C1), PerByteMs: math.Abs(p.C3), RowBytes: rowBytes}
}

// Cost evaluates T_mig for a plan that moves rowsMoved PDUs. A plan that
// moves nothing costs nothing (no migration round happens).
//
//netpart:unit rowsMoved pdus
//netpart:unit return ms
func (m Migration) Cost(rowsMoved int) float64 {
	if rowsMoved <= 0 {
		return 0
	}
	return m.PerMoveMs + m.PerByteMs*m.RowBytes*float64(rowsMoved)
}

// pairKey is an unordered cluster pair.
type pairKey struct{ a, b string }

func makePair(a, b string) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// Table holds the benchmarked cost models for one network: Eq. 1 constants
// per (cluster, topology), and per-byte router and coercion penalties per
// cluster pair. Construct with NewTable and populate via Set* (typically
// from package commbench's fits).
type Table struct {
	comm   map[string]map[string]Params // cluster → topology → params
	router map[pairKey]PerByte
	coerce map[pairKey]PerByte
}

// NewTable returns an empty cost table.
func NewTable() *Table {
	return &Table{
		comm:   make(map[string]map[string]Params),
		router: make(map[pairKey]PerByte),
		coerce: make(map[pairKey]PerByte),
	}
}

// SetComm records the Eq. 1 constants for a (cluster, topology) pair.
func (t *Table) SetComm(cluster, topology string, p Params) {
	m, ok := t.comm[cluster]
	if !ok {
		m = make(map[string]Params)
		t.comm[cluster] = m
	}
	m[topology] = p
}

// Comm returns the Eq. 1 constants for a (cluster, topology) pair.
func (t *Table) Comm(cluster, topology string) (Params, error) {
	if m, ok := t.comm[cluster]; ok {
		if p, ok := m[topology]; ok {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("cost: no model for cluster %q topology %q", cluster, topology)
}

// SetRouter records the router penalty between two clusters (order
// irrelevant).
func (t *Table) SetRouter(c1, c2 string, p PerByte) { t.router[makePair(c1, c2)] = p }

// Router returns the router penalty between two clusters, zero if none was
// recorded (e.g. same segment).
func (t *Table) Router(c1, c2 string) PerByte { return t.router[makePair(c1, c2)] }

// SetCoerce records the coercion penalty between two clusters.
func (t *Table) SetCoerce(c1, c2 string, p PerByte) { t.coerce[makePair(c1, c2)] = p }

// Coerce returns the coercion penalty between two clusters, zero if none.
func (t *Table) Coerce(c1, c2 string) PerByte { return t.coerce[makePair(c1, c2)] }

// Clusters returns the clusters with at least one comm model, sorted.
func (t *Table) Clusters() []string {
	out := make([]string, 0, len(t.comm))
	for c := range t.comm {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Config is a processor configuration: the number of processors used in
// each cluster, in a fixed cluster order. It is the object the partitioning
// heuristic searches over.
type Config struct {
	// Clusters lists cluster names in the order tasks are placed
	// (fastest-first for the paper's heuristic).
	Clusters []string
	// Counts[i] is P_i, the processors used in Clusters[i].
	//netpart:unit 1
	Counts []int
}

// Total returns the total number of processors in the configuration.
//
//netpart:unit return 1
func (c Config) Total() int {
	sum := 0
	for _, n := range c.Counts {
		sum += n
	}
	return sum
}

// Active returns the clusters with nonzero counts, preserving order, and
// their counts.
func (c Config) Active() ([]string, []int) {
	var names []string
	var counts []int
	for i, n := range c.Counts {
		if n > 0 {
			names = append(names, c.Clusters[i])
			counts = append(counts, n)
		}
	}
	return names, counts
}

// String renders the configuration as "cluster:count" pairs.
func (c Config) String() string {
	s := ""
	for i, name := range c.Clusters {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", name, c.Counts[i])
	}
	return s
}

// CommCost estimates T_comm for one communication cycle of a b-byte-message
// exchange under the given topology and configuration (Eq. 2 and the
// cross-cluster extension of Section 3.0):
//
//   - Within each active cluster C_i, the cost is Eq. 1 at p = P_i, with
//     one extra station (p+1) when the cluster's tasks communicate across
//     the router (the router contends for the cluster's channel).
//   - Tasks adjacent to a different cluster additionally pay the per-byte
//     router and (if formats differ) coercion penalties.
//   - The synchronous cost is the maximum over clusters for locality-
//     exploiting topologies; bandwidth-limited topologies are charged at
//     the total processor count on every segment.
//
//netpart:unit b bytes
//netpart:unit return ms
func (t *Table) CommCost(net *model.Network, tp topo.Topology, b float64, cfg Config) (float64, error) {
	if net == nil {
		return 0, fmt.Errorf("cost: nil network")
	}
	names, counts := cfg.Active()
	if len(names) == 0 {
		return 0, nil
	}
	if len(names) == 1 && counts[0] == 1 {
		return 0, nil // a single task exchanges no messages
	}
	pl, err := topo.Contiguous(names, counts)
	if err != nil {
		return 0, err
	}
	border := topo.BorderTasks(tp, pl)
	total := cfg.Total()
	worst := 0.0
	for i, name := range names {
		params, err := t.Comm(name, tp.Name())
		if err != nil {
			return 0, err
		}
		p := counts[i]
		if tp.BandwidthLimited() {
			// Broadcast-like: offered load scales with the total number of
			// participants regardless of segment locality.
			p = total
		}
		crosses := border[name] > 0
		if crosses {
			p++ // the router is one more station on this segment
		}
		c := params.Eval(b, p)
		if crosses {
			c += t.crossPenalty(net, names, name, b)
		}
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}

// crossPenalty returns the worst-case router+coercion per-message penalty a
// border task of cluster 'from' pays to reach any other active cluster.
//
//netpart:unit b bytes
//netpart:unit return ms
func (t *Table) crossPenalty(net *model.Network, active []string, from string, b float64) float64 {
	worst := 0.0
	for _, other := range active {
		if other == from || net.SameSegment(from, other) {
			continue
		}
		p := t.Router(from, other).Eval(b)
		if net.NeedsCoercion(from, other) {
			p += t.Coerce(from, other).Eval(b)
		}
		if p > worst {
			worst = p
		}
	}
	return worst
}
