package cost

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"netpart/internal/model"
	"netpart/internal/topo"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestParamsEval(t *testing.T) {
	p := Params{C1: 1, C2: 2, C3: 0.1, C4: 0.01}
	// 1 + 2·3 + 100·(0.1 + 0.01·3) = 7 + 13 = 20
	if got := p.Eval(100, 3); !almostEqual(got, 20, 1e-12) {
		t.Errorf("Eval = %v, want 20", got)
	}
}

func TestParamsEvalAbsGuard(t *testing.T) {
	// The paper's C2/IPC fit goes negative for P2=2 at small b; Section 6.0
	// takes the absolute value.
	p := Params{C1: 0, C2: 0, C3: -0.0123, C4: 0.00457}
	got := p.Eval(100, 2)
	raw := 100 * (-0.0123 + 0.00457*2)
	if raw >= 0 {
		t.Fatalf("test premise broken: raw = %v", raw)
	}
	if !almostEqual(got, -raw, 1e-12) {
		t.Errorf("Eval = %v, want |%v|", got, raw)
	}
}

func TestParamsString(t *testing.T) {
	s := Params{C1: 1, C2: 2, C3: 3, C4: 4}.String()
	if !strings.Contains(s, "p") || !strings.Contains(s, "b") {
		t.Errorf("String() = %q", s)
	}
}

func TestPerByteEval(t *testing.T) {
	p := PerByte{Ms: 0.0006, FixedMs: 0.5}
	if got := p.Eval(1000); !almostEqual(got, 1.1, 1e-12) {
		t.Errorf("Eval = %v, want 1.1", got)
	}
}

func TestTableSetGet(t *testing.T) {
	tbl := NewTable()
	want := Params{C1: 1}
	tbl.SetComm("sparc2", "1-D", want)
	got, err := tbl.Comm("sparc2", "1-D")
	if err != nil || got != want {
		t.Errorf("Comm = %v, %v", got, err)
	}
	if _, err := tbl.Comm("sparc2", "ring"); err == nil {
		t.Error("missing topology should error")
	}
	if _, err := tbl.Comm("nope", "1-D"); err == nil {
		t.Error("missing cluster should error")
	}
	tbl.SetRouter("a", "b", PerByte{Ms: 2})
	if tbl.Router("b", "a").Ms != 2 {
		t.Error("router lookup must be order independent")
	}
	if tbl.Router("a", "c").Ms != 0 {
		t.Error("unset router should be zero")
	}
	tbl.SetCoerce("b", "a", PerByte{Ms: 3})
	if tbl.Coerce("a", "b").Ms != 3 {
		t.Error("coerce lookup must be order independent")
	}
	clusters := tbl.Clusters()
	if len(clusters) != 1 || clusters[0] != "sparc2" {
		t.Errorf("Clusters = %v", clusters)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{Clusters: []string{"a", "b", "c"}, Counts: []int{2, 0, 3}}
	if cfg.Total() != 5 {
		t.Errorf("Total = %d", cfg.Total())
	}
	names, counts := cfg.Active()
	if len(names) != 2 || names[0] != "a" || names[1] != "c" || counts[1] != 3 {
		t.Errorf("Active = %v %v", names, counts)
	}
	if s := cfg.String(); !strings.Contains(s, "a:2") || !strings.Contains(s, "b:0") {
		t.Errorf("String = %q", s)
	}
}

func TestCommCostSingleCluster(t *testing.T) {
	net := model.PaperTestbed()
	tbl := PaperTable()
	// 6 Sparc2s, N=1200 → b=4800:
	// (-0.0055 + 0.00283·6)·4800 + 1.1·6 = 55.104 + 6.6 = 61.704
	got, err := tbl.CommCost(net, topo.OneD{}, 4800, Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 61.704, 1e-9) {
		t.Errorf("CommCost = %v, want 61.704", got)
	}
}

func TestCommCostSingleTaskIsFree(t *testing.T) {
	net := model.PaperTestbed()
	tbl := PaperTable()
	got, err := tbl.CommCost(net, topo.OneD{}, 4800, Config{
		Clusters: []string{model.Sparc2Cluster},
		Counts:   []int{1},
	})
	if err != nil || got != 0 {
		t.Errorf("single task CommCost = %v, %v; want 0", got, err)
	}
	got, err = tbl.CommCost(net, topo.OneD{}, 4800, Config{
		Clusters: []string{model.Sparc2Cluster},
		Counts:   []int{0},
	})
	if err != nil || got != 0 {
		t.Errorf("empty config CommCost = %v, %v; want 0", got, err)
	}
}

func TestCommCostCrossCluster(t *testing.T) {
	net := model.PaperTestbed()
	tbl := PaperTable()
	b := 4800.0
	got, err := tbl.CommCost(net, topo.OneD{}, b, Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{6, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper composition: max over clusters at p+1 stations, plus router.
	c1 := Params{C2: 1.1, C3: -0.0055, C4: 0.00283}.Eval(b, 7) + 0.0006*b
	c2 := Params{C2: 1.9, C3: -0.0123, C4: 0.00457}.Eval(b, 7) + 0.0006*b
	want := math.Max(c1, c2)
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("CommCost = %v, want %v", got, want)
	}
	// The IPC cluster must dominate (slower comm).
	if !almostEqual(got, c2, 1e-9) {
		t.Errorf("IPC should dominate: got %v, ipc %v", got, c2)
	}
}

func TestCommCostCrossClusterExceedsLocal(t *testing.T) {
	net := model.PaperTestbed()
	tbl := PaperTable()
	b := 2400.0
	local, err := tbl.CommCost(net, topo.OneD{}, b, Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	spanning, err := tbl.CommCost(net, topo.OneD{}, b, Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if spanning <= local {
		t.Errorf("spanning cost %v should exceed local cost %v", spanning, local)
	}
}

func TestCommCostBandwidthLimited(t *testing.T) {
	net := model.PaperTestbed()
	tbl := PaperTable()
	tbl.SetComm(model.Sparc2Cluster, "broadcast", Params{C2: 1, C4: 0.001})
	tbl.SetComm(model.IPCCluster, "broadcast", Params{C2: 1, C4: 0.001})
	b := 1000.0
	got, err := tbl.CommCost(net, topo.Broadcast{}, b, Config{
		Clusters: []string{model.Sparc2Cluster, model.IPCCluster},
		Counts:   []int{4, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth-limited: each cluster is charged at total procs (8) + 1
	// router station, plus the router per-byte penalty.
	want := Params{C2: 1, C4: 0.001}.Eval(b, 9) + 0.0006*b
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("broadcast CommCost = %v, want %v", got, want)
	}
}

func TestCommCostCoercion(t *testing.T) {
	net := model.Figure1Network()
	tbl := NewTable()
	for _, c := range []string{"sun4", "hp", "rs6000"} {
		tbl.SetComm(c, "1-D", Params{C2: 1, C4: 0.001})
	}
	tbl.SetRouter("sun4", "rs6000", PerByte{Ms: 0.0006})
	tbl.SetCoerce("sun4", "rs6000", PerByte{Ms: 0.0004})
	b := 1000.0
	got, err := tbl.CommCost(net, topo.OneD{}, b, Config{
		Clusters: []string{"sun4", "rs6000"},
		Counts:   []int{2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Formats differ → router + coercion, both clusters symmetric here.
	want := Params{C2: 1, C4: 0.001}.Eval(b, 3) + 0.0006*b + 0.0004*b
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("CommCost = %v, want %v", got, want)
	}
}

func TestCommCostMissingModel(t *testing.T) {
	net := model.PaperTestbed()
	tbl := NewTable()
	_, err := tbl.CommCost(net, topo.OneD{}, 100, Config{
		Clusters: []string{model.Sparc2Cluster}, Counts: []int{4}})
	if err == nil {
		t.Error("missing model should error")
	}
}

func TestCommCostNilNetwork(t *testing.T) {
	tbl := PaperTable()
	if _, err := tbl.CommCost(nil, topo.OneD{}, 100, Config{}); err == nil {
		t.Error("nil network should error")
	}
}

func TestFitRecoversKnownConstants(t *testing.T) {
	truth := Params{C1: 0.4, C2: 1.1, C3: -0.0055, C4: 0.00283}
	var obs []Observation
	for p := 2; p <= 8; p++ {
		for _, b := range []float64{240, 1200, 2400, 4800} {
			obs = append(obs, Observation{
				B: b, P: p,
				Ms: truth.C1 + truth.C2*float64(p) + b*(truth.C3+truth.C4*float64(p)),
			})
		}
	}
	got, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range [][2]float64{
		{got.C1, truth.C1}, {got.C2, truth.C2}, {got.C3, truth.C3}, {got.C4, truth.C4},
	} {
		if !almostEqual(pair[0], pair[1], 1e-6) {
			t.Errorf("constant %d: got %v, want %v", i+1, pair[0], pair[1])
		}
	}
	q := Quality(got, obs)
	if q.RMSE > 1e-6 || q.R2 < 0.999999 {
		t.Errorf("perfect data should fit perfectly: %+v", q)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit should error")
	}
	// All observations at the same (b, p): singular.
	same := []Observation{{B: 100, P: 2, Ms: 1}, {B: 100, P: 2, Ms: 1.1},
		{B: 100, P: 2, Ms: 0.9}, {B: 100, P: 2, Ms: 1}}
	if _, err := Fit(same); err == nil {
		t.Error("degenerate design should be singular")
	}
}

func TestFitPerByte(t *testing.T) {
	obs := []Observation{{B: 100, Ms: 0.56}, {B: 1000, Ms: 1.1}, {B: 4800, Ms: 3.38}}
	got, err := FitPerByte(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got.Ms, 0.0006, 1e-9) || !almostEqual(got.FixedMs, 0.5, 1e-9) {
		t.Errorf("FitPerByte = %+v, want slope 0.0006 fixed 0.5", got)
	}
	if _, err := FitPerByte(obs[:1]); err == nil {
		t.Error("single observation should error")
	}
	if _, err := FitPerByte([]Observation{{B: 5, Ms: 1}, {B: 5, Ms: 2}}); err == nil {
		t.Error("constant b should be singular")
	}
}

// Property: Fit recovers arbitrary (bounded) constants from noiseless data
// over a (b, p) grid.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(c1, c2, c3, c4 int16) bool {
		truth := Params{
			C1: float64(c1) / 1000, C2: float64(c2) / 1000,
			C3: float64(c3) / 1e6, C4: float64(c4) / 1e6,
		}
		var obs []Observation
		for p := 1; p <= 6; p++ {
			for _, b := range []float64{64, 512, 2048} {
				obs = append(obs, Observation{B: b, P: p,
					Ms: truth.C1 + truth.C2*float64(p) + b*(truth.C3+truth.C4*float64(p))})
			}
		}
		got, err := Fit(obs)
		if err != nil {
			return false
		}
		tol := 1e-6
		return almostEqual(got.C1, truth.C1, tol) && almostEqual(got.C2, truth.C2, tol) &&
			almostEqual(got.C3, truth.C3, tol) && almostEqual(got.C4, truth.C4, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CommCost is monotone non-decreasing in message size for the
// paper's table (costs are |linear| with positive slope in the measured
// region).
func TestCommCostMonotoneInB(t *testing.T) {
	net := model.PaperTestbed()
	tbl := PaperTable()
	cfg := Config{Clusters: []string{model.Sparc2Cluster, model.IPCCluster}, Counts: []int{6, 6}}
	prev := -1.0
	for b := 240.0; b <= 4800; b += 240 {
		got, err := tbl.CommCost(net, topo.OneD{}, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Errorf("CommCost decreased at b=%v: %v < %v", b, got, prev)
		}
		prev = got
	}
}

func TestTableRoundTrip(t *testing.T) {
	orig := PaperTable()
	orig.SetCoerce("a", "b", PerByte{Ms: 0.0004, FixedMs: 0.1})
	var buf bytes.Buffer
	if err := WriteTable(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{model.Sparc2Cluster, model.IPCCluster} {
		want, err1 := orig.Comm(c, "1-D")
		have, err2 := got.Comm(c, "1-D")
		if err1 != nil || err2 != nil || want != have {
			t.Errorf("%s round trip: %+v vs %+v (%v %v)", c, want, have, err1, err2)
		}
	}
	if got.Router(model.IPCCluster, model.Sparc2Cluster) != orig.Router(model.Sparc2Cluster, model.IPCCluster) {
		t.Error("router entry lost")
	}
	if got.Coerce("b", "a").FixedMs != 0.1 {
		t.Error("coerce entry lost")
	}
}

func TestReadTableRejectsInvalid(t *testing.T) {
	for name, in := range map[string]string{
		"garbage":       `nope`,
		"unknown field": `{"comm":[],"bogus":1}`,
		"empty cluster": `{"comm":[{"cluster":"","topology":"1-D"}]}`,
	} {
		if _, err := ReadTable(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
