package cost

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// tableSpec is the JSON form of a Table: the offline benchmarking step
// writes it once and the runtime partitioner loads it, mirroring the
// paper's split between offline cost-function construction and runtime
// use.
type tableSpec struct {
	Comm   []commSpec `json:"comm"`
	Router []pairSpec `json:"router,omitempty"`
	Coerce []pairSpec `json:"coerce,omitempty"`
}

type commSpec struct {
	Cluster  string  `json:"cluster"`
	Topology string  `json:"topology"`
	C1       float64 `json:"c1"`
	C2       float64 `json:"c2"`
	C3       float64 `json:"c3"`
	C4       float64 `json:"c4"`
}

type pairSpec struct {
	A       string  `json:"a"`
	B       string  `json:"b"`
	Ms      float64 `json:"per_byte_ms"`
	FixedMs float64 `json:"fixed_ms,omitempty"`
}

// WriteTable encodes the table as indented JSON, entries sorted for
// stable output.
func WriteTable(w io.Writer, t *Table) error {
	var s tableSpec
	for cluster, topos := range t.comm {
		for topology, p := range topos {
			s.Comm = append(s.Comm, commSpec{
				Cluster: cluster, Topology: topology,
				C1: p.C1, C2: p.C2, C3: p.C3, C4: p.C4,
			})
		}
	}
	sort.Slice(s.Comm, func(i, j int) bool {
		if s.Comm[i].Cluster != s.Comm[j].Cluster {
			return s.Comm[i].Cluster < s.Comm[j].Cluster
		}
		return s.Comm[i].Topology < s.Comm[j].Topology
	})
	for pair, p := range t.router {
		s.Router = append(s.Router, pairSpec{A: pair.a, B: pair.b, Ms: p.Ms, FixedMs: p.FixedMs})
	}
	for pair, p := range t.coerce {
		s.Coerce = append(s.Coerce, pairSpec{A: pair.a, B: pair.b, Ms: p.Ms, FixedMs: p.FixedMs})
	}
	sortPairs := func(ps []pairSpec) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].A != ps[j].A {
				return ps[i].A < ps[j].A
			}
			return ps[i].B < ps[j].B
		})
	}
	sortPairs(s.Router)
	sortPairs(s.Coerce)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadTable decodes a table written by WriteTable.
func ReadTable(r io.Reader) (*Table, error) {
	var s tableSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("cost: decoding table: %w", err)
	}
	t := NewTable()
	for _, c := range s.Comm {
		if c.Cluster == "" || c.Topology == "" {
			return nil, fmt.Errorf("cost: comm entry missing cluster or topology")
		}
		t.SetComm(c.Cluster, c.Topology, Params{C1: c.C1, C2: c.C2, C3: c.C3, C4: c.C4})
	}
	for _, p := range s.Router {
		t.SetRouter(p.A, p.B, PerByte{Ms: p.Ms, FixedMs: p.FixedMs})
	}
	for _, p := range s.Coerce {
		t.SetCoerce(p.A, p.B, PerByte{Ms: p.Ms, FixedMs: p.FixedMs})
	}
	return t, nil
}
