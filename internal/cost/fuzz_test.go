package cost

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTable hardens the cost-table decoder.
func FuzzReadTable(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteTable(&buf, PaperTable())
	f.Add(buf.String())
	f.Add(`{"comm":[]}`)
	f.Add(`nope`)
	f.Fuzz(func(t *testing.T, src string) {
		tbl, err := ReadTable(strings.NewReader(src))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTable(&out, tbl); err != nil {
			t.Fatalf("accepted table does not re-encode: %v", err)
		}
	})
}
