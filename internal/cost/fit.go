package cost

import (
	"errors"
	"fmt"
	"math"
)

// Observation is one benchmark measurement: the elapsed time of a
// communication cycle with p processors exchanging b-byte messages.
type Observation struct {
	B  float64 // message size, bytes
	P  int     // processors
	Ms float64 // measured elapsed time, milliseconds
}

// Fitting errors.
var (
	ErrTooFewObservations = errors.New("cost: too few observations")
	ErrSingularFit        = errors.New("cost: singular design matrix (vary both b and p)")
)

// Fit computes the Eq. 1 constants minimizing squared error over the
// observations:
//
//	t ≈ c1 + c2·p + c3·b + c4·p·b
//
// by solving the 4×4 normal equations. The observation set must vary both b
// and p (otherwise the design matrix is singular).
func Fit(obs []Observation) (Params, error) {
	if len(obs) < 4 {
		return Params{}, fmt.Errorf("%w: have %d, need ≥ 4", ErrTooFewObservations, len(obs))
	}
	// Design row: x = [1, p, b, p·b]; accumulate XᵀX and Xᵀy.
	var xtx [4][4]float64
	var xty [4]float64
	for _, o := range obs {
		p := float64(o.P)
		x := [4]float64{1, p, o.B, p * o.B}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				xtx[i][j] += x[i] * x[j]
			}
			xty[i] += x[i] * o.Ms
		}
	}
	sol, err := solve4(xtx, xty)
	if err != nil {
		return Params{}, err
	}
	return Params{C1: sol[0], C2: sol[1], C3: sol[2], C4: sol[3]}, nil
}

// FitPerByte fits t ≈ fixed + ms·b to observations (used for router and
// coercion penalties, which the paper finds linear in message size).
func FitPerByte(obs []Observation) (PerByte, error) {
	if len(obs) < 2 {
		return PerByte{}, fmt.Errorf("%w: have %d, need ≥ 2", ErrTooFewObservations, len(obs))
	}
	var sb, sbb, st, sbt float64
	n := float64(len(obs))
	for _, o := range obs {
		sb += o.B
		sbb += o.B * o.B
		st += o.Ms
		sbt += o.B * o.Ms
	}
	det := n*sbb - sb*sb
	if math.Abs(det) < 1e-12 {
		return PerByte{}, ErrSingularFit
	}
	fixed := (sbb*st - sb*sbt) / det
	slope := (n*sbt - sb*st) / det
	return PerByte{FixedMs: fixed, Ms: slope}, nil
}

// Residual statistics for a fitted model over the observations it was (or
// was not) fitted to.
type FitQuality struct {
	RMSE   float64 // root mean squared error, ms
	MaxAbs float64 // worst absolute error, ms
	R2     float64 // coefficient of determination
}

// Quality evaluates how well params reproduce the observations.
func Quality(params Params, obs []Observation) FitQuality {
	if len(obs) == 0 {
		return FitQuality{}
	}
	mean := 0.0
	for _, o := range obs {
		mean += o.Ms
	}
	mean /= float64(len(obs))
	var sse, sst, maxAbs float64
	for _, o := range obs {
		// Quality is judged against the raw linear form, not the |·|
		// guard, so negative-region misfit is visible.
		pred := params.C1 + params.C2*float64(o.P) + o.B*(params.C3+params.C4*float64(o.P))
		e := pred - o.Ms
		sse += e * e
		if a := math.Abs(e); a > maxAbs {
			maxAbs = a
		}
		d := o.Ms - mean
		sst += d * d
	}
	q := FitQuality{
		RMSE:   math.Sqrt(sse / float64(len(obs))),
		MaxAbs: maxAbs,
	}
	if sst > 0 {
		q.R2 = 1 - sse/sst
	}
	return q
}

// solve4 solves a 4×4 linear system by Gaussian elimination with partial
// pivoting.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, error) {
	const n = 4
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [4]float64{}, ErrSingularFit
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	var x [4]float64
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
