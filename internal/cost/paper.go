package cost

import "netpart/internal/model"

// PaperTable returns the cost table published in Section 6.0 of the paper
// for the Sparc2+IPC testbed (all constants in milliseconds):
//
//	T_comm[C1,1-D] ≈ (-0.0055 + 0.00283·P1)·b + 1.1·P1
//	T_comm[C2,1-D] ≈ (-0.0123 + 0.00457·P2)·b + 1.9·P2
//	T_router[C1,C2] ≈ 0.0006·b
//
// No coercion entry exists because both clusters are Sun4s. This table lets
// the partitioning experiments run against the paper's exact model; the
// commbench package produces an equivalent table by benchmarking the
// simulated network.
func PaperTable() *Table {
	t := NewTable()
	t.SetComm(model.Sparc2Cluster, "1-D", Params{C1: 0, C2: 1.1, C3: -0.0055, C4: 0.00283})
	t.SetComm(model.IPCCluster, "1-D", Params{C1: 0, C2: 1.9, C3: -0.0123, C4: 0.00457})
	t.SetRouter(model.Sparc2Cluster, model.IPCCluster, PerByte{Ms: 0.0006})
	return t
}
