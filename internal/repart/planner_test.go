package repart

import (
	"testing"
	"testing/quick"

	"netpart/internal/core"
	"netpart/internal/cost"
)

// TestPlannerSheds: a rank measured slower per row ends up with fewer rows
// and the predicted bottleneck shrinks.
func TestPlannerSheds(t *testing.T) {
	p := NewPlanner(PlannerConfig{})
	cur := core.Vector{32, 32, 32, 32}
	// Rank 2 runs 3x slower per row.
	measured := []float64{32, 32, 96, 32}
	plan := p.Plan(7, "interval", cur, measured)
	if !plan.Changed() {
		t.Fatalf("kept %v under 3x imbalance", cur)
	}
	if plan.New.Sum() != cur.Sum() {
		t.Fatalf("sum changed: %v -> %v", cur, plan.New)
	}
	if plan.New[2] >= cur[2] {
		t.Errorf("slow rank kept %d rows (had %d)", plan.New[2], cur[2])
	}
	if plan.NewMaxMs >= plan.OldMaxMs {
		t.Errorf("bottleneck did not improve: %.3g -> %.3g", plan.OldMaxMs, plan.NewMaxMs)
	}
	if plan.MovedRows <= 0 || plan.Evaluations <= 0 {
		t.Errorf("moved=%d evals=%d", plan.MovedRows, plan.Evaluations)
	}
	if plan.Cycle != 7 || plan.Reason != "interval" {
		t.Errorf("metadata lost: %s", plan)
	}
}

// TestPlannerDeterministic: identical inputs render identical plans.
func TestPlannerDeterministic(t *testing.T) {
	p := NewPlanner(PlannerConfig{Mig: cost.Migration{PerMoveMs: 0.1, PerByteMs: 1e-6, RowBytes: 512}})
	cur := core.Vector{10, 20, 30, 40}
	measured := []float64{5, 11, 17, 50}
	want := p.Plan(3, "drift", cur, measured).String()
	for i := 0; i < 10; i++ {
		if got := p.Plan(3, "drift", cur, measured).String(); got != want {
			t.Fatalf("run %d: %q != %q", i, got, want)
		}
	}
}

// TestPlannerMigrationCostGates: pricing migration high enough makes the
// planner keep a mildly imbalanced vector that a free migration would fix.
func TestPlannerMigrationCostGates(t *testing.T) {
	cur := core.Vector{32, 32}
	measured := []float64{32, 40} // 25% imbalance
	free := NewPlanner(PlannerConfig{}).Plan(0, "interval", cur, measured)
	if !free.Changed() {
		t.Fatal("free migration kept the vector")
	}
	costly := NewPlanner(PlannerConfig{
		Mig:           cost.Migration{PerMoveMs: 1e6},
		HorizonCycles: 1,
	}).Plan(0, "interval", cur, measured)
	if costly.Changed() {
		t.Fatalf("moved %d rows despite prohibitive T_mig", costly.MovedRows)
	}
	if costly.Evaluations == 0 {
		t.Error("costly planner did not search at all")
	}
}

// TestPlannerHysteresis: MinGainPct keeps the vector under noise-level
// imbalance.
func TestPlannerHysteresis(t *testing.T) {
	cur := core.Vector{100, 100}
	measured := []float64{100, 101} // 1% imbalance
	plan := NewPlanner(PlannerConfig{MinGainPct: 5}).Plan(0, "interval", cur, measured)
	if plan.Changed() {
		t.Fatalf("chased 1%% noise: %v -> %v", plan.Old, plan.New)
	}
}

// TestPlannerDegenerateKeeps: bad measurements or vectors at the row floor
// keep the current vector.
func TestPlannerDegenerateKeeps(t *testing.T) {
	cur := core.Vector{8, 8}
	nan := 0.0
	nan /= nan
	cases := [][]float64{
		{0, 5},        // sub-resolution clock
		{-1, 5},       // negative
		{nan, 5},      // NaN
		{5},           // length mismatch
		{1e300, 1e18}, // finite but rank at floor below
	}
	for i, m := range cases {
		v := cur
		if i == 4 {
			v = core.Vector{1, 15} // rank 0 at the MinRows floor
		}
		plan := NewPlanner(PlannerConfig{}).Plan(0, "interval", v, m)
		if plan.Changed() {
			t.Errorf("case %d: planned %v from degenerate input", i, plan.New)
		}
	}
	var nilP *Planner
	if nilP.Plan(0, "x", cur, []float64{1, 1}).Changed() {
		t.Error("nil planner planned")
	}
}

// Property: for arbitrary positive rates the plan preserves the row total,
// respects the row floor, and never predicts a worse bottleneck than the
// measured one.
func TestPlannerInvariants(t *testing.T) {
	p := NewPlanner(PlannerConfig{Mig: cost.Migration{PerMoveMs: 0.01, PerByteMs: 1e-7, RowBytes: 256}})
	f := func(raw []uint8, msRaw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		cur := make(core.Vector, len(raw))
		measured := make([]float64, len(raw))
		for i := range raw {
			cur[i] = 1 + int(raw[i]%64)
			m := uint16(1)
			if i < len(msRaw) {
				m = msRaw[i]%500 + 1
			}
			measured[i] = float64(m)
		}
		plan := p.Plan(0, "interval", cur, measured)
		if plan.New.Sum() != cur.Sum() {
			return false
		}
		for _, c := range plan.New {
			if c < 1 {
				return false
			}
		}
		if plan.Changed() && plan.NewMaxMs > plan.OldMaxMs {
			return false
		}
		if MovedRows(plan.Old, plan.New) != plan.MovedRows {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestMigrationCostTerm pins the T_mig shape: affine in rows moved, zero
// for zero movement.
func TestMigrationCostTerm(t *testing.T) {
	m := cost.Migration{PerMoveMs: 2, PerByteMs: 0.001, RowBytes: 100}
	if got := m.Cost(0); got != 0 {
		t.Errorf("Cost(0)=%g", got)
	}
	if got := m.Cost(-3); got != 0 {
		t.Errorf("Cost(-3)=%g", got)
	}
	if got, want := m.Cost(10), 2+0.001*100*10; got != want {
		t.Errorf("Cost(10)=%g want %g", got, want)
	}
	fromParams := cost.MigrationFromParams(cost.Params{C1: 5, C3: 0.5}, 64)
	if fromParams.PerMoveMs != 5 || fromParams.PerByteMs != 0.5 || fromParams.RowBytes != 64 {
		t.Errorf("MigrationFromParams: %+v", fromParams)
	}
}
