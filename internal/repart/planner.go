// Package repart is the continuous-repartitioning engine: the one place
// that decides when a running computation's partition vector should change
// and moves the actual rows afterwards. The paper partitions once, up
// front (§7 lists dynamic recomputation as future work); this package
// makes partitioning continuous in the restreaming style — instead of
// re-running the full configuration search, the Planner starts from the
// current vector and streams rows across block boundaries while the move
// pays for itself, charging the explicit migration cost T_mig
// (cost.Migration) amortized over the expected cycles until the next
// repartition. The Migrator owns the rank-0-decides/broadcast row-
// migration protocol that the sim adaptive, live adaptive, and
// fault-tolerant runtimes previously each carried a private copy of.
//
// The decision pipeline is trigger → plan → migrate:
//
//   - a Trigger (fixed cadence, or the drift monitor's edge-triggered
//     threshold events) says a repartition is worth considering;
//   - the Planner turns measured per-task window times and the current
//     vector into a Plan, delta-evaluating candidate row moves against the
//     measured per-row rates and T_mig rather than re-running the
//     estimator;
//   - the Migrator (or the FT runtime's pump-driven equivalent) moves
//     exactly the set-difference rows, after rank 0 broadcasts the
//     (old, new) pair so every rank derives identical spans.
package repart

import (
	"fmt"
	"math"
	"strings"

	"netpart/internal/core"
	"netpart/internal/cost"
)

// Defaults for PlannerConfig's zero fields.
const (
	DefaultHorizonCycles = 32
	DefaultMaxPasses     = 8
)

// PlannerConfig parameterizes the incremental search. The zero value is
// usable: no migration cost (pure load balancing), default horizon and
// pass bound, one-row-per-rank floor.
type PlannerConfig struct {
	// Mig prices a candidate's row movement (T_mig). The zero Migration
	// costs nothing and reduces the objective to the bottleneck load.
	Mig cost.Migration
	// HorizonCycles amortizes T_mig: a move is worth its cost only if the
	// per-cycle gain times the horizon covers it. Zero takes
	// DefaultHorizonCycles.
	HorizonCycles int
	// MaxPasses bounds the restreaming sweeps over the boundaries. Zero
	// takes DefaultMaxPasses.
	MaxPasses int
	// MinGainPct keeps the current vector unless the objective improves by
	// at least this percentage — hysteresis against chasing noise.
	MinGainPct float64
	// MinRows is the per-rank row floor (default 1). Ranks at or below the
	// floor donate nothing.
	MinRows int
}

func (c PlannerConfig) horizon() float64 {
	if c.HorizonCycles <= 0 {
		return DefaultHorizonCycles
	}
	return float64(c.HorizonCycles)
}

func (c PlannerConfig) passes() int {
	if c.MaxPasses <= 0 {
		return DefaultMaxPasses
	}
	return c.MaxPasses
}

func (c PlannerConfig) minRows() int {
	if c.MinRows <= 0 {
		return 1
	}
	return c.MinRows
}

// Plan is one repartitioning decision. Old and New are equal (Changed
// false) when the planner elected to keep the current vector; the
// prediction fields are populated only where the plan was computed (rank
// 0) — ranks that learn the plan from the broadcast carry the vectors
// alone.
type Plan struct {
	// Cycle is the iteration the decision was taken at.
	Cycle int
	// Reason names the trigger: "interval", "drift", or "failure".
	Reason string
	// Old and New are the partition vectors before and after.
	Old, New core.Vector
	// MovedRows counts rows whose owner changes (the T_mig argument).
	MovedRows int
	// OldMaxMs and NewMaxMs are the measured and predicted bottleneck
	// window times (max over ranks of per-row rate × rows).
	OldMaxMs, NewMaxMs float64
	// MigMs is T_mig for MovedRows.
	MigMs float64
	// Evaluations counts objective evaluations the search spent.
	Evaluations int
	// PlanMs is the wall-clock planning latency. Excluded from String so
	// plan sequences are byte-comparable across runs.
	PlanMs float64
}

// Changed reports whether the plan actually moves rows.
func (p Plan) Changed() bool {
	if len(p.Old) != len(p.New) {
		return true
	}
	for i := range p.Old {
		if p.Old[i] != p.New[i] {
			return true
		}
	}
	return false
}

// String renders the decision deterministically (no wall-clock fields):
// the golden determinism tests compare these byte-for-byte.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d reason=%s old=%v new=%v moved=%d", p.Cycle, p.Reason, p.Old, p.New, p.MovedRows)
	if p.Evaluations > 0 {
		fmt.Fprintf(&b, " window=%.6g->%.6g ms mig=%.6g ms evals=%d", p.OldMaxMs, p.NewMaxMs, p.MigMs, p.Evaluations)
	}
	return b.String()
}

// Planner runs the incremental restreaming search. It is a pure function
// of its inputs (safe for concurrent use; no clocks, no randomness):
// given the current vector and each rank's measured window time, it
// minimizes
//
//	J(v) = max_r rate_r · v_r  +  T_mig(moved(current → v)) / horizon
//
// where rate_r is rank r's measured per-row time. Candidate moves shift
// rows across adjacent block boundaries (the only moves a contiguous 1-D
// decomposition admits); each candidate is delta-evaluated — only the two
// touched ranks' loads and the prefix overlap change — never re-estimated
// from the cost model. Doubling step sizes per boundary give the search
// its O(passes · P · log N) evaluation bound.
type Planner struct {
	cfg PlannerConfig
}

// NewPlanner returns a planner with cfg's zero fields defaulted.
func NewPlanner(cfg PlannerConfig) *Planner {
	return &Planner{cfg: cfg}
}

// keep returns the no-change plan for cur.
func keep(cycle int, reason string, cur core.Vector) Plan {
	c := append(core.Vector(nil), cur...)
	return Plan{Cycle: cycle, Reason: reason, Old: c, New: append(core.Vector(nil), c...)}
}

// Plan decides a new vector from the current one and the measured window
// times. Degenerate inputs — length mismatch, a rank at/below the row
// floor, a non-positive or non-finite measurement (sub-resolution wall
// clocks) — keep the current vector rather than guess.
func (p *Planner) Plan(cycle int, reason string, cur core.Vector, measuredMs []float64) Plan {
	plan := keep(cycle, reason, cur)
	ranks := len(cur)
	if p == nil || ranks < 2 || len(measuredMs) != ranks {
		return plan
	}
	for i := 0; i < ranks; i++ {
		if cur[i] < p.cfg.minRows() || measuredMs[i] <= 0 ||
			math.IsNaN(measuredMs[i]) || math.IsInf(measuredMs[i], 0) {
			return plan
		}
	}
	rate := make([]float64, ranks) // measured ms per row
	for i := range rate {
		rate[i] = measuredMs[i] / float64(cur[i])
	}
	v := append(core.Vector(nil), plan.New...)
	// Incremental objective state: both vectors' prefix sums plus the
	// running kept-row count, so MovedRows(cur, v) = total - kept without
	// materializing Owners pairs. A boundary-b shift only changes vPre[b+1],
	// hence only ranks b and b+1's loads and overlap terms — each candidate
	// is O(1) arithmetic on top of the per-boundary maxOther scan.
	curPre := make([]int, ranks+1)
	vPre := make([]int, ranks+1)
	for i := 0; i < ranks; i++ {
		curPre[i+1] = curPre[i] + cur[i]
		vPre[i+1] = vPre[i] + v[i]
	}
	total := curPre[ranks]
	kept := 0
	for r := 0; r < ranks; r++ {
		kept += overlapIn(curPre, r, vPre[r], vPre[r+1])
	}
	evals := 1
	base := maxLoad(rate, v) + p.cfg.Mig.Cost(total-kept)/p.cfg.horizon()
	best := base
	for pass := 0; pass < p.cfg.passes(); pass++ {
		improved := false
		for b := 0; b < ranks-1; b++ {
			// Best single shift across this boundary: either direction,
			// doubling step sizes, stopping a direction once the objective
			// turns upward (the load curve in k is convex).
			maxOther := 0.0
			for i := range v {
				if i == b || i == b+1 {
					continue
				}
				if l := rate[i] * float64(v[i]); l > maxOther {
					maxOther = l
				}
			}
			keptOut := kept - overlapIn(curPre, b, vPre[b], vPre[b+1]) -
				overlapIn(curPre, b+1, vPre[b+1], vPre[b+2])
			bestK, bestDonor, bestJ := 0, 0, best
			for _, donor := range [2]int{b, b + 1} {
				prev := math.Inf(1)
				for k := 1; k <= v[donor]-p.cfg.minRows(); k *= 2 {
					evals++
					var vb, vb1, mid int
					if donor == b {
						vb, vb1, mid = v[b]-k, v[b+1]+k, vPre[b+1]-k
					} else {
						vb, vb1, mid = v[b]+k, v[b+1]-k, vPre[b+1]+k
					}
					maxL := maxOther
					if l := rate[b] * float64(vb); l > maxL {
						maxL = l
					}
					if l := rate[b+1] * float64(vb1); l > maxL {
						maxL = l
					}
					k2 := keptOut + overlapIn(curPre, b, vPre[b], mid) +
						overlapIn(curPre, b+1, mid, vPre[b+2])
					j := maxL + p.cfg.Mig.Cost(total-k2)/p.cfg.horizon()
					if j < bestJ-1e-12 {
						bestJ, bestK, bestDonor = j, k, donor
					}
					if j >= prev {
						break
					}
					prev = j
				}
			}
			if bestK > 0 {
				recv := b + 1
				if bestDonor == b+1 {
					recv = b
				}
				v[bestDonor] -= bestK
				v[recv] += bestK
				if bestDonor == b {
					vPre[b+1] -= bestK
				} else {
					vPre[b+1] += bestK
				}
				kept = keptOut + overlapIn(curPre, b, vPre[b], vPre[b+1]) +
					overlapIn(curPre, b+1, vPre[b+1], vPre[b+2])
				best = bestJ
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	plan.Evaluations = evals
	plan.OldMaxMs = maxLoad(rate, cur)
	plan.NewMaxMs = plan.OldMaxMs
	if p.cfg.MinGainPct > 0 && base > 0 && (base-best)/base*100 < p.cfg.MinGainPct {
		return plan
	}
	plan.New = v
	plan.MovedRows = MovedRows(cur, v)
	plan.NewMaxMs = maxLoad(rate, v)
	plan.MigMs = p.cfg.Mig.Cost(plan.MovedRows)
	return plan
}

func maxLoad(rate []float64, v core.Vector) float64 {
	m := 0.0
	for i := range v {
		if l := rate[i] * float64(v[i]); l > m {
			m = l
		}
	}
	return m
}
