package repart

import (
	"encoding/binary"
	"fmt"
	"math"

	"netpart/internal/core"
	"netpart/internal/mmps"
)

// Wire codec for the repartitioning protocol, shared by every runtime that
// moves rows: the live adaptive rebalancer sends these frames bare over
// mmps transports, and the fault-tolerant runtime wraps the same row-batch
// payload in its epoch/cycle frame header (ftRows/ftCkpt). One codec, one
// byte order (big-endian, the mmps coercion format), one set of
// validation rules.

// EncodeMeasurement frames one rank's (measured window ms, current row
// count) report for the rank-0 gather.
func EncodeMeasurement(ms float64, rows int) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf, math.Float64bits(ms))
	binary.BigEndian.PutUint64(buf[8:], uint64(rows))
	return buf
}

// DecodeMeasurement parses an EncodeMeasurement frame.
func DecodeMeasurement(buf []byte) (float64, int, error) {
	if len(buf) != 16 {
		return 0, 0, fmt.Errorf("repart: measurement of %d bytes", len(buf))
	}
	return math.Float64frombits(binary.BigEndian.Uint64(buf)),
		int(binary.BigEndian.Uint64(buf[8:])), nil
}

// EncodeVectorPair frames the rank-0 decision broadcast: the (old, new)
// partition vectors every rank needs to derive the migration spans.
func EncodeVectorPair(old, new core.Vector) []byte {
	buf := make([]byte, 8+16*len(old))
	binary.BigEndian.PutUint64(buf, uint64(len(old)))
	for i := range old {
		binary.BigEndian.PutUint64(buf[8+16*i:], uint64(old[i]))
		binary.BigEndian.PutUint64(buf[16+16*i:], uint64(new[i]))
	}
	return buf
}

// DecodeVectorPair parses an EncodeVectorPair frame.
func DecodeVectorPair(buf []byte) (core.Vector, core.Vector, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("repart: short vector pair")
	}
	n := int(binary.BigEndian.Uint64(buf))
	if len(buf) != 8+16*n {
		return nil, nil, fmt.Errorf("repart: vector pair of %d bytes for %d ranks", len(buf), n)
	}
	old := make(core.Vector, n)
	new := make(core.Vector, n)
	for i := 0; i < n; i++ {
		old[i] = int(binary.BigEndian.Uint64(buf[8+16*i:]))
		new[i] = int(binary.BigEndian.Uint64(buf[16+16*i:]))
	}
	return old, new, nil
}

// EncodeRows frames a contiguous row batch: the first global row index,
// the row count, then the rows themselves.
func EncodeRows(first int, rows [][]float64) []byte {
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	buf := make([]byte, 16, 16+8*len(rows)*width)
	binary.BigEndian.PutUint64(buf, uint64(first))
	binary.BigEndian.PutUint64(buf[8:], uint64(len(rows)))
	for _, row := range rows {
		buf = mmps.AppendFloat64s(buf, row)
	}
	return buf
}

// DecodeRows parses an EncodeRows frame whose rows are width floats wide.
func DecodeRows(buf []byte, width int) (first int, rows [][]float64, err error) {
	if len(buf) < 16 {
		return 0, nil, fmt.Errorf("repart: short row batch")
	}
	first = int(binary.BigEndian.Uint64(buf))
	count := int(binary.BigEndian.Uint64(buf[8:]))
	body := buf[16:]
	if count < 0 || len(body) != 8*count*width {
		return 0, nil, fmt.Errorf("repart: row batch of %d bytes for %d rows", len(body), count)
	}
	for i := 0; i < count; i++ {
		row, err := mmps.DecodeFloat64s(body[8*i*width : 8*(i+1)*width])
		if err != nil {
			return 0, nil, err
		}
		rows = append(rows, row)
	}
	return first, rows, nil
}
