package repart

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"netpart/internal/core"
	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/obs"
)

// Metric names the engine maintains.
const (
	// MetricPlans counts planning decisions taken (including keeps).
	MetricPlans = "repart.plans"
	// MetricMigratedRows counts rows whose owner changed across all plans.
	MetricMigratedRows = "repart.migrated_rows"
	// MetricPlanMs is the planning-latency histogram.
	MetricPlanMs = "repart.plan_ms"
)

// Trigger gates repartitioning rounds. Take reports whether a repartition
// has been requested since the last call and clears the request;
// implementations must be safe for concurrent use (the drift monitor fires
// from per-rank goroutines while rank 0 polls).
type Trigger interface {
	Take() bool
}

// DriftTrigger is an edge-triggered latch connecting the drift monitor's
// threshold events to the repartitioning loop: wire Fire into
// drift.Config.Notify and hand the trigger to the adaptive runtime. The
// zero value is ready to use.
type DriftTrigger struct {
	fired atomic.Bool
}

// Fire latches a repartition request (called from the drift monitor).
func (t *DriftTrigger) Fire() {
	if t != nil {
		t.fired.Store(true)
	}
}

// Take implements Trigger.
func (t *DriftTrigger) Take() bool {
	if t == nil {
		return false
	}
	return t.fired.Swap(false)
}

// Engine ties a Planner to observability and runs the rank-0-decides
// protocol round. The zero value plans with a zero-config Planner and
// records nothing; one Engine is shared by all ranks of a run (the
// planner is pure and the sinks are concurrency-safe).
type Engine struct {
	// Planner computes plans; nil uses a zero-config planner.
	Planner *Planner
	// Metrics receives repart.plans / repart.migrated_rows counters and
	// the repart.plan_ms latency histogram (nil-safe).
	Metrics *obs.Registry
	// Trace receives one structured "repart" event per decision (nil-safe).
	Trace *obs.Recorder
	// Observer receives the decision stream as core.EvRepartPlan search
	// events, so SearchTrace/SinkObserver tooling sees repartitioning
	// decisions alongside the initial search's.
	Observer core.Observer
}

// planner returns the engine's planner, defaulting a nil one.
func (e *Engine) planner() *Planner {
	if e == nil || e.Planner == nil {
		return NewPlanner(PlannerConfig{})
	}
	return e.Planner
}

// Decide plans at rank 0 and exports the decision: counters, latency
// histogram, a "repart" trace event, and an EvRepartPlan search event.
func (e *Engine) Decide(cycle int, reason string, cur core.Vector, measuredMs []float64) Plan {
	start := time.Now()
	plan := e.planner().Plan(cycle, reason, cur, measuredMs)
	plan.PlanMs = float64(time.Since(start)) / float64(time.Millisecond)
	if e == nil {
		return plan
	}
	e.Metrics.Counter(MetricPlans).Inc()
	e.Metrics.Histogram(MetricPlanMs).Observe(plan.PlanMs)
	if plan.Changed() {
		e.Metrics.Counter(MetricMigratedRows).Add(int64(plan.MovedRows))
	}
	e.Trace.Emit("repart", map[string]any{
		"cycle":       plan.Cycle,
		"reason":      plan.Reason,
		"old":         fmt.Sprint(plan.Old),
		"new":         fmt.Sprint(plan.New),
		"moved_rows":  plan.MovedRows,
		"old_max_ms":  plan.OldMaxMs,
		"new_max_ms":  plan.NewMaxMs,
		"mig_ms":      plan.MigMs,
		"evaluations": plan.Evaluations,
		"plan_ms":     plan.PlanMs,
	})
	if e.Observer != nil {
		e.Observer.OnSearch(core.SearchEvent{
			Kind:        core.EvRepartPlan,
			Strategy:    "restream",
			P:           plan.MovedRows,
			TcMs:        plan.NewMaxMs,
			Evaluations: plan.Evaluations,
		})
	}
	return plan
}

// Round runs one gather → plan → broadcast exchange over lk: every rank
// reports its (measured window, row count); rank 0 assembles the current
// vector, decides via Decide (or keeps the vector when plan is false —
// the round still completes so every rank stays in lockstep), and
// broadcasts the (old, new) pair. All ranks return the same pair; the
// decision fields of the returned Plan are populated at rank 0 only.
// Migration is the caller's next step (Migrator.Migrate) when the plan
// changed.
//
//netpart:lockstep
func (e *Engine) Round(lk Link, cycle int, reason string, rows int, measuredMs float64, plan bool) (Plan, error) {
	rank, size := lk.Rank(), lk.Size()
	if rank != 0 {
		if err := lk.Send(0, EncodeMeasurement(measuredMs, rows)); err != nil {
			return Plan{}, err
		}
		buf, err := lk.Recv(0)
		if err != nil {
			return Plan{}, err
		}
		old, new, err := DecodeVectorPair(buf)
		if err != nil {
			return Plan{}, err
		}
		return Plan{Cycle: cycle, Reason: reason, Old: old, New: new}, nil
	}
	times := make([]float64, size)
	cur := make(core.Vector, size)
	times[0], cur[0] = measuredMs, rows
	for src := 1; src < size; src++ {
		buf, err := lk.Recv(src)
		if err != nil {
			return Plan{}, err
		}
		ms, r, err := DecodeMeasurement(buf)
		if err != nil {
			return Plan{}, err
		}
		times[src], cur[src] = ms, r
	}
	var out Plan
	if plan {
		out = e.Decide(cycle, reason, cur, times)
	} else {
		out = keep(cycle, reason, cur)
	}
	msg := EncodeVectorPair(out.Old, out.New)
	for dst := 1; dst < size; dst++ {
		if err := lk.Send(dst, msg); err != nil {
			return Plan{}, err
		}
	}
	return out, nil
}

// Survivors returns the failure-recovery planning policy: re-run the
// paper's partitioning algorithm (core.Partition) over the network reduced
// to the surviving processors. Each cluster's Available count drops to its
// number of surviving ranks, clusters left empty are removed, and the
// resulting configuration's vector is mapped back onto the surviving
// ranks in rank order (survivors the configuration does not use retire
// with zero rows). placement names the hosting cluster of each original
// rank. Results are memoized; the policy is deterministic and safe for
// concurrent use by every rank of a run.
func Survivors(net *model.Network, costs *cost.Table, ann *core.Annotations, placement []string) func(alive []int) (core.Vector, error) {
	var mu sync.Mutex
	memo := map[string]core.Vector{}
	return func(alive []int) (core.Vector, error) {
		key := fmt.Sprint(alive)
		mu.Lock()
		defer mu.Unlock()
		if vec, ok := memo[key]; ok {
			return append(core.Vector(nil), vec...), nil
		}
		aliveIn := make(map[string][]int) // cluster -> surviving ranks, ascending
		for _, r := range alive {
			if r < 0 || r >= len(placement) {
				return nil, fmt.Errorf("repart: surviving rank %d outside placement", r)
			}
			aliveIn[placement[r]] = append(aliveIn[placement[r]], r)
		}
		reduced := *net
		reduced.Clusters = nil
		for _, c := range net.Clusters {
			if len(aliveIn[c.Name]) == 0 {
				continue
			}
			cc := *c
			cc.Available = len(aliveIn[c.Name])
			reduced.Clusters = append(reduced.Clusters, &cc)
		}
		est, err := core.NewEstimator(&reduced, costs, ann)
		if err != nil {
			return nil, err
		}
		res, err := core.Partition(est)
		if err != nil {
			return nil, err
		}
		vec := make(core.Vector, len(placement))
		task := 0
		for i, name := range res.Config.Clusters {
			ranks := aliveIn[name]
			for p := 0; p < res.Config.Counts[i]; p++ {
				vec[ranks[p]] = res.Vector[task]
				task++
			}
		}
		memo[key] = append(core.Vector(nil), vec...)
		return vec, nil
	}
}
