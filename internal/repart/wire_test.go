package repart

import (
	"testing"
	"testing/quick"

	"netpart/internal/core"
)

// Property: the measurement and vector-pair codecs round-trip.
func TestWireCodecsProperty(t *testing.T) {
	f := func(msRaw uint32, rowsRaw uint16, vecRaw []uint16) bool {
		ms := float64(msRaw) / 7
		rows := int(rowsRaw)
		gotMs, gotRows, err := DecodeMeasurement(EncodeMeasurement(ms, rows))
		if err != nil || gotMs != ms || gotRows != rows {
			return false
		}
		if len(vecRaw) == 0 || len(vecRaw) > 32 {
			return true
		}
		old := make(core.Vector, len(vecRaw))
		new_ := make(core.Vector, len(vecRaw))
		for i, v := range vecRaw {
			old[i] = int(v)
			new_[i] = int(v) + 1
		}
		gotOld, gotNew, err := DecodeVectorPair(EncodeVectorPair(old, new_))
		if err != nil {
			return false
		}
		for i := range old {
			if gotOld[i] != old[i] || gotNew[i] != new_[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowBatchCodec(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	first, got, err := DecodeRows(EncodeRows(7, rows), 3)
	if err != nil || first != 7 {
		t.Fatalf("first=%d err=%v", first, err)
	}
	for i := range rows {
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatal("rows corrupted")
			}
		}
	}
	if _, _, err := DecodeRows([]byte{1}, 3); err == nil {
		t.Error("short batch accepted")
	}
	if _, _, err := DecodeRows(EncodeRows(0, rows), 4); err == nil {
		t.Error("wrong width accepted")
	}
}

func TestWireCodecErrors(t *testing.T) {
	if _, _, err := DecodeMeasurement([]byte{1, 2, 3}); err == nil {
		t.Error("short measurement accepted")
	}
	if _, _, err := DecodeVectorPair([]byte{1}); err == nil {
		t.Error("short vector pair accepted")
	}
	// Truncated body: header says 2 ranks, body holds 1.
	buf := EncodeVectorPair(core.Vector{3, 5}, core.Vector{4, 4})
	if _, _, err := DecodeVectorPair(buf[:len(buf)-8]); err == nil {
		t.Error("truncated vector pair accepted")
	}
	// Empty batch round-trips.
	first, rows, err := DecodeRows(EncodeRows(9, nil), 4)
	if err != nil || first != 9 || len(rows) != 0 {
		t.Errorf("empty batch: first=%d rows=%d err=%v", first, len(rows), err)
	}
}
