package repart

import (
	"testing"
	"testing/quick"

	"netpart/internal/core"
)

// vecFromRaw shapes arbitrary fuzz bytes into a partition vector of 1..16
// ranks with 0..15 rows each (zeros model retired ranks).
func vecFromRaw(raw []byte) core.Vector {
	if len(raw) == 0 {
		raw = []byte{1}
	}
	if len(raw) > 16 {
		raw = raw[:16]
	}
	vec := make(core.Vector, len(raw))
	for i, b := range raw {
		vec[i] = int(b % 16)
	}
	return vec
}

// shuffleVec redistributes vec's total across the same number of ranks,
// deterministically from seed, preserving the sum.
func shuffleVec(vec core.Vector, seed uint64) core.Vector {
	out := append(core.Vector(nil), vec...)
	for i := 0; i < len(out)-1; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		if out[i] == 0 {
			continue
		}
		move := int(seed>>33) % (out[i] + 1)
		out[i] -= move
		out[i+1] += move
	}
	return out
}

func TestOwnersBasics(t *testing.T) {
	own := NewOwners(core.Vector{3, 0, 5})
	if own.Ranks() != 3 {
		t.Fatalf("ranks=%d", own.Ranks())
	}
	if own.First(0) != 0 || own.Count(0) != 3 {
		t.Errorf("rank 0: first=%d count=%d", own.First(0), own.Count(0))
	}
	if own.First(1) != 3 || own.Count(1) != 0 {
		t.Errorf("rank 1: first=%d count=%d", own.First(1), own.Count(1))
	}
	if own.First(2) != 3 || own.Count(2) != 5 {
		t.Errorf("rank 2: first=%d count=%d", own.First(2), own.Count(2))
	}
	for g := 0; g < 8; g++ {
		want := 0
		if g >= 3 {
			want = 2 // the zero-width rank owns nothing
		}
		if got := own.OwnerOf(g); got != want {
			t.Errorf("OwnerOf(%d)=%d want %d", g, got, want)
		}
	}
}

// Property: Overlap and MovedRows agree with the brute-force per-row
// ownership comparison, and ForEachSpan tiles exactly the departing rows.
func TestOwnersProperty(t *testing.T) {
	f := func(raw []byte, seed uint64) bool {
		old := vecFromRaw(raw)
		new := shuffleVec(old, seed)
		oldOwn, newOwn := NewOwners(old), NewOwners(new)
		total := 0
		for _, c := range old {
			total += c
		}
		// Brute-force moved count.
		moved := 0
		for g := 0; g < total; g++ {
			if oldOwn.OwnerOf(g) != newOwn.OwnerOf(g) {
				moved++
			}
		}
		if MovedRows(old, new) != moved {
			return false
		}
		// Overlap against brute force, all rank pairs.
		for a := range old {
			for b := range new {
				n := 0
				for g := oldOwn.First(a); g < oldOwn.First(a)+oldOwn.Count(a); g++ {
					if newOwn.OwnerOf(g) == b {
						n++
					}
				}
				if Overlap(oldOwn, a, newOwn, b) != n {
					return false
				}
			}
		}
		// ForEachSpan visits every departing row once, ascending, never self.
		for rank := range old {
			seen := map[int]bool{}
			last := -1
			err := ForEachSpan(oldOwn.First(rank), oldOwn.Count(rank), newOwn, rank,
				func(dst, first, count int) error {
					if dst == rank || count <= 0 || first <= last {
						t.Fatalf("bad span dst=%d first=%d count=%d", dst, first, count)
					}
					last = first
					for g := first; g < first+count; g++ {
						if newOwn.OwnerOf(g) != dst || seen[g] {
							t.Fatalf("span row %d misrouted", g)
						}
						seen[g] = true
					}
					return nil
				})
			if err != nil {
				return false
			}
			for g := oldOwn.First(rank); g < oldOwn.First(rank)+oldOwn.Count(rank); g++ {
				if (newOwn.OwnerOf(g) != rank) != seen[g] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
