package repart

import (
	"sync"
	"testing"
	"time"

	"netpart/internal/core"
	"netpart/internal/mmps"
)

const testWidth = 4

// newTestWorld builds a closed-on-cleanup local transport world.
func newTestWorld(t testing.TB, size int) []*mmps.Local {
	t.Helper()
	world, err := mmps.NewLocalWorld(size, mmps.WithRecvTimeout(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, ep := range world {
			ep.Close()
		}
	})
	return world
}

// refRow builds the canonical content of global row g.
func refRow(g int) []float64 {
	row := make([]float64, testWidth)
	for j := range row {
		row[j] = float64(g*testWidth + j)
	}
	return row
}

// runMigration executes one full Migrator round over a local world: every
// rank starts with its old block, migrates, and the assembled new blocks
// are checked against the canonical grid. Returns total rows on the wire.
func runMigration(t *testing.T, old, new core.Vector) int {
	t.Helper()
	size := len(old)
	world := newTestWorld(t, size)
	oldOwn, newOwn := NewOwners(old), NewOwners(new)
	mig := Migrator{Width: testWidth}
	totalSent := make([]int, size)
	totalRecv := make([]int, size)
	blocks := make([]map[int][]float64, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for rank := 0; rank < size; rank++ {
		rank := rank
		store := map[int][]float64{}
		for g := oldOwn.First(rank); g < oldOwn.First(rank)+oldOwn.Count(rank); g++ {
			store[g] = refRow(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := map[int][]float64{}
			sent, received, err := mig.Migrate(world[rank], old, new,
				func(g int) []float64 { return store[g] },
				func(g int, row []float64) { got[g] = append([]float64(nil), row...) })
			totalSent[rank], totalRecv[rank], errs[rank] = sent, received, err
			blocks[rank] = got
		}()
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	wire := 0
	for rank := 0; rank < size; rank++ {
		wire += totalSent[rank]
		// Exactly the new block, nothing else, every row canonical.
		if len(blocks[rank]) != newOwn.Count(rank) {
			t.Fatalf("rank %d holds %d rows, want %d (old=%v new=%v)",
				rank, len(blocks[rank]), newOwn.Count(rank), old, new)
		}
		for g := newOwn.First(rank); g < newOwn.First(rank)+newOwn.Count(rank); g++ {
			row, ok := blocks[rank][g]
			if !ok {
				t.Fatalf("rank %d missing row %d", rank, g)
			}
			want := refRow(g)
			for j := range want {
				if row[j] != want[j] {
					t.Fatalf("rank %d row %d corrupted", rank, g)
				}
			}
		}
	}
	recvTotal := 0
	for _, r := range totalRecv {
		recvTotal += r
	}
	if wire != recvTotal {
		t.Fatalf("sent %d rows, received %d", wire, recvTotal)
	}
	return wire
}

// TestMigratorMovesSetDifference: the protocol moves exactly the rows whose
// owner changed, every rank converges on the new vector's block.
func TestMigratorMovesSetDifference(t *testing.T) {
	cases := []struct{ old, new core.Vector }{
		{core.Vector{8, 8}, core.Vector{4, 12}},
		{core.Vector{4, 4, 4}, core.Vector{4, 4, 4}},   // no-op
		{core.Vector{6, 6, 6}, core.Vector{1, 16, 1}},  // multi-hop shifts
		{core.Vector{10, 0, 8}, core.Vector{0, 18, 0}}, // retire + revive
		{core.Vector{1, 1, 1, 15}, core.Vector{15, 1, 1, 1}},
	}
	for i, c := range cases {
		moved := runMigration(t, c.old, c.new)
		if want := MovedRows(c.old, c.new); moved != want {
			t.Errorf("case %d: %d rows on the wire, want %d", i, moved, want)
		}
	}
}

// TestMigratorRandomPairs: property over random (vector, vector') pairs.
func TestMigratorRandomPairs(t *testing.T) {
	seed := uint64(0x9e3779b97f4a7c15)
	for trial := 0; trial < 25; trial++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		size := 2 + int(seed>>40)%4
		old := make(core.Vector, size)
		for i := range old {
			seed = seed*6364136223846793005 + 1442695040888963407
			old[i] = int(seed>>45) % 12
		}
		new := shuffleVec(old, seed)
		moved := runMigration(t, old, new)
		if want := MovedRows(old, new); moved != want {
			t.Fatalf("trial %d: old=%v new=%v moved %d want %d", trial, old, new, moved, want)
		}
	}
}

func TestMigratorValidates(t *testing.T) {
	world := newTestWorld(t, 2)
	mig := Migrator{Width: testWidth}
	_, _, err := mig.Migrate(world[0], core.Vector{4}, core.Vector{4},
		func(int) []float64 { return nil }, func(int, []float64) {})
	if err == nil {
		t.Error("vector/world size mismatch accepted")
	}
}

// FuzzMigrator drives the protocol with fuzz-shaped vector pairs: whatever
// the pair, the round must converge with every rank holding exactly its new
// block, bit-identical to the canonical rows.
func FuzzMigrator(f *testing.F) {
	f.Add([]byte{8, 8}, uint64(1))
	f.Add([]byte{4, 0, 9}, uint64(42))
	f.Add([]byte{1, 1, 1, 1}, uint64(7))
	f.Fuzz(func(t *testing.T, raw []byte, seed uint64) {
		if len(raw) < 2 {
			return
		}
		if len(raw) > 6 {
			raw = raw[:6]
		}
		old := make(core.Vector, len(raw))
		for i, b := range raw {
			old[i] = int(b % 12)
		}
		new := shuffleVec(old, seed)
		moved := runMigration(t, old, new)
		if want := MovedRows(old, new); moved != want {
			t.Fatalf("old=%v new=%v moved %d want %d", old, new, moved, want)
		}
	})
}
