package repart

import (
	"fmt"

	"netpart/internal/core"
)

// Link is the transport surface the protocol needs: point-to-point ordered
// byte messages between ranks. mmps.Transport satisfies it directly; the
// virtual-time simulator adapts its task handle to it.
type Link interface {
	Rank() int
	Size() int
	Send(dst int, data []byte) error
	Recv(src int) ([]byte, error)
}

// Migrator moves grid rows from an old partition vector's ownership to a
// new one. Every rank calls Migrate with the same (old, new) pair —
// obtained from the rank-0 broadcast — and its own row accessors; the
// protocol then moves exactly the rows whose owner changed (the
// set-difference of the ownership intervals), batched as one contiguous
// span per (src, dst) pair, sent in ascending-destination and received in
// ascending-source order with exact expected counts.
type Migrator struct {
	// Width is the number of float64s per row (frame validation).
	Width int
}

// Migrate executes one migration round over lk. get returns the row for a
// global index this rank owned under old; set stores a row this rank owns
// under new. get reads the old storage and set writes the new one, so the
// two must not alias. sent and received count rows this rank moved on the
// wire.
//
// The traffic pattern is data-dependent (each rank sends exactly the span
// overlaps Owners computes between the old and new vectors), so the
// protocol checker verifies it through a builtin model that the same
// Owners/ForEachSpan/Overlap functions generate per plan instance.
//
//netpart:lockstep model=migration
func (m Migrator) Migrate(lk Link, old, new core.Vector, get func(g int) []float64, set func(g int, row []float64)) (sent, received int, err error) {
	rank, size := lk.Rank(), lk.Size()
	if len(old) != size || len(new) != size {
		return 0, 0, fmt.Errorf("repart: vectors of %d/%d ranks over %d transports", len(old), len(new), size)
	}
	oldOwn, newOwn := NewOwners(old), NewOwners(new)
	first, count := oldOwn.First(rank), oldOwn.Count(rank)

	// Departing spans, ascending destination.
	err = ForEachSpan(first, count, newOwn, rank, func(dst, spanFirst, spanCount int) error {
		rows := make([][]float64, 0, spanCount)
		for g := spanFirst; g < spanFirst+spanCount; g++ {
			rows = append(rows, get(g))
		}
		sent += spanCount
		return lk.Send(dst, EncodeRows(spanFirst, rows))
	})
	if err != nil {
		return sent, 0, err
	}

	// Rows kept across the revector.
	newFirst, newCount := newOwn.First(rank), newOwn.Count(rank)
	for g := newFirst; g < newFirst+newCount; g++ {
		if oldOwn.OwnerOf(g) == rank {
			set(g, get(g))
		}
	}

	// Incoming batches, ascending source, with exact expected counts.
	for src := 0; src < size; src++ {
		if src == rank {
			continue
		}
		expect := Overlap(oldOwn, src, newOwn, rank)
		if expect == 0 {
			continue
		}
		buf, err := lk.Recv(src)
		if err != nil {
			return sent, received, err
		}
		batchFirst, rows, err := DecodeRows(buf, m.Width)
		if err != nil {
			return sent, received, err
		}
		if len(rows) != expect {
			return sent, received, fmt.Errorf("repart: rank %d expected %d rows from %d, got %d", rank, expect, src, len(rows))
		}
		for i, row := range rows {
			g := batchFirst + i
			if g < newFirst || g >= newFirst+newCount || oldOwn.OwnerOf(g) != src {
				return sent, received, fmt.Errorf("repart: rank %d received row %d outside its expectation from %d", rank, g, src)
			}
			set(g, row)
		}
		received += len(rows)
	}
	return sent, received, nil
}
