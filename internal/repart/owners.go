package repart

import "netpart/internal/core"

// Owners derives per-row ownership from a partition vector: a prefix sum
// over the vector's contiguous 1-D block decomposition. First(r) is rank
// r's first global row, Count(r) its row count, and OwnerOf(g) locates a
// row's rank by binary search. Every migration path in the tree (sim
// adaptive, live adaptive, FT recovery) derives who-sends-what-to-whom
// from a pair of Owners.
type Owners struct {
	prefix []int // len = ranks+1
}

// NewOwners builds the prefix sum for vec.
func NewOwners(vec core.Vector) Owners {
	prefix := make([]int, len(vec)+1)
	for r, a := range vec {
		prefix[r+1] = prefix[r] + a
	}
	return Owners{prefix: prefix}
}

// Ranks returns the number of ranks the vector covers.
func (o Owners) Ranks() int { return len(o.prefix) - 1 }

// First returns rank's first global row.
func (o Owners) First(rank int) int { return o.prefix[rank] }

// Count returns rank's row count.
func (o Owners) Count(rank int) int { return o.prefix[rank+1] - o.prefix[rank] }

// OwnerOf returns the rank owning global row g.
func (o Owners) OwnerOf(g int) int {
	lo, hi := 0, len(o.prefix)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if o.prefix[mid] <= g {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Overlap returns how many rows rank a owns under o that rank b also owns
// under p — the rows a keeps (a == b across a revector) or the exact batch
// size a must send b (the receiver's expected count in every migration
// protocol).
func Overlap(o Owners, a int, p Owners, b int) int {
	lo := o.First(a)
	if f := p.First(b); f > lo {
		lo = f
	}
	hi := o.First(a) + o.Count(a)
	if e := p.First(b) + p.Count(b); e < hi {
		hi = e
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// overlapIn is Overlap expressed on raw prefix sums: how many of the rows
// rank r owns under the curPre decomposition fall inside the half-open row
// range [pl, pr). The planner's incremental objective uses it to maintain
// the kept-row count without materializing Owners pairs per candidate.
//
//netpart:hotpath
func overlapIn(curPre []int, r, pl, pr int) int {
	lo, hi := curPre[r], curPre[r+1]
	if pl > lo {
		lo = pl
	}
	if pr < hi {
		hi = pr
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// MovedRows counts the rows whose owner differs between the two vectors —
// the set-difference size the migration protocol will put on the wire and
// the rows_moved argument of cost.Migration.
func MovedRows(old, new core.Vector) int {
	oldOwn, newOwn := NewOwners(old), NewOwners(new)
	total := oldOwn.prefix[len(oldOwn.prefix)-1]
	kept := 0
	for r := 0; r < len(new); r++ {
		kept += Overlap(oldOwn, r, newOwn, r)
	}
	return total - kept
}

// ForEachSpan walks the contiguous block [first, first+count) and invokes
// fn once per maximal run of rows owned by the same rank under own,
// skipping runs owned by skip (the caller itself). Runs are visited in
// ascending global-row — and therefore ascending destination-rank — order,
// which is the deterministic send order every migration path uses.
func ForEachSpan(first, count int, own Owners, skip int, fn func(dst, spanFirst, spanCount int) error) error {
	for g := first; g < first+count; {
		dst := own.OwnerOf(g)
		end := own.First(dst) + own.Count(dst)
		if lim := first + count; end > lim {
			end = lim
		}
		if dst != skip {
			if err := fn(dst, g, end-g); err != nil {
				return err
			}
		}
		g = end
	}
	return nil
}
