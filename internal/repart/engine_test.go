package repart

import (
	"strings"
	"sync"
	"testing"

	"netpart/internal/core"
	"netpart/internal/obs"
)

// vecEqual compares two vectors elementwise.
func vecEqual(a, b core.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDriftTrigger(t *testing.T) {
	var tr DriftTrigger
	if tr.Take() {
		t.Error("fresh trigger armed")
	}
	tr.Fire()
	tr.Fire() // coalesces
	if !tr.Take() {
		t.Error("fired trigger not taken")
	}
	if tr.Take() {
		t.Error("take did not clear")
	}
	var nilTr *DriftTrigger
	nilTr.Fire() // must not panic
	if nilTr.Take() {
		t.Error("nil trigger armed")
	}
}

// recordingObserver captures search events.
type recordingObserver struct {
	mu     sync.Mutex
	events []core.SearchEvent
}

func (r *recordingObserver) OnCandidate(core.Candidate) {}

func (r *recordingObserver) OnSearch(ev core.SearchEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

// TestEngineDecideExports: a decision lands in metrics, the trace, and the
// observer stream.
func TestEngineDecideExports(t *testing.T) {
	reg := obs.NewRegistry()
	var sb strings.Builder
	rec := obs.NewRecorder(&sb)
	ro := &recordingObserver{}
	eng := &Engine{Planner: NewPlanner(PlannerConfig{}), Metrics: reg, Trace: rec, Observer: ro}
	plan := eng.Decide(4, "drift", core.Vector{16, 16}, []float64{10, 30})
	if !plan.Changed() {
		t.Fatal("no plan under 3x imbalance")
	}
	if plan.PlanMs < 0 {
		t.Error("negative plan latency")
	}
	if got := reg.Counter(MetricPlans).Value(); got != 1 {
		t.Errorf("%s=%d", MetricPlans, got)
	}
	if got := reg.Counter(MetricMigratedRows).Value(); got != int64(plan.MovedRows) {
		t.Errorf("%s=%d want %d", MetricMigratedRows, got, plan.MovedRows)
	}
	if reg.Histogram(MetricPlanMs).N() != 1 {
		t.Errorf("%s not observed", MetricPlanMs)
	}
	if !strings.Contains(sb.String(), `"repart"`) {
		t.Errorf("no repart trace event in %q", sb.String())
	}
	ro.mu.Lock()
	defer ro.mu.Unlock()
	if len(ro.events) != 1 || ro.events[0].Kind != core.EvRepartPlan {
		t.Fatalf("observer saw %+v", ro.events)
	}
	if ro.events[0].P != plan.MovedRows || ro.events[0].Evaluations != plan.Evaluations {
		t.Errorf("observer payload %+v vs plan %+v", ro.events[0], plan)
	}
}

// TestEngineRound: the full gather → plan → broadcast exchange converges on
// the same (old, new) pair at every rank, and plan=false keeps.
func TestEngineRound(t *testing.T) {
	for _, doPlan := range []bool{true, false} {
		world := newTestWorld(t, 3)
		eng := &Engine{Planner: NewPlanner(PlannerConfig{})}
		vec := core.Vector{6, 6, 6}
		measured := []float64{6, 6, 24} // rank 2 slow
		plans := make([]Plan, 3)
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for rank := 0; rank < 3; rank++ {
			rank := rank
			wg.Add(1)
			go func() {
				defer wg.Done()
				plans[rank], errs[rank] = eng.Round(world[rank], 9, "interval", vec[rank], measured[rank], doPlan)
			}()
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("plan=%v rank %d: %v", doPlan, rank, err)
			}
		}
		for rank := 0; rank < 3; rank++ {
			if got, want := plans[rank].Old, plans[0].Old; !vecEqual(got, want) {
				t.Errorf("plan=%v rank %d old %v != %v", doPlan, rank, got, want)
			}
			if got, want := plans[rank].New, plans[0].New; !vecEqual(got, want) {
				t.Errorf("plan=%v rank %d new %v != %v", doPlan, rank, got, want)
			}
		}
		if doPlan && !plans[0].Changed() {
			t.Error("planning round kept a 4x-imbalanced vector")
		}
		if !doPlan && plans[0].Changed() {
			t.Error("keep round changed the vector")
		}
	}
}

// TestSurvivorsErrors: out-of-range ranks are rejected.
func TestSurvivorsErrors(t *testing.T) {
	policy := Survivors(nil, nil, nil, []string{"a", "b"})
	if _, err := policy([]int{5}); err == nil {
		t.Error("out-of-range survivor accepted")
	}
}
