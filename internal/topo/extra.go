package topo

import "sort"

// Torus2D is the 2-D mesh with wraparound in both dimensions, using the
// same near-square factorization as Mesh2D. Degenerate dimensions (a
// single row or column) reduce to a ring.
type Torus2D struct{}

// Name returns "torus".
func (Torus2D) Name() string { return "torus" }

// Neighbors returns the ≤4 cyclic mesh neighbors, deduplicated (small
// dimensions make wraparound neighbors coincide) and sorted.
func (Torus2D) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	rows, cols := Mesh2D{}.Dims(p)
	r, c := rank/cols, rank%cols
	set := map[int]bool{}
	add := func(rr, cc int) {
		nb := ((rr+rows)%rows)*cols + (cc+cols)%cols
		if nb != rank {
			set[nb] = true
		}
	}
	add(r-1, c)
	add(r+1, c)
	add(r, c-1)
	add(r, c+1)
	out := make([]int, 0, len(set))
	for nb := range set {
		out = append(out, nb)
	}
	sort.Ints(out)
	return out
}

// MaxDegree returns the largest neighbor count over all ranks.
func (t Torus2D) MaxDegree(p int) int {
	max := 0
	for rank := 0; rank < p; rank++ {
		if d := len(t.Neighbors(rank, p)); d > max {
			max = d
		}
	}
	return max
}

// BandwidthLimited reports false.
func (Torus2D) BandwidthLimited() bool { return false }

// Hypercube connects ranks differing in exactly one bit. For task counts
// that are not powers of two it is the standard incomplete hypercube
// (edges to out-of-range ranks are dropped), which remains connected and
// symmetric.
type Hypercube struct{}

// Name returns "hypercube".
func (Hypercube) Name() string { return "hypercube" }

// Neighbors returns rank ^ 2^d for every dimension d with the partner in
// range, ascending.
func (Hypercube) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	var out []int
	for bit := 1; bit < p; bit <<= 1 {
		if nb := rank ^ bit; nb < p {
			out = append(out, nb)
		}
	}
	sort.Ints(out)
	return out
}

// MaxDegree returns ceil(log2 p).
func (Hypercube) MaxDegree(p int) int {
	d := 0
	for bit := 1; bit < p; bit <<= 1 {
		d++
	}
	return d
}

// BandwidthLimited reports false.
func (Hypercube) BandwidthLimited() bool { return false }

func init() {
	registry[Torus2D{}.Name()] = Torus2D{}
	registry[Hypercube{}.Name()] = Hypercube{}
}
