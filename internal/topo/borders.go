package topo

// SegmentCrosses reports whether any task in the contiguous rank segment
// [lo, hi) has a neighbor outside the segment, for topology t over p total
// ranks. For the contiguous placements the estimator searches over, this is
// exactly "does this cluster have a border task" (BorderTasks[cluster] > 0)
// — computed without building a Placement or allocating neighbor slices,
// which keeps the estimate hot path allocation-free.
//
// The built-in topologies are special-cased; unknown implementations fall
// back to Neighbors.
func SegmentCrosses(t Topology, lo, hi, p int) bool {
	if hi <= lo || p <= 1 || hi-lo >= p {
		// Empty segment, a single task, or the whole rank space: no
		// neighbor can be outside.
		return false
	}
	switch tp := t.(type) {
	case OneD:
		// The line's only outward edges are at the segment's two ends.
		return lo > 0 || hi < p
	case Ring, Broadcast, AllToAll:
		// Any proper sub-segment crosses: the ring wraps around, and the
		// broadcast/all-to-all patterns connect every rank to rank 0 (or to
		// everyone). hi-lo < p is established above.
		return true
	case Mesh2D:
		rows, cols := tp.Dims(p)
		for rank := lo; rank < hi; rank++ {
			r, c := rank/cols, rank%cols
			if r > 0 && outside((r-1)*cols+c, lo, hi) {
				return true
			}
			if c > 0 && outside(rank-1, lo, hi) {
				return true
			}
			if c < cols-1 && outside(rank+1, lo, hi) {
				return true
			}
			if r < rows-1 && outside((r+1)*cols+c, lo, hi) {
				return true
			}
		}
		return false
	case Tree:
		for rank := lo; rank < hi; rank++ {
			if rank > 0 && outside((rank-1)/2, lo, hi) {
				return true
			}
			if l := 2*rank + 1; l < p && outside(l, lo, hi) {
				return true
			}
			if r := 2*rank + 2; r < p && outside(r, lo, hi) {
				return true
			}
		}
		return false
	default:
		for rank := lo; rank < hi; rank++ {
			for _, nb := range t.Neighbors(rank, p) { //nolint:netpart/allocfree reason=fallback for out-of-module Topology implementations only; every built-in topology is special-cased above and never reaches this allocation
				if outside(nb, lo, hi) {
					return true
				}
			}
		}
		return false
	}
}

func outside(rank, lo, hi int) bool { return rank < lo || rank >= hi }
