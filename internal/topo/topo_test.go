package topo

import (
	"testing"
	"testing/quick"
)

func allTopologies() []Topology {
	return []Topology{OneD{}, Ring{}, Mesh2D{}, Tree{}, Broadcast{}, AllToAll{}, Torus2D{}, Hypercube{}}
}

func TestOneDNeighbors(t *testing.T) {
	var td OneD
	cases := []struct {
		rank, p int
		want    []int
	}{
		{0, 1, nil},
		{0, 2, []int{1}},
		{1, 2, []int{0}},
		{0, 5, []int{1}},
		{2, 5, []int{1, 3}},
		{4, 5, []int{3}},
	}
	for _, c := range cases {
		got := td.Neighbors(c.rank, c.p)
		if !equalInts(got, c.want) {
			t.Errorf("OneD.Neighbors(%d,%d) = %v, want %v", c.rank, c.p, got, c.want)
		}
	}
}

func TestRingNeighbors(t *testing.T) {
	var r Ring
	if got := r.Neighbors(0, 1); got != nil {
		t.Errorf("Ring.Neighbors(0,1) = %v, want nil", got)
	}
	if got := r.Neighbors(0, 2); !equalInts(got, []int{1}) {
		t.Errorf("Ring.Neighbors(0,2) = %v, want [1]", got)
	}
	if got := r.Neighbors(0, 5); !equalInts(got, []int{1, 4}) {
		t.Errorf("Ring.Neighbors(0,5) = %v, want [1 4]", got)
	}
	if got := r.Neighbors(4, 5); !equalInts(got, []int{0, 3}) {
		t.Errorf("Ring.Neighbors(4,5) = %v, want [0 3]", got)
	}
}

func TestMesh2DDims(t *testing.T) {
	var m Mesh2D
	cases := []struct{ p, rows, cols int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {7, 1, 7}, {12, 3, 4}, {16, 4, 4},
	}
	for _, c := range cases {
		r, cl := m.Dims(c.p)
		if r != c.rows || cl != c.cols {
			t.Errorf("Dims(%d) = (%d,%d), want (%d,%d)", c.p, r, cl, c.rows, c.cols)
		}
	}
}

func TestMesh2DNeighbors(t *testing.T) {
	var m Mesh2D
	// 12 tasks → 3x4 grid. Task 5 is row 1, col 1: neighbors 1, 4, 6, 9.
	if got := m.Neighbors(5, 12); !equalInts(got, []int{1, 4, 6, 9}) {
		t.Errorf("Mesh2D.Neighbors(5,12) = %v", got)
	}
	// Corner task 0: neighbors 1 and 4.
	if got := m.Neighbors(0, 12); !equalInts(got, []int{1, 4}) {
		t.Errorf("Mesh2D.Neighbors(0,12) = %v", got)
	}
	if m.MaxDegree(12) != 4 {
		t.Errorf("Mesh2D.MaxDegree(12) = %d, want 4", m.MaxDegree(12))
	}
	if m.MaxDegree(1) != 0 {
		t.Errorf("Mesh2D.MaxDegree(1) = %d, want 0", m.MaxDegree(1))
	}
}

func TestTreeNeighbors(t *testing.T) {
	var tr Tree
	if got := tr.Neighbors(0, 7); !equalInts(got, []int{1, 2}) {
		t.Errorf("Tree.Neighbors(0,7) = %v", got)
	}
	if got := tr.Neighbors(1, 7); !equalInts(got, []int{0, 3, 4}) {
		t.Errorf("Tree.Neighbors(1,7) = %v", got)
	}
	if got := tr.Neighbors(6, 7); !equalInts(got, []int{2}) {
		t.Errorf("Tree.Neighbors(6,7) = %v", got)
	}
	if tr.MaxDegree(7) != 3 || tr.MaxDegree(2) != 1 {
		t.Errorf("Tree.MaxDegree: got (%d,%d)", tr.MaxDegree(7), tr.MaxDegree(2))
	}
}

func TestBroadcastNeighbors(t *testing.T) {
	var b Broadcast
	if got := b.Neighbors(0, 4); !equalInts(got, []int{1, 2, 3}) {
		t.Errorf("Broadcast.Neighbors(0,4) = %v", got)
	}
	if got := b.Neighbors(3, 4); !equalInts(got, []int{0}) {
		t.Errorf("Broadcast.Neighbors(3,4) = %v", got)
	}
	if !b.BandwidthLimited() {
		t.Error("broadcast must be bandwidth limited")
	}
}

func TestAllToAllNeighbors(t *testing.T) {
	var a AllToAll
	if got := a.Neighbors(1, 4); !equalInts(got, []int{0, 2, 3}) {
		t.Errorf("AllToAll.Neighbors(1,4) = %v", got)
	}
	if !a.BandwidthLimited() {
		t.Error("all-to-all must be bandwidth limited")
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, tp := range allTopologies() {
		got, err := ByName(tp.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", tp.Name(), err)
			continue
		}
		if got.Name() != tp.Name() {
			t.Errorf("ByName(%q).Name() = %q", tp.Name(), got.Name())
		}
	}
	if _, err := ByName("starcube"); err == nil {
		t.Error("ByName(starcube) should fail")
	}
	names := Names()
	if len(names) != 8 {
		t.Errorf("Names() = %v, want 8 entries", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestNeighborsPanicsOnBadRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range rank")
		}
	}()
	OneD{}.Neighbors(5, 3)
}

// Property: the neighbor relation is symmetric for every topology (if a
// sends to b, b sends to a — required by the synchronous cycle of
// async-sends-then-blocking-receives), neighbor lists are sorted, contain no
// self-loops or duplicates, and respect MaxDegree.
func TestNeighborSymmetryProperty(t *testing.T) {
	for _, tp := range allTopologies() {
		tp := tp
		f := func(pRaw uint8) bool {
			p := int(pRaw%32) + 1
			adj := make([]map[int]bool, p)
			for rank := 0; rank < p; rank++ {
				ns := tp.Neighbors(rank, p)
				if len(ns) > tp.MaxDegree(p) {
					return false
				}
				adj[rank] = make(map[int]bool, len(ns))
				for i, nb := range ns {
					if nb == rank || nb < 0 || nb >= p {
						return false
					}
					if i > 0 && ns[i-1] >= nb {
						return false // not sorted or duplicate
					}
					adj[rank][nb] = true
				}
			}
			for a := 0; a < p; a++ {
				for b := range adj[a] {
					if !adj[b][a] {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", tp.Name(), err)
		}
	}
}

// Property: every topology is connected for all p (a requirement for the
// data domain to be exchangeable among all tasks).
func TestConnectivityProperty(t *testing.T) {
	for _, tp := range allTopologies() {
		for p := 1; p <= 33; p++ {
			seen := make([]bool, p)
			stack := []int{0}
			seen[0] = true
			count := 1
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, nb := range tp.Neighbors(cur, p) {
					if !seen[nb] {
						seen[nb] = true
						count++
						stack = append(stack, nb)
					}
				}
			}
			if count != p {
				t.Errorf("%s: p=%d reached only %d tasks", tp.Name(), p, count)
			}
		}
	}
}

func TestContiguousPlacement(t *testing.T) {
	pl, err := Contiguous([]string{"sparc2", "ipc"}, []int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumTasks() != 10 {
		t.Fatalf("NumTasks = %d, want 10", pl.NumTasks())
	}
	if pl.ClusterOf(0) != "sparc2" || pl.ClusterOf(5) != "sparc2" || pl.ClusterOf(6) != "ipc" {
		t.Errorf("placement order wrong: %v", pl.Procs)
	}
	counts := pl.ClusterCounts()
	if counts["sparc2"] != 6 || counts["ipc"] != 4 {
		t.Errorf("ClusterCounts = %v", counts)
	}
	// Indices within each cluster restart from zero.
	if pl.Procs[6].Index != 0 {
		t.Errorf("first ipc task has index %d, want 0", pl.Procs[6].Index)
	}
}

func TestContiguousSkipsZeroCounts(t *testing.T) {
	pl, err := Contiguous([]string{"a", "b", "c"}, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumTasks() != 3 || pl.ClusterOf(2) != "c" {
		t.Errorf("placement = %v", pl.Procs)
	}
}

func TestContiguousErrors(t *testing.T) {
	if _, err := Contiguous([]string{"a"}, []int{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Contiguous([]string{"a"}, []int{-1}); err == nil {
		t.Error("negative count should error")
	}
}

func TestCrossClusterMessages1D(t *testing.T) {
	pl, _ := Contiguous([]string{"sparc2", "ipc"}, []int{6, 6})
	// Contiguous 1-D placement: exactly one boundary, two directed messages.
	if got := CrossClusterMessages(OneD{}, pl); got != 2 {
		t.Errorf("1-D cross-cluster messages = %d, want 2", got)
	}
	border := BorderTasks(OneD{}, pl)
	if border["sparc2"] != 1 || border["ipc"] != 1 {
		t.Errorf("BorderTasks = %v, want one per cluster", border)
	}
}

func TestCrossClusterMessagesSingleCluster(t *testing.T) {
	pl, _ := Contiguous([]string{"sparc2"}, []int{6})
	if got := CrossClusterMessages(OneD{}, pl); got != 0 {
		t.Errorf("single-cluster crossings = %d, want 0", got)
	}
	if got := len(BorderTasks(OneD{}, pl)); got != 0 {
		t.Errorf("single-cluster border tasks = %d, want 0", got)
	}
}

func TestCrossClusterMessagesBroadcast(t *testing.T) {
	pl, _ := Contiguous([]string{"a", "b"}, []int{3, 3})
	// Root on cluster a sends to 3 tasks on b, each replies: 6 crossings.
	if got := CrossClusterMessages(Broadcast{}, pl); got != 6 {
		t.Errorf("broadcast crossings = %d, want 6", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTorusNeighbors(t *testing.T) {
	var tor Torus2D
	// 12 tasks → 3x4 torus. Task 0 (corner): up wraps to 8, down 4, left
	// wraps to 3, right 1.
	if got := tor.Neighbors(0, 12); !equalInts(got, []int{1, 3, 4, 8}) {
		t.Errorf("Torus2D.Neighbors(0,12) = %v", got)
	}
	// 4 tasks → 2x2: wraparound collapses onto the mesh neighbors.
	if got := tor.Neighbors(0, 4); !equalInts(got, []int{1, 2}) {
		t.Errorf("Torus2D.Neighbors(0,4) = %v", got)
	}
	if tor.MaxDegree(12) != 4 {
		t.Errorf("MaxDegree(12) = %d", tor.MaxDegree(12))
	}
	if got := tor.Neighbors(0, 1); len(got) != 0 {
		t.Errorf("single-task torus has neighbors: %v", got)
	}
	// Degenerate 1×p torus equals a ring.
	var ring Ring
	for rank := 0; rank < 5; rank++ {
		if !equalInts(tor.Neighbors(rank, 5), ring.Neighbors(rank, 5)) {
			t.Errorf("1x5 torus differs from ring at rank %d", rank)
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	var h Hypercube
	if got := h.Neighbors(0, 8); !equalInts(got, []int{1, 2, 4}) {
		t.Errorf("Hypercube.Neighbors(0,8) = %v", got)
	}
	if got := h.Neighbors(5, 8); !equalInts(got, []int{1, 4, 7}) {
		t.Errorf("Hypercube.Neighbors(5,8) = %v", got)
	}
	if h.MaxDegree(8) != 3 || h.MaxDegree(16) != 4 {
		t.Errorf("MaxDegree: %d, %d", h.MaxDegree(8), h.MaxDegree(16))
	}
	// Incomplete hypercube (p=6): edges to ranks ≥ 6 dropped.
	if got := h.Neighbors(5, 6); !equalInts(got, []int{1, 4}) {
		t.Errorf("incomplete Hypercube.Neighbors(5,6) = %v", got)
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	pl, err := RoundRobin([]string{"a", "b"}, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a"}
	if pl.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d", pl.NumTasks())
	}
	for r, w := range want {
		if pl.ClusterOf(r) != w {
			t.Errorf("rank %d on %q, want %q", r, pl.ClusterOf(r), w)
		}
	}
	if _, err := RoundRobin([]string{"a"}, []int{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := RoundRobin([]string{"a"}, []int{-1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestContiguousMinimizesRouterCrossings(t *testing.T) {
	// The paper's §6 placement argument: contiguous 1-D placement needs
	// one router crossing per cluster boundary; round-robin crosses at
	// almost every edge.
	clusters := []string{"sparc2", "ipc"}
	counts := []int{6, 6}
	cont, err := Contiguous(clusters, counts)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobin(clusters, counts)
	if err != nil {
		t.Fatal(err)
	}
	cCont := CrossClusterMessages(OneD{}, cont)
	cRR := CrossClusterMessages(OneD{}, rr)
	if cCont != 2 {
		t.Errorf("contiguous crossings = %d, want 2", cCont)
	}
	if cRR != 22 { // every one of the 11 edges crosses, both directions
		t.Errorf("round-robin crossings = %d, want 22", cRR)
	}
}
