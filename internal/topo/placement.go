package topo

import (
	"fmt"

	"netpart/internal/model"
)

// Placement assigns task ranks to processors. Ranks index Procs.
type Placement struct {
	Procs []model.ProcID
}

// NumTasks returns the number of placed tasks.
func (pl Placement) NumTasks() int { return len(pl.Procs) }

// ClusterOf returns the cluster hosting the given rank.
func (pl Placement) ClusterOf(rank int) string { return pl.Procs[rank].Cluster }

// ClusterCounts returns how many tasks each cluster hosts.
func (pl Placement) ClusterCounts() map[string]int {
	counts := make(map[string]int)
	for _, p := range pl.Procs {
		counts[p.Cluster]++
	}
	return counts
}

// Contiguous places tasks on clusters in the given order: ranks 0..n1-1 on
// the first cluster, the next n2 on the second, and so on. For the 1-D
// topology this is the placement the paper uses — only one processor per
// cluster communicates across the router. counts[i] tasks are placed on
// clusters[i]; zero-count clusters are skipped.
func Contiguous(clusters []string, counts []int) (Placement, error) {
	if len(clusters) != len(counts) {
		return Placement{}, fmt.Errorf("topo: %d clusters but %d counts", len(clusters), len(counts))
	}
	var pl Placement
	for i, name := range clusters {
		if counts[i] < 0 {
			return Placement{}, fmt.Errorf("topo: negative count %d for cluster %q", counts[i], name)
		}
		for j := 0; j < counts[i]; j++ {
			pl.Procs = append(pl.Procs, model.ProcID{Cluster: name, Index: j})
		}
	}
	return pl, nil
}

// CrossClusterMessages counts the directed messages per communication cycle
// that travel between tasks on different clusters under the given topology
// and placement. For a single-router network every such message crosses the
// router once.
func CrossClusterMessages(t Topology, pl Placement) int {
	n := pl.NumTasks()
	crossings := 0
	for rank := 0; rank < n; rank++ {
		for _, nb := range t.Neighbors(rank, n) {
			if pl.ClusterOf(rank) != pl.ClusterOf(nb) {
				crossings++
			}
		}
	}
	return crossings
}

// BorderTasks returns, per cluster, the number of its tasks that have at
// least one neighbor in a different cluster. The paper's contiguous 1-D
// placement keeps this at one task per cluster boundary.
func BorderTasks(t Topology, pl Placement) map[string]int {
	n := pl.NumTasks()
	out := make(map[string]int)
	for rank := 0; rank < n; rank++ {
		for _, nb := range t.Neighbors(rank, n) {
			if pl.ClusterOf(rank) != pl.ClusterOf(nb) {
				out[pl.ClusterOf(rank)]++
				break
			}
		}
	}
	return out
}

// RoundRobin places tasks by cycling through the clusters — the contrast
// placement to Contiguous among the strategies of [11]. For locality-
// exploiting topologies it maximizes router crossings, which is exactly
// why the paper's 1-D placement is contiguous; it exists so the placement
// choice can be measured (see CrossClusterMessages).
func RoundRobin(clusters []string, counts []int) (Placement, error) {
	if len(clusters) != len(counts) {
		return Placement{}, fmt.Errorf("topo: %d clusters but %d counts", len(clusters), len(counts))
	}
	remaining := append([]int(nil), counts...)
	next := make([]int, len(clusters))
	var pl Placement
	for {
		placed := false
		for i, name := range clusters {
			if remaining[i] < 0 {
				return Placement{}, fmt.Errorf("topo: negative count %d for cluster %q", counts[i], name)
			}
			if remaining[i] == 0 {
				continue
			}
			pl.Procs = append(pl.Procs, model.ProcID{Cluster: name, Index: next[i]})
			next[i]++
			remaining[i]--
			placed = true
		}
		if !placed {
			return pl, nil
		}
	}
}
