package topo

import (
	"fmt"
	"testing"
)

// TestSegmentCrossesMatchesNeighbors verifies the closed-form crossing
// predicates against the Neighbors-derived reference for every built-in
// topology, total rank count, and contiguous segment.
func TestSegmentCrossesMatchesNeighbors(t *testing.T) {
	for _, name := range Names() {
		tp, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for p := 1; p <= 24; p++ {
			for lo := 0; lo < p; lo++ {
				for hi := lo + 1; hi <= p; hi++ {
					want := false
					for rank := lo; rank < hi && !want; rank++ {
						for _, nb := range tp.Neighbors(rank, p) {
							if nb < lo || nb >= hi {
								want = true
								break
							}
						}
					}
					if got := SegmentCrosses(tp, lo, hi, p); got != want {
						t.Errorf("%s p=%d [%d,%d): SegmentCrosses=%v, reference=%v",
							name, p, lo, hi, got, want)
					}
				}
			}
		}
	}
}

// TestSegmentCrossesMatchesBorderTasks ties the predicate to the placement
// API it replaces on the estimate hot path: for a contiguous two-cluster
// placement, SegmentCrosses over each cluster's rank range must agree with
// BorderTasks.
func TestSegmentCrossesMatchesBorderTasks(t *testing.T) {
	for _, name := range Names() {
		tp, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for c1 := 1; c1 <= 8; c1++ {
			for c2 := 0; c2 <= 8; c2++ {
				names := []string{"a"}
				counts := []int{c1}
				if c2 > 0 {
					names = append(names, "b")
					counts = append(counts, c2)
				}
				pl, err := Contiguous(names, counts)
				if err != nil {
					t.Fatal(err)
				}
				border := BorderTasks(tp, pl)
				total := c1 + c2
				lo := 0
				for i, cl := range names {
					hi := lo + counts[i]
					if got, want := SegmentCrosses(tp, lo, hi, total), border[cl] > 0; got != want {
						t.Errorf("%s counts=%v cluster %s: SegmentCrosses=%v, BorderTasks=%d",
							name, counts, cl, got, border[cl])
					}
					lo = hi
				}
			}
		}
	}
}

// TestSegmentCrossesFallback exercises the Neighbors fallback for a
// topology the type switch does not know.
func TestSegmentCrossesFallback(t *testing.T) {
	tp := customRing{}
	for p := 2; p <= 8; p++ {
		for lo := 0; lo < p; lo++ {
			for hi := lo + 1; hi <= p; hi++ {
				want := false
				for rank := lo; rank < hi && !want; rank++ {
					for _, nb := range tp.Neighbors(rank, p) {
						if nb < lo || nb >= hi {
							want = true
							break
						}
					}
				}
				if got := SegmentCrosses(tp, lo, hi, p); got != want {
					t.Errorf("custom p=%d [%d,%d): got %v, want %v", p, lo, hi, got, want)
				}
			}
		}
	}
}

// customRing is an out-of-registry topology used to hit the generic path.
type customRing struct{}

func (customRing) Name() string { return "custom-ring" }
func (customRing) Neighbors(rank, p int) []int {
	if p == 1 {
		return nil
	}
	return []int{(rank + 1) % p}
}
func (customRing) MaxDegree(p int) int {
	if p > 1 {
		return 1
	}
	return 0
}
func (customRing) BandwidthLimited() bool { return false }

func ExampleSegmentCrosses() {
	// Ranks [0,3) of a 6-task line: rank 2 talks to rank 3 outside.
	fmt.Println(SegmentCrosses(OneD{}, 0, 3, 6))
	// The whole line: nothing outside.
	fmt.Println(SegmentCrosses(OneD{}, 0, 6, 6))
	// Output:
	// true
	// false
}
