// Package topo implements the restricted set of regular, synchronous
// communication topologies the partitioning method supports (Sections 3.0
// and 4.0 of the paper): 1-D, ring, 2-D mesh, tree, broadcast, and
// all-to-all. A topology determines, for each task rank, the set of
// neighbors it exchanges messages with during one communication cycle, and
// whether the pattern is bandwidth-limited (every message contends for the
// same channel capacity regardless of locality, as in broadcast).
//
//netpart:deterministic
package topo

import (
	"fmt"
	"math"
	"sort"
)

// Topology describes one synchronous communication pattern over p tasks
// ranked 0..p-1. During a communication cycle each task performs an
// asynchronous send to each neighbor followed by a blocking receive from
// each neighbor.
type Topology interface {
	// Name returns the canonical name used in annotations ("1-D", "ring",
	// "2-D", "tree", "broadcast", "all-to-all").
	Name() string
	// Neighbors returns the ranks task 'rank' exchanges messages with in a
	// cycle of p tasks, in increasing rank order. It panics if rank is out
	// of [0, p).
	Neighbors(rank, p int) []int
	// MaxDegree returns the largest neighbor count over all ranks for p
	// tasks. It bounds the per-task messages per cycle.
	MaxDegree(p int) int
	// BandwidthLimited reports whether the pattern consumes channel
	// bandwidth proportional to the total number of participants rather
	// than benefiting from segment locality (Section 3.0: broadcast-like
	// patterns cannot exploit additional private-segment bandwidth).
	BandwidthLimited() bool
}

func checkRank(rank, p int) {
	if p <= 0 {
		panic(fmt.Sprintf("topo: nonpositive task count %d", p))
	}
	if rank < 0 || rank >= p {
		panic(fmt.Sprintf("topo: rank %d out of [0,%d)", rank, p))
	}
}

// OneD is the 1-D (line) topology: each task exchanges with its north and
// south neighbors; the two ends have a single neighbor.
type OneD struct{}

// Name returns "1-D".
func (OneD) Name() string { return "1-D" }

// Neighbors returns rank-1 and rank+1 where they exist.
func (OneD) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	var ns []int
	if rank > 0 {
		ns = append(ns, rank-1)
	}
	if rank < p-1 {
		ns = append(ns, rank+1)
	}
	return ns
}

// MaxDegree returns 2 for p ≥ 3, else p-1.
func (OneD) MaxDegree(p int) int {
	if p >= 3 {
		return 2
	}
	return p - 1
}

// BandwidthLimited reports false: a line exploits segment locality.
func (OneD) BandwidthLimited() bool { return false }

// Ring is the 1-D topology with wraparound.
type Ring struct{}

// Name returns "ring".
func (Ring) Name() string { return "ring" }

// Neighbors returns the two cyclic neighbors (one for p=2, none for p=1).
func (Ring) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	if p == 1 {
		return nil
	}
	if p == 2 {
		return []int{1 - rank}
	}
	a, b := (rank+p-1)%p, (rank+1)%p
	if a > b {
		a, b = b, a
	}
	return []int{a, b}
}

// MaxDegree returns 2 for p ≥ 3, else p-1.
func (Ring) MaxDegree(p int) int {
	if p >= 3 {
		return 2
	}
	return p - 1
}

// BandwidthLimited reports false.
func (Ring) BandwidthLimited() bool { return false }

// Mesh2D arranges tasks in the most nearly square factorization of p, row
// major; each task exchanges with up to four mesh neighbors.
type Mesh2D struct{}

// Name returns "2-D".
func (Mesh2D) Name() string { return "2-D" }

// Dims returns the (rows, cols) factorization used for p tasks: the factor
// pair closest to square, rows ≤ cols. For prime p this degenerates to
// 1 × p.
func (Mesh2D) Dims(p int) (rows, cols int) {
	if p <= 0 {
		panic(fmt.Sprintf("topo: nonpositive task count %d", p))
	}
	rows = 1
	for r := int(math.Sqrt(float64(p))); r >= 1; r-- {
		if p%r == 0 {
			rows = r
			break
		}
	}
	return rows, p / rows
}

// Neighbors returns the ≤4 mesh neighbors of rank in the Dims(p) grid.
func (m Mesh2D) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	rows, cols := m.Dims(p)
	r, c := rank/cols, rank%cols
	var ns []int
	if r > 0 {
		ns = append(ns, (r-1)*cols+c)
	}
	if c > 0 {
		ns = append(ns, r*cols+c-1)
	}
	if c < cols-1 {
		ns = append(ns, r*cols+c+1)
	}
	if r < rows-1 {
		ns = append(ns, (r+1)*cols+c)
	}
	sort.Ints(ns)
	return ns
}

// MaxDegree returns the largest neighbor count in the Dims(p) grid.
func (m Mesh2D) MaxDegree(p int) int {
	max := 0
	for rank := 0; rank < p; rank++ {
		if d := len(m.Neighbors(rank, p)); d > max {
			max = d
		}
	}
	return max
}

// BandwidthLimited reports false.
func (Mesh2D) BandwidthLimited() bool { return false }

// Tree is a complete binary tree rooted at rank 0: each task exchanges with
// its parent and its children.
type Tree struct{}

// Name returns "tree".
func (Tree) Name() string { return "tree" }

// Neighbors returns the parent (rank-1)/2 and children 2·rank+1, 2·rank+2
// where they exist.
func (Tree) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	var ns []int
	if rank > 0 {
		ns = append(ns, (rank-1)/2)
	}
	if l := 2*rank + 1; l < p {
		ns = append(ns, l)
	}
	if r := 2*rank + 2; r < p {
		ns = append(ns, r)
	}
	sort.Ints(ns)
	return ns
}

// MaxDegree returns 3 for p ≥ 4 (an internal node with parent and two
// children), else p-1.
func (Tree) MaxDegree(p int) int {
	if p >= 4 {
		return 3
	}
	return p - 1
}

// BandwidthLimited reports false.
func (Tree) BandwidthLimited() bool { return false }

// Broadcast has rank 0 sending to every other task each cycle; the other
// tasks receive only. It is the canonical bandwidth-limited pattern: the
// root's sends consume channel capacity proportional to the total task
// count, so extra segments add no usable bandwidth.
type Broadcast struct{}

// Name returns "broadcast".
func (Broadcast) Name() string { return "broadcast" }

// Neighbors returns all other ranks for rank 0, and {0} otherwise.
func (Broadcast) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	if rank != 0 {
		return []int{0}
	}
	ns := make([]int, 0, p-1)
	for i := 1; i < p; i++ {
		ns = append(ns, i)
	}
	return ns
}

// MaxDegree returns p-1 (the root).
func (Broadcast) MaxDegree(p int) int { return p - 1 }

// BandwidthLimited reports true.
func (Broadcast) BandwidthLimited() bool { return true }

// AllToAll has every task exchanging with every other task each cycle.
type AllToAll struct{}

// Name returns "all-to-all".
func (AllToAll) Name() string { return "all-to-all" }

// Neighbors returns every other rank.
func (AllToAll) Neighbors(rank, p int) []int {
	checkRank(rank, p)
	ns := make([]int, 0, p-1)
	for i := 0; i < p; i++ {
		if i != rank {
			ns = append(ns, i)
		}
	}
	return ns
}

// MaxDegree returns p-1.
func (AllToAll) MaxDegree(p int) int { return p - 1 }

// BandwidthLimited reports true.
func (AllToAll) BandwidthLimited() bool { return true }

// registry maps canonical names to topologies.
var registry = map[string]Topology{
	OneD{}.Name():      OneD{},
	Ring{}.Name():      Ring{},
	Mesh2D{}.Name():    Mesh2D{},
	Tree{}.Name():      Tree{},
	Broadcast{}.Name(): Broadcast{},
	AllToAll{}.Name():  AllToAll{},
}

// ByName returns the topology with the given canonical name.
func ByName(name string) (Topology, error) {
	t, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("topo: unknown topology %q", name)
	}
	return t, nil
}

// Names returns the canonical topology names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
