// Package commbench implements the paper's offline benchmarking step
// (Section 3.0): topology-specific communication programs are executed on
// the (simulated) network for a grid of message sizes and processor counts,
// and Eq. 1 cost functions are fitted to the measurements by least squares.
// The resulting cost.Table is what the runtime partitioning method consults
// — it never sees the simulator's raw parameters, so predictions versus
// simulated measurements are a genuine test of the method.
//
//netpart:deterministic
package commbench

import (
	"fmt"
	"sort"

	"netpart/internal/cost"
	"netpart/internal/model"
	"netpart/internal/simnet"
	"netpart/internal/topo"
)

// Grid describes the benchmark sweep.
type Grid struct {
	// Bytes are the message sizes to measure.
	Bytes []int
	// MaxProcs caps processors per cluster (0 = all available).
	MaxProcs int
	// Cycles is how many synchronous communication cycles each measurement
	// averages over.
	Cycles int
	// Jitter adds ±Jitter relative noise to the simulated channel holds
	// (seeded by Seed), making the fits genuine averages as on real UDP.
	Jitter float64
	Seed   uint64
}

// DefaultGrid mirrors the paper's benchmarking of different p and b values.
func DefaultGrid() Grid {
	return Grid{
		Bytes:  []int{240, 1200, 2400, 4800},
		Cycles: 10,
	}
}

// MeasureCycle runs the topology-specific communication program: p tasks on
// one cluster perform `cycles` synchronous communication cycles (an
// asynchronous send to each neighbor, then a blocking receive from each)
// with b-byte messages. It returns the average elapsed time per cycle in
// milliseconds.
func MeasureCycle(net *model.Network, cluster string, tp topo.Topology, p, b, cycles int, opts ...simnet.Option) (float64, error) {
	if p < 2 {
		return 0, fmt.Errorf("commbench: need at least 2 tasks, got %d", p)
	}
	sim, err := simnet.New(net, opts...)
	if err != nil {
		return 0, err
	}
	procs := make([]*simnet.Proc, p)
	for i := 0; i < p; i++ {
		rank := i
		procs[i] = sim.Spawn(fmt.Sprintf("bench-%d", rank), cluster, func(pr *simnet.Proc) {
			ns := tp.Neighbors(rank, p)
			for c := 0; c < cycles; c++ {
				for _, nb := range ns {
					pr.Send(procs[nb], b, nil)
				}
				for _, nb := range ns {
					pr.Recv(procs[nb])
				}
			}
		})
	}
	if err := sim.Run(); err != nil {
		return 0, err
	}
	return sim.Now() / float64(cycles), nil
}

// MeasureDelivery returns the one-way delivery latency in milliseconds of a
// single b-byte message from a task on cluster src to a task on cluster
// dst.
func MeasureDelivery(net *model.Network, src, dst string, b int) (float64, error) {
	sim, err := simnet.New(net)
	if err != nil {
		return 0, err
	}
	var delivered float64
	var procs [2]*simnet.Proc
	procs[0] = sim.Spawn("src", src, func(pr *simnet.Proc) {
		pr.Send(procs[1], b, nil)
	})
	procs[1] = sim.Spawn("dst", dst, func(pr *simnet.Proc) {
		msg := pr.Recv(procs[0])
		delivered = msg.DeliveredAt
	})
	if err := sim.Run(); err != nil {
		return 0, err
	}
	return delivered, nil
}

// MeasureSendCPU returns the virtual time a Send call occupies the sending
// task for a b-byte message from cluster src to cluster dst (which includes
// the per-byte coercion cost when formats differ).
func MeasureSendCPU(net *model.Network, src, dst string, b int) (float64, error) {
	sim, err := simnet.New(net)
	if err != nil {
		return 0, err
	}
	var cpu float64
	var procs [2]*simnet.Proc
	procs[0] = sim.Spawn("src", src, func(pr *simnet.Proc) {
		t0 := pr.Now()
		pr.Send(procs[1], b, nil)
		cpu = pr.Now() - t0
	})
	procs[1] = sim.Spawn("dst", dst, func(pr *simnet.Proc) {
		pr.Recv(procs[0])
	})
	if err := sim.Run(); err != nil {
		return 0, err
	}
	return cpu, nil
}

// ClusterFit records the fitted constants and fit quality for one
// (cluster, topology) model.
type ClusterFit struct {
	Cluster  string
	Topology string
	Params   cost.Params
	Quality  cost.FitQuality
	Samples  int
}

// Result is the full output of a benchmarking run: a ready-to-use cost
// table plus the per-model fit diagnostics.
type Result struct {
	Table  *cost.Table
	Fits   []ClusterFit
	Router map[[2]string]cost.PerByte
	Coerce map[[2]string]cost.PerByte
}

// Run benchmarks every cluster of the network over the given topologies and
// grid, fits Eq. 1 per (cluster, topology), fits per-byte router and
// coercion penalties per cross-segment cluster pair, and assembles the cost
// table the partitioner consumes.
func Run(net *model.Network, topologies []topo.Topology, grid Grid) (*Result, error) {
	if len(grid.Bytes) < 2 {
		return nil, fmt.Errorf("commbench: need ≥ 2 message sizes, got %d", len(grid.Bytes))
	}
	if grid.Cycles <= 0 {
		grid.Cycles = 1
	}
	res := &Result{
		Table:  cost.NewTable(),
		Router: make(map[[2]string]cost.PerByte),
		Coerce: make(map[[2]string]cost.PerByte),
	}
	for _, c := range net.Clusters {
		maxP := c.Procs
		if grid.MaxProcs > 0 && grid.MaxProcs < maxP {
			maxP = grid.MaxProcs
		}
		if maxP < 3 {
			return nil, fmt.Errorf("commbench: cluster %q has only %d processors; need ≥ 3 to vary p", c.Name, maxP)
		}
		for _, tp := range topologies {
			var obs []cost.Observation
			for p := 2; p <= maxP; p++ {
				for _, b := range grid.Bytes {
					var opts []simnet.Option
					if grid.Jitter > 0 {
						opts = append(opts, simnet.WithJitter(grid.Jitter, grid.Seed+uint64(p)*131+uint64(b)))
					}
					ms, err := MeasureCycle(net, c.Name, tp, p, b, grid.Cycles, opts...)
					if err != nil {
						return nil, fmt.Errorf("commbench: %s/%s p=%d b=%d: %w", c.Name, tp.Name(), p, b, err)
					}
					obs = append(obs, cost.Observation{B: float64(b), P: p, Ms: ms})
				}
			}
			params, err := cost.Fit(obs)
			if err != nil {
				return nil, fmt.Errorf("commbench: fitting %s/%s: %w", c.Name, tp.Name(), err)
			}
			res.Table.SetComm(c.Name, tp.Name(), params)
			res.Fits = append(res.Fits, ClusterFit{
				Cluster: c.Name, Topology: tp.Name(),
				Params: params, Quality: cost.Quality(params, obs), Samples: len(obs),
			})
		}
	}
	// Cross-segment pair penalties.
	for i, ci := range net.Clusters {
		for _, cj := range net.Clusters[i+1:] {
			if net.SameSegment(ci.Name, cj.Name) {
				continue
			}
			if err := fitPair(net, ci.Name, cj.Name, grid, res); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(res.Fits, func(a, b int) bool {
		if res.Fits[a].Cluster != res.Fits[b].Cluster {
			return res.Fits[a].Cluster < res.Fits[b].Cluster
		}
		return res.Fits[a].Topology < res.Fits[b].Topology
	})
	return res, nil
}

// fitPair measures and fits the router (and, for differing formats,
// coercion) penalties between two clusters. The router penalty is isolated
// as d_ij - d_ii - d_jj over the byte grid: the within-cluster deliveries
// cancel the per-cluster channel terms, leaving the router's contribution
// (the constant absorbs the send-CPU terms; only the slope matters for
// Eq. 1 composition).
func fitPair(net *model.Network, a, b string, grid Grid, res *Result) error {
	var routerObs, coerceObs []cost.Observation
	needsCoerce := net.NeedsCoercion(a, b)
	for _, bytes := range grid.Bytes {
		dij, err := MeasureDelivery(net, a, b, bytes)
		if err != nil {
			return err
		}
		dii, err := MeasureDelivery(net, a, a, bytes)
		if err != nil {
			return err
		}
		djj, err := MeasureDelivery(net, b, b, bytes)
		if err != nil {
			return err
		}
		router := dij - dii - djj
		if needsCoerce {
			// Separate the sender-side coercion cost from the wire path.
			cpuCross, err := MeasureSendCPU(net, a, b, bytes)
			if err != nil {
				return err
			}
			cpuLocal, err := MeasureSendCPU(net, a, a, bytes)
			if err != nil {
				return err
			}
			coerce := cpuCross - cpuLocal
			coerceObs = append(coerceObs, cost.Observation{B: float64(bytes), Ms: coerce})
			router -= coerce
		}
		routerObs = append(routerObs, cost.Observation{B: float64(bytes), Ms: router})
	}
	rfit, err := cost.FitPerByte(routerObs)
	if err != nil {
		return fmt.Errorf("commbench: fitting router %s-%s: %w", a, b, err)
	}
	// Only the per-byte slope composes into Eq. 1 (the constant is a
	// measurement artifact of cancelling send-CPU terms).
	router := cost.PerByte{Ms: rfit.Ms}
	res.Table.SetRouter(a, b, router)
	res.Router[[2]string{a, b}] = router
	if needsCoerce {
		cfit, err := cost.FitPerByte(coerceObs)
		if err != nil {
			return fmt.Errorf("commbench: fitting coercion %s-%s: %w", a, b, err)
		}
		coerce := cost.PerByte{Ms: cfit.Ms}
		res.Table.SetCoerce(a, b, coerce)
		res.Coerce[[2]string{a, b}] = coerce
	}
	return nil
}
