package commbench

import (
	"math"
	"testing"

	"netpart/internal/model"
	"netpart/internal/topo"
)

func TestMeasureCycleGrowsWithPAndB(t *testing.T) {
	net := model.PaperTestbed()
	small, err := MeasureCycle(net, model.Sparc2Cluster, topo.OneD{}, 2, 240, 5)
	if err != nil {
		t.Fatal(err)
	}
	moreProcs, err := MeasureCycle(net, model.Sparc2Cluster, topo.OneD{}, 6, 240, 5)
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := MeasureCycle(net, model.Sparc2Cluster, topo.OneD{}, 2, 4800, 5)
	if err != nil {
		t.Fatal(err)
	}
	if moreProcs <= small {
		t.Errorf("contention: p=6 (%v) not costlier than p=2 (%v)", moreProcs, small)
	}
	if bigger <= small {
		t.Errorf("bandwidth: b=4800 (%v) not costlier than b=240 (%v)", bigger, small)
	}
	if _, err := MeasureCycle(net, model.Sparc2Cluster, topo.OneD{}, 1, 240, 5); err == nil {
		t.Error("p=1 should error")
	}
}

func TestMeasureDeliveryCrossSegmentCostsMore(t *testing.T) {
	net := model.PaperTestbed()
	local, err := MeasureDelivery(net, model.Sparc2Cluster, model.Sparc2Cluster, 2400)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := MeasureDelivery(net, model.Sparc2Cluster, model.IPCCluster, 2400)
	if err != nil {
		t.Fatal(err)
	}
	if cross <= local {
		t.Errorf("cross-segment %v not costlier than local %v", cross, local)
	}
}

func TestMeasureSendCPUCoercion(t *testing.T) {
	net := model.Figure1Network()
	same, err := MeasureSendCPU(net, "sun4", "hp", 1000) // same format
	if err != nil {
		t.Fatal(err)
	}
	coerced, err := MeasureSendCPU(net, "sun4", "rs6000", 1000) // differs
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := net.Coerce.PerByteMs * 1000
	if math.Abs((coerced-same)-wantDelta) > 1e-9 {
		t.Errorf("coercion delta = %v, want %v", coerced-same, wantDelta)
	}
}

func TestRunRecoversCalibratedConstants(t *testing.T) {
	// DESIGN.md §5: the testbed is calibrated so fitting the simulator
	// recovers constants close to the paper's published ones. Check the
	// dominant slopes.
	net := model.PaperTestbed()
	res, err := Run(net, []topo.Topology{topo.OneD{}}, DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	sparc, err := res.Table.Comm(model.Sparc2Cluster, "1-D")
	if err != nil {
		t.Fatal(err)
	}
	// Paper: c4 ≈ 0.00283 ms/byte/proc, c2 ≈ 1.1 ms/proc.
	if math.Abs(sparc.C4-0.00283)/0.00283 > 0.15 {
		t.Errorf("sparc2 c4 = %v, want ≈ 0.00283", sparc.C4)
	}
	if math.Abs(sparc.C2-1.1)/1.1 > 0.25 {
		t.Errorf("sparc2 c2 = %v, want ≈ 1.1", sparc.C2)
	}
	ipc, err := res.Table.Comm(model.IPCCluster, "1-D")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ipc.C4-0.00457)/0.00457 > 0.15 {
		t.Errorf("ipc c4 = %v, want ≈ 0.00457", ipc.C4)
	}
	if math.Abs(ipc.C2-1.9)/1.9 > 0.25 {
		t.Errorf("ipc c2 = %v, want ≈ 1.9", ipc.C2)
	}
	// Router slope ≈ 0.0006 ms/byte.
	router := res.Table.Router(model.Sparc2Cluster, model.IPCCluster)
	if math.Abs(router.Ms-0.0006)/0.0006 > 0.10 {
		t.Errorf("router slope = %v, want ≈ 0.0006", router.Ms)
	}
	// Fits over deterministic linear-cost data should be excellent.
	for _, f := range res.Fits {
		if f.Quality.R2 < 0.99 {
			t.Errorf("%s/%s: R² = %v", f.Cluster, f.Topology, f.Quality.R2)
		}
		if f.Samples < 8 {
			t.Errorf("%s/%s: only %d samples", f.Cluster, f.Topology, f.Samples)
		}
	}
}

func TestRunFitsCoercionWhenFormatsDiffer(t *testing.T) {
	net := model.Figure1Network()
	res, err := Run(net, []topo.Topology{topo.OneD{}}, Grid{Bytes: []int{240, 2400}, Cycles: 3})
	if err != nil {
		t.Fatal(err)
	}
	coerce := res.Table.Coerce("rs6000", "sun4")
	if math.Abs(coerce.Ms-net.Coerce.PerByteMs)/net.Coerce.PerByteMs > 0.05 {
		t.Errorf("coercion slope = %v, want ≈ %v", coerce.Ms, net.Coerce.PerByteMs)
	}
	// Same-format pair must have a router entry but no coercion entry.
	if res.Table.Coerce("sun4", "hp").Ms != 0 {
		t.Error("same-format pair should not fit a coercion cost")
	}
	if res.Table.Router("sun4", "hp").Ms <= 0 {
		t.Error("cross-segment pair missing router cost")
	}
}

func TestRunValidation(t *testing.T) {
	net := model.PaperTestbed()
	if _, err := Run(net, []topo.Topology{topo.OneD{}}, Grid{Bytes: []int{100}}); err == nil {
		t.Error("single byte size accepted")
	}
	small := model.PaperTestbed()
	small.Clusters[0].Procs = 2
	small.Clusters[0].Available = 2
	if _, err := Run(small, []topo.Topology{topo.OneD{}}, DefaultGrid()); err == nil {
		t.Error("2-processor cluster cannot vary p; should error")
	}
}

func TestRunCoversAllTopologies(t *testing.T) {
	net := model.PaperTestbed()
	tops := []topo.Topology{topo.OneD{}, topo.Ring{}, topo.Broadcast{}}
	res, err := Run(net, tops, Grid{Bytes: []int{240, 2400}, Cycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{model.Sparc2Cluster, model.IPCCluster} {
		for _, tp := range tops {
			if _, err := res.Table.Comm(c, tp.Name()); err != nil {
				t.Errorf("missing model %s/%s", c, tp.Name())
			}
		}
	}
	if len(res.Fits) != 6 {
		t.Errorf("fits = %d, want 6", len(res.Fits))
	}
}
