package analysis_test

import (
	"errors"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"netpart/internal/analysis"
)

// FuzzProtoExtract feeds arbitrary well-typed Go sources to the protocol
// extractor. The contract under fuzz: ExtractProto never panics, and every
// failure is a clean *UnextractableError diagnostic — the shapes outside
// the extractable fragment (goto, range loops, selects, non-affine peers
// inside communicating regions) must be rejected, not crashed on.
// Ill-typed inputs are skipped: production extraction only runs on
// loader-checked packages, and netpartverify refuses packages with type
// errors before extracting.
func FuzzProtoExtract(f *testing.F) {
	seeds := []string{
		// A clean extractable pairwise exchange.
		`package p
type tr struct{ r, n int }
func (t *tr) Rank() int { return t.r }
func (t *tr) Size() int { return t.n }
func (t *tr) Send(dst int, b []byte) error { return nil }
func (t *tr) Recv(src int) ([]byte, error) { return nil, nil }
func proto(t *tr) {
	if t.Rank() == 0 {
		t.Send(1, nil)
	} else {
		t.Recv(0)
	}
}`,
		// goto inside a communicating region: unextractable.
		`package p
type tr struct{}
func (t *tr) Send(dst int, b []byte) error { return nil }
func proto(t *tr) {
retry:
	t.Send(1, nil)
	goto retry
}`,
		// range loop over a channel with comm: unextractable.
		`package p
type tr struct{}
func (t *tr) Send(dst int, b []byte) error { return nil }
func proto(t *tr, ch chan int) {
	for v := range ch {
		t.Send(v, nil)
	}
}`,
		// select with comm clauses: unextractable.
		`package p
type tr struct{}
func (t *tr) Recv(src int) ([]byte, error) { return nil, nil }
func proto(t *tr, ch chan int) {
	select {
	case <-ch:
		t.Recv(0)
	default:
	}
}`,
		// Non-affine send destination: unextractable.
		`package p
type tr struct{ r int }
func (t *tr) Rank() int { return t.r }
func (t *tr) Send(dst int, b []byte) error { return nil }
func proto(t *tr) {
	t.Send(t.Rank()*t.Rank(), nil)
}`,
		// No communication at all: unextractable with a clean reason.
		`package p
func proto() int { return 42 }`,
		// Unknown-bound loop with parity guard: extractable with params.
		`package p
type tr struct{ r, n int }
func (t *tr) Rank() int { return t.r }
func (t *tr) Size() int { return t.n }
func (t *tr) Send(dst int, b []byte) error { return nil }
func (t *tr) Recv(src int) ([]byte, error) { return nil, nil }
func proto(t *tr, iters int) {
	for i := 0; i < iters; i++ {
		if t.Rank()%2 == 0 && t.Rank()+1 < t.Size() {
			t.Send(t.Rank()+1, nil)
		}
		if t.Rank()%2 == 1 {
			t.Recv(t.Rank() - 1)
		}
	}
}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			return // not Go: the loader would already have rejected it
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
		tpkg, err := conf.Check("fuzz", fset, []*ast.File{file}, info)
		if err != nil {
			return // ill-typed: extraction only ever sees checked packages
		}
		pkg := &analysis.Package{Path: "fuzz", Fset: fset, Files: []*ast.File{file}, Types: tpkg, Info: info}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			proto, err := analysis.ExtractProto(pkg, nil, fd)
			if err != nil {
				var ue *analysis.UnextractableError
				if !errors.As(err, &ue) {
					t.Fatalf("%s: error is %T, want *UnextractableError: %v", fd.Name.Name, err, err)
				}
				if ue.Reason == "" {
					t.Fatalf("%s: unextractable diagnostic has no reason", fd.Name.Name)
				}
				continue
			}
			if proto == nil || len(proto.Ops) == 0 {
				t.Fatalf("%s: extraction succeeded with an empty protocol", fd.Name.Name)
			}
		}
	})
}
