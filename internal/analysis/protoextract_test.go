package analysis_test

import (
	"testing"

	"netpart/internal/analysis"
	"netpart/internal/analysis/protomc"
)

// loadModule loads the whole module and its call graph once per test.
func loadModule(t *testing.T) ([]*analysis.Package, *analysis.Interproc) {
	t.Helper()
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(root, modPath)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs, l.Interproc()
}

// TestExtractRealProtocols extracts every //netpart:lockstep protocol of
// the committed tree and pins the inventory: the stencil halo exchange and
// the repartitioning round extract symbolically, the row migration and FT
// recovery barrier route to builtin models, and nothing is unextractable.
func TestExtractRealProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	pkgs, ip := loadModule(t)
	protos, diags := analysis.ExtractProtos(pkgs, ip)
	for _, d := range diags {
		t.Errorf("unexpected extraction diagnostic: %s", d)
	}
	byName := map[string]*analysis.LockstepProto{}
	models := map[string]bool{}
	for _, lp := range protos {
		if lp.Model != "" {
			models[lp.Model] = true
			continue
		}
		byName[lp.Proto.Name] = lp
	}
	for _, want := range []string{"stencil.runLiveTask", "repart.Round"} {
		if byName[want] == nil {
			t.Fatalf("protocol %s not extracted; got %v (models %v)", want, keys(byName), models)
		}
	}
	for _, want := range []string{"migration", "ft-recovery"} {
		if !models[want] {
			t.Errorf("builtin model %s not declared by any //netpart:lockstep model= directive", want)
		}
	}
}

func keys(m map[string]*analysis.LockstepProto) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// extractOne extracts a single named protocol from the committed tree.
func extractOne(t *testing.T, name string) *protomc.Proto {
	t.Helper()
	pkgs, ip := loadModule(t)
	protos, diags := analysis.ExtractProtos(pkgs, ip)
	for _, d := range diags {
		t.Errorf("unexpected extraction diagnostic: %s", d)
	}
	for _, lp := range protos {
		if lp.Proto != nil && lp.Proto.Name == name {
			return lp.Proto
		}
	}
	t.Fatalf("protocol %s not found", name)
	return nil
}

// TestRepartRoundProtocol checks the extracted gather/broadcast round is
// deadlock-free and message-conserving at every bounded P under both
// transport semantics. The round has no data-dependent unknowns: its loop
// bounds are affine in P and its only branch is the rank-0 hub split.
func TestRepartRoundProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	proto := extractOne(t, "repart.Round")
	if len(proto.Params) != 0 {
		t.Fatalf("repart.Round extracted %d shared parameters, want 0: %+v", len(proto.Params), proto.Params)
	}
	for p := 2; p <= 5; p++ {
		sys, err := protomc.Instantiate(proto, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for _, sem := range []protomc.Semantics{protomc.Rendezvous, protomc.Buffered} {
			res, err := protomc.Check(sys, protomc.Config{Sem: sem})
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, sem, err)
			}
			if !res.OK() {
				t.Errorf("P=%d %s: %s: %s", p, sem, res.Violation.Kind, res.Violation.Detail)
			}
		}
	}
}

// TestHaloExchangeProtocol checks the extracted stencil halo exchange —
// the odd-even pairwise order — is deadlock-free and message-conserving
// under BOTH semantics at every bounded P, across every assignment of its
// shared parameters (iteration count, variant selector). Rendezvous
// safety is the point: the old send-both-then-receive-both order
// deadlocks on an unbuffered transport (TestUnpairedHaloDeadlocks pins
// that counterexample), and this test is the proof the rewrite closed it.
func TestHaloExchangeProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	proto := extractOne(t, "stencil.runLiveTask")
	if len(proto.Params) != 2 {
		t.Fatalf("runLiveTask extracted %d shared parameters, want 2 (trip count, variant): %+v",
			len(proto.Params), proto.Params)
	}
	if !hasModGuard(proto.Ops) {
		t.Errorf("expected a rank%%2 parity guard in the extracted halo protocol")
	}
	for p := 2; p <= 5; p++ {
		systems, err := protomc.InstantiateAll(proto, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if len(systems) != 9 {
			t.Fatalf("P=%d: %d parameter assignments, want 9 (3 trip counts x 3 selector values)", p, len(systems))
		}
		for _, sys := range systems {
			for _, sem := range []protomc.Semantics{protomc.Rendezvous, protomc.Buffered} {
				res, err := protomc.Check(sys, protomc.Config{Sem: sem})
				if err != nil {
					t.Fatalf("P=%d %s [%s]: %v", p, sem, sys.Assign, err)
				}
				if !res.OK() {
					t.Errorf("P=%d %s [%s]: %s: %s\nschedule: %v",
						p, sem, sys.Assign, res.Violation.Kind, res.Violation.Detail, res.Violation.Steps)
				}
			}
		}
	}
}

// hasModGuard walks the op tree for a GMod parity guard.
func hasModGuard(ops []protomc.Op) bool {
	var guardHasMod func(g protomc.Guard) bool
	guardHasMod = func(g protomc.Guard) bool {
		if g.Kind == protomc.GMod {
			return true
		}
		for _, s := range g.Subs {
			if guardHasMod(s) {
				return true
			}
		}
		return false
	}
	for _, op := range ops {
		if op.Kind == protomc.OpIf && guardHasMod(op.Cond) {
			return true
		}
		if hasModGuard(op.Then) || hasModGuard(op.Else) || hasModGuard(op.Body) {
			return true
		}
	}
	return false
}
