package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the paper's central operational requirement on the
// packages marked //netpart:deterministic: the partitioning pipeline
// (estimator, search, experiment assembly, rendered tables) must produce
// byte-identical output for identical inputs — that is what makes the
// parallel experiment engine's index-ordered assembly sound and what the
// golden-output tests diff against. Three hazard classes are rejected:
//
//   - wall-clock reads (time.Now/Since/Until) — virtual time or caller-
//     supplied clocks only;
//   - the global math/rand source (auto-seeded since Go 1.20) — construct
//     a seeded *rand.Rand instead;
//   - iteration over a map that feeds ordered output (appends to an outer
//     slice, direct printing, writer calls, string building, channel
//     sends) — map order is randomized per run. Collect-then-sort is
//     accepted: an append sink is waived when a sorting call (sort.*,
//     slices.*, or a sort-named helper) follows the loop in the same
//     function.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbids wall-clock, global rand, and order-dependent map iteration in //netpart:deterministic packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !packageHasDirective(pass.Files, "netpart:deterministic") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkClockAndRand(pass, call)
			}
			return true
		})
	}
	for _, fd := range enclosingFuncDecls(pass.Files) {
		checkMapRanges(pass, fd)
	}
	propagateDeterminism(pass)
	return nil
}

// propagateDeterminism is the interprocedural half of the clock/rand
// check: a deterministic package must not reach the wall clock or the
// global rand source through helper calls either. Using the solved
// summaries (Pass.Inter), every call from this package to a function of
// an unmarked module package whose call tree touches time.Now/Since/Until
// or auto-seeded rand is reported at the call site with the provenance
// chain. Calls into other //netpart:deterministic packages are skipped —
// their own analysis run reports the origin — and //netpart:wallclock
// functions neither propagate (their summaries are clean by contract) nor
// are they checked as callers (they are declared measurement boundaries).
func propagateDeterminism(pass *Pass) {
	ip := pass.Inter
	if ip == nil {
		return
	}
	for _, fd := range enclosingFuncDecls(pass.Files) {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		node := ip.Node(fn)
		if node == nil || ip.wallclockWaived(node) {
			continue
		}
		for _, cs := range node.Calls {
			var clock, rand *Site
			var via *types.Func
			for _, target := range cs.Targets {
				tn := ip.Node(target)
				if tn == nil {
					continue // stdlib: the direct check covers it
				}
				if target.Pkg() != nil && ip.DeterministicPkg(target.Pkg().Path()) {
					continue // callee package is checked in its own right
				}
				sum := ip.Summary(target)
				if sum == nil {
					continue
				}
				if clock == nil && len(sum.Clock) > 0 {
					clock, via = sum.Clock[0], target
				}
				if rand == nil && len(sum.Rand) > 0 {
					rand, via = sum.Rand[0], target
				}
			}
			if clock != nil {
				pass.Reportf(cs.Call.Pos(), "call to %s reaches the wall clock in a deterministic package: %s", funcLabel(via), ip.RenderChain(clock))
			}
			if rand != nil {
				pass.Reportf(cs.Call.Pos(), "call to %s reaches the global rand source in a deterministic package: %s", funcLabel(via), ip.RenderChain(rand))
			}
		}
	}
}

// nondeterministicTimeFuncs read the wall clock.
var nondeterministicTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandConstructors build explicit generators and are the sanctioned
// replacement for the global source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func checkClockAndRand(pass *Pass, call *ast.CallExpr) {
	pkgPath, name := calleePkgFunc(pass.TypesInfo, call)
	switch pkgPath {
	case "time":
		if nondeterministicTimeFuncs[name] {
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in a deterministic package; use virtual time or a caller-supplied clock", name)
		}
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[name] {
			pass.Reportf(call.Pos(), "global %s.%s is auto-seeded and nondeterministic; construct a seeded *rand.Rand", pkgPath[strings.LastIndex(pkgPath, "/")+1:], name)
		}
	}
}

// checkMapRanges flags range-over-map loops whose bodies feed ordered
// output.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(info, rng.X) {
			return true
		}
		sorted := sortFollows(pass, fd, rng)
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.SendStmt:
				pass.Reportf(s.Pos(), "channel send inside range over map %s leaks map order; iterate a sorted key slice", exprText(rng.X))
			case *ast.AssignStmt:
				checkMapRangeAssign(pass, rng, s, sorted)
			case *ast.CallExpr:
				checkMapRangeCall(pass, rng, s)
			}
			return true
		})
		return true
	})
}

// checkMapRangeAssign handles the two assignment-shaped sinks: appends to
// slices declared outside the loop and += string building.
func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, s *ast.AssignStmt, sorted bool) {
	info := pass.TypesInfo
	if s.Tok.String() == "+=" && len(s.Lhs) == 1 {
		if t := info.TypeOf(s.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 && declaredOutside(info, s.Lhs[0], rng) {
				pass.Reportf(s.Pos(), "string built inside range over map %s depends on map order; iterate a sorted key slice", exprText(rng.X))
			}
		}
		return
	}
	for _, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || len(call.Args) == 0 {
			continue
		}
		if !declaredOutside(info, call.Args[0], rng) {
			continue
		}
		if sorted {
			continue // collect-then-sort: order is re-established below the loop
		}
		pass.Reportf(call.Pos(), "append inside range over map %s builds an order-dependent slice; sort it afterwards or iterate sorted keys", exprText(rng.X))
	}
}

// checkMapRangeCall flags direct output calls inside a map-range body.
func checkMapRangeCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	if pkgPath, name := calleePkgFunc(pass.TypesInfo, call); pkgPath == "fmt" &&
		(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
		pass.Reportf(call.Pos(), "fmt.%s inside range over map %s emits output in map order; iterate a sorted key slice", name, exprText(rng.X))
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print", "Println":
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				pass.Reportf(call.Pos(), "%s inside range over map %s emits output in map order; iterate a sorted key slice", sel.Sel.Name, exprText(rng.X))
			}
		}
	}
}

// declaredOutside reports whether the expression's root object is declared
// outside the range statement (package scope, parameter, or an earlier
// local). Selector targets (fields) count as outside.
func declaredOutside(info *types.Info, e ast.Expr, rng *ast.RangeStmt) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := identObj(info, x)
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// sortFollows reports whether a sorting call appears after the range loop
// inside the same function — the collect-then-sort idiom. A sorting call is
// anything from the sort or slices packages, or a call to a function whose
// name mentions "sort" (zero-dependency packages carry their own helpers).
func sortFollows(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if pkgPath, _ := calleePkgFunc(pass.TypesInfo, call); pkgPath == "sort" || pkgPath == "slices" {
			found = true
		}
		if fn := calleeFunc(pass.TypesInfo, call); fn != nil && strings.Contains(strings.ToLower(fn.Name()), "sort") {
			found = true
		}
		return !found
	})
	return found
}

// exprText renders a short expression for diagnostics.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.CallExpr:
		return exprText(x.Fun) + "(...)"
	}
	return fmt.Sprintf("%T", e)
}
