// Package antest is the fixture-driven test harness for netpartlint's
// analyzers, a small stand-in for golang.org/x/tools/go/analysis/analysistest
// (which the offline build cannot vendor). A fixture is one Go package under
// testdata/src/<name>; expected findings are declared in the source itself
// with trailing comments of the form
//
//	x := time.Now() // want `time\.Now reads the wall clock`
//
// Each backtick-quoted fragment is a regular expression that must match the
// message of exactly one diagnostic reported on that line; diagnostics
// without a matching want, and wants without a matching diagnostic, fail the
// test. Suppression comments (//nolint:netpart ...) are processed exactly as
// in production — wants describe the diagnostics that survive them.
package antest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"netpart/internal/analysis"
)

// wantFragRe extracts the backtick-quoted message patterns of a want
// comment.
var wantFragRe = regexp.MustCompile("`([^`]+)`")

// want is one expected diagnostic.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir, runs the analyzers, and matches the
// surviving diagnostics against the fixture's want comments.
func Run(t *testing.T, analyzers []*analysis.Analyzer, dir string) {
	t.Helper()
	dir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(dir, "fixture/"+filepath.Base(dir))
	pkgs, err := l.Load(".")
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture does not typecheck: %v", terr)
	}
	if t.Failed() {
		t.FailNow()
	}

	wants := collectWants(pkg)
	diags, err := analysis.Check(pkg, analyzers)
	if err != nil {
		t.Fatalf("check %s: %v", dir, err)
	}
	for _, d := range diags {
		if !claim(wants[lineKey(d.Pos.Filename, d.Pos.Line)], d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

// collectWants parses every want comment of the fixture, keyed by file:line.
func collectWants(pkg *analysis.Package) map[string][]*want {
	out := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := lineKey(pos.Filename, pos.Line)
				for _, m := range wantFragRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					out[key] = append(out[key], &want{re: regexp.MustCompile(m[1])})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched want whose pattern matches the message.
func claim(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func lineKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}
