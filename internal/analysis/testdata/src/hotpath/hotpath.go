// Package hotpath is the fixture for the zero-allocation hot-path analyzer.
package hotpath

import "fmt"

type codec struct {
	scratch []float64
}

// hotSum allocates a fresh buffer on every call.
//
//netpart:hotpath
func (c *codec) hotSum(xs []float64) float64 {
	tmp := make([]float64, len(xs)) // want `make allocates on the hot path`
	copy(tmp, xs)
	var s float64
	for _, v := range tmp {
		s += v
	}
	return s
}

// hotLog formats on the hot path.
//
//netpart:hotpath
func (c *codec) hotLog(v float64) {
	fmt.Println("value", v) // want `fmt\.Println allocates`
}

// hotGrow appends through an unsized local.
//
//netpart:hotpath
func (c *codec) hotGrow(xs []float64) {
	var local []float64
	for _, v := range xs {
		local = append(local, v) // want `append to unsized local slice "local"`
	}
	c.scratch = local
}

// hotClosure returns a capturing closure.
//
//netpart:hotpath
func (c *codec) hotClosure() func() float64 {
	total := 0.0
	return func() float64 { // want `closure captures "total"`
		return total
	}
}

// hotBox takes the address of a composite literal.
//
//netpart:hotpath
func (c *codec) hotBox() *codec {
	return &codec{} // want `&composite literal escapes to the heap`
}

// hotGuarded allocates only inside the two sanctioned guards: no findings.
//
//netpart:hotpath
func (c *codec) hotGuarded(xs []float64) []float64 {
	if cap(c.scratch) < len(xs) {
		c.scratch = make([]float64, 0, len(xs))
	}
	buf := c.scratch[:0]
	buf = append(buf, xs...)
	return buf
}

// hotLazy initializes lazily behind a nil guard: no findings.
//
//netpart:hotpath
func (c *codec) hotLazy() []float64 {
	if c.scratch == nil {
		c.scratch = make([]float64, 0, 8)
	}
	return c.scratch
}

// hotErr builds its error only on the failure return: no findings.
//
//netpart:hotpath
func (c *codec) hotErr(n int) error {
	if n < 0 {
		return fmt.Errorf("negative %d", n)
	}
	return nil
}

// cold is unannotated; allocation is fine here.
func (c *codec) cold() []float64 {
	return make([]float64, 16)
}

// hotFrameGrow grows a caller-owned frame buffer in place behind a
// capacity guard (the wire-codec idiom): no findings.
//
//netpart:hotpath
func (c *codec) hotFrameGrow(dst []byte, payload int) []byte {
	off := len(dst)
	if need := off + payload; cap(dst) < need {
		grown := make([]byte, off, need)
		copy(grown, dst)
		dst = grown
	}
	return dst[:off+payload]
}

// hotFreeListPop reuses pooled buffers, allocating only when the pool is
// empty or the popped buffer is too small (the transport free-list idiom):
// no findings.
//
//netpart:hotpath
func (c *codec) hotFreeListPop(free *[][]float64, n int) []float64 {
	if len(*free) == 0 {
		return make([]float64, n)
	}
	b := (*free)[len(*free)-1]
	*free = (*free)[:len(*free)-1]
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}

// hotUnguardedBranch allocates under a condition that inspects neither
// length nor capacity — the branch is still hot.
//
//netpart:hotpath
func (c *codec) hotUnguardedBranch(n int) []float64 {
	if n > 8 {
		return make([]float64, n) // want `make allocates on the hot path`
	}
	return nil
}
