// Package errcheck is the fixture for the discarded-error analyzer; the
// directive opts it in the way package main is opted in implicitly.
//
//netpart:checkerrors
package errcheck

import (
	"fmt"
	"os"
	"strings"
)

func discarded(f *os.File) {
	f.Close() // want `f\.Close returns an error that is discarded`
}

func handled(f *os.File) error {
	return f.Close()
}

func explicit(f *os.File) {
	_ = f.Close() // visible decision: accepted
}

func deferred(f *os.File) {
	defer f.Close() // deferred close on read paths: accepted idiom
}

func exemptFmt() {
	fmt.Println("fmt printers are exempt")
}

func exemptBuilder(sb *strings.Builder) {
	sb.WriteString("never fails")
}
