// Package obsnil is the fixture for the nil-safety analyzer.
//
//netpart:nilsafe
package obsnil

// Hook is an observability interface whose call sites must nil-guard.
//
//netpart:nilhook
type Hook interface {
	OnEvent(name string)
}

// Counter is a nil-safe metric.
type Counter struct {
	n int64
}

// Inc is guarded up front: no finding.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Bad dereferences a field with no guard at all.
func (c *Counter) Bad() int64 { // want `exported method Bad on pointer receiver`
	return c.n
}

// MergeFrom guards through a ||-chain: no finding.
func (c *Counter) MergeFrom(other *Counter) {
	if c == nil || other == nil {
		return
	}
	c.n += other.n
}

// Value guards after a field-free prologue: no finding.
func (c *Counter) Value() int64 {
	var zero int64
	if c == nil {
		return zero
	}
	return c.n
}

// Peek only delegates to a guarded method: no finding.
func (c *Counter) Peek() int64 {
	return c.Value()
}

type runner struct {
	hook Hook
}

func (r *runner) emitGuarded(name string) {
	if r.hook != nil {
		r.hook.OnEvent(name)
	}
}

func (r *runner) emitEarly(name string) {
	if r.hook == nil {
		return
	}
	r.hook.OnEvent(name)
}

func (r *runner) emitConjoined(name string, ok bool) {
	if ok && r.hook != nil {
		r.hook.OnEvent(name)
	}
}

func (r *runner) emitBad(name string) {
	r.hook.OnEvent(name) // want `call to r\.hook\.OnEvent is not nil-guarded`
}
