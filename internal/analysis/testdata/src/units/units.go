// Package units is the fixture for the dimensional analyzer: declared
// //netpart:unit dimensions propagate through arithmetic, assignments,
// returns, call arguments, and composite literals; mixing two known
// dimensions additively is the defect the analyzer exists to catch.
package units

import "math"

// Params carries two Eq. 1-style constants of different dimensions.
type Params struct {
	//netpart:unit ms
	C1 float64
	//netpart:unit ms/bytes
	C3 float64
}

type record struct {
	//netpart:unit ms
	samples []float64
}

var (
	//netpart:unit furlongs // want `unrecognized`
	junk float64
)

//netpart:unit b bytes
//netpart:unit return ms
func eval(p Params, b float64) float64 {
	return p.C1 + p.C3*b
}

//netpart:unit b bytes
func mixed(p Params, b float64) float64 {
	return p.C1 + p.C3 + b // want `dimension mismatch: sec \+ sec/bytes` `dimension mismatch: sec \+ bytes`
}

//netpart:unit b bytes
func assignMismatch(p *Params, b float64) {
	p.C1 = b // want `dimension mismatch: assigning bytes to sec`
}

//netpart:unit return ms
func badReturn(p Params) float64 {
	return p.C3 // want `dimension mismatch: returning sec/bytes from a function annotated`
}

func badArg(p Params) float64 {
	return eval(p, p.C1) // want `dimension mismatch: argument "b" of eval is annotated bytes, got sec`
}

//netpart:unit return bytes
func bytesVal() float64 { return 4096 }

func badLit() Params {
	return Params{C1: bytesVal()} // want `dimension mismatch: field C1 is annotated sec, value is bytes`
}

//netpart:unit b bytes
//netpart:unit return ms
func badMin(p Params, b float64) float64 {
	return math.Min(p.C1, b) // want `dimension mismatch: bytes argument among sec ones`
}

//netpart:unit b bytes
func fill(r record, b float64) {
	r.samples[0] = b // want `dimension mismatch: assigning bytes to sec`
}

// scaled: untyped literals are dimensionless scalars that adopt any
// dimension.
//
//netpart:unit return ms
func scaled(p Params) float64 {
	return 2 * p.C1
}

// rate: multiplication composes dimensions (bytes · ms/bytes = ms).
//
//netpart:unit b bytes
//netpart:unit return ms
func rate(p Params, b float64) float64 {
	return b * p.C3
}

// accumulate: locals infer their dimension from assignments, including
// through a loop-carried += and an annotated slice's range values.
//
//netpart:unit return ms
func accumulate(r record) float64 {
	total := 0.0
	for _, v := range r.samples {
		total += v
	}
	return total
}

// temps reused across dimensions are demoted to unknown, not reported.
func temps(p Params) float64 {
	t := p.C1
	t = p.C3
	return t
}
