// Package determinism is the fixture for the determinism analyzer.
//
//netpart:deterministic
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func draw() int {
	return rand.Int() // want `global rand\.Int is auto-seeded`
}

func seeded() *rand.Rand {
	return rand.New(rand.NewSource(1)) // explicit seed: sanctioned
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map m`
	}
}

func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range over map m`
	}
	return out
}

func collectSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // collect-then-sort: rescued by the sort below
	}
	sort.Strings(out)
	return out
}

func collectLocalSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // rescued by the zero-dep local sort helper
	}
	sortInPlace(out)
	return out
}

func sortInPlace(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func buildString(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string built inside range over map m`
	}
	return s
}

func sendKeys(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map m`
	}
}
