// Package msgproto is the fixture for the wire-protocol analyzer: codec
// encode/decode symmetry (field order and widths) and lockstep send/recv
// matching in //netpart:lockstep exchange rounds.
package msgproto

import "encoding/binary"

// Transport mirrors the mmps transport surface the lockstep checker keys
// on: Send(dst, frame) / Recv(src).
type Transport interface {
	Rank() int
	Size() int
	Send(dst int, b []byte) error
	Recv(src int) ([]byte, error)
}

// --- group "stat": symmetric, the well-formed baseline ---

//netpart:wire stat encode
func encodeStat(ms, rows uint64) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[0:8], ms)
	binary.BigEndian.PutUint64(buf[8:16], rows)
	return buf
}

//netpart:wire stat decode
func decodeStat(buf []byte) (uint64, uint64) {
	ms := binary.BigEndian.Uint64(buf[0:8])
	rows := binary.BigEndian.Uint64(buf[8:16])
	return ms, rows
}

// --- group "meas": the decoder reads the two fields in the wrong order ---

//netpart:wire meas encode
func encodeMeas(ms, rows uint64) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[0:8], ms)
	binary.BigEndian.PutUint64(buf[8:16], rows)
	return buf
}

//netpart:wire meas decode
func decodeMeas(buf []byte) (uint64, uint64) {
	rows := binary.BigEndian.Uint64(buf[8:16])
	ms := binary.BigEndian.Uint64(buf[0:8]) // want `wire group "meas"`
	return ms, rows
}

// --- group "pair": the decoder is missing the trailing field ---

//netpart:wire pair encode
func encodePair(a, b uint32, tag byte) []byte {
	buf := make([]byte, 9)
	buf[0] = tag
	binary.BigEndian.PutUint32(buf[1:5], a)
	binary.BigEndian.PutUint32(buf[5:9], b)
	return buf
}

//netpart:wire pair decode
func decodePair(buf []byte) (uint32, uint32, byte) { // want `wire group "pair".*field operations`
	tag := buf[0]
	a := binary.BigEndian.Uint32(buf[1:5])
	return a, 0, tag
}

// --- lockstep rounds ---

// goodRound is the Engine.Round shape done right: symmetric hub exchange,
// no findings.
//
//netpart:lockstep
func goodRound(tr Transport, ms, rows uint64) error {
	rank, size := tr.Rank(), tr.Size()
	if rank != 0 {
		if err := tr.Send(0, encodeStat(ms, rows)); err != nil {
			return err
		}
		buf, err := tr.Recv(0)
		if err != nil {
			return err
		}
		_, _ = decodeStat(buf)
		return nil
	}
	for src := 1; src < size; src++ {
		buf, err := tr.Recv(src)
		if err != nil {
			return err
		}
		_, _ = decodeStat(buf)
	}
	msg := encodeStat(ms, rows)
	for dst := 1; dst < size; dst++ {
		if err := tr.Send(dst, msg); err != nil {
			return err
		}
	}
	return nil
}

// lostRound: the workers report upward but the hub never drains the
// reports — an unmatched send on both sides of the rank split.
//
//netpart:lockstep
func lostRound(tr Transport, ms, rows uint64) error {
	rank, size := tr.Rank(), tr.Size()
	if rank != 0 {
		return tr.Send(0, encodeStat(ms, rows)) // want `sent on one side but never received`
	}
	msg := encodeStat(ms, rows)
	for dst := 1; dst < size; dst++ {
		if err := tr.Send(dst, msg); err != nil { // want `sent on one side but never received`
			return err
		}
	}
	return nil
}

// selfRound: the broadcast loop starts at rank 0 — the hub routes its own
// share through the transport and deadlocks on itself.
//
//netpart:lockstep
func selfRound(tr Transport, ms, rows uint64) error {
	rank, size := tr.Rank(), tr.Size()
	if rank != 0 {
		if err := tr.Send(0, encodeStat(ms, rows)); err != nil {
			return err
		}
		buf, err := tr.Recv(0)
		if err != nil {
			return err
		}
		_, _ = decodeStat(buf)
		return nil
	}
	for src := 1; src < size; src++ {
		buf, err := tr.Recv(src)
		if err != nil {
			return err
		}
		_, _ = decodeStat(buf)
	}
	msg := encodeStat(ms, rows)
	if err := tr.Send(0, msg); err != nil { // want `sends to itself`
		return err
	}
	for dst := 1; dst < size; dst++ {
		if err := tr.Send(dst, msg); err != nil {
			return err
		}
	}
	return nil
}

// deadlockRound: both sides of the split receive before sending, so every
// rank waits on the other.
//
//netpart:lockstep
func deadlockRound(tr Transport, ms, rows uint64) error {
	rank := tr.Rank()
	if rank != 0 {
		buf, err := tr.Recv(0) // want `both sides receive before sending`
		if err != nil {
			return err
		}
		_, _ = decodeStat(buf)
		return tr.Send(0, encodeStat(ms, rows))
	}
	buf, err := tr.Recv(1)
	if err != nil {
		return err
	}
	_, _ = decodeStat(buf)
	return tr.Send(1, encodeStat(ms, rows))
}

// peerSkew: ranks run the same code against their neighbor, but what goes
// out is group "stat" and what is expected back is group "meas" — the
// matching receive/send for each group is missing.
//
//netpart:lockstep
func peerSkew(tr Transport, ms, rows uint64) error {
	peer := tr.Rank() ^ 1
	if err := tr.Send(peer, encodeStat(ms, rows)); err != nil { // want `sends wire group "stat" but never receives it`
		return err
	}
	buf, err := tr.Recv(peer) // want `receives wire group "meas" but never sends it`
	if err != nil {
		return err
	}
	_, _ = decodeMeas(buf)
	return nil
}
