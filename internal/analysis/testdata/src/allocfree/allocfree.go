// Package allocfree is the fixture for the interprocedural zero-allocation
// prover. The division of labor under test: hotpath reports direct
// allocation sites in the annotated body; allocfree reports allocations
// that arrive THROUGH calls, with a provenance chain down to the
// originating expression, and never re-reports hotpath's direct sites.
package allocfree

import "fmt"

type table struct {
	rows []float64
	buf  []float64
}

// buildBuf allocates. On its own that is fine — the finding belongs to hot
// callers that reach it.
func buildBuf(n int) []float64 {
	return make([]float64, n)
}

// sumVia is a clean pass-through, so the provenance chain is two hops.
func sumVia(n int) float64 {
	tmp := buildBuf(n)
	var s float64
	for _, v := range tmp {
		s += v
	}
	return s
}

// hotDirect: a direct site in the hot body is hotpath's territory;
// allocfree must stay silent here (no double report).
//
//netpart:hotpath
func (t *table) hotDirect(n int) []float64 {
	return make([]float64, n) // want `make allocates on the hot path`
}

// hotCalls reaches buildBuf's make through sumVia: one allocfree finding
// at the call site, carrying the whole chain.
//
//netpart:hotpath
func (t *table) hotCalls(n int) float64 {
	return sumVia(n) // want `hot path .*hotCalls reaches an allocation: .*sumVia → .*buildBuf → make allocates`
}

// hotGuarded only allocates under the sanctioned cap guard (first-use
// buffer growth): clean.
//
//netpart:hotpath
func (t *table) hotGuarded(n int) {
	if cap(t.buf) < n {
		t.buf = buildBuf(n)
	}
	t.buf = t.buf[:n]
}

// hotCheck constructs an error only on the failure return: clean.
//
//netpart:hotpath
func (t *table) hotCheck(n int) error {
	if n < 0 {
		return fmt.Errorf("allocfree: negative length %d", n)
	}
	return nil
}

// chaosPath allocates, but the site carries a scoped waiver: it must not
// propagate into any hot caller's summary.
func chaosPath(n int) []float64 {
	return make([]float64, n) //nolint:netpart/allocfree reason=fixture stand-in for a fault-injection-only path
}

// hotWaived calls the waived allocator: no finding.
//
//netpart:hotpath
func (t *table) hotWaived(n int) {
	t.buf = chaosPath(n)
}

// hotScoped: a //nolint:netpart/allocfree on the hot body's own site
// waives only the interprocedural analyzer — the intraprocedural hotpath
// finding stays live.
//
//netpart:hotpath
func (t *table) hotScoped(n int) []float64 {
	return make([]float64, n) //nolint:netpart/allocfree reason=scoped waiver; hotpath still owns the direct site // want `make allocates on the hot path`
}

// walk and descend are mutually recursive; the SCC fixpoint must converge
// and still attribute descend's allocation to hot callers of walk.
func walk(depth int) int {
	if depth == 0 {
		return 0
	}
	return descend(depth)
}

func descend(depth int) int {
	p := new(int)
	*p = depth
	return walk(*p-1) + *p
}

//netpart:hotpath
func (t *table) hotRecurse(depth int) int {
	return walk(depth) // want `hot path .*hotRecurse reaches an allocation: .*walk → .*descend → new allocates`
}

// sizer has exactly one in-module implementation, so the type-set
// approximation resolves the interface call to boxy.size.
type sizer interface{ size(n int) []float64 }

type boxy struct{}

func (boxy) size(n int) []float64 { return make([]float64, n) }

//netpart:hotpath
func (t *table) hotIface(s sizer, n int) {
	t.buf = s.size(n) // want `hot path .*hotIface reaches an allocation: .*size → make allocates`
}
