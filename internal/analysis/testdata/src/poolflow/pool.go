// Package poolflow is the fixture for the path-sensitive sync.Pool
// lifetime analyzer. It includes the join case the old syntactic
// poollifetime tracking got wrong (joinPoisons: a Put in every arm of an
// if was forgotten at the join) and the loop back-edge case it could not
// see at all (loopCarried).
package poolflow

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) { bufPool.Put(bp) }

func useAfterPut() int {
	bp := getBuf()
	putBuf(bp)
	return len(*bp) // want `pooled buffer "bp" used after Put on some path`
}

func doublePut() {
	bp := getBuf()
	putBuf(bp)
	putBuf(bp) // want `pooled buffer "bp" recycled twice: a Put already ran on some path`
}

func aliasAfterPut() int {
	bp := getBuf()
	buf := *bp
	putBuf(bp)
	return len(buf) // want `pooled buffer "buf" used after Put on some path`
}

// joinPoisons is the path-sensitivity case the old per-branch clone
// missed: both arms Put, so the use after the join reads recycled memory
// on every path.
func joinPoisons(ok bool) int {
	bp := getBuf()
	if ok {
		putBuf(bp)
	} else {
		putBuf(bp)
	}
	return len(*bp) // want `pooled buffer "bp" used after Put on some path`
}

// loopCarried flows the Put around the loop's back edge: the second
// iteration reads a buffer the first one recycled.
func loopCarried(n int) {
	bp := getBuf()
	for i := 0; i < n; i++ {
		_ = len(*bp) // want `pooled buffer "bp" used after Put on some path`
		putBuf(bp)   // want `pooled buffer "bp" recycled twice: a Put already ran on some path`
	}
}

// deferDouble: the deferred Put runs at exit, after the conditional
// explicit Put already recycled the buffer on one path.
func deferDouble(ok bool) {
	bp := getBuf()
	defer putBuf(bp) // want `this deferred Put runs after a Put on some path`
	if ok {
		putBuf(bp)
	}
}

func reassigned() int {
	bp := getBuf()
	putBuf(bp)
	bp = getBuf() // whole reassignment revives the variable
	n := len(*bp)
	putBuf(bp)
	return n
}

// branchRevive: the Put is followed by a re-get on the same path, so the
// use after the join is clean on every path.
func branchRevive(ok bool) int {
	bp := getBuf()
	if ok {
		putBuf(bp)
		bp = getBuf()
	}
	n := len(*bp)
	putBuf(bp)
	return n
}

// rangeEach recycles each element exactly once: the range head reassigns
// f every iteration, so the previous iteration's Put must not poison it.
func rangeEach(frags []*[]byte) {
	for i, f := range frags {
		putBuf(f)
		frags[i] = nil
	}
}

func delayedPut() func() {
	bp := getBuf()
	return func() { putBuf(bp) } // closures run later: analyzed with a clean slate
}
