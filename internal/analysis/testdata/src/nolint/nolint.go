// Package nolint is the fixture for the suppression convention.
//
//netpart:deterministic
package nolint

import "time"

func suppressed() time.Time {
	return time.Now() //nolint:netpart reason=fixture demonstrating a justified blanket suppression
}

func scoped() time.Time {
	return time.Now() //nolint:netpart/determinism reason=fixture demonstrating a scoped suppression
}

func wrongScope() time.Time {
	return time.Now() //nolint:netpart/hotpath reason=scoped to another analyzer so it must not apply // want `time\.Now reads the wall clock`
}

func noReason() time.Time {
	return time.Now() //nolint:netpart // want `suppression without a reason` `time\.Now reads the wall clock`
}
