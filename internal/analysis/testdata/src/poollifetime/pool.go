// Package poollifetime is the fixture for the sync.Pool accessor-discipline
// analyzer: direct Get/Put calls belong inside get*/put* accessors, where
// the box/length/zeroing conventions live. The temporal lifetime rules
// (use-after-put, double-put) are exercised by the poolflow fixture.
package poollifetime

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) { bufPool.Put(bp) }

func directGet() *[]byte {
	return bufPool.Get().(*[]byte) // want `direct sync\.Pool\.Get outside a get\*/put\* accessor`
}

func directPut(bp *[]byte) {
	bufPool.Put(bp) // want `direct sync\.Pool\.Put outside a get\*/put\* accessor`
}

func throughAccessors() int {
	bp := getBuf()
	n := len(*bp)
	putBuf(bp)
	return n
}
