// Package poollifetime is the fixture for the sync.Pool lifetime analyzer.
package poollifetime

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) { bufPool.Put(bp) }

func useAfterPut() int {
	bp := getBuf()
	putBuf(bp)
	return len(*bp) // want `pooled buffer "bp" used after Put`
}

func doublePut() {
	bp := getBuf()
	putBuf(bp)
	putBuf(bp) // want `pooled buffer "bp" recycled twice`
}

func aliasAfterPut() int {
	bp := getBuf()
	buf := *bp
	putBuf(bp)
	return len(buf) // want `pooled buffer "buf" used after Put`
}

func directGet() *[]byte {
	return bufPool.Get().(*[]byte) // want `direct sync\.Pool\.Get outside a get\*/put\* accessor`
}

func reassigned() int {
	bp := getBuf()
	putBuf(bp)
	bp = getBuf() // whole reassignment revives the variable
	n := len(*bp)
	putBuf(bp)
	return n
}

func branchIsolated(ok bool) {
	bp := getBuf()
	if ok {
		putBuf(bp) // puts inside a branch do not poison the other branch
	} else {
		putBuf(bp)
	}
}

func delayedPut() func() {
	bp := getBuf()
	return func() { putBuf(bp) } // closures run later: analyzed with a clean slate
}
