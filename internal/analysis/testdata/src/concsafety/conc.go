// Package concsafety is the fixture for the CFG-based concurrency
// analyzer: lock pairing across paths, blocking operations under a lock,
// WaitGroup balance around go statements, and goroutine join edges.
package concsafety

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// leak: the early-return path exits with the lock still held.
func (c *counter) leak(skip bool) {
	c.mu.Lock() // want `c\.mu acquired here may still be held when the function returns`
	if skip {
		return
	}
	c.mu.Unlock()
}

// earlyReturnClean is the lattice-provenance regression case: a return
// before the Lock must not count as "may be held at exit" — only locks
// this body acquired do.
func (c *counter) earlyReturnClean(skip bool) {
	if skip {
		return
	}
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) deferred() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// branchUnlock releases on every path through the if.
func (c *counter) branchUnlock(ok bool) {
	c.mu.Lock()
	if ok {
		c.n++
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
}

func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want `c\.mu\.Lock while the lock is already held on every path`
	c.mu.Unlock()
}

func unlockUnheld() {
	var mu sync.Mutex
	mu.Unlock() // want `mu\.Unlock without a preceding Lock on any path`
}

func (c *counter) sendUnderLock(ch chan int) {
	c.mu.Lock()
	ch <- c.n // want `channel send while c\.mu is held`
	c.mu.Unlock()
}

func (c *counter) recvUnderLock(ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-ch // want `channel receive while c\.mu is held`
}

// trySend cannot block: the select has a default clause.
func (c *counter) trySend(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- c.n:
	default:
	}
}

// sendAfterUnlock releases the lock before the blocking send.
func (c *counter) sendAfterUnlock(ch chan int) {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	ch <- v
}

func waitUnderLock(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait() // want `wg\.Wait while mu is held`
	mu.Unlock()
}

func launchWithoutAdd() {
	var wg sync.WaitGroup
	go func() {
		wg.Done() // want `goroutine calls wg\.Done but no wg\.Add precedes the launch on any path`
	}()
	wg.Wait()
}

func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)       // want `wg\.Add inside the launched goroutine races with wg\.Wait`
		defer wg.Done() // want `goroutine calls wg\.Done but no wg\.Add precedes the launch on any path`
	}()
	wg.Wait()
}

func properFanOut(items []int) {
	var wg sync.WaitGroup
	sum := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum++
		}()
	}
	wg.Wait()
}

func fireAndForget() {
	go func() { // want `goroutine closure has no join edge back to its launcher`
		_ = 1 + 1
	}()
}

func requestReply() int {
	reply := make(chan int)
	go func() {
		reply <- 42
	}()
	return <-reply
}

type server struct {
	events chan int
}

// publishAsync signals through a captured channel: the server's owner
// receives the event in another method, so the goroutine is joined
// beyond this function's intraprocedural view.
func (s *server) publishAsync(v int) {
	go func() {
		s.events <- v
	}()
}
