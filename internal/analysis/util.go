package analysis

import (
	"go/ast"
	"go/types"
)

// walkStack traverses the AST calling fn with each node and the stack of
// its ancestors (outermost first, not including n). Returning false prunes
// the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil when it cannot (dynamic calls, missing type info, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleePkgFunc reports the package path and name of a call's static
// callee when it is a package-level function ("" path when unresolved or a
// method).
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method, not a package-level function
	}
	return fn.Pkg().Path(), fn.Name()
}

// nilComparison decomposes `x == nil` / `x != nil` (either operand order),
// returning the non-nil operand and whether the operator is ==.
func nilComparison(e ast.Expr) (operand ast.Expr, isEq, ok bool) {
	be, okb := ast.Unparen(e).(*ast.BinaryExpr)
	if !okb || (be.Op.String() != "==" && be.Op.String() != "!=") {
		return nil, false, false
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(be.Y):
		return be.X, be.Op.String() == "==", true
	case isNil(be.X):
		return be.Y, be.Op.String() == "==", true
	}
	return nil, false, false
}

// identObj resolves an identifier expression to its object (nil for
// non-identifiers or unresolved names).
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// enclosingFuncDecls returns the package's top-level function declarations
// with bodies.
func enclosingFuncDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// isMapType reports whether the expression's static type is a map
// (false when type info is missing — conservative for analyzers).
func isMapType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
