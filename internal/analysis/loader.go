package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path ("netpart/internal/core"), or a synthetic
	// path for directories outside the module (testdata packages).
	Path string
	// Dir is the absolute directory the files came from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds non-fatal type-check errors. Analysis proceeds on a
	// best-effort basis: analyzers treat missing type info conservatively.
	TypeErrors []error

	loader *Loader
}

// Dep returns the loaded package with the given import path — the package
// itself, one of its (transitive) module dependencies, or nil for paths
// the loader has not seen (GOROOT packages, unloaded directories). It lets
// analyzers consult source-level facts of dependency packages, such as
// //netpart:unit annotations.
func (p *Package) Dep(path string) *Package {
	if p.loader == nil {
		return nil
	}
	return p.loader.byPath[path]
}

// Loader parses and type-checks packages of one module from source. Std
// library imports are resolved through go/importer's source importer, so
// the loader needs no module cache and no network — only GOROOT sources.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// ModulePath is the module's import path prefix ("netpart").
	ModulePath string

	fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*Package // keyed by directory
	byPath map[string]*Package // keyed by import path

	// inter caches the interprocedural solve over the packages loaded so
	// far; interN is the byPath count at build time, so loading more
	// packages invalidates the cache.
	inter  *Interproc
	interN int
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root, modulePath string) *Loader {
	// The source importer consults go/build's default context; with cgo
	// enabled it would select cgo files in std packages (net, runtime/cgo)
	// that go/types cannot check from source. The pure-Go fallbacks are
	// what this repository compiles against anyway.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		Root:       root,
		ModulePath: modulePath,
		fset:       fset,
		pkgs:       map[string]*Package{},
		byPath:     map[string]*Package{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Packages returns every package loaded so far, in import-path order.
func (l *Loader) Packages() []*Package {
	paths := make([]string, 0, len(l.byPath))
	for p := range l.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		if pkg := l.byPath[p]; pkg != nil {
			out = append(out, pkg)
		}
	}
	return out
}

// Interproc returns the interprocedural state (call graph + summaries)
// over every package loaded so far, building it on first use and
// rebuilding when the loaded set has grown since.
func (l *Loader) Interproc() *Interproc {
	if l.inter == nil || l.interN != len(l.byPath) {
		l.inter = BuildInterproc(l.fset, l.Packages())
		l.interN = len(l.byPath)
	}
	return l.inter
}

// Load resolves the given patterns ("./...", "./internal/core", absolute
// directories) into loaded packages, in deterministic directory order.
// Directories without non-test Go files are skipped silently, mirroring
// the go tool's pattern matching.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// expand turns patterns into an ordered list of candidate directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		recursive := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		if !filepath.IsAbs(p) {
			p = filepath.Join(l.Root, p)
		}
		if !recursive {
			add(p)
			continue
		}
		err := filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// testdata holds analyzer fixtures with intentional violations;
			// the go tool skips these directory names too.
			if path != p && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPath maps a directory to its import path under the module, or a
// synthetic rooted path for out-of-module directories.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// loadDir loads the package in one directory (nil if it has no non-test
// Go files). Results are cached so shared dependencies load once.
func (l *Loader) loadDir(dir string) (*Package, error) {
	if pkg, ok := l.pkgs[dir]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[dir] = nil
		return nil, nil
	}
	path := l.importPath(dir)
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, loader: l}
	// Register before type-checking so import cycles fail in go/types
	// rather than recursing forever here.
	l.pkgs[dir] = pkg
	l.byPath[path] = pkg
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l, from: dir},
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if tpkg == nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// moduleImporter resolves imports for one package being checked: module
// paths recurse into the loader, everything else goes to the source
// importer for GOROOT.
type moduleImporter struct {
	l    *Loader
	from string
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, im.from, 0)
}

func (im *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := im.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("import %q: no Go package", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// FindModuleRoot walks up from dir to the directory containing go.mod and
// returns it with the module path parsed from the file.
func FindModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if v, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(v), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
