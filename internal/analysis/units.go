package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Units is the cost-model dimensional analyzer. The paper's Eq. 1–6 mix
// milliseconds, bytes, PDUs, and instruction counts; a transposed operand
// in that arithmetic type-checks as float64 but produces physically
// meaningless costs. Declaring dimensions makes the mistake mechanical to
// catch:
//
//	// C3 is the per-byte bandwidth constant.
//	C3 float64 //netpart:unit sec/bytes
//
// on a struct field, package variable, or constant, and on functions via
// doc-comment lines naming each parameter and the (first) result:
//
//	//netpart:unit b bytes
//	//netpart:unit return sec
//	func (c Params) Eval(b float64, p int) float64 { ... }
//
// The dimension vocabulary is sec, bytes, pdus, ops, and the dimensionless
// 1, composed with · (or *) and at most one /: bytes/sec, ops/pdus,
// sec·sec. All times in this repository are milliseconds; "sec" is the
// time dimension, not the unit.
//
// The analyzer propagates dimensions through +, -, *, /, comparisons,
// conversions, and the annotated names (including slice elements: an
// annotated []float64 field dims its indexed elements, and an annotated
// function-typed field dims its call results). Untyped numeric literals
// and named constants are dimensionless scalars that adopt any dimension.
// Local variables infer their dimension from what they are assigned;
// conflicting assignments demote the variable to unknown rather than
// guessing. A diagnostic fires only when two *known* dimensions collide —
// mixed-dimension addition/subtraction/comparison, or a known dimension
// assigned, returned, or passed where a different one is declared — so
// unannotated code stays silent.
var Units = &Analyzer{
	Name: "units",
	Doc:  "propagates //netpart:unit dimensions through cost-model arithmetic and flags mixed-dimension operations",
	Run:  runUnits,
}

// dim is an exponent vector over the base dimensions. The zero dim is the
// dimensionless "1".
type dim struct {
	sec, bytes, pdus, ops int8
}

func (d dim) mul(o dim, sign int8) dim {
	return dim{
		sec:   d.sec + sign*o.sec,
		bytes: d.bytes + sign*o.bytes,
		pdus:  d.pdus + sign*o.pdus,
		ops:   d.ops + sign*o.ops,
	}
}

func (d dim) String() string {
	var num, den []string
	add := func(name string, exp int8) {
		s := &num
		if exp < 0 {
			s, exp = &den, -exp
		}
		for i := int8(0); i < exp; i++ {
			*s = append(*s, name)
		}
	}
	add("sec", d.sec)
	add("bytes", d.bytes)
	add("pdus", d.pdus)
	add("ops", d.ops)
	out := strings.Join(num, "·")
	if out == "" {
		out = "1"
	}
	if len(den) > 0 {
		out += "/" + strings.Join(den, "/")
	}
	return out
}

// uval is the abstract value of an expression: unknown, a dimensionless
// scalar that adopts any dimension (numeric literals, named constants), or
// a known dimension.
type uval struct {
	kind uint8
	d    dim
}

const (
	uvUnknown uint8 = iota
	uvScalar
	uvDim
)

func unknownVal() uval     { return uval{kind: uvUnknown} }
func scalarVal() uval      { return uval{kind: uvScalar} }
func dimVal(d dim) uval    { return uval{kind: uvDim, d: d} }
func (v uval) known() bool { return v.kind == uvDim }

// unitBase maps vocabulary tokens (with aliases) to base dimensions.
var unitBase = map[string]dim{
	"sec":   {sec: 1},
	"s":     {sec: 1},
	"ms":    {sec: 1}, // milliseconds carry the time dimension
	"bytes": {bytes: 1},
	"b":     {bytes: 1},
	"pdus":  {pdus: 1},
	"pdu":   {pdus: 1},
	"ops":   {ops: 1},
	"op":    {ops: 1},
	"1":     {},
}

// parseDim parses a dimension expression: factors joined by · or *, with
// at most one / separating numerator and denominator.
func parseDim(s string) (dim, bool) {
	parts := strings.Split(s, "/")
	if len(parts) > 2 {
		return dim{}, false
	}
	var d dim
	for side, part := range parts {
		sign := int8(1)
		if side == 1 {
			sign = -1
		}
		part = strings.ReplaceAll(part, "*", "·")
		for _, tok := range strings.Split(part, "·") {
			base, ok := unitBase[strings.TrimSpace(tok)]
			if !ok {
				return dim{}, false
			}
			d = d.mul(base, sign)
		}
	}
	return d, true
}

// unitTable holds one package's parsed annotations.
type unitTable struct {
	// obj dims annotated fields, variables, constants, and parameters. For
	// a slice-typed name the dimension is that of its elements; for a
	// function-typed name it is the call-result dimension.
	obj map[types.Object]dim
	// ret dims the first result of annotated functions and methods.
	ret map[types.Object]dim
}

const unitDirective = "netpart:unit"

// directiveArg extracts the argument text of the first //netpart:unit line
// in a comment group ("" if none), with its position.
func directiveArgs(cg *ast.CommentGroup) []struct {
	text string
	pos  token.Pos
} {
	var out []struct {
		text string
		pos  token.Pos
	}
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(text, unitDirective+" "); ok {
			out = append(out, struct {
				text string
				pos  token.Pos
			}{strings.TrimSpace(rest), c.Pos()})
		}
	}
	return out
}

// buildUnitTable parses a package's //netpart:unit annotations. With a
// non-nil pass (the package under analysis), malformed annotations are
// reported; dependency tables are built silently.
func buildUnitTable(files []*ast.File, info *types.Info, pass *Pass) *unitTable {
	tab := &unitTable{obj: map[types.Object]dim{}, ret: map[types.Object]dim{}}
	malformed := func(pos token.Pos, text string) {
		if pass != nil {
			pass.Reportf(pos, "unrecognized //netpart:unit annotation %q (vocabulary: sec, bytes, pdus, ops, 1, composed with · or * and one /)", text)
		}
	}
	bindNames := func(names []*ast.Ident, d dim) {
		for _, name := range names {
			if obj := info.Defs[name]; obj != nil {
				tab.obj[obj] = d
			}
		}
	}
	for _, f := range files {
		// Struct fields anywhere (named types, anonymous scratch structs)
		// and value specs carry the one-token field form.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					for _, da := range append(directiveArgs(field.Doc), directiveArgs(field.Comment)...) {
						d, ok := parseDim(da.text)
						if !ok {
							malformed(da.pos, da.text)
							continue
						}
						bindNames(field.Names, d)
					}
				}
			case *ast.ValueSpec:
				for _, da := range append(directiveArgs(n.Doc), directiveArgs(n.Comment)...) {
					d, ok := parseDim(da.text)
					if !ok {
						malformed(da.pos, da.text)
						continue
					}
					bindNames(n.Names, d)
				}
			}
			return true
		})
		// Function docs carry the two-token param/return form.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, da := range directiveArgs(fd.Doc) {
				name, rest, ok := strings.Cut(da.text, " ")
				if !ok {
					malformed(da.pos, da.text)
					continue
				}
				d, okd := parseDim(strings.TrimSpace(rest))
				if !okd {
					malformed(da.pos, da.text)
					continue
				}
				if name == "return" {
					if obj := info.Defs[fd.Name]; obj != nil {
						tab.ret[obj] = d
					}
					continue
				}
				bound := false
				if fd.Type.Params != nil {
					for _, field := range fd.Type.Params.List {
						for _, id := range field.Names {
							if id.Name == name {
								if obj := info.Defs[id]; obj != nil {
									tab.obj[obj] = d
									bound = true
								}
							}
						}
					}
				}
				if !bound && pass != nil {
					pass.Reportf(da.pos, "//netpart:unit names unknown parameter %q of %s", name, fd.Name.Name)
				}
			}
		}
	}
	return tab
}

// unitChecker runs the propagation over one package.
type unitChecker struct {
	pass   *Pass
	tables map[*types.Package]*unitTable
	// infer holds the dimensions of unannotated locals, learned from
	// assignments; conflicted locals are demoted to unknown for good.
	infer      map[types.Object]uval
	conflicted map[types.Object]bool
	memo       map[ast.Expr]uval // pass-2 only: each expression computed once
	reporting  bool
}

func runUnits(pass *Pass) error {
	uc := &unitChecker{
		pass:   pass,
		tables: map[*types.Package]*unitTable{},
	}
	uc.tables[pass.Pkg] = buildUnitTable(pass.Files, pass.TypesInfo, pass)
	for _, fd := range enclosingFuncDecls(pass.Files) {
		uc.checkFunc(fd)
	}
	uc.checkPackageVars()
	return nil
}

// tableFor returns the annotation table of tp, building dependency tables
// lazily from the loader's cache (empty for packages outside the module,
// whose sources carry no annotations).
func (uc *unitChecker) tableFor(tp *types.Package) *unitTable {
	if tp == nil {
		return nil
	}
	if tab, ok := uc.tables[tp]; ok {
		return tab
	}
	var tab *unitTable
	if uc.pass.Dep != nil {
		if dep := uc.pass.Dep(tp.Path()); dep != nil && dep.Info != nil {
			tab = buildUnitTable(dep.Files, dep.Info, nil)
		}
	}
	uc.tables[tp] = tab
	return tab
}

// objDim looks up an annotated object's dimension.
func (uc *unitChecker) objDim(obj types.Object) (dim, bool) {
	if obj == nil {
		return dim{}, false
	}
	tab := uc.tableFor(obj.Pkg())
	if tab == nil {
		return dim{}, false
	}
	d, ok := tab.obj[obj]
	return d, ok
}

// retDim looks up an annotated function's first-result dimension.
func (uc *unitChecker) retDim(fn types.Object) (dim, bool) {
	if fn == nil {
		return dim{}, false
	}
	tab := uc.tableFor(fn.Pkg())
	if tab == nil {
		return dim{}, false
	}
	d, ok := tab.ret[fn]
	return d, ok
}

// checkFunc analyzes one function: two silent inference passes teach the
// checker the dimensions of locals (two, so a dimension learned late in
// the body reaches uses earlier in a loop), then a reporting pass flags
// collisions.
func (uc *unitChecker) checkFunc(fd *ast.FuncDecl) {
	uc.infer = map[types.Object]uval{}
	uc.conflicted = map[types.Object]bool{}
	uc.reporting = false
	uc.memo = nil
	for i := 0; i < 2; i++ {
		uc.inferPass(fd.Body)
	}
	uc.reporting = true
	uc.memo = map[ast.Expr]uval{}
	uc.reportPass(fd)
}

// inferPass walks the body in source order learning local dimensions.
func (uc *unitChecker) inferPass(body *ast.BlockStmt) {
	info := uc.pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			uc.inferFromAssign(n)
		case *ast.RangeStmt:
			// The range value carries the element dimension of the ranged
			// operand (annotated slices dim their elements).
			if n.Value != nil {
				if obj := identObj(info, n.Value); obj != nil {
					uc.learn(obj, uc.dimOf(n.X))
				}
			}
		}
		return true
	})
}

// inferFromAssign learns lhs dimensions from one assignment.
func (uc *unitChecker) inferFromAssign(as *ast.AssignStmt) {
	info := uc.pass.TypesInfo
	switch {
	case len(as.Lhs) == len(as.Rhs):
		for i, lhs := range as.Lhs {
			if obj := identObj(info, lhs); obj != nil {
				uc.learn(obj, uc.dimOf(as.Rhs[i]))
			}
		}
	case len(as.Rhs) == 1:
		// Multi-value: the first left-hand side takes the call's
		// (first-result) dimension, the rest stay unknown.
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if obj := identObj(info, as.Lhs[0]); obj != nil {
				uc.learn(obj, uc.dimOf(call))
			}
		}
	}
}

// learn merges one observed value into a local's inferred dimension.
// Scalars upgrade to dimensions; two different dimensions demote the local
// to unknown permanently (reusing a temp across dimensions is style, not a
// bug).
func (uc *unitChecker) learn(obj types.Object, v uval) {
	if obj == nil || uc.conflicted[obj] {
		return
	}
	if _, annotated := uc.objDim(obj); annotated {
		return // annotations are authoritative
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	cur, seen := uc.infer[obj]
	switch {
	case !seen || cur.kind != uvDim:
		if v.kind != uvUnknown {
			uc.infer[obj] = v
		}
	case v.kind == uvDim && v.d != cur.d:
		uc.conflicted[obj] = true
		delete(uc.infer, obj)
	}
}

// reportPass flags dimension collisions in one function body.
func (uc *unitChecker) reportPass(fd *ast.FuncDecl) {
	info := uc.pass.TypesInfo
	retD, hasRet := uc.retDim(info.Defs[fd.Name])
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			uc.dimOf(n) // reports mixed-dimension +,-,comparisons inline
		case *ast.AssignStmt:
			uc.checkAssign(n)
		case *ast.ReturnStmt:
			if hasRet && len(n.Results) > 0 {
				if v := uc.dimOf(n.Results[0]); v.known() && v.d != retD {
					uc.pass.Reportf(n.Results[0].Pos(), "dimension mismatch: returning %s from a function annotated //netpart:unit return %s", v.d, retD)
				}
			}
		case *ast.CallExpr:
			uc.checkCallArgs(n)
		case *ast.CompositeLit:
			uc.checkCompositeLit(n)
		}
		return true
	})
}

// checkAssign flags a known dimension assigned over a different declared
// or inferred one, including += and -=.
func (uc *unitChecker) checkAssign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lv := uc.dimOf(lhs)
		rv := uc.dimOf(as.Rhs[i])
		if lv.known() && rv.known() && lv.d != rv.d {
			uc.pass.Reportf(as.TokPos, "dimension mismatch: assigning %s to %s", rv.d, lv.d)
		}
	}
}

// checkCallArgs flags arguments whose known dimension contradicts the
// callee's parameter annotation.
func (uc *unitChecker) checkCallArgs(call *ast.CallExpr) {
	fn := calleeFunc(uc.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() || (sig.Variadic() && i >= sig.Params().Len()-1) {
			break
		}
		pd, annotated := uc.objDim(sig.Params().At(i))
		if !annotated {
			continue
		}
		if v := uc.dimOf(arg); v.known() && v.d != pd {
			uc.pass.Reportf(arg.Pos(), "dimension mismatch: argument %q of %s is annotated %s, got %s", sig.Params().At(i).Name(), fn.Name(), pd, v.d)
		}
	}
}

// checkCompositeLit flags keyed struct-literal values that contradict the
// field's annotation.
func (uc *unitChecker) checkCompositeLit(cl *ast.CompositeLit) {
	info := uc.pass.TypesInfo
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		fd, annotated := uc.objDim(info.Uses[key])
		if !annotated {
			continue
		}
		if v := uc.dimOf(kv.Value); v.known() && v.d != fd {
			uc.pass.Reportf(kv.Value.Pos(), "dimension mismatch: field %s is annotated %s, value is %s", key.Name, fd, v.d)
		}
	}
}

// dimOf computes the abstract dimension of an expression, reporting
// mixed-dimension additive/comparison operands inline during the
// reporting pass. Results are memoized per pass so each operator is
// reported at most once.
func (uc *unitChecker) dimOf(e ast.Expr) uval {
	e = ast.Unparen(e)
	if uc.memo != nil {
		if v, ok := uc.memo[e]; ok {
			return v
		}
	}
	v := uc.dimOfUncached(e)
	if uc.memo != nil {
		uc.memo[e] = v
	}
	return v
}

func (uc *unitChecker) dimOfUncached(e ast.Expr) uval {
	info := uc.pass.TypesInfo
	switch e := e.(type) {
	case *ast.BasicLit:
		switch e.Kind {
		case token.INT, token.FLOAT:
			return scalarVal()
		}
		return unknownVal()

	case *ast.Ident:
		obj := identObj(info, e)
		if obj == nil {
			return unknownVal()
		}
		if d, ok := uc.objDim(obj); ok {
			return dimVal(d)
		}
		if v, ok := uc.infer[obj]; ok && !uc.conflicted[obj] {
			return v
		}
		if _, isConst := obj.(*types.Const); isConst {
			return scalarVal() // tuning numbers adopt any dimension
		}
		return unknownVal()

	case *ast.SelectorExpr:
		if d, ok := uc.objDim(info.Uses[e.Sel]); ok {
			return dimVal(d)
		}
		if obj := info.Uses[e.Sel]; obj != nil {
			if _, isConst := obj.(*types.Const); isConst {
				return scalarVal()
			}
		}
		return unknownVal()

	case *ast.IndexExpr:
		return uc.dimOf(e.X) // annotated slices dim their elements

	case *ast.SliceExpr:
		return uc.dimOf(e.X)

	case *ast.StarExpr:
		return uc.dimOf(e.X)

	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.AND:
			return uc.dimOf(e.X)
		}
		return unknownVal()

	case *ast.BinaryExpr:
		return uc.dimOfBinary(e)

	case *ast.CallExpr:
		return uc.dimOfCall(e)
	}
	return unknownVal()
}

func (uc *unitChecker) dimOfBinary(e *ast.BinaryExpr) uval {
	info := uc.pass.TypesInfo
	l := uc.dimOf(e.X)
	r := uc.dimOf(e.Y)
	switch e.Op {
	case token.MUL:
		return mulVals(l, r, 1)
	case token.QUO:
		return mulVals(l, r, -1)
	case token.ADD, token.SUB, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		// String concatenation and comparisons of non-numeric values carry
		// no dimension.
		if t := info.TypeOf(e.X); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric == 0 {
				return unknownVal()
			}
		}
		if l.known() && r.known() && l.d != r.d {
			if uc.reporting {
				uc.pass.Reportf(e.OpPos, "dimension mismatch: %s %s %s", l.d, e.Op, r.d)
			}
			return l
		}
		switch {
		case l.known():
			return l
		case r.known():
			return r
		case l.kind == uvScalar && r.kind == uvScalar:
			return scalarVal()
		}
		return unknownVal()
	}
	return unknownVal()
}

// mulVals combines multiplicative operands: scalars are the identity,
// unknown poisons.
func mulVals(l, r uval, sign int8) uval {
	if l.kind == uvUnknown || r.kind == uvUnknown {
		return unknownVal()
	}
	if l.kind == uvScalar && r.kind == uvScalar {
		return scalarVal()
	}
	var d dim
	if l.known() {
		d = l.d
	}
	if r.known() {
		// From the zero dim this also handles scalar/dim: the result is
		// the inverted dimension. dim·scalar and dim/scalar keep l's.
		d = d.mul(r.d, sign)
	}
	return dimVal(d)
}

func (uc *unitChecker) dimOfCall(call *ast.CallExpr) uval {
	info := uc.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversions pass the operand through: float64(p), time.Duration(ms).
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return uc.dimOf(call.Args[0])
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap":
			return scalarVal()
		case "min", "max":
			return uc.joinArgs(call)
		}
	}

	// math helpers preserve or join their argument's dimension.
	if pkg, name := calleePkgFunc(info, call); pkg == "math" {
		switch name {
		case "Abs", "Floor", "Ceil", "Round", "Trunc":
			if len(call.Args) == 1 {
				return uc.dimOf(call.Args[0])
			}
		case "Min", "Max":
			return uc.joinArgs(call)
		}
		return unknownVal()
	}

	// Annotated function/method results.
	if fn := calleeFunc(info, call); fn != nil {
		if d, ok := uc.retDim(fn); ok {
			return dimVal(d)
		}
		return unknownVal()
	}

	// Calls through annotated function-typed names (fields like
	// BytesPerMessage): the annotation is the call-result dimension.
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		if d, ok := uc.objDim(info.Uses[f.Sel]); ok {
			return dimVal(d)
		}
	case *ast.Ident:
		if d, ok := uc.objDim(identObj(info, f)); ok {
			return dimVal(d)
		}
	}
	return unknownVal()
}

// joinArgs merges min/max-style arguments: all known dimensions must
// agree; a disagreement is reported and the first known one wins.
func (uc *unitChecker) joinArgs(call *ast.CallExpr) uval {
	out := unknownVal()
	for _, arg := range call.Args {
		v := uc.dimOf(arg)
		switch {
		case v.known() && out.known() && v.d != out.d:
			if uc.reporting {
				uc.pass.Reportf(arg.Pos(), "dimension mismatch: %s argument among %s ones", v.d, out.d)
			}
		case v.known() && !out.known():
			out = v
		case v.kind == uvScalar && out.kind == uvUnknown:
			out = scalarVal()
		}
	}
	return out
}

// checkPackageVars flags package-level initializers that contradict their
// own annotation.
func (uc *unitChecker) checkPackageVars() {
	info := uc.pass.TypesInfo
	uc.reporting = true
	if uc.memo == nil {
		uc.memo = map[ast.Expr]uval{}
	}
	for _, f := range uc.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || (gd.Tok != token.VAR && gd.Tok != token.CONST) {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					d, annotated := uc.objDim(info.Defs[name])
					if !annotated {
						continue
					}
					if v := uc.dimOf(vs.Values[i]); v.known() && v.d != d {
						uc.pass.Reportf(vs.Values[i].Pos(), "dimension mismatch: %s is annotated %s, initializer is %s", name.Name, d, v.d)
					}
				}
			}
		}
	}
}
