package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-function summaries over the call graph in
// callgraph.go: does the function allocate (and where), does it reach the
// wall clock or the global rand source, and which parameters escape. The
// summaries are solved bottom-up over the SCC condensation with a fixpoint
// inside each component (recursion), so by the time a caller is
// summarized every callee outside its own component is final.
//
// The summary lattice is a may-analysis over site sets: each fact is a
// *Site chain whose head is a position inside the summarized function (an
// allocation expression or a call) and whose Inner pointers descend
// through callees to the originating site — the provenance chain allocfree
// prints. Sets only grow during the fixpoint and are capped at maxSites
// per category, so termination is structural.
//
// Three filters keep the summaries aligned with the analyzers' contracts:
//
//   - guarded slow paths (nil-/cap-guard, isGuardedSlowPath) are excluded
//     from allocation facts, exactly as in the intraprocedural hotpath
//     analyzer — but not from wall-clock facts, because a guard sanctions
//     allocation, not nondeterminism;
//   - fmt.Errorf / errors.New directly inside a return statement is the
//     failure path, never the steady state, and contributes nothing;
//   - a site whose line carries a well-formed //nolint:netpart[/allocfree|
//     /hotpath|/determinism] suppression is dropped at the origin, so one
//     reasoned waiver stops the fact from resurfacing in every caller.
//
// Stdlib calls have no loaded bodies, so they are modeled: a small
// whitelist of provably non-allocating packages and methods (math,
// math/bits, sync/atomic, binary.PutUint*/Uint*, sync.Pool.Get/Put, lock
// and WaitGroup operations, time.Duration arithmetic) passes; time.Now/
// Since/Until and the auto-seeded math/rand globals contribute wall-clock
// and rand facts; every other stdlib call is conservatively assumed to
// allocate. Unresolved indirect calls are likewise conservative, except
// through //netpart:purecallback fields — the annotation-callback contract
// (core.Annotations), whose installed callbacks promise to be pure.
//
// Functions or packages annotated //netpart:wallclock declare that they
// measure real time by design (live runtimes, transports): their
// summaries expose no wall-clock or rand facts to callers, because their
// timing results are data, not hidden nondeterminism.

// maxSites bounds each summary category (enough for useful diagnostics,
// small enough to keep the fixpoint cheap).
const maxSites = 8

// A Site is one link of a provenance chain.
type Site struct {
	// Pos is a position inside the summarized function: the allocating
	// expression itself, or the call through which the fact arrives.
	Pos token.Pos
	// Desc says what happens there ("make([]float64, N)", "call to
	// time.Now", "indirect call through cb.fn").
	Desc string
	// Callee is the resolved target when the fact arrives through a call.
	Callee *types.Func
	// ViaCall marks facts introduced at a call site (resolved, indirect,
	// or modeled stdlib) as opposed to direct allocation expressions; the
	// intraprocedural hotpath analyzer owns the latter, allocfree the
	// former.
	ViaCall bool
	// Inner is the callee-side site this call reaches (nil for leaves).
	Inner *Site
}

// Summary is the solved interprocedural fact set of one function.
type Summary struct {
	Fn *types.Func
	// Allocs are the reachable allocation sites outside guarded slow
	// paths (empty means: proven allocation-free through the whole call
	// tree, modulo the documented stdlib model).
	Allocs []*Site
	// Clock are reachable wall-clock reads; Rand reachable global-rand
	// uses. Empty for //netpart:wallclock functions and packages.
	Clock []*Site
	Rand  []*Site
	// ParamEscapes mirrors FuncNode.ParamEscapes after the solve.
	ParamEscapes []bool
}

// Summary returns the solved summary of fn, or nil for functions outside
// the call graph (stdlib, undeclared).
func (ip *Interproc) Summary(fn *types.Func) *Summary { return ip.sums[fn] }

// --- intraprocedural seeding ---

// scanDirect populates a node's direct allocation sites and parameter
// escapes. Wall-clock and rand seeds come from call sites during the
// solve (they are stdlib calls).
func (ip *Interproc) scanDirect(node *FuncNode) {
	info := node.Pkg.Info
	var walk func(root ast.Node, guarded bool)
	walk = func(root ast.Node, guarded bool) {
		walkStack(root, func(n ast.Node, stack []ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok && !guarded && isGuardedSlowPath(ifs) {
				if ifs.Init != nil {
					walk(ifs.Init, guarded)
				}
				walk(ifs.Cond, guarded)
				walk(ifs.Body, true)
				if ifs.Else != nil {
					walk(ifs.Else, guarded)
				}
				return false
			}
			if guarded {
				return true // sanctioned slow path: no allocation facts
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				ip.scanDirectCall(node, x, stack, info)
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
						ip.addDirectAlloc(node, x.Pos(), "&composite literal escapes to the heap")
					}
				}
			case *ast.FuncLit:
				if capt := capturedVarIn(info, node.Decl, x); capt != "" {
					ip.addDirectAlloc(node, x.Pos(), "closure capturing "+strings.TrimSpace(capt)+" allocates")
				}
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
	ip.scanParamEscapes(node)
}

// scanDirectCall records the allocation behavior of builtin calls and
// explicit interface conversions (call edges are handled by the solve).
func (ip *Interproc) scanDirectCall(node *FuncNode, call *ast.CallExpr, stack []ast.Node, info *types.Info) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(info, id) {
		switch id.Name {
		case "make":
			ip.addDirectAlloc(node, call.Pos(), "make allocates")
		case "new":
			ip.addDirectAlloc(node, call.Pos(), "new allocates")
		case "append":
			if len(call.Args) > 0 {
				ip.scanDirectAppend(node, call, stack, info)
			}
		}
		return
	}
	// Explicit conversion of a concrete value to an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			if at := info.TypeOf(call.Args[0]); at != nil {
				if _, argIface := at.Underlying().(*types.Interface); !argIface {
					if b, basic := at.Underlying().(*types.Basic); !basic || b.Kind() != types.UntypedNil {
						ip.addDirectAlloc(node, call.Pos(), "conversion to interface boxes the value")
					}
				}
			}
		}
	}
}

// scanDirectAppend applies hotpath's unsized-local-append rule: appends
// into caller-owned, field-held, or make-sized storage amortize; a local
// declared without capacity does not.
func (ip *Interproc) scanDirectAppend(node *FuncNode, call *ast.CallExpr, stack []ast.Node, info *types.Info) {
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		return // reuse idiom: append(buf[:0], ...)
	case *ast.Ident:
		obj := identObj(info, dst)
		if obj == nil {
			return
		}
		decl := localSliceDecl([]ast.Node{node.Decl}, obj)
		if decl == nil || declHasCapacity(info, decl, obj) {
			return
		}
		ip.addDirectAlloc(node, call.Pos(), "append to unsized local slice "+dst.Name+" grows")
	default:
		if _, isLit := ast.Unparen(call.Args[0]).(*ast.CompositeLit); isLit {
			ip.addDirectAlloc(node, call.Pos(), "append to a fresh slice literal allocates")
		}
	}
}

func (ip *Interproc) addDirectAlloc(node *FuncNode, pos token.Pos, desc string) {
	if ip.suppressedAt(pos, "allocfree") || ip.suppressedAt(pos, "hotpath") {
		return
	}
	node.DirectAllocs = appendSite(node.DirectAllocs, &Site{Pos: pos, Desc: desc})
}

// scanParamEscapes marks parameters stored beyond the call: assigned to a
// selector (field) or package-level variable, or sent on a channel.
// Approximate — direct stores only.
func (ip *Interproc) scanParamEscapes(node *FuncNode) {
	info := node.Pkg.Info
	sig, ok := node.Fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return
	}
	idx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		idx[sig.Params().At(i)] = i
	}
	node.ParamEscapes = make([]bool, sig.Params().Len())
	paramOf := func(e ast.Expr) (int, bool) {
		obj := identObj(info, e)
		if obj == nil {
			return 0, false
		}
		i, ok := idx[obj]
		return i, ok
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				pi, ok := paramOf(rhs)
				if !ok || i >= len(s.Lhs) {
					continue
				}
				switch lhs := ast.Unparen(s.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					node.ParamEscapes[pi] = true
				case *ast.Ident:
					if obj := identObj(info, lhs); obj != nil && obj.Parent() == node.Pkg.Types.Scope() {
						node.ParamEscapes[pi] = true
					}
				}
			}
		case *ast.SendStmt:
			if pi, ok := paramOf(s.Value); ok {
				node.ParamEscapes[pi] = true
			}
		}
		return true
	})
}

// capturedVarIn is capturedVar generalized to any enclosing declaration.
func capturedVarIn(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	return capturedVar(info, fd, lit)
}

// --- the bottom-up solve ---

// solve seeds every node with its intraprocedural facts and then runs the
// SCC-ordered fixpoint, merging callee summaries through each call site.
func (ip *Interproc) solve() {
	for _, node := range ip.nodes {
		ip.scanDirect(node)
	}
	for _, scc := range ip.sccs {
		for _, node := range scc {
			s := &Summary{Fn: node.Fn, ParamEscapes: node.ParamEscapes}
			s.Allocs = append(s.Allocs, node.DirectAllocs...)
			ip.sums[node.Fn] = s
		}
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				if ip.resolveNode(node) {
					changed = true
				}
			}
		}
	}
}

// wallclockWaived reports whether the node opts out of wall-clock/rand
// propagation (//netpart:wallclock on the function or its package).
func (ip *Interproc) wallclockWaived(node *FuncNode) bool {
	return funcHasDirective(node.Decl, "netpart:wallclock") ||
		packageHasDirective(node.Pkg.Files, "netpart:wallclock")
}

// resolveNode recomputes one node's call-derived facts from the current
// callee summaries; it reports whether the summary grew.
func (ip *Interproc) resolveNode(node *FuncNode) bool {
	s := ip.sums[node.Fn]
	before := len(s.Allocs) + len(s.Clock) + len(s.Rand)
	waived := ip.wallclockWaived(node)
	for _, cs := range node.Calls {
		pos := cs.Call.Pos()
		allocOK := !cs.Guarded && !ip.suppressedAt(pos, "allocfree") && !ip.suppressedAt(pos, "hotpath")
		detOK := !waived && !ip.suppressedAt(pos, "determinism")
		if cs.PureCallback {
			continue
		}
		if cs.IndirectDesc != "" {
			if allocOK {
				s.Allocs = appendSite(s.Allocs, &Site{Pos: pos, Desc: "indirect call through " + cs.IndirectDesc + " (unresolved, assumed allocating)", ViaCall: true})
			}
			continue
		}
		if cs.Interface && len(cs.Targets) == 0 {
			if allocOK {
				s.Allocs = appendSite(s.Allocs, &Site{Pos: pos, Desc: "interface call with no in-module implementation (assumed allocating)", ViaCall: true})
			}
			continue
		}
		for _, target := range cs.Targets {
			if tn := ip.nodes[target]; tn != nil {
				ts := ip.sums[target]
				if ts == nil {
					continue // same-SCC member not yet seeded this round
				}
				if allocOK && len(ts.Allocs) > 0 {
					s.Allocs = appendSite(s.Allocs, &Site{Pos: pos, Desc: "call to " + funcLabel(target), Callee: target, Inner: ts.Allocs[0], ViaCall: true})
				}
				if detOK && len(ts.Clock) > 0 {
					s.Clock = appendSite(s.Clock, &Site{Pos: pos, Desc: "call to " + funcLabel(target), Callee: target, Inner: ts.Clock[0], ViaCall: true})
				}
				if detOK && len(ts.Rand) > 0 {
					s.Rand = appendSite(s.Rand, &Site{Pos: pos, Desc: "call to " + funcLabel(target), Callee: target, Inner: ts.Rand[0], ViaCall: true})
				}
				continue
			}
			// No body: stdlib (or unloaded) — consult the model.
			ip.mergeStdlib(s, cs, target, allocOK, detOK)
		}
	}
	return len(s.Allocs)+len(s.Clock)+len(s.Rand) != before
}

// mergeStdlib folds one modeled stdlib callee into the summary.
func (ip *Interproc) mergeStdlib(s *Summary, cs *Callsite, fn *types.Func, allocOK, detOK bool) {
	pos := cs.Call.Pos()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "time":
		if nondeterministicTimeFuncs[name] {
			if detOK {
				s.Clock = appendSite(s.Clock, &Site{Pos: pos, Desc: "time." + name, ViaCall: true})
			}
			return
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !seededRandConstructors[name] {
			if detOK {
				s.Rand = appendSite(s.Rand, &Site{Pos: pos, Desc: "global " + pkg[strings.LastIndex(pkg, "/")+1:] + "." + name, ViaCall: true})
			}
			return
		}
	}
	if !allocOK || nonallocStdlib(fn) {
		return
	}
	if (pkg == "fmt" && name == "Errorf") || (pkg == "errors" && name == "New") {
		if cs.InReturn || cs.InPanic {
			return // error construction on the failure path only
		}
	}
	if pkg == "fmt" && strings.HasPrefix(name, "Sprint") && cs.InPanic {
		return // panic(fmt.Sprintf(...)): the failure path, never steady state
	}
	s.Allocs = appendSite(s.Allocs, &Site{Pos: pos, Desc: "call to " + funcLabel(fn) + " (stdlib, not modeled allocation-free)", ViaCall: true})
}

// nonallocStdPkgs are packages whose exported functions and methods never
// heap-allocate.
var nonallocStdPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
	"unsafe":      true,
	"cmp":         true,
}

// nonallocSyncMethods are the sync primitives hot paths are allowed to
// touch. sync.Pool.Get/Put are the designed amortization mechanism
// (buffers recycle instead of allocating once the pool is warm).
var nonallocSyncMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "TryRLock": true,
	"Get": true, "Put": true,
	"Add": true, "Done": true, "Wait": true,
}

// nonallocStdlib reports whether a body-less callee is modeled as
// allocation-free. Everything not listed is conservatively allocating.
func nonallocStdlib(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // universe-scope (error.Error reached via interface has a pkg; builtins never get here)
	}
	path := pkg.Path()
	if nonallocStdPkgs[path] {
		return true
	}
	name := fn.Name()
	switch path {
	case "encoding/binary":
		return strings.HasPrefix(name, "Uint") || strings.HasPrefix(name, "PutUint") ||
			strings.HasPrefix(name, "PutVarint") || strings.HasPrefix(name, "Varint")
	case "sync":
		return nonallocSyncMethods[name]
	case "time":
		// time.Duration arithmetic (Seconds, Milliseconds, ...) is pure;
		// only methods qualify — package-level constructors may allocate.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Duration" {
				return true
			}
		}
	}
	return false
}

// appendSite adds a site, deduplicating by position and respecting the
// per-category cap.
func appendSite(sites []*Site, site *Site) []*Site {
	for _, s := range sites {
		if s.Pos == site.Pos {
			return sites
		}
	}
	if len(sites) >= maxSites {
		return sites
	}
	return append(sites, site)
}

// RenderChain formats a provenance chain for diagnostics:
//
//	call to core.(Estimator).cluster → make allocates (estimate.go:101)
func (ip *Interproc) RenderChain(site *Site) string {
	var b strings.Builder
	cur := site
	for depth := 0; cur != nil && depth < 8; depth++ {
		if depth > 0 {
			b.WriteString(" → ")
		}
		if cur.Callee != nil {
			b.WriteString(funcLabel(cur.Callee))
		} else {
			b.WriteString(cur.Desc)
			pos := ip.fset.Position(cur.Pos)
			b.WriteString(" (" + shortPos(pos) + ")")
		}
		cur = cur.Inner
	}
	return b.String()
}

// shortPos trims a position to basename:line.
func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + itoa(p.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
