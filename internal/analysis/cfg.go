package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow-graph half of the flow-sensitive analysis
// engine: an intraprocedural CFG built from go/ast alone, consumed by the
// forward dataflow solver in dataflow.go. One CFG covers one function-like
// body (a FuncDecl or a FuncLit); closures are separate CFGs, because their
// bodies execute at a different time than the statements around them.
//
// Blocks carry "leaf" nodes only — simple statements and the control
// expressions of compound statements (an if's condition, a switch's tag, a
// range's operand). Compound statements themselves never appear inside a
// block, so a transfer function may inspect a node without accidentally
// descending into statements that live in other blocks. FuncLit bodies are
// the one exception: they appear nested inside leaf nodes and transfer
// functions must prune them (see inspectLeaf).

// A Block is one basic block: leaf nodes executed in order, then a jump to
// one of Succs.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// A CFG is the control-flow graph of one function-like body.
type CFG struct {
	// Blocks lists every block in creation order; Blocks[0] is the entry.
	Blocks []*Block
	Entry  *Block
	// Exit is the synthetic exit block: returns, panics, and falling off
	// the end all edge here. It carries no nodes.
	Exit *Block
	// Defers lists the deferred calls in registration order. Analyzers
	// model them as running at Exit (in reverse order); a DeferStmt node
	// inside a block must therefore have no transfer effect in place.
	Defers []*ast.CallExpr
	// NonBlocking marks select communication statements that cannot block
	// because their select has a default clause.
	NonBlocking map[ast.Stmt]bool
	// Ranges maps a range loop's head block to its statement: analyzers
	// that track per-variable state treat the Key/Value variables as
	// freshly assigned each time the head executes.
	Ranges map[*Block]*ast.RangeStmt
}

// NumEdges returns the total number of edges, for golden CFG-shape tests.
func (g *CFG) NumEdges() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Succs)
	}
	return n
}

// Reachable returns, indexed by Block.Index, whether each block is
// reachable from the entry.
func (g *CFG) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// BuildCFG constructs the CFG of one function body. The body may be a
// FuncDecl's or a FuncLit's; both are plain *ast.BlockStmt.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{NonBlocking: map[ast.Stmt]bool{}, Ranges: map[*Block]*ast.RangeStmt{}},
		labels: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.edge(b.cur, b.cfg.Exit)
	return b.cfg
}

// loopScope is one enclosing breakable/continuable construct.
type loopScope struct {
	label string
	brk   *Block // break target (nil for constructs without one)
	cont  *Block // continue target (nil for switch/select)
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	scopes []loopScope
	labels map[string]*Block // label name → target block (goto / labeled stmt)
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// labelBlock returns (creating on first use) the block a label names, so
// forward gotos resolve.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findScope locates the innermost matching break/continue target.
func (b *cfgBuilder) findScope(label string, cont bool) *Block {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := b.scopes[i]
		if label != "" && s.label != label {
			continue
		}
		if cont {
			if s.cont != nil {
				return s.cont
			}
			if label != "" {
				return nil // labeled continue on a non-loop: malformed
			}
			continue
		}
		return s.brk
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the name of an enclosing
// LabeledStmt directly wrapping this statement (for labeled break/continue).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findScope(labelName(s.Label), false); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findScope(labelName(s.Label), true); t != nil {
				b.edge(b.cur, t)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(s.Label.Name))
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// The switch translation adds the edge to the next clause.
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.scopes = append(b.scopes, loopScope{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, post)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.cfg.Ranges[head] = s
		b.edge(b.cur, head)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body)
		b.edge(head, after)
		b.scopes = append(b.scopes, loopScope{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, nil)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		b.scopes = append(b.scopes, loopScope{label: label, brk: after})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
				if hasDefault {
					b.cfg.NonBlocking[cc.Comm] = true
				}
			}
			b.cur = blk
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s.Call)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.edge(b.cur, b.cfg.Exit)
				b.cur = b.newBlock()
			}
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, GoStmt, IncDecStmt, SendStmt, ...
		b.add(s)
	}
}

// switchClauses translates the clause list shared by switch and type
// switch: every clause body gets its own block fed from the current block,
// a trailing fallthrough edges to the next clause's body, and the implicit
// break edges to the join block.
func (b *cfgBuilder) switchClauses(list []ast.Stmt, label string, caseExprs func(*ast.CaseClause, *Block)) {
	head := b.cur
	after := b.newBlock()
	var clauses []*ast.CaseClause
	var bodies []*Block
	hasDefault := false
	for _, c := range list {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.edge(head, blk)
		if caseExprs != nil {
			caseExprs(cc, blk)
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		bodies = append(bodies, blk)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.scopes = append(b.scopes, loopScope{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		if i+1 < len(bodies) && endsInFallthrough(cc.Body) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	// The spec only requires fallthrough to be the final NON-EMPTY
	// statement of its clause, so trailing empty statements are legal Go
	// ("fallthrough;;") and must be walked past — checking body[len-1]
	// alone would drop the fallthrough edge and corrupt the clause graph.
	for i := len(body) - 1; i >= 0; i-- {
		switch s := body[i].(type) {
		case *ast.EmptyStmt:
			continue
		case *ast.BranchStmt:
			return s.Tok == token.FALLTHROUGH
		default:
			return false
		}
	}
	return false
}

func labelName(id *ast.Ident) string {
	if id == nil {
		return ""
	}
	return id.Name
}

// funcBody is one function-like unit of analysis: a declared function or a
// closure, with the node that owns the body (for position reporting and
// locality decisions).
type funcBody struct {
	decl *ast.FuncDecl // nil for closures
	lit  *ast.FuncLit  // nil for declared functions
	body *ast.BlockStmt
}

func (f funcBody) node() ast.Node {
	if f.decl != nil {
		return f.decl
	}
	return f.lit
}

// funcBodies returns every function-like body of the package — each
// top-level FuncDecl with a body, and each FuncLit anywhere (including
// inside other FuncLits), innermost last for each declaration.
func funcBodies(files []*ast.File) []funcBody {
	var out []funcBody
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				out = append(out, funcBody{decl: fd, body: fd.Body})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{lit: lit, body: lit.Body})
			}
			return true
		})
	}
	return out
}

// inspectLeaf walks one block node without descending into closure bodies,
// which belong to a different CFG.
func inspectLeaf(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
