package analysis

import (
	"go/ast"
	"go/types"
)

// HotPath enforces the zero-allocation contract on functions annotated
// //netpart:hotpath — the estimator's Estimate fast path, the search's
// scratch-probe helpers, and the halo encode/decode codec. The annotated
// contract (see DESIGN.md) is: the steady-state, observer-free execution
// of the function performs no heap allocation, which is what keeps the
// O(K·log2 P) runtime search cheap enough to re-run on every adaptation
// cycle and what cmd/benchdiff's allocs/op gate measures dynamically.
//
// Inside an annotated function the analyzer flags, intra-procedurally:
//
//   - fmt.* calls (interface boxing plus formatting state) — except
//     fmt.Errorf directly returned, which only runs on failure paths;
//   - make/new and &T{...} allocations;
//   - append through a local slice that was declared without capacity
//     ("unsized append") — reslicing idioms like buf[:0] and appends into
//     caller-owned or field-held scratch are accepted;
//   - closures that capture enclosing variables (the capture forces the
//     closure, and usually the captured variable, onto the heap);
//   - explicit conversions of concrete values to interface types.
//
// Allocation is permitted under an explicit guard — an if whose condition
// compares something to nil or inspects cap(...) — because those are the
// two sanctioned slow paths: lazy one-time initialization / instrumented
// observer branches, and first-use buffer growth.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbids heap-allocating constructs in //netpart:hotpath functions outside nil/cap-guarded slow paths",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, fd := range enclosingFuncDecls(pass.Files) {
		if funcHasDirective(fd, "netpart:hotpath") {
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	checkHotSubtree(pass, fd, fd.Body)
}

// checkHotSubtree walks one hot region, pruning guarded slow paths (their
// else branches stay hot and re-enter the walk).
func checkHotSubtree(pass *Pass, fd *ast.FuncDecl, root ast.Node) {
	walkStack(root, func(n ast.Node, stack []ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && isGuardedSlowPath(ifs) {
			if ifs.Else != nil {
				checkHotSubtree(pass, fd, ifs.Else)
			}
			return false
		}
		checkHotNode(pass, fd, n, stack)
		return true
	})
}

func checkHotNode(pass *Pass, fd *ast.FuncDecl, n ast.Node, stack []ast.Node) {
	info := pass.TypesInfo
	switch x := n.(type) {
	case *ast.CallExpr:
		checkHotCall(pass, x, stack)
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				pass.Reportf(x.Pos(), "&composite literal escapes to the heap on the hot path")
			}
		}
	case *ast.FuncLit:
		if capt := capturedVar(info, fd, x); capt != "" {
			pass.Reportf(x.Pos(), "closure captures %q; captured closures allocate on the hot path", capt)
		}
	}
}

func checkHotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	// Builtin allocators and unsized appends.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if isBuiltin(info, id) {
				pass.Reportf(call.Pos(), "make allocates on the hot path; hoist the buffer into reusable scratch behind a cap guard")
			}
			return
		case "new":
			if isBuiltin(info, id) {
				pass.Reportf(call.Pos(), "new allocates on the hot path")
			}
			return
		case "append":
			if isBuiltin(info, id) && len(call.Args) > 0 {
				checkHotAppend(pass, call, stack)
			}
			return
		}
	}
	// fmt calls.
	if pkgPath, name := calleePkgFunc(info, call); pkgPath == "fmt" {
		if name == "Errorf" && len(stack) > 0 {
			if _, ok := stack[len(stack)-1].(*ast.ReturnStmt); ok {
				return // error construction on the failure return only
			}
		}
		pass.Reportf(call.Pos(), "fmt.%s allocates (formatting state and interface boxing) on the hot path", name)
		return
	}
	// Explicit conversion to an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			if at := info.TypeOf(call.Args[0]); at != nil {
				if _, argIface := at.Underlying().(*types.Interface); !argIface {
					if b, basic := at.Underlying().(*types.Basic); !basic || b.Kind() != types.UntypedNil {
						pass.Reportf(call.Pos(), "conversion to interface boxes the value on the hot path")
					}
				}
			}
		}
	}
}

// checkHotAppend flags appends whose destination cannot amortize: a local
// slice declared with no capacity. Reslice expressions (buf[:0]),
// parameters, fields, and make-sized locals pass.
func checkHotAppend(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.SliceExpr:
		return // reuse idiom: append(buf[:0], ...)
	case *ast.Ident:
		obj := identObj(info, dst)
		if obj == nil {
			return
		}
		decl := localSliceDecl(stack, obj)
		if decl == nil {
			return // parameter, field, or package-level scratch: caller-owned
		}
		if declHasCapacity(info, decl, obj) {
			return
		}
		pass.Reportf(call.Pos(), "append to unsized local slice %q grows on the hot path; preallocate or reuse scratch", dst.Name)
	default:
		// Fresh-slice copies: append([]T(nil), ...) / append([]T{}, ...).
		if tv, ok := info.Types[call.Args[0]]; ok && !tv.IsType() {
			if _, isLit := ast.Unparen(call.Args[0]).(*ast.CompositeLit); isLit {
				pass.Reportf(call.Pos(), "append to a fresh slice literal allocates on the hot path")
			}
		}
		if ce, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
			if tv, okt := info.Types[ce.Fun]; okt && tv.IsType() {
				pass.Reportf(call.Pos(), "append to a fresh nil-converted slice allocates on the hot path")
			}
		}
	}
}

// localSliceDecl finds the declaration node of obj among the enclosing
// statements (nil when obj is not a local of this function).
func localSliceDecl(stack []ast.Node, obj types.Object) ast.Node {
	if len(stack) == 0 {
		return nil
	}
	root := stack[0]
	if obj.Pos() < root.Pos() || obj.Pos() > root.End() {
		return nil // declared outside this function
	}
	var decl ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range d.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Pos() == obj.Pos() {
					decl = d
					return false
				}
			}
		case *ast.ValueSpec:
			for _, id := range d.Names {
				if id.Pos() == obj.Pos() {
					decl = d
					return false
				}
			}
		case *ast.Field:
			for _, id := range d.Names {
				if id.Pos() == obj.Pos() {
					decl = d // parameter or receiver
					return false
				}
			}
		}
		return decl == nil
	})
	if _, isField := decl.(*ast.Field); isField {
		return nil // parameters are caller-owned
	}
	return decl
}

// declHasCapacity reports whether the local declaration gives the slice
// usable capacity: a make call, a call result (assumed sized), or a
// reslice of existing storage. `var x []T`, `x := []T{}` and
// `x := []T(nil)` do not.
func declHasCapacity(info *types.Info, decl ast.Node, obj types.Object) bool {
	var rhs ast.Expr
	switch d := decl.(type) {
	case *ast.AssignStmt:
		for i, lhs := range d.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Pos() == obj.Pos() && i < len(d.Rhs) {
				rhs = d.Rhs[i]
			}
		}
	case *ast.ValueSpec:
		for i, id := range d.Names {
			if id.Pos() == obj.Pos() && i < len(d.Values) {
				rhs = d.Values[i]
			}
		}
	}
	if rhs == nil {
		return false // var x []T — no storage
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "make" && isBuiltin(info, id) {
			return len(r.Args) >= 2 // make with a size or capacity
		}
		if tv, ok := info.Types[r.Fun]; ok && tv.IsType() {
			return false // conversion like []T(nil)
		}
		return true // result of a function call: assume sized scratch
	case *ast.SliceExpr, *ast.IndexExpr, *ast.SelectorExpr, *ast.Ident:
		return true // view of existing storage
	case *ast.CompositeLit:
		return len(r.Elts) > 0 // non-empty literal at least holds its elements
	}
	return false
}

// isGuardedSlowPath recognizes the two sanctioned allocation guards: a nil
// comparison (lazy init, observer branches, optional features) and a
// cap/len inspection (grow-once scratch).
func isGuardedSlowPath(ifs *ast.IfStmt) bool {
	if condHasNilCompare(ifs.Cond) {
		return true
	}
	return condHasCapCall(ifs.Cond)
}

func condHasNilCompare(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if _, _, ok := nilComparison(e); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

func condHasCapCall(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				found = true
			}
		}
		return !found
	})
	return found
}

// capturedVar returns the name of a variable the closure captures from its
// enclosing function, or "".
func capturedVar(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || name != "" {
			return name == ""
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			name = v.Name()
		}
		return true
	})
	return name
}

// isBuiltin reports whether the identifier resolves to a Go builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}
