package analysis_test

import (
	"path/filepath"
	"testing"

	"netpart/internal/analysis"
	"netpart/internal/analysis/antest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestDeterminism(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.Determinism}, fixture("determinism"))
}

func TestHotPath(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.HotPath}, fixture("hotpath"))
}

// TestAllocFree runs hotpath and allocfree together: the fixture pins the
// division of labor (direct sites → hotpath, call-derived sites →
// allocfree with provenance chains) and the scoped-suppression interplay.
func TestAllocFree(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.HotPath, analysis.AllocFree}, fixture("allocfree"))
}

func TestMsgProto(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.MsgProto}, fixture("msgproto"))
}

func TestPoolLifetime(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.PoolLifetime}, fixture("poollifetime"))
}

func TestPoolFlow(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.PoolFlow}, fixture("poolflow"))
}

func TestConcSafety(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.ConcSafety}, fixture("concsafety"))
}

func TestUnits(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.Units}, fixture("units"))
}

func TestObsNil(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.ObsNil}, fixture("obsnil"))
}

func TestErrCheck(t *testing.T) {
	antest.Run(t, []*analysis.Analyzer{analysis.ErrCheck}, fixture("errcheck"))
}

// TestSuppression runs the full suite so the //nolint:netpart machinery is
// exercised exactly as cmd/netpartlint runs it: justified suppressions
// silence findings, scoped suppressions only silence their analyzer, and a
// missing reason is a finding in its own right.
func TestSuppression(t *testing.T) {
	antest.Run(t, analysis.Analyzers(), fixture("nolint"))
}
