// Package analysis is netpartlint's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// Analyzer/Pass shape (the container image carries no module cache, so the
// framework is built on go/ast and go/types alone).
//
// The analyzers encode the repository's runtime invariants as compile-time
// checks — determinism of the partitioning pipeline, the zero-allocation
// estimate hot path, sync.Pool buffer lifetimes in mmps, and nil-safety of
// every observability hook. The contracts they enforce are driven by
// source-level directives:
//
//	//netpart:deterministic   (package)  output must not depend on map order,
//	                                     wall-clock time, or global rand
//	//netpart:hotpath         (func)     body must not allocate outside
//	                                     nil/cap-guarded slow paths
//	//netpart:nilsafe         (package)  exported pointer methods must
//	                                     nil-guard their receiver
//	//netpart:nilhook         (type)     calls through this interface must be
//	                                     nil-guarded at the call site
//	//netpart:checkerrors     (package)  discarded error results are rejected
//	                                     (package main gets this implicitly)
//	//netpart:unit <dim>      (field/var/func doc) declares the physical
//	                                     dimension (sec, bytes, pdus, ops, 1;
//	                                     composed with · and /) that the units
//	                                     analyzer propagates through the cost
//	                                     arithmetic
//	//netpart:purecallback    (field)    callbacks installed in this func-typed
//	                                     field are pure and allocation-free, so
//	                                     interprocedural solves trust calls
//	                                     through it
//	//netpart:wallclock       (func/package) measures real time by design; its
//	                                     wall-clock/rand use is data, not hidden
//	                                     nondeterminism, and does not propagate
//	                                     to callers
//	//netpart:wire <group> <encode|decode> (func) assigns a codec function to a
//	                                     wire group and side when its name does
//	                                     not follow the EncodeX/DecodeX pattern
//	//netpart:lockstep        (func)     the function's sends and receives form
//	                                     a lockstep protocol round msgproto
//	                                     checks for symmetry and deadlock
//
// A finding is suppressed with an explained escape hatch on the same line:
//
//	//nolint:netpart reason=<why the invariant does not apply here>
//
// or scoped to one analyzer with //nolint:netpart/<name>. A suppression
// whose reason is missing or empty is itself a diagnostic: unexplained
// suppressions are how invariants rot.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:netpart/<name> suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass connects one analyzer run to one loaded package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info
	// Dep resolves an import path to its loaded package, so analyzers can
	// read source-level facts (like //netpart:unit annotations) from the
	// dependencies of the package under analysis. Nil outside a loader, and
	// nil results for packages the loader has not seen (GOROOT).
	Dep func(path string) *Package
	// Inter is the module-wide interprocedural state (call graph + solved
	// summaries) shared by every pass of one Loader; nil when the package
	// was checked without a loader. allocfree, msgproto, and determinism's
	// helper-call propagation consume it.
	Inter *Interproc

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks findings covered by a well-formed //nolint:netpart
	// comment. Check drops them; CheckAll keeps them so tooling (-json) can
	// show what was waived and why.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full netpartlint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Determinism, HotPath, AllocFree, MsgProto, PoolLifetime, PoolFlow, ConcSafety, Units, ObsNil, ErrCheck}
}

// Check runs the given analyzers over one loaded package and returns the
// surviving diagnostics: suppressions are applied, and malformed
// suppressions (no reason) are reported as diagnostics of the pseudo
// analyzer "nolint". Diagnostics come back sorted by position.
func Check(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := CheckAll(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// CheckAll is Check without the suppression filter: suppressed findings
// are returned with Suppressed set instead of being dropped, for tooling
// that reports what was waived (netpartlint -json). Malformed suppressions
// are still diagnosed, and the result is sorted by position.
func CheckAll(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var inter *Interproc
	if pkg.loader != nil {
		inter = pkg.loader.Interproc()
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.Path,
			TypesInfo: pkg.Info,
			Dep:       pkg.Dep,
			Inter:     inter,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// nolintRe matches the suppression marker. It is anchored to the start of
// the comment so prose that merely mentions the convention (like this
// package's documentation) is not a suppression; the analyzer scope and
// the reason are validated separately so malformed variants are diagnosed
// rather than silently ignored.
var nolintRe = regexp.MustCompile(`^//nolint:netpart(/[a-z]+)?\b([^\n]*)`)

// suppression is one parsed //nolint:netpart comment.
type suppression struct {
	analyzer string // empty = all netpart analyzers
	reason   string
	pos      token.Position
}

// parseSuppressions collects the per-line suppressions of one file.
func parseSuppressions(fset *token.FileSet, file *ast.File) map[int][]suppression {
	out := map[int][]suppression{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := nolintRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			s := suppression{
				analyzer: strings.TrimPrefix(m[1], "/"),
				pos:      fset.Position(c.Pos()),
			}
			rest := strings.TrimSpace(m[2])
			if v, ok := strings.CutPrefix(rest, "reason="); ok {
				s.reason = strings.TrimSpace(v)
			}
			out[s.pos.Line] = append(out[s.pos.Line], s)
		}
	}
	return out
}

// applySuppressions marks diagnostics covered by a well-formed
// //nolint:netpart comment on the same line as Suppressed, and reports
// malformed suppressions (empty reason) as diagnostics in their own right.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	byFile := map[string]map[int][]suppression{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		sups := parseSuppressions(pkg.Fset, f)
		if len(sups) == 0 {
			continue
		}
		name := pkg.Fset.Position(f.Pos()).Filename
		byFile[name] = sups
		for _, line := range sups {
			for _, s := range line {
				if s.reason == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "nolint",
						Pos:      s.pos,
						Message:  "suppression without a reason: write //nolint:netpart reason=<why this line may break the invariant>",
					})
				}
			}
		}
	}
	out := malformed
	for _, d := range diags {
		d.Suppressed = suppressed(byFile[d.Pos.Filename][d.Pos.Line], d.Analyzer)
		out = append(out, d)
	}
	return out
}

// suppressed reports whether one of the line's well-formed suppressions
// covers the analyzer.
func suppressed(sups []suppression, analyzer string) bool {
	for _, s := range sups {
		if s.reason == "" {
			continue // malformed suppressions never suppress
		}
		if s.analyzer == "" || s.analyzer == analyzer {
			return true
		}
	}
	return false
}

// --- source directives ---

// hasDirective reports whether a comment group contains the given
// //netpart:<name> directive line.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// packageHasDirective reports whether any file-level comment in the
// package carries the directive (by convention it sits next to the package
// clause of one file).
func packageHasDirective(files []*ast.File, directive string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			if hasDirective(cg, directive) {
				return true
			}
		}
	}
	return false
}

// funcHasDirective reports whether the function's doc comment carries the
// directive.
func funcHasDirective(fd *ast.FuncDecl, directive string) bool {
	return hasDirective(fd.Doc, directive)
}
