package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck rejects silently discarded error results in the commands
// (package main) and in packages opting in with //netpart:checkerrors. The
// commands render the experiment tables whose bytes the golden tests diff;
// a swallowed Flush or Close error turns truncated output into a plausible-
// looking but wrong artifact, which is worse than a crash. Only bare
// expression statements are flagged: explicit `_ =` discards are visible
// decisions, and `defer f.Close()` on read-only files is accepted idiom.
// fmt printers and the never-failing strings.Builder / bytes.Buffer
// writers are exempt.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "rejects discarded error results in package main and //netpart:checkerrors packages",
	Run:  runErrCheck,
}

func runErrCheck(pass *Pass) error {
	if pass.Pkg.Name() != "main" && !packageHasDirective(pass.Files, "netpart:checkerrors") {
		return nil
	}
	for _, fd := range enclosingFuncDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(es.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, bad := discardsError(pass.TypesInfo, call); bad {
				pass.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign to _ explicitly", name)
			}
			return true
		})
	}
	return nil
}

// discardsError reports whether the call's (unused) results include an
// error, along with a printable callee name.
func discardsError(info *types.Info, call *ast.CallExpr) (string, bool) {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return "", false
	}
	if !resultHasError(tv.Type) {
		return "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return exprText(call.Fun), true // dynamic call through a func value
	}
	if exemptErrCallee(fn) {
		return "", false
	}
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = exprText(call.Fun)
	} else if fn.Pkg() != nil && fn.Pkg().Name() != "main" {
		name = fn.Pkg().Name() + "." + fn.Name()
	}
	return name, true
}

// resultHasError reports whether a call result type includes error.
func resultHasError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exemptErrCallee lists callees whose error results are conventionally
// ignored: fmt printers (stdout/stderr writes) and the never-failing
// builder/buffer writers.
func exemptErrCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "fmt":
		return true
	case "strings", "bytes":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			if named, ok := rt.(*types.Named); ok {
				n := named.Obj().Name()
				return n == "Builder" || n == "Buffer"
			}
		}
	}
	return false
}
