package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConcSafety is the flow-sensitive concurrency analyzer. It runs the CFG +
// forward-dataflow engine (cfg.go, dataflow.go) over every function-like
// body and enforces four invariants the concurrency-heavy packages
// (experiments, mmps, faults, stencil) rely on:
//
//   - lock pairing: every sync.Mutex/RWMutex Lock acquired inside a
//     function is released on every path to the exit, counting deferred
//     unlocks; double-Lock and Unlock-of-unheld are reported where the
//     lattice proves them on all paths.
//
//   - no blocking under a lock: a channel send, channel receive, or
//     WaitGroup.Wait while a mutex may be held is reported. Communication
//     arms of a select with a default clause are exempt (they cannot
//     block), as is sync.Cond.Wait (it releases its own mutex).
//
//   - WaitGroup balance: a goroutine that calls wg.Done must be preceded
//     by a wg.Add on some path, and the Add must not live inside the
//     launched closure (that races with Wait).
//
//   - goroutine lifetime: a `go func(){...}()` closure must have a
//     join edge back to its launcher — a Done on a WaitGroup the function
//     Waits on, or a send/close on a channel the function receives from.
//     Launches of named functions and methods (`go c.sender(d)`) are
//     exempt: their lifecycle belongs to the named callee's owner. So is a
//     closure that signals through a captured channel or WaitGroup (one
//     whose root is declared outside the launching body): the object's
//     owner joins it in another method, beyond an intraprocedural view —
//     the simnet scheduler's parked-process handshake is the archetype.
//
// Mutexes and WaitGroups are keyed by the source text of their receiver
// expression (types.ExprString), so `c.mu` in two statements is one lock.
// A key whose root variable is declared inside the analyzed body starts
// unlocked; receivers, parameters, and captured variables start in the
// unknown state, so helpers that are documented to run under a caller's
// lock produce no noise.
var ConcSafety = &Analyzer{
	Name: "concsafety",
	Doc:  "CFG-based lock pairing, blocking-under-lock, WaitGroup balance, and goroutine lifetime checks",
	Run:  runConcSafety,
}

// Lock lattice bits ("may" powerset: union join). The two held bits keep
// provenance: a lock that may merely have been held by the caller at entry
// (lockHeldEntry) must not trip the leak-at-exit report, which is about
// locks this body acquired (lockAcquired) and failed to release on some
// path. Without the split, any early return before the first Lock would
// carry the unknown entry state to the exit join and report a leak.
const (
	lockFree      uint8 = 1 << iota // not held at this point
	lockHeldEntry                   // may be held since function entry (caller's lock)
	lockAcquired                    // may be held via a Lock in this body
)

// WaitGroup lattice bits.
const (
	wgNone uint8 = 1 << iota
	wgAdded
)

// concKind distinguishes what a flow key tracks.
type concKind uint8

const (
	kindMutex concKind = iota
	kindWaitGroup
)

// concKey is one tracked mutex or WaitGroup within a function body.
type concKey struct {
	kind  concKind
	local bool // root variable declared inside the analyzed body
	// firstLock is the position of the first Lock/RLock call on this key
	// inside the body (0 if the body never locks it): the anchor for
	// lock-may-be-held-at-exit reports.
	firstLock token.Pos
}

func runConcSafety(pass *Pass) error {
	for _, fb := range funcBodies(pass.Files) {
		checkConcFunc(pass, fb)
	}
	return nil
}

func checkConcFunc(pass *Pass, fb funcBody) {
	info := pass.TypesInfo
	keys := concKeys(info, fb)
	checkGoStmts(pass, fb)
	if len(keys) == 0 {
		return
	}

	g := BuildCFG(fb.body)
	entry := FlowState[string]{}
	for k, ck := range keys {
		switch {
		case ck.kind == kindMutex && ck.local:
			entry[k] = lockFree
		case ck.kind == kindMutex:
			entry[k] = lockFree | lockHeldEntry
		case ck.local:
			entry[k] = wgNone
		default:
			entry[k] = wgNone | wgAdded
		}
	}
	transfer := func(b *Block, s FlowState[string]) FlowState[string] {
		for _, n := range b.Nodes {
			concTransferNode(info, keys, n, s, nil)
		}
		return s
	}
	ins, reached := Forward(g, entry, transfer)

	// Reporting pass: replay each reachable block once from its converged
	// in-state.
	for _, b := range g.Blocks {
		if !reached[b.Index] || ins[b.Index] == nil {
			continue
		}
		s := ins[b.Index].Clone()
		for _, n := range b.Nodes {
			reportBlockingOps(pass, g, keys, n, s)
			concTransferNode(info, keys, n, s, pass)
		}
	}

	// Exit check: apply deferred calls (in reverse registration order) to
	// the joined exit state, then any mutex this body locked that may
	// still be held leaks out of a path with no Unlock.
	exit := ins[g.Exit.Index]
	if exit == nil {
		return
	}
	s := exit.Clone()
	for i := len(g.Defers) - 1; i >= 0; i-- {
		// A deferred closure runs at return time, so its body's lock
		// effects count here — no FuncLit pruning.
		ast.Inspect(g.Defers[i], func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				applyConcCall(info, keys, call, s, nil)
			}
			return true
		})
	}
	for k, ck := range keys {
		if ck.kind == kindMutex && ck.firstLock != 0 && s[k]&lockAcquired != 0 {
			pass.Reportf(ck.firstLock, "%s acquired here may still be held when the function returns: a path to the exit is missing the Unlock (or a defer)", lockDisplay(k))
		}
	}
}

// concKeys discovers the mutexes and WaitGroups a body touches, with their
// locality. Closure bodies are pruned: each FuncLit is its own unit.
func concKeys(info *types.Info, fb funcBody) map[string]*concKey {
	keys := map[string]*concKey{}
	inspectLeaf(fb.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := info.TypeOf(sel.X)
		key := types.ExprString(sel.X)
		switch {
		case isSyncNamed(recv, "Mutex", "RWMutex"):
			switch sel.Sel.Name {
			case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
			default:
				return true
			}
			if sel.Sel.Name == "RLock" || sel.Sel.Name == "RUnlock" || sel.Sel.Name == "TryRLock" {
				key += "#r"
			}
			ck := keys[key]
			if ck == nil {
				ck = &concKey{kind: kindMutex, local: rootDeclaredIn(info, sel.X, fb.body)}
				keys[key] = ck
			}
			if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && ck.firstLock == 0 {
				ck.firstLock = call.Pos()
			}
		case isSyncNamed(recv, "WaitGroup"):
			if keys[key] == nil {
				keys[key] = &concKey{kind: kindWaitGroup, local: rootDeclaredIn(info, sel.X, fb.body)}
			}
		}
		return true
	})
	return keys
}

// concTransferNode applies one block node's lock/WaitGroup effects to s.
// With a non-nil pass it also reports must-state violations (double lock,
// unlock of unheld, Done-goroutine without Add). DeferStmt nodes have no
// in-place effect: their calls run at exit and are handled there.
func concTransferNode(info *types.Info, keys map[string]*concKey, n ast.Node, s FlowState[string], pass *Pass) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	if gs, ok := n.(*ast.GoStmt); ok {
		if pass != nil {
			reportUnbalancedDone(pass, info, keys, gs, s)
		}
		return
	}
	inspectLeaf(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			applyConcCall(info, keys, call, s, pass)
		}
		return true
	})
}

// applyConcCall updates s for one Lock/Unlock/RLock/RUnlock/Add call.
func applyConcCall(info *types.Info, keys map[string]*concKey, call *ast.CallExpr, s FlowState[string], pass *Pass) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	key := types.ExprString(sel.X)
	read := false
	switch sel.Sel.Name {
	case "RLock", "RUnlock":
		key += "#r"
		read = true
	}
	ck := keys[key]
	if ck == nil {
		return
	}
	switch {
	case ck.kind == kindMutex && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock"):
		// Double-RLock is legal (read locks are shared); double-Lock on
		// every path is a self-deadlock.
		if pass != nil && !read && s[key] != 0 && s[key]&lockFree == 0 {
			pass.Reportf(call.Pos(), "%s.Lock while the lock is already held on every path here: self-deadlock", types.ExprString(sel.X))
		}
		s[key] = lockAcquired
	case ck.kind == kindMutex && (sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock"):
		if pass != nil && s[key] == lockFree {
			pass.Reportf(call.Pos(), "%s.%s without a preceding %s on any path: unlock of an unheld lock", types.ExprString(sel.X), sel.Sel.Name, lockVerb(read))
		}
		s[key] = lockFree
	case ck.kind == kindWaitGroup && sel.Sel.Name == "Add":
		s[key] |= wgAdded
		s[key] &^= wgNone
	}
}

// reportBlockingOps flags channel operations and WaitGroup.Wait executed
// while any tracked mutex may be held.
func reportBlockingOps(pass *Pass, g *CFG, keys map[string]*concKey, n ast.Node, s FlowState[string]) {
	held := ""
	for k, ck := range keys {
		if ck.kind == kindMutex && s[k] != 0 && s[k]&lockFree == 0 {
			if held == "" || lockDisplay(k) < held {
				held = lockDisplay(k)
			}
		}
	}
	if held == "" {
		return
	}
	if stmt, ok := n.(ast.Stmt); ok && g.NonBlocking[stmt] {
		return // comm arm of a select with default: cannot block
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		return // runs at exit, not here
	}
	info := pass.TypesInfo
	inspectLeaf(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "channel send while %s is held: the lock blocks every other goroutine until a receiver arrives", held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.OpPos, "channel receive while %s is held: the lock blocks every other goroutine until a sender arrives", held)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Wait" && isSyncNamed(info.TypeOf(sel.X), "WaitGroup") {
				pass.Reportf(n.Pos(), "%s.Wait while %s is held: goroutines that need the lock to finish can never let Wait return", types.ExprString(sel.X), held)
			}
		}
		return true
	})
}

// reportUnbalancedDone checks a go statement whose closure calls wg.Done:
// on every path reaching the launch, some wg.Add must already have run,
// and the Add must not be inside the closure itself.
func reportUnbalancedDone(pass *Pass, info *types.Info, keys map[string]*concKey, gs *ast.GoStmt, s FlowState[string]) {
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !isSyncNamed(info.TypeOf(sel.X), "WaitGroup") {
			return true
		}
		key := types.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Done":
			if ck := keys[key]; ck != nil && s[key] == wgNone {
				pass.Reportf(call.Pos(), "goroutine calls %s.Done but no %s.Add precedes the launch on any path: Wait can return before this goroutine runs", key, key)
			}
		case "Add":
			if ck := keys[key]; ck != nil {
				pass.Reportf(call.Pos(), "%s.Add inside the launched goroutine races with %s.Wait: call Add before the go statement", key, key)
			}
		}
		return true
	})
}

// checkGoStmts enforces the goroutine-lifetime rule on every go statement
// directly inside this body (closures are their own units): a launched
// closure needs a join edge — Done on a WaitGroup this body Waits on, or a
// send/close on a channel this body receives from. Named-function and
// method launches are exempt; their lifecycle belongs to the callee's
// owner.
func checkGoStmts(pass *Pass, fb funcBody) {
	info := pass.TypesInfo
	var gos []*ast.GoStmt
	inspectLeaf(fb.body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, gs)
			// Keep walking: the closure's own go statements belong to the
			// closure's unit, which inspectLeaf already prunes.
		}
		return true
	})
	if len(gos) == 0 {
		return
	}

	// Join points offered by the enclosing body: WaitGroups it Waits on
	// and channels it receives from (plain receive, range, select arm).
	waits := map[string]bool{}
	recvs := map[string]bool{}
	ast.Inspect(fb.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Wait" && isSyncNamed(info.TypeOf(sel.X), "WaitGroup") {
				waits[types.ExprString(sel.X)] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				recvs[types.ExprString(ast.Unparen(n.X))] = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(n.X)) {
				recvs[types.ExprString(ast.Unparen(n.X))] = true
			}
		}
		return true
	})

	for _, gs := range gos {
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			continue
		}
		joined := false
		// A signal through a captured object (root declared outside this
		// body) is joined by the object's owner in another method; only
		// signals on body-local objects are decidable here, so the local
		// ones must land in a Wait/receive of this body and the captured
		// ones count as joined outright.
		external := func(e ast.Expr) bool { return !rootDeclaredIn(info, e, fb.body) }
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "Done" && isSyncNamed(info.TypeOf(sel.X), "WaitGroup") &&
					(waits[types.ExprString(sel.X)] || external(sel.X)) {
					joined = true
				}
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
					arg := ast.Unparen(n.Args[0])
					if isChanType(info.TypeOf(arg)) && (recvs[types.ExprString(arg)] || external(arg)) {
						joined = true
					}
				}
			case *ast.SendStmt:
				ch := ast.Unparen(n.Chan)
				if recvs[types.ExprString(ch)] || external(ch) {
					joined = true
				}
			}
			return !joined
		})
		if !joined {
			pass.Reportf(gs.Pos(), "goroutine closure has no join edge back to its launcher (no Done on a Waited WaitGroup, no send/close on a received channel): it can outlive this function")
		}
	}
}

// isSyncNamed reports whether t (or its pointee) is one of the named sync
// package types.
func isSyncNamed(t types.Type, names ...string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// rootDeclaredIn reports whether the leftmost identifier of a selector
// chain resolves to a variable declared inside body — a function-local
// mutex/WaitGroup, as opposed to a receiver field, parameter, or captured
// variable.
func rootDeclaredIn(info *types.Info, e ast.Expr, body *ast.BlockStmt) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := identObj(info, x)
			return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() < body.End()
		default:
			return false
		}
	}
}

// lockDisplay strips the read-lock marker for messages.
func lockDisplay(key string) string {
	if len(key) > 2 && key[len(key)-2:] == "#r" {
		return key[:len(key)-2] + " (read)"
	}
	return key
}

func lockVerb(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}
