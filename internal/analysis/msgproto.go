package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MsgProto checks the module's wire protocols at two levels.
//
// Codec symmetry: every encoder/decoder pair over one wire format (a
// "group") must touch the same field sequence with the same widths in the
// same order — the repart migration codec, the stencil halo and FT
// frames, and the mmps packet header are all hand-rolled byte layouts
// whose asymmetry silently corrupts rows instead of failing loudly.
// Functions join a group by name (Encode*/Decode*/Append*/Parse* with
// Into/To/From suffixes stripped; a bare encode/decode method takes its
// receiver type's name) or explicitly via //netpart:wire <group>
// <encode|decode>. Each function's byte-level operations are abstracted
// into a wire shape — u16/u32/u64 loads and stores, single-byte moves,
// blob copies, and nested-codec calls, each with a normalized offset and
// a repeated flag for loop bodies — and every shape in a group is
// compared op-by-op against the group's canonical shape. Groups with
// only one side present are skipped (helpers are not a protocol), as are
// shapes that merely delegate to another codec of the same group.
//
// Lockstep protocols: a function annotated //netpart:lockstep declares
// that its transport sends and receives form one protocol round. If the
// function splits on a rank test (if rank != 0 {...hub client...} and a
// root path, as in repart's Engine.Round), the two branches must mirror
// each other: every wire group sent on one side is received on the
// other, no branch sends to the rank it itself holds, and the two
// branches must not both start by receiving (a mutual-wait deadlock). A
// function without a rank split is peer-symmetric SPMD code (the halo
// exchange): every group it sends it must also receive, because all
// ranks execute the same round.
var MsgProto = &Analyzer{
	Name: "msgproto",
	Doc:  "checks EncodeX/DecodeX wire-shape symmetry and lockstep send/recv matching",
	Run:  runMsgProto,
}

func runMsgProto(pass *Pass) error {
	ip := pass.Inter
	if ip == nil {
		return nil
	}
	wi := ip.wireIndexOf()
	for _, fd := range enclosingFuncDecls(pass.Files) {
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		if wf := wi.fns[fn]; wf != nil {
			checkWireShape(pass, wi, wf)
		}
		if funcHasDirective(fd, "netpart:lockstep") {
			// model=<name> protocols opt out of syntactic pairing: their
			// traffic is data-dependent and verified against a builtin
			// model by netpartverify instead.
			if lockstepModel(fd) == "" {
				checkLockstep(pass, ip, wi, fd)
			}
		}
	}
	return nil
}

// --- wire shapes ---

// wireOp is one abstract byte-level operation of a codec.
type wireOp struct {
	Kind string // "byte", "u16", "u32", "u64", "blob", "group:<name>"
	// Off is the normalized offset within the op's base run ("-" for
	// nested-codec ops, "?" when the offset expression does not fold).
	Off string
	Rep bool // inside a loop
	Pos token.Pos

	baseKey string
	k       int
	konst   bool
	noOff   bool
}

func (op *wireOp) render() string {
	s := op.Kind
	if op.Rep {
		s = "repeated " + s
	}
	if !op.noOff && op.Off != "?" {
		if strings.HasPrefix(op.Off, "-") {
			s += " at " + op.Off
		} else {
			s += " at +" + op.Off
		}
	}
	return s
}

// wireFn is one codec function with its extracted shape.
type wireFn struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Group string
	Side  string // "encode" or "decode"
	Ops   []*wireOp
	// Alias marks delegating shapes (a single nested-codec op of the own
	// group) and empty shapes; they are excluded from comparison.
	Alias bool
}

// wireIndex is the module-wide codec collection.
type wireIndex struct {
	fns    map[*types.Func]*wireFn
	groups map[string][]*wireFn
}

// wireIndexOf builds (once) the codec index over the loaded module.
func (ip *Interproc) wireIndexOf() *wireIndex {
	if ip.wire != nil {
		return ip.wire
	}
	wi := &wireIndex{fns: map[*types.Func]*wireFn{}, groups: map[string][]*wireFn{}}
	ip.wire = wi
	// Pass 1: classify codec candidates by directive or naming convention,
	// so pass 2 can recognize nested-codec calls across packages.
	for _, pkg := range ip.pkgs {
		for _, fd := range enclosingFuncDecls(pkg.Files) {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			group, side, ok := codecIdentity(fd, fn)
			if !ok {
				continue
			}
			wf := &wireFn{Fn: fn, Decl: fd, Pkg: pkg, Group: group, Side: side}
			wi.fns[fn] = wf
		}
	}
	// Pass 2: extract shapes; functions with no byte-level ops are name
	// coincidences (parse/append helpers), not codecs.
	for fn, wf := range wi.fns {
		_ = fn
		extractWireShape(ip, wi, wf)
	}
	for _, wf := range wi.fns {
		if wf.Alias {
			continue
		}
		wi.groups[wf.Group] = append(wi.groups[wf.Group], wf)
	}
	for _, fns := range wi.groups {
		sort.Slice(fns, func(i, j int) bool { return fns[i].Decl.Pos() < fns[j].Decl.Pos() })
	}
	return wi
}

// codecIdentity derives (group, side) from a //netpart:wire directive or
// the function's name: Encode*/Append* write, Decode*/Parse* read, with
// Into/To/From suffixes stripped; an empty remainder (encode/encodeTo
// methods) takes the receiver type's name.
func codecIdentity(fd *ast.FuncDecl, fn *types.Func) (group, side string, ok bool) {
	if args := directiveRest(fd.Doc, "netpart:wire"); args != "" {
		parts := strings.Fields(args)
		if len(parts) == 2 && (parts[1] == "encode" || parts[1] == "decode") {
			return strings.ToLower(parts[0]), parts[1], true
		}
		return "", "", false
	}
	name := strings.ToLower(fn.Name())
	for _, p := range [...]struct{ prefix, side string }{
		{"encode", "encode"}, {"append", "encode"},
		{"decode", "decode"}, {"parse", "decode"},
	} {
		rest, found := strings.CutPrefix(name, p.prefix)
		if !found {
			continue
		}
		for _, suf := range [...]string{"into", "to", "from"} {
			rest = strings.TrimSuffix(rest, suf)
		}
		if rest == "" {
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				t := sig.Recv().Type()
				if p, isPtr := t.(*types.Pointer); isPtr {
					t = p.Elem()
				}
				if named, isNamed := t.(*types.Named); isNamed {
					rest = strings.ToLower(named.Obj().Name())
				}
			}
		}
		if rest == "" {
			return "", "", false
		}
		return rest, p.side, true
	}
	return "", "", false
}

// directiveRest returns the text after //netpart:<name> in a comment
// group, or "".
func directiveRest(cg *ast.CommentGroup, directive string) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if rest, ok := strings.CutPrefix(text, directive+" "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// extractWireShape walks one codec body and abstracts its byte-level
// operations, pruning guarded slow paths (length validation, buffer
// growth) and skipping expressions feeding fmt/errors calls (error
// messages quote fields without being part of the wire layout).
func extractWireShape(ip *Interproc, wi *wireIndex, wf *wireFn) {
	info := wf.Pkg.Info
	var ops []*wireOp
	written := map[*ast.IndexExpr]bool{}
	var walk func(n ast.Node, guarded bool, loop bool)
	walk = func(root ast.Node, guarded bool, loop bool) {
		if root == nil {
			return
		}
		ast.Inspect(root, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.IfStmt:
				if !guarded && isGuardedSlowPath(x) {
					if x.Init != nil {
						walk(x.Init, guarded, loop)
					}
					walk(x.Cond, guarded, loop)
					walk(x.Body, true, loop)
					walk(x.Else, guarded, loop)
					return false
				}
			case *ast.ForStmt:
				walk(x.Init, guarded, loop)
				walk(x.Cond, guarded, loop)
				walk(x.Post, guarded, loop)
				walk(x.Body, guarded, true)
				return false
			case *ast.RangeStmt:
				walk(x.X, guarded, loop)
				walk(x.Body, guarded, true)
				return false
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isByteIndex(info, idx) {
						written[idx] = true
						if !guarded {
							ops = append(ops, byteOp(info, idx, loop))
						}
					}
				}
			case *ast.IndexExpr:
				if !guarded && !written[x] && isByteIndex(info, x) {
					ops = append(ops, byteOp(info, x, loop))
				}
				return true
			case *ast.CallExpr:
				if op, skipArgs := wireCallOp(ip, wi, wf, info, x, loop); op != nil || skipArgs {
					if op != nil && !guarded {
						ops = append(ops, op)
					}
					if skipArgs {
						return false
					}
				}
			}
			return true
		})
	}
	walk(wf.Decl.Body, false, false)
	finishWireShape(wf, ops)
}

// byteOp abstracts a single-byte slice access.
func byteOp(info *types.Info, idx *ast.IndexExpr, loop bool) *wireOp {
	op := &wireOp{Kind: "byte", Rep: loop, Pos: idx.Pos()}
	op.baseKey, op.k, op.konst = foldOffset(info, idx.Index)
	return op
}

// isByteIndex reports whether the index expression reads or writes one
// byte of a byte slice or array.
func isByteIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	b, ok := elem.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// wireCallOp abstracts one call inside a codec body: fixed-width
// binary.*Endian loads/stores, blob copies, nested-codec calls, and
// byte-array conversions. skipArgs requests that the call's argument
// subtree not be scanned (fmt/errors calls, nested codecs).
func wireCallOp(ip *Interproc, wi *wireIndex, wf *wireFn, info *types.Info, call *ast.CallExpr, loop bool) (op *wireOp, skipArgs bool) {
	// Conversion to a byte array ([4]byte(buf[0:4])): a blob read.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if arr, isArr := tv.Type.Underlying().(*types.Array); isArr {
			if b, isBasic := arr.Elem().Underlying().(*types.Basic); isBasic && (b.Kind() == types.Byte || b.Kind() == types.Uint8) {
				op = &wireOp{Kind: "blob", Rep: loop, Pos: call.Pos()}
				op.baseKey, op.k, op.konst = foldSliceLow(info, call.Args[0])
				return op, true
			}
		}
		return nil, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(info, id) {
		if id.Name == "copy" && len(call.Args) == 2 {
			op = &wireOp{Kind: "blob", Rep: loop, Pos: call.Pos()}
			op.baseKey, op.k, op.konst = foldSliceLow(info, call.Args[0])
			return op, true
		}
		return nil, false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, false
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch pkgPath {
	case "fmt", "errors":
		return nil, true // message text, not wire layout
	case "encoding/binary":
		width := fixedWidthKind(fn.Name())
		if width == "" {
			return nil, false
		}
		op = &wireOp{Kind: width, Rep: loop, Pos: call.Pos()}
		if len(call.Args) > 0 {
			op.baseKey, op.k, op.konst = foldSliceLow(info, call.Args[0])
		}
		return op, true
	}
	if nested := wi.fns[fn]; nested != nil {
		return &wireOp{Kind: "group:" + nested.Group, Rep: loop, Pos: call.Pos(), noOff: true}, true
	}
	return nil, false
}

// fixedWidthKind maps binary.*Endian method names to op kinds.
func fixedWidthKind(name string) string {
	switch name {
	case "Uint16", "PutUint16":
		return "u16"
	case "Uint32", "PutUint32":
		return "u32"
	case "Uint64", "PutUint64":
		return "u64"
	}
	return ""
}

// foldOffset folds an offset expression into (base, constant): a plain
// constant ("" base), an identifier plus constant (running-offset
// idiom), or unfoldable ("?").
func foldOffset(info *types.Info, e ast.Expr) (baseKey string, k int, konst bool) {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			return "", int(v), true
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, 0, true
	case *ast.SelectorExpr:
		return exprText(x), 0, true
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			lb, lk, lok := foldOffset(info, x.X)
			rb, rk, rok := foldOffset(info, x.Y)
			if lok && rok {
				switch {
				case lb == "":
					return rb, lk + rk, true
				case rb == "":
					return lb, lk + rk, true
				}
			}
		}
	}
	return "?", 0, false
}

// foldSliceLow folds the low bound of a slice expression argument
// (buf[off:] → off, buf → 0).
func foldSliceLow(info *types.Info, e ast.Expr) (string, int, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		if x.Low == nil {
			return "", 0, true
		}
		return foldOffset(info, x.Low)
	case *ast.Ident, *ast.SelectorExpr:
		return "", 0, true
	}
	return "?", 0, false
}

// finishWireShape normalizes offsets (each run of ops sharing a base is
// rebased on its first op, so constant layouts and running-offset
// layouts compare equal), strips trailing blob payloads (the encode side
// copies the payload, the decode side reslices it — both are tails, not
// fields), and marks alias/empty shapes.
func finishWireShape(wf *wireFn, ops []*wireOp) {
	base, first := "\x00", 0
	for _, op := range ops {
		if op.noOff {
			op.Off = "-"
			base = "\x00"
			continue
		}
		if !op.konst {
			op.Off = "?"
			base = "\x00"
			continue
		}
		if op.baseKey != base {
			base = op.baseKey
			first = op.k
		}
		op.Off = itoa(op.k - first)
	}
	for len(ops) > 0 && ops[len(ops)-1].Kind == "blob" {
		ops = ops[:len(ops)-1]
	}
	wf.Ops = ops
	if len(ops) == 0 {
		wf.Alias = true
		return
	}
	if len(ops) == 1 && ops[0].Kind == "group:"+wf.Group {
		wf.Alias = true
	}
}

// checkWireShape compares one codec's shape against its group's
// canonical shape (the earliest-declared encoder). Reported in the
// package declaring the deviating codec; the canonical function itself
// never reports, so each asymmetry surfaces exactly once.
func checkWireShape(pass *Pass, wi *wireIndex, wf *wireFn) {
	if wf.Alias {
		return
	}
	group := wi.groups[wf.Group]
	var enc, dec bool
	for _, g := range group {
		enc = enc || g.Side == "encode"
		dec = dec || g.Side == "decode"
	}
	if !enc || !dec {
		return // helper name coincidence, not a protocol
	}
	canon := group[0]
	for _, g := range group {
		if g.Side == "encode" {
			canon = g
			break
		}
	}
	if wf == canon {
		return
	}
	a, b := canon.Ops, wf.Ops
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !wireOpsMatch(a[i], b[i]) {
			pass.Reportf(b[i].Pos,
				"wire group %q: %s %ss %s at step %d where %s %ss %s; encoder and decoder must touch the same field sequence",
				wf.Group, funcLabel(wf.Fn), sideVerb(wf.Side), b[i].render(), i+1,
				funcLabel(canon.Fn), sideVerb(canon.Side), a[i].render())
			return
		}
	}
	if len(a) != len(b) {
		pass.Reportf(wf.Decl.Pos(),
			"wire group %q: %s has %d field operations but %s has %d; encoder and decoder must touch the same field sequence",
			wf.Group, funcLabel(wf.Fn), len(b), funcLabel(canon.Fn), len(a))
	}
}

func sideVerb(side string) string {
	if side == "encode" {
		return "write"
	}
	return "read"
}

// wireOpsMatch compares two abstract ops; unfoldable offsets act as
// wildcards.
func wireOpsMatch(a, b *wireOp) bool {
	if a.Kind != b.Kind || a.Rep != b.Rep {
		return false
	}
	if a.Off == "?" || b.Off == "?" {
		return true
	}
	return a.Off == b.Off
}

// --- lockstep protocols ---

// commOp is one transport operation in a //netpart:lockstep function.
type commOp struct {
	dir    string // "send" or "recv"
	group  string // wire group of the payload, "?" unknown
	target int64  // constant destination rank (sends), -1 otherwise
	pos    token.Pos
}

// checkLockstep verifies a lockstep protocol function: rank-split hubs
// must mirror sends/receives across the split, never send to their own
// rank constant, and not begin with a mutual receive; peer-symmetric
// bodies must receive every group they send.
func checkLockstep(pass *Pass, ip *Interproc, wi *wireIndex, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ops := collectCommOps(info, wi, fd.Body)
	if len(ops) == 0 {
		pass.Reportf(fd.Pos(), "//netpart:lockstep function %s has no transport sends or receives", fd.Name.Name)
		return
	}
	if split := rankSplit(info, fd.Body, ops); split != nil {
		checkHubSplit(pass, fd, split)
		return
	}
	// Peer-symmetric SPMD round: every group sent must also be received.
	sent, recvd := groupSet(ops, "send"), groupSet(ops, "recv")
	for _, g := range sortedKeys(sent) {
		if _, ok := recvd[g]; !ok {
			pass.Reportf(sent[g], "lockstep round sends wire group %q but never receives it; peer ranks run the same code, so the matching receive is missing", g)
		}
	}
	for _, g := range sortedKeys(recvd) {
		if _, ok := sent[g]; !ok {
			pass.Reportf(recvd[g], "lockstep round receives wire group %q but never sends it; peer ranks run the same code, so the matching send is missing", g)
		}
	}
}

// groupSet collects the first op position per known group in one
// direction.
func groupSet(ops []*commOp, dir string) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, op := range ops {
		if op.dir != dir || op.group == "?" {
			continue
		}
		if _, ok := out[op.group]; !ok {
			out[op.group] = op.pos
		}
	}
	return out
}

func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// split is a rank-test hub: branch a runs when rank ==/!= the constant,
// branch b is the complementary path.
type split struct {
	rankConst int64 // the constant the rank is compared against
	aHasConst bool  // branch a holds rank == rankConst
	a, b      []*commOp
}

// rankSplit finds a top-level `if <expr> ==/!= <const>` whose two sides
// both perform transport operations — the hub shape of Engine.Round. The
// false path is the else branch, or the rest of the function when the
// true branch returns.
func rankSplit(info *types.Info, body *ast.BlockStmt, ops []*commOp) *split {
	for i, stmt := range body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok {
			continue
		}
		bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			continue
		}
		c, ok := intConst(info, bin.Y)
		if !ok {
			if c, ok = intConst(info, bin.X); !ok {
				continue
			}
		}
		aOps := opsWithin(ops, ifs.Body.Pos(), ifs.Body.End())
		var bOps []*commOp
		if ifs.Else != nil {
			bOps = opsWithin(ops, ifs.Else.Pos(), ifs.Else.End())
		} else if endsInReturn(ifs.Body) {
			for _, rest := range body.List[i+1:] {
				bOps = append(bOps, opsWithin(ops, rest.Pos(), rest.End())...)
			}
		}
		if len(aOps) == 0 || len(bOps) == 0 {
			continue
		}
		return &split{rankConst: c, aHasConst: bin.Op == token.EQL, a: aOps, b: bOps}
	}
	return nil
}

func endsInReturn(body *ast.BlockStmt) bool {
	for i := len(body.List) - 1; i >= 0; i-- {
		switch body.List[i].(type) {
		case *ast.EmptyStmt:
			continue
		case *ast.ReturnStmt:
			return true
		default:
			return false
		}
	}
	return false
}

func intConst(info *types.Info, e ast.Expr) (int64, bool) {
	if tv, ok := info.Types[ast.Unparen(e)]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			return v, true
		}
	}
	return 0, false
}

func opsWithin(ops []*commOp, lo, hi token.Pos) []*commOp {
	var out []*commOp
	for _, op := range ops {
		if op.pos >= lo && op.pos < hi {
			out = append(out, op)
		}
	}
	return out
}

// checkHubSplit verifies the two sides of a rank-split protocol round.
func checkHubSplit(pass *Pass, fd *ast.FuncDecl, sp *split) {
	aSent, aRecvd := groupSet(sp.a, "send"), groupSet(sp.a, "recv")
	bSent, bRecvd := groupSet(sp.b, "send"), groupSet(sp.b, "recv")
	reportPair := func(from, to map[string]token.Pos, dir, other string) {
		for _, g := range sortedKeys(from) {
			if _, ok := to[g]; !ok {
				pass.Reportf(from[g], "lockstep rank split in %s: wire group %q is %s on one side but never %s on the other; unmatched traffic deadlocks the round", fd.Name.Name, g, dir, other)
			}
		}
	}
	reportPair(aSent, bRecvd, "sent", "received")
	reportPair(aRecvd, bSent, "received", "sent")
	reportPair(bSent, aRecvd, "sent", "received")
	reportPair(bRecvd, aSent, "received", "sent")

	// Send-to-self: the branch that holds rank == rankConst must not send
	// to that constant.
	self := sp.b
	if sp.aHasConst {
		self = sp.a
	}
	for _, op := range self {
		if op.dir == "send" && op.target == sp.rankConst {
			pass.Reportf(op.pos, "lockstep rank split in %s: rank %d sends to itself; the self rank's data should be used in place, not routed through the transport", fd.Name.Name, sp.rankConst)
		}
	}

	// Mutual wait: both sides must not begin the round by receiving.
	if sp.a[0].dir == "recv" && sp.b[0].dir == "recv" {
		pass.Reportf(sp.a[0].pos, "lockstep rank split in %s: both sides receive before sending, so every rank waits on the other — the round deadlocks", fd.Name.Name)
	}
}

// collectCommOps finds the transport operations of one function body in
// source order: method calls named Send(rank, payload) and
// Recv(rank). The payload's wire group is resolved through the codec
// index — directly for Send(x, EncodeY(...)), through the most recent
// assignment for Send(x, msg), and through the later decode call for
// buf := Recv(x).
func collectCommOps(info *types.Info, wi *wireIndex, body *ast.BlockStmt) []*commOp {
	var ops []*commOp
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case sel.Sel.Name == "Send" && len(call.Args) == 2:
			op := &commOp{dir: "send", pos: call.Pos(), target: -1}
			if t, ok := intConst(info, call.Args[0]); ok {
				op.target = t
			}
			op.group = payloadGroup(info, wi, body, call.Args[1], call.Pos())
			ops = append(ops, op)
		case sel.Sel.Name == "Recv" && len(call.Args) == 1:
			op := &commOp{dir: "recv", pos: call.Pos(), target: -1}
			op.group = recvGroup(info, wi, body, call)
			ops = append(ops, op)
		}
		return true
	})
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// payloadGroup resolves the wire group of a send payload.
func payloadGroup(info *types.Info, wi *wireIndex, body *ast.BlockStmt, arg ast.Expr, before token.Pos) string {
	if g := exprGroup(info, wi, arg); g != "" {
		return g
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return "?"
	}
	obj := identObj(info, id)
	if obj == nil {
		return "?"
	}
	// The most recent assignment to the payload variable before the send.
	group := "?"
	var latest token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= before || as.Pos() < latest {
			return true
		}
		for i, lhs := range as.Lhs {
			if identObj(info, lhs) != obj || i >= len(as.Rhs) {
				continue
			}
			if g := deepExprGroup(info, wi, as.Rhs[i]); g != "" {
				group = g
				latest = as.Pos()
			}
		}
		return true
	})
	return group
}

// recvGroup resolves the wire group a received buffer is decoded as: the
// first later codec call taking the receive's result variable.
func recvGroup(info *types.Info, wi *wireIndex, body *ast.BlockStmt, recv *ast.CallExpr) string {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || obj != nil {
			return obj == nil
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) == recv && i < len(as.Lhs) {
				obj = identObj(info, as.Lhs[i])
			}
		}
		return true
	})
	if obj == nil {
		return "?"
	}
	group := "?"
	ast.Inspect(body, func(n ast.Node) bool {
		if group != "?" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= recv.Pos() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		wf := wi.fns[fn]
		if wf == nil {
			return true
		}
		for _, a := range call.Args {
			root := a
			for {
				switch x := ast.Unparen(root).(type) {
				case *ast.SliceExpr:
					root = x.X
					continue
				case *ast.IndexExpr:
					root = x.X
					continue
				}
				break
			}
			if identObj(info, root) == obj {
				group = wf.Group
				return false
			}
		}
		return true
	})
	return group
}

// exprGroup returns the wire group of a direct codec call expression.
func exprGroup(info *types.Info, wi *wireIndex, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	if fn := calleeFunc(info, call); fn != nil {
		if wf := wi.fns[fn]; wf != nil {
			return wf.Group
		}
	}
	return ""
}

// deepExprGroup finds a codec call anywhere inside an expression
// (handles msg := append(hdr, EncodeX(...)...) style compositions).
func deepExprGroup(info *types.Info, wi *wireIndex, e ast.Expr) string {
	group := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if group != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(info, call); fn != nil {
				if wf := wi.fns[fn]; wf != nil {
					group = wf.Group
					return false
				}
			}
		}
		return true
	})
	return group
}
