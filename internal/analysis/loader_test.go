package analysis_test

import (
	"testing"

	"netpart/internal/analysis"
)

// TestModuleLoadsAndIsLintClean loads the whole module through the
// source-level loader and asserts two invariants at once: every package
// typechecks (the loader is trustworthy), and the full analyzer suite
// reports zero violations on the tree as committed — the same gate
// cmd/netpartlint enforces in CI, here kept under plain `go test`.
func TestModuleLoadsAndIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(root, modPath)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 25 {
		t.Fatalf("loaded %d packages, expected the full module (>= 25)", len(pkgs))
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		seen[pkg.Path] = true
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: typecheck: %v", pkg.Path, terr)
		}
	}
	for _, must := range []string{"netpart", "netpart/internal/core", "netpart/internal/obs", "netpart/internal/mmps"} {
		if !seen[must] {
			t.Errorf("package %s missing from ./... expansion", must)
		}
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Check(pkg, analysis.Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("committed tree must be lint-clean: %s", d)
		}
	}
}
