package analysis_test

import (
	"strings"
	"testing"

	"netpart/internal/analysis"
)

// TestModuleLoadsAndIsLintClean loads the whole module through the
// source-level loader and asserts two invariants at once: every package
// typechecks (the loader is trustworthy), and the full analyzer suite
// reports zero violations on the tree as committed — the same gate
// cmd/netpartlint enforces in CI, here kept under plain `go test`.
func TestModuleLoadsAndIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(root, modPath)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 25 {
		t.Fatalf("loaded %d packages, expected the full module (>= 25)", len(pkgs))
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		seen[pkg.Path] = true
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: typecheck: %v", pkg.Path, terr)
		}
	}
	for _, must := range []string{"netpart", "netpart/internal/core", "netpart/internal/obs", "netpart/internal/mmps"} {
		if !seen[must] {
			t.Errorf("package %s missing from ./... expansion", must)
		}
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Check(pkg, analysis.Analyzers())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("committed tree must be lint-clean: %s", d)
		}
	}
}

// TestModuleIsAllocfreeClean is the interprocedural zero-alloc gate run
// whole-tree under plain `go test`: every //netpart:hotpath function in
// the module must prove allocation-free through its entire call tree, and
// the wire/lockstep protocols must be symmetric. The hotpath-count floor
// keeps the test honest — if the annotations were ever stripped, the
// analyzers would pass vacuously and this fails instead.
func TestModuleIsAllocfreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	root, modPath, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(root, modPath)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	subset := []*analysis.Analyzer{analysis.AllocFree, analysis.MsgProto}
	hot := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if strings.HasPrefix(c.Text, "//netpart:hotpath") {
						hot++
					}
				}
			}
		}
		diags, err := analysis.Check(pkg, subset)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("hot paths must stay provably allocation-free: %s", d)
		}
	}
	if hot < 5 {
		t.Errorf("found %d //netpart:hotpath annotations module-wide, want >= 5 (gate would be vacuous)", hot)
	}
}
