// Package protomc is netpartverify's bounded explicit-state model checker
// for the repository's lockstep communication protocols: the stencil halo
// exchange, the repartitioning decision round and row migration, and the
// fault-tolerant recovery barrier.
//
// msgproto (internal/analysis) checks send/recv pairing syntactically; it
// cannot decide whether a *reachable interleaving* of the ranks deadlocks,
// loses a message, or mismatches a wire format. protomc closes that gap
// with the classic three-stage pipeline of explicit-state protocol
// verification:
//
//  1. A protocol is a per-rank program over a symbolic world size P: sends
//     and receives whose peers are affine expressions in (rank, P, loop
//     variables), guarded by comparisons over the same expressions, inside
//     loops whose bounds are affine in P. Programs come from two sources:
//     extracted from //netpart:lockstep source code (extract.go), or built
//     programmatically for protocols whose communication structure is
//     data-dependent (the Migrator's set-difference spans, the FT recovery
//     barrier) — in which case the very runtime functions that compute the
//     real traffic (repart.Owners et al.) compute the model's.
//  2. Instantiate fixes a concrete P (the checker's bound, P ≤ 5 by
//     default) and flattens each rank's program into a finite instruction
//     DAG: guards evaluate concretely, P-bounded loops unroll exactly, and
//     data-dependent branches or unknown-bound loops become bounded
//     nondeterministic choices.
//  3. Check exhaustively explores every interleaving of the rank programs
//     under a chosen transport semantics — rendezvous (a send blocks until
//     its receiver is at the matching receive) or bounded-buffer (the mmps
//     contract: per-(src,dst) FIFO channels of capacity K; sends block
//     only when the channel is full) — with breadth-first search, canonical
//     state hashing, and symmetry reduction over ranks. Violations come
//     back as minimal concrete schedules, replayable through the simnet
//     discrete-event simulator (replay.go).
//
// Checked properties: deadlock freedom (some transition is enabled until
// every rank terminates), message conservation (every channel empty when
// all ranks terminate), wire-group agreement (a receive that decodes group
// g never consumes a message of group h ≠ g), peer validity (no send to
// self or outside [0,P)), and buffer sufficiency (the maximum in-flight
// message count per channel over all reachable states, which is the
// capacity a bounded transport needs to never backpressure this protocol).
// Termination of a round is structural: instantiated programs are acyclic,
// so with deadlock freedom every schedule reaches the all-done state.
package protomc

import (
	"fmt"
	"sort"
	"strings"
)

// RankExpr is an affine integer expression over the executing rank, the
// world size P, and enclosing loop variables: Rank·rank + P·p + Σ Vars[v]·v
// + C. The zero value is the constant 0.
type RankExpr struct {
	Rank int // coefficient of the executing rank
	P    int // coefficient of the world size
	C    int // constant term
	Vars map[string]int
}

// Konst returns the constant expression c.
func Konst(c int) RankExpr { return RankExpr{C: c} }

// Self returns the expression rank+c.
func Self(c int) RankExpr { return RankExpr{Rank: 1, C: c} }

// World returns the expression P+c.
func World(c int) RankExpr { return RankExpr{P: 1, C: c} }

// Var returns the expression v+c for a loop variable v.
func Var(v string, c int) RankExpr { return RankExpr{C: c, Vars: map[string]int{v: 1}} }

// Add returns e+o.
func (e RankExpr) Add(o RankExpr) RankExpr {
	out := RankExpr{Rank: e.Rank + o.Rank, P: e.P + o.P, C: e.C + o.C}
	for v, k := range e.Vars {
		out.addVar(v, k)
	}
	for v, k := range o.Vars {
		out.addVar(v, k)
	}
	return out
}

// Neg returns -e.
func (e RankExpr) Neg() RankExpr {
	out := RankExpr{Rank: -e.Rank, P: -e.P, C: -e.C}
	for v, k := range e.Vars {
		out.addVar(v, -k)
	}
	return out
}

func (e *RankExpr) addVar(v string, k int) {
	if k == 0 {
		return
	}
	if e.Vars == nil {
		e.Vars = map[string]int{}
	}
	if e.Vars[v] += k; e.Vars[v] == 0 {
		delete(e.Vars, v)
	}
}

// Eval resolves the expression at a concrete rank, world size, and loop
// environment. ok is false when a loop variable is unbound.
func (e RankExpr) Eval(rank, p int, env map[string]int) (int, bool) {
	v := e.Rank*rank + e.P*p + e.C
	for name, k := range e.Vars {
		val, ok := env[name]
		if !ok {
			return 0, false
		}
		v += k * val
	}
	return v, true
}

// String renders the expression for diagnostics ("rank+1", "P-1", "2").
func (e RankExpr) String() string {
	var b strings.Builder
	term := func(k int, name string) {
		if k == 0 {
			return
		}
		switch {
		case b.Len() == 0 && k == 1:
			b.WriteString(name)
		case b.Len() == 0 && k == -1:
			b.WriteString("-" + name)
		case b.Len() == 0:
			fmt.Fprintf(&b, "%d%s", k, name)
		case k == 1:
			b.WriteString("+" + name)
		case k == -1:
			b.WriteString("-" + name)
		case k > 0:
			fmt.Fprintf(&b, "+%d%s", k, name)
		default:
			fmt.Fprintf(&b, "%d%s", k, name)
		}
	}
	term(e.Rank, "rank")
	term(e.P, "P")
	vars := make([]string, 0, len(e.Vars))
	for v := range e.Vars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		term(e.Vars[v], v)
	}
	switch {
	case b.Len() == 0:
		return fmt.Sprint(e.C)
	case e.C > 0:
		fmt.Fprintf(&b, "+%d", e.C)
	case e.C < 0:
		fmt.Fprintf(&b, "%d", e.C)
	}
	return b.String()
}

// CmpOp is a comparison operator in a guard.
type CmpOp int

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	return [...]string{"==", "!=", "<", "<=", ">", ">="}[op]
}

// GuardKind discriminates Guard nodes.
type GuardKind int

const (
	// GTrue always holds (the zero value's kind is GTrue so the zero Guard
	// is "unguarded").
	GTrue GuardKind = iota
	// GCmp compares L op R.
	GCmp
	// GAnd holds when every subguard holds.
	GAnd
	// GOr holds when any subguard holds.
	GOr
	// GNot inverts its single subguard.
	GNot
	// GUnknown is a data-dependent condition the extractor could not fold:
	// instantiation explores both branches.
	GUnknown
	// GMod holds when L mod M == R (M a positive constant) — the parity
	// tests of odd/even-ordered exchanges.
	GMod
)

// Guard is a boolean condition over rank expressions.
type Guard struct {
	Kind GuardKind
	Op   CmpOp
	L, R RankExpr
	M    int // GMod modulus
	Subs []Guard
}

// Cmp builds the comparison guard l op r.
func Cmp(l RankExpr, op CmpOp, r RankExpr) Guard { return Guard{Kind: GCmp, Op: op, L: l, R: r} }

// Unknown is the nondeterministic guard.
func Unknown() Guard { return Guard{Kind: GUnknown} }

// Mod builds the guard l mod m == r.
func Mod(l RankExpr, m int, r RankExpr) Guard { return Guard{Kind: GMod, L: l, M: m, R: r} }

// Eval resolves the guard at a concrete rank and world size. unknown is
// true when any reachable leaf is GUnknown or references an unbound
// variable, in which case the caller must explore both outcomes.
func (g Guard) Eval(rank, p int, env map[string]int) (val, unknown bool) {
	switch g.Kind {
	case GTrue:
		return true, false
	case GCmp:
		l, okL := g.L.Eval(rank, p, env)
		r, okR := g.R.Eval(rank, p, env)
		if !okL || !okR {
			return false, true
		}
		switch g.Op {
		case EQ:
			return l == r, false
		case NE:
			return l != r, false
		case LT:
			return l < r, false
		case LE:
			return l <= r, false
		case GT:
			return l > r, false
		default:
			return l >= r, false
		}
	case GAnd:
		for _, s := range g.Subs {
			v, unk := s.Eval(rank, p, env)
			if unk {
				return false, true
			}
			if !v {
				return false, false
			}
		}
		return true, false
	case GOr:
		for _, s := range g.Subs {
			v, unk := s.Eval(rank, p, env)
			if unk {
				return false, true
			}
			if v {
				return true, false
			}
		}
		return false, false
	case GNot:
		v, unk := g.Subs[0].Eval(rank, p, env)
		return !v, unk
	case GMod:
		l, okL := g.L.Eval(rank, p, env)
		r, okR := g.R.Eval(rank, p, env)
		if !okL || !okR || g.M <= 0 {
			return false, true
		}
		return ((l%g.M)+g.M)%g.M == r, false
	default: // GUnknown
		return false, true
	}
}

// String renders the guard for diagnostics.
func (g Guard) String() string {
	switch g.Kind {
	case GTrue:
		return "true"
	case GCmp:
		return fmt.Sprintf("%s %s %s", g.L, g.Op, g.R)
	case GAnd, GOr:
		sep := " && "
		if g.Kind == GOr {
			sep = " || "
		}
		parts := make([]string, len(g.Subs))
		for i, s := range g.Subs {
			parts[i] = s.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	case GNot:
		return "!(" + g.Subs[0].String() + ")"
	case GMod:
		return fmt.Sprintf("%s%%%d == %s", g.L, g.M, g.R)
	default:
		return "<data-dependent>"
	}
}

// OpKind discriminates protocol operations.
type OpKind int

const (
	// OpSend transmits one message of wire group Group to rank Peer.
	OpSend OpKind = iota
	// OpRecv consumes one message from rank Peer, expecting wire group
	// Group ("?" accepts any).
	OpRecv
	// OpRecvAny consumes one message from whichever rank has one pending —
	// the pump-based receive of the FT runtime. Group is the expected
	// group ("?" accepts any).
	OpRecvAny
	// OpIf runs Then when Cond holds, Else otherwise; an unknown Cond
	// explores both.
	OpIf
	// OpLoop runs Body with LoopVar bound over [From, To); a Bounded > 0
	// loop instead models an unknown trip count as "at most Bounded
	// iterations", each entered nondeterministically.
	OpLoop
)

// Op is one node of a symbolic per-rank protocol program.
type Op struct {
	Kind  OpKind
	Peer  RankExpr // OpSend, OpRecv
	Group string   // OpSend, OpRecv, OpRecvAny; "?" = unknown/any
	Src   string   // source anchor for diagnostics ("live.go:184" or a model label)

	Cond       Guard // OpIf
	Then, Else []Op  // OpIf

	LoopVar  string   // OpLoop
	From, To RankExpr // OpLoop; To is exclusive
	Bounded  int      // OpLoop: >0 = unknown bound unrolled this many times
	Body     []Op     // OpLoop
}

// Param is a shared nondeterministic parameter: a value in [0, Values)
// chosen identically for every rank. This is how SPMD-uniform unknowns —
// an iteration count every rank receives from the same caller, a variant
// selector — are modeled without letting ranks diverge on them, which
// would fabricate deadlocks no real schedule can reach. InstantiateAll
// enumerates every assignment.
type Param struct {
	// Name is the variable the program references (RankExpr.Vars / loop
	// bounds / guard operands).
	Name string
	// Values is the exclusive upper bound of the parameter's range.
	Values int
	// Src anchors the parameter to the source construct it abstracts.
	Src string
}

// Proto is one protocol: a single program every rank executes (SPMD), made
// concrete per rank at instantiation. Rank-dependent behavior lives in the
// guards.
type Proto struct {
	// Name identifies the protocol in reports ("stencil.runLiveTask").
	Name string
	// Ops is the symbolic program.
	Ops []Op
	// Params are the shared SPMD-uniform unknowns; InstantiateAll explores
	// their cross product.
	Params []Param
	// Unrolled notes loops whose trip counts are not functions of P; the
	// verification is bounded in their iteration depth.
	Unrolled []string
}
