package protomc

import (
	"fmt"
	"strings"

	"netpart/internal/model"
	"netpart/internal/simnet"
)

// Replay executes a counterexample schedule through the simnet discrete-
// event simulator, demonstrating the violation on an executable transport
// rather than only in the checker's abstraction. Two layers of validation
// happen:
//
//  1. Concretization re-runs the schedule against the instantiated rank
//     programs, resolving which branch each "branch" step took (the step
//     list does not record it; a bounded backtracking search does) and
//     checking every step is enabled in order. A schedule that fails here
//     is not a real run of the programs — a checker bug, surfaced as an
//     error.
//  2. The per-rank projections of the concretized schedule run as simnet
//     tasks: sends become Proc.Send, receives become Proc.Recv, and ranks
//     the model leaves blocked in a receive issue one more Recv that can
//     never be satisfied. simnet's own deadlock detector must then name
//     exactly those ranks.
//
// simnet is an unbounded buffered transport, so send-side blocking
// (rendezvous pairing, bounded-buffer backpressure) has no executable
// equivalent: a counterexample whose only blocked ranks are senders
// replays as a completed run, and the report says so instead of claiming
// confirmation. Recv-blocked deadlocks, leftover messages, and wire-group
// skew are all confirmed by execution.
type ReplayReport struct {
	// Steps is the schedule length replayed.
	Steps int `json:"steps"`
	// BlockedRecvs are ranks the model leaves blocked in a receive.
	BlockedRecvs []int `json:"blocked_recvs,omitempty"`
	// BlockedSends are ranks the model leaves blocked in a send; not
	// observable on simnet's unbounded transport.
	BlockedSends []int `json:"blocked_sends,omitempty"`
	// Confirmed is true when simnet's execution exhibits the violation.
	Confirmed bool `json:"confirmed"`
	// Detail explains what the execution showed.
	Detail string `json:"detail"`
}

// replayAction is one rank-local operation of the concretized schedule.
type replayAction struct {
	send    bool
	peer    int
	group   string // sent group
	expect  string // receive: group the instruction decodes
	blocked bool   // receive issued only to demonstrate the block
}

// Replay validates v's schedule against sys and executes it through
// simnet. An error means the schedule is not a feasible run of sys.
func Replay(sys *System, v *Violation) (*ReplayReport, error) {
	if v == nil {
		return nil, fmt.Errorf("protomc: no violation to replay")
	}
	acts, pcs, truncated, err := concretize(sys, v)
	if err != nil {
		return nil, err
	}
	rep := &ReplayReport{Steps: len(v.Steps)}
	for r := 0; r < sys.P; r++ {
		switch sys.Progs[r][pcs[r]].Op {
		case IRecv:
			if v.Kind == "deadlock" {
				rep.BlockedRecvs = append(rep.BlockedRecvs, r)
				acts[r] = append(acts[r], replayAction{peer: sys.Progs[r][pcs[r]].Peer, blocked: true})
			}
		case IRecvAny:
			if v.Kind == "deadlock" {
				rep.BlockedRecvs = append(rep.BlockedRecvs, r)
				acts[r] = append(acts[r], replayAction{peer: (r + 1) % sys.P, blocked: true})
			}
		case ISend:
			if v.Kind == "deadlock" {
				rep.BlockedSends = append(rep.BlockedSends, r)
			}
		}
	}

	sim, err := simnet.New(model.PaperTestbed())
	if err != nil {
		return nil, err
	}
	procs := make([]*simnet.Proc, sys.P)
	skews := make([]string, sys.P)
	for r := 0; r < sys.P; r++ {
		r := r
		procs[r] = sim.Spawn(fmt.Sprintf("rank%d", r), model.Sparc2Cluster, func(p *simnet.Proc) {
			for _, a := range acts[r] {
				if a.send {
					p.Send(procs[a.peer], len(a.group), a.group)
					continue
				}
				m := p.Recv(procs[a.peer])
				got, _ := m.Payload.(string)
				if sk := groupSkew(got, a.expect); sk != "" && skews[r] == "" {
					skews[r] = sk
				}
			}
		})
	}
	runErr := sim.Run()

	switch v.Kind {
	case "deadlock":
		if len(rep.BlockedRecvs) > 0 {
			if runErr == nil {
				rep.Detail = "model predicts blocked receivers but the simnet run completed"
				return rep, nil
			}
			missing := []int{}
			for _, r := range rep.BlockedRecvs {
				if !strings.Contains(runErr.Error(), fmt.Sprintf("rank%d ", r)) {
					missing = append(missing, r)
				}
			}
			if len(missing) > 0 {
				rep.Detail = fmt.Sprintf("simnet deadlock report misses ranks %v: %v", missing, runErr)
				return rep, nil
			}
			rep.Confirmed = true
			rep.Detail = fmt.Sprintf("simnet confirms the deadlock: %v", runErr)
			return rep, nil
		}
		if runErr != nil {
			rep.Detail = fmt.Sprintf("unexpected simnet failure: %v", runErr)
			return rep, nil
		}
		rep.Confirmed = true
		rep.Detail = fmt.Sprintf("schedule prefix executes; ranks %v block in sends, which an unbounded transport cannot exhibit (rendezvous/capacity deadlock)", rep.BlockedSends)
		return rep, nil
	case "leftover":
		if runErr != nil {
			rep.Detail = fmt.Sprintf("unexpected simnet failure: %v", runErr)
			return rep, nil
		}
		var sent, recvd int64
		for _, ps := range sim.ProcStats() {
			sent += ps.Sent
			recvd += ps.Received
		}
		if sent > recvd {
			rep.Confirmed = true
			rep.Detail = fmt.Sprintf("simnet confirms conservation failure: %d sent, %d received", sent, recvd)
		} else {
			rep.Detail = fmt.Sprintf("model predicts unconsumed messages but simnet delivered all %d", sent)
		}
		return rep, nil
	case "skew":
		for r, sk := range skews {
			if sk != "" {
				rep.Confirmed = true
				rep.Detail = fmt.Sprintf("simnet confirms wire-group skew at rank %d: %s", r, sk)
				return rep, nil
			}
		}
		rep.Detail = "model predicts a wire-group mismatch but every replayed receive matched"
		return rep, nil
	case "bad-peer":
		if truncated && runErr == nil {
			rep.Confirmed = true
			rep.Detail = "schedule prefix executes; the final operation addresses a rank outside the world and is not executable"
		} else if runErr != nil {
			rep.Detail = fmt.Sprintf("unexpected simnet failure: %v", runErr)
		} else {
			rep.Detail = "schedule executed fully; no out-of-world operation found"
		}
		return rep, nil
	}
	rep.Detail = fmt.Sprintf("unknown violation kind %q", v.Kind)
	return rep, nil
}

// replayState is the concretization walk's mutable state.
type replayState struct {
	pcs    []int
	queues [][]string
	acts   [][]replayAction
}

func (s *replayState) clone(p int) *replayState {
	out := &replayState{
		pcs:    append([]int{}, s.pcs...),
		queues: make([][]string, p*p),
		acts:   make([][]replayAction, p),
	}
	for i, q := range s.queues {
		out.queues[i] = append([]string{}, q...)
	}
	for i, a := range s.acts {
		out.acts[i] = append([]replayAction{}, a...)
	}
	return out
}

// concretize re-runs the schedule over the rank programs, resolving branch
// alternatives by backtracking. truncated reports that the final step was
// an out-of-world operation recorded but not executable.
func concretize(sys *System, v *Violation) (acts [][]replayAction, pcs []int, truncated bool, err error) {
	p := sys.P
	init := &replayState{pcs: make([]int, p), queues: make([][]string, p*p), acts: make([][]replayAction, p)}
	var walk func(s *replayState, i int) *replayState
	walk = func(s *replayState, i int) *replayState {
		if i == len(v.Steps) {
			return s
		}
		stp := v.Steps[i]
		r := stp.Rank
		if r < 0 || r >= p {
			return nil
		}
		in := sys.Progs[r][s.pcs[r]]
		last := i == len(v.Steps)-1
		outOfWorld := stp.Peer < 0 || stp.Peer >= p || stp.Peer == r
		switch stp.Action {
		case "branch":
			if in.Op != IChoice {
				return nil
			}
			for _, nxt := range []int{in.Next, in.Alt} {
				c := s.clone(p)
				c.pcs[r] = nxt
				if out := walk(c, i+1); out != nil {
					return out
				}
				if in.Alt == in.Next {
					break
				}
			}
			return nil
		case "send", "xfer":
			if in.Op != ISend || in.Peer != stp.Peer {
				return nil
			}
			if outOfWorld {
				if !last {
					return nil
				}
				truncated = true
				return s
			}
			d := stp.Peer
			if stp.Action == "xfer" {
				// Rendezvous handoff: the receiver's step is implicit.
				din := sys.Progs[d][s.pcs[d]]
				if !((din.Op == IRecv && din.Peer == r) || din.Op == IRecvAny) {
					return nil
				}
				s.acts[r] = append(s.acts[r], replayAction{send: true, peer: d, group: in.Group})
				s.acts[d] = append(s.acts[d], replayAction{peer: r, expect: din.Group})
				s.pcs[r], s.pcs[d] = in.Next, din.Next
				return walk(s, i+1)
			}
			s.queues[r*p+d] = append(s.queues[r*p+d], in.Group)
			s.acts[r] = append(s.acts[r], replayAction{send: true, peer: d, group: in.Group})
			s.pcs[r] = in.Next
			return walk(s, i+1)
		case "recv":
			if !((in.Op == IRecv && in.Peer == stp.Peer) || in.Op == IRecvAny) {
				return nil
			}
			if outOfWorld {
				if !last {
					return nil
				}
				truncated = true
				return s
			}
			src := stp.Peer
			q := s.queues[src*p+r]
			if len(q) == 0 {
				return nil
			}
			s.acts[r] = append(s.acts[r], replayAction{peer: src, expect: in.Group})
			s.queues[src*p+r] = q[1:]
			s.pcs[r] = in.Next
			return walk(s, i+1)
		}
		return nil
	}
	final := walk(init, 0)
	if final == nil {
		return nil, nil, false, fmt.Errorf("protomc: schedule of %d steps is not a feasible run of %s at P=%d", len(v.Steps), sys.Name, p)
	}
	return final.acts, final.pcs, truncated, nil
}
