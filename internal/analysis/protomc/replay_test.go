package protomc

import (
	"strings"
	"testing"
)

// checkViolating checks the proto and requires a violation of the given
// kind, returning system and violation for replay.
func checkViolating(t *testing.T, proto *Proto, p int, cfg Config, kind string) (*System, *Violation) {
	t.Helper()
	sys, err := Instantiate(proto, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatalf("%s at P=%d under %s: expected a %s violation, got none", proto.Name, p, cfg.Sem, kind)
	}
	if res.Violation.Kind != kind {
		t.Fatalf("violation kind = %s, want %s: %s", res.Violation.Kind, kind, res.Violation)
	}
	return sys, res.Violation
}

// TestReplayRecvCycleDeadlock replays a receive-receive cycle: simnet's
// own deadlock detector must name both blocked ranks.
func TestReplayRecvCycleDeadlock(t *testing.T) {
	proto := &Proto{
		Name: "recv-cycle",
		Ops: []Op{
			{Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)),
				Then: []Op{{Kind: OpRecv, Peer: Konst(1), Group: "?", Src: "fixture"}},
				Else: []Op{{Kind: OpRecv, Peer: Konst(0), Group: "?", Src: "fixture"}},
				Src:  "fixture"},
		},
	}
	sys, v := checkViolating(t, proto, 2, Config{Sem: Buffered}, "deadlock")
	rep, err := Replay(sys, v)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Confirmed {
		t.Fatalf("replay did not confirm: %s", rep.Detail)
	}
	if len(rep.BlockedRecvs) != 2 {
		t.Errorf("blocked recvs = %v, want both ranks", rep.BlockedRecvs)
	}
	if !strings.Contains(rep.Detail, "simnet confirms") {
		t.Errorf("detail = %s", rep.Detail)
	}
}

// TestReplaySendCycleRendezvous replays a send-send cycle, which only
// blocks under rendezvous pairing: the report must say the block is not
// observable on an unbounded transport rather than claim execution.
func TestReplaySendCycleRendezvous(t *testing.T) {
	proto := &Proto{
		Name: "send-cycle",
		Ops: []Op{
			{Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)),
				Then: []Op{
					{Kind: OpSend, Peer: Konst(1), Group: "g", Src: "fixture"},
					{Kind: OpRecv, Peer: Konst(1), Group: "g", Src: "fixture"},
				},
				Else: []Op{
					{Kind: OpSend, Peer: Konst(0), Group: "g", Src: "fixture"},
					{Kind: OpRecv, Peer: Konst(0), Group: "g", Src: "fixture"},
				},
				Src: "fixture"},
		},
	}
	sys, v := checkViolating(t, proto, 2, Config{Sem: Rendezvous}, "deadlock")
	rep, err := Replay(sys, v)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Confirmed {
		t.Fatalf("replay did not confirm: %s", rep.Detail)
	}
	if len(rep.BlockedSends) != 2 || len(rep.BlockedRecvs) != 0 {
		t.Errorf("blocked sends %v recvs %v, want two send-blocked ranks", rep.BlockedSends, rep.BlockedRecvs)
	}
}

// TestReplayLeftover replays a conservation failure: the simnet run
// completes with more messages sent than received.
func TestReplayLeftover(t *testing.T) {
	proto := &Proto{
		Name: "leftover",
		Ops: []Op{
			{Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)),
				Then: []Op{{Kind: OpSend, Peer: Konst(1), Group: "g", Src: "fixture"}},
				Src:  "fixture"},
		},
	}
	sys, v := checkViolating(t, proto, 2, Config{Sem: Buffered}, "leftover")
	rep, err := Replay(sys, v)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Confirmed {
		t.Fatalf("replay did not confirm: %s", rep.Detail)
	}
}

// TestReplaySkew replays a wire-group mismatch: the delivered payload's
// group must disagree with what the receiver decodes.
func TestReplaySkew(t *testing.T) {
	proto := &Proto{
		Name: "skew",
		Ops: []Op{
			{Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)),
				Then: []Op{{Kind: OpSend, Peer: Konst(1), Group: "measurement", Src: "fixture"}},
				Else: []Op{{Kind: OpRecv, Peer: Konst(0), Group: "vectorpair", Src: "fixture"}},
				Src:  "fixture"},
		},
	}
	sys, v := checkViolating(t, proto, 2, Config{Sem: Buffered}, "skew")
	rep, err := Replay(sys, v)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Confirmed {
		t.Fatalf("replay did not confirm: %s", rep.Detail)
	}
	if !strings.Contains(rep.Detail, "skew") {
		t.Errorf("detail = %s", rep.Detail)
	}
}

// TestReplayInfeasibleSchedule rejects a forged schedule that is not a run
// of the programs.
func TestReplayInfeasibleSchedule(t *testing.T) {
	proto := &Proto{
		Name: "pair",
		Ops: []Op{
			{Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)),
				Then: []Op{{Kind: OpSend, Peer: Konst(1), Group: "g", Src: "fixture"}},
				Else: []Op{{Kind: OpRecv, Peer: Konst(0), Group: "g", Src: "fixture"}},
				Src:  "fixture"},
		},
	}
	sys, err := Instantiate(proto, 2)
	if err != nil {
		t.Fatal(err)
	}
	forged := &Violation{Kind: "deadlock", Steps: []Step{
		{Rank: 1, Action: "send", Peer: 0, Group: "g", Src: "forged"},
	}}
	if _, err := Replay(sys, forged); err == nil {
		t.Fatal("forged schedule replayed without error")
	}
}
