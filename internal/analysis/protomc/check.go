package protomc

import (
	"fmt"
	"strings"
)

// Semantics selects the transport model the interleavings are explored
// under.
type Semantics int

const (
	// Rendezvous pairs every send with its receive as one synchronous
	// transition: the sender blocks until the receiver is at the matching
	// receive. The strictest model — anything deadlock-free here survives
	// any buffering.
	Rendezvous Semantics = iota
	// Buffered is the mmps contract: per-(src,dst) FIFO channels of
	// Capacity messages; a send blocks only when its channel is full, a
	// receive blocks until a message from its source is pending. mmps
	// itself never backpressures (unbounded queues), so checking at a
	// finite capacity proves the protocol also survives a transport that
	// does.
	Buffered
)

func (s Semantics) String() string {
	if s == Rendezvous {
		return "rendezvous"
	}
	return "buffered"
}

// Config parameterizes one exploration.
type Config struct {
	Sem Semantics
	// Capacity is the per-channel message capacity under Buffered
	// semantics (ignored under Rendezvous). Zero defaults to 1.
	Capacity int
	// MaxStates caps the exploration; exceeding it is an error, not a
	// verdict. Zero defaults to 4 million.
	MaxStates int
}

// Step is one scheduled action of a counterexample or replay schedule.
type Step struct {
	Rank   int    `json:"rank"`
	Action string `json:"action"` // "send", "recv", "xfer", "branch"
	Peer   int    `json:"peer"`   // counterpart rank; -1 for branch
	Group  string `json:"group"`
	Src    string `json:"src"`
}

func (s Step) String() string {
	switch s.Action {
	case "branch":
		return fmt.Sprintf("rank %d: branch (%s)", s.Rank, s.Src)
	case "send":
		return fmt.Sprintf("rank %d: send %q -> rank %d (%s)", s.Rank, s.Group, s.Peer, s.Src)
	case "recv":
		return fmt.Sprintf("rank %d: recv %q <- rank %d (%s)", s.Rank, s.Group, s.Peer, s.Src)
	default: // xfer: rendezvous handoff
		return fmt.Sprintf("rank %d: send %q -> rank %d (rendezvous) (%s)", s.Rank, s.Group, s.Peer, s.Src)
	}
}

// Violation is one checked property failing, with the minimal schedule
// reaching it (Steps) — BFS order guarantees no shorter schedule exists.
type Violation struct {
	// Kind is "deadlock", "leftover" (message conservation), "skew" (wire
	// group mismatch), or "bad-peer" (send/recv outside the world or to
	// self).
	Kind    string   `json:"kind"`
	Detail  string   `json:"detail"`
	Steps   []Step   `json:"steps"`
	Blocked []string `json:"blocked,omitempty"`
}

func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", v.Kind, v.Detail)
	for i, s := range v.Steps {
		fmt.Fprintf(&b, "  %2d. %s\n", i+1, s)
	}
	for _, bl := range v.Blocked {
		fmt.Fprintf(&b, "  blocked: %s\n", bl)
	}
	return b.String()
}

// Result is the outcome of one exploration.
type Result struct {
	Protocol    string `json:"protocol"`
	P           int    `json:"p"`
	Sem         string `json:"semantics"`
	Capacity    int    `json:"capacity,omitempty"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Depth       int    `json:"depth"`
	// Symmetry is the order of the rank-automorphism group the canonical
	// hash quotiented by (1 = no symmetry).
	Symmetry int `json:"symmetry"`
	// MaxInFlight is the largest single-channel occupancy over every
	// reachable state: the buffer capacity a backpressuring transport
	// needs so this protocol never blocks on a send. Zero under
	// rendezvous.
	MaxInFlight int        `json:"max_in_flight"`
	Unrolled    []string   `json:"unrolled,omitempty"`
	Violation   *Violation `json:"violation,omitempty"`
}

// OK reports whether every property held.
func (r *Result) OK() bool { return r.Violation == nil }

// Check exhaustively explores every interleaving of sys's rank programs
// under cfg's semantics: breadth-first over canonically hashed states,
// quotiented by the system's rank automorphisms. The first violation (in
// schedule-length order, so the schedule is minimal) aborts the search.
func Check(sys *System, cfg Config) (*Result, error) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 4 << 20
	}
	for r, prog := range sys.Progs {
		for pc, in := range prog {
			if next := pc + 1; in.Next < next || (in.Op == IChoice && in.Alt < next) {
				return nil, fmt.Errorf("protomc: %s rank %d pc %d jumps backward; programs must be acyclic", sys.Name, r, pc)
			}
		}
	}
	c := &checker{sys: sys, cfg: cfg, groups: map[string]byte{"?": 0}, groupNames: []string{"?"}}
	c.perms = sys.Automorphisms()
	res := &Result{
		Protocol: sys.Name, P: sys.P, Sem: cfg.Sem.String(),
		Symmetry: len(c.perms), Unrolled: sys.Unrolled,
	}
	if cfg.Sem == Buffered {
		res.Capacity = cfg.Capacity
	}
	if err := c.run(res); err != nil {
		return nil, err
	}
	return res, nil
}

// state is one decoded global configuration.
type state struct {
	pcs    []int
	queues [][]byte // [src*P+dst] -> pending group ids, FIFO
}

// rec is the visited-set entry of one canonical state, linking back to its
// BFS parent for schedule reconstruction. perm indexes the automorphism
// that won canonicalization: the recorded step is valid in the parent's
// canonical frame, and this state's canonical frame is the successor
// permuted by perms[perm] — schedule() composes these back out so the
// reported counterexample is a literal run, not a run up to symmetry.
type rec struct {
	key    string
	parent int32
	depth  int32
	perm   int32
	step   Step
}

type checker struct {
	sys        *System
	cfg        Config
	perms      [][]int
	groups     map[string]byte
	groupNames []string

	visited map[string]int32
	states  []rec
	queue   []int32
}

func (c *checker) groupID(g string) byte {
	if id, ok := c.groups[g]; ok {
		return id
	}
	if len(c.groupNames) == 255 {
		return 0 // degrade to "any": 255 distinct wire groups will not happen
	}
	id := byte(len(c.groupNames))
	c.groups[g] = id
	c.groupNames = append(c.groupNames, g)
	return id
}

// encode serializes st permuted by perm; canonical returns the minimum
// over the automorphism group.
func (c *checker) encode(st *state, perm []int, buf []byte) []byte {
	p := c.sys.P
	buf = buf[:0]
	// inv[i] = the rank whose image is i.
	for i := 0; i < p; i++ {
		pc := 0
		for r, img := range perm {
			if img == i {
				pc = st.pcs[r]
				break
			}
		}
		buf = append(buf, byte(pc>>8), byte(pc))
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			var q []byte
			for rs, imgS := range perm {
				if imgS != s {
					continue
				}
				for rd, imgD := range perm {
					if imgD == d {
						q = st.queues[rs*p+rd]
					}
				}
			}
			buf = append(buf, byte(len(q)))
			buf = append(buf, q...)
		}
	}
	return buf
}

func (c *checker) canonical(st *state) (string, int32) {
	best := c.encode(st, c.perms[0], nil)
	bestPerm := int32(0)
	scratch := make([]byte, 0, len(best))
	for i, perm := range c.perms[1:] {
		scratch = c.encode(st, perm, scratch)
		if string(scratch) < string(best) {
			best = append(best[:0], scratch...)
			bestPerm = int32(i + 1)
		}
	}
	return string(best), bestPerm
}

func (c *checker) decode(key string) *state {
	p := c.sys.P
	st := &state{pcs: make([]int, p), queues: make([][]byte, p*p)}
	off := 0
	for i := 0; i < p; i++ {
		st.pcs[i] = int(key[off])<<8 | int(key[off+1])
		off += 2
	}
	for ch := 0; ch < p*p; ch++ {
		n := int(key[off])
		off++
		if n > 0 {
			st.queues[ch] = []byte(key[off : off+n])
		}
		off += n
	}
	return st
}

// intern records a state, returning its index and whether it was new.
func (c *checker) intern(st *state, parent int32, depth int32, step Step) (int32, bool) {
	key, perm := c.canonical(st)
	if idx, ok := c.visited[key]; ok {
		return idx, false
	}
	idx := int32(len(c.states))
	c.states = append(c.states, rec{key: key, parent: parent, depth: depth, perm: perm, step: step})
	c.visited[key] = idx
	return idx, true
}

// schedule reconstructs the path from the initial state to states[idx] as a
// literal run. Each stored step is valid only in its parent's canonical
// frame, and canonicalization may permute ranks at every level; walking
// root-to-leaf while composing the inverse automorphisms yields the frame
// map phi (canonical rank -> run rank) under which each step — and the
// optional final step, which is in states[idx]'s own frame — becomes a
// transition of the unpermuted system. phi is returned so violation
// details about states[idx] can be rendered in the same frame as the
// schedule.
func (c *checker) schedule(idx int32, extra *Step) ([]Step, []int) {
	var chain []int32
	for i := idx; i > 0; i = c.states[i].parent {
		chain = append(chain, i)
	}
	for l, r := 0, len(chain)-1; l < r; l, r = l+1, r-1 {
		chain[l], chain[r] = chain[r], chain[l]
	}
	p := c.sys.P
	phi := make([]int, p)
	for i := range phi {
		phi[i] = i
	}
	steps := make([]Step, 0, len(chain)+1)
	for _, i := range chain {
		steps = append(steps, mapStep(c.states[i].step, phi))
		// states[i]'s frame is sigma(successor): fold sigma's inverse into
		// phi so the next level's step lands back in the run's frame.
		sigma := c.perms[c.states[i].perm]
		next := make([]int, p)
		for r := 0; r < p; r++ {
			next[sigma[r]] = phi[r]
		}
		phi = next
	}
	if extra != nil {
		steps = append(steps, mapStep(*extra, phi))
	}
	return steps, phi
}

// mapStep renames a step's ranks through the frame map; peers outside the
// world (including branch's -1) pass through untouched.
func mapStep(s Step, phi []int) Step {
	s.Rank = phi[s.Rank]
	if s.Peer >= 0 && s.Peer < len(phi) {
		s.Peer = phi[s.Peer]
	}
	return s
}

// realize maps a canonical-frame state into the run frame phi: canonical
// rank r's program counter and outgoing queues become run rank phi[r]'s.
func realize(st *state, phi []int, p int) *state {
	out := &state{pcs: make([]int, p), queues: make([][]byte, p*p)}
	for r := 0; r < p; r++ {
		out.pcs[phi[r]] = st.pcs[r]
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			out.queues[phi[s]*p+phi[d]] = st.queues[s*p+d]
		}
	}
	return out
}

func (c *checker) run(res *Result) error {
	p := c.sys.P
	init := &state{pcs: make([]int, p), queues: make([][]byte, p*p)}
	c.visited = make(map[string]int32, 1<<12)
	c.intern(init, -1, 0, Step{})
	c.queue = append(c.queue, 0)

	for len(c.queue) > 0 {
		idx := c.queue[0]
		c.queue = c.queue[1:]
		cur := c.states[idx]
		st := c.decode(cur.key)
		if int(cur.depth) > res.Depth {
			res.Depth = int(cur.depth)
		}
		progress := false
		allDone := true
		for r := 0; r < p; r++ {
			in := c.sys.Progs[r][st.pcs[r]]
			if in.Op != IEnd {
				allDone = false
			}
			moved, viol := c.expand(res, st, idx, r, in)
			if viol != nil {
				res.Violation = viol
				res.States = len(c.states)
				return nil
			}
			progress = progress || moved
		}
		switch {
		case allDone:
			if left := leftover(c, st); left != "" {
				steps, phi := c.schedule(idx, nil)
				res.Violation = &Violation{
					Kind:   "leftover",
					Detail: "round terminated with unconsumed messages: " + leftover(c, realize(st, phi, p)),
					Steps:  steps,
				}
				res.States = len(c.states)
				return nil
			}
		case !progress:
			steps, phi := c.schedule(idx, nil)
			real := realize(st, phi, p)
			res.Violation = &Violation{
				Kind:    "deadlock",
				Detail:  fmt.Sprintf("no rank can move; %s", c.blockedSummary(real)),
				Steps:   steps,
				Blocked: c.blockedList(real),
			}
			res.States = len(c.states)
			return nil
		}
		if len(c.states) > c.cfg.MaxStates {
			return fmt.Errorf("protomc: %s at P=%d exceeds %d states", c.sys.Name, p, c.cfg.MaxStates)
		}
	}
	res.States = len(c.states)
	return nil
}

// expand generates rank r's transitions from st. moved reports whether at
// least one was enabled; a non-nil violation aborts the search.
func (c *checker) expand(res *Result, st *state, idx int32, r int, in Instr) (moved bool, _ *Violation) {
	p := c.sys.P
	depth := c.states[idx].depth + 1
	push := func(next *state, step Step) {
		res.Transitions++
		if ni, fresh := c.intern(next, idx, depth, step); fresh {
			c.queue = append(c.queue, ni)
		}
	}
	switch in.Op {
	case IEnd:
		return false, nil // finished: contributes no transitions
	case IChoice:
		next := cloneState(st, p)
		next.pcs[r] = in.Next
		push(next, Step{Rank: r, Action: "branch", Peer: -1, Src: in.Src})
		if in.Alt != in.Next {
			alt := cloneState(st, p)
			alt.pcs[r] = in.Alt
			push(alt, Step{Rank: r, Action: "branch", Peer: -1, Src: in.Src})
		}
		return true, nil
	case ISend:
		step := Step{Rank: r, Action: "send", Peer: in.Peer, Group: in.Group, Src: in.Src}
		if in.Peer < 0 || in.Peer >= p || in.Peer == r {
			kind := "outside the world of P=" + itoa(p)
			if in.Peer == r {
				kind = "to itself"
			}
			steps, phi := c.schedule(idx, &step)
			return false, &Violation{
				Kind:   "bad-peer",
				Detail: fmt.Sprintf("rank %d sends %s at %s", phi[r], kind, in.Src),
				Steps:  steps,
			}
		}
		if c.cfg.Sem == Buffered {
			ch := r*p + in.Peer
			if len(st.queues[ch]) >= c.cfg.Capacity {
				return false, nil // backpressured
			}
			next := cloneState(st, p)
			next.pcs[r] = in.Next
			next.queues[ch] = append(append([]byte{}, next.queues[ch]...), c.groupID(in.Group))
			if n := len(next.queues[ch]); n > res.MaxInFlight {
				res.MaxInFlight = n
			}
			push(next, step)
			return true, nil
		}
		// Rendezvous: enabled only when the receiver is at the matching
		// receive; the pair advances as one transition.
		d := in.Peer
		rin := c.sys.Progs[d][st.pcs[d]]
		matches := (rin.Op == IRecv && rin.Peer == r) || rin.Op == IRecvAny
		if !matches {
			return false, nil
		}
		if v := groupSkew(in.Group, rin.Group); v != "" {
			step.Action = "xfer"
			steps, phi := c.schedule(idx, &step)
			return false, &Violation{
				Kind: "skew",
				Detail: fmt.Sprintf("rank %d sends wire group %q to rank %d, which decodes %q (%s vs %s)",
					phi[r], in.Group, phi[d], rin.Group, in.Src, rin.Src),
				Steps: steps,
			}
		}
		next := cloneState(st, p)
		next.pcs[r] = in.Next
		next.pcs[d] = rin.Next
		step.Action = "xfer"
		push(next, step)
		return true, nil
	case IRecv:
		if in.Peer < 0 || in.Peer >= p || in.Peer == r {
			step := Step{Rank: r, Action: "recv", Peer: in.Peer, Group: in.Group, Src: in.Src}
			steps, phi := c.schedule(idx, &step)
			badPeer := in.Peer
			if badPeer >= 0 && badPeer < p {
				badPeer = phi[badPeer] // self-receive: rename with the rank
			}
			return false, &Violation{
				Kind:   "bad-peer",
				Detail: fmt.Sprintf("rank %d receives from rank %d outside its peers at %s", phi[r], badPeer, in.Src),
				Steps:  steps,
			}
		}
		if c.cfg.Sem == Rendezvous {
			return false, nil // paired by the sender's transition
		}
		return c.consume(res, st, idx, r, in, in.Peer)
	case IRecvAny:
		if c.cfg.Sem == Rendezvous {
			return false, nil
		}
		for src := 0; src < p; src++ {
			if src == r || len(st.queues[src*p+r]) == 0 {
				continue
			}
			m, viol := c.consume(res, st, idx, r, in, src)
			if viol != nil {
				return false, viol
			}
			moved = moved || m
			if c.sys.UniformRecv {
				// Sound reduction for straight-line receivers: which
				// message arrives first cannot change later behavior, so
				// one representative arrival order suffices.
				break
			}
		}
		return moved, nil
	}
	return false, nil
}

// consume pops the head of src->r under buffered semantics.
func (c *checker) consume(res *Result, st *state, idx int32, r int, in Instr, src int) (bool, *Violation) {
	p := c.sys.P
	ch := src*p + r
	q := st.queues[ch]
	if len(q) == 0 {
		return false, nil
	}
	got := c.groupNames[q[0]]
	step := Step{Rank: r, Action: "recv", Peer: src, Group: got, Src: in.Src}
	if v := groupSkew(got, in.Group); v != "" {
		steps, phi := c.schedule(idx, &step)
		return false, &Violation{
			Kind: "skew",
			Detail: fmt.Sprintf("rank %d decodes wire group %q but the pending message from rank %d is group %q (%s)",
				phi[r], in.Group, phi[src], got, in.Src),
			Steps: steps,
		}
	}
	next := cloneState(st, p)
	next.pcs[r] = in.Next
	next.queues[ch] = append([]byte{}, q[1:]...)
	if len(next.queues[ch]) == 0 {
		next.queues[ch] = nil
	}
	res.Transitions++
	if ni, fresh := c.intern(next, idx, c.states[idx].depth+1, step); fresh {
		c.queue = append(c.queue, ni)
	}
	return true, nil
}

// groupSkew reports a non-empty string when sent and expected wire groups
// conflict; "?" matches anything.
func groupSkew(sent, expected string) string {
	if sent == "?" || expected == "?" || sent == expected {
		return ""
	}
	return sent + "!=" + expected
}

func cloneState(st *state, p int) *state {
	next := &state{pcs: append([]int{}, st.pcs...), queues: make([][]byte, p*p)}
	copy(next.queues, st.queues)
	return next
}

// leftover describes unconsumed channel contents, or "".
func leftover(c *checker, st *state) string {
	p := c.sys.P
	var parts []string
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			for _, g := range st.queues[s*p+d] {
				parts = append(parts, fmt.Sprintf("%q from rank %d to rank %d", c.groupNames[g], s, d))
			}
		}
	}
	return strings.Join(parts, ", ")
}

// blockedList describes each unfinished rank's pending instruction.
func (c *checker) blockedList(st *state) []string {
	var out []string
	for r := 0; r < c.sys.P; r++ {
		in := c.sys.Progs[r][st.pcs[r]]
		switch in.Op {
		case IEnd:
			continue
		case ISend:
			out = append(out, fmt.Sprintf("rank %d blocked sending %q to rank %d at %s", r, in.Group, in.Peer, in.Src))
		case IRecv:
			out = append(out, fmt.Sprintf("rank %d blocked receiving %q from rank %d at %s", r, in.Group, in.Peer, in.Src))
		case IRecvAny:
			out = append(out, fmt.Sprintf("rank %d blocked receiving %q from any rank at %s", r, in.Group, in.Src))
		default:
			out = append(out, fmt.Sprintf("rank %d blocked at %s", r, in.Src))
		}
	}
	return out
}

func (c *checker) blockedSummary(st *state) string {
	var ranks []string
	for r := 0; r < c.sys.P; r++ {
		if c.sys.Progs[r][st.pcs[r]].Op != IEnd {
			ranks = append(ranks, itoa(r))
		}
	}
	return "ranks " + strings.Join(ranks, ",") + " wait on each other"
}

func itoa(n int) string { return fmt.Sprint(n) }
