package protomc

import (
	"fmt"
	"sort"
	"strings"
)

// Instruction opcodes of an instantiated rank program. Programs are flat
// instruction slices forming a DAG: every instruction names its successor
// (Next), choices add a second (Alt), and control never jumps backward —
// loops are fully unrolled at instantiation, which is what makes every
// schedule finite.
const (
	ISend byte = iota + 1
	IRecv
	IRecvAny
	IChoice
	IEnd
)

// Instr is one instantiated instruction.
type Instr struct {
	Op    byte
	Peer  int    // ISend destination, IRecv source
	Group string // wire group ("?" = unknown/any)
	Src   string // source anchor for diagnostics
	Next  int    // successor pc
	Alt   int    // IChoice's second successor
}

// System is one protocol instantiated at a concrete world size: the input
// to Check and ReplaySimnet.
type System struct {
	Name  string
	P     int
	Progs [][]Instr
	// Assign records the shared-parameter assignment this instance was
	// built under ("" when the protocol has none).
	Assign string
	// UniformRecv asserts that no rank's control flow depends on *which*
	// message a RecvAny consumed (true for the straight-line builder
	// models). The checker then fixes lowest-source-first consumption — a
	// sound partial-order reduction that collapses the factorial
	// arrival-order blowup of all-to-all barriers.
	UniformRecv bool
	// Unrolled propagates Proto.Unrolled: verification is bounded in these
	// loops' iteration depth.
	Unrolled []string
}

// Instantiate flattens a symbolic protocol at world size p. Every rank
// gets its own program: guards are evaluated with the rank bound, loops
// over affine bounds unroll exactly, and unknown guards/bounds become
// nondeterministic choices. Peers are range-checked at check time, not
// here, so an out-of-range peer on an unreachable path is not a false
// alarm. Protocols with shared parameters need InstantiateAll.
func Instantiate(proto *Proto, p int) (*System, error) {
	if len(proto.Params) > 0 {
		return nil, fmt.Errorf("protomc: %s has %d shared parameters; use InstantiateAll", proto.Name, len(proto.Params))
	}
	return instantiateWith(proto, p, nil, "")
}

// maxParamAssignments caps the shared-parameter cross product: a protocol
// abstracting more unknowns than this is beyond bounded checking.
const maxParamAssignments = 81

// InstantiateAll instantiates the protocol at world size p under every
// shared-parameter assignment. A parameter-free protocol yields exactly
// one system.
func InstantiateAll(proto *Proto, p int) ([]*System, error) {
	total := 1
	for _, pa := range proto.Params {
		if pa.Values < 1 {
			return nil, fmt.Errorf("protomc: %s parameter %s has no values", proto.Name, pa.Name)
		}
		total *= pa.Values
		if total > maxParamAssignments {
			return nil, fmt.Errorf("protomc: %s has %d shared-parameter assignments; bound is %d", proto.Name, total, maxParamAssignments)
		}
	}
	systems := make([]*System, 0, total)
	vals := make([]int, len(proto.Params))
	for {
		env := make(map[string]int, len(vals))
		var assign strings.Builder
		for i, pa := range proto.Params {
			env[pa.Name] = vals[i]
			if i > 0 {
				assign.WriteByte(' ')
			}
			fmt.Fprintf(&assign, "%s=%d", pa.Name, vals[i])
		}
		sys, err := instantiateWith(proto, p, env, assign.String())
		if err != nil {
			return nil, err
		}
		systems = append(systems, sys)
		i := len(vals) - 1
		for ; i >= 0; i-- {
			if vals[i]++; vals[i] < proto.Params[i].Values {
				break
			}
			vals[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return systems, nil
}

func instantiateWith(proto *Proto, p int, params map[string]int, assign string) (*System, error) {
	if p < 1 {
		return nil, fmt.Errorf("protomc: world size %d", p)
	}
	sys := &System{Name: proto.Name, P: p, Progs: make([][]Instr, p), Assign: assign, Unrolled: proto.Unrolled}
	for r := 0; r < p; r++ {
		env := make(map[string]int, len(params))
		for k, v := range params {
			env[k] = v
		}
		fl := &flattener{rank: r, p: p, env: env}
		if err := fl.seq(proto.Ops); err != nil {
			return nil, fmt.Errorf("protomc: %s rank %d: %w", proto.Name, r, err)
		}
		fl.emit(Instr{Op: IEnd})
		sys.Progs[r] = fl.prog
	}
	return sys, nil
}

// flattener unrolls one rank's program into instructions.
type flattener struct {
	rank, p int
	env     map[string]int
	prog    []Instr
	depth   int
}

// maxFlattenDepth bounds nested unrolling so a pathological symbolic
// program cannot expand unboundedly.
const maxFlattenDepth = 64

// emit appends an instruction wired to fall through to its successor.
func (fl *flattener) emit(in Instr) int {
	in.Next = len(fl.prog) + 1
	fl.prog = append(fl.prog, in)
	return len(fl.prog) - 1
}

func (fl *flattener) seq(ops []Op) error {
	fl.depth++
	defer func() { fl.depth-- }()
	if fl.depth > maxFlattenDepth {
		return fmt.Errorf("program nests deeper than %d (unbounded expansion?)", maxFlattenDepth)
	}
	for i := range ops {
		if err := fl.op(&ops[i]); err != nil {
			return err
		}
	}
	return nil
}

func (fl *flattener) op(op *Op) error {
	switch op.Kind {
	case OpSend, OpRecv:
		peer, ok := op.Peer.Eval(fl.rank, fl.p, fl.env)
		if !ok {
			return fmt.Errorf("%s: peer %s references an unbound variable", op.Src, op.Peer)
		}
		kind := ISend
		if op.Kind == OpRecv {
			kind = IRecv
		}
		fl.emit(Instr{Op: kind, Peer: peer, Group: op.Group, Src: op.Src})
	case OpRecvAny:
		fl.emit(Instr{Op: IRecvAny, Peer: -1, Group: op.Group, Src: op.Src})
	case OpIf:
		val, unknown := op.Cond.Eval(fl.rank, fl.p, fl.env)
		if !unknown {
			if val {
				return fl.seq(op.Then)
			}
			return fl.seq(op.Else)
		}
		return fl.choice(op.Src, op.Then, op.Else)
	case OpLoop:
		if op.Bounded > 0 {
			// Unknown trip count: at most Bounded iterations, each entered
			// nondeterministically, nested so iteration k implies 1..k-1 ran.
			return fl.boundedLoop(op, op.Bounded)
		}
		from, okF := op.From.Eval(fl.rank, fl.p, fl.env)
		to, okT := op.To.Eval(fl.rank, fl.p, fl.env)
		if !okF || !okT {
			return fmt.Errorf("%s: loop bounds %s..%s reference an unbound variable", op.Src, op.From, op.To)
		}
		if to-from > 4*fl.p+16 {
			return fmt.Errorf("%s: loop unrolls %d iterations at P=%d; bound is not affine in the protocol size", op.Src, to-from, fl.p)
		}
		saved, had := fl.env[op.LoopVar]
		for v := from; v < to; v++ {
			fl.env[op.LoopVar] = v
			if err := fl.seq(op.Body); err != nil {
				return err
			}
		}
		if had {
			fl.env[op.LoopVar] = saved
		} else {
			delete(fl.env, op.LoopVar)
		}
	default:
		return fmt.Errorf("%s: unknown op kind %d", op.Src, op.Kind)
	}
	return nil
}

// choice emits [then-branch] with a nondeterministic entry into either arm:
//
//	IChoice{Next: then, Alt: else}; then...; jump join; else...; join:
func (fl *flattener) choice(src string, then, els []Op) error {
	ch := fl.emit(Instr{Op: IChoice, Peer: -1, Src: src})
	if err := fl.seq(then); err != nil {
		return err
	}
	// Placeholder jump from the then-arm's end over the else-arm; a choice
	// with Next==Alt is a plain jump.
	jmp := fl.emit(Instr{Op: IChoice, Peer: -1, Src: src})
	fl.prog[ch].Alt = len(fl.prog)
	if err := fl.seq(els); err != nil {
		return err
	}
	fl.prog[jmp].Next = len(fl.prog)
	fl.prog[jmp].Alt = len(fl.prog)
	fl.prog[ch].Next = ch + 1
	return nil
}

// boundedLoop expands "run body up to n more times, or stop".
func (fl *flattener) boundedLoop(op *Op, n int) error {
	if n == 0 {
		return nil
	}
	body := append(append([]Op{}, op.Body...), Op{
		Kind: OpLoop, LoopVar: op.LoopVar, Bounded: n - 1,
		Body: op.Body, Src: op.Src,
	})
	return fl.choice(op.Src, body, nil)
}

// --- programmatic construction ---

// Builder assembles a System rank by rank, for protocols whose traffic is
// computed by runtime code (Migrator spans, FT recovery) rather than
// extracted from source.
type Builder struct {
	sys *System
}

// NewSystem starts a builder for world size p.
func NewSystem(name string, p int) *Builder {
	b := &Builder{sys: &System{Name: name, P: p, Progs: make([][]Instr, p), UniformRecv: true}}
	return b
}

// RankProg appends ops to rank r's program.
type RankProg struct {
	b *Builder
	r int
}

// Rank returns the program builder of rank r.
func (b *Builder) Rank(r int) *RankProg { return &RankProg{b: b, r: r} }

func (rp *RankProg) emit(in Instr) *RankProg {
	prog := rp.b.sys.Progs[rp.r]
	in.Next = len(prog) + 1
	rp.b.sys.Progs[rp.r] = append(prog, in)
	return rp
}

// Send appends a send of group to dst.
func (rp *RankProg) Send(dst int, group, src string) *RankProg {
	return rp.emit(Instr{Op: ISend, Peer: dst, Group: group, Src: src})
}

// Recv appends a receive from src expecting group.
func (rp *RankProg) Recv(from int, group, src string) *RankProg {
	return rp.emit(Instr{Op: IRecv, Peer: from, Group: group, Src: src})
}

// RecvAny appends a pump-style receive from whichever rank has a pending
// message.
func (rp *RankProg) RecvAny(group, src string) *RankProg {
	return rp.emit(Instr{Op: IRecvAny, Peer: -1, Group: group, Src: src})
}

// System finalizes every rank with an IEnd and returns the system.
func (b *Builder) System() *System {
	for r := range b.sys.Progs {
		prog := b.sys.Progs[r]
		if n := len(prog); n == 0 || prog[n-1].Op != IEnd {
			b.sys.Progs[r] = append(prog, Instr{Op: IEnd, Next: n + 1})
		}
	}
	return b.sys
}

// Automorphisms returns the rank permutations under which the system is
// invariant: π is valid when renaming every rank r to π(r) — its program
// position and every peer reference — reproduces the system exactly. The
// checker canonicalizes each explored state by the group, so symmetric
// ranks (the interior of a halo chain, the identical clients of a hub)
// collapse into one representative. The identity is always included;
// enumeration is factorial but P ≤ 5 keeps it trivial.
func (sys *System) Automorphisms() [][]int {
	perm := make([]int, sys.P)
	for i := range perm {
		perm[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == sys.P {
			if sys.invariantUnder(perm) {
				out = append(out, append([]int(nil), perm...))
			}
			return
		}
		for i := k; i < sys.P; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// invariantUnder reports whether renaming ranks by perm maps the system
// onto itself.
func (sys *System) invariantUnder(perm []int) bool {
	for r, prog := range sys.Progs {
		image := sys.Progs[perm[r]]
		if len(image) != len(prog) {
			return false
		}
		for i, in := range prog {
			want := in
			if (in.Op == ISend || in.Op == IRecv) && in.Peer >= 0 && in.Peer < len(perm) {
				want.Peer = perm[in.Peer]
			}
			got := image[i]
			// Src anchors differ between symmetric ranks only for builder
			// programs; ignore them for the structural comparison.
			want.Src, got.Src = "", ""
			if got != want {
				return false
			}
		}
	}
	return true
}
