package protomc

import (
	"strings"
	"testing"
)

// hubProto is the Engine.Round shape: rank != 0 sends a measurement and
// receives the plan; rank 0 receives P-1 measurements ascending and sends
// P-1 plans ascending.
func hubProto() *Proto {
	return &Proto{
		Name: "hub",
		Ops: []Op{{
			Kind: OpIf,
			Cond: Cmp(Self(0), NE, Konst(0)),
			Src:  "hub.go:1",
			Then: []Op{
				{Kind: OpSend, Peer: Konst(0), Group: "measurement", Src: "hub.go:2"},
				{Kind: OpRecv, Peer: Konst(0), Group: "vectorpair", Src: "hub.go:3"},
			},
			Else: []Op{
				{Kind: OpLoop, LoopVar: "src", From: Konst(1), To: World(0), Src: "hub.go:5", Body: []Op{
					{Kind: OpRecv, Peer: Var("src", 0), Group: "measurement", Src: "hub.go:6"},
				}},
				{Kind: OpLoop, LoopVar: "dst", From: Konst(1), To: World(0), Src: "hub.go:8", Body: []Op{
					{Kind: OpSend, Peer: Var("dst", 0), Group: "vectorpair", Src: "hub.go:9"},
				}},
			},
		}},
	}
}

func mustCheck(t *testing.T, proto *Proto, p int, cfg Config) *Result {
	t.Helper()
	sys, err := Instantiate(proto, p)
	if err != nil {
		t.Fatalf("instantiate P=%d: %v", p, err)
	}
	res, err := Check(sys, cfg)
	if err != nil {
		t.Fatalf("check P=%d: %v", p, err)
	}
	return res
}

func TestHubCleanBothSemantics(t *testing.T) {
	for p := 2; p <= 5; p++ {
		for _, cfg := range []Config{{Sem: Rendezvous}, {Sem: Buffered, Capacity: 1}, {Sem: Buffered, Capacity: 3}} {
			res := mustCheck(t, hubProto(), p, cfg)
			if !res.OK() {
				t.Fatalf("P=%d %s/cap%d: unexpected violation:\n%s", p, cfg.Sem, cfg.Capacity, res.Violation)
			}
			if res.States == 0 || res.Transitions == 0 {
				t.Fatalf("P=%d: empty exploration: %+v", p, res)
			}
		}
	}
}

// eagerExchange is the unfixed halo shape: every rank sends to both
// neighbors, then receives from both. Correct over a buffering transport,
// a classic cycle under rendezvous.
func eagerExchange() *Proto {
	hasNorth := Cmp(Self(-1), GE, Konst(0))
	hasSouth := Cmp(Self(1), LT, World(0))
	return &Proto{
		Name: "eager-halo",
		Ops: []Op{
			{Kind: OpIf, Cond: hasNorth, Src: "eh:1", Then: []Op{{Kind: OpSend, Peer: Self(-1), Group: "halo", Src: "eh:2"}}},
			{Kind: OpIf, Cond: hasSouth, Src: "eh:3", Then: []Op{{Kind: OpSend, Peer: Self(1), Group: "halo", Src: "eh:4"}}},
			{Kind: OpIf, Cond: hasNorth, Src: "eh:5", Then: []Op{{Kind: OpRecv, Peer: Self(-1), Group: "halo", Src: "eh:6"}}},
			{Kind: OpIf, Cond: hasSouth, Src: "eh:7", Then: []Op{{Kind: OpRecv, Peer: Self(1), Group: "halo", Src: "eh:8"}}},
		},
	}
}

func TestEagerExchangeDeadlocksUnderRendezvousOnly(t *testing.T) {
	for p := 2; p <= 5; p++ {
		res := mustCheck(t, eagerExchange(), p, Config{Sem: Rendezvous})
		if res.OK() || res.Violation.Kind != "deadlock" {
			t.Fatalf("P=%d rendezvous: want deadlock, got %+v", p, res.Violation)
		}
		res = mustCheck(t, eagerExchange(), p, Config{Sem: Buffered, Capacity: 1})
		if !res.OK() {
			t.Fatalf("P=%d buffered: unexpected violation:\n%s", p, res.Violation)
		}
		if res.MaxInFlight != 1 {
			t.Fatalf("P=%d: max in-flight = %d, want 1", p, res.MaxInFlight)
		}
	}
}

// TestMinimalCounterexample: at P=2 the eager exchange deadlock needs zero
// scheduled steps (both ranks start at sends that can never pair), so the
// BFS must report the empty schedule, not some longer interleaving.
func TestMinimalCounterexample(t *testing.T) {
	res := mustCheck(t, eagerExchange(), 2, Config{Sem: Rendezvous})
	if res.OK() {
		t.Fatal("want deadlock")
	}
	if len(res.Violation.Steps) != 0 {
		t.Fatalf("minimal schedule should be empty, got %d steps:\n%s", len(res.Violation.Steps), res.Violation)
	}
	if len(res.Violation.Blocked) != 2 {
		t.Fatalf("blocked = %v, want both ranks", res.Violation.Blocked)
	}
}

func TestUnmatchedSendLeavesMessage(t *testing.T) {
	// Rank 0 sends to every rank including a conditional extra nobody
	// receives.
	proto := &Proto{
		Name: "unmatched",
		Ops: []Op{{
			Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)), Src: "u:1",
			Then: []Op{
				{Kind: OpSend, Peer: Konst(1), Group: "work", Src: "u:2"},
				{Kind: OpSend, Peer: Konst(1), Group: "extra", Src: "u:3"},
			},
			Else: []Op{{Kind: OpRecv, Peer: Konst(0), Group: "work", Src: "u:5"}},
		}},
	}
	res := mustCheck(t, proto, 2, Config{Sem: Buffered, Capacity: 4})
	if res.OK() || res.Violation.Kind != "leftover" {
		t.Fatalf("want leftover, got %+v", res.Violation)
	}
	if !strings.Contains(res.Violation.Detail, `"extra"`) {
		t.Fatalf("detail should name the unconsumed group: %s", res.Violation.Detail)
	}
}

func TestWireGroupSkew(t *testing.T) {
	proto := &Proto{
		Name: "skew",
		Ops: []Op{{
			Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)), Src: "s:1",
			Then: []Op{{Kind: OpSend, Peer: Konst(1), Group: "rows", Src: "s:2"}},
			Else: []Op{{Kind: OpRecv, Peer: Konst(0), Group: "measurement", Src: "s:4"}},
		}},
	}
	for _, cfg := range []Config{{Sem: Rendezvous}, {Sem: Buffered}} {
		res := mustCheck(t, proto, 2, cfg)
		if res.OK() || res.Violation.Kind != "skew" {
			t.Fatalf("%s: want skew, got %+v", cfg.Sem, res.Violation)
		}
	}
}

// TestRecvRecvCycleOnlyAtP3: ranks 1 and 2 wait on each other before
// sending, but rank 2 exists only at P >= 3 — the syntactic pairing is
// fine and P=2 verifies clean.
func recvCycleProto() *Proto {
	return &Proto{
		Name: "recv-cycle",
		Ops: []Op{
			{Kind: OpIf, Cond: Guard{Kind: GAnd, Subs: []Guard{Cmp(Self(0), EQ, Konst(1)), Cmp(World(0), GT, Konst(2))}}, Src: "rc:1",
				Then: []Op{
					{Kind: OpRecv, Peer: Konst(2), Group: "token", Src: "rc:2"},
					{Kind: OpSend, Peer: Konst(2), Group: "token", Src: "rc:3"},
				}},
			{Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(2)), Src: "rc:4",
				Then: []Op{
					{Kind: OpRecv, Peer: Konst(1), Group: "token", Src: "rc:5"},
					{Kind: OpSend, Peer: Konst(1), Group: "token", Src: "rc:6"},
				}},
		},
	}
}

func TestRecvRecvCycleOnlyAtP3(t *testing.T) {
	for _, sem := range []Semantics{Rendezvous, Buffered} {
		if res := mustCheck(t, recvCycleProto(), 2, Config{Sem: sem}); !res.OK() {
			t.Fatalf("P=2 %s: unexpected violation:\n%s", sem, res.Violation)
		}
		res := mustCheck(t, recvCycleProto(), 3, Config{Sem: sem})
		if res.OK() || res.Violation.Kind != "deadlock" {
			t.Fatalf("P=3 %s: want deadlock, got %+v", sem, res.Violation)
		}
	}
}

// TestBufferExhaustion: two ranks each burst two messages before
// receiving. Fine with capacity 2, a send-send deadlock at capacity 1.
func burstProto() *Proto {
	other := Guard{Kind: GCmp, Op: EQ, L: Self(0), R: Konst(0)}
	_ = other
	return &Proto{
		Name: "burst",
		Ops: []Op{{
			Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)), Src: "b:1",
			Then: []Op{
				{Kind: OpSend, Peer: Konst(1), Group: "burst", Src: "b:2"},
				{Kind: OpSend, Peer: Konst(1), Group: "burst", Src: "b:3"},
				{Kind: OpRecv, Peer: Konst(1), Group: "burst", Src: "b:4"},
				{Kind: OpRecv, Peer: Konst(1), Group: "burst", Src: "b:5"},
			},
			Else: []Op{
				{Kind: OpSend, Peer: Konst(0), Group: "burst", Src: "b:7"},
				{Kind: OpSend, Peer: Konst(0), Group: "burst", Src: "b:8"},
				{Kind: OpRecv, Peer: Konst(0), Group: "burst", Src: "b:9"},
				{Kind: OpRecv, Peer: Konst(0), Group: "burst", Src: "b:10"},
			},
		}},
	}
}

func TestBufferExhaustion(t *testing.T) {
	res := mustCheck(t, burstProto(), 2, Config{Sem: Buffered, Capacity: 2})
	if !res.OK() {
		t.Fatalf("cap 2: unexpected violation:\n%s", res.Violation)
	}
	if res.MaxInFlight != 2 {
		t.Fatalf("cap 2: max in-flight = %d, want 2", res.MaxInFlight)
	}
	res = mustCheck(t, burstProto(), 2, Config{Sem: Buffered, Capacity: 1})
	if res.OK() || res.Violation.Kind != "deadlock" {
		t.Fatalf("cap 1: want deadlock, got %+v", res.Violation)
	}
}

func TestSendToSelfIsBadPeer(t *testing.T) {
	proto := &Proto{Name: "self", Ops: []Op{{Kind: OpSend, Peer: Self(0), Group: "x", Src: "self:1"}}}
	res := mustCheck(t, proto, 2, Config{Sem: Buffered})
	if res.OK() || res.Violation.Kind != "bad-peer" {
		t.Fatalf("want bad-peer, got %+v", res.Violation)
	}
}

// allToAll models the FT sync barrier faithfully: every rank sends its
// contribution to every other in ascending rank order, then pump-collects
// P-1 messages. Ascending send order breaks rank symmetry for P >= 3 (an
// automorphism must preserve each rank's peer order).
func allToAll(p int) *System {
	b := NewSystem("barrier", p)
	for r := 0; r < p; r++ {
		rp := b.Rank(r)
		for d := 0; d < p; d++ {
			if d != r {
				rp.Send(d, "sync", "sync-send")
			}
		}
		for i := 0; i < p-1; i++ {
			rp.RecvAny("sync", "sync-collect")
		}
	}
	return b.System()
}

// rotatedAllToAll sends in rotation order (r+1, r+2, ... mod P), which is
// invariant under the cyclic group of rank rotations.
func rotatedAllToAll(p int) *System {
	b := NewSystem("barrier-rot", p)
	for r := 0; r < p; r++ {
		rp := b.Rank(r)
		for k := 1; k < p; k++ {
			rp.Send((r+k)%p, "sync", "sync-send")
		}
		for i := 0; i < p-1; i++ {
			rp.RecvAny("sync", "sync-collect")
		}
	}
	return b.System()
}

func TestSymmetryReduction(t *testing.T) {
	rot := rotatedAllToAll(4)
	res, err := Check(rot, Config{Sem: Buffered, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("rotated barrier should verify:\n%s", res.Violation)
	}
	if res.Symmetry != 4 {
		t.Fatalf("symmetry order = %d, want the cyclic group's 4", res.Symmetry)
	}
	// The ascending-order variant verifies the same property without any
	// usable symmetry, so it must agree on the verdict over more states.
	asc := allToAll(4)
	resAsc, err := Check(asc, Config{Sem: Buffered, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resAsc.OK() {
		t.Fatalf("ascending barrier should verify:\n%s", resAsc.Violation)
	}
	if resAsc.Symmetry != 1 {
		t.Fatalf("ascending barrier symmetry = %d, want 1", resAsc.Symmetry)
	}
	if resAsc.States <= res.States {
		t.Fatalf("symmetry reduction saved nothing: %d states with, %d without", res.States, resAsc.States)
	}
}

// TestAllToAllRendezvousDeadlocks pins the property that motivates the
// asynchronous transport contract of the FT runtime: a send-to-all barrier
// deadlocks under rendezvous semantics at every P >= 2.
func TestAllToAllRendezvousDeadlocks(t *testing.T) {
	for p := 2; p <= 4; p++ {
		res, err := Check(allToAll(p), Config{Sem: Rendezvous})
		if err != nil {
			t.Fatal(err)
		}
		if res.OK() || res.Violation.Kind != "deadlock" {
			t.Fatalf("P=%d: want deadlock, got %+v", p, res.Violation)
		}
	}
}

func TestBoundedLoopChoice(t *testing.T) {
	// Sender and receiver both run an unknown-trip-count loop: the bounded
	// unrolling explores mismatched iteration counts, so a schedule where
	// the receiver waits for an iteration the sender never ran must
	// surface (as the minimal violation, a deadlock after two branch
	// choices).
	proto := &Proto{
		Name: "bounded",
		Ops: []Op{{
			Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)), Src: "bl:1",
			Then: []Op{{Kind: OpLoop, LoopVar: "it", Bounded: 2, Src: "bl:2", Body: []Op{
				{Kind: OpSend, Peer: Konst(1), Group: "tick", Src: "bl:3"},
			}}},
			Else: []Op{{Kind: OpLoop, LoopVar: "it", Bounded: 2, Src: "bl:5", Body: []Op{
				{Kind: OpRecv, Peer: Konst(0), Group: "tick", Src: "bl:6"},
			}}},
		}},
		Unrolled: []string{"bl:2", "bl:5"},
	}
	res := mustCheck(t, proto, 2, Config{Sem: Buffered, Capacity: 2})
	if res.OK() || res.Violation.Kind != "deadlock" {
		t.Fatalf("want deadlock (receiver entered an iteration the sender skipped), got %+v", res.Violation)
	}
	if len(res.Unrolled) != 2 {
		t.Fatalf("unrolled notes lost: %+v", res.Unrolled)
	}
	// A matched-iteration protocol under the same unrolling stays clean:
	// the choice structure itself must not fabricate violations when each
	// iteration is self-contained (send immediately answered).
	pingpong := &Proto{
		Name: "pingpong",
		Ops: []Op{{
			Kind: OpIf, Cond: Cmp(Self(0), EQ, Konst(0)), Src: "pp:1",
			Then: []Op{{Kind: OpSend, Peer: Konst(1), Group: "tick", Src: "pp:2"},
				{Kind: OpRecv, Peer: Konst(1), Group: "tock", Src: "pp:3"}},
			Else: []Op{{Kind: OpRecv, Peer: Konst(0), Group: "tick", Src: "pp:5"},
				{Kind: OpSend, Peer: Konst(0), Group: "tock", Src: "pp:6"}},
		}},
	}
	if res := mustCheck(t, pingpong, 2, Config{Sem: Rendezvous}); !res.OK() {
		t.Fatalf("pingpong rendezvous:\n%s", res.Violation)
	}
}

func TestRankExprAndGuardRendering(t *testing.T) {
	e := Self(1)
	if e.String() != "rank+1" {
		t.Fatalf("Self(1) = %q", e.String())
	}
	if got := World(-1).String(); got != "P-1" {
		t.Fatalf("World(-1) = %q", got)
	}
	if got := Var("src", 0).Add(Konst(2)).String(); got != "src+2" {
		t.Fatalf("Var+2 = %q", got)
	}
	g := Cmp(Self(-1), GE, Konst(0))
	if g.String() != "rank-1 >= 0" {
		t.Fatalf("guard = %q", g.String())
	}
	v, unk := g.Eval(0, 4, nil)
	if v || unk {
		t.Fatalf("rank-1>=0 at rank 0: (%v,%v)", v, unk)
	}
}
