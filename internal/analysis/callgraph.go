package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the call-graph half of the interprocedural engine behind
// allocfree, msgproto, and the determinism analyzer's helper-call
// propagation. It builds one module-wide graph over every package a Loader
// has type-checked: nodes are declared functions and methods (closure
// bodies fold into their enclosing declaration — a closure's allocations
// and calls are charged where the closure is created), and edges are
//
//   - direct calls and method calls, resolved through go/types object
//     identity (the loader shares one type-checker universe, so a
//     *types.Func compares equal across packages — facade re-exports
//     resolve like any other call);
//   - interface method calls, bounded by type-set approximation: the
//     possible targets are the corresponding methods of every named
//     concrete type in the loaded module that implements the interface
//     (summary.go unions the target summaries; an interface with no
//     in-module implementation is treated conservatively);
//   - indirect calls through func values, which stay unresolved — except
//     calls through struct fields declared //netpart:purecallback, the
//     annotation-callback contract (see summary.go), and calls through
//     local closure variables, whose bodies are already folded into the
//     enclosing node.
//
// The graph is condensed into strongly connected components (Tarjan) so
// summary.go can run its bottom-up fixpoint: Tarjan emits sink components
// first, which is exactly callee-before-caller order.

// FuncNode is one declared function or method in the call graph, carrying
// the intraprocedural facts summary.go seeds its fixpoint with.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists every call site in the declaration (closure bodies
	// included), in source order.
	Calls []*Callsite
	// Direct intraprocedural facts, populated by summary.go's scan:
	// allocation sites outside guarded slow paths, wall-clock reads, and
	// global-rand uses — each already filtered through //nolint
	// suppressions so a waived site never propagates to callers.
	DirectAllocs []*Site
	DirectClock  []*Site
	DirectRand   []*Site
	// ParamEscapes marks parameters (by signature index) whose value is
	// stored beyond the call: assigned to a field or package-level
	// variable, or sent on a channel. Approximate (direct stores only);
	// callers that lend scratch buffers to an escaping callee cannot
	// assume the buffer stays theirs.
	ParamEscapes []bool
}

// Callsite is one call expression inside a FuncNode.
type Callsite struct {
	Call *ast.CallExpr
	// Guarded marks call sites inside a nil-/cap-guarded slow path
	// (isGuardedSlowPath); the allocation solve skips them, the
	// determinism solve does not (a guard sanctions allocation, not
	// nondeterminism).
	Guarded bool
	// InReturn marks calls that are a direct child of a return statement
	// (the fmt.Errorf failure-path exemption).
	InReturn bool
	// InPanic marks calls that are a direct argument of panic (the
	// panic(fmt.Sprintf(...)) failure-path exemption).
	InPanic bool
	// Targets are the resolved callees: one for static calls, the
	// type-set approximation for interface calls, empty for unresolved
	// indirect calls.
	Targets []*types.Func
	// Interface marks a call dispatched through an interface method.
	Interface bool
	// PureCallback marks indirect calls through struct fields annotated
	// //netpart:purecallback: the field's contract is that installed
	// callbacks are pure and allocation-free, so the call is trusted.
	PureCallback bool
	// IndirectDesc describes an unresolved indirect call ("" otherwise).
	IndirectDesc string
}

// Interproc is the module-wide interprocedural state: call graph, SCC
// order, and solved per-function summaries. Build once per Loader
// (Loader.Interproc caches it); analyzers reach it through Pass.Inter.
type Interproc struct {
	fset *token.FileSet
	pkgs []*Package

	nodes map[*types.Func]*FuncNode
	// sccs lists the strongly connected components bottom-up (callees
	// before callers).
	sccs [][]*FuncNode
	sums map[*types.Func]*Summary

	// detPkgs records which loaded packages carry //netpart:deterministic.
	detPkgs map[string]bool
	// pureFields holds struct fields annotated //netpart:purecallback.
	pureFields map[types.Object]bool
	// sups caches parsed //nolint suppressions per filename.
	sups map[string]map[int][]suppression

	ifaceCache map[*types.Func][]*types.Func
	concrete   []types.Type

	// wire is the lazily built module-wide codec index (msgproto.go).
	wire *wireIndex
}

// Node returns the call-graph node of a declared function, or nil.
func (ip *Interproc) Node(fn *types.Func) *FuncNode { return ip.nodes[fn] }

// DeterministicPkg reports whether the loaded package at path carries the
// //netpart:deterministic directive.
func (ip *Interproc) DeterministicPkg(path string) bool { return ip.detPkgs[path] }

// NumFuncs returns the number of call-graph nodes (for benchmarks/tests).
func (ip *Interproc) NumFuncs() int { return len(ip.nodes) }

// NumSCCs returns the number of strongly connected components.
func (ip *Interproc) NumSCCs() int { return len(ip.sccs) }

// BuildInterproc constructs the call graph and solves the summaries over
// the given packages (every package must come from one shared Loader, or
// at least one shared FileSet and type-checker universe).
func BuildInterproc(fset *token.FileSet, pkgs []*Package) *Interproc {
	ip := &Interproc{
		fset:       fset,
		nodes:      map[*types.Func]*FuncNode{},
		sums:       map[*types.Func]*Summary{},
		detPkgs:    map[string]bool{},
		pureFields: map[types.Object]bool{},
		sups:       map[string]map[int][]suppression{},
		ifaceCache: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range pkgs {
		if pkg == nil || pkg.Types == nil || pkg.Info == nil {
			continue
		}
		ip.pkgs = append(ip.pkgs, pkg)
	}
	sort.Slice(ip.pkgs, func(i, j int) bool { return ip.pkgs[i].Path < ip.pkgs[j].Path })
	ip.collectFacts()
	ip.collectConcreteTypes()
	for _, pkg := range ip.pkgs {
		for _, fd := range enclosingFuncDecls(pkg.Files) {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
			ip.nodes[fn] = node
		}
	}
	for _, node := range ip.nodes {
		ip.scanNode(node)
	}
	ip.sccs = ip.condense()
	ip.solve()
	return ip
}

// collectFacts gathers package directives, purecallback fields, and
// suppression tables.
func (ip *Interproc) collectFacts() {
	for _, pkg := range ip.pkgs {
		if packageHasDirective(pkg.Files, "netpart:deterministic") {
			ip.detPkgs[pkg.Path] = true
		}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			ip.sups[name] = parseSuppressions(pkg.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !hasDirective(field.Doc, "netpart:purecallback") && !hasDirective(field.Comment, "netpart:purecallback") {
						continue
					}
					for _, id := range field.Names {
						if obj := pkg.Info.Defs[id]; obj != nil {
							ip.pureFields[obj] = true
						}
					}
				}
				return true
			})
		}
	}
}

// collectConcreteTypes lists every named non-interface type of the module
// (for interface type-set approximation).
func (ip *Interproc) collectConcreteTypes() {
	for _, pkg := range ip.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			ip.concrete = append(ip.concrete, named)
		}
	}
}

// suppressedAt reports whether a well-formed suppression at pos covers the
// analyzer (used while building summaries, so waived sites never
// propagate).
func (ip *Interproc) suppressedAt(pos token.Pos, analyzer string) bool {
	p := ip.fset.Position(pos)
	return suppressed(ip.sups[p.Filename][p.Line], analyzer)
}

// scanNode extracts the call sites of one declaration, tracking the
// guarded-slow-path and return contexts hotpath's intraprocedural walk
// uses. Closure bodies are included (folded into the enclosing node).
func (ip *Interproc) scanNode(node *FuncNode) {
	info := node.Pkg.Info
	var walk func(n ast.Node, guarded bool)
	walk = func(root ast.Node, guarded bool) {
		walkStack(root, func(n ast.Node, stack []ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok && !guarded && isGuardedSlowPath(ifs) {
				// The guard's init/cond stay in the current context, the
				// body becomes the sanctioned slow path, and the else
				// branch re-enters the current context.
				if ifs.Init != nil {
					walk(ifs.Init, guarded)
				}
				walk(ifs.Cond, guarded)
				walk(ifs.Body, true)
				if ifs.Else != nil {
					walk(ifs.Else, guarded)
				}
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			cs := &Callsite{Call: call, Guarded: guarded}
			if len(stack) > 0 {
				switch parent := stack[len(stack)-1].(type) {
				case *ast.ReturnStmt:
					cs.InReturn = true
				case *ast.CallExpr:
					if id, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltin(info, id) {
						cs.InPanic = true
					}
				}
			}
			ip.resolveCallsite(node, cs, info)
			node.Calls = append(node.Calls, cs)
			return true
		})
	}
	walk(node.Decl.Body, false)
}

// resolveCallsite classifies one call: static, interface-dispatched,
// pure-callback, local-closure, or unresolved indirect.
func (ip *Interproc) resolveCallsite(node *FuncNode, cs *Callsite, info *types.Info) {
	call := cs.Call
	fun := ast.Unparen(call.Fun)

	// Conversions and builtins are not call edges (summary.go's
	// intraprocedural scan handles their allocation behavior).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		cs.IndirectDesc = "" // conversion
		cs.Targets = nil
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if isBuiltin(info, id) {
			return
		}
	}

	if fn := calleeFunc(info, call); fn != nil {
		// container/heap functions dispatch to the container's own methods
		// (Push/Pop/Swap/Less/Len) — resolve the edge to those in-module
		// methods instead of treating the opaque stdlib body conservatively.
		if fn.Pkg() != nil && fn.Pkg().Path() == "container/heap" && len(call.Args) > 0 {
			if t := info.TypeOf(call.Args[0]); t != nil {
				for _, mname := range [...]string{"Len", "Less", "Swap", "Push", "Pop"} {
					obj, _, _ := types.LookupFieldOrMethod(t, true, node.Pkg.Types, mname)
					if m, ok := obj.(*types.Func); ok {
						cs.Targets = append(cs.Targets, m)
					}
				}
				if len(cs.Targets) > 0 {
					return
				}
			}
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				cs.Interface = true
				cs.Targets = ip.interfaceTargets(fn)
				return
			}
		}
		cs.Targets = []*types.Func{fn}
		return
	}

	// Indirect: func value, field callback, or local closure.
	switch x := fun.(type) {
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.IsField() && ip.pureFields[obj] {
				cs.PureCallback = true
				return
			}
		}
		cs.IndirectDesc = exprText(x)
	case *ast.Ident:
		if v, ok := identObj(info, x).(*types.Var); ok && !v.IsField() {
			// A local func variable: the closure assigned to it (if any)
			// is folded into this node already; charging the call again
			// would double-count. Non-local func values stay unresolved.
			if v.Pos() >= node.Decl.Pos() && v.Pos() <= node.Decl.End() {
				return
			}
		}
		cs.IndirectDesc = x.Name
	default:
		cs.IndirectDesc = exprText(call.Fun)
	}
}

// interfaceTargets approximates the type set of an interface method call:
// the matching method of every named module type implementing the
// interface.
func (ip *Interproc) interfaceTargets(m *types.Func) []*types.Func {
	if ts, ok := ip.ifaceCache[m]; ok {
		return ts
	}
	var targets []*types.Func
	sig := m.Type().(*types.Signature)
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if iface != nil {
		for _, ct := range ip.concrete {
			ptr := types.NewPointer(ct)
			if !types.Implements(ct, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				targets = append(targets, fn)
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return funcLabel(targets[i]) < funcLabel(targets[j]) })
	ip.ifaceCache[m] = targets
	return targets
}

// condense runs Tarjan's SCC algorithm over the graph. Components come out
// in reverse topological order of the condensation — callees before
// callers — which is the order the summary fixpoint wants.
func (ip *Interproc) condense() [][]*FuncNode {
	// Deterministic node order keeps SCC numbering (and thus any
	// diagnostics derived from solve order) stable across runs.
	order := make([]*FuncNode, 0, len(ip.nodes))
	for _, n := range ip.nodes {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Decl.Pos() < order[j].Decl.Pos() })

	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	var strong func(v *FuncNode)
	strong = func(v *FuncNode) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, cs := range v.Calls {
			for _, t := range cs.Targets {
				w := ip.nodes[t]
				if w == nil {
					continue
				}
				if _, seen := index[w]; !seen {
					strong(w)
					if low[w] < low[v] {
						low[v] = low[w]
					}
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var scc []*FuncNode
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return sccs
}

// funcLabel renders a function for diagnostics: "pkg.Fn" or
// "pkg.(Recv).Fn", with the module prefix trimmed.
func funcLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
		if i := strings.LastIndex(pkg, "/"); i >= 0 {
			pkg = pkg[i+1:]
		}
		pkg += "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
