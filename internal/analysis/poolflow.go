package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolFlow is the path-sensitive successor to poollifetime's syntactic
// lifetime tracking: it runs the CFG + dataflow engine over each function
// body and reports a use-after-put or double-put exactly when some
// execution path realizes it. That direction matters both ways relative to
// the old analyzer:
//
//   - no false negatives at joins: a Put in every arm of an if poisons the
//     code after the join (the old per-branch clone forgot the Put), and a
//     Put at the bottom of a loop body poisons the next iteration through
//     the back edge;
//
//   - no false positives after re-get: reassigning the variable from the
//     pool on one path revives it on that path only, and a Put in one arm
//     does not taint a sibling arm it cannot reach.
//
// Aliasing combines a syntactic class with flow-sensitive state: `y := x`
// (or `y := *x`, `y := &x`) copies x's state to y at that point and joins
// the two variables into one alias class, and a Put through any member
// poisons the whole class — an alias taken before the Put names the same
// buffer. Rebinding a member to a fresh buffer revives that member alone,
// so re-get patterns stay clean. Closure bodies are separate units that
// start clean (delayed puts run at another time), and a deferred put is
// modeled at function exit, where it double-puts if the buffer was
// already recycled on some path.
//
// The accessor-discipline rule (direct sync.Pool.Get/Put only inside
// get*/put* accessors) stays in poollifetime.
var PoolFlow = &Analyzer{
	Name: "poolflow",
	Doc:  "path-sensitive sync.Pool lifetime: use-after-put and double-put on some reachable path",
	Run:  runPoolFlow,
}

// Pool lattice bits ("may" powerset: union join). Untracked variables are
// implicitly clean.
const (
	poolClean uint8 = 1 << iota
	poolPoisoned
)

func runPoolFlow(pass *Pass) error {
	putters := putAccessors(pass)
	for _, fb := range funcBodies(pass.Files) {
		checkPoolFlowFunc(pass, putters, fb)
	}
	return nil
}

func checkPoolFlowFunc(pass *Pass, putters map[types.Object]bool, fb funcBody) {
	info := pass.TypesInfo
	// Fast path: skip bodies that never recycle a buffer.
	recycles := false
	inspectLeaf(fb.body, func(n ast.Node) bool {
		if recycles {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && putTargetCall(info, putters, call) != nil {
			recycles = true
		}
		return true
	})
	if !recycles {
		return
	}

	g := BuildCFG(fb.body)
	aliases := poolAliasClasses(info, fb.body)
	transfer := func(b *Block, s FlowState[types.Object]) FlowState[types.Object] {
		cleanRangeVars(info, g, b, s)
		for _, n := range b.Nodes {
			poolTransferNode(pass, info, putters, aliases, n, s, false)
		}
		return s
	}
	ins, reached := Forward(g, FlowState[types.Object]{}, transfer)

	for _, b := range g.Blocks {
		if !reached[b.Index] || ins[b.Index] == nil {
			continue
		}
		s := ins[b.Index].Clone()
		cleanRangeVars(info, g, b, s)
		for _, n := range b.Nodes {
			poolTransferNode(pass, info, putters, aliases, n, s, true)
		}
	}

	// Deferred puts run at exit, after every path's explicit recycling.
	exit := ins[g.Exit.Index]
	if exit == nil {
		return
	}
	s := exit.Clone()
	for i := len(g.Defers) - 1; i >= 0; i-- {
		if obj := putTargetCall(info, putters, g.Defers[i]); obj != nil {
			if s[obj]&poolPoisoned != 0 {
				pass.Reportf(g.Defers[i].Pos(), "pooled buffer %q recycled twice: this deferred Put runs after a Put on some path through the function", obj.Name())
			}
			poisonClass(aliases, obj, s)
		}
	}
}

// poolAliasClasses groups a body's variables connected by pure alias
// assignments (y := x, y := *x, y := &x): every member names the same
// underlying buffer, so a Put through one poisons them all. Classes are
// syntactic and body-wide; rebinding a member to a fresh buffer revives
// that member only (the assignment overwrites its state), which keeps
// re-get patterns clean while an alias taken before the Put stays
// poisoned with it.
func poolAliasClasses(info *types.Info, body *ast.BlockStmt) map[types.Object][]types.Object {
	parent := map[types.Object]types.Object{}
	var find func(o types.Object) types.Object
	find = func(o types.Object) types.Object {
		p, ok := parent[o]
		if !ok || p == o {
			parent[o] = o
			return o
		}
		r := find(p)
		parent[o] = r
		return r
	}
	inspectLeaf(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lobj := identObj(info, lhs)
			src := aliasSource(info, as.Rhs[i])
			if lobj != nil && src != nil && lobj != src {
				parent[find(lobj)] = find(src)
			}
		}
		return true
	})
	roots := map[types.Object][]types.Object{}
	for o := range parent {
		r := find(o)
		roots[r] = append(roots[r], o)
	}
	classes := map[types.Object][]types.Object{}
	for _, members := range roots {
		if len(members) < 2 {
			continue
		}
		for _, o := range members {
			classes[o] = members
		}
	}
	return classes
}

// poisonClass marks obj and every alias-class sibling as recycled.
func poisonClass(aliases map[types.Object][]types.Object, obj types.Object, s FlowState[types.Object]) {
	s[obj] = poolPoisoned
	for _, o := range aliases[obj] {
		s[o] = poolPoisoned
	}
}

// poolTransferNode applies one node's effects to the pool state, reporting
// violations when report is set (the post-fixpoint replay).
func poolTransferNode(pass *Pass, info *types.Info, putters map[types.Object]bool, aliases map[types.Object][]types.Object, n ast.Node, s FlowState[types.Object], report bool) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		return // modeled at exit
	case *ast.ExprStmt:
		if obj := putTargetStmt(info, putters, n); obj != nil {
			if report && s[obj]&poolPoisoned != 0 {
				pass.Reportf(n.Pos(), "pooled buffer %q recycled twice: a Put already ran on some path reaching this one", obj.Name())
			}
			poisonClass(aliases, obj, s)
			return
		}
	case *ast.AssignStmt:
		// Uses on the right-hand sides first (they read the old states),
		// except a pure 1:1 alias copy, which propagates state instead of
		// counting as a use.
		paired := len(n.Lhs) == len(n.Rhs)
		kind := make([]uint8, len(n.Lhs))
		for i, rhs := range n.Rhs {
			if paired {
				if src := aliasSource(info, rhs); src != nil {
					kind[i] = s[src]
					continue
				}
			}
			if report {
				reportPoolUses(pass, info, rhs, s)
			}
		}
		for i, lhs := range n.Lhs {
			lobj := identObj(info, lhs)
			if lobj == nil {
				// Indexed/field store: the base is a use.
				if report {
					reportPoolUses(pass, info, lhs, s)
				}
				continue
			}
			if paired {
				s[lobj] = kind[i]
			} else {
				// Multi-value assignment: whatever arrives is fresh.
				s[lobj] = poolClean
			}
		}
		return
	}
	if report {
		reportPoolUses(pass, info, n, s)
	}
}

// cleanRangeVars revives a range loop's Key/Value variables when b is the
// loop's head block: the head reassigns them from the operand each
// iteration, so a Put on the previous element must not poison the next one
// through the back edge (`for _, f := range frags { putBuf(f) }` recycles
// each element exactly once).
func cleanRangeVars(info *types.Info, g *CFG, b *Block, s FlowState[types.Object]) {
	rs := g.Ranges[b]
	if rs == nil {
		return
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		if obj := identObj(info, e); obj != nil {
			s[obj] = poolClean
		}
	}
}

// aliasSource returns the variable a pure alias expression (`x`, `*x`, or
// `&x`) reads, or nil when the expression is anything else.
func aliasSource(info *types.Info, e ast.Expr) types.Object {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.StarExpr:
		e = ast.Unparen(x.X)
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return nil
		}
		e = ast.Unparen(x.X)
	}
	return identObj(info, e)
}

// reportPoolUses flags every identifier in the node (closures pruned) that
// reads a buffer poisoned on some path.
func reportPoolUses(pass *Pass, info *types.Info, n ast.Node, s FlowState[types.Object]) {
	inspectLeaf(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || s[obj]&poolPoisoned == 0 {
			return true
		}
		pass.Reportf(id.Pos(), "pooled buffer %q used after Put on some path: the pool may already have handed this memory to another goroutine", id.Name)
		return true
	})
}

// putTargetStmt returns the object an expression statement recycles, or
// nil.
func putTargetStmt(info *types.Info, putters map[types.Object]bool, es *ast.ExprStmt) types.Object {
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	return putTargetCall(info, putters, call)
}

// putTargetCall returns the object a call recycles — the argument of a
// direct (*sync.Pool).Put or of one of the package's put accessors — or
// nil.
func putTargetCall(info *types.Info, putters map[types.Object]bool, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Put" && isSyncPool(info.TypeOf(fun.X)) {
			break
		}
		if !putters[info.Uses[fun.Sel]] {
			return nil
		}
	case *ast.Ident:
		if !putters[info.Uses[fun]] {
			return nil
		}
	default:
		return nil
	}
	arg := ast.Unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		arg = ast.Unparen(u.X)
	}
	return identObj(info, arg)
}
