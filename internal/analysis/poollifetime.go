package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolLifetime enforces the structural half of the sync.Pool buffer rules
// the mmps transport documents on its bufPool: direct (*sync.Pool).Get/Put
// calls are allowed only inside accessor functions (name starting with
// get/put), which is where the box/length/zeroing conventions live.
// Everything else must go through the accessor pair.
//
// The temporal half — use-after-put and double-put — lives in the
// path-sensitive poolflow analyzer (poolflow.go), which replaced this
// analyzer's original per-branch syntactic tracking: that scheme missed a
// Put performed in every arm of an if (the poison set was cloned per
// branch and the clones discarded at the join) and could not see a Put
// flowing around a loop's back edge.
var PoolLifetime = &Analyzer{
	Name: "poollifetime",
	Doc:  "restricts direct sync.Pool Get/Put to get*/put* accessor functions",
	Run:  runPoolLifetime,
}

func runPoolLifetime(pass *Pass) error {
	for _, fd := range enclosingFuncDecls(pass.Files) {
		checkPoolAccessors(pass, fd)
	}
	return nil
}

// putAccessors collects this package's pool-put accessor functions: the
// ones whose bodies call (*sync.Pool).Put directly (mmps.putBuf). Matching
// by behavior rather than by name keeps unrelated Put* helpers (say,
// binary.BigEndian.PutUint32) out of poolflow's lifetime tracking.
func putAccessors(pass *Pass) map[types.Object]bool {
	putters := map[types.Object]bool{}
	for _, fd := range enclosingFuncDecls(pass.Files) {
		callsPut := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Put" && isSyncPool(pass.TypesInfo.TypeOf(sel.X)) {
					callsPut = true
				}
			}
			return !callsPut
		})
		if callsPut {
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				putters[obj] = true
			}
		}
	}
	return putters
}

// checkPoolAccessors flags direct sync.Pool Get/Put outside get*/put*
// functions.
func checkPoolAccessors(pass *Pass, fd *ast.FuncDecl) {
	isAccessor := func() bool {
		n := strings.ToLower(fd.Name.Name)
		return strings.HasPrefix(n, "get") || strings.HasPrefix(n, "put")
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
			return true
		}
		if !isSyncPool(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		if !isAccessor() {
			pass.Reportf(call.Pos(), "direct sync.Pool.%s outside a get*/put* accessor; route through the accessor pair so lifetime conventions stay in one place", sel.Sel.Name)
		}
		return true
	})
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	return isSyncNamed(t, "Pool")
}
