package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolLifetime enforces the sync.Pool buffer-lifetime rules the mmps
// transport documents on its bufPool: once a buffer is returned with Put
// it belongs to the pool, which may hand the same memory to another
// goroutine immediately — any later read or write corrupts a packet in
// flight (the class of bug PR 3's dup/delay aliasing chaos test catches
// dynamically). Two rules, checked intra-procedurally:
//
//   - use-after-put: after a statement that recycles a buffer (a call to
//     (*sync.Pool).Put or to an accessor named put*), any later use of
//     that variable — or of a local alias derived from it by y := x or
//     y := *x — in the same statement list is an error. Recycling the same
//     buffer twice is the same error (the second Put is a use). A whole
//     reassignment of the variable un-poisons it. Statement lists are
//     analyzed independently per block, and closure bodies start clean
//     (delayed puts, like the injector's deferred-write fate, run at a
//     different time).
//
//   - accessor discipline: direct (*sync.Pool).Get/Put calls are allowed
//     only inside accessor functions (name starting with get/put), which
//     is where the box/length/zeroing conventions live. Everything else
//     must go through the accessor pair.
var PoolLifetime = &Analyzer{
	Name: "poollifetime",
	Doc:  "detects sync.Pool buffers used after Put, double Puts, and direct pool access outside accessors",
	Run:  runPoolLifetime,
}

func runPoolLifetime(pass *Pass) error {
	putters := putAccessors(pass)
	for _, fd := range enclosingFuncDecls(pass.Files) {
		checkPoolAccessors(pass, fd)
		aliases := poolAliases(pass.TypesInfo, fd)
		checkStmtList(pass, putters, fd.Body.List, aliases, map[types.Object]bool{})
	}
	return nil
}

// putAccessors collects this package's pool-put accessor functions: the
// ones whose bodies call (*sync.Pool).Put directly (mmps.putBuf). Matching
// by behavior rather than by name keeps unrelated Put* helpers (say,
// binary.BigEndian.PutUint32) out of the lifetime tracking.
func putAccessors(pass *Pass) map[types.Object]bool {
	putters := map[types.Object]bool{}
	for _, fd := range enclosingFuncDecls(pass.Files) {
		callsPut := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Put" && isSyncPool(pass.TypesInfo.TypeOf(sel.X)) {
					callsPut = true
				}
			}
			return !callsPut
		})
		if callsPut {
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				putters[obj] = true
			}
		}
	}
	return putters
}

// checkPoolAccessors flags direct sync.Pool Get/Put outside get*/put*
// functions.
func checkPoolAccessors(pass *Pass, fd *ast.FuncDecl) {
	isAccessor := func() bool {
		n := strings.ToLower(fd.Name.Name)
		return strings.HasPrefix(n, "get") || strings.HasPrefix(n, "put")
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Get" && sel.Sel.Name != "Put") {
			return true
		}
		if !isSyncPool(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		if !isAccessor() {
			pass.Reportf(call.Pos(), "direct sync.Pool.%s outside a get*/put* accessor; route through the accessor pair so lifetime conventions stay in one place", sel.Sel.Name)
		}
		return true
	})
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// poolAliases maps each local variable to the variable it was derived from
// by a simple y := x or y := *x assignment, so poisoning x also poisons y.
func poolAliases(info *types.Info, fd *ast.FuncDecl) map[types.Object]types.Object {
	aliases := map[types.Object]types.Object{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			lobj := identObj(info, lhs)
			if lobj == nil {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if star, ok := rhs.(*ast.StarExpr); ok {
				rhs = ast.Unparen(star.X)
			}
			if robj := identObj(info, rhs); robj != nil && robj != lobj {
				aliases[lobj] = robj
			}
		}
		return true
	})
	return aliases
}

// putTarget returns the object a statement recycles, or nil: an ExprStmt
// calling (*sync.Pool).Put or one of the package's put accessors with the
// variable (or its address) as the recycled argument.
func putTarget(info *types.Info, putters map[types.Object]bool, stmt ast.Stmt) types.Object {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Put" && isSyncPool(info.TypeOf(fun.X)) {
			break
		}
		if !putters[info.Uses[fun.Sel]] {
			return nil
		}
	case *ast.Ident:
		if !putters[info.Uses[fun]] {
			return nil
		}
	default:
		return nil
	}
	arg := ast.Unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		arg = ast.Unparen(u.X)
	}
	return identObj(info, arg)
}

// checkStmtList walks one statement list in order, tracking which buffers
// have been recycled, reporting later uses, and recursing into nested
// statements with a copy of the current poison set.
func checkStmtList(pass *Pass, putters map[types.Object]bool, stmts []ast.Stmt, aliases map[types.Object]types.Object, poisoned map[types.Object]bool) {
	info := pass.TypesInfo
	for _, stmt := range stmts {
		if obj := putTarget(info, putters, stmt); obj != nil {
			if isPoisoned(obj, aliases, poisoned) {
				pass.Reportf(stmt.Pos(), "pooled buffer %q recycled twice; the second Put hands the pool a buffer it already owns", obj.Name())
			}
			poisoned[obj] = true
			continue
		}
		// Reassignment of a poisoned variable revives it.
		if as, ok := stmt.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if obj := identObj(info, lhs); obj != nil && poisoned[obj] {
					delete(poisoned, obj)
				}
			}
		}
		reportPoisonedUses(pass, stmt, aliases, poisoned)
		recurseNested(pass, putters, stmt, aliases, poisoned)
	}
}

// reportPoisonedUses flags identifiers in the statement's non-nested
// expressions that refer to recycled buffers.
func reportPoisonedUses(pass *Pass, stmt ast.Stmt, aliases map[types.Object]types.Object, poisoned map[types.Object]bool) {
	if len(poisoned) == 0 {
		return
	}
	info := pass.TypesInfo
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false // nested lists are handled by recurseNested
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !isPoisoned(obj, aliases, poisoned) {
			return true
		}
		pass.Reportf(id.Pos(), "pooled buffer %q used after Put; the pool may already have handed this memory to another goroutine", id.Name)
		return true
	})
}

// recurseNested analyzes nested statement lists with an isolated copy of
// the poison set. Closure bodies start clean: their execution is deferred
// relative to the surrounding statements.
func recurseNested(pass *Pass, putters map[types.Object]bool, stmt ast.Stmt, aliases map[types.Object]types.Object, poisoned map[types.Object]bool) {
	clone := func() map[types.Object]bool {
		cp := make(map[types.Object]bool, len(poisoned))
		for k, v := range poisoned {
			cp[k] = v
		}
		return cp
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		checkStmtList(pass, putters, s.List, aliases, clone())
		return
	case *ast.IfStmt:
		checkStmtList(pass, putters, s.Body.List, aliases, clone())
		if s.Else != nil {
			recurseNested(pass, putters, s.Else, aliases, poisoned)
		}
		return
	case *ast.ForStmt:
		checkStmtList(pass, putters, s.Body.List, aliases, clone())
		return
	case *ast.RangeStmt:
		checkStmtList(pass, putters, s.Body.List, aliases, clone())
		return
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkStmtList(pass, putters, cc.Body, aliases, clone())
			}
		}
		return
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkStmtList(pass, putters, cc.Body, aliases, clone())
			}
		}
		return
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkStmtList(pass, putters, cc.Body, aliases, clone())
			}
		}
		return
	case *ast.LabeledStmt:
		recurseNested(pass, putters, s.Stmt, aliases, poisoned)
		return
	}
	// Simple statement: analyze closure bodies in its expressions with a
	// clean slate (their execution is deferred relative to this list).
	ast.Inspect(stmt, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkStmtList(pass, putters, lit.Body.List, aliases, map[types.Object]bool{})
			return false
		}
		return true
	})
}

// isPoisoned reports whether obj or anything it aliases has been recycled.
func isPoisoned(obj types.Object, aliases map[types.Object]types.Object, poisoned map[types.Object]bool) bool {
	for i := 0; obj != nil && i < 8; i++ {
		if poisoned[obj] {
			return true
		}
		obj = aliases[obj]
	}
	return false
}
