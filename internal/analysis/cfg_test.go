package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"netpart/internal/analysis"
)

// buildCFG parses a single-function source fragment and builds its CFG.
// Parser-only: CFG construction must not require type information.
func buildCFG(t *testing.T, src string) *analysis.CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[len(f.Decls)-1].(*ast.FuncDecl)
	return analysis.BuildCFG(fd.Body)
}

// shape is the golden summary of one CFG: enough to pin the builder's
// translation of a construct without enumerating every block.
type shape struct {
	blocks      int // total blocks, including synthetic and dead ones
	edges       int // total directed edges
	reachable   int // blocks reachable from the entry
	defers      int // registered defer sites
	nonBlocking int // select comms that cannot block (default present)
	exitPreds   int // distinct ways control reaches the exit block
}

func summarize(g *analysis.CFG) shape {
	live := 0
	for _, ok := range g.Reachable() {
		if ok {
			live++
		}
	}
	return shape{
		blocks:      len(g.Blocks),
		edges:       g.NumEdges(),
		reachable:   live,
		defers:      len(g.Defers),
		nonBlocking: len(g.NonBlocking),
		exitPreds:   len(g.Exit.Preds),
	}
}

// TestCFGLabeledBreakContinue: break outer must edge past BOTH loops and
// continue outer must edge to the outer range head — getting either wrong
// silently corrupts every flow-sensitive analyzer's loop state.
func TestCFGLabeledBreakContinue(t *testing.T) {
	g := buildCFG(t, `
func f(m [][]int) int {
	sum := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			if v == 0 {
				continue outer
			}
			sum += v
		}
	}
	return sum
}`)
	want := shape{blocks: 16, edges: 19, reachable: 13, defers: 0, nonBlocking: 0, exitPreds: 2}
	if got := summarize(g); got != want {
		t.Errorf("shape = %+v, want %+v", got, want)
	}
	// Both range heads must be registered so analyzers can revive the loop
	// variables per iteration, and the outer head gets the continue edge on
	// top of its entry and back edges.
	if len(g.Ranges) != 2 {
		t.Fatalf("len(Ranges) = %d, want 2", len(g.Ranges))
	}
	maxHeadPreds := 0
	for head := range g.Ranges {
		if len(head.Preds) > maxHeadPreds {
			maxHeadPreds = len(head.Preds)
		}
	}
	if maxHeadPreds < 3 {
		t.Errorf("outer range head has %d preds, want >= 3 (entry, back edge, continue outer)", maxHeadPreds)
	}
}

// TestCFGGoto: a backward goto forms a loop; the labeled block must have
// both the fall-through and the goto edge, and the statements after the
// dead block a goto leaves behind stay reachable through the label.
func TestCFGGoto(t *testing.T) {
	g := buildCFG(t, `
func f() int {
	n := 0
retry:
	n++
	if n < 3 {
		goto retry
	}
	return n
}`)
	want := shape{blocks: 7, edges: 7, reachable: 5, defers: 0, nonBlocking: 0, exitPreds: 2}
	if got := summarize(g); got != want {
		t.Errorf("shape = %+v, want %+v", got, want)
	}
	// The label target is the one non-entry block with two or more live
	// preds (fall-through from the entry plus the goto back edge); dead
	// blocks left behind by the goto do not count.
	reach := g.Reachable()
	looped := 0
	for _, b := range g.Blocks {
		if b == g.Entry || b == g.Exit {
			continue
		}
		livePreds := 0
		for _, p := range b.Preds {
			if reach[p.Index] {
				livePreds++
			}
		}
		if livePreds >= 2 {
			looped++
		}
	}
	if looped != 1 {
		t.Errorf("found %d join blocks, want exactly 1 (the retry label)", looped)
	}
}

// TestCFGSelectDefault: every comm clause of a select with a default is
// non-blocking, each clause body gets its own block, and a return inside
// one clause edges straight to exit.
func TestCFGSelectDefault(t *testing.T) {
	g := buildCFG(t, `
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case ch <- 1:
	default:
	}
	return 0
}`)
	want := shape{blocks: 8, edges: 9, reachable: 6, defers: 0, nonBlocking: 2, exitPreds: 3}
	if got := summarize(g); got != want {
		t.Errorf("shape = %+v, want %+v", got, want)
	}
	for stmt := range g.NonBlocking {
		switch stmt.(type) {
		case *ast.AssignStmt, *ast.SendStmt:
		default:
			t.Errorf("NonBlocking holds %T, want only the comm statements", stmt)
		}
	}
}

// TestCFGLabeledBreakOutOfSelect: `break loop` inside a select nested in
// a labeled for must edge to the FOR's after block, not the select's join.
// The for has no condition, so the after block — and with it the trailing
// return — is reachable ONLY through that labeled break: if the builder
// resolved the label against the select scope, exit would go dead.
func TestCFGLabeledBreakOutOfSelect(t *testing.T) {
	g := buildCFG(t, `
func f(ch chan int, done chan struct{}) int {
	n := 0
loop:
	for {
		select {
		case v := <-ch:
			n += v
		case <-done:
			break loop
		}
	}
	return n
}`)
	// exitPreds counts the dead fall-off-the-end block too; only one pred
	// is live (checked below).
	want := shape{blocks: 12, edges: 12, reachable: 10, defers: 0, nonBlocking: 0, exitPreds: 2}
	if got := summarize(g); got != want {
		t.Errorf("shape = %+v, want %+v", got, want)
	}
	reach := g.Reachable()
	liveExit := 0
	for _, p := range g.Exit.Preds {
		if reach[p.Index] {
			liveExit++
		}
	}
	if liveExit != 1 {
		t.Errorf("exit has %d live preds, want 1 (return n via break loop)", liveExit)
	}
}

// TestCFGFallthroughTrailingEmpty: fallthrough need only be the final
// NON-EMPTY statement of its clause, so a trailing empty statement
// ("fallthrough;;") is legal Go and the fallthrough edge to the next
// clause must survive it.
func TestCFGFallthroughTrailingEmpty(t *testing.T) {
	src := `
func f(x int) int {
	n := 0
	switch x {
	case 0:
		n = 1
		fallthrough;;
	case 1:
		n += 2
	}
	return n
}`
	// Guard the premise: the clause body must actually end in an
	// *ast.EmptyStmt, otherwise this test degenerates into the plain
	// fallthrough case and proves nothing.
	{
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "x.go", "package p\n"+src, 0)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		sawEmpty := false
		ast.Inspect(f, func(n ast.Node) bool {
			if cc, ok := n.(*ast.CaseClause); ok && len(cc.Body) > 0 {
				if _, ok := cc.Body[len(cc.Body)-1].(*ast.EmptyStmt); ok {
					sawEmpty = true
				}
			}
			return true
		})
		if !sawEmpty {
			t.Fatal("fixture lost its trailing empty statement")
		}
	}
	g := buildCFG(t, src)
	// Reconstruct the clause bodies: the case-0 block must edge into the
	// case-1 block (fallthrough), never straight to the join.
	var from, to *analysis.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
				from = b
			}
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
				to = b
			}
		}
	}
	if from == nil || to == nil {
		t.Fatal("could not locate the two clause bodies")
	}
	linked := false
	for _, s := range from.Succs {
		if s == to {
			linked = true
		}
	}
	if !linked {
		t.Error("fallthrough followed by an empty statement lost its edge to the next clause")
	}
}

// TestCFGDeferInLoop: the defer site registers once (Defers records
// registration points, not dynamic executions) and stays inside the loop
// body block so the dataflow replay can see it run per iteration.
func TestCFGDeferInLoop(t *testing.T) {
	g := buildCFG(t, `
func f(files []string) {
	for _, name := range files {
		defer println(name)
	}
}`)
	want := shape{blocks: 5, edges: 5, reachable: 5, defers: 1, nonBlocking: 0, exitPreds: 1}
	if got := summarize(g); got != want {
		t.Errorf("shape = %+v, want %+v", got, want)
	}
	inBody := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				inBody = true
			}
		}
	}
	if !inBody {
		t.Error("DeferStmt node missing from the loop body block")
	}
}

// TestCFGNoDefaultBlocks: without a default clause the comms stay
// blocking — the NonBlocking map must be empty.
func TestCFGNoDefaultBlocks(t *testing.T) {
	g := buildCFG(t, `
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case ch <- 1:
	}
	return 0
}`)
	if len(g.NonBlocking) != 0 {
		t.Errorf("len(NonBlocking) = %d, want 0 for a select without default", len(g.NonBlocking))
	}
}

// TestCFGGotoIntoLoopBody: a goto whose label sits INSIDE a for body jumps
// within the current iteration, bypassing the post statement and the
// condition. The label block must collect both the iteration fall-through
// and the goto edge, while the loop head keeps its own back edge — a
// builder that resolves the label against the function scope would wire
// the goto to a fresh dead block and sever the in-iteration cycle.
func TestCFGGotoIntoLoopBody(t *testing.T) {
	g := buildCFG(t, `
func f(xs []int) int {
	n := 0
	for i := 0; i < len(xs); i++ {
	inner:
		n += xs[i]
		if n < 0 {
			goto inner
		}
	}
	return n
}`)
	want := shape{blocks: 11, edges: 12, reachable: 9, defers: 0, nonBlocking: 0, exitPreds: 2}
	if got := summarize(g); got != want {
		t.Errorf("shape = %+v, want %+v", got, want)
	}
	// The label target is a join: fall-through into the iteration plus the
	// goto edge. Find the block holding the += node and count live preds.
	reach := g.Reachable()
	var label *analysis.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
				label = b
			}
		}
	}
	if label == nil {
		t.Fatal("could not locate the labeled block")
	}
	livePreds := 0
	for _, p := range label.Preds {
		if reach[p.Index] {
			livePreds++
		}
	}
	if livePreds < 2 {
		t.Errorf("label block has %d live preds, want >= 2 (iteration entry + goto)", livePreds)
	}
}

// TestCFGNestedSelectInnerDefault: when only the inner of two nested
// selects has a default, exactly the inner's comm clauses become
// non-blocking; the outer's comms must stay blocking even though a
// non-blocking select executes inside one of their bodies.
func TestCFGNestedSelectInnerDefault(t *testing.T) {
	g := buildCFG(t, `
func f(a, b chan int) int {
	select {
	case v := <-a:
		select {
		case w := <-b:
			return v + w
		default:
		}
		return v
	case a <- 1:
	}
	return 0
}`)
	want := shape{blocks: 11, edges: 12, reachable: 8, defers: 0, nonBlocking: 1, exitPreds: 4}
	if got := summarize(g); got != want {
		t.Errorf("shape = %+v, want %+v", got, want)
	}
	// The single non-blocking comm is the inner receive `w := <-b`; the
	// outer receive binds v and the outer send must not be in the map.
	for stmt := range g.NonBlocking {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok {
			t.Fatalf("NonBlocking holds %T, want the inner receive assign", stmt)
		}
		if as.Lhs[0].(*ast.Ident).Name != "w" {
			t.Errorf("NonBlocking holds the %q comm, want the inner receive into w", as.Lhs[0].(*ast.Ident).Name)
		}
	}
}
